package memory

import (
	"math"
	"testing"
	"testing/quick"

	"litegpu/internal/hw"
	"litegpu/internal/units"
)

func TestSplitAllLocal(t *testing.T) {
	g := hw.Lite() // 20 GB
	pl, err := Split(g, 10*units.GB, 5*units.GB)
	if err != nil {
		t.Fatal(err)
	}
	if pl.RemoteBytes != 0 || pl.LocalBytes != 10*units.GB {
		t.Errorf("placement = %+v, want all local", pl)
	}
}

func TestSplitSpillsOverflow(t *testing.T) {
	g := hw.Lite()
	pl, err := Split(g, 30*units.GB, 5*units.GB)
	if err != nil {
		t.Fatal(err)
	}
	if pl.LocalBytes != g.Capacity {
		t.Errorf("local = %v, want full HBM", pl.LocalBytes)
	}
	if pl.RemoteBytes != 10*units.GB {
		t.Errorf("remote = %v, want 10 GB", pl.RemoteBytes)
	}
}

func TestSplitRejectsOversizedResident(t *testing.T) {
	if _, err := Split(hw.Lite(), 50*units.GB, 25*units.GB); err == nil {
		t.Error("resident set beyond HBM accepted")
	}
}

func TestSplitClampsWorkingSet(t *testing.T) {
	pl, err := Split(hw.Lite(), units.Bytes(units.GB), 5*units.GB)
	if err != nil {
		t.Fatal(err)
	}
	if pl.LocalBytes != 5*units.GB {
		t.Errorf("working set below resident should clamp: %+v", pl)
	}
}

func TestStepTimeConcurrentPaths(t *testing.T) {
	g := hw.Lite() // 838 GB/s HBM
	p := CPOPool(units.Bytes(units.TB))
	// 8.38 GB local = 10 ms; 1.125 GB remote = 10 ms; concurrent ⇒ 10 ms + latency.
	pl := Placement{LocalBytes: 8.38 * units.GB, RemoteBytes: 1.125 * units.GB}
	got := StepTime(g, p, pl)
	want := 0.010 + float64(p.Latency)
	if math.Abs(float64(got)-want) > 1e-6 {
		t.Errorf("step time = %v, want ≈%v", got, want)
	}
	// All-local placement pays no pool latency.
	local := Placement{LocalBytes: 8.38 * units.GB}
	if lt := StepTime(g, p, local); math.Abs(float64(lt)-0.010) > 1e-9 {
		t.Errorf("local step time = %v, want 10 ms", lt)
	}
}

func TestEffectiveBandwidth(t *testing.T) {
	g := hw.Lite()
	p := CPOPool(units.Bytes(units.TB))
	// Balanced placement: effective BW approaches HBM + pool rates.
	pl := Placement{LocalBytes: 8.38 * units.GB, RemoteBytes: 1.125 * units.GB}
	eff := EffectiveBandwidth(g, p, pl)
	if float64(eff) <= float64(g.MemBW) {
		t.Errorf("effective BW %v should exceed HBM alone %v", eff, g.MemBW)
	}
	if EffectiveBandwidth(g, p, Placement{}) != 0 {
		t.Error("empty placement should have zero bandwidth")
	}
}

func TestMaxBatchPoolExtendsCapacity(t *testing.T) {
	g := hw.Lite()
	weights := 15 * units.GB
	kvPerReq := 0.25 * units.GB
	// Without pool: (20−15)/0.25 = 20 requests per GPU.
	none := MaxBatch(g, Pool{}, 8, units.Bytes(weights), units.Bytes(kvPerReq))
	if none != 20 {
		t.Errorf("poolless max batch = %d, want 20", none)
	}
	// With a 40 GB pool over 8 GPUs: +5 GB/GPU ⇒ +20 requests.
	pool := CPOPool(40 * units.GB)
	with := MaxBatch(g, pool, 8, units.Bytes(weights), units.Bytes(kvPerReq))
	if with != 40 {
		t.Errorf("pooled max batch = %d, want 40", with)
	}
}

func TestMaxBatchDegenerate(t *testing.T) {
	g := hw.Lite()
	if MaxBatch(g, Pool{}, 0, 1, 1) != 0 {
		t.Error("zero GPUs should yield 0")
	}
	if MaxBatch(g, Pool{}, 4, 1, 0) != 0 {
		t.Error("zero KV per request should yield 0")
	}
	if MaxBatch(g, Pool{}, 4, 25*units.GB, 1) != 0 {
		t.Error("weights beyond HBM should yield 0")
	}
}

func TestBreakEvenBandwidth(t *testing.T) {
	g := hw.Lite()
	// Spilling 10% of traffic needs 10% of HBM bandwidth from the pool.
	pl := Placement{LocalBytes: 10 * units.GB, RemoteBytes: units.Bytes(units.GB)}
	want := 0.1 * float64(g.MemBW)
	if got := BreakEvenBandwidth(g, pl); math.Abs(float64(got)-want) > 1 {
		t.Errorf("break-even BW = %v, want %v", got, units.BytesPerSec(want))
	}
	if BreakEvenBandwidth(g, Placement{LocalBytes: 1}) != 0 {
		t.Error("no-remote break-even should be 0")
	}
	if !math.IsInf(float64(BreakEvenBandwidth(g, Placement{RemoteBytes: 1})), 1) {
		t.Error("all-remote break-even should be +Inf")
	}
}

// Property: no placement streams faster than the combined HBM + pool
// bandwidth. (Spilling overflow to the pool can legitimately BEAT an
// all-local placement — the two paths stream concurrently, which is the
// bandwidth-aggregation upside of disaggregation — but never beyond the
// physical sum.)
func TestCombinedBandwidthCeilingProperty(t *testing.T) {
	g := hw.Lite()
	p := CPOPool(units.Bytes(units.TB))
	f := func(rawLocal, rawRemote uint16) bool {
		pl := Placement{
			LocalBytes:  units.Bytes(float64(rawLocal)+1) * 1e6,
			RemoteBytes: units.Bytes(float64(rawRemote)) * 1e6,
		}
		total := float64(pl.LocalBytes + pl.RemoteBytes)
		floor := total / (float64(g.MemBW) + float64(p.BandwidthPerGPU))
		return float64(StepTime(g, p, pl)) >= floor-1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpillingCanAggregateBandwidth(t *testing.T) {
	// The disaggregation upside: a placement that keeps HBM saturated
	// and streams the overflow from the pool finishes sooner than
	// squeezing everything through HBM.
	g := hw.Lite()
	p := CPOPool(units.Bytes(units.TB))
	split := Placement{LocalBytes: 30 * units.GB, RemoteBytes: 4 * units.GB}
	allLocal := Placement{LocalBytes: 34 * units.GB}
	if StepTime(g, p, split) >= StepTime(g, p, allLocal) {
		t.Errorf("concurrent split (%v) should beat all-local (%v)",
			StepTime(g, p, split), StepTime(g, p, allLocal))
	}
}

// Property: step time is monotone in both traffic components.
func TestStepTimeMonotoneProperty(t *testing.T) {
	g := hw.Lite()
	p := CPOPool(units.Bytes(units.TB))
	f := func(a, b uint16) bool {
		pl1 := Placement{LocalBytes: units.Bytes(a) * 1e6, RemoteBytes: units.Bytes(b) * 1e6}
		pl2 := Placement{LocalBytes: pl1.LocalBytes * 2, RemoteBytes: pl1.RemoteBytes * 2}
		return StepTime(g, p, pl2) >= StepTime(g, p, pl1)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
