// Package memory models the disaggregated-memory option of the paper's
// Section 3: Lite-GPUs have a fraction of a big GPU's HBM, so workloads
// whose KV caches outgrow local memory can either shrink the batch or
// spill cold cache to a shared pool reached over the optical fabric.
//
// The model captures the trade the paper poses ("do we need
// memory-sharing across multiple Lite-GPUs to be an option?"): decode
// traffic is split between local HBM and the remote pool, the step time
// takes the slower of the two paths (they stream concurrently), and
// capacity becomes local + pool quota. The result quantifies when a
// pool turns infeasible batches feasible and what bandwidth the pool
// must offer before it stops being the bottleneck.
package memory

import (
	"fmt"
	"math"

	"litegpu/internal/hw"
	"litegpu/internal/units"
)

// Pool describes a disaggregated memory pool shared by a GPU group.
type Pool struct {
	// Capacity is the pool capacity available to the group.
	Capacity units.Bytes
	// BandwidthPerGPU is each GPU's read bandwidth into the pool
	// (bounded by its network port in a CPO design).
	BandwidthPerGPU units.BytesPerSec
	// Latency is the additional access latency per step; prefetching
	// (the paper's masking technique) hides all but this residue.
	Latency units.Seconds
}

// CPOPool returns a pool reached over co-packaged optics at the basic
// Lite-GPU port rate.
func CPOPool(capacity units.Bytes) Pool {
	return Pool{
		Capacity:        capacity,
		BandwidthPerGPU: 112.5 * units.GB,
		Latency:         2e-6,
	}
}

// Placement describes how a per-step working set is split.
type Placement struct {
	// LocalBytes and RemoteBytes are the per-GPU bytes streamed from
	// HBM and from the pool each step.
	LocalBytes  units.Bytes
	RemoteBytes units.Bytes
}

// StepTime returns the memory time of one decode step with the given
// placement on the given GPU: HBM and pool stream concurrently, so the
// step takes the slower of the two, plus the residual pool latency when
// any remote traffic exists.
func StepTime(g hw.GPU, p Pool, pl Placement) units.Seconds {
	local := pl.LocalBytes.Over(g.MemBW)
	remote := pl.RemoteBytes.Over(p.BandwidthPerGPU)
	t := local
	if remote > t {
		t = remote
	}
	if pl.RemoteBytes > 0 {
		t += p.Latency
	}
	return t
}

// Split returns the placement that spills exactly the overflow: weights
// and hot KV stay local, the remainder goes to the pool. workingSet is
// the total per-GPU bytes touched per step; resident is the per-GPU
// bytes that must stay local (weights).
func Split(g hw.GPU, workingSet, resident units.Bytes) (Placement, error) {
	if resident > g.Capacity {
		return Placement{}, fmt.Errorf("memory: resident set %v exceeds HBM %v", resident, g.Capacity)
	}
	if workingSet < resident {
		workingSet = resident
	}
	localBudget := g.Capacity
	if workingSet <= localBudget {
		return Placement{LocalBytes: workingSet}, nil
	}
	return Placement{
		LocalBytes:  localBudget,
		RemoteBytes: workingSet - localBudget,
	}, nil
}

// EffectiveBandwidth returns the aggregate streaming rate of a placement
// on the GPU+pool pair: bytes per step over step time.
func EffectiveBandwidth(g hw.GPU, p Pool, pl Placement) units.BytesPerSec {
	t := StepTime(g, p, pl)
	if t <= 0 {
		return 0
	}
	return units.BytesPerSec(float64(pl.LocalBytes+pl.RemoteBytes) / float64(t))
}

// MaxBatch returns the largest decode batch a group of n GPUs supports
// with the pool attached: per-GPU weights stay local; KV fills the rest
// of HBM and then the pool quota.
func MaxBatch(g hw.GPU, p Pool, n int, weightsPerGPU, kvPerRequestPerGPU units.Bytes) int {
	if n <= 0 || kvPerRequestPerGPU <= 0 {
		return 0
	}
	localFree := float64(g.Capacity) - float64(weightsPerGPU)
	if localFree < 0 {
		return 0
	}
	poolPerGPU := float64(p.Capacity) / float64(n)
	return int((localFree + poolPerGPU) / float64(kvPerRequestPerGPU))
}

// BreakEvenBandwidth returns the pool bandwidth per GPU at which a
// spilled working set streams as fast as an all-local one: the pool must
// carry its share at HBM pace, i.e. remote/local byte ratio times HBM
// bandwidth.
func BreakEvenBandwidth(g hw.GPU, pl Placement) units.BytesPerSec {
	if pl.RemoteBytes <= 0 {
		return 0
	}
	if pl.LocalBytes <= 0 {
		return units.BytesPerSec(math.Inf(1))
	}
	ratio := float64(pl.RemoteBytes) / float64(pl.LocalBytes)
	return units.BytesPerSec(ratio * float64(g.MemBW))
}
