package tco

import (
	"math"
	"testing"
	"testing/quick"

	"litegpu/internal/hw"
	"litegpu/internal/network"
	"litegpu/internal/units"
)

func TestSiliconAndPackageLiteCheaper(t *testing.T) {
	// The paper's manufacturing claim targets die + packaging: four
	// quarter dies must be substantially cheaper than one big die.
	c := DefaultCosts()
	h := float64(c.SiliconAndPackageCost(hw.H100()))
	l := float64(c.SiliconAndPackageCost(hw.Lite()))
	if 4*l >= h {
		t.Fatalf("4×Lite silicon (%v) should undercut H100 silicon (%v)", 4*l, h)
	}
	if saving := 1 - 4*l/h; saving < 0.20 {
		t.Errorf("silicon+package saving = %.1f%%, want ≥20%%", saving*100)
	}
}

func TestGPUCostFullBOMNearParity(t *testing.T) {
	// Full BOM includes HBM (identical in aggregate) and board costs, so
	// the honest saving is smaller: 4×Lite lands at or below the H100
	// but within a tight band — the dilution EXPERIMENTS.md reports.
	c := DefaultCosts()
	h := float64(c.GPUCost(hw.H100()))
	l := 4 * float64(c.GPUCost(hw.Lite()))
	if l >= h {
		t.Errorf("4×Lite BOM (%v) should not exceed 1×H100 BOM (%v)", l, h)
	}
	if l < 0.7*h {
		t.Errorf("4×Lite BOM (%v) implausibly cheap vs H100 (%v)", l, h)
	}
	// H100 lands in the publicly estimated BOM band (not sale price).
	if h < 1500 || h > 4500 {
		t.Errorf("H100 BOM = %v, want $1.5k–4.5k", h)
	}
}

func TestGPUCostMultiDie(t *testing.T) {
	c := DefaultCosts()
	single := hw.H100()
	dual := single
	dual.DiesPerPackage = 2
	if c.GPUCost(dual) <= c.GPUCost(single) {
		t.Error("dual-die package should cost more")
	}
	if c.SiliconAndPackageCost(dual) <= c.SiliconAndPackageCost(single) {
		t.Error("dual-die silicon should cost more")
	}
}

func TestGPUCostNilYieldGuard(t *testing.T) {
	var c Costs // zero value: no yield model set
	if v := c.GPUCost(hw.H100()); v <= 0 || math.IsInf(float64(v), 0) {
		t.Errorf("zero-value Costs GPUCost = %v", v)
	}
}

func TestTCOBreakdownAddsUp(t *testing.T) {
	c := DefaultCosts()
	fabric := network.FlatCircuit(32, network.CoPackagedOptics(), network.CircuitSwitch())
	b := c.TCO(ClusterSpec{
		GPU:              hw.Lite(),
		GPUs:             32,
		Fabric:           fabric,
		Throughput:       50000,
		NetTrafficPerGPU: 50 * units.GB,
	})
	if b.Total != b.GPUCapex+b.FabricCapex+b.CoolingCapex+b.EnergyOpex {
		t.Errorf("total %v ≠ sum of parts", b.Total)
	}
	if b.NetworkShare <= 0 || b.NetworkShare >= 1 {
		t.Errorf("network share = %v", b.NetworkShare)
	}
	if math.IsInf(float64(b.CostPerMTokens), 0) || b.CostPerMTokens <= 0 {
		t.Errorf("cost per Mtok = %v", b.CostPerMTokens)
	}
	if b.String() == "" {
		t.Error("empty breakdown string")
	}
}

func TestCoolingCapexClassMatters(t *testing.T) {
	c := DefaultCosts()
	// H100 (liquid) pays the liquid rate; Lite (air) pays the air rate —
	// at equal total TDP the H100 cluster's cooling plant costs 5× more.
	h := c.TCO(ClusterSpec{GPU: hw.H100(), GPUs: 8})
	l := c.TCO(ClusterSpec{GPU: hw.Lite(), GPUs: 32})
	if h.CoolingCapex <= l.CoolingCapex {
		t.Errorf("H100 cooling capex (%v) should exceed Lite (%v)", h.CoolingCapex, l.CoolingCapex)
	}
	ratio := float64(h.CoolingCapex) / float64(l.CoolingCapex)
	if math.Abs(ratio-5) > 1e-9 {
		t.Errorf("cooling capex ratio = %v, want 5 (rate ratio at equal TDP)", ratio)
	}
}

func TestTCOZeroThroughput(t *testing.T) {
	c := DefaultCosts()
	b := c.TCO(ClusterSpec{GPU: hw.Lite(), GPUs: 4})
	if !math.IsInf(float64(b.CostPerMTokens), 1) {
		t.Errorf("cost per Mtok with zero throughput = %v, want +Inf", b.CostPerMTokens)
	}
}

func TestPaperPerfPerDollarClaim(t *testing.T) {
	// Section 4: "even matching performance of today's clusters may lead
	// to sufficient improvement in performance per cost." Equal
	// throughput, equal aggregate silicon, fair fabrics for each scale:
	// the Lite cluster must win perf/$ — via cheaper dies, air cooling,
	// and the cheaper circuit fabric.
	c := DefaultCosts()
	const tokens = 800000.0
	// H100: NVLink copper backplane per 8-GPU node (7 mesh ports/GPU)
	// plus a pluggable-optics Clos across nodes. Lite: one flat CPO
	// circuit fabric covering both roles.
	nvlinkPerGPU := units.Dollars(7 * float64(network.Copper().PortCost))
	h100 := ClusterSpec{
		GPU:              hw.H100(),
		GPUs:             64,
		Fabric:           network.Clos(64, network.PluggableOptics(), network.PacketSwitch()),
		ScaleUpPerGPU:    nvlinkPerGPU,
		Throughput:       tokens,
		NetTrafficPerGPU: 100 * units.GB,
	}
	lite := ClusterSpec{
		GPU:              hw.Lite(),
		GPUs:             256,
		Fabric:           network.FlatCircuit(256, network.CoPackagedOptics(), network.CircuitSwitch()),
		Throughput:       tokens,
		NetTrafficPerGPU: 50 * units.GB,
	}
	ph := c.PerfPerDollar(h100)
	pl := c.PerfPerDollar(lite)
	if pl <= ph {
		t.Fatalf("Lite perf/$ (%v) should beat H100 (%v)", pl, ph)
	}
	if adv := pl / ph; adv < 1.05 || adv > 2.0 {
		t.Errorf("Lite perf/$ advantage = %.2f×, want a plausible 1.05–2×", adv)
	}
}

func TestNetworkShareGrowsWithScale(t *testing.T) {
	// The paper's warning: networking "can turn into a bottleneck with
	// increased scale". On a folded-Clos fabric the capex share is
	// non-decreasing in cluster size (tier count steps up).
	// Sweep from the scale where switch boxes amortize (one full radix).
	c := DefaultCosts()
	sizes := []int{64, 512, 8192, 65536}
	pts := c.NetworkShareSweep(hw.Lite(), sizes)
	for i := 1; i < len(pts); i++ {
		if pts[i].NetworkShare < pts[i-1].NetworkShare-1e-9 {
			t.Errorf("network share shrank from %d to %d endpoints: %v → %v",
				pts[i-1].Endpoints, pts[i].Endpoints,
				pts[i-1].NetworkShare, pts[i].NetworkShare)
		}
	}
	if pts[len(pts)-1].NetworkShare <= pts[0].NetworkShare+0.05 {
		t.Errorf("share did not grow across the sweep: %v → %v",
			pts[0].NetworkShare, pts[len(pts)-1].NetworkShare)
	}
	// The warning is Lite-specific: at the same scale the H100 cluster's
	// fabric share is far smaller because its GPUs cost more.
	h100 := c.NetworkShareSweep(hw.H100(), sizes)
	for i := range pts {
		if h100[i].NetworkShare >= pts[i].NetworkShare {
			t.Errorf("at %d endpoints H100 fabric share (%v) should be below Lite's (%v)",
				sizes[i], h100[i].NetworkShare, pts[i].NetworkShare)
		}
	}
}

func TestPerfPerDollarZeroTotal(t *testing.T) {
	var c Costs
	if p := c.PerfPerDollar(ClusterSpec{}); p != 0 {
		t.Errorf("degenerate perf/$ = %v, want 0", p)
	}
}

// Property: TCO is monotone in cluster size at fixed throughput.
func TestTCOMonotoneInSizeProperty(t *testing.T) {
	c := DefaultCosts()
	f := func(raw uint8) bool {
		n := int(raw%64) + 2
		mk := func(n int) Breakdown {
			fabric := network.FlatCircuit(n, network.CoPackagedOptics(), network.CircuitSwitch())
			return c.TCO(ClusterSpec{GPU: hw.Lite(), GPUs: n, Fabric: fabric, Throughput: 1000})
		}
		return float64(mk(n).Total) <= float64(mk(n+1).Total)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: perf/$ is linear in throughput at fixed hardware.
func TestPerfPerDollarLinearProperty(t *testing.T) {
	c := DefaultCosts()
	fabric := network.FlatCircuit(32, network.CoPackagedOptics(), network.CircuitSwitch())
	f := func(raw uint16) bool {
		tp := float64(raw) + 1
		s1 := ClusterSpec{GPU: hw.Lite(), GPUs: 32, Fabric: fabric, Throughput: tp}
		s2 := s1
		s2.Throughput = 2 * tp
		p1 := c.PerfPerDollar(s1)
		p2 := c.PerfPerDollar(s2)
		return math.Abs(p2-2*p1) < 1e-9*math.Max(p2, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
