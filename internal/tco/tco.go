// Package tco models total cost of ownership for GPU clusters and the
// paper's "primary metric for cloud operators": performance per dollar.
//
// Section 4 of the paper argues that even performance parity suffices
// because Lite-GPUs manufacture cheaper — but warns that "the additional
// cost of networking needs consideration, and while it may be initially
// a fraction of the GPU cost, it can turn into a bottleneck with
// increased scale." This package quantifies both sides: capex (silicon,
// HBM, packaging, fabric) plus opex (energy) amortized over a service
// life, divided by modeled throughput.
package tco

import (
	"fmt"
	"math"

	"litegpu/internal/die"
	"litegpu/internal/hw"
	"litegpu/internal/network"
	"litegpu/internal/power"
	"litegpu/internal/units"
)

// Costs parameterizes the TCO model.
type Costs struct {
	// Die prices compute silicon.
	Die die.CostModel

	// HBMPerGB is the memory cost per GB (stacked HBM3-class).
	HBMPerGB units.Dollars

	// BoardFixed is the per-package cost of PCB, connectors, mechanical
	// and assembly that does not scale with the part.
	BoardFixed units.Dollars

	// BoardPerWatt prices power delivery and local cooling hardware,
	// which scale with package TDP.
	BoardPerWatt units.Dollars

	// AirCoolingPerKW and LiquidCoolingPerKW are facility cooling capex
	// per kW of IT load; liquid plant is several times dearer, which is
	// part of the Lite-GPU saving (the paper: Lite racks can stay on
	// air).
	AirCoolingPerKW    units.Dollars
	LiquidCoolingPerKW units.Dollars

	// EnergyPerKWh is the blended datacenter electricity price.
	EnergyPerKWh units.Dollars

	// PUE is power usage effectiveness (total facility / IT power).
	PUE float64

	// LifeYears is the amortization window.
	LifeYears float64

	// UtilizationFactor is the average fraction of peak throughput a
	// production cluster sustains.
	UtilizationFactor float64
}

// DefaultCosts returns the calibration used by the studies: $12/GB HBM,
// $75 + $0.30/W board and power delivery, $80/kW air and $400/kW liquid
// cooling plant, $0.10/kWh at PUE 1.25, 4-year life, 60% sustained
// utilization.
func DefaultCosts() Costs {
	return Costs{
		Die:                die.DefaultCostModel(),
		HBMPerGB:           12,
		BoardFixed:         75,
		BoardPerWatt:       0.30,
		AirCoolingPerKW:    80,
		LiquidCoolingPerKW: 400,
		EnergyPerKWh:       0.10,
		PUE:                1.25,
		LifeYears:          4,
		UtilizationFactor:  0.60,
	}
}

// GPUCost returns the manufacturing cost of one packaged GPU: good die,
// HBM stacks, board and power delivery.
func (c Costs) GPUCost(g hw.GPU) units.Dollars {
	dm := c.Die
	if dm.Yield == nil {
		dm = die.DefaultCostModel()
	}
	silicon := dm.GoodDieCost(g.DieArea).Total
	if g.DiesPerPackage > 1 {
		silicon = units.Dollars(float64(silicon) * float64(g.DiesPerPackage))
	}
	hbm := units.Dollars(float64(g.Capacity) / units.GB * float64(c.HBMPerGB))
	board := c.BoardFixed + units.Dollars(float64(c.BoardPerWatt)*float64(g.TDP))
	return silicon + hbm + board
}

// SiliconAndPackageCost returns the die + advanced-packaging + test cost
// alone — the component the paper's "substantially lower cost" claim
// addresses, before HBM and board parity dilute it.
func (c Costs) SiliconAndPackageCost(g hw.GPU) units.Dollars {
	dm := c.Die
	if dm.Yield == nil {
		dm = die.DefaultCostModel()
	}
	total := dm.GoodDieCost(g.DieArea).Total
	if g.DiesPerPackage > 1 {
		total = units.Dollars(float64(total) * float64(g.DiesPerPackage))
	}
	return total
}

// ClusterSpec describes a deployment for TCO purposes.
type ClusterSpec struct {
	GPU  hw.GPU
	GPUs int
	// Fabric connects the GPUs; its cost and energy are attributed to
	// the cluster.
	Fabric network.Topology
	// Throughput is the modeled sustained output (tokens/s at peak).
	Throughput float64
	// NetTrafficPerGPU is the average injection rate per GPU used for
	// fabric energy (collectives).
	NetTrafficPerGPU units.BytesPerSec

	// ScaleUpPerGPU prices a separate scale-up domain per GPU (e.g. the
	// NVLink backplane inside an H100 node). Lite-GPU designs with one
	// flat fabric leave it zero — collapsing the two network tiers is
	// part of their cost story.
	ScaleUpPerGPU units.Dollars
}

// Breakdown itemizes cluster TCO.
type Breakdown struct {
	GPUCapex     units.Dollars
	FabricCapex  units.Dollars
	CoolingCapex units.Dollars
	EnergyOpex   units.Dollars
	Total        units.Dollars
	// NetworkShare is FabricCapex / (GPUCapex + FabricCapex).
	NetworkShare float64
	// CostPerMTokens is dollars per million output tokens over the
	// service life at the sustained utilization factor.
	CostPerMTokens units.Dollars
}

// TCO computes the cluster cost breakdown.
func (c Costs) TCO(s ClusterSpec) Breakdown {
	var b Breakdown
	if s.GPUs > 0 {
		b.GPUCapex = units.Dollars(float64(c.GPUCost(s.GPU)) * float64(s.GPUs))
	}
	b.FabricCapex = s.Fabric.Cost() +
		units.Dollars(float64(s.ScaleUpPerGPU)*float64(s.GPUs))

	// Facility cooling plant, priced by the cooling class the package
	// needs at TDP.
	coolRate := c.AirCoolingPerKW
	if class, _ := power.Required(s.GPU); class == power.Liquid {
		coolRate = c.LiquidCoolingPerKW
	}
	b.CoolingCapex = units.Dollars(
		float64(s.GPU.TDP) * float64(s.GPUs) / 1000 * float64(coolRate))

	// Energy: GPUs at TDP×utilization plus fabric at the offered load,
	// times PUE, over the service life.
	hours := c.LifeYears * 365.25 * 24
	gpuPower := float64(s.GPU.TDP) * float64(s.GPUs) * c.UtilizationFactor
	fabricPower := float64(s.Fabric.FabricPower(
		units.BytesPerSec(float64(s.NetTrafficPerGPU) * float64(s.GPUs))))
	kwh := (gpuPower + fabricPower) / 1000 * hours * c.PUE
	b.EnergyOpex = units.Dollars(kwh * float64(c.EnergyPerKWh))

	b.Total = b.GPUCapex + b.FabricCapex + b.CoolingCapex + b.EnergyOpex
	if cap := float64(b.GPUCapex + b.FabricCapex); cap > 0 {
		b.NetworkShare = float64(b.FabricCapex) / cap
	}
	if s.Throughput > 0 && c.UtilizationFactor > 0 {
		tokens := s.Throughput * c.UtilizationFactor * hours * 3600
		b.CostPerMTokens = units.Dollars(float64(b.Total) / tokens * 1e6)
	} else {
		b.CostPerMTokens = units.Dollars(math.Inf(1))
	}
	return b
}

// PerfPerDollar returns throughput per total dollar — the paper's
// headline operator metric.
func (c Costs) PerfPerDollar(s ClusterSpec) float64 {
	b := c.TCO(s)
	if b.Total <= 0 {
		return 0
	}
	return s.Throughput / float64(b.Total)
}

// String renders the breakdown.
func (b Breakdown) String() string {
	return fmt.Sprintf("GPUs %v + fabric %v (%.1f%% of capex) + cooling %v + energy %v = %v (%v per Mtok)",
		b.GPUCapex, b.FabricCapex, b.NetworkShare*100, b.CoolingCapex, b.EnergyOpex, b.Total, b.CostPerMTokens)
}

// NetworkShareSweep returns the fabric share of capex as a Lite cluster
// scales, the paper's warning quantified: flat circuit fabric over CPO,
// one port per GPU.
type SharePoint struct {
	Endpoints    int
	NetworkShare float64
}

// NetworkShareSweep evaluates the capex share of networking at the given
// cluster sizes for the given GPU, using a conventional folded-Clos
// fabric whose tier count grows with scale — the paper's warning that
// networking cost "can turn into a bottleneck with increased scale".
func (c Costs) NetworkShareSweep(g hw.GPU, sizes []int) []SharePoint {
	var pts []SharePoint
	for _, n := range sizes {
		fabric := network.Clos(n, network.CoPackagedOptics(), network.PacketSwitch())
		b := c.TCO(ClusterSpec{GPU: g, GPUs: n, Fabric: fabric})
		pts = append(pts, SharePoint{Endpoints: n, NetworkShare: b.NetworkShare})
	}
	return pts
}
