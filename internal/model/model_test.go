package model

import (
	"math"
	"testing"
	"testing/quick"

	"litegpu/internal/units"
)

func TestPresetsValidate(t *testing.T) {
	for _, m := range []Transformer{
		Llama3_70B(), GPT3_175B(), Llama3_405B(), Llama3_8B(),
	} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestParamCounts(t *testing.T) {
	// Each preset's computed parameter count must land near its
	// advertised size.
	tests := []struct {
		m      Transformer
		wantB  float64
		within float64 // relative tolerance
	}{
		{Llama3_70B(), 70.6, 0.02},
		{GPT3_175B(), 175, 0.02},
		{Llama3_405B(), 405, 0.02},
		{Llama3_8B(), 8.0, 0.05},
	}
	for _, tt := range tests {
		got := tt.m.Params() / 1e9
		if math.Abs(got-tt.wantB)/tt.wantB > tt.within {
			t.Errorf("%s: %0.1fB params, want ≈%vB", tt.m.Name, got, tt.wantB)
		}
	}
}

func TestValidateRejectsBadArchitectures(t *testing.T) {
	good := Llama3_70B()
	bad := []Transformer{
		{},
		func() Transformer { m := good; m.Layers = 0; return m }(),
		func() Transformer { m := good; m.Heads = 60; return m }(),  // headDim mismatch
		func() Transformer { m := good; m.KVHeads = 7; return m }(), // not a divisor
		func() Transformer { m := good; m.UpProjections = 3; return m }(),
		func() Transformer { m := good; m.Vocab = 0; return m }(),
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad architecture %d passed validation", i)
		}
	}
}

func TestWeightBytesPrecision(t *testing.T) {
	m := Llama3_70B()
	fp8 := m.WeightBytes(FP8())
	bf16 := m.WeightBytes(BF16())
	if math.Abs(float64(bf16)/float64(fp8)-2) > 1e-9 {
		t.Errorf("BF16 weights not 2× FP8: %v vs %v", bf16, fp8)
	}
	// 70B params at 1 byte ≈ 70 GB.
	if g := float64(fp8) / units.GB; g < 69 || g > 72 {
		t.Errorf("70B FP8 weights = %.1f GB, want ≈70", g)
	}
}

func TestKVBytesPerToken(t *testing.T) {
	// Llama3-70B: 80 layers × 2 × 8 heads × 128 dims × 1 B = 163 840 B.
	got := Llama3_70B().KVBytesPerToken(FP8())
	if got != 163840 {
		t.Errorf("KVBytesPerToken = %v, want 163840", float64(got))
	}
	// GPT-3's MHA multiplies this by 96/8 per layer (and 96/80 layers):
	// the root of its memory-bound decode in Figure 3b.
	gpt := GPT3_175B().KVBytesPerToken(FP8())
	if ratio := float64(gpt) / float64(got); ratio < 10 {
		t.Errorf("GPT-3/Llama-70B KV ratio = %.1f, want >10", ratio)
	}
}

func TestShardValidate(t *testing.T) {
	m := Llama3_70B() // 64 heads, 8 KV heads
	valid := []int{1, 2, 4, 8, 16, 32, 64}
	for _, tp := range valid {
		s := Shard{TP: tp, Batch: 1, SeqIn: 1, KVLen: 1, Prec: FP8()}
		if err := s.Validate(m); err != nil {
			t.Errorf("TP=%d should be valid: %v", tp, err)
		}
	}
	// TP must divide heads.
	s := Shard{TP: 3, Batch: 1, SeqIn: 1, KVLen: 1, Prec: FP8()}
	if err := s.Validate(m); err == nil {
		t.Error("TP=3 with 64 heads should be invalid")
	}
	// Structural errors.
	for _, bad := range []Shard{
		{TP: 0, Batch: 1, SeqIn: 1, KVLen: 1},
		{TP: 1, Batch: 0, SeqIn: 1, KVLen: 1},
		{TP: 1, Batch: 1, SeqIn: 0, KVLen: 1},
		{TP: 1, Batch: 1, SeqIn: 10, KVLen: 5},
	} {
		if err := bad.Validate(m); err == nil {
			t.Errorf("shard %+v should be invalid", bad)
		}
	}
}

func TestKVReplication(t *testing.T) {
	m := Llama3_70B() // 8 KV heads
	tests := []struct {
		tp        int
		perShard  int
		replicate float64
	}{
		{1, 8, 1},
		{4, 2, 1},
		{8, 1, 1},
		{16, 1, 2},
		{32, 1, 4},
	}
	for _, tt := range tests {
		s := Shard{TP: tt.tp, Batch: 1, SeqIn: 1, KVLen: 1, Prec: FP8()}
		if got := s.KVHeadsPerShard(m); got != tt.perShard {
			t.Errorf("TP=%d: KVHeadsPerShard = %d, want %d", tt.tp, got, tt.perShard)
		}
		if got := s.KVReplication(m); got != tt.replicate {
			t.Errorf("TP=%d: KVReplication = %v, want %v", tt.tp, got, tt.replicate)
		}
	}
}

func TestLayerStagesMatchNaiveFLOPs(t *testing.T) {
	// At TP=1, total stage FLOPs per token must approach the classic
	// 2·params estimate plus the attention context term.
	m := Llama3_70B()
	s := Shard{TP: 1, Batch: 1, SeqIn: 1, KVLen: 1, Prec: FP8()}
	stages, err := m.LayerStages(s)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, st := range stages {
		total += float64(st.FLOPs)
	}
	total *= float64(m.Layers)
	naive := float64(m.FLOPsPerToken())
	// At KVLen=1 the attention term is tiny, so within 1%.
	if math.Abs(total-naive)/naive > 0.01 {
		t.Errorf("stage FLOPs %v vs naive 2·params %v", total, naive)
	}
}

func TestLayerStagesTPDividesWork(t *testing.T) {
	m := GPT3_175B() // MHA: no replication anywhere up to 96
	mk := func(tp int) []Stage {
		s := Shard{TP: tp, Batch: 4, SeqIn: 1500, KVLen: 1500, Causal: true, Prec: FP8()}
		stages, err := m.LayerStages(s)
		if err != nil {
			t.Fatal(err)
		}
		return stages
	}
	one := mk(1)
	eight := mk(8)
	for i := range one {
		ratio := float64(one[i].FLOPs) / float64(eight[i].FLOPs)
		if math.Abs(ratio-8) > 1e-6 {
			t.Errorf("stage %s: TP=8 FLOP ratio = %v, want 8", one[i].Name, ratio)
		}
	}
}

func TestKVReplicationInflatesWork(t *testing.T) {
	// With Llama (8 KV heads), TP=32 replicates each KV head 4×, so QKV
	// FLOPs shrink less than 32× vs TP=1.
	m := Llama3_70B()
	s1 := Shard{TP: 1, Batch: 1, SeqIn: 128, KVLen: 128, Causal: true, Prec: FP8()}
	s32 := Shard{TP: 32, Batch: 1, SeqIn: 128, KVLen: 128, Causal: true, Prec: FP8()}
	st1, err := m.LayerStages(s1)
	if err != nil {
		t.Fatal(err)
	}
	st32, err := m.LayerStages(s32)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(st1[0].FLOPs) / float64(st32[0].FLOPs)
	if ratio >= 32 {
		t.Errorf("qkv TP=32 speedup = %v, should be <32 due to KV replication", ratio)
	}
	if ratio < 16 {
		t.Errorf("qkv TP=32 speedup = %v, unexpectedly small", ratio)
	}
}

func TestAllReducePayloads(t *testing.T) {
	m := Llama3_70B()
	s := Shard{TP: 8, Batch: 2, SeqIn: 100, KVLen: 100, Causal: true, Prec: FP8()}
	stages, err := m.LayerStages(s)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly two stages carry all-reduces: proj and mlp.
	var withAR []string
	var payload units.Bytes
	for _, st := range stages {
		if st.AllReduce > 0 {
			withAR = append(withAR, st.Name)
			payload = st.AllReduce
		}
	}
	if len(withAR) != 2 || withAR[0] != "proj" || withAR[1] != "mlp" {
		t.Errorf("all-reduce stages = %v, want [proj mlp]", withAR)
	}
	// Payload = B·S·d·1 byte regardless of TP.
	want := units.Bytes(2 * 100 * 8192)
	if payload != want {
		t.Errorf("all-reduce payload = %v, want %v", payload, want)
	}
}

func TestCausalHalvesAttention(t *testing.T) {
	m := Llama3_70B()
	base := Shard{TP: 1, Batch: 1, SeqIn: 1000, KVLen: 1000, Prec: FP8()}
	causal := base
	causal.Causal = true
	full, err := m.LayerStages(base)
	if err != nil {
		t.Fatal(err)
	}
	half, err := m.LayerStages(causal)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(half[1].FLOPs) / float64(full[1].FLOPs)
	// Mean attended length is (L+1)/2 ≈ 0.5·L for causal.
	if math.Abs(ratio-0.5005) > 0.01 {
		t.Errorf("causal attention ratio = %v, want ≈0.5", ratio)
	}
}

func TestDecodeAttentionScalesWithContext(t *testing.T) {
	m := GPT3_175B()
	mk := func(kv int) Stage {
		s := Shard{TP: 8, Batch: 16, SeqIn: 1, KVLen: kv, Prec: FP8()}
		stages, err := m.LayerStages(s)
		if err != nil {
			t.Fatal(err)
		}
		return stages[1]
	}
	a := mk(1000)
	b := mk(2000)
	if r := float64(b.FLOPs) / float64(a.FLOPs); math.Abs(r-2) > 1e-6 {
		t.Errorf("attention FLOPs context scaling = %v, want 2", r)
	}
	if r := float64(b.MemBytes) / float64(a.MemBytes); r < 1.9 {
		t.Errorf("attention bytes context scaling = %v, want ≈2", r)
	}
}

func TestLayerStagesErrors(t *testing.T) {
	m := Llama3_70B()
	if _, err := m.LayerStages(Shard{TP: 3, Batch: 1, SeqIn: 1, KVLen: 1, Prec: FP8()}); err == nil {
		t.Error("invalid TP accepted")
	}
	var bad Transformer
	if _, err := bad.LayerStages(Shard{TP: 1, Batch: 1, SeqIn: 1, KVLen: 1, Prec: FP8()}); err == nil {
		t.Error("invalid architecture accepted")
	}
}

func TestLMHead(t *testing.T) {
	m := Llama3_70B()
	s := Shard{TP: 8, Batch: 4, SeqIn: 1, KVLen: 1, Prec: FP8()}
	head := m.LMHead(s)
	wantFLOPs := 2.0 * 4 * 8192 * 128256 / 8
	if math.Abs(float64(head.FLOPs)-wantFLOPs) > 1 {
		t.Errorf("LMHead FLOPs = %v, want %v", head.FLOPs, wantFLOPs)
	}
	if head.AllReduce != 0 {
		t.Error("LMHead should not carry an all-reduce")
	}
}

func TestShardWeightBytes(t *testing.T) {
	m := Llama3_70B()
	p := FP8()
	// TP=1 matches the unsharded weight count.
	s1 := Shard{TP: 1, Batch: 1, SeqIn: 1, KVLen: 1, Prec: p}
	if got, want := m.ShardWeightBytes(s1), m.WeightBytes(p); math.Abs(float64(got)-float64(want)) > 1e-6*float64(want) {
		t.Errorf("TP=1 shard weights %v ≠ total %v", got, want)
	}
	// TP=8: aggregate equals total (8 KV heads split evenly).
	s8 := Shard{TP: 8, Batch: 1, SeqIn: 1, KVLen: 1, Prec: p}
	agg := 8 * float64(m.ShardWeightBytes(s8))
	if math.Abs(agg-float64(m.WeightBytes(p)))/float64(m.WeightBytes(p)) > 1e-9 {
		t.Errorf("TP=8 aggregate weights %v ≠ total %v", agg, m.WeightBytes(p))
	}
	// TP=32 aggregates to MORE than total (KV replication).
	s32 := Shard{TP: 32, Batch: 1, SeqIn: 1, KVLen: 1, Prec: p}
	agg32 := 32 * float64(m.ShardWeightBytes(s32))
	if agg32 <= float64(m.WeightBytes(p)) {
		t.Error("TP=32 aggregate should exceed unsharded weights (KV replication)")
	}
}

func TestShardKVBytesPerToken(t *testing.T) {
	m := Llama3_70B()
	p := FP8()
	// TP=8: per-GPU KV is 1/8 of total.
	s := Shard{TP: 8, Batch: 1, SeqIn: 1, KVLen: 1, Prec: p}
	got := float64(m.ShardKVBytesPerToken(s))
	want := float64(m.KVBytesPerToken(p)) / 8
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("TP=8 shard KV/token = %v, want %v", got, want)
	}
	// TP=32: per-GPU KV is 1/8 of total (not 1/32) — replication.
	s32 := Shard{TP: 32, Batch: 1, SeqIn: 1, KVLen: 1, Prec: p}
	got32 := float64(m.ShardKVBytesPerToken(s32))
	if math.Abs(got32-want) > 1e-9 {
		t.Errorf("TP=32 shard KV/token = %v, want %v (one KV head per shard)", got32, want)
	}
}

func TestByName(t *testing.T) {
	if m, ok := ByName("GPT3-175B"); !ok || m.Layers != 96 {
		t.Errorf("ByName(GPT3-175B) = %v, %v", m, ok)
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) succeeded")
	}
}

func TestPaperModels(t *testing.T) {
	ms := PaperModels()
	if len(ms) != 3 || ms[0].Name != "Llama3-70B" || ms[2].Name != "Llama3-405B" {
		t.Errorf("PaperModels = %v", ms)
	}
}

func TestStringOutput(t *testing.T) {
	s := Llama3_405B().String()
	if s == "" {
		t.Error("empty model string")
	}
}

// Property: stage FLOPs and bytes scale linearly with batch size.
func TestStagesBatchLinearityProperty(t *testing.T) {
	m := Llama3_70B()
	f := func(raw uint8) bool {
		b := int(raw%32) + 1
		s1 := Shard{TP: 4, Batch: b, SeqIn: 64, KVLen: 64, Causal: true, Prec: FP8()}
		s2 := s1
		s2.Batch = 2 * b
		st1, err1 := m.LayerStages(s1)
		st2, err2 := m.LayerStages(s2)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range st1 {
			if math.Abs(float64(st2[i].FLOPs)/float64(st1[i].FLOPs)-2) > 1e-9 {
				return false
			}
			if st2[i].AllReduce != 2*st1[i].AllReduce {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: per-GPU weight bytes never increase with TP degree.
func TestShardWeightsMonotoneProperty(t *testing.T) {
	m := Llama3_405B()
	tps := []int{1, 2, 4, 8, 16, 32, 64, 128}
	for i := 1; i < len(tps); i++ {
		a := Shard{TP: tps[i-1], Batch: 1, SeqIn: 1, KVLen: 1, Prec: FP8()}
		b := Shard{TP: tps[i], Batch: 1, SeqIn: 1, KVLen: 1, Prec: FP8()}
		if m.ShardWeightBytes(b) > m.ShardWeightBytes(a) {
			t.Errorf("per-GPU weights grew from TP=%d to TP=%d", tps[i-1], tps[i])
		}
	}
}
