// Package model describes transformer LLM architectures and accounts for
// the compute (FLOPs), memory traffic (bytes), and collective-communication
// payloads of running them — per stage, per layer, under tensor
// parallelism — exactly the quantities the paper's roofline study feeds
// into its performance model ("We model important metrics including FLOPS,
// memory accesses, and the network traffic of collectives").
package model

import (
	"fmt"

	"litegpu/internal/units"
)

// Transformer is a decoder-only transformer architecture. Only the
// dimensions that drive FLOP/byte accounting appear; layer norms, biases,
// and rotary embeddings contribute <0.1% of both and are deliberately
// omitted (documented model simplification).
type Transformer struct {
	Name    string
	Layers  int
	DModel  int // hidden size
	Heads   int // query heads
	KVHeads int // key/value heads (== Heads for MHA, fewer for GQA)
	HeadDim int // per-head dimension; Heads·HeadDim == DModel for these models
	FFNDim  int // MLP intermediate size

	// UpProjections is the number of input-side MLP matrices: 1 for
	// classic GELU MLPs (GPT-3), 2 for gated SwiGLU (Llama). The output
	// projection adds one more matrix in both cases.
	UpProjections int

	Vocab int

	// TiedEmbeddings marks models that share the input embedding and
	// output head matrices (GPT-3 does; Llama 3 does not).
	TiedEmbeddings bool
}

// Validate reports the first structural inconsistency, or nil.
func (t Transformer) Validate() error {
	switch {
	case t.Name == "":
		return fmt.Errorf("model: empty name")
	case t.Layers <= 0, t.DModel <= 0, t.Heads <= 0, t.KVHeads <= 0,
		t.HeadDim <= 0, t.FFNDim <= 0, t.Vocab <= 0:
		return fmt.Errorf("model: %s: non-positive dimension", t.Name)
	case t.UpProjections < 1 || t.UpProjections > 2:
		return fmt.Errorf("model: %s: UpProjections must be 1 or 2", t.Name)
	case t.Heads%t.KVHeads != 0:
		return fmt.Errorf("model: %s: heads (%d) not a multiple of KV heads (%d)",
			t.Name, t.Heads, t.KVHeads)
	case t.Heads*t.HeadDim != t.DModel:
		return fmt.Errorf("model: %s: heads×headDim (%d) ≠ dModel (%d)",
			t.Name, t.Heads*t.HeadDim, t.DModel)
	}
	return nil
}

// AttentionParamsPerLayer returns the parameter count of one layer's
// attention block: Q and output projections (d×d each) plus K and V
// projections (d×kvHeads·headDim each).
func (t Transformer) AttentionParamsPerLayer() float64 {
	d := float64(t.DModel)
	kv := float64(t.KVHeads * t.HeadDim)
	return d*d + d*d + 2*d*kv
}

// MLPParamsPerLayer returns the parameter count of one layer's MLP:
// UpProjections input matrices plus one down projection.
func (t Transformer) MLPParamsPerLayer() float64 {
	return float64(t.UpProjections+1) * float64(t.DModel) * float64(t.FFNDim)
}

// EmbeddingParams returns the parameter count of the embedding table(s):
// one vocab×d matrix, or two when input and output are untied.
func (t Transformer) EmbeddingParams() float64 {
	n := float64(t.Vocab) * float64(t.DModel)
	if t.TiedEmbeddings {
		return n
	}
	return 2 * n
}

// Params returns the total parameter count.
func (t Transformer) Params() float64 {
	perLayer := t.AttentionParamsPerLayer() + t.MLPParamsPerLayer()
	return float64(t.Layers)*perLayer + t.EmbeddingParams()
}

// WeightBytes returns the bytes of weights at the given precision.
func (t Transformer) WeightBytes(p Precision) units.Bytes {
	return units.Bytes(t.Params() * float64(p.Weight))
}

// KVBytesPerToken returns the KV-cache bytes appended per generated or
// prefilled token of one request, across all layers (K and V, all KV
// heads), before any tensor-parallel sharding.
func (t Transformer) KVBytesPerToken(p Precision) units.Bytes {
	return units.Bytes(float64(t.Layers) * 2 * float64(t.KVHeads) *
		float64(t.HeadDim) * float64(p.KV))
}

// String summarizes the architecture.
func (t Transformer) String() string {
	return fmt.Sprintf("%s: %d layers, d=%d, %d/%d heads, ffn=%d, %.1fB params",
		t.Name, t.Layers, t.DModel, t.Heads, t.KVHeads, t.FFNDim, t.Params()/1e9)
}

// Precision sets the bytes per element for the three storage classes the
// model touches. The paper's Table 1 quotes FP8 peaks, so the default is
// one byte everywhere; switch Weight/KV/Activation to 2 for BF16 studies.
type Precision struct {
	Weight     int // bytes per weight parameter
	KV         int // bytes per KV-cache element
	Activation int // bytes per activation element (also collective payloads)
}

// FP8 is the default end-to-end 8-bit precision matching Table 1.
func FP8() Precision { return Precision{Weight: 1, KV: 1, Activation: 1} }

// BF16 is the 16-bit alternative.
func BF16() Precision { return Precision{Weight: 2, KV: 2, Activation: 2} }

// Presets --------------------------------------------------------------------

// Llama3_70B returns the Llama 3 70B architecture (GQA, SwiGLU).
func Llama3_70B() Transformer {
	return Transformer{
		Name: "Llama3-70B", Layers: 80, DModel: 8192,
		Heads: 64, KVHeads: 8, HeadDim: 128,
		FFNDim: 28672, UpProjections: 2, Vocab: 128256,
	}
}

// GPT3_175B returns the GPT-3 175B architecture (MHA, GELU MLP, tied
// embeddings). Its 96 KV heads give it the paper's "proportionally longer
// memory-bound stages" in decode.
func GPT3_175B() Transformer {
	return Transformer{
		Name: "GPT3-175B", Layers: 96, DModel: 12288,
		Heads: 96, KVHeads: 96, HeadDim: 128,
		FFNDim: 49152, UpProjections: 1, Vocab: 50257,
		TiedEmbeddings: true,
	}
}

// Llama3_405B returns the Llama 3.1 405B architecture (GQA, SwiGLU).
func Llama3_405B() Transformer {
	return Transformer{
		Name: "Llama3-405B", Layers: 126, DModel: 16384,
		Heads: 128, KVHeads: 8, HeadDim: 128,
		FFNDim: 53248, UpProjections: 2, Vocab: 128256,
	}
}

// Llama3_8B returns the Llama 3 8B architecture, used by the serving
// examples for single-GPU and small-cluster scenarios.
func Llama3_8B() Transformer {
	return Transformer{
		Name: "Llama3-8B", Layers: 32, DModel: 4096,
		Heads: 32, KVHeads: 8, HeadDim: 128,
		FFNDim: 14336, UpProjections: 2, Vocab: 128256,
	}
}

// PaperModels returns the three models evaluated in Figure 3, in paper
// order.
func PaperModels() []Transformer {
	return []Transformer{Llama3_70B(), GPT3_175B(), Llama3_405B()}
}

// ByName returns the preset with the given name.
func ByName(name string) (Transformer, bool) {
	for _, m := range []Transformer{
		Llama3_70B(), GPT3_175B(), Llama3_405B(), Llama3_8B(),
	} {
		if m.Name == name {
			return m, true
		}
	}
	return Transformer{}, false
}
