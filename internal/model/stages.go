package model

import (
	"fmt"

	"litegpu/internal/units"
)

// Shard describes one tensor-parallel execution pass over a model:
// the TP degree, how many requests run together, how many tokens each
// request contributes to this pass, and how much KV context attention
// reads. Prefill of a 1500-token prompt is {SeqIn: 1500, KVLen: 1500,
// Causal: true}; one decode step at context 1500 is {SeqIn: 1, KVLen:
// 1500}.
type Shard struct {
	TP     int
	Batch  int
	SeqIn  int  // tokens processed this pass, per request
	KVLen  int  // context length attended, per request (≥ SeqIn for prefill)
	Causal bool // halve attention work for causal prefill
	Prec   Precision

	// IdealKV makes the KV cache shard perfectly even when TP exceeds
	// the KV-head count, as if attention were also split along the head
	// dimension. The paper's model implicitly assumes this (its 32-way
	// Llama configurations shard 8 KV heads); real Megatron-style
	// deployments instead replicate KV heads, which IdealKV=false models.
	IdealKV bool
}

// Validate reports the first inconsistency between the shard and the
// architecture, or nil. A TP degree is legal when it divides the query
// heads and is compatible with the KV heads: fewer shards than KV heads
// must divide them evenly; more shards than KV heads must be a multiple
// (each KV head is then replicated, the standard Megatron fallback the
// paper's 32-GPU Llama configurations require).
func (s Shard) Validate(t Transformer) error {
	switch {
	case s.TP <= 0:
		return fmt.Errorf("model: non-positive TP degree %d", s.TP)
	case s.Batch <= 0:
		return fmt.Errorf("model: non-positive batch %d", s.Batch)
	case s.SeqIn <= 0:
		return fmt.Errorf("model: non-positive SeqIn %d", s.SeqIn)
	case s.KVLen < s.SeqIn:
		return fmt.Errorf("model: KVLen %d < SeqIn %d", s.KVLen, s.SeqIn)
	case t.Heads%s.TP != 0:
		return fmt.Errorf("model: TP %d does not divide %d heads", s.TP, t.Heads)
	}
	if s.TP <= t.KVHeads {
		if t.KVHeads%s.TP != 0 {
			return fmt.Errorf("model: TP %d does not divide %d KV heads", s.TP, t.KVHeads)
		}
	} else if s.TP%t.KVHeads != 0 {
		return fmt.Errorf("model: TP %d not a multiple of %d KV heads", s.TP, t.KVHeads)
	}
	return nil
}

// KVHeadsPerShard returns how many KV heads each shard stores under
// replication semantics: the even split when TP ≤ KVHeads, otherwise 1
// (replicated).
func (s Shard) KVHeadsPerShard(t Transformer) int {
	if s.TP <= t.KVHeads {
		return t.KVHeads / s.TP
	}
	return 1
}

// kvHeadsPerShardF returns the (possibly fractional) per-shard KV-head
// count the cost model uses: KVHeads/TP under IdealKV, replication-aware
// otherwise.
func (s Shard) kvHeadsPerShardF(t Transformer) float64 {
	if s.IdealKV {
		return float64(t.KVHeads) / float64(s.TP)
	}
	return float64(s.KVHeadsPerShard(t))
}

// KVReplication returns the factor by which KV storage is inflated by
// replication: TP/KVHeads when TP exceeds KVHeads (and IdealKV is off),
// else 1.
func (s Shard) KVReplication(t Transformer) float64 {
	if !s.IdealKV && s.TP > t.KVHeads {
		return float64(s.TP) / float64(t.KVHeads)
	}
	return 1
}

// Stage is the per-GPU cost of one compute stage: floating-point work,
// HBM traffic, and the payload of the tensor-parallel all-reduce that
// follows the stage (zero when none does). The roofline engine turns
// these into time against a device's ceilings.
type Stage struct {
	Name      string
	FLOPs     units.FLOPs
	MemBytes  units.Bytes
	AllReduce units.Bytes // full tensor payload; 0 when no collective follows
}

// effAttend returns the average number of context positions each query
// token attends to. Causal prefill of S new tokens over a KV window of L
// has token i attending L−S+i+1 positions; the mean is L − (S−1)/2.
func (s Shard) effAttend() float64 {
	l := float64(s.KVLen)
	if !s.Causal {
		return l
	}
	return l - (float64(s.SeqIn)-1)/2
}

// LayerStages returns the per-GPU costs of one transformer layer under
// the shard: QKV projection, fused attention, output projection, and MLP
// — the stage list the paper's methodology names ("projection, MLP, and
// fused FlashAttention").
func (t Transformer) LayerStages(s Shard) ([]Stage, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if err := s.Validate(t); err != nil {
		return nil, err
	}
	g := float64(s.TP)
	b := float64(s.Batch)
	sq := float64(s.SeqIn)
	d := float64(t.DModel)
	hd := float64(t.HeadDim)
	heads := float64(t.Heads)
	kvShard := s.kvHeadsPerShardF(t)
	wB := float64(s.Prec.Weight)
	kB := float64(s.Prec.KV)
	aB := float64(s.Prec.Activation)
	tokens := b * sq // tokens in this pass

	// QKV projection. Q is column-parallel over query heads (perfect /g
	// split); K and V are computed per stored KV head, so replication
	// shows up as extra per-shard work and weights.
	qFLOPs := 2 * tokens * d * d / g
	kvFLOPs := 2 * tokens * d * (2 * kvShard * hd)
	qkv := Stage{
		Name:  "qkv",
		FLOPs: units.FLOPs(qFLOPs + kvFLOPs),
		MemBytes: units.Bytes(
			(d*d/g+2*d*kvShard*hd)*wB + // weights
				tokens*d*aB + // full input activations per shard
				tokens*(d/g+2*kvShard*hd)*aB + // Q/K/V outputs
				tokens*2*kvShard*hd*kB), // KV-cache append
	}

	// Fused attention (FlashAttention): QKᵀ and PV, reading the KV cache
	// once. No S×L intermediate traffic — that is what fusion buys.
	att := float64(s.effAttend())
	attn := Stage{
		Name:  "attention",
		FLOPs: units.FLOPs(4 * b * sq * att * hd * heads / g),
		MemBytes: units.Bytes(
			b*att*2*kvShard*hd*kB + // KV cache read
				tokens*(d/g)*aB*2), // Q read + O write
	}

	// Output projection, row-parallel, followed by all-reduce #1.
	proj := Stage{
		Name:  "proj",
		FLOPs: units.FLOPs(2 * tokens * d * d / g),
		MemBytes: units.Bytes(
			d*d/g*wB +
				tokens*(d/g)*aB + // sharded input
				tokens*d*aB), // full output (post-reduce operand)
		AllReduce: units.Bytes(tokens * d * aB),
	}

	// MLP (UpProjections input matrices + down projection), followed by
	// all-reduce #2.
	upMats := float64(t.UpProjections)
	ffn := float64(t.FFNDim)
	mlp := Stage{
		Name:  "mlp",
		FLOPs: units.FLOPs(2 * tokens * d * ffn * (upMats + 1) / g),
		MemBytes: units.Bytes(
			(upMats+1)*d*ffn/g*wB +
				tokens*d*aB + // input
				2*tokens*ffn/g*aB + // intermediate write+read
				tokens*d*aB), // output
		AllReduce: units.Bytes(tokens * d * aB),
	}

	return []Stage{qkv, attn, proj, mlp}, nil
}

// LMHead returns the per-GPU cost of the final vocabulary projection.
// Both prefill and decode need logits for exactly one position per
// request. The vocab-parallel all-gather of logits is tiny relative to
// the matmul and is omitted (documented simplification).
func (t Transformer) LMHead(s Shard) Stage {
	g := float64(s.TP)
	b := float64(s.Batch)
	d := float64(t.DModel)
	v := float64(t.Vocab)
	return Stage{
		Name:  "lmhead",
		FLOPs: units.FLOPs(2 * b * d * v / g),
		MemBytes: units.Bytes(
			d*v/g*float64(s.Prec.Weight) +
				b*(d+v/g)*float64(s.Prec.Activation)),
	}
}

// ShardWeightBytes returns the per-GPU weight footprint under the shard,
// including the KV-projection replication overhead when TP > KVHeads.
func (t Transformer) ShardWeightBytes(s Shard) units.Bytes {
	g := float64(s.TP)
	wB := float64(s.Prec.Weight)
	d := float64(t.DModel)
	hd := float64(t.HeadDim)
	kvShard := s.kvHeadsPerShardF(t)
	perLayer := d*d/g + // Q
		d*d/g + // O
		2*d*kvShard*hd + // K, V (replication-aware)
		(float64(t.UpProjections)+1)*d*float64(t.FFNDim)/g
	return units.Bytes((float64(t.Layers)*perLayer + t.EmbeddingParams()/g) * wB)
}

// ShardKVBytesPerToken returns the per-GPU KV-cache bytes appended per
// token of one request under the shard.
func (t Transformer) ShardKVBytesPerToken(s Shard) units.Bytes {
	return units.Bytes(float64(t.Layers) * 2 * s.kvHeadsPerShardF(t) *
		float64(t.HeadDim) * float64(s.Prec.KV))
}

// FLOPsPerToken returns the classic ≈2·params estimate of forward-pass
// work per token (matmuls only, no attention context term), used for
// sanity checks against the stage accounting.
func (t Transformer) FLOPsPerToken() units.FLOPs {
	perLayer := t.AttentionParamsPerLayer() + t.MLPParamsPerLayer()
	return units.FLOPs(2 * float64(t.Layers) * perLayer)
}
