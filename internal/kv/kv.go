// Package kv models KV-cache memory as a first-class simulated
// resource: a deterministic, allocation-free paged block allocator in
// the style of vLLM's PagedAttention.
//
// Each serving instance owns one Allocator over a fixed budget of
// fixed-size blocks (BlockTokens tokens each), sized by internal/serve
// from the GPU's HBM capacity net of model weights and the model's
// KV-bytes/token at the instance's tensor-parallel degree. Sequences
// allocate blocks at admission, grow one block per BlockTokens decoded
// tokens, and free on completion; when the pool runs dry the scheduler
// preempts (see Policy). With PrefixCache set, the leading full blocks
// of a request's shared prefix are content-addressed by hash: freed
// prefix blocks park in an idle LRU instead of the free stack and later
// requests with the same prefix re-reference them instead of
// reallocating.
//
// The zero-value Config disables the memory model entirely — the
// historical infinite-memory behavior, byte-identical to every golden
// corpus captured before this package existed.
//
// Determinism and allocation discipline follow the repo invariants
// (docs/correctness.md): no maps (the prefix index is an open-addressed
// table with backward-shift deletion), no wall clock, no global rand,
// and the steady-state operations (Alloc, Grow, Free) are
// //litegpu:hotpath-annotated and AllocsPerRun-pinned at zero.
package kv

import (
	"fmt"
	"strings"
)

// Policy selects what the scheduler does when a decode step needs a KV
// block and the allocator has none: nothing (Off — the infinite-memory
// zero value), drop the victim's blocks and re-run its prefill
// (Recompute), or move the victim's blocks out and back over the
// fabric (Swap).
type Policy int

const (
	// Off disables the KV memory model: admission is gated by the batch
	// caps alone and no blocks are tracked. The zero value.
	Off Policy = iota
	// Recompute frees a preempted sequence's blocks outright and
	// re-runs its prefill (prompt plus already-generated tokens) when
	// capacity frees up — vLLM's default recovery.
	Recompute
	// Swap moves a preempted sequence's blocks to remote memory and
	// back, priced as a fabric transfer when the network is in the
	// event loop (instantaneous otherwise); no compute is re-run.
	Swap
)

// String returns the policy's CLI name.
func (p Policy) String() string {
	switch p {
	case Recompute:
		return "recompute"
	case Swap:
		return "swap"
	default:
		return "off"
	}
}

// Config parameterizes the per-instance KV memory model. The zero
// value keeps the historical infinite-memory semantics byte-identical.
type Config struct {
	// Policy enables the model and selects the preemption recovery
	// discipline. Off (the zero value) disables block accounting.
	Policy Policy
	// BlockTokens is the page size in tokens (default 16, vLLM's
	// default).
	BlockTokens int
	// PrefixCache enables hash-based prefix caching: the leading full
	// blocks of a request's declared shared prefix are ref-count-shared
	// across sequences and survive frees in an idle LRU.
	PrefixCache bool
	// Blocks overrides the per-instance block budget (0 = derive from
	// HBM capacity net of model weights).
	Blocks int
}

// Enabled reports whether the KV memory model is on.
func (c Config) Enabled() bool { return c.Policy != Off }

// Validate reports the first configuration problem, or nil.
func (c Config) Validate() error {
	if c.Policy < Off || c.Policy > Swap {
		return fmt.Errorf("kv: unknown policy %d", int(c.Policy))
	}
	if c.BlockTokens < 0 {
		return fmt.Errorf("kv: negative BlockTokens %d", c.BlockTokens)
	}
	if c.Blocks < 0 {
		return fmt.Errorf("kv: negative Blocks %d", c.Blocks)
	}
	if !c.Enabled() && (c.BlockTokens != 0 || c.PrefixCache || c.Blocks != 0) {
		return fmt.Errorf("kv: block parameters set but Policy is off")
	}
	return nil
}

// String renders the config as its CLI spec: "off" or
// "policy[+prefix]".
func (c Config) String() string {
	if !c.Enabled() {
		return "off"
	}
	s := c.Policy.String()
	if c.PrefixCache {
		s += "+prefix"
	}
	return s
}

// ParseConfig parses a CLI KV spec: "off", or "policy[+prefix]" with
// policy ∈ {recompute, swap}. BlockTokens and Blocks keep their
// defaults; set them on the returned Config directly when needed.
func ParseConfig(spec string) (Config, error) {
	var c Config
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" || spec == "none" {
		return c, nil
	}
	parts := strings.Split(spec, "+")
	switch parts[0] {
	case "recompute":
		c.Policy = Recompute
	case "swap":
		c.Policy = Swap
	default:
		return Config{}, fmt.Errorf("kv: unknown policy %q (want off, recompute, or swap)", parts[0])
	}
	for _, p := range parts[1:] {
		switch p {
		case "prefix":
			c.PrefixCache = true
		default:
			return Config{}, fmt.Errorf("kv: unknown option %q (want prefix)", p)
		}
	}
	return c, nil
}

// DefaultPolicyCandidates returns the KV policies the capacity planner
// crosses when asked to search the memory axis: the historical
// infinite-memory baseline, and both preemption disciplines with
// prefix caching on.
func DefaultPolicyCandidates() []Config {
	return []Config{
		{},
		{Policy: Recompute, PrefixCache: true},
		{Policy: Swap, PrefixCache: true},
	}
}

// BlockTokensOrDefault resolves the page size.
func (c Config) BlockTokensOrDefault() int {
	if c.BlockTokens > 0 {
		return c.BlockTokens
	}
	return 16
}

// SeqID is a handle to a live sequence's block set. Handles are
// recycled after Free; using a freed handle panics.
type SeqID int32

const nilBlock int32 = -1

// seqState is one sequence's allocation: its block list (retained
// across handle reuse so steady state never allocates), its token
// count, and liveness.
type seqState struct {
	blocks []int32
	tokens int
	live   bool
}

// Allocator is one instance's paged KV block pool. All state lives in
// preallocated arrays indexed by block number; the prefix index is an
// open-addressed hash table (linear probing, backward-shift deletion)
// so steady-state operation performs zero heap allocations and is
// deterministic — no Go map is ever iterated or probed.
//
// Block accounting invariant, checked by the property tests after
// every operation: free + idle + in-use == total, where idle blocks
// are cached prefix blocks with refcount zero (reclaimable, LRU) and
// in-use blocks have refcount ≥ 1 (possibly shared across sequences).
type Allocator struct {
	blockTokens int
	prefix      bool
	total       int

	refs    []int32  // per-block reference count
	hashes  []uint64 // per-block content key (0 = uncached)
	inCache []bool   // per-block: key present in the prefix index
	next    []int32  // idle-LRU forward links (toward tail)
	prev    []int32  // idle-LRU backward links (toward head)

	free      []int32 // never-cached reclaimed blocks, LIFO
	idleHead  int32   // oldest idle cached block (evicted first)
	idleTail  int32   // most recently idled cached block
	idleCount int

	// Open-addressed prefix index: key → block. Power-of-two sized at
	// ≥2× total so load factor stays below one half.
	tabKeys []uint64
	tabVals []int32
	tabMask uint64

	seqs     []seqState
	freeSeqs []int32
}

// NewAllocator builds an allocator over `blocks` blocks of
// `blockTokens` tokens each. prefixCache enables the content-addressed
// prefix index. Panics on a non-positive budget or page size —
// internal/serve validates sizing before construction.
func NewAllocator(blocks, blockTokens int, prefixCache bool) *Allocator {
	if blocks <= 0 || blockTokens <= 0 {
		panic("kv: NewAllocator needs positive blocks and blockTokens")
	}
	tabSize := 8
	for tabSize < 2*blocks {
		tabSize *= 2
	}
	a := &Allocator{
		blockTokens: blockTokens,
		prefix:      prefixCache,
		total:       blocks,
		refs:        make([]int32, blocks),
		hashes:      make([]uint64, blocks),
		inCache:     make([]bool, blocks),
		next:        make([]int32, blocks),
		prev:        make([]int32, blocks),
		free:        make([]int32, 0, blocks),
		idleHead:    nilBlock,
		idleTail:    nilBlock,
		tabKeys:     make([]uint64, tabSize),
		tabVals:     make([]int32, tabSize),
		tabMask:     uint64(tabSize - 1),
		// A sequence holds ≥1 block, so `blocks` sequence slots suffice.
		seqs:     make([]seqState, blocks),
		freeSeqs: make([]int32, 0, blocks),
	}
	a.Reset()
	return a
}

// Reset returns every block to the free stack and kills every
// sequence — the instance-failure path (a dead instance's HBM content
// is gone). Block lists inside recycled sequence slots are retained so
// post-reset operation stays allocation-free.
func (a *Allocator) Reset() {
	a.free = a.free[:0]
	// Reverse push order so the first post-reset pop yields block 0:
	// allocation order is part of the deterministic contract.
	for i := a.total - 1; i >= 0; i-- {
		a.refs[i] = 0
		a.hashes[i] = 0
		a.inCache[i] = false
		a.next[i] = nilBlock
		a.prev[i] = nilBlock
		a.free = append(a.free, int32(i))
	}
	a.idleHead, a.idleTail, a.idleCount = nilBlock, nilBlock, 0
	for i := range a.tabKeys {
		a.tabKeys[i] = 0
		a.tabVals[i] = 0
	}
	a.freeSeqs = a.freeSeqs[:0]
	for i := len(a.seqs) - 1; i >= 0; i-- {
		a.seqs[i].tokens = 0
		a.seqs[i].live = false
		a.seqs[i].blocks = a.seqs[i].blocks[:0]
		a.freeSeqs = append(a.freeSeqs, int32(i))
	}
}

// Accessors ------------------------------------------------------------------

// Total returns the block budget.
func (a *Allocator) Total() int { return a.total }

// BlockTokens returns the page size in tokens.
func (a *Allocator) BlockTokens() int { return a.blockTokens }

// FreeBlocks returns the count of never-cached reclaimable blocks.
func (a *Allocator) FreeBlocks() int { return len(a.free) }

// IdleBlocks returns the count of cached blocks with refcount zero
// (reclaimable by LRU eviction).
func (a *Allocator) IdleBlocks() int { return a.idleCount }

// InUse returns the count of blocks referenced by at least one live
// sequence.
//
//litegpu:hotpath
func (a *Allocator) InUse() int { return a.total - len(a.free) - a.idleCount }

// SeqTokens returns a live sequence's token count.
func (a *Allocator) SeqTokens(id SeqID) int {
	s := &a.seqs[id]
	if !s.live {
		panic("kv: SeqTokens on a freed sequence")
	}
	return s.tokens
}

// SeqBlocks returns a live sequence's block count.
func (a *Allocator) SeqBlocks(id SeqID) int {
	s := &a.seqs[id]
	if !s.live {
		panic("kv: SeqBlocks on a freed sequence")
	}
	return len(s.blocks)
}

// Hashing --------------------------------------------------------------------

// mix is the splitmix64 finalizer — the block content keys' hash.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// blockKey derives the content key of prefix block i of a shared
// prefix. Key 0 is the table's empty sentinel, so keys are coerced
// nonzero.
func blockKey(prefixKey uint64, i int) uint64 {
	k := mix(prefixKey + uint64(i)*0x9e3779b97f4a7c15)
	if k == 0 {
		k = 1
	}
	return k
}

// Prefix index ---------------------------------------------------------------

// lookup returns the block cached under key, or nilBlock.
//
//litegpu:hotpath
func (a *Allocator) lookup(key uint64) int32 {
	i := mix(key) & a.tabMask
	for {
		switch a.tabKeys[i] {
		case key:
			return a.tabVals[i]
		case 0:
			return nilBlock
		}
		i = (i + 1) & a.tabMask
	}
}

// insert records key → block. The table is sized at 2× the block
// budget and every cached block holds exactly one key, so it never
// fills.
//
//litegpu:hotpath
func (a *Allocator) insert(key uint64, b int32) {
	i := mix(key) & a.tabMask
	for a.tabKeys[i] != 0 {
		i = (i + 1) & a.tabMask
	}
	a.tabKeys[i] = key
	a.tabVals[i] = b
}

// remove deletes key from the table with backward-shift deletion, so
// probe chains stay tombstone-free (tombstones would make probe length
// — and thus allocation-free operation — degrade over a long run).
//
//litegpu:hotpath
func (a *Allocator) remove(key uint64) {
	i := mix(key) & a.tabMask
	for a.tabKeys[i] != key {
		if a.tabKeys[i] == 0 {
			return
		}
		i = (i + 1) & a.tabMask
	}
	// Backward-shift: close the gap by moving displaced entries up.
	j := i
	for {
		j = (j + 1) & a.tabMask
		if a.tabKeys[j] == 0 {
			break
		}
		home := mix(a.tabKeys[j]) & a.tabMask
		// Entry j may move into slot i iff its home position does not lie
		// (cyclically) strictly between i and j.
		if (j-home)&a.tabMask >= (j-i)&a.tabMask {
			a.tabKeys[i] = a.tabKeys[j]
			a.tabVals[i] = a.tabVals[j]
			i = j
		}
	}
	a.tabKeys[i] = 0
	a.tabVals[i] = 0
}

// Idle LRU -------------------------------------------------------------------

// pushIdle parks a cached block at the LRU tail (most recently used).
//
//litegpu:hotpath
func (a *Allocator) pushIdle(b int32) {
	a.prev[b] = a.idleTail
	a.next[b] = nilBlock
	if a.idleTail != nilBlock {
		a.next[a.idleTail] = b
	} else {
		a.idleHead = b
	}
	a.idleTail = b
	a.idleCount++
}

// unlinkIdle removes a block from anywhere in the idle LRU.
//
//litegpu:hotpath
func (a *Allocator) unlinkIdle(b int32) {
	if a.prev[b] != nilBlock {
		a.next[a.prev[b]] = a.next[b]
	} else {
		a.idleHead = a.next[b]
	}
	if a.next[b] != nilBlock {
		a.prev[a.next[b]] = a.prev[b]
	} else {
		a.idleTail = a.prev[b]
	}
	a.next[b] = nilBlock
	a.prev[b] = nilBlock
	a.idleCount--
}

// obtain claims a reclaimable block: the free stack first, then the
// oldest idle cached block (evicting its cache entry). Returns
// nilBlock when nothing is reclaimable.
//
//litegpu:hotpath
func (a *Allocator) obtain() int32 {
	if n := len(a.free); n > 0 {
		b := a.free[n-1]
		a.free = a.free[:n-1]
		return b
	}
	b := a.idleHead
	if b == nilBlock {
		return nilBlock
	}
	a.unlinkIdle(b)
	a.remove(a.hashes[b])
	a.hashes[b] = 0
	a.inCache[b] = false
	return b
}

// Operations -----------------------------------------------------------------

// Alloc reserves blocks for a sequence of `tokens` tokens whose
// leading prefixTokens tokens belong to the shared prefix identified
// by prefixKey (0 = no shared prefix). With prefix caching enabled,
// leading full prefix blocks already resident are re-referenced
// instead of allocated.
//
// On success it returns the sequence handle plus the cache-hit and
// lookup counts for the caller's hit-rate metric. On failure (the
// residual demand exceeds reclaimable capacity) it returns ok=false
// with the allocator state untouched — admission gating relies on
// failed Allocs being free of side effects.
//
//litegpu:hotpath
func (a *Allocator) Alloc(tokens int, prefixKey uint64, prefixTokens int) (id SeqID, hits, lookups int, ok bool) {
	if tokens <= 0 {
		panic("kv: Alloc of a non-positive token count")
	}
	nb := (tokens + a.blockTokens - 1) / a.blockTokens
	cacheable := 0
	if a.prefix && prefixKey != 0 && prefixTokens > 0 {
		if prefixTokens > tokens {
			prefixTokens = tokens
		}
		cacheable = prefixTokens / a.blockTokens
		if cacheable > nb {
			cacheable = nb
		}
	}

	// Phase 1: probe only. Count resident prefix blocks and how many of
	// them sit in the idle list (claiming those consumes idle capacity
	// that eviction can then no longer reclaim).
	idleHits := 0
	for i := 0; i < cacheable; i++ {
		b := a.lookup(blockKey(prefixKey, i))
		if b == nilBlock {
			continue
		}
		hits++
		if a.refs[b] == 0 {
			idleHits++
		}
	}
	lookups = cacheable
	if nb-hits > len(a.free)+(a.idleCount-idleHits) {
		return 0, hits, lookups, false
	}

	n := len(a.freeSeqs)
	if n == 0 {
		// Prefix sharing can pack more live sequences than blocks (many
		// one-block sequences on one shared block); a full sequence table
		// is memory pressure like any other, so admission fails cleanly.
		return 0, hits, lookups, false
	}
	id = SeqID(a.freeSeqs[n-1])
	a.freeSeqs = a.freeSeqs[:n-1]
	s := &a.seqs[id]
	s.blocks = s.blocks[:0]
	s.tokens = tokens
	s.live = true

	// Phase 2a: claim the hits first, so phase 2b's evictions can never
	// reclaim a block this very sequence is about to share.
	for i := 0; i < nb; i++ {
		b := nilBlock
		if i < cacheable {
			b = a.lookup(blockKey(prefixKey, i))
		}
		if b != nilBlock {
			if a.refs[b] == 0 {
				a.unlinkIdle(b)
			}
			a.refs[b]++
		}
		s.blocks = append(s.blocks, b)
	}
	// Phase 2b: allocate the misses. New prefix-range blocks enter the
	// index immediately so concurrent same-prefix admissions share them.
	for i := 0; i < nb; i++ {
		if s.blocks[i] != nilBlock {
			continue
		}
		b := a.obtain()
		if b == nilBlock {
			// Unreachable: phase 1 verified capacity and phase 2a only
			// removed idle blocks it turned into (uncountable) hits.
			panic("kv: capacity check violated")
		}
		a.refs[b] = 1
		if i < cacheable {
			key := blockKey(prefixKey, i)
			if a.lookup(key) == nilBlock {
				a.hashes[b] = key
				a.inCache[b] = true
				a.insert(key, b)
			}
		}
		s.blocks[i] = b
	}
	return id, hits, lookups, true
}

// Grow extends a live sequence by one token, claiming a fresh block
// when the current ones are full. Returns false — with no state
// change — when a block is needed and nothing is reclaimable; the
// caller preempts and retries.
//
//litegpu:hotpath
func (a *Allocator) Grow(id SeqID) bool {
	s := &a.seqs[id]
	if !s.live {
		panic("kv: Grow on a freed sequence")
	}
	if s.tokens < len(s.blocks)*a.blockTokens {
		s.tokens++
		return true
	}
	b := a.obtain()
	if b == nilBlock {
		return false
	}
	a.refs[b] = 1 // generated tokens are sequence-private, never cached
	s.blocks = append(s.blocks, b)
	s.tokens++
	return true
}

// Free releases a sequence's references. Blocks reaching refcount
// zero return to the free stack, or — cached prefix blocks — park in
// the idle LRU awaiting a future hit or eviction. Double-frees and
// negative refcounts panic: they are simulator bugs, not recoverable
// conditions.
//
//litegpu:hotpath
func (a *Allocator) Free(id SeqID) {
	s := &a.seqs[id]
	if !s.live {
		panic("kv: double free")
	}
	for _, b := range s.blocks {
		a.refs[b]--
		if a.refs[b] < 0 {
			panic("kv: negative refcount")
		}
		if a.refs[b] > 0 {
			continue
		}
		if a.inCache[b] {
			a.pushIdle(b)
		} else {
			a.free = append(a.free, b)
		}
	}
	s.blocks = s.blocks[:0]
	s.tokens = 0
	s.live = false
	a.freeSeqs = append(a.freeSeqs, int32(id))
}

// Snapshot / Restore ---------------------------------------------------------

// Snap is a deep copy of an Allocator's mutable state, opaque to
// callers; see Snapshot.
type Snap struct {
	refs     []int32
	hashes   []uint64
	inCache  []bool
	next     []int32
	prev     []int32
	free     []int32
	idleHead int32
	idleTail int32
	idleCnt  int
	tabKeys  []uint64
	tabVals  []int32
	seqs     []seqState
	freeSeqs []int32
}

// Snapshot deep-copies the allocator's mutable state. It allocates —
// snapshotting is a planner-fork operation, not a hot path.
func (a *Allocator) Snapshot() *Snap {
	s := &Snap{
		refs:     append([]int32(nil), a.refs...),
		hashes:   append([]uint64(nil), a.hashes...),
		inCache:  append([]bool(nil), a.inCache...),
		next:     append([]int32(nil), a.next...),
		prev:     append([]int32(nil), a.prev...),
		free:     append([]int32(nil), a.free...),
		idleHead: a.idleHead,
		idleTail: a.idleTail,
		idleCnt:  a.idleCount,
		tabKeys:  append([]uint64(nil), a.tabKeys...),
		tabVals:  append([]int32(nil), a.tabVals...),
		seqs:     make([]seqState, len(a.seqs)),
		freeSeqs: append([]int32(nil), a.freeSeqs...),
	}
	for i := range a.seqs {
		s.seqs[i] = seqState{
			blocks: append([]int32(nil), a.seqs[i].blocks...),
			tokens: a.seqs[i].tokens,
			live:   a.seqs[i].live,
		}
	}
	return s
}

// Restore rewinds the allocator, in place, to a snapshot it produced
// earlier. Existing backing arrays are reused; the snapshot's storage
// is never adopted, so one snapshot supports any number of restores.
func (a *Allocator) Restore(s *Snap) {
	copy(a.refs, s.refs)
	copy(a.hashes, s.hashes)
	copy(a.inCache, s.inCache)
	copy(a.next, s.next)
	copy(a.prev, s.prev)
	a.free = append(a.free[:0], s.free...)
	a.idleHead = s.idleHead
	a.idleTail = s.idleTail
	a.idleCount = s.idleCnt
	copy(a.tabKeys, s.tabKeys)
	copy(a.tabVals, s.tabVals)
	for i := range a.seqs {
		a.seqs[i].blocks = append(a.seqs[i].blocks[:0], s.seqs[i].blocks...)
		a.seqs[i].tokens = s.seqs[i].tokens
		a.seqs[i].live = s.seqs[i].live
	}
	a.freeSeqs = append(a.freeSeqs[:0], s.freeSeqs...)
}
