package kv

import (
	"testing"

	"litegpu/internal/mathx"
)

// checkConservation asserts the block accounting invariant after an
// operation: free + idle + in-use == total.
func checkConservation(t *testing.T, a *Allocator) {
	t.Helper()
	if got := a.FreeBlocks() + a.IdleBlocks() + a.InUse(); got != a.Total() {
		t.Fatalf("conservation violated: free %d + idle %d + inuse %d = %d, total %d",
			a.FreeBlocks(), a.IdleBlocks(), a.InUse(), got, a.Total())
	}
}

func TestConfigParseStringRoundTrip(t *testing.T) {
	for _, spec := range []string{"off", "recompute", "swap", "recompute+prefix", "swap+prefix"} {
		c, err := ParseConfig(spec)
		if err != nil {
			t.Fatalf("ParseConfig(%q): %v", spec, err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("Validate(%q): %v", spec, err)
		}
		if got := c.String(); got != spec {
			t.Fatalf("ParseConfig(%q).String() = %q", spec, got)
		}
	}
	for _, spec := range []string{"", "none"} {
		c, err := ParseConfig(spec)
		if err != nil || c.Enabled() {
			t.Fatalf("ParseConfig(%q) = %+v, %v; want zero config", spec, c, err)
		}
	}
	for _, bad := range []string{"paged", "swap+lru", "recompute+prefix+x"} {
		if _, err := ParseConfig(bad); err == nil {
			t.Fatalf("ParseConfig(%q) accepted", bad)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		c  Config
		ok bool
	}{
		{Config{}, true},
		{Config{Policy: Recompute}, true},
		{Config{Policy: Swap, PrefixCache: true, BlockTokens: 32, Blocks: 100}, true},
		{Config{Policy: Policy(99)}, false},
		{Config{Policy: Policy(-1)}, false},
		{Config{Policy: Recompute, BlockTokens: -1}, false},
		{Config{Policy: Recompute, Blocks: -5}, false},
		{Config{BlockTokens: 16}, false}, // parameters without a policy
		{Config{PrefixCache: true}, false},
	}
	for _, tc := range cases {
		if err := tc.c.Validate(); (err == nil) != tc.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", tc.c, err, tc.ok)
		}
	}
	if (Config{}).BlockTokensOrDefault() != 16 {
		t.Fatal("default BlockTokens is not 16")
	}
	if (Config{BlockTokens: 8}).BlockTokensOrDefault() != 8 {
		t.Fatal("explicit BlockTokens ignored")
	}
	if got := len(DefaultPolicyCandidates()); got != 3 {
		t.Fatalf("DefaultPolicyCandidates: %d candidates", got)
	}
}

func TestAllocGrowFreeBasics(t *testing.T) {
	a := NewAllocator(10, 4, false)
	checkConservation(t, a)

	// 7 tokens → 2 blocks of 4.
	id, hits, lookups, ok := a.Alloc(7, 0, 0)
	if !ok || hits != 0 || lookups != 0 {
		t.Fatalf("Alloc = %v %d %d %v", id, hits, lookups, ok)
	}
	if a.InUse() != 2 || a.SeqBlocks(id) != 2 || a.SeqTokens(id) != 7 {
		t.Fatalf("after alloc: inuse %d blocks %d tokens %d", a.InUse(), a.SeqBlocks(id), a.SeqTokens(id))
	}
	checkConservation(t, a)

	// One grow fills the slack (token 8), the next claims block 3.
	if !a.Grow(id) || a.SeqBlocks(id) != 2 {
		t.Fatalf("slack grow claimed a block (blocks=%d)", a.SeqBlocks(id))
	}
	if !a.Grow(id) || a.SeqBlocks(id) != 3 || a.SeqTokens(id) != 9 {
		t.Fatalf("boundary grow: blocks=%d tokens=%d", a.SeqBlocks(id), a.SeqTokens(id))
	}
	checkConservation(t, a)

	a.Free(id)
	if a.InUse() != 0 || a.FreeBlocks() != 10 {
		t.Fatalf("after free: inuse %d free %d", a.InUse(), a.FreeBlocks())
	}
	checkConservation(t, a)
}

func TestAllocFailureHasNoSideEffects(t *testing.T) {
	a := NewAllocator(4, 4, false)
	id, _, _, ok := a.Alloc(12, 0, 0) // 3 of 4 blocks
	if !ok {
		t.Fatal("seed alloc failed")
	}
	free, idle, inuse := a.FreeBlocks(), a.IdleBlocks(), a.InUse()
	if _, _, _, ok := a.Alloc(8, 0, 0); ok { // needs 2, only 1 free
		t.Fatal("over-capacity alloc succeeded")
	}
	if a.FreeBlocks() != free || a.IdleBlocks() != idle || a.InUse() != inuse {
		t.Fatalf("failed alloc mutated state: %d/%d/%d → %d/%d/%d",
			free, idle, inuse, a.FreeBlocks(), a.IdleBlocks(), a.InUse())
	}
	// Grow failure is likewise side-effect-free.
	a2 := NewAllocator(1, 1, false)
	gid, _, _, _ := a2.Alloc(1, 0, 0)
	if a2.Grow(gid) {
		t.Fatal("grow succeeded with zero reclaimable blocks")
	}
	if a2.SeqTokens(gid) != 1 || a2.SeqBlocks(gid) != 1 {
		t.Fatal("failed grow mutated the sequence")
	}
	_ = id
}

func TestDoubleFreePanics(t *testing.T) {
	a := NewAllocator(4, 4, false)
	id, _, _, _ := a.Alloc(4, 0, 0)
	a.Free(id)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	a.Free(id)
}

func TestFreedHandleOpsPanic(t *testing.T) {
	a := NewAllocator(4, 4, false)
	id, _, _, _ := a.Alloc(4, 0, 0)
	a.Free(id)
	for name, f := range map[string]func(){
		"Grow":      func() { a.Grow(id) },
		"SeqTokens": func() { a.SeqTokens(id) },
		"SeqBlocks": func() { a.SeqBlocks(id) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s on freed handle did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestPrefixSharingAndRefcounts(t *testing.T) {
	a := NewAllocator(16, 4, true)
	const key = 0xabc

	// First request: 12-token prompt, 8 of them shared prefix → blocks
	// 0 and 1 cacheable, block 2 private.
	id1, hits, lookups, ok := a.Alloc(12, key, 8)
	if !ok || hits != 0 || lookups != 2 {
		t.Fatalf("first alloc: hits %d lookups %d ok %v", hits, lookups, ok)
	}
	if a.InUse() != 3 {
		t.Fatalf("inuse %d", a.InUse())
	}
	checkConservation(t, a)

	// Second request, same prefix: both cacheable blocks hit while the
	// first sequence is still live (shared-active).
	id2, hits, lookups, ok := a.Alloc(12, key, 8)
	if !ok || hits != 2 || lookups != 2 {
		t.Fatalf("second alloc: hits %d lookups %d ok %v", hits, lookups, ok)
	}
	if a.InUse() != 4 { // 2 shared + 2 private
		t.Fatalf("inuse %d after sharing", a.InUse())
	}
	checkConservation(t, a)

	// Free the first: shared blocks stay in use (ref 1), private returns.
	a.Free(id1)
	if a.InUse() != 3 || a.IdleBlocks() != 0 {
		t.Fatalf("after free1: inuse %d idle %d", a.InUse(), a.IdleBlocks())
	}
	checkConservation(t, a)

	// Free the second: prefix blocks idle in cache, private block frees.
	a.Free(id2)
	if a.InUse() != 0 || a.IdleBlocks() != 2 {
		t.Fatalf("after free2: inuse %d idle %d", a.InUse(), a.IdleBlocks())
	}
	checkConservation(t, a)

	// Third request hits the idle blocks without allocating them anew.
	id3, hits, _, ok := a.Alloc(8, key, 8)
	if !ok || hits != 2 || a.IdleBlocks() != 0 || a.InUse() != 2 {
		t.Fatalf("idle revival: hits %d idle %d inuse %d ok %v", hits, a.IdleBlocks(), a.InUse(), ok)
	}
	checkConservation(t, a)
	a.Free(id3)

	// A different prefix key shares nothing.
	id4, hits, _, ok := a.Alloc(8, 0xdef, 8)
	if !ok || hits != 0 {
		t.Fatalf("foreign prefix hit: hits %d", hits)
	}
	a.Free(id4)
	checkConservation(t, a)
}

func TestIdleLRUEvictionOrder(t *testing.T) {
	// 4 blocks of 4 tokens, prefix caching on. Park two single-block
	// prefixes idle, then exhaust memory: the oldest idle block must be
	// evicted first (its prefix stops hitting; the newer one survives).
	a := NewAllocator(4, 4, true)
	idA, _, _, _ := a.Alloc(4, 0xa, 4)
	a.Free(idA) // block for prefix A idles first (LRU-oldest)
	idB, _, _, _ := a.Alloc(4, 0xb, 4)
	a.Free(idB) // prefix B idles second
	if a.IdleBlocks() != 2 || a.FreeBlocks() != 2 {
		t.Fatalf("setup: idle %d free %d", a.IdleBlocks(), a.FreeBlocks())
	}
	// Claim three blocks: two from free, the third must evict prefix A.
	id, _, _, ok := a.Alloc(12, 0, 0)
	if !ok {
		t.Fatal("eviction alloc failed")
	}
	checkConservation(t, a)
	if hitsB := probeHits(a, 0xb, 1); hitsB != 1 {
		t.Fatalf("newer idle prefix evicted (hits %d)", hitsB)
	}
	if hitsA := probeHits(a, 0xa, 1); hitsA != 0 {
		t.Fatalf("oldest idle prefix survived eviction (hits %d)", hitsA)
	}
	a.Free(id)
}

// probeHits counts resident prefix blocks without mutating state, via
// a failed alloc... actually via lookup directly (same package).
func probeHits(a *Allocator, prefixKey uint64, blocks int) int {
	n := 0
	for i := 0; i < blocks; i++ {
		if a.lookup(blockKey(prefixKey, i)) != nilBlock {
			n++
		}
	}
	return n
}

func TestResetReturnsEverything(t *testing.T) {
	a := NewAllocator(8, 4, true)
	a.Alloc(16, 0x1, 8)
	id, _, _, _ := a.Alloc(8, 0x2, 8)
	a.Free(id)
	a.Reset()
	if a.FreeBlocks() != 8 || a.IdleBlocks() != 0 || a.InUse() != 0 {
		t.Fatalf("after reset: free %d idle %d inuse %d", a.FreeBlocks(), a.IdleBlocks(), a.InUse())
	}
	if probeHits(a, 0x1, 2)+probeHits(a, 0x2, 2) != 0 {
		t.Fatal("prefix index survived reset")
	}
	// Full capacity is allocatable again.
	if _, _, _, ok := a.Alloc(32, 0, 0); !ok {
		t.Fatal("post-reset full alloc failed")
	}
	checkConservation(t, a)
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	a := NewAllocator(8, 4, true)
	id1, _, _, _ := a.Alloc(12, 0x7, 8)
	id2, _, _, _ := a.Alloc(8, 0x7, 8)
	a.Free(id1)
	snap := a.Snapshot()
	free, idle, inuse := a.FreeBlocks(), a.IdleBlocks(), a.InUse()
	tok2 := a.SeqTokens(id2)

	// Diverge: grow, free, allocate something else.
	a.Grow(id2)
	a.Free(id2)
	a.Alloc(32, 0, 0)

	a.Restore(snap)
	if a.FreeBlocks() != free || a.IdleBlocks() != idle || a.InUse() != inuse {
		t.Fatalf("restore mismatch: %d/%d/%d want %d/%d/%d",
			a.FreeBlocks(), a.IdleBlocks(), a.InUse(), free, idle, inuse)
	}
	if a.SeqTokens(id2) != tok2 {
		t.Fatalf("seq tokens %d want %d", a.SeqTokens(id2), tok2)
	}
	checkConservation(t, a)

	// The same snapshot restores again after further divergence.
	a.Free(id2)
	a.Restore(snap)
	if a.SeqTokens(id2) != tok2 {
		t.Fatal("second restore from one snapshot failed")
	}
	// And the restored state behaves: free id2, everything reclaimable.
	a.Free(id2)
	if a.InUse() != 0 {
		t.Fatalf("inuse %d after restored free", a.InUse())
	}
	checkConservation(t, a)
}

// TestRandomOpsConservation drives long random op sequences, checking
// the conservation invariant after every single operation. Run under
// -count=2 -race -shuffle=on in CI, where any hidden global state or
// order dependence would flake.
func TestRandomOpsConservation(t *testing.T) {
	for _, prefix := range []bool{false, true} {
		rng := mathx.NewRNG(42)
		a := NewAllocator(64, 16, prefix)
		var live []SeqID
		for op := 0; op < 5000; op++ {
			switch {
			case len(live) > 0 && rng.Uint64()%3 == 0:
				i := int(rng.Uint64() % uint64(len(live)))
				a.Free(live[i])
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			case len(live) > 0 && rng.Uint64()%2 == 0:
				a.Grow(live[int(rng.Uint64()%uint64(len(live)))])
			default:
				tokens := 1 + int(rng.Uint64()%200)
				key := rng.Uint64() % 4
				ptoks := int(rng.Uint64() % uint64(tokens+1))
				if id, _, _, ok := a.Alloc(tokens, key, ptoks); ok {
					live = append(live, id)
				}
			}
			checkConservation(t, a)
		}
		for _, id := range live {
			a.Free(id)
			checkConservation(t, a)
		}
		if a.InUse() != 0 {
			t.Fatalf("leak: %d blocks in use after freeing all", a.InUse())
		}
	}
}

// TestDeterministicReplay pins that two allocators fed the identical
// op sequence evolve identically — the property -count=2 exercises at
// the process level.
func TestDeterministicReplay(t *testing.T) {
	run := func() (sig uint64) {
		rng := mathx.NewRNG(7)
		a := NewAllocator(32, 8, true)
		var live []SeqID
		for op := 0; op < 2000; op++ {
			if len(live) > 0 && rng.Uint64()%3 == 0 {
				i := int(rng.Uint64() % uint64(len(live)))
				a.Free(live[i])
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			} else {
				tokens := 1 + int(rng.Uint64()%64)
				if id, hits, _, ok := a.Alloc(tokens, rng.Uint64()%3, tokens); ok {
					live = append(live, id)
					sig = sig*31 + uint64(id) + uint64(hits)<<16
				}
			}
			sig = sig*31 + uint64(a.FreeBlocks()) + uint64(a.IdleBlocks())<<20
		}
		return sig
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("replay diverged: %x vs %x", a, b)
	}
}

// TestSteadyStateAllocFree pins the zero-alloc contract: after warmup,
// Alloc/Grow/Free cycles perform no heap allocations.
func TestSteadyStateAllocFree(t *testing.T) {
	a := NewAllocator(64, 16, true)
	// Warm up every code path: cache fills, idle list cycles, table
	// inserts/removes, sequence slots recycle.
	for i := 0; i < 10; i++ {
		id1, _, _, _ := a.Alloc(100, uint64(i%3+1), 64)
		id2, _, _, _ := a.Alloc(50, uint64(i%3+1), 48)
		a.Grow(id1)
		a.Free(id1)
		a.Free(id2)
	}
	allocs := testing.AllocsPerRun(200, func() {
		id1, _, _, _ := a.Alloc(100, 1, 64)
		id2, _, _, _ := a.Alloc(50, 2, 48)
		for i := 0; i < 20; i++ {
			a.Grow(id1)
		}
		a.Free(id1)
		a.Free(id2)
	})
	if allocs != 0 {
		t.Fatalf("steady-state allocator allocated %.1f times per cycle, want 0", allocs)
	}
}
