package kv

import (
	"testing"
)

// refAllocator is the naive reference the fuzzer checks the real
// allocator against: maps and slices, no arenas, no open addressing —
// the obviously-correct implementation of the same semantics (free
// stack before idle LRU, oldest idle evicted first, per-block
// refcounts, full-block prefix caching).
type refAllocator struct {
	blockTokens int
	prefix      bool
	total       int
	free        int            // reclaimable uncached blocks
	idle        []uint64       // cached refcount-zero block keys, oldest first
	cache       map[uint64]int // key → refcount (resident prefix blocks)
	seqs        map[int]*refSeq
	nextID      int
}

type refSeq struct {
	tokens  int
	shared  []uint64 // one entry per cacheable block position
	private int      // uncacheable block count
}

func newRef(blocks, blockTokens int, prefix bool) *refAllocator {
	return &refAllocator{
		blockTokens: blockTokens, prefix: prefix, total: blocks,
		free: blocks, cache: map[uint64]int{}, seqs: map[int]*refSeq{},
	}
}

func (r *refAllocator) inUse() int { return r.total - r.free - len(r.idle) }

// obtain takes one reclaimable block: free stack first, then evict the
// oldest idle cached block.
func (r *refAllocator) obtain() bool {
	if r.free > 0 {
		r.free--
		return true
	}
	if len(r.idle) > 0 {
		delete(r.cache, r.idle[0])
		r.idle = r.idle[1:]
		return true
	}
	return false
}

func (r *refAllocator) alloc(tokens int, prefixKey uint64, prefixTokens int) (id, hits, lookups int, ok bool) {
	nb := (tokens + r.blockTokens - 1) / r.blockTokens
	cacheable := 0
	if r.prefix && prefixKey != 0 && prefixTokens > 0 {
		if prefixTokens > tokens {
			prefixTokens = tokens
		}
		cacheable = prefixTokens / r.blockTokens
		if cacheable > nb {
			cacheable = nb
		}
	}
	idleHits := 0
	for i := 0; i < cacheable; i++ {
		if ref, found := r.cache[blockKey(prefixKey, i)]; found {
			hits++
			if ref == 0 {
				idleHits++
			}
		}
	}
	lookups = cacheable
	if nb-hits > r.free+(len(r.idle)-idleHits) {
		return 0, hits, lookups, false
	}
	if len(r.seqs) == r.total {
		return 0, hits, lookups, false // sequence table full
	}
	s := &refSeq{tokens: tokens, private: nb - cacheable}
	// Claim hits and insert misses in index order; then obtain blocks
	// for every miss and every private position.
	for i := 0; i < cacheable; i++ {
		key := blockKey(prefixKey, i)
		if ref, found := r.cache[key]; found {
			if ref == 0 {
				r.removeIdle(key)
			}
			r.cache[key] = ref + 1
		} else {
			if !r.obtain() {
				panic("ref: capacity check violated")
			}
			r.cache[key] = 1
		}
		s.shared = append(s.shared, key)
	}
	for i := 0; i < s.private; i++ {
		if !r.obtain() {
			panic("ref: capacity check violated")
		}
	}
	id = r.nextID
	r.nextID++
	r.seqs[id] = s
	return id, hits, lookups, true
}

func (r *refAllocator) removeIdle(key uint64) {
	for i, k := range r.idle {
		if k == key {
			r.idle = append(r.idle[:i], r.idle[i+1:]...)
			return
		}
	}
	panic("ref: idle key missing")
}

func (r *refAllocator) grow(id int) bool {
	s := r.seqs[id]
	if s.tokens < (len(s.shared)+s.private)*r.blockTokens {
		s.tokens++
		return true
	}
	if !r.obtain() {
		return false
	}
	s.private++
	s.tokens++
	return true
}

func (r *refAllocator) freeSeq(id int) {
	s := r.seqs[id]
	for _, key := range s.shared {
		ref := r.cache[key] - 1
		if ref < 0 {
			panic("ref: negative refcount")
		}
		r.cache[key] = ref
		if ref == 0 {
			r.idle = append(r.idle, key)
		}
	}
	r.free += s.private
	delete(r.seqs, id)
}

// FuzzKVAllocator drives random alloc/grow/free/reset sequences
// through the real allocator and the naive reference in lockstep,
// comparing every return value and the full block accounting after
// every operation.
func FuzzKVAllocator(f *testing.F) {
	f.Add([]byte{0, 0, 40, 1, 60, 0, 0, 10, 2, 8, 1, 0, 2, 5, 3, 0})
	f.Add([]byte{1, 0, 255, 1, 255, 0, 100, 3, 200, 1, 1, 2, 30, 1, 0})
	f.Add([]byte{1, 0, 17, 2, 16, 0, 17, 2, 16, 1, 0, 0, 17, 2, 16})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		prefix := data[0]%2 == 1
		data = data[1:]
		const blocks, blockTokens = 24, 8
		a := NewAllocator(blocks, blockTokens, prefix)
		r := newRef(blocks, blockTokens, prefix)
		type pair struct {
			real SeqID
			ref  int
		}
		var live []pair
		check := func() {
			t.Helper()
			if a.FreeBlocks() != r.free || a.IdleBlocks() != len(r.idle) || a.InUse() != r.inUse() {
				t.Fatalf("state diverged: real %d/%d/%d, ref %d/%d/%d",
					a.FreeBlocks(), a.IdleBlocks(), a.InUse(), r.free, len(r.idle), r.inUse())
			}
			if a.FreeBlocks()+a.IdleBlocks()+a.InUse() != a.Total() {
				t.Fatalf("conservation violated: %d+%d+%d != %d",
					a.FreeBlocks(), a.IdleBlocks(), a.InUse(), a.Total())
			}
		}
		for len(data) >= 4 {
			op := data[0] % 8
			switch {
			case op <= 3: // alloc, weighted heaviest
				tokens := 1 + int(data[1])
				key := uint64(data[2] % 5)
				ptoks := int(data[3])
				id, hits, lookups, ok := a.Alloc(tokens, key, ptoks)
				rid, rhits, rlookups, rok := r.alloc(tokens, key, ptoks)
				if ok != rok || hits != rhits || lookups != rlookups {
					t.Fatalf("alloc(%d,%d,%d) diverged: real (%d,%d,%v), ref (%d,%d,%v)",
						tokens, key, ptoks, hits, lookups, ok, rhits, rlookups, rok)
				}
				if ok {
					if a.SeqTokens(id) != r.seqs[rid].tokens {
						t.Fatalf("seq tokens diverged: %d vs %d", a.SeqTokens(id), r.seqs[rid].tokens)
					}
					live = append(live, pair{id, rid})
				}
			case op <= 5 && len(live) > 0: // grow
				p := live[int(data[1])%len(live)]
				n := 1 + int(data[2]%32)
				for i := 0; i < n; i++ {
					if got, want := a.Grow(p.real), r.grow(p.ref); got != want {
						t.Fatalf("grow diverged: real %v, ref %v", got, want)
					}
				}
				if a.SeqTokens(p.real) != r.seqs[p.ref].tokens {
					t.Fatalf("grown tokens diverged")
				}
			case op == 6 && len(live) > 0: // free
				i := int(data[1]) % len(live)
				a.Free(live[i].real)
				r.freeSeq(live[i].ref)
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			case op == 7 && data[1] == 0: // rare full reset
				a.Reset()
				r = newRef(blocks, blockTokens, prefix)
				live = live[:0]
			}
			check()
			data = data[4:]
		}
		for _, p := range live {
			a.Free(p.real)
			r.freeSeq(p.ref)
			check()
		}
		if a.InUse() != 0 {
			t.Fatalf("leak: %d blocks in use after freeing all", a.InUse())
		}
	})
}
