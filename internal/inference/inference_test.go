package inference

import (
	"errors"
	"math"
	"testing"

	"litegpu/internal/hw"
	"litegpu/internal/model"
	"litegpu/internal/roofline"
)

func TestPhaseString(t *testing.T) {
	if Prefill.String() != "prefill" || Decode.String() != "decode" {
		t.Error("phase strings wrong")
	}
}

func TestDefaultOptionsMatchPaper(t *testing.T) {
	o := DefaultOptions()
	if o.PromptLen != 1500 {
		t.Errorf("PromptLen = %d, want 1500", o.PromptLen)
	}
	if o.TTFTLimit != 1.0 {
		t.Errorf("TTFTLimit = %v, want 1 s", o.TTFTLimit)
	}
	if o.TBTLimit != 0.050 {
		t.Errorf("TBTLimit = %v, want 50 ms", o.TBTLimit)
	}
	if o.Prec != model.FP8() {
		t.Errorf("Prec = %+v, want FP8", o.Prec)
	}
}

func TestWithDefaultsFillsZeroValues(t *testing.T) {
	var o Options
	filled := o.withDefaults()
	if filled.PromptLen != 1500 || filled.TBTLimit != 0.050 || filled.MaxBatch <= 0 {
		t.Errorf("withDefaults left zeros: %+v", filled)
	}
	// Non-zero values survive.
	o.PromptLen = 99
	if o.withDefaults().PromptLen != 99 {
		t.Error("withDefaults overwrote explicit PromptLen")
	}
	// DecodeContext defaults to PromptLen.
	if o.withDefaults().DecodeContext != 99 {
		t.Error("DecodeContext did not default to PromptLen")
	}
}

func TestRunPrefillH100SanityNumbers(t *testing.T) {
	// Single H100, Llama3-70B, single prompt: the forward pass is
	// ≈ 2·70e9·1500 FLOP ≈ 213 TFLOP; at 2 PFLOPS that is ≥ 107 ms.
	est, err := Run(hw.H100(), model.Llama3_70B(), Prefill, 1, 1, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if est.Latency < 0.100 || est.Latency > 0.150 {
		t.Errorf("TTFT = %v, want ≈107–130 ms", est.Latency)
	}
	if est.Bound != roofline.ComputeBound {
		t.Errorf("bound = %v, want compute", est.Bound)
	}
	// Throughput ≈ 1500 / TTFT.
	want := 1500 * (1 / float64(est.Latency))
	if math.Abs(est.Throughput-want) > 1 {
		t.Errorf("throughput = %v, want %v", est.Throughput, want)
	}
	if est.PerSM <= 0 || est.PerSM > 120 {
		t.Errorf("PerSM = %v out of plausible range", est.PerSM)
	}
	if !est.MeetsSLO {
		t.Error("107 ms TTFT should meet the 1 s SLO")
	}
}

func TestRunDecodeMemoryBound(t *testing.T) {
	// Small-batch decode is weight-bandwidth-bound.
	est, err := Run(hw.H100(), model.Llama3_70B(), Decode, 8, 1, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if est.Bound != roofline.MemoryBound {
		t.Errorf("bound = %v, want memory", est.Bound)
	}
	// TBT lower bound: weights over aggregate bandwidth = 70 GB / 26.8 TB/s ≈ 2.6 ms.
	if est.Latency < 0.0025 || est.Latency > 0.010 {
		t.Errorf("TBT = %v, want ≈3–6 ms", est.Latency)
	}
}

func TestRunRejectsOversizedConfigs(t *testing.T) {
	// Llama3-405B (405 GB at FP8) cannot fit one 80 GB H100.
	_, err := Run(hw.H100(), model.Llama3_405B(), Decode, 1, 1, DefaultOptions())
	if !errors.Is(err, ErrDoesNotFit) {
		t.Errorf("err = %v, want ErrDoesNotFit", err)
	}
	// Nor 4 of them.
	_, err = Run(hw.H100(), model.Llama3_405B(), Decode, 4, 1, DefaultOptions())
	if !errors.Is(err, ErrDoesNotFit) {
		t.Errorf("err = %v, want ErrDoesNotFit", err)
	}
	// 8 fit.
	if _, err = Run(hw.H100(), model.Llama3_405B(), Decode, 8, 1, DefaultOptions()); err != nil {
		t.Errorf("8×H100 should fit 405B: %v", err)
	}
}

func TestRunRejectsIllegalTP(t *testing.T) {
	if _, err := Run(hw.H100(), model.Llama3_70B(), Prefill, 5, 1, DefaultOptions()); err == nil {
		t.Error("TP=5 with 64 heads accepted")
	}
	var bad hw.GPU
	if _, err := Run(bad, model.Llama3_70B(), Prefill, 1, 1, DefaultOptions()); err == nil {
		t.Error("invalid GPU accepted")
	}
	if _, err := Run(hw.H100(), model.Llama3_70B(), Phase(9), 1, 1, DefaultOptions()); err == nil {
		t.Error("unknown phase accepted")
	}
}

func TestMaxFeasibleBatch(t *testing.T) {
	opts := DefaultOptions()
	// H100 ×8 on Llama3-70B decode: (640−70) GB over 1500·163 840 B ≈ 2300.
	b := MaxFeasibleBatch(hw.H100(), model.Llama3_70B(), Decode, 8, opts)
	if b < 2000 || b > 2600 {
		t.Errorf("max batch = %d, want ≈2300", b)
	}
	// 405B on 4×H100: weights alone do not fit.
	if b := MaxFeasibleBatch(hw.H100(), model.Llama3_405B(), Decode, 4, opts); b != 0 {
		t.Errorf("max batch for oversized model = %d, want 0", b)
	}
	// Illegal TP yields 0.
	if b := MaxFeasibleBatch(hw.H100(), model.Llama3_70B(), Decode, 5, opts); b != 0 {
		t.Errorf("max batch for TP=5 = %d, want 0", b)
	}
}

func TestBatchSweep(t *testing.T) {
	bs := batchSweep(10)
	want := []int{1, 2, 4, 8, 10}
	if len(bs) != len(want) {
		t.Fatalf("batchSweep(10) = %v, want %v", bs, want)
	}
	for i := range bs {
		if bs[i] != want[i] {
			t.Fatalf("batchSweep(10) = %v, want %v", bs, want)
		}
	}
	// Exact power of two does not duplicate.
	bs = batchSweep(8)
	if bs[len(bs)-1] != 8 || bs[len(bs)-2] == 8 {
		t.Errorf("batchSweep(8) = %v", bs)
	}
}

func TestSearchFindsFeasibleConfig(t *testing.T) {
	res, err := Search(hw.H100(), model.Llama3_70B(), Decode, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best.MeetsSLO {
		t.Error("search returned an SLO-violating config")
	}
	if res.Best.Latency > 0.050 {
		t.Errorf("decode TBT = %v exceeds 50 ms", res.Best.Latency)
	}
	if res.Evaluated == 0 {
		t.Error("search evaluated nothing")
	}
}

func TestSearchErrorsWhenNothingFits(t *testing.T) {
	// A GPU too small for the model at any legal scale.
	tiny := hw.Lite()
	tiny.Capacity = 1e9 // 1 GB
	if _, err := Search(tiny, model.Llama3_405B(), Decode, DefaultOptions()); err == nil {
		t.Error("search succeeded on an impossible configuration")
	}
	var bad hw.GPU
	if _, err := Search(bad, model.Llama3_70B(), Decode, DefaultOptions()); err == nil {
		t.Error("search accepted invalid GPU")
	}
	var badModel model.Transformer
	if _, err := Search(hw.H100(), badModel, Decode, DefaultOptions()); err == nil {
		t.Error("search accepted invalid model")
	}
}

func TestSearchMayPreferFewerGPUs(t *testing.T) {
	// The paper: "the search may return that running a model with less
	// GPUs than the maximum yields better throughput per SM." H100
	// prefill on Llama3-70B lands below the 8-GPU maximum.
	res, err := Search(hw.H100(), model.Llama3_70B(), Prefill, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.GPUs >= 8 {
		t.Errorf("best prefill uses %d GPUs; expected fewer than the maximum", res.Best.GPUs)
	}
}

// TestFigure3aShapes asserts the qualitative results of Figure 3a.
func TestFigure3aShapes(t *testing.T) {
	opts := DefaultOptions()
	norm := func(g hw.GPU, m model.Transformer) float64 {
		base, err := Search(hw.H100(), m, Prefill, opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Search(g, m, Prefill, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.Best.PerSM / base.Best.PerSM
	}

	// (1) On Llama3-70B all configurations perform similarly.
	for _, g := range hw.PrefillConfigs() {
		n := norm(g, model.Llama3_70B())
		if n < 0.90 || n > 1.20 {
			t.Errorf("70B prefill %s normalized = %.3f, want ≈1", g.Name, n)
		}
	}

	// (2) Base Lite degrades as the model grows (network bottleneck).
	lite70 := norm(hw.Lite(), model.Llama3_70B())
	lite175 := norm(hw.Lite(), model.GPT3_175B())
	lite405 := norm(hw.Lite(), model.Llama3_405B())
	if !(lite405 < lite175 && lite175 < lite70) {
		t.Errorf("Lite prefill should degrade with size: 70B %.3f, 175B %.3f, 405B %.3f",
			lite70, lite175, lite405)
	}
	if lite405 > 0.80 {
		t.Errorf("Lite on 405B = %.3f, expected clear degradation (<0.8)", lite405)
	}

	// (3) Extra network bandwidth compensates.
	for _, m := range model.PaperModels() {
		if nb, base := norm(hw.LiteNetBW(), m), norm(hw.Lite(), m); nb <= base {
			t.Errorf("%s: Lite+NetBW (%.3f) should beat Lite (%.3f)", m.Name, nb, base)
		}
	}

	// (4) Overclocking helps compute-bound prefill further.
	for _, m := range model.PaperModels() {
		fl, nb := norm(hw.LiteNetBWFLOPS(), m), norm(hw.LiteNetBW(), m)
		if fl <= nb {
			t.Errorf("%s: Lite+NetBW+FLOPS (%.3f) should beat Lite+NetBW (%.3f)", m.Name, fl, nb)
		}
	}

	// (5) On the small model the overclocked variant beats the H100.
	if fl := norm(hw.LiteNetBWFLOPS(), model.Llama3_70B()); fl <= 1.0 {
		t.Errorf("Lite+NetBW+FLOPS on 70B = %.3f, want > 1", fl)
	}
}

// TestFigure3bShapes asserts the qualitative results of Figure 3b.
func TestFigure3bShapes(t *testing.T) {
	opts := DefaultOptions()
	norm := func(g hw.GPU, m model.Transformer) float64 {
		base, err := Search(hw.H100(), m, Decode, opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Search(g, m, Decode, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.Best.PerSM / base.Best.PerSM
	}

	// (1) Base Lite never beats the H100 cluster in decode.
	for _, m := range model.PaperModels() {
		if n := norm(hw.Lite(), m); n >= 1.0 {
			t.Errorf("%s: base Lite decode = %.3f, want < 1", m.Name, n)
		}
	}

	// (2) The largest model degrades the most on base Lite.
	lite70 := norm(hw.Lite(), model.Llama3_70B())
	lite405 := norm(hw.Lite(), model.Llama3_405B())
	if lite405 >= lite70 {
		t.Errorf("405B Lite (%.3f) should degrade below 70B Lite (%.3f)", lite405, lite70)
	}
	if lite405 > 0.75 {
		t.Errorf("405B Lite decode = %.3f, expected clear degradation", lite405)
	}

	// (3) Doubling memory bandwidth lifts decode everywhere, and past
	// the H100 for the 70B and GPT-3 models.
	for _, m := range model.PaperModels() {
		mem, base := norm(hw.LiteMemBW(), m), norm(hw.Lite(), m)
		if mem <= base {
			t.Errorf("%s: Lite+MemBW (%.3f) should beat Lite (%.3f)", m.Name, mem, base)
		}
	}
	if n := norm(hw.LiteMemBW(), model.Llama3_70B()); n <= 1.0 {
		t.Errorf("70B Lite+MemBW = %.3f, want > 1", n)
	}
	if n := norm(hw.LiteMemBW(), model.GPT3_175B()); n <= 1.0 {
		t.Errorf("GPT3 Lite+MemBW = %.3f, want > 1", n)
	}

	// (4) GPT-3 gains the most from memory bandwidth (its MHA KV cache
	// dominates decode traffic) — the tallest bar in Figure 3b.
	gain175 := norm(hw.LiteMemBW(), model.GPT3_175B())
	gain70 := norm(hw.LiteMemBW(), model.Llama3_70B())
	if gain175 <= gain70 {
		t.Errorf("GPT3 MemBW gain (%.3f) should exceed 70B gain (%.3f)", gain175, gain70)
	}
	if gain175 < 1.3 {
		t.Errorf("GPT3 Lite+MemBW = %.3f, want ≈1.5", gain175)
	}

	// (5) Adding network bandwidth on top helps further.
	for _, m := range model.PaperModels() {
		nb, mem := norm(hw.LiteMemBWNetBW(), m), norm(hw.LiteMemBW(), m)
		if nb <= mem {
			t.Errorf("%s: Lite+MemBW+NetBW (%.3f) should beat Lite+MemBW (%.3f)", m.Name, nb, mem)
		}
	}
}

func TestKVReplicationAblation(t *testing.T) {
	// With real KV-head replication, the 32-way Llama3-405B decode loses
	// batch capacity and throughput versus the paper's ideal sharding.
	ideal := DefaultOptions()
	repl := DefaultOptions()
	repl.KVReplication = true

	ri, err := Search(hw.Lite(), model.Llama3_405B(), Decode, ideal)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Search(hw.Lite(), model.Llama3_405B(), Decode, repl)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Best.PerSM >= ri.Best.PerSM {
		t.Errorf("replication (%.2f/SM) should underperform ideal sharding (%.2f/SM)",
			rr.Best.PerSM, ri.Best.PerSM)
	}
	// MHA models are unaffected (KV heads ≥ any TP degree used).
	gi, err := Search(hw.Lite(), model.GPT3_175B(), Decode, ideal)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := Search(hw.Lite(), model.GPT3_175B(), Decode, repl)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gi.Best.PerSM-gr.Best.PerSM)/gi.Best.PerSM > 1e-9 {
		t.Errorf("GPT-3 should be unaffected by KV replication: %.3f vs %.3f",
			gi.Best.PerSM, gr.Best.PerSM)
	}
}

func TestNoOverlapAblation(t *testing.T) {
	// Serializing engines can only slow things down.
	overlap := DefaultOptions()
	serial := DefaultOptions()
	serial.NoOverlap = true
	a, err := Run(hw.H100(), model.Llama3_70B(), Decode, 8, 64, overlap)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(hw.H100(), model.Llama3_70B(), Decode, 8, 64, serial)
	if err != nil {
		t.Fatal(err)
	}
	if b.Latency <= a.Latency {
		t.Errorf("no-overlap TBT %v should exceed overlap TBT %v", b.Latency, a.Latency)
	}
}

func TestRingOnlyAblation(t *testing.T) {
	// Ring-only collectives cost more α steps at high TP.
	best := DefaultOptions()
	ring := DefaultOptions()
	ring.RingOnly = true
	a, err := Run(hw.Lite(), model.GPT3_175B(), Decode, 32, 64, best)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(hw.Lite(), model.GPT3_175B(), Decode, 32, 64, ring)
	if err != nil {
		t.Fatal(err)
	}
	if b.Latency < a.Latency {
		t.Errorf("ring-only TBT %v should be ≥ best-algorithm TBT %v", b.Latency, a.Latency)
	}
}

func TestBoundSharesSumToOne(t *testing.T) {
	est, err := Run(hw.Lite(), model.Llama3_70B(), Decode, 8, 128, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range est.BoundShares {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("bound shares sum to %v, want 1", sum)
	}
}

func TestEstimateString(t *testing.T) {
	est, err := Run(hw.H100(), model.Llama3_70B(), Prefill, 4, 2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if est.String() == "" {
		t.Error("empty estimate string")
	}
}

func TestThroughputScalesWithClusterAtFixedWork(t *testing.T) {
	// Prefill throughput per SM should stay roughly flat between 1 and 2
	// GPUs in a compute-bound regime (network cost stays small).
	opts := DefaultOptions()
	a, err := Run(hw.H100(), model.Llama3_70B(), Prefill, 1, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(hw.H100(), model.Llama3_70B(), Prefill, 2, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rel := b.PerSM / a.PerSM; rel < 0.85 || rel > 1.1 {
		t.Errorf("PerSM ratio 2 GPUs vs 1 = %.3f, want ≈1", rel)
	}
}

func TestDecodeLatencyGrowsWithBatch(t *testing.T) {
	opts := DefaultOptions()
	prev, err := Run(hw.H100(), model.Llama3_70B(), Decode, 8, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []int{16, 256, 2048} {
		cur, err := Run(hw.H100(), model.Llama3_70B(), Decode, 8, b, opts)
		if err != nil {
			t.Fatal(err)
		}
		if cur.Latency < prev.Latency {
			t.Errorf("TBT at B=%d (%v) below B-smaller (%v)", b, cur.Latency, prev.Latency)
		}
		prev = cur
	}
}
