// Package inference implements the paper's case study (Section 4): a
// roofline model of LLM inference on clusters of H100s or Lite-GPUs.
//
// The methodology follows the paper exactly: compute stages are modeled
// individually (projection, MLP, fused FlashAttention); compute, memory
// I/O and network I/O overlap within each stage; tensor parallelism
// distributes execution across the cluster; and a search sweeps all batch
// sizes and GPU counts per GPU type under Splitwise-derived latency SLOs
// (TTFT ≤ 1 s, TBT ≤ 50 ms, 1500-token prompts), reporting the
// configuration with the highest throughput per SM.
package inference

import (
	"errors"
	"fmt"
	"math"

	"litegpu/internal/collective"
	"litegpu/internal/hw"
	"litegpu/internal/mathx"
	"litegpu/internal/model"
	"litegpu/internal/roofline"
	"litegpu/internal/units"
)

// Phase selects the inference phase being modeled. The paper evaluates
// the two phases on separate clusters (Splitwise-style phase splitting).
type Phase int

// The two LLM inference phases.
const (
	// Prefill processes the whole prompt and emits the first token;
	// it is compute-bound and constrained by TTFT.
	Prefill Phase = iota
	// Decode emits one token per request per step, reading the whole KV
	// cache; it is memory-bound and constrained by TBT.
	Decode
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	if p == Prefill {
		return "prefill"
	}
	return "decode"
}

// Options parameterizes the study. DefaultOptions reproduces the paper's
// settings.
type Options struct {
	// Prec sets element sizes; default FP8 end-to-end matching Table 1.
	Prec model.Precision

	// PromptLen is the prompt length in tokens (paper: 1500, the median
	// of a production coding workload).
	PromptLen int

	// DecodeContext is the KV length decode steps attend to; defaults to
	// PromptLen.
	DecodeContext int

	// TTFTLimit and TBTLimit are the Splitwise-derived SLOs.
	TTFTLimit units.Seconds
	TBTLimit  units.Seconds

	// Alpha is the per-step collective latency (launch + hop); it is the
	// non-overlappable part of each all-reduce.
	Alpha units.Seconds

	// RingOnly forces ring collectives instead of picking the best
	// schedule per message — an ablation for latency-sensitive decode.
	RingOnly bool

	// NoOverlap serializes compute, memory, and network within each
	// stage — an ablation quantifying what the paper's overlap
	// assumption is worth.
	NoOverlap bool

	// KVReplication switches tensor-parallel KV handling from the
	// paper's implicit ideal sharding to real Megatron-style KV-head
	// replication when TP exceeds the KV-head count — an ablation that
	// shows how much of the Lite cluster's headroom the paper's model
	// assumption is worth on GQA models at high TP.
	KVReplication bool

	// MaxBatch caps the batch-size sweep.
	MaxBatch int
}

// DefaultOptions returns the paper's study parameters.
func DefaultOptions() Options {
	return Options{
		Prec:          model.FP8(),
		PromptLen:     1500,
		DecodeContext: 1500,
		TTFTLimit:     1.0,
		TBTLimit:      0.050,
		Alpha:         1e-6,
		MaxBatch:      4096,
	}
}

// EffectivePrecision returns the element sizes the study runs at:
// Prec, or the package default (FP8) when unset. It is the single
// place the zero-Prec rule lives, shared by withDefaults and by
// clients that must stay consistent with the compute model — the
// serving simulator's KV-transfer byte accounting in particular.
func (o Options) EffectivePrecision() model.Precision {
	if o.Prec == (model.Precision{}) {
		return DefaultOptions().Prec
	}
	return o.Prec
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	o.Prec = o.EffectivePrecision()
	if o.PromptLen <= 0 {
		o.PromptLen = d.PromptLen
	}
	if o.DecodeContext <= 0 {
		o.DecodeContext = o.PromptLen
	}
	if o.TTFTLimit <= 0 {
		o.TTFTLimit = d.TTFTLimit
	}
	if o.TBTLimit <= 0 {
		o.TBTLimit = d.TBTLimit
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = d.MaxBatch
	}
	return o
}

// ErrDoesNotFit reports that weights plus KV cache exceed cluster HBM.
var ErrDoesNotFit = errors.New("inference: model + KV cache exceed cluster memory")

// Estimate is the modeled performance of one (GPU type, model, phase,
// cluster size, batch) configuration.
type Estimate struct {
	GPU   hw.GPU
	Model model.Transformer
	Phase Phase
	GPUs  int
	Batch int

	// Latency is TTFT for prefill (whole-batch prompt processing) or TBT
	// for decode (one generation step).
	Latency units.Seconds

	// Throughput is tokens/s: prompt tokens ingested for prefill,
	// tokens generated for decode.
	Throughput float64

	// PerSM is Throughput divided by total SMs — the paper's efficiency
	// metric (Figure 3's y-axis before normalization).
	PerSM float64

	// MemPerGPU is the per-GPU HBM footprint (weights + KV).
	MemPerGPU units.Bytes

	// MeetsSLO reports whether Latency is within the phase's limit.
	MeetsSLO bool

	// Bound is the resource limiting the largest share of time.
	Bound roofline.Bound

	// BoundShares is the full time-share attribution.
	BoundShares map[roofline.Bound]float64
}

// String renders the estimate as one report line.
func (e Estimate) String() string {
	return fmt.Sprintf("%s %s %s: G=%d B=%d lat=%v tok/s=%.0f tok/s/SM=%.2f (%s-bound)",
		e.GPU.Name, e.Model.Name, e.Phase, e.GPUs, e.Batch,
		e.Latency, e.Throughput, e.PerSM, e.Bound)
}

// Run models one configuration. It returns ErrDoesNotFit when the
// weights plus KV cache exceed aggregate HBM, and shard-validation errors
// for illegal TP degrees.
func Run(gpu hw.GPU, m model.Transformer, phase Phase, gpus, batch int, opts Options) (Estimate, error) {
	opts = opts.withDefaults()
	if err := gpu.Validate(); err != nil {
		return Estimate{}, err
	}

	var shard model.Shard
	switch phase {
	case Prefill:
		shard = model.Shard{
			TP: gpus, Batch: batch,
			SeqIn: opts.PromptLen, KVLen: opts.PromptLen,
			Causal: true, Prec: opts.Prec,
			IdealKV: !opts.KVReplication,
		}
	case Decode:
		shard = model.Shard{
			TP: gpus, Batch: batch,
			SeqIn: 1, KVLen: opts.DecodeContext,
			Prec:    opts.Prec,
			IdealKV: !opts.KVReplication,
		}
	default:
		return Estimate{}, fmt.Errorf("inference: unknown phase %d", int(phase))
	}
	if err := shard.Validate(m); err != nil {
		return Estimate{}, err
	}

	// Memory feasibility: per-GPU weights + full-context KV for the batch.
	kvTokens := batch * shard.KVLen
	memPerGPU := m.ShardWeightBytes(shard) +
		units.Bytes(float64(kvTokens)*float64(m.ShardKVBytesPerToken(shard)))
	if memPerGPU > gpu.Capacity {
		return Estimate{}, fmt.Errorf("%w: need %v per GPU, have %v (%s G=%d B=%d)",
			ErrDoesNotFit, memPerGPU, gpu.Capacity, m.Name, gpus, batch)
	}

	stages, err := m.LayerStages(shard)
	if err != nil {
		return Estimate{}, err
	}
	device := roofline.Device{Compute: gpu.FLOPS, MemBW: gpu.MemBW, NetBW: gpu.NetBW}
	link := collective.Link{Bandwidth: gpu.NetBW, Latency: opts.Alpha}

	var total units.Seconds
	shares := make(map[roofline.Bound]float64)
	layers := float64(m.Layers)
	runStage := func(rs roofline.Stage, repeat float64) {
		var r roofline.Result
		if opts.NoOverlap {
			r = roofline.RunSerial(rs, device)
		} else {
			r = roofline.Run(rs, device)
		}
		total += units.Seconds(float64(r.Total) * repeat)
		shares[r.Bound] += float64(r.Total) * repeat
	}
	for _, st := range stages {
		rs := roofline.Stage{Name: st.Name, FLOPs: st.FLOPs, MemBytes: st.MemBytes}
		if st.AllReduce > 0 && gpus > 1 {
			rs.NetBytes, rs.Latency = allReduceParts(gpus, st.AllReduce, link, opts.RingOnly)
		}
		runStage(rs, layers)
	}
	head := m.LMHead(shard)
	runStage(roofline.Stage{Name: head.Name, FLOPs: head.FLOPs, MemBytes: head.MemBytes}, 1)

	e := Estimate{
		GPU: gpu, Model: m, Phase: phase,
		GPUs: gpus, Batch: batch,
		Latency:     total,
		MemPerGPU:   memPerGPU,
		BoundShares: normalizeShares(shares, float64(total)),
	}
	switch phase {
	case Prefill:
		e.Throughput = float64(batch*opts.PromptLen) * units.PerSecond(total)
		e.MeetsSLO = total <= opts.TTFTLimit
	case Decode:
		e.Throughput = float64(batch) * units.PerSecond(total)
		e.MeetsSLO = total <= opts.TBTLimit
	}
	e.PerSM = e.Throughput / float64(gpus*gpu.SMs)
	e.Bound = dominantBound(e.BoundShares)
	return e, nil
}

// allReduceParts decomposes the chosen all-reduce schedule into the wire
// bytes that can overlap with compute/memory (NetBytes against the
// device's network ceiling) and the per-step latency sum that cannot
// (Latency, additive).
func allReduceParts(n int, payload units.Bytes, l collective.Link, ringOnly bool) (units.Bytes, units.Seconds) {
	algo := collective.Ring
	if !ringOnly {
		algo, _ = collective.Best(collective.AllReduce, n, payload, l)
	}
	wire := collective.WireBytes(collective.AllReduce, n, payload)
	// Recover the α term: total minus the bandwidth term.
	totalT := collective.Time(collective.AllReduce, algo, n, payload, l)
	bwT := wire.Over(l.Bandwidth)
	latency := totalT - bwT
	if latency < 0 {
		latency = 0
	}
	if algo == collective.Tree {
		// Tree moves the full payload every step; represent its larger
		// wire cost faithfully.
		steps := 2 * math.Ceil(math.Log2(float64(n)))
		wire = units.Bytes(steps * float64(payload))
		latency = units.Seconds(steps * float64(l.Latency))
	}
	return wire, latency
}

func normalizeShares(shares map[roofline.Bound]float64, total float64) map[roofline.Bound]float64 {
	out := make(map[roofline.Bound]float64, len(shares))
	if total <= 0 {
		return out
	}
	for b, v := range shares {
		out[b] = v / total
	}
	return out
}

func dominantBound(shares map[roofline.Bound]float64) roofline.Bound {
	best := roofline.ComputeBound
	bestV := math.Inf(-1)
	for _, b := range []roofline.Bound{
		roofline.ComputeBound, roofline.MemoryBound,
		roofline.NetworkBound, roofline.LatencyBound,
	} {
		if v, ok := shares[b]; ok && v > bestV {
			best, bestV = b, v
		}
	}
	return best
}

// MaxFeasibleBatch returns the largest batch whose KV cache fits next to
// the weights on a cluster of the given size, or 0 when even the weights
// do not fit.
func MaxFeasibleBatch(gpu hw.GPU, m model.Transformer, phase Phase, gpus int, opts Options) int {
	opts = opts.withDefaults()
	kvLen := opts.PromptLen
	if phase == Decode {
		kvLen = opts.DecodeContext
	}
	shard := model.Shard{
		TP: gpus, Batch: 1, SeqIn: 1, KVLen: kvLen, Prec: opts.Prec,
		IdealKV: !opts.KVReplication,
	}
	if err := shard.Validate(m); err != nil {
		return 0
	}
	free := float64(gpu.Capacity) - float64(m.ShardWeightBytes(shard))
	if free <= 0 {
		return 0
	}
	perReq := float64(kvLen) * float64(m.ShardKVBytesPerToken(shard))
	if perReq <= 0 {
		return 0
	}
	return int(free / perReq)
}

// MinFeasibleTP returns the smallest legal tensor-parallel degree (a
// divisor of the model's head count, within the GPU type's cluster
// limit) on which the model fits with room for at least one request's KV
// cache in the given phase. The serving sweep and capacity planner use
// it to auto-size instances. It returns an error when no degree fits.
func MinFeasibleTP(gpu hw.GPU, m model.Transformer, phase Phase, opts Options) (int, error) {
	if err := gpu.Validate(); err != nil {
		return 0, err
	}
	if err := m.Validate(); err != nil {
		return 0, err
	}
	for _, g := range mathx.Divisors(m.Heads) {
		if g > gpu.MaxGPUs {
			break
		}
		if MaxFeasibleBatch(gpu, m, phase, g, opts) >= 1 {
			return g, nil
		}
	}
	return 0, fmt.Errorf("inference: %s does not fit any %s cluster for %s (max %d GPUs)",
		m.Name, gpu.Name, phase, gpu.MaxGPUs)
}

// SearchResult is the outcome of the paper's configuration search for one
// (GPU type, model, phase) triple.
type SearchResult struct {
	Best Estimate
	// Evaluated counts the feasible configurations examined.
	Evaluated int
}

// Search sweeps cluster sizes (legal TP degrees up to the GPU type's
// maximum) and batch sizes (powers of two plus the capacity boundary),
// and returns the feasible configuration with the highest tokens/s/SM —
// exactly the paper's procedure, including its observation that fewer
// GPUs than the maximum may win.
func Search(gpu hw.GPU, m model.Transformer, phase Phase, opts Options) (SearchResult, error) {
	opts = opts.withDefaults()
	if err := gpu.Validate(); err != nil {
		return SearchResult{}, err
	}
	if err := m.Validate(); err != nil {
		return SearchResult{}, err
	}
	var res SearchResult
	found := false
	for _, g := range mathx.Divisors(m.Heads) {
		if g > gpu.MaxGPUs {
			continue
		}
		maxB := MaxFeasibleBatch(gpu, m, phase, g, opts)
		if maxB <= 0 {
			continue
		}
		if maxB > opts.MaxBatch {
			maxB = opts.MaxBatch
		}
		for _, b := range batchSweep(maxB) {
			est, err := Run(gpu, m, phase, g, b, opts)
			if err != nil {
				if errors.Is(err, ErrDoesNotFit) {
					continue
				}
				return SearchResult{}, err
			}
			if !est.MeetsSLO {
				continue
			}
			res.Evaluated++
			if !found || est.PerSM > res.Best.PerSM {
				res.Best = est
				found = true
			}
		}
	}
	if !found {
		return res, fmt.Errorf("inference: no feasible configuration for %s on %s (%s)",
			m.Name, gpu.Name, phase)
	}
	return res, nil
}

// batchSweep returns powers of two up to maxB, always including maxB
// itself (the capacity boundary, where decode throughput typically
// peaks).
func batchSweep(maxB int) []int {
	var bs []int
	for b := 1; b <= maxB; b *= 2 {
		bs = append(bs, b)
	}
	if len(bs) == 0 || bs[len(bs)-1] != maxB {
		bs = append(bs, maxB)
	}
	return bs
}
