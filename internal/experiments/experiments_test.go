package experiments

import (
	"bytes"
	"strings"
	"testing"

	"litegpu/internal/inference"
)

func TestTable1Rows(t *testing.T) {
	rows := Table1()
	if len(rows) != 6 {
		t.Fatalf("Table1 rows = %d, want 6", len(rows))
	}
	if rows[0].GPU.Name != "H100" || rows[5].GPU.Name != "Lite+MemBW+NetBW" {
		t.Error("Table1 order wrong")
	}
}

func TestRenderTable1(t *testing.T) {
	var buf bytes.Buffer
	RenderTable1(&buf)
	out := buf.String()
	for _, want := range []string{"2000", "3352", "112.5", "Lite+MemBW+NetBW"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure1Rows(t *testing.T) {
	rows := Figure1()
	if len(rows) < 5 {
		t.Fatalf("Figure1 rows = %d, want ≥5", len(rows))
	}
	var buf bytes.Buffer
	RenderFigure1(&buf)
	if !strings.Contains(buf.String(), "H100") {
		t.Error("Figure 1 output missing H100")
	}
}

func TestFigure2Claims(t *testing.T) {
	r := Figure2()
	if r.ShorelineGain != 2 {
		t.Errorf("shoreline gain = %v, want 2", r.ShorelineGain)
	}
	if r.YieldGain < 1.7 || r.YieldGain > 1.95 {
		t.Errorf("yield gain = %v, want ≈1.8", r.YieldGain)
	}
	if r.SiliconCostSaving < 0.4 || r.SiliconCostSaving > 0.6 {
		t.Errorf("silicon saving = %v, want ≈0.5", r.SiliconCostSaving)
	}
	var buf bytes.Buffer
	RenderFigure2(&buf)
	if !strings.Contains(buf.String(), "Lite") {
		t.Error("Figure 2 output malformed")
	}
}

func TestFigure3PanelsComplete(t *testing.T) {
	opts := inference.DefaultOptions()
	fa, err := Figure3a(opts)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := Figure3b(opts)
	if err != nil {
		t.Fatal(err)
	}
	for name, rows := range map[string][]Figure3Row{"3a": fa, "3b": fb} {
		if len(rows) != 12 {
			t.Errorf("figure %s rows = %d, want 12", name, len(rows))
		}
		for _, r := range rows {
			if !r.Best.MeetsSLO {
				t.Errorf("figure %s: %s/%s violates SLO", name, r.Model.Name, r.GPU.Name)
			}
			if r.Normalized <= 0 {
				t.Errorf("figure %s: non-positive normalization", name)
			}
		}
	}
	var buf bytes.Buffer
	RenderFigure3(&buf, "test", fa)
	if !strings.Contains(buf.String(), "Llama3-405B") {
		t.Error("Figure 3 output missing model names")
	}
}

func TestYieldStudyRows(t *testing.T) {
	rows := YieldStudy()
	if len(rows) != 5 {
		t.Fatalf("yield rows = %d, want 5", len(rows))
	}
	// Yield increases monotonically as dies shrink.
	for i := 1; i < len(rows); i++ {
		if rows[i].PoissonYield <= rows[i-1].PoissonYield {
			t.Error("yield not monotone in shrink")
		}
	}
	// The quarter-die row carries the paper's claims.
	q := rows[2]
	if q.Fraction != 0.25 {
		t.Fatalf("row 2 fraction = %v", q.Fraction)
	}
	if q.YieldGain < 1.7 || q.SiliconSaving < 0.4 {
		t.Errorf("quarter-die claims off: gain %v, saving %v", q.YieldGain, q.SiliconSaving)
	}
	var buf bytes.Buffer
	RenderYieldStudy(&buf)
	if !strings.Contains(buf.String(), "Poisson") {
		t.Error("yield output malformed")
	}
}

func TestShorelineStudyRows(t *testing.T) {
	rows := ShorelineStudy()
	if rows[0].Gain != 1 || rows[2].Gain != 2 {
		t.Errorf("shoreline gains wrong: %v", rows)
	}
	var buf bytes.Buffer
	RenderShorelineStudy(&buf)
	if !strings.Contains(buf.String(), "perimeter") {
		t.Error("shoreline output malformed")
	}
}

func TestNetworkStudyRows(t *testing.T) {
	rows := NetworkStudy(512)
	if len(rows) != 5 {
		t.Fatalf("network rows = %d, want 5", len(rows))
	}
	// Flat circuit must be the cheapest-energy switched fabric.
	var leafSpine, flat float64
	for _, r := range rows {
		switch {
		case strings.HasPrefix(r.Topology.Name, "leaf-spine"):
			leafSpine = r.EnergyPJBit
		case strings.HasPrefix(r.Topology.Name, "flat-circuit"):
			flat = r.EnergyPJBit
		}
	}
	if flat >= leafSpine {
		t.Errorf("flat-circuit energy (%v) should be below leaf-spine (%v)", flat, leafSpine)
	}
	if adv := CircuitAdvantage(512); adv < 0.5 {
		t.Errorf("circuit advantage = %v, want ≥0.5", adv)
	}
	var buf bytes.Buffer
	RenderNetworkStudy(&buf, 512)
	if !strings.Contains(buf.String(), "pJ/bit") {
		t.Error("network output malformed")
	}
}

func TestPowerStudyRows(t *testing.T) {
	rows := PowerStudy()
	// Savings decrease with load.
	for i := 1; i < len(rows); i++ {
		if rows[i].Result.Saving > rows[i-1].Result.Saving+1e-9 {
			t.Error("power saving should not grow with load")
		}
	}
	cooling := CoolingStudy()
	if len(cooling) != 6 {
		t.Fatalf("cooling rows = %d", len(cooling))
	}
	if cooling[0].Cooling.String() != "liquid" {
		t.Error("H100 should need liquid cooling")
	}
	for _, r := range cooling[1:] {
		if r.Cooling.String() != "air" {
			t.Errorf("%s should be air-cooled", r.GPU.Name)
		}
	}
	var buf bytes.Buffer
	RenderPowerStudy(&buf)
	if !strings.Contains(buf.String(), "Cooling") {
		t.Error("power output malformed")
	}
}

func TestBlastRadiusStudyRows(t *testing.T) {
	rows := BlastRadiusStudy(42)
	if len(rows) != 6 {
		t.Fatalf("blast rows = %d", len(rows))
	}
	// Monte Carlo tracks the analytic model.
	for _, r := range rows {
		if diff := r.Analytic - r.Simulated; diff > 0.01 || diff < -0.01 {
			t.Errorf("%s spares=%d: analytic %v vs simulated %v",
				r.Spec.GPU.Name, r.Spec.Spares, r.Analytic, r.Simulated)
		}
	}
	var buf bytes.Buffer
	RenderBlastRadiusStudy(&buf, 42)
	if !strings.Contains(buf.String(), "Spares") {
		t.Error("blast output malformed")
	}
}

func TestGranularityResult(t *testing.T) {
	r := Granularity(42)
	if r.Lite.MeanStranded >= r.Big.MeanStranded {
		t.Error("granularity study lost its headline result")
	}
	var buf bytes.Buffer
	RenderGranularity(&buf, 42)
	if !strings.Contains(buf.String(), "Stranded") {
		t.Error("granularity output malformed")
	}
}

func TestServingStudyHoldsSLOs(t *testing.T) {
	r, err := ServingStudy(42)
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics.Completed == 0 {
		t.Fatal("serving study completed nothing")
	}
	if r.Metrics.TTFTAttainment < 0.95 {
		t.Errorf("TTFT attainment = %v", r.Metrics.TTFTAttainment)
	}
	if r.Metrics.TBTAttainment < 0.95 {
		t.Errorf("TBT attainment = %v", r.Metrics.TBTAttainment)
	}
	var buf bytes.Buffer
	if err := RenderServingStudy(&buf, 42); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "TTFT") {
		t.Error("serving output malformed")
	}
}

func TestBarRendering(t *testing.T) {
	if bar(-1, 10) != "" {
		t.Error("negative bar should be empty")
	}
	if got := bar(1.6, 10); len(got) != 10 {
		t.Errorf("full bar length = %d", len(got))
	}
	if got := bar(100, 10); len(got) != 10 {
		t.Errorf("clamped bar length = %d", len(got))
	}
}
