package experiments

import (
	"fmt"
	"io"

	"litegpu/internal/hw"
	"litegpu/internal/memory"
	"litegpu/internal/model"
	"litegpu/internal/network"
	"litegpu/internal/straggler"
	"litegpu/internal/tco"
	"litegpu/internal/training"
	"litegpu/internal/units"
)

// TCOResult is the performance-per-dollar comparison of Section 4 plus
// the network-cost-share warning.
type TCOResult struct {
	H100, Lite        tco.Breakdown
	PerfPerDollarGain float64
	ShareSweep        []tco.SharePoint
}

// TCOStudy compares a 64×H100 deployment (NVLink backplane + pluggable
// Clos) against its 256×Lite replacement (one flat CPO circuit fabric)
// at equal throughput, and sweeps the fabric capex share with scale.
func TCOStudy() TCOResult {
	c := tco.DefaultCosts()
	const tokens = 800000.0
	nvlinkPerGPU := units.Dollars(7 * float64(network.Copper().PortCost))
	h100 := tco.ClusterSpec{
		GPU:              hw.H100(),
		GPUs:             64,
		Fabric:           network.Clos(64, network.PluggableOptics(), network.PacketSwitch()),
		ScaleUpPerGPU:    nvlinkPerGPU,
		Throughput:       tokens,
		NetTrafficPerGPU: 100 * units.GB,
	}
	lite := tco.ClusterSpec{
		GPU:              hw.Lite(),
		GPUs:             256,
		Fabric:           network.FlatCircuit(256, network.CoPackagedOptics(), network.CircuitSwitch()),
		Throughput:       tokens,
		NetTrafficPerGPU: 50 * units.GB,
	}
	r := TCOResult{
		H100: c.TCO(h100),
		Lite: c.TCO(lite),
	}
	ph := c.PerfPerDollar(h100)
	if ph > 0 {
		r.PerfPerDollarGain = c.PerfPerDollar(lite) / ph
	}
	r.ShareSweep = c.NetworkShareSweep(hw.Lite(), []int{64, 512, 8192, 65536})
	return r
}

// RenderTCOStudy writes the TCO comparison.
func RenderTCOStudy(w io.Writer) {
	r := TCOStudy()
	fmt.Fprintln(w, "Section 4: total cost of ownership at equal throughput (4-year life)")
	fmt.Fprintf(w, "  64×H100 + NVLink + pluggable Clos:  %v\n", r.H100)
	fmt.Fprintf(w, "  256×Lite + flat CPO circuit fabric: %v\n", r.Lite)
	fmt.Fprintf(w, "  Lite performance per dollar: %.2f× the H100 cluster\n\n", r.PerfPerDollarGain)
	var rows [][]string
	for _, p := range r.ShareSweep {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Endpoints),
			fmt.Sprintf("%.1f%%", p.NetworkShare*100),
		})
	}
	render(w, "Fabric share of capex vs scale (Lite cluster, folded-Clos) — the paper's scaling warning",
		[]string{"Endpoints", "Network share"}, rows)
}

// StragglerRow is one gang-size point of the synchronization study.
type StragglerRow struct {
	Gang        int
	Gaussian    float64
	Exponential float64
	LogNormal   float64
	ClosedForm  float64 // Blom approximation for the Gaussian column
	DropTwo     float64 // lognormal gang with 2 spare members dropped
}

// StragglerStudy quantifies the paper's synchronization-amplification
// concern: gang slowdown versus gang size under three jitter tails at 3%
// CV, with the 2-spare mitigation for the heavy-tailed case.
func StragglerStudy(seed uint64) []StragglerRow {
	const cv = 0.03
	const steps = 20000
	var rows []StragglerRow
	for _, g := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		rows = append(rows, StragglerRow{
			Gang:        g,
			Gaussian:    straggler.GangSlowdown(g, straggler.Jitter{CV: cv, Tail: straggler.Gaussian}, steps, seed),
			Exponential: straggler.GangSlowdown(g, straggler.Jitter{CV: cv, Tail: straggler.Exponential}, steps, seed+1),
			LogNormal:   straggler.GangSlowdown(g, straggler.Jitter{CV: cv, Tail: straggler.LogNormal}, steps, seed+2),
			ClosedForm:  straggler.ExpectedMaxGaussian(g, cv),
			DropTwo:     straggler.DropSlowest(g, 2, straggler.Jitter{CV: cv, Tail: straggler.LogNormal}, steps, seed+3),
		})
	}
	return rows
}

// RenderStragglerStudy writes the synchronization table.
func RenderStragglerStudy(w io.Writer, seed uint64) {
	var rows [][]string
	for _, r := range StragglerStudy(seed) {
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Gang),
			fmt.Sprintf("%.4f", r.Gaussian),
			fmt.Sprintf("%.4f", r.ClosedForm),
			fmt.Sprintf("%.4f", r.Exponential),
			fmt.Sprintf("%.4f", r.LogNormal),
			fmt.Sprintf("%.4f", r.DropTwo),
		})
	}
	render(w, "Section 3: straggler amplification — gang slowdown vs gang size (3% step-time CV)",
		[]string{"Gang", "Gaussian", "(closed form)", "Exponential", "LogNormal", "LogN +2 spares"},
		rows)
	fmt.Fprintln(w, "Replacing an 8-GPU gang with 32 Lite-GPUs costs ≈1–3% extra step time under")
	fmt.Fprintln(w, "light-tailed jitter; heavy tails cost more, and two spare members claw most")
	fmt.Fprintln(w, "of it back — the paper's hot-spare utilization question, quantified.")
	fmt.Fprintln(w)
}

// MemoryRow is one point of the disaggregated-memory study.
type MemoryRow struct {
	PoolGB      float64
	MaxBatch    int
	StepTime    units.Seconds
	EffectiveBW units.BytesPerSec
}

// MemoryStudy evaluates a 8×Lite decode group (Llama3-70B) with a CPO
// memory pool of growing size: the pool extends the feasible batch
// (capacity) while concurrent HBM+pool streaming bounds the step-time
// cost — the paper's disaggregated-memory option, quantified.
func MemoryStudy() []MemoryRow {
	g := hw.Lite()
	m := model.Llama3_70B()
	prec := model.FP8()
	const gpus = 8
	shard := model.Shard{TP: gpus, Batch: 1, SeqIn: 1, KVLen: 1500, Prec: prec, IdealKV: true}
	weights := m.ShardWeightBytes(shard)
	kvPerReq := units.Bytes(1500 * float64(m.ShardKVBytesPerToken(shard)))

	var rows []MemoryRow
	for _, poolGB := range []float64{0, 64, 256, 1024} {
		pool := memory.CPOPool(units.Bytes(poolGB * units.GB))
		maxB := memory.MaxBatch(g, pool, gpus, weights, kvPerReq)
		// Working set of one decode step at that batch: weights + KV.
		working := weights + units.Bytes(float64(maxB)*float64(kvPerReq))
		pl, err := memory.Split(g, working, weights)
		if err != nil {
			continue
		}
		rows = append(rows, MemoryRow{
			PoolGB:      poolGB,
			MaxBatch:    maxB,
			StepTime:    memory.StepTime(g, pool, pl),
			EffectiveBW: memory.EffectiveBandwidth(g, pool, pl),
		})
	}
	return rows
}

// RenderMemoryStudy writes the disaggregated-memory table.
func RenderMemoryStudy(w io.Writer) {
	var rows [][]string
	for _, r := range MemoryStudy() {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", r.PoolGB),
			fmt.Sprintf("%d", r.MaxBatch),
			r.StepTime.String(),
			r.EffectiveBW.String(),
		})
	}
	render(w, "Section 3: disaggregated memory — 8×Lite decode group (Llama3-70B) with a CPO KV pool",
		[]string{"Pool GB", "Max batch", "Step mem time", "Effective BW/GPU"},
		rows)
}

// TrainingRow is one deployment point of the training-scale study.
type TrainingRow struct {
	Estimate training.Estimate
	// PerSMNormalized is tokens/s/SM relative to the H100 row.
	PerSMNormalized float64
}

// TrainingStudy extends the case study to the paper's training scale:
// Llama3-405B pretraining on 16 384 H100s (TP8 × DP2048, the scale the
// paper cites) versus 65 536 Lite-GPUs (TP32 × DP2048), plus the
// bandwidth-boosted Lite variants.
func TrainingStudy() ([]TrainingRow, error) {
	base := training.Config{
		Model:       model.Llama3_405B(),
		DP:          2048,
		MicroBatch:  1,
		SeqLen:      4096,
		Alpha:       1e-6,
		GradOverlap: 0.9,
		TPOverlap:   0.5,
	}
	configs := []struct {
		gpu hw.GPU
		tp  int
	}{
		{hw.H100(), 8},
		{hw.Lite(), 32},
		{hw.LiteNetBW(), 32},
		{hw.LiteMemBWNetBW(), 32},
	}
	var rows []TrainingRow
	var baseline float64
	for i, c := range configs {
		cfg := base
		cfg.GPU = c.gpu
		cfg.TP = c.tp
		est, err := training.Step(cfg)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			baseline = est.PerSM
		}
		rows = append(rows, TrainingRow{
			Estimate:        est,
			PerSMNormalized: est.PerSM / baseline,
		})
	}
	return rows, nil
}

// RenderTrainingStudy writes the training-scale table.
func RenderTrainingStudy(w io.Writer) error {
	rows, err := TrainingStudy()
	if err != nil {
		return err
	}
	var table [][]string
	for _, r := range rows {
		e := r.Estimate
		table = append(table, []string{
			e.Config.GPU.Name,
			fmt.Sprintf("%d×%d", e.Config.TP, e.Config.DP),
			e.StepTime.String(),
			fmt.Sprintf("%.1f%%", float64(e.TPTime)/float64(e.StepTime)*100),
			fmt.Sprintf("%.1f%%", e.MFU*100),
			fmt.Sprintf("%.3f", r.PerSMNormalized),
		})
	}
	render(w, "Extension: Llama3-405B pretraining at the paper's 16k-GPU scale (normalized tokens/s/SM)",
		[]string{"GPU", "TP×DP", "Step", "TP-comm share", "MFU", "Norm."},
		table)
	return nil
}
