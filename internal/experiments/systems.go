package experiments

import (
	"context"
	"fmt"
	"io"

	"litegpu/internal/cluster"
	"litegpu/internal/failure"
	"litegpu/internal/hw"
	"litegpu/internal/inference"
	"litegpu/internal/mathx"
	"litegpu/internal/model"
	"litegpu/internal/network"
	"litegpu/internal/power"
	"litegpu/internal/serve"
	"litegpu/internal/sweep"
	"litegpu/internal/trace"
	"litegpu/internal/units"
)

// NetworkRow compares fabric options at one cluster scale.
type NetworkRow struct {
	Topology    network.Topology
	EnergyPJBit float64
	PathLatency units.Seconds
	Cost        units.Dollars
	BisectionBW units.BytesPerSec
	Feasible    bool
}

// NetworkStudy compares the paper's fabric options for a Lite-GPU
// cluster of the given size: the direct-connect quad group, packet-
// switched single-tier and leaf-spine fabrics, and the flat circuit-
// switched design — over copper and co-packaged optics.
func NetworkStudy(endpoints int) []NetworkRow {
	cpo := network.CoPackagedOptics()
	copper := network.Copper()
	topos := []network.Topology{
		network.DirectConnect(4, copper),
		network.DirectConnect(4, cpo),
		network.SingleSwitch(minInt(endpoints, network.PacketSwitch().Radix), cpo, network.PacketSwitch()),
		network.LeafSpine(endpoints, cpo, network.PacketSwitch()),
		network.FlatCircuit(endpoints, cpo, network.CircuitSwitch()),
	}
	var rows []NetworkRow
	for _, t := range topos {
		rows = append(rows, NetworkRow{
			Topology:    t,
			EnergyPJBit: t.EnergyPerBit() * 1e12,
			PathLatency: t.PathLatency(),
			Cost:        t.Cost(),
			BisectionBW: t.BisectionBW(),
			Feasible:    t.Feasible(),
		})
	}
	return rows
}

// CircuitAdvantage returns the per-bit energy saving of circuit over
// packet switching at the given scale (the paper's ≥50% claim).
func CircuitAdvantage(endpoints int) float64 {
	return network.CircuitEnergyAdvantage(endpoints, network.CoPackagedOptics())
}

// RenderNetworkStudy writes the fabric comparison.
func RenderNetworkStudy(w io.Writer, endpoints int) {
	var rows [][]string
	for _, r := range NetworkStudy(endpoints) {
		rows = append(rows, []string{
			r.Topology.Name,
			r.Topology.Link.Name,
			fmt.Sprintf("%.1f", r.EnergyPJBit),
			r.PathLatency.String(),
			r.BisectionBW.String(),
			r.Cost.String(),
			fmt.Sprintf("%v", r.Feasible),
		})
	}
	render(w, fmt.Sprintf("Section 3: fabric options for a %d-endpoint Lite-GPU cluster", endpoints),
		[]string{"Topology", "Link", "pJ/bit", "Switch lat.", "Bisection", "Cost", "Feasible"},
		rows)
	fmt.Fprintf(w, "circuit vs packet switching energy advantage at %d endpoints: %.0f%% (paper: >50%%)\n\n",
		endpoints, CircuitAdvantage(endpoints)*100)
}

// PowerRow is one load point of the power-granularity study.
type PowerRow struct {
	Load   float64
	Result power.PartialLoad
}

// PowerStudy sweeps serving load for one H100 versus its four-Lite-GPU
// replacement with per-package gating — the paper's finer-granularity
// power-management argument.
func PowerStudy() []PowerRow {
	m := power.Default()
	var rows []PowerRow
	for _, load := range []float64{0.05, 0.10, 0.25, 0.50, 0.75, 1.0} {
		rows = append(rows, PowerRow{Load: load, Result: m.AtLoad(hw.H100(), 4, load)})
	}
	return rows
}

// CoolingRow summarizes each Table 1 config's cooling situation.
type CoolingRow struct {
	GPU      hw.GPU
	Cooling  power.Cooling
	OK       bool
	Headroom float64 // max sustained clock factor on that cooling
}

// CoolingStudy reports required cooling and overclock headroom per
// configuration (the basis of the Lite+FLOPS variants).
func CoolingStudy() []CoolingRow {
	m := power.Default()
	var rows []CoolingRow
	for _, g := range hw.Table1() {
		c, ok := power.Required(g)
		rows = append(rows, CoolingRow{
			GPU: g, Cooling: c, OK: ok,
			Headroom: m.OverclockHeadroom(g, c),
		})
	}
	return rows
}

// RenderPowerStudy writes both power tables.
func RenderPowerStudy(w io.Writer) {
	var rows [][]string
	for _, r := range PowerStudy() {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", r.Load*100),
			r.Result.BigWatts.String(),
			fmt.Sprintf("%d", r.Result.LiteActive),
			r.Result.LiteWatts.String(),
			fmt.Sprintf("%.1f%%", r.Result.Saving*100),
		})
	}
	render(w, "Section 3: power at partial load — 1×H100 (DVFS floor) vs 4×Lite (gate idle members)",
		[]string{"Load", "H100 power", "Lite active", "Lite power", "Saving"},
		rows)

	var crows [][]string
	for _, r := range CoolingStudy() {
		crows = append(crows, []string{
			r.GPU.Name,
			r.GPU.TDP.String(),
			r.Cooling.String(),
			fmt.Sprintf("%.2f×", r.Headroom),
		})
	}
	render(w, "Cooling class and sustained-clock headroom per configuration",
		[]string{"GPU", "TDP", "Cooling", "Clock headroom"},
		crows)
}

// BlastRow is one spare-count point of the fault-tolerance study.
type BlastRow struct {
	Spec        failure.Spec
	Analytic    float64
	Simulated   float64
	SpareCost   float64
	BlastRadius float64
}

// BlastRadiusStudy compares an 8×H100 model instance against its 32×Lite
// replacement across spare counts, with Monte Carlo validation of the
// analytic availability.
func BlastRadiusStudy(seed uint64) []BlastRow {
	p := failure.DefaultParams()
	specs := []failure.Spec{
		{GPU: hw.H100(), InstanceGPUs: 8, Spares: 0},
		{GPU: hw.H100(), InstanceGPUs: 8, Spares: 1},
		{GPU: hw.Lite(), InstanceGPUs: 32, Spares: 0},
		{GPU: hw.Lite(), InstanceGPUs: 32, Spares: 1},
		{GPU: hw.Lite(), InstanceGPUs: 32, Spares: 2},
		{GPU: hw.Lite(), InstanceGPUs: 32, Spares: 4},
	}
	var rows []BlastRow
	for _, s := range specs {
		sim := failure.Simulate(s, p, 10*failure.Year, 200, seed)
		rows = append(rows, BlastRow{
			Spec:        s,
			Analytic:    failure.AnalyticAvailability(s, p),
			Simulated:   sim.Availability,
			SpareCost:   s.SpareCostFraction(),
			BlastRadius: s.HardwareBlastRadius(),
		})
	}
	return rows
}

// RenderBlastRadiusStudy writes the fault-tolerance table.
func RenderBlastRadiusStudy(w io.Writer, seed uint64) {
	var rows [][]string
	for _, r := range BlastRadiusStudy(seed) {
		rows = append(rows, []string{
			r.Spec.GPU.Name,
			fmt.Sprintf("%d", r.Spec.InstanceGPUs),
			fmt.Sprintf("%d", r.Spec.Spares),
			fmt.Sprintf("%.3f%%", r.BlastRadius*100),
			fmt.Sprintf("%.2f%%", r.SpareCost*100),
			fmt.Sprintf("%.7f", r.Analytic),
			fmt.Sprintf("%.7f", r.Simulated),
		})
	}
	render(w, "Section 3: blast radius and hot spares — instance availability (analytic + Monte Carlo)",
		[]string{"GPU", "Instance", "Spares", "Blast radius", "Spare cost", "Avail (analytic)", "Avail (simulated)"},
		rows)
}

// GranularityResult is the allocation-granularity comparison.
type GranularityResult struct {
	Big, Lite cluster.StreamResult
}

// Granularity runs the equal-capacity allocation study: fractional-GPU
// job demands on an H100 cluster vs its 4×-split Lite equivalent.
func Granularity(seed uint64) GranularityResult {
	big, lite := cluster.GranularityStudy(hw.H100(), 16, 4, 200, 0.1, 2.5, seed)
	return GranularityResult{Big: big, Lite: lite}
}

// RenderGranularity writes the comparison.
func RenderGranularity(w io.Writer, seed uint64) {
	r := Granularity(seed)
	rows := [][]string{
		{"H100 ×16", fmt.Sprintf("%d", r.Big.Placed), fmt.Sprintf("%d", r.Big.Rejected),
			fmt.Sprintf("%.1f%%", r.Big.MeanUseful*100), fmt.Sprintf("%.1f%%", r.Big.MeanStranded*100)},
		{"Lite ×64", fmt.Sprintf("%d", r.Lite.Placed), fmt.Sprintf("%d", r.Lite.Rejected),
			fmt.Sprintf("%.1f%%", r.Lite.MeanUseful*100), fmt.Sprintf("%.1f%%", r.Lite.MeanStranded*100)},
	}
	render(w, "Section 3: allocation granularity — equal-capacity clusters, fractional-GPU job mix",
		[]string{"Cluster", "Placed", "Rejected", "Useful util.", "Stranded"},
		rows)
}

// ServingResult is the discrete-event validation of the analytical model.
type ServingResult struct {
	Config  serve.Config
	Metrics serve.Metrics
}

// ServingStudy runs the event-driven simulator on the paper's coding
// workload with Splitwise-style phase splitting, validating that the
// roofline configurations hold their SLOs under queueing.
func ServingStudy(seed uint64) (ServingResult, error) {
	cfg := serve.Config{
		GPU:              hw.H100(),
		Model:            model.Llama3_70B(),
		Opts:             inference.DefaultOptions(),
		PrefillInstances: 2,
		PrefillGPUs:      2,
		DecodeInstances:  1,
		DecodeGPUs:       2,
		MaxPrefillBatch:  4,
		MaxDecodeBatch:   64,
	}
	gen := trace.CodingWorkload(1.2, seed)
	reqs, err := gen.Generate(300)
	if err != nil {
		return ServingResult{}, err
	}
	m, err := serve.Run(cfg, reqs, 420)
	if err != nil {
		return ServingResult{}, err
	}
	return ServingResult{Config: cfg, Metrics: m}, nil
}

// RenderServingStudy writes the serving-simulation report.
func RenderServingStudy(w io.Writer, seed uint64) error {
	r, err := ServingStudy(seed)
	if err != nil {
		return err
	}
	m := r.Metrics
	fmt.Fprintln(w, "Section 4 validation: event-driven serving simulation (Splitwise phase splitting)")
	fmt.Fprintf(w, "  deployment: %d×%d-GPU prefill + %d×%d-GPU decode (%s, %s)\n",
		r.Config.PrefillInstances, r.Config.PrefillGPUs,
		r.Config.DecodeInstances, r.Config.DecodeGPUs,
		r.Config.GPU.Name, r.Config.Model.Name)
	fmt.Fprintf(w, "  arrived %d, completed %d, tokens %d\n", m.Arrived, m.Completed, m.TokensGenerated)
	fmt.Fprintf(w, "  TTFT p50/p99: %v / %v (SLO 1 s, attainment %.1f%%)\n",
		units.Seconds(m.TTFT.P50), units.Seconds(m.TTFT.P99), m.TTFTAttainment*100)
	fmt.Fprintf(w, "  TBT  p50/p99: %v / %v (SLO 50 ms, attainment %.1f%%)\n",
		units.Seconds(m.TBT.P50), units.Seconds(m.TBT.P99), m.TBTAttainment*100)
	fmt.Fprintf(w, "  utilization: prefill %.1f%%, decode %.1f%%\n\n",
		m.PrefillUtilization*100, m.DecodeUtilization*100)
	return nil
}

// ServingGridCell is one (deployment, rate, scheduler, failure-mode)
// point of the serving grid.
type ServingGridCell struct {
	Label     string
	Rate      float64
	Scheduler string
	Failure   string
	Config    serve.Config
	Metrics   serve.Metrics
}

// GridFailureMode is one failure-axis setting of the serving grid.
type GridFailureMode struct {
	Name     string
	Failures serve.FailureConfig
}

// GridFailureModes returns the grid's failure axis: a clean baseline and
// an accelerated-AFR mode (default calibration sped up 3×10⁵×, one hot
// spare) that makes instance deaths and spare takeovers visible inside
// the seven-minute simulation window.
func GridFailureModes() []GridFailureMode {
	return []GridFailureMode{
		{Name: "none"},
		{Name: "afr×3e5+1sp", Failures: serve.FailureConfig{
			Enabled:   true,
			Spares:    1,
			TimeScale: 3e5,
		}},
	}
}

// ServingGrid crosses the paper's two serving deployments — an H100
// cluster and its 4×-Lite replacement — with a range of arrival rates,
// the three scheduling policies (static phase split, continuous
// batching, chunked prefill) on the same silicon, and the failure-mode
// axis, running every simulation concurrently over the sweep pool. Each
// cell's workload seed derives from (seed, rate index) and its failure
// seed from (seed, cell index), so the grid is byte-identical at any
// worker count.
func ServingGrid(seed uint64) ([]ServingGridCell, error) {
	return servingGrid(seed, 0)
}

// ServingGridSequential is ServingGrid pinned to one worker — the
// baseline for the speedup benchmark and determinism tests.
func ServingGridSequential(seed uint64) ([]ServingGridCell, error) {
	return servingGrid(seed, 1)
}

func servingGrid(seed uint64, workers int) ([]ServingGridCell, error) {
	opts := inference.DefaultOptions()
	deployments := []struct {
		label string
		cfg   serve.Config
	}{
		{"H100 2×2P+1×2D", serve.Config{
			GPU: hw.H100(), Model: model.Llama3_70B(), Opts: opts,
			PrefillInstances: 2, PrefillGPUs: 2,
			DecodeInstances: 1, DecodeGPUs: 2,
			MaxPrefillBatch: 4, MaxDecodeBatch: 64,
		}},
		{"Lite 2×8P+1×8D", serve.Config{
			GPU: hw.Lite(), Model: model.Llama3_70B(), Opts: opts,
			PrefillInstances: 2, PrefillGPUs: 8,
			DecodeInstances: 1, DecodeGPUs: 8,
			MaxPrefillBatch: 4, MaxDecodeBatch: 64,
		}},
	}
	rates := []float64{0.6, 1.2, 2.4}
	scheds := serve.SchedulerPolicies()
	modes := GridFailureModes()

	type gridPoint struct {
		cell ServingGridCell
		mode GridFailureMode
	}
	var points []gridPoint
	for _, d := range deployments {
		for _, r := range rates {
			for _, sp := range scheds {
				for _, fm := range modes {
					cfg := d.cfg
					cfg.Scheduler = sp
					points = append(points, gridPoint{
						cell: ServingGridCell{Label: d.label, Rate: r, Scheduler: sp.String(), Failure: fm.Name, Config: cfg},
						mode: fm,
					})
				}
			}
		}
	}
	inner := len(scheds) * len(modes)
	return sweep.RunN(context.Background(), workers, points,
		func(_ context.Context, idx int, p gridPoint) (ServingGridCell, error) {
			c := p.cell
			// Seed by rate position, not flat cell index: the deployments,
			// schedulers, and failure modes being compared at one rate
			// must face the identical request stream, or their metric
			// differences would partly be trace noise rather than hardware
			// or policy.
			gen := trace.CodingWorkload(c.Rate, mathx.DeriveSeed(seed, uint64((idx/inner)%len(rates))))
			reqs, err := gen.Generate(300)
			if err != nil {
				return ServingGridCell{}, err
			}
			cc := serve.ClusterConfig{
				Pools:    []serve.Pool{{Name: c.Label, Config: c.Config}},
				Failures: p.mode.Failures,
			}
			// The failure processes get their own per-cell stream so the
			// grid stays byte-identical at any worker count.
			cc.Failures.Seed = mathx.DeriveSeed(seed^0xfa11, uint64(idx))
			cm, err := serve.RunCluster(cc, reqs, 420)
			if err != nil {
				return ServingGridCell{}, fmt.Errorf("experiments: %s @ %.1f req/s (%s): %w", c.Label, c.Rate, c.Failure, err)
			}
			c.Metrics = cm.Pools[0].Metrics
			return c, nil
		})
}

// RenderServingGrid writes the deployment × rate comparison.
func RenderServingGrid(w io.Writer, seed uint64) error {
	cells, err := ServingGrid(seed)
	if err != nil {
		return err
	}
	var rows [][]string
	for _, c := range cells {
		m := c.Metrics
		rows = append(rows, []string{
			c.Label,
			fmt.Sprintf("%.1f", c.Rate),
			c.Scheduler,
			c.Failure,
			fmt.Sprintf("%d/%d", m.Completed, m.Arrived),
			fmt.Sprintf("%d", m.Dropped),
			fmt.Sprintf("%.0f ms", m.TTFT.P99*1e3),
			fmt.Sprintf("%.1f ms", m.TBT.P99*1e3),
			fmt.Sprintf("%.1f%%", m.TTFTAttainment*100),
			fmt.Sprintf("%.1f%%", m.TBTAttainment*100),
			fmt.Sprintf("%.3f/%d", m.Availability, m.FailureEvents),
			fmt.Sprintf("%.0f%%/%.0f%%", m.PrefillUtilization*100, m.DecodeUtilization*100),
		})
	}
	render(w, "Section 4: serving grid — deployments × arrival rates × schedulers × failure modes (coding workload)",
		[]string{"Deployment", "req/s", "Sched", "Failures", "Done", "Drop", "TTFT p99", "TBT p99", "TTFT att.", "TBT att.", "Avail/Ev", "Util P/D"},
		rows)
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
