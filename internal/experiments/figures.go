package experiments

import (
	"context"
	"fmt"
	"io"

	"litegpu/internal/die"
	"litegpu/internal/hw"
	"litegpu/internal/inference"
	"litegpu/internal/model"
	"litegpu/internal/sweep"
	"litegpu/internal/units"
)

// Table1Row is one row of the paper's Table 1.
type Table1Row struct {
	GPU hw.GPU
}

// Table1 returns the GPU-configuration table.
func Table1() []Table1Row {
	var rows []Table1Row
	for _, g := range hw.Table1() {
		rows = append(rows, Table1Row{GPU: g})
	}
	return rows
}

// RenderTable1 writes Table 1 in the paper's layout.
func RenderTable1(w io.Writer) {
	var rows [][]string
	for _, r := range Table1() {
		g := r.GPU
		rows = append(rows, []string{
			g.Name,
			fmt.Sprintf("%.0f", float64(g.FLOPS)/units.Tera),
			fmt.Sprintf("%.0f", float64(g.Capacity)/units.GB),
			fmt.Sprintf("%.0f", float64(g.MemBW)/units.GB),
			fmt.Sprintf("%.1f", float64(g.NetBW)/units.GB),
			fmt.Sprintf("%d", g.MaxGPUs),
		})
	}
	render(w, "Table 1: GPU configurations",
		[]string{"GPU type", "TFLOPS", "Cap. GB", "Mem BW GB/s", "Net BW GB/s", "#Max GPUs"},
		rows)
}

// Figure1Row is one generation in the GPU-evolution timeline.
type Figure1Row struct {
	Gen hw.Generation
}

// Figure1 returns the evolution data behind the paper's Figure 1.
func Figure1() []Figure1Row {
	var rows []Figure1Row
	for _, g := range hw.Evolution() {
		rows = append(rows, Figure1Row{Gen: g})
	}
	return rows
}

// RenderFigure1 writes the GPU-evolution table.
func RenderFigure1(w io.Writer) {
	var rows [][]string
	for _, r := range Figure1() {
		g := r.Gen
		rows = append(rows, []string{
			g.Name,
			fmt.Sprintf("%d", g.Year),
			fmt.Sprintf("%.0fB", g.Transistors/1e9),
			fmt.Sprintf("%d", g.Dies),
			fmt.Sprintf("%.0f", float64(g.DieArea)),
			fmt.Sprintf("%.0f", float64(g.TDP)),
			fmt.Sprintf("%.0f", float64(g.HBM)/units.GB),
			g.Packaging,
		})
	}
	render(w, "Figure 1: Evolution of GPUs in AI clusters (single die → multi-die packages)",
		[]string{"GPU", "Year", "Transistors", "Dies", "Die mm²", "TDP W", "HBM GB", "Packaging"},
		rows)
}

// Figure2Result captures the example Lite-GPU deployment of Figure 2:
// each H100 replaced by four Lite-GPUs, with the derived hardware
// benefits.
type Figure2Result struct {
	H100, Lite          hw.GPU
	ShorelineGain       float64 // total-perimeter multiplier
	BandwidthPerCompute float64 // Lite vs H100 ratio headroom
	YieldGain           float64
	SiliconCostSaving   float64
}

// Figure2 derives the deployment example.
func Figure2() Figure2Result {
	h := hw.H100()
	cm := die.DefaultCostModel()
	return Figure2Result{
		H100:                h,
		Lite:                hw.Lite(),
		ShorelineGain:       die.ShorelineGain(4),
		BandwidthPerCompute: die.BandwidthToComputeGain(4),
		YieldGain:           die.YieldGain(cm.Yield, h.DieArea, 0.25),
		SiliconCostSaving:   cm.SiliconCostReduction(h.DieArea, 0.25),
	}
}

// RenderFigure2 writes the deployment derivation.
func RenderFigure2(w io.Writer) {
	r := Figure2()
	fmt.Fprintln(w, "Figure 2: Each H100 replaced by four Lite-GPUs")
	fmt.Fprintf(w, "  H100:  %v\n", r.H100)
	fmt.Fprintf(w, "  Lite:  %v (×4 per H100 socket)\n", r.Lite)
	fmt.Fprintf(w, "  total shoreline: %.2f× → bandwidth-to-compute headroom %.2f×\n",
		r.ShorelineGain, r.BandwidthPerCompute)
	fmt.Fprintf(w, "  die yield: %.2f× higher; silicon cost per compute: %.0f%% lower\n\n",
		r.YieldGain, r.SiliconCostSaving*100)
}

// Figure3Row is one bar of Figure 3: a (model, GPU-config) pair with its
// best search result and H100-normalized efficiency.
type Figure3Row struct {
	Model      model.Transformer
	GPU        hw.GPU
	Best       inference.Estimate
	Normalized float64 // tokens/s/SM relative to the H100 bar
}

// Figure3 runs the paper's search for one phase over the given GPU
// configurations and all three paper models, normalizing each model's
// bars to its H100 result. Every bar is an independent inference.Search,
// so the grid fans out over a sweep worker pool; results are identical
// to the sequential loop regardless of worker count.
func Figure3(phase inference.Phase, configs []hw.GPU, opts inference.Options) ([]Figure3Row, error) {
	return figure3(phase, configs, opts, 0)
}

// Figure3Sequential is Figure3 pinned to one worker — the baseline the
// speedup benchmarks and determinism tests compare against.
func Figure3Sequential(phase inference.Phase, configs []hw.GPU, opts inference.Options) ([]Figure3Row, error) {
	return figure3(phase, configs, opts, 1)
}

func figure3(phase inference.Phase, configs []hw.GPU, opts inference.Options, workers int) ([]Figure3Row, error) {
	type bar struct {
		m model.Transformer
		g hw.GPU
	}
	var points []bar
	for _, m := range model.PaperModels() {
		for _, g := range configs {
			points = append(points, bar{m: m, g: g})
		}
	}
	rows, err := sweep.RunN(context.Background(), workers, points,
		func(_ context.Context, _ int, p bar) (Figure3Row, error) {
			res, err := inference.Search(p.g, p.m, phase, opts)
			if err != nil {
				return Figure3Row{}, fmt.Errorf("experiments: %s on %s: %w", p.m.Name, p.g.Name, err)
			}
			return Figure3Row{Model: p.m, GPU: p.g, Best: res.Best}, nil
		})
	if err != nil {
		return nil, err
	}
	// Normalize each model's bars to its first (H100) column, which is
	// only known once the whole grid is in.
	for i := range rows {
		rows[i].Normalized = rows[i].Best.PerSM / rows[i-i%len(configs)].Best.PerSM
	}
	return rows, nil
}

// Figure3a runs the prefill study (H100, Lite, Lite+NetBW,
// Lite+NetBW+FLOPS).
func Figure3a(opts inference.Options) ([]Figure3Row, error) {
	return Figure3(inference.Prefill, hw.PrefillConfigs(), opts)
}

// Figure3b runs the decode study (H100, Lite, Lite+MemBW,
// Lite+MemBW+NetBW).
func Figure3b(opts inference.Options) ([]Figure3Row, error) {
	return Figure3(inference.Decode, hw.DecodeConfigs(), opts)
}

// RenderFigure3 writes one Figure 3 panel.
func RenderFigure3(w io.Writer, title string, rows []Figure3Row) {
	fmt.Fprintln(w, title)
	var table [][]string
	last := ""
	for _, r := range rows {
		name := ""
		if r.Model.Name != last {
			name = r.Model.Name
			last = r.Model.Name
		}
		table = append(table, []string{
			name,
			r.GPU.Name,
			fmt.Sprintf("%d", r.Best.GPUs),
			fmt.Sprintf("%d", r.Best.Batch),
			r.Best.Latency.String(),
			fmt.Sprintf("%.2f", r.Best.PerSM),
			fmt.Sprintf("%.3f", r.Normalized),
			r.Best.Bound.String(),
			bar(r.Normalized, 40),
		})
	}
	render(w, "", []string{"Model", "Config", "GPUs", "Batch", "Latency", "tok/s/SM", "Norm.", "Bound", ""}, table)
}
