// Package experiments regenerates every table and figure of the paper,
// plus the quantitative claims embedded in its prose. Each experiment
// returns typed rows (for tests and programmatic use) and renders a
// human-readable report (for the litegpu-figures binary and the
// benchmark harness).
//
// The per-experiment index lives in DESIGN.md; measured-vs-paper numbers
// are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// render writes rows through a tabwriter with a title and header.
func render(w io.Writer, title string, header []string, rows [][]string) {
	fmt.Fprintf(w, "%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for i, h := range header {
		if i > 0 {
			fmt.Fprint(tw, "\t")
		}
		fmt.Fprint(tw, h)
	}
	fmt.Fprintln(tw)
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				fmt.Fprint(tw, "\t")
			}
			fmt.Fprint(tw, cell)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// bar renders a unit-normalized value as an ASCII bar for figure-style
// output.
func bar(norm float64, width int) string {
	n := int(norm * float64(width) / 1.6) // figures top out near 1.6
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
