package experiments

import (
	"fmt"
	"io"

	"litegpu/internal/die"
	"litegpu/internal/hw"
	"litegpu/internal/units"
)

// YieldRow is one point of the yield/cost study: a die-size fraction with
// per-model yields and the resulting cost economics.
type YieldRow struct {
	Fraction      float64 // of the H100 die area
	Area          units.MM2
	DiesPerWafer  int
	PoissonYield  float64
	MurphyYield   float64
	SeedsYield    float64
	RadialYield   float64
	YieldGain     float64 // Poisson, vs full die
	SiliconSaving float64 // silicon cost per compute vs full die
	PackageSaving float64 // full package cost per compute vs full die
}

// YieldStudy sweeps die-size fractions of the H100 die and reports the
// yield and cost trajectory, reproducing the Section 2 example at
// fraction 0.25 (≈1.8× yield, ≈50% silicon cost saving).
func YieldStudy() []YieldRow {
	cm := die.DefaultCostModel()
	w := cm.Wafer
	ref := hw.H100().DieArea
	poisson := die.Poisson{D0: die.DefaultDefectDensity}
	murphy := die.Murphy{D0: die.DefaultDefectDensity}
	seeds := die.Seeds{D0: die.DefaultDefectDensity}
	radial := die.Radial{D0: die.DefaultDefectDensity, Gradient: 1.0, Wafer: w}

	var rows []YieldRow
	for _, frac := range []float64{1, 0.5, 0.25, 0.125, 0.0625} {
		area := units.MM2(float64(ref) * frac)
		rows = append(rows, YieldRow{
			Fraction:      frac,
			Area:          area,
			DiesPerWafer:  w.DiesPerWafer(area),
			PoissonYield:  poisson.Yield(area),
			MurphyYield:   murphy.Yield(area),
			SeedsYield:    seeds.Yield(area),
			RadialYield:   radial.Yield(area),
			YieldGain:     die.YieldGain(poisson, ref, frac),
			SiliconSaving: cm.SiliconCostReduction(ref, frac),
			PackageSaving: cm.CostReduction(ref, frac),
		})
	}
	return rows
}

// RenderYieldStudy writes the yield/cost table.
func RenderYieldStudy(w io.Writer) {
	var rows [][]string
	for _, r := range YieldStudy() {
		rows = append(rows, []string{
			fmt.Sprintf("%.4g", r.Fraction),
			fmt.Sprintf("%.0f", float64(r.Area)),
			fmt.Sprintf("%d", r.DiesPerWafer),
			fmt.Sprintf("%.1f%%", r.PoissonYield*100),
			fmt.Sprintf("%.1f%%", r.MurphyYield*100),
			fmt.Sprintf("%.1f%%", r.SeedsYield*100),
			fmt.Sprintf("%.1f%%", r.RadialYield*100),
			fmt.Sprintf("%.2f×", r.YieldGain),
			fmt.Sprintf("%.0f%%", r.SiliconSaving*100),
			fmt.Sprintf("%.0f%%", r.PackageSaving*100),
		})
	}
	render(w, "Section 2 claim: yield and manufacturing cost vs die size (H100-class wafer, D0=0.1/cm²)",
		[]string{"Fraction", "mm²", "Dies/wafer", "Poisson", "Murphy", "Seeds", "Radial", "Yield gain", "Si saving", "Pkg saving"},
		rows)
}

// ShorelineRow is one point of the shoreline study.
type ShorelineRow struct {
	Split          int
	PerDieArea     units.MM2
	TotalPerimeter units.MM
	Gain           float64           // bandwidth-to-compute multiplier
	MaxBandwidth   units.BytesPerSec // per die at H100 shoreline density
}

// ShorelineStudy sweeps split factors of one H100 die and reports the
// total shoreline and the per-die bandwidth it supports at the H100's
// realized shoreline density — Section 2's 2×-bandwidth-at-quarter-die
// claim is the Split=4 row.
func ShorelineStudy() []ShorelineRow {
	ref := hw.H100().DieArea
	density := die.H100BandwidthDensity()
	var rows []ShorelineRow
	for _, n := range []int{1, 2, 4, 8, 16} {
		per := units.MM2(float64(ref) / float64(n))
		rows = append(rows, ShorelineRow{
			Split:          n,
			PerDieArea:     per,
			TotalPerimeter: die.TotalPerimeter(ref, n),
			Gain:           die.BandwidthToComputeGain(n),
			MaxBandwidth:   die.MaxBandwidth(per, density),
		})
	}
	return rows
}

// RenderShorelineStudy writes the shoreline table.
func RenderShorelineStudy(w io.Writer) {
	var rows [][]string
	for _, r := range ShorelineStudy() {
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Split),
			fmt.Sprintf("%.0f", float64(r.PerDieArea)),
			fmt.Sprintf("%.0f", float64(r.TotalPerimeter)),
			fmt.Sprintf("%.2f×", r.Gain),
			r.MaxBandwidth.String(),
		})
	}
	render(w, "Section 2 claim: shoreline (perimeter) vs split factor at constant total area",
		[]string{"Split", "Die mm²", "Total perimeter mm", "BW:compute gain", "Max BW/die"},
		rows)
}
