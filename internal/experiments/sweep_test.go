package experiments

import (
	"reflect"
	"testing"

	"litegpu/internal/hw"
	"litegpu/internal/inference"
)

// TestFigure3ParallelMatchesSequential pins the sweep port: fanning the
// Figure 3 grid over the worker pool must not change a single field of
// any row relative to the sequential loop.
func TestFigure3ParallelMatchesSequential(t *testing.T) {
	opts := inference.DefaultOptions()
	for _, tc := range []struct {
		name    string
		phase   inference.Phase
		configs []hw.GPU
	}{
		{"prefill", inference.Prefill, hw.PrefillConfigs()},
		{"decode", inference.Decode, hw.DecodeConfigs()},
	} {
		seq, err := Figure3Sequential(tc.phase, tc.configs, opts)
		if err != nil {
			t.Fatalf("%s sequential: %v", tc.name, err)
		}
		par, err := Figure3(tc.phase, tc.configs, opts)
		if err != nil {
			t.Fatalf("%s parallel: %v", tc.name, err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("%s: parallel Figure 3 diverges from sequential", tc.name)
		}
	}
}

func TestServingGridParallelMatchesSequential(t *testing.T) {
	seq, err := ServingGridSequential(42)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ServingGrid(42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("parallel serving grid diverges from sequential")
	}
	if len(seq) != 36 {
		t.Errorf("grid has %d cells, want 2 deployments × 3 rates × 3 schedulers × 2 failure modes = 36", len(seq))
	}
	sawFailure := false
	for _, c := range seq {
		if c.Metrics.Arrived == 0 || c.Metrics.Completed == 0 {
			t.Errorf("cell %s @ %.1f %s (%s) served nothing", c.Label, c.Rate, c.Scheduler, c.Failure)
		}
		switch c.Failure {
		case "none":
			if c.Metrics.Availability != 1 || c.Metrics.FailureEvents != 0 {
				t.Errorf("clean cell %s @ %.1f reports failure activity: %+v", c.Label, c.Rate, c.Metrics)
			}
		default:
			if c.Metrics.FailureEvents > 0 {
				sawFailure = true
			}
		}
	}
	if !sawFailure {
		t.Error("no failure-mode cell observed a failure; the accelerated clock is miscalibrated")
	}
}
