package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestTCOStudy(t *testing.T) {
	r := TCOStudy()
	// Lite wins perf/$ at equal throughput.
	if r.PerfPerDollarGain <= 1.0 {
		t.Errorf("Lite perf/$ gain = %v, want > 1", r.PerfPerDollarGain)
	}
	if r.PerfPerDollarGain > 2.0 {
		t.Errorf("Lite perf/$ gain = %v, implausibly high", r.PerfPerDollarGain)
	}
	// Lite cooling capex is a fraction of the H100's (air vs liquid).
	if r.Lite.CoolingCapex >= r.H100.CoolingCapex {
		t.Error("Lite cooling capex should be below H100's")
	}
	// The share sweep is non-decreasing (the scaling warning).
	for i := 1; i < len(r.ShareSweep); i++ {
		if r.ShareSweep[i].NetworkShare < r.ShareSweep[i-1].NetworkShare-1e-9 {
			t.Error("network share sweep not monotone")
		}
	}
	var buf bytes.Buffer
	RenderTCOStudy(&buf)
	if !strings.Contains(buf.String(), "performance per dollar") {
		t.Error("TCO output malformed")
	}
}

func TestStragglerStudy(t *testing.T) {
	rows := StragglerStudy(42)
	if len(rows) != 8 {
		t.Fatalf("straggler rows = %d, want 8", len(rows))
	}
	// Slowdown grows with gang size in every column.
	for i := 1; i < len(rows); i++ {
		if rows[i].Gaussian < rows[i-1].Gaussian-0.002 {
			t.Error("gaussian column not monotone")
		}
		if rows[i].LogNormal < rows[i-1].LogNormal-0.002 {
			t.Error("lognormal column not monotone")
		}
	}
	// Monte Carlo tracks the closed form.
	for _, r := range rows {
		if diff := r.Gaussian - r.ClosedForm; diff > 0.005 || diff < -0.005 {
			t.Errorf("gang %d: MC %v vs closed form %v", r.Gang, r.Gaussian, r.ClosedForm)
		}
	}
	// Dropping two spares beats the plain lognormal gang at scale.
	last := rows[len(rows)-1]
	if last.DropTwo >= last.LogNormal {
		t.Error("spare-dropping did not mitigate stragglers")
	}
	var buf bytes.Buffer
	RenderStragglerStudy(&buf, 42)
	if !strings.Contains(buf.String(), "Gang") {
		t.Error("straggler output malformed")
	}
}

func TestMemoryStudy(t *testing.T) {
	rows := MemoryStudy()
	if len(rows) != 4 {
		t.Fatalf("memory rows = %d, want 4", len(rows))
	}
	// Pool capacity extends the feasible batch monotonically…
	for i := 1; i < len(rows); i++ {
		if rows[i].MaxBatch <= rows[i-1].MaxBatch {
			t.Error("pool did not extend max batch")
		}
	}
	// …at the price of longer full-working-set step times (pool BW is
	// the bottleneck when everything streams) — the capacity-vs-
	// bandwidth tension the table exists to show.
	if rows[len(rows)-1].StepTime <= rows[0].StepTime {
		t.Error("expected step-time growth with spilled working set")
	}
	var buf bytes.Buffer
	RenderMemoryStudy(&buf)
	if !strings.Contains(buf.String(), "Pool GB") {
		t.Error("memory output malformed")
	}
}

func TestTrainingStudy(t *testing.T) {
	rows, err := TrainingStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("training rows = %d, want 4", len(rows))
	}
	// H100 baseline normalizes to 1; base Lite trails; extra network
	// bandwidth recovers most of it (training is prefill-like).
	if rows[0].PerSMNormalized != 1 {
		t.Error("baseline not normalized to 1")
	}
	if rows[1].PerSMNormalized >= 1 {
		t.Errorf("base Lite training = %v, want < 1", rows[1].PerSMNormalized)
	}
	if rows[2].PerSMNormalized <= rows[1].PerSMNormalized {
		t.Error("Lite+NetBW should beat base Lite in training")
	}
	// MFU stays in a plausible band everywhere.
	for _, r := range rows {
		if r.Estimate.MFU < 0.4 || r.Estimate.MFU > 0.95 {
			t.Errorf("%s MFU = %v", r.Estimate.Config.GPU.Name, r.Estimate.MFU)
		}
	}
	var buf bytes.Buffer
	if err := RenderTrainingStudy(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "MFU") {
		t.Error("training output malformed")
	}
}
