// Package units defines the physical quantities used throughout the
// litegpu models: data sizes, rates, compute throughput, time, power,
// energy, cost, and silicon geometry.
//
// All quantities are float64-based named types so that model code reads
// unambiguously (a units.Bytes cannot be confused with a units.FLOPs)
// while remaining zero-cost. Conversion constants follow vendor datasheet
// convention: storage and bandwidth are decimal (1 GB = 1e9 bytes), which
// is how GPU HBM capacity and NVLink bandwidth are quoted.
package units

import (
	"fmt"
	"math"
)

// Decimal (SI) size constants, the convention used by GPU datasheets.
const (
	KB = 1e3
	MB = 1e6
	GB = 1e9
	TB = 1e12
	PB = 1e15
)

// Binary (IEC) size constants for contexts that need them.
const (
	KiB = 1 << 10
	MiB = 1 << 20
	GiB = 1 << 30
	TiB = 1 << 40
)

// SI magnitude multipliers for rates and compute throughput.
const (
	Kilo = 1e3
	Mega = 1e6
	Giga = 1e9
	Tera = 1e12
	Peta = 1e15
	Exa  = 1e18
)

// Bytes is a data size in bytes.
type Bytes float64

// BytesPerSec is a data rate in bytes per second.
type BytesPerSec float64

// FLOPs is an amount of floating-point work (operations, not a rate).
type FLOPs float64

// FLOPSRate is compute throughput in floating-point operations per second.
type FLOPSRate float64

// Seconds is a duration in seconds. A plain float64 representation is used
// instead of time.Duration because model timescales span nanoseconds to
// years and frequently appear in ratios.
type Seconds float64

// Watts is power.
type Watts float64

// Joules is energy.
type Joules float64

// Dollars is cost in US dollars.
type Dollars float64

// MM2 is silicon area in square millimetres.
type MM2 float64

// MM is a length in millimetres.
type MM float64

// Hertz is frequency.
type Hertz float64

// Common derived helpers ----------------------------------------------------

// Over returns the time to move b bytes at rate r. It returns +Inf for a
// zero or negative rate so that an absent resource naturally dominates a
// max() roofline term, and 0 for non-positive b.
func (b Bytes) Over(r BytesPerSec) Seconds {
	if b <= 0 {
		return 0
	}
	if r <= 0 {
		return Seconds(math.Inf(1))
	}
	return Seconds(float64(b) / float64(r))
}

// Over returns the time to execute f floating-point operations at rate r,
// with the same boundary conventions as Bytes.Over.
func (f FLOPs) Over(r FLOPSRate) Seconds {
	if f <= 0 {
		return 0
	}
	if r <= 0 {
		return Seconds(math.Inf(1))
	}
	return Seconds(float64(f) / float64(r))
}

// PerSecond converts a per-item duration into an items-per-second rate.
// It returns 0 when the duration is non-positive or infinite.
func PerSecond(d Seconds) float64 {
	fd := float64(d)
	if fd <= 0 || math.IsInf(fd, 0) || math.IsNaN(fd) {
		return 0
	}
	return 1 / fd
}

// Energy returns the energy consumed by drawing p for d.
func Energy(p Watts, d Seconds) Joules {
	return Joules(float64(p) * float64(d))
}

// String renders a size with an auto-selected decimal unit, e.g. "80 GB".
func (b Bytes) String() string { return siFormat(float64(b), "B") }

// String renders a rate, e.g. "3.35 TB/s".
func (r BytesPerSec) String() string { return siFormat(float64(r), "B/s") }

// String renders work, e.g. "213 TFLOP".
func (f FLOPs) String() string { return siFormat(float64(f), "FLOP") }

// String renders compute throughput, e.g. "2 PFLOP/s".
func (r FLOPSRate) String() string { return siFormat(float64(r), "FLOP/s") }

// String renders a duration with an auto-selected sub-second unit.
func (s Seconds) String() string {
	v := float64(s)
	av := math.Abs(v)
	switch {
	case math.IsInf(v, 0):
		return fmt.Sprintf("%v s", v)
	case av == 0:
		return "0 s"
	case av < 1e-6:
		return trimFmt(v*1e9, "ns")
	case av < 1e-3:
		return trimFmt(v*1e6, "µs")
	case av < 1:
		return trimFmt(v*1e3, "ms")
	case av < 120:
		return trimFmt(v, "s")
	case av < 7200:
		return trimFmt(v/60, "min")
	default:
		return trimFmt(v/3600, "h")
	}
}

// String renders power, e.g. "700 W" or "1.2 kW".
func (w Watts) String() string { return siFormat(float64(w), "W") }

// String renders energy, e.g. "15 J" or "3.4 kJ".
func (j Joules) String() string { return siFormat(float64(j), "J") }

// String renders a dollar amount, e.g. "$2,310.50".
func (d Dollars) String() string {
	v := float64(d)
	sign := ""
	if v < 0 {
		sign = "-"
		v = -v
	}
	return fmt.Sprintf("%s$%s", sign, groupThousands(v))
}

// String renders an area, e.g. "814 mm²".
func (a MM2) String() string { return trimFmt(float64(a), "mm²") }

// String renders a length, e.g. "114.1 mm".
func (l MM) String() string { return trimFmt(float64(l), "mm") }

// String renders a frequency, e.g. "1.98 GHz".
func (h Hertz) String() string { return siFormat(float64(h), "Hz") }

// siFormat renders v with the largest SI prefix that keeps the mantissa at
// or above 1, using up to three significant decimals.
func siFormat(v float64, unit string) string {
	av := math.Abs(v)
	if av == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Sprintf("%v %s", v, unit)
	}
	prefixes := []struct {
		mul  float64
		name string
	}{
		{Exa, "E"}, {Peta, "P"}, {Tera, "T"}, {Giga, "G"},
		{Mega, "M"}, {Kilo, "k"}, {1, ""},
	}
	for _, p := range prefixes {
		if av >= p.mul {
			return trimFmt(v/p.mul, p.name+unit)
		}
	}
	// Below 1: render small values plainly.
	return trimFmt(v, unit)
}

// trimFmt prints v with up to 3 decimals, trimming trailing zeros.
func trimFmt(v float64, unit string) string {
	s := fmt.Sprintf("%.3f", v)
	// Trim trailing zeros and a dangling decimal point.
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s + " " + unit
}

// groupThousands renders v with comma thousand separators and two decimals.
func groupThousands(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	dot := len(s) - 3
	intPart, frac := s[:dot], s[dot:]
	if len(intPart) <= 3 {
		return intPart + frac
	}
	var out []byte
	lead := len(intPart) % 3
	if lead > 0 {
		out = append(out, intPart[:lead]...)
	}
	for i := lead; i < len(intPart); i += 3 {
		if len(out) > 0 {
			out = append(out, ',')
		}
		out = append(out, intPart[i:i+3]...)
	}
	return string(out) + frac
}
