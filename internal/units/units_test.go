package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBytesOver(t *testing.T) {
	tests := []struct {
		name string
		b    Bytes
		r    BytesPerSec
		want Seconds
	}{
		{"one GB at one GB/s", GB, GB, 1},
		{"half rate", GB, 2 * GB, 0.5},
		{"zero bytes", 0, GB, 0},
		{"negative bytes", -5, GB, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.b.Over(tt.r); got != tt.want {
				t.Errorf("Over() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestBytesOverZeroRate(t *testing.T) {
	got := Bytes(GB).Over(0)
	if !math.IsInf(float64(got), 1) {
		t.Errorf("Over(0) = %v, want +Inf", got)
	}
	got = Bytes(GB).Over(-1)
	if !math.IsInf(float64(got), 1) {
		t.Errorf("Over(-1) = %v, want +Inf", got)
	}
}

func TestFLOPsOver(t *testing.T) {
	if got := FLOPs(2 * Tera).Over(FLOPSRate(1 * Tera)); got != 2 {
		t.Errorf("Over = %v, want 2", got)
	}
	if got := FLOPs(0).Over(FLOPSRate(Tera)); got != 0 {
		t.Errorf("Over zero work = %v, want 0", got)
	}
	if got := FLOPs(Tera).Over(0); !math.IsInf(float64(got), 1) {
		t.Errorf("Over zero rate = %v, want +Inf", got)
	}
}

func TestPerSecond(t *testing.T) {
	if got := PerSecond(0.5); got != 2 {
		t.Errorf("PerSecond(0.5) = %v, want 2", got)
	}
	if got := PerSecond(0); got != 0 {
		t.Errorf("PerSecond(0) = %v, want 0", got)
	}
	if got := PerSecond(Seconds(math.Inf(1))); got != 0 {
		t.Errorf("PerSecond(Inf) = %v, want 0", got)
	}
	if got := PerSecond(Seconds(math.NaN())); got != 0 {
		t.Errorf("PerSecond(NaN) = %v, want 0", got)
	}
}

func TestEnergy(t *testing.T) {
	if got := Energy(700, 10); got != 7000 {
		t.Errorf("Energy = %v, want 7000", got)
	}
}

func TestStringFormatting(t *testing.T) {
	tests := []struct {
		got, want string
	}{
		{Bytes(80 * GB).String(), "80 GB"},
		{Bytes(1536).String(), "1.536 kB"},
		{BytesPerSec(3352 * GB).String(), "3.352 TB/s"},
		{FLOPSRate(2 * Peta).String(), "2 PFLOP/s"},
		{FLOPs(213.4 * Tera).String(), "213.4 TFLOP"},
		{Seconds(0.0134).String(), "13.4 ms"},
		{Seconds(42e-6).String(), "42 µs"},
		{Seconds(3e-9).String(), "3 ns"},
		{Seconds(0).String(), "0 s"},
		{Seconds(90).String(), "90 s"},
		{Seconds(600).String(), "10 min"},
		{Seconds(7200).String(), "2 h"},
		{Watts(700).String(), "700 W"},
		{Watts(1200).String(), "1.2 kW"},
		{Joules(0.5).String(), "0.5 J"},
		{Dollars(2310.5).String(), "$2,310.50"},
		{Dollars(-45).String(), "-$45.00"},
		{Dollars(1234567.891).String(), "$1,234,567.89"},
		{MM2(814).String(), "814 mm²"},
		{Hertz(1.98 * Giga).String(), "1.98 GHz"},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Errorf("got %q, want %q", tt.got, tt.want)
		}
	}
}

// Property: Over is inverse-linear in rate — doubling the rate halves the time.
func TestOverRateScalingProperty(t *testing.T) {
	f := func(rawBytes uint32, rawRate uint32) bool {
		b := Bytes(float64(rawBytes) + 1)
		r := BytesPerSec(float64(rawRate) + 1)
		t1 := b.Over(r)
		t2 := b.Over(2 * r)
		return math.Abs(float64(t1)-2*float64(t2)) <= 1e-12*math.Abs(float64(t1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Over is linear in the amount of data.
func TestOverSizeScalingProperty(t *testing.T) {
	f := func(rawBytes uint32, rawRate uint32) bool {
		b := Bytes(float64(rawBytes) + 1)
		r := BytesPerSec(float64(rawRate) + 1)
		t1 := b.Over(r)
		t2 := (2 * b).Over(r)
		return math.Abs(2*float64(t1)-float64(t2)) <= 1e-12*math.Abs(float64(t2))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: PerSecond inverts positive finite durations.
func TestPerSecondInverseProperty(t *testing.T) {
	f := func(raw uint32) bool {
		d := Seconds(float64(raw)/1e6 + 1e-9)
		rate := PerSecond(d)
		return math.Abs(rate*float64(d)-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
