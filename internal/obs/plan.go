package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// PlanRung is one step of the capacity planner's doubling ladder for
// one candidate: the pool sizes tried and the SLO verdicts that sizing
// produced.
type PlanRung struct {
	Prefill int  `json:"prefill"`
	Decode  int  `json:"decode"`
	Refine  bool `json:"refine,omitempty"` // binary-refinement probe, not a doubling step

	TTFTAttainment float64 `json:"ttft_attainment"`
	TBTAttainment  float64 `json:"tbt_attainment"`
	Completed      int     `json:"completed"`
	Arrived        int     `json:"arrived"`
	Feasible       bool    `json:"feasible"`
}

// PlanCandidate is the planner's full decision record for one
// (scheduler, fabric, kv, admission) combination: every rung it
// evaluated, the sizing it settled on, and why it won or lost.
type PlanCandidate struct {
	Scheduler string `json:"scheduler"`
	Fabric    string `json:"fabric,omitempty"`
	KV        string `json:"kv,omitempty"`
	Admission string `json:"admission,omitempty"`

	Rungs []PlanRung `json:"rungs,omitempty"`

	Feasible         bool    `json:"feasible"`
	Reason           string  `json:"reason"` // why rejected, or why it won
	PrefillInstances int     `json:"prefill_instances"`
	DecodeInstances  int     `json:"decode_instances"`
	Spares           int     `json:"spares,omitempty"`
	TotalGPUs        int     `json:"total_gpus"`
	Availability     float64 `json:"availability,omitempty"`
	CostPerMTok      float64 `json:"cost_per_mtok,omitempty"`
	Winner           bool    `json:"winner,omitempty"`
}

// PlanTrace collects the decision records for one PlanCapacity call,
// in candidate enumeration order (which sweep.RunN preserves, so the
// trace is deterministic).
type PlanTrace struct {
	Candidates []PlanCandidate `json:"candidates"`
}

// WriteJSON renders the trace as indented JSON. Struct-driven
// encoding/json is deterministic (fixed field order, no maps).
func (pt *PlanTrace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(pt)
}

// Render writes the human-readable decision trace that
// `litegpu-serve -plan -explain` prints: one block per candidate, its
// ladder of sizings with per-rung SLO verdicts, and the verdict line.
func (pt *PlanTrace) Render(w io.Writer) error {
	for i := range pt.Candidates {
		c := &pt.Candidates[i]
		mark := "✗"
		if c.Winner {
			mark = "★"
		} else if c.Feasible {
			mark = "✓"
		}
		if _, err := fmt.Fprintf(w, "%s candidate %s%s\n", mark, c.Scheduler, candidateQualifiers(c)); err != nil {
			return err
		}
		for j := range c.Rungs {
			r := &c.Rungs[j]
			verdict := "miss"
			if r.Feasible {
				verdict = "meets SLO"
			}
			step := "try"
			if r.Refine {
				step = "refine"
			}
			if _, err := fmt.Fprintf(w,
				"    %s %dP+%dD: ttft %.3f tbt %.3f (%d/%d done) — %s\n",
				step, r.Prefill, r.Decode, r.TTFTAttainment, r.TBTAttainment,
				r.Completed, r.Arrived, verdict); err != nil {
				return err
			}
		}
		if c.Feasible {
			// Colocated schedulers size a single instance dimension,
			// reported with DecodeInstances zero.
			shape := fmt.Sprintf("%dP+%dD", c.PrefillInstances, c.DecodeInstances)
			if c.DecodeInstances == 0 {
				shape = fmt.Sprintf("%d colocated", c.PrefillInstances)
			}
			if _, err := fmt.Fprintf(w, "    → %s", shape); err != nil {
				return err
			}
			if c.Spares > 0 {
				if _, err := fmt.Fprintf(w, "+%d spare", c.Spares); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, " = %d GPUs", c.TotalGPUs); err != nil {
				return err
			}
			if c.Availability > 0 {
				if _, err := fmt.Fprintf(w, ", availability %.4f", c.Availability); err != nil {
					return err
				}
			}
			if c.CostPerMTok > 0 {
				if _, err := fmt.Fprintf(w, ", $%.2f/Mtok", c.CostPerMTok); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "    %s\n", c.Reason); err != nil {
			return err
		}
	}
	return nil
}

func candidateQualifiers(c *PlanCandidate) string {
	s := ""
	if c.Fabric != "" {
		s += " fabric=" + c.Fabric
	}
	if c.KV != "" {
		s += " kv=" + c.KV
	}
	if c.Admission != "" {
		s += " admission=" + c.Admission
	}
	return s
}
