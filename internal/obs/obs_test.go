package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// fill drives a recorder through n synthetic request lifecycles plus a
// couple of cluster events, deterministically from the recorder's own
// reservoir stream.
func fill(r *Recorder, n int) {
	for i := 0; i < n; i++ {
		id := int64(i)
		t := float64(i) * 0.25
		r.Request(Arrival, t, 0, -1, id, 128)
		r.Request(Enqueue, t, 0, -1, id, 0)
		r.Request(PrefillStart, t+0.1, 0, int32(i%4), id, 8)
		r.Request(PrefillEnd, t+0.3, 0, int32(i%4), id, 0)
		r.Request(FirstToken, t+0.35, 0, int32(i%4), id, 0.35)
		r.Request(Complete, t+1.5, 0, int32(i%4), id, 1.5)
	}
	r.Cluster(InstanceDown, 10, 0, 2, 1)
	r.Cluster(InstanceUp, 30, 0, 2, 0)
}

func TestReservoirBoundsAndDeterminism(t *testing.T) {
	r := New(Options{Seed: 42, SampleTargets: 64})
	fill(r, 10_000)
	held, seen := r.Sampled()
	if held != 64 {
		t.Fatalf("held %d timelines, want capacity 64", held)
	}
	if seen != 10_000 {
		t.Fatalf("seen %d arrivals, want 10000", seen)
	}
	// Live map must exactly mirror the slots.
	if len(r.live) != 64 {
		t.Fatalf("live map has %d entries, want 64", len(r.live))
	}
	for id, idx := range r.live {
		if r.slots[idx].id != id {
			t.Fatalf("live[%d] -> slot %d which holds id %d", id, idx, r.slots[idx].id)
		}
	}

	// Same seed, same feed: byte-identical exports.
	r2 := New(Options{Seed: 42, SampleTargets: 64})
	fill(r2, 10_000)
	var a, b bytes.Buffer
	if err := r.WriteTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := r2.WriteTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same seed + feed produced different trace bytes")
	}
	if !json.Valid(a.Bytes()) {
		t.Fatal("trace export is not valid JSON")
	}

	// A different seed samples a different subset.
	r3 := New(Options{Seed: 43, SampleTargets: 64})
	fill(r3, 10_000)
	var c bytes.Buffer
	if err := r3.WriteTrace(&c); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("different reservoir seeds produced identical samples")
	}
}

func TestSmallRunKeepsEveryTimeline(t *testing.T) {
	r := New(Options{Seed: 1, SampleTargets: 100})
	fill(r, 40)
	held, seen := r.Sampled()
	if held != 40 || seen != 40 {
		t.Fatalf("held/seen = %d/%d, want 40/40 (no eviction below capacity)", held, seen)
	}
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if got := bytes.Count(buf.Bytes(), []byte(`"complete"`)); got != 40 {
		t.Fatalf("trace shows %d completions, want 40", got)
	}
	// All 40 completions also produce flow arrows.
	if got := bytes.Count(buf.Bytes(), []byte(`"ph":"f"`)); got != 40 {
		t.Fatalf("trace shows %d flow-finish events, want 40", got)
	}
}

func TestAdoptExtendsTimelineAcrossRetry(t *testing.T) {
	r := New(Options{Seed: 5, SampleTargets: 8})
	r.Request(Arrival, 0, 0, -1, 1, 64)
	r.Request(Timeout, 20, 0, -1, 1, 0)
	r.Adopt(1, 2)
	r.Request(Retry, 22, 0, -1, 2, 0)
	r.Request(Complete, 30, 0, 0, 2, 8)

	if _, ok := r.live[1]; ok {
		t.Fatal("old id still tracked after Adopt")
	}
	idx, ok := r.live[2]
	if !ok {
		t.Fatal("new id not tracked after Adopt")
	}
	s := r.slots[idx]
	if s.id != 2 {
		t.Fatalf("slot id = %d, want re-keyed to 2", s.id)
	}
	if len(s.events) != 4 {
		t.Fatalf("timeline has %d events, want 4 (arrival..complete on one slot)", len(s.events))
	}
	// Adopting an untracked id is a no-op.
	r.Adopt(99, 100)
	if _, ok := r.live[100]; ok {
		t.Fatal("Adopt of untracked id created a live entry")
	}
}

func TestAdoptSurvivesEviction(t *testing.T) {
	// After Adopt re-keys a slot, evicting that slot must remove the
	// *new* id from the live map — the stale-alias regression.
	r := New(Options{Seed: 7, SampleTargets: 4})
	for i := int64(0); i < 4; i++ {
		r.Request(Arrival, float64(i), 0, -1, i, 1)
	}
	r.Adopt(2, 1002)
	for i := int64(4); i < 5000; i++ {
		r.Request(Arrival, float64(i), 0, -1, i, 1)
	}
	if len(r.live) != 4 {
		t.Fatalf("live map has %d entries, want 4", len(r.live))
	}
	for id, idx := range r.live {
		if r.slots[idx].id != id {
			t.Fatalf("stale alias: live[%d] -> slot holding id %d", id, r.slots[idx].id)
		}
	}
}

func TestProbeExports(t *testing.T) {
	r := New(Options{Seed: 1, ProbeInterval: 5})
	if r.ProbeInterval() != 5 {
		t.Fatalf("ProbeInterval() = %v, want 5", r.ProbeInterval())
	}
	for i := 0; i < 4; i++ {
		r.Probe(ProbeSample{
			T: float64(i+1) * 5, Pool: 0,
			Queue: 10 - i, Live: 2,
			Arrived: 20 * (i + 1), Completed: 15 * (i + 1),
			Shed: 2 * i, Tokens: 1000 * (i + 1),
			PrefillBusy: float64(i+1) * 4, DecodeBusy: float64(i+1) * 8,
			Events: uint64(100 * (i + 1)),
		})
		r.Probe(ProbeSample{T: float64(i+1) * 5, Pool: 1, Live: 1, Events: uint64(100 * (i + 1))})
	}

	var csv bytes.Buffer
	if err := r.WriteProbesCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(csv.String(), "\n"), "\n")
	if len(lines) != 1+8 {
		t.Fatalf("CSV has %d lines, want header + 8 rows", len(lines))
	}
	if lines[0] != strings.TrimSuffix(probeHeader, "\n") {
		t.Fatalf("CSV header mismatch:\n%s", lines[0])
	}
	cols := strings.Count(lines[0], ",") + 1
	for i, ln := range lines[1:] {
		if got := strings.Count(ln, ",") + 1; got != cols {
			t.Fatalf("row %d has %d columns, want %d: %s", i, got, cols, ln)
		}
	}
	// First pool-0 window: 1000 tokens over 5s (prev implicit zero at t=0).
	if !strings.HasPrefix(lines[1], "5,0,") || !strings.Contains(lines[1], ",200,") {
		t.Fatalf("first pool-0 row lacks goodput 200 tok/s: %s", lines[1])
	}
	// Second pool-0 window is also a 1000-token delta.
	if !strings.Contains(lines[3], ",200,") {
		t.Fatalf("second pool-0 row lacks windowed goodput 200 tok/s: %s", lines[3])
	}

	var js bytes.Buffer
	if err := r.WriteProbesJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(js.Bytes()) {
		t.Fatal("probe JSON export is not valid JSON")
	}
	var rows []map[string]any
	if err := json.Unmarshal(js.Bytes(), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("JSON export has %d rows, want 8", len(rows))
	}
	if rows[2]["goodput"].(float64) != 200 {
		t.Fatalf("JSON row 2 goodput = %v, want windowed 200", rows[2]["goodput"])
	}
}

func TestPlanTraceRender(t *testing.T) {
	pt := PlanTrace{Candidates: []PlanCandidate{
		{
			Scheduler: "static", Fabric: "nvlink",
			Rungs: []PlanRung{
				{Prefill: 1, Decode: 1, TTFTAttainment: 0.41, TBTAttainment: 0.90, Arrived: 100, Completed: 55},
				{Prefill: 2, Decode: 2, TTFTAttainment: 0.97, TBTAttainment: 0.99, Arrived: 100, Completed: 98, Feasible: true},
			},
			Feasible: true, Winner: true,
			PrefillInstances: 2, DecodeInstances: 2, TotalGPUs: 4,
			CostPerMTok: 1.25, Reason: "cheapest feasible candidate",
		},
		{
			Scheduler: "colocated",
			Feasible:  false, Reason: "no sizing within budget met the TTFT SLO",
		},
	}}

	var human bytes.Buffer
	if err := pt.Render(&human); err != nil {
		t.Fatal(err)
	}
	out := human.String()
	for _, want := range []string{
		"★ candidate static fabric=nvlink",
		"try 1P+1D", "try 2P+2D", "meets SLO",
		"= 4 GPUs", "$1.25/Mtok", "cheapest feasible candidate",
		"✗ candidate colocated", "no sizing within budget",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered trace missing %q:\n%s", want, out)
		}
	}

	var js bytes.Buffer
	if err := pt.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(js.Bytes()) {
		t.Fatal("plan trace JSON is invalid")
	}
	var back PlanTrace
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Candidates) != 2 || !back.Candidates[0].Winner || back.Candidates[1].Feasible {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
}

func TestPoolNames(t *testing.T) {
	r := New(Options{})
	if got := r.poolName(0); got != "pool" {
		t.Fatalf("unnamed pool renders %q", got)
	}
	r.SetPoolName(2, "decode-eu")
	if got := r.poolName(2); got != "decode-eu" {
		t.Fatalf("named pool renders %q", got)
	}
	if got := r.poolName(1); got != "pool" {
		t.Fatalf("gap pool renders %q", got)
	}
}
