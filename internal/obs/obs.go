// Package obs is the simulator's deterministic observability layer:
// per-request span timelines (reservoir-sampled, exportable as Chrome
// trace_event JSON that Perfetto loads directly), fixed-interval
// time-series probes (exportable as CSV or JSON), and capacity-planner
// decision traces.
//
// The contract that lets observers ride inside the byte-identity
// corpus is strict read-onlyness: a Recorder never draws from a
// simulation RNG stream (its reservoir runs on its own
// mathx.DeriveSeed-derived stream), never mutates simulation state,
// and is consulted only behind nil guards — a disabled observer is a
// nil pointer and costs the hot path nothing. Same seed and config
// therefore export byte-identical timelines and probe series, with or
// without other observers attached, at any point of the run.
package obs

import "litegpu/internal/mathx"

// Kind enumerates timeline event kinds — the request lifecycle from
// arrival to completion, plus the instance-level events (failures,
// autoscaling) that explain why a request's timeline stalls.
type Kind uint8

const (
	// Request-scoped kinds (carried by sampled request timelines).
	Arrival      Kind = iota // request reached the router; Val = prompt tokens
	Shed                     // admission gate rejected it; Val = class
	Enqueue                  // joined its pool's scheduler queue
	PrefillStart             // prefill pass (or chunk run) began; Val = batch size
	PrefillEnd               // prompt fully prefilled
	Chunk                    // one chunked-prefill chunk completed; Val = prompt tokens left
	KVAlloc                  // KV blocks claimed at admission; Val = blocks in use (instance)
	KVGrow                   // sequence grew into a fresh KV block; Val = blocks in use (instance)
	KVPreempt                // evicted from the batch on KV exhaustion; Val = tokens held
	KVSwapOut                // preempted KV began its swap round-trip; Val = bytes
	KVRelease                // KV blocks returned; Val = blocks in use (instance)
	XferStart                // fabric transfer launched; Val = bytes
	XferDeliver              // fabric transfer delivered; Val = seconds in flight
	Timeout                  // client deadline expired; Val = attempt index
	Backoff                  // retry booked; Val = backoff seconds
	Retry                    // resubmission entered the frontend; Val = new request id
	Abandon                  // client gave up for good
	FirstToken               // first output token emitted; Val = TTFT seconds
	Complete                 // generation finished; Val = E2E seconds
	Requeue                  // in-flight work requeued off a dead instance
	Drop                     // dropped (horizon, failure policy, or oversize)

	// Instance-scoped kinds (always recorded; bounded by failure and
	// autoscale event counts, not the trace length).
	InstanceDown // instance failed; Val = GPUs lost
	InstanceUp   // spare takeover completed
	ScaleUp      // autoscaler unparked an instance
	ScaleDown    // autoscaler parked an instance
)

// kindNames renders Kind for exports; indexes match the constants.
var kindNames = [...]string{
	"arrival", "shed", "enqueue", "prefill_start", "prefill_end", "chunk",
	"kv_alloc", "kv_grow", "kv_preempt", "kv_swap_out", "kv_release",
	"xfer_start", "xfer_deliver", "timeout", "backoff", "retry",
	"abandon", "first_token", "complete", "requeue", "drop",
	"instance_down", "instance_up", "scale_up", "scale_down",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one timeline entry. Pool and Inst locate it (Inst -1 means
// the pool frontend/queue, not a specific instance); Req is the
// submission's request id (retries carry fresh ids); Val is the
// kind-specific payload documented on the Kind constants.
type Event struct {
	T    float64
	Kind Kind
	Pool int32
	Inst int32
	Req  int64
	Val  float64
}

// slot is one reservoir entry: a sampled request's full timeline. The
// events buffer is retained across evictions, so a long run cycles
// through a fixed arena.
type slot struct {
	id      int64
	arrival float64
	events  []Event
}

// DefaultSampleTargets bounds the reservoir: at most this many request
// timelines are retained, uniformly sampled over all arrivals, so a
// 1M-request run holds a bounded working set.
const DefaultSampleTargets = 4096

// Options configures a Recorder.
type Options struct {
	// Seed seeds the reservoir's private RNG stream (expanded through
	// mathx.DeriveSeed, so it never collides with simulation streams).
	Seed uint64
	// SampleTargets is the timeline reservoir capacity; 0 means
	// DefaultSampleTargets.
	SampleTargets int
	// ProbeInterval is the time-series sampling period in simulated
	// seconds; 0 disables probes.
	ProbeInterval float64
	// Heartbeat, when non-nil, is invoked on every request completion
	// with the simulated time and the exact completed-request count so
	// far (counted before reservoir sampling, so it is the run's true
	// total). The callback must be read-only with respect to the
	// simulation; litegpu-serve's -progress flag uses it to print a
	// wall-clock-throttled heartbeat to stderr.
	Heartbeat func(now float64, completed int64)
}

// Recorder accumulates one run's telemetry. It is not safe for
// concurrent use: the serving simulator runs it on the sequential
// cluster path (attaching an observer disables sharding, which is
// byte-identical anyway).
type Recorder struct {
	k    int
	rng  *mathx.RNG
	seen int

	slots   []slot
	live    map[int64]int32 // request id → slot, for tracked requests
	cluster []Event         // instance-scoped events

	probeInterval float64
	probes        []ProbeSample

	heartbeat func(now float64, completed int64)
	completed int64

	poolNames []string
}

// New builds a Recorder. The zero Options value is valid: default
// reservoir size, probes off, seed 0.
func New(o Options) *Recorder {
	k := o.SampleTargets
	if k <= 0 {
		k = DefaultSampleTargets
	}
	return &Recorder{
		k:             k,
		rng:           mathx.NewRNG(mathx.DeriveSeed(o.Seed, 0x0b5e)),
		live:          make(map[int64]int32),
		probeInterval: o.ProbeInterval,
		heartbeat:     o.Heartbeat,
		poolNames:     nil,
	}
}

// SetPoolName records a pool's display name for exports. Pools without
// a recorded name render as "pool <i>".
func (r *Recorder) SetPoolName(pool int, name string) {
	for len(r.poolNames) <= pool {
		r.poolNames = append(r.poolNames, "")
	}
	r.poolNames[pool] = name
}

func (r *Recorder) poolName(pool int32) string {
	if int(pool) < len(r.poolNames) && r.poolNames[pool] != "" {
		return r.poolNames[pool]
	}
	return "pool"
}

// ProbeInterval reports the configured probe period (0 = probes off).
func (r *Recorder) ProbeInterval() float64 { return r.probeInterval }

// Request records one request-scoped event. An Arrival runs the
// reservoir admission decision; every other kind is recorded only when
// the request is currently tracked. Untracked requests cost one map
// lookup. The method allocates only amortized slab growth, never per
// event at steady state.
func (r *Recorder) Request(kind Kind, t float64, pool, inst int32, req int64, val float64) {
	var idx int32
	if kind == Arrival {
		idx = r.admit(req, t)
	} else if kind == Complete {
		r.completed++
		if r.heartbeat != nil {
			r.heartbeat(t, r.completed)
		}
		var ok bool
		idx, ok = r.live[req]
		if !ok {
			return
		}
	} else {
		var ok bool
		idx, ok = r.live[req]
		if !ok {
			return
		}
	}
	if idx < 0 {
		return
	}
	s := &r.slots[idx]
	s.events = append(s.events, Event{T: t, Kind: kind, Pool: pool, Inst: inst, Req: req, Val: val})
}

// Adopt re-keys a tracked request's timeline to a retry submission's
// fresh id, so the retries of a sampled request extend the same span
// instead of re-entering the reservoir. Untracked requests are a
// no-op.
func (r *Recorder) Adopt(oldID, newID int64) {
	idx, ok := r.live[oldID]
	if !ok {
		return
	}
	delete(r.live, oldID)
	r.slots[idx].id = newID
	r.live[newID] = idx
}

// Cluster records one instance-scoped event (failure, recovery,
// autoscale). These are never sampled away: their count is bounded by
// the failure/autoscale processes, not the trace.
func (r *Recorder) Cluster(kind Kind, t float64, pool, inst int32, val float64) {
	r.cluster = append(r.cluster, Event{T: t, Kind: kind, Pool: pool, Inst: inst, Req: -1, Val: val})
}

// admit runs the classic reservoir decision for a new arrival id:
// the first k arrivals fill the reservoir; arrival i>k replaces a
// uniformly chosen victim with probability k/i. Returns the slot
// index, or -1 when the arrival is not sampled.
func (r *Recorder) admit(id int64, t float64) int32 {
	i := r.seen
	r.seen++
	if len(r.slots) < r.k {
		r.slots = append(r.slots, slot{id: id, arrival: t})
		idx := int32(len(r.slots) - 1)
		r.live[id] = idx
		return idx
	}
	j := r.rng.Intn(i + 1)
	if j >= r.k {
		return -1
	}
	v := &r.slots[j]
	delete(r.live, v.id)
	v.id = id
	v.arrival = t
	v.events = v.events[:0]
	r.live[id] = int32(j)
	return int32(j)
}

// Sampled reports how many request timelines the reservoir currently
// holds and how many arrivals it has considered.
func (r *Recorder) Sampled() (held, seen int) { return len(r.slots), r.seen }
