package obs

import (
	"io"
	"sort"
	"strconv"

	"litegpu/internal/mathx"
)

// WriteTrace exports the sampled request timelines and the cluster
// events as Chrome trace_event JSON — the format Perfetto (and
// chrome://tracing) loads directly. The mapping:
//
//   - every pool is a process (pid = pool index + 1), named by
//     SetPoolName;
//   - tid 0 is the pool's frontend (router, admission, queue);
//     instance i is thread tid i+1;
//   - every sampled request is an "X" duration span on the frontend
//     thread from arrival to its last event, plus a flow arrow
//     (ph "s"/"f") from arrival to completion;
//   - prefill passes are "X" spans on the instance that ran them;
//   - every other lifecycle event is an instant ("i") on its
//     instance's thread, named by its Kind.
//
// Output is byte-deterministic: slots render in (arrival, id) order,
// floats render via strconv shortest-round-trip, and no map is ranged.
func (r *Recorder) WriteTrace(w io.Writer) error {
	tw := &traceWriter{}
	tw.buf = append(tw.buf, `{"displayTimeUnit":"ms","traceEvents":[`...)

	order := make([]int, len(r.slots))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := &r.slots[order[a]], &r.slots[order[b]]
		if mathx.ExactNe(sa.arrival, sb.arrival) {
			return sa.arrival < sb.arrival
		}
		return sa.id < sb.id
	})

	// Process/thread metadata for every (pool, inst) the render will
	// touch, deduplicated in first-encounter order.
	seen := make(map[int64]bool)
	var metaPools []int32
	var metaThreads []int64
	note := func(pool, inst int32) {
		pk := int64(pool) << 32
		if !seen[pk] {
			seen[pk] = true
			metaPools = append(metaPools, pool)
		}
		tk := pk | int64(uint32(inst+1)) | 1<<62
		if !seen[tk] {
			seen[tk] = true
			metaThreads = append(metaThreads, int64(pool)<<32|int64(uint32(inst+1)))
		}
	}
	for _, si := range order {
		for _, e := range r.slots[si].events {
			note(e.Pool, -1)
			note(e.Pool, e.Inst)
		}
	}
	for _, e := range r.cluster {
		note(e.Pool, e.Inst)
	}
	for _, pool := range metaPools {
		tw.meta("process_name", int(pool)+1, -1, r.poolName(pool))
	}
	for _, th := range metaThreads {
		pool, tid := int32(th>>32), int(uint32(th))
		name := "frontend"
		if tid > 0 {
			name = "instance " + strconv.Itoa(tid-1)
		}
		tw.meta("thread_name", int(pool)+1, tid, name)
	}

	for _, si := range order {
		s := &r.slots[si]
		if len(s.events) == 0 {
			continue
		}
		first, last := s.events[0], s.events[len(s.events)-1]
		reqName := "req " + strconv.FormatInt(s.id, 10)
		// Request lifetime span on the frontend thread.
		tw.span(reqName, "request", int(first.Pool)+1, 0, s.arrival, last.T-s.arrival, s.id)
		// Flow arrow arrival → completion.
		var done *Event
		for i := range s.events {
			if s.events[i].Kind == Complete {
				done = &s.events[i]
			}
		}
		if done != nil {
			tw.flow("s", reqName, int(first.Pool)+1, 0, s.arrival, s.id)
			tw.flow("f", reqName, int(done.Pool)+1, int(done.Inst)+1, done.T, s.id)
		}
		// Prefill spans: each PrefillStart pairs with the next
		// PrefillEnd or Chunk on the same instance.
		for i := range s.events {
			e := &s.events[i]
			if e.Kind != PrefillStart {
				continue
			}
			for j := i + 1; j < len(s.events); j++ {
				f := &s.events[j]
				if (f.Kind == PrefillEnd || f.Kind == Chunk) && f.Inst == e.Inst {
					tw.span("prefill", "phase", int(e.Pool)+1, int(e.Inst)+1, e.T, f.T-e.T, s.id)
					break
				}
			}
		}
		// Every event as an instant on its thread.
		for i := range s.events {
			e := &s.events[i]
			tw.instant(e.Kind.String(), "lifecycle", int(e.Pool)+1, int(e.Inst)+1, e.T, e.Req, e.Val)
		}
	}
	for i := range r.cluster {
		e := &r.cluster[i]
		tw.instant(e.Kind.String(), "cluster", int(e.Pool)+1, int(e.Inst)+1, e.T, e.Req, e.Val)
	}

	tw.buf = append(tw.buf, "]}\n"...)
	_, err := w.Write(tw.buf)
	return err
}

// traceWriter hand-builds trace_event JSON: field order is fixed and
// floats render shortest-round-trip, so output is byte-deterministic.
type traceWriter struct {
	buf   []byte
	first bool
}

func (tw *traceWriter) sep() {
	if tw.first {
		tw.buf = append(tw.buf, ',')
	}
	tw.first = true
}

func (tw *traceWriter) ts(t float64) {
	// trace_event timestamps are microseconds.
	tw.buf = strconv.AppendFloat(tw.buf, t*1e6, 'g', -1, 64)
}

func (tw *traceWriter) meta(kind string, pid, tid int, name string) {
	tw.sep()
	tw.buf = append(tw.buf, `{"ph":"M","name":"`...)
	tw.buf = append(tw.buf, kind...)
	tw.buf = append(tw.buf, `","pid":`...)
	tw.buf = strconv.AppendInt(tw.buf, int64(pid), 10)
	if tid >= 0 {
		tw.buf = append(tw.buf, `,"tid":`...)
		tw.buf = strconv.AppendInt(tw.buf, int64(tid), 10)
	}
	tw.buf = append(tw.buf, `,"args":{"name":`...)
	tw.buf = strconv.AppendQuote(tw.buf, name)
	tw.buf = append(tw.buf, `}}`...)
}

func (tw *traceWriter) span(name, cat string, pid, tid int, t, dur float64, req int64) {
	tw.sep()
	tw.buf = append(tw.buf, `{"ph":"X","name":`...)
	tw.buf = strconv.AppendQuote(tw.buf, name)
	tw.buf = append(tw.buf, `,"cat":"`...)
	tw.buf = append(tw.buf, cat...)
	tw.buf = append(tw.buf, `","pid":`...)
	tw.buf = strconv.AppendInt(tw.buf, int64(pid), 10)
	tw.buf = append(tw.buf, `,"tid":`...)
	tw.buf = strconv.AppendInt(tw.buf, int64(tid), 10)
	tw.buf = append(tw.buf, `,"ts":`...)
	tw.ts(t)
	tw.buf = append(tw.buf, `,"dur":`...)
	tw.ts(dur)
	tw.buf = append(tw.buf, `,"args":{"req":`...)
	tw.buf = strconv.AppendInt(tw.buf, req, 10)
	tw.buf = append(tw.buf, `}}`...)
}

func (tw *traceWriter) flow(ph, name string, pid, tid int, t float64, id int64) {
	tw.sep()
	tw.buf = append(tw.buf, `{"ph":"`...)
	tw.buf = append(tw.buf, ph...)
	tw.buf = append(tw.buf, `","name":`...)
	tw.buf = strconv.AppendQuote(tw.buf, name)
	tw.buf = append(tw.buf, `,"cat":"flow","pid":`...)
	tw.buf = strconv.AppendInt(tw.buf, int64(pid), 10)
	tw.buf = append(tw.buf, `,"tid":`...)
	tw.buf = strconv.AppendInt(tw.buf, int64(tid), 10)
	tw.buf = append(tw.buf, `,"ts":`...)
	tw.ts(t)
	tw.buf = append(tw.buf, `,"id":`...)
	tw.buf = strconv.AppendInt(tw.buf, id, 10)
	if ph == "f" {
		tw.buf = append(tw.buf, `,"bp":"e"`...)
	}
	tw.buf = append(tw.buf, `}`...)
}

func (tw *traceWriter) instant(name, cat string, pid, tid int, t float64, req int64, val float64) {
	tw.sep()
	tw.buf = append(tw.buf, `{"ph":"i","s":"t","name":`...)
	tw.buf = strconv.AppendQuote(tw.buf, name)
	tw.buf = append(tw.buf, `,"cat":"`...)
	tw.buf = append(tw.buf, cat...)
	tw.buf = append(tw.buf, `","pid":`...)
	tw.buf = strconv.AppendInt(tw.buf, int64(pid), 10)
	tw.buf = append(tw.buf, `,"tid":`...)
	tw.buf = strconv.AppendInt(tw.buf, int64(tid), 10)
	tw.buf = append(tw.buf, `,"ts":`...)
	tw.ts(t)
	tw.buf = append(tw.buf, `,"args":{"req":`...)
	tw.buf = strconv.AppendInt(tw.buf, req, 10)
	tw.buf = append(tw.buf, `,"v":`...)
	tw.buf = strconv.AppendFloat(tw.buf, val, 'g', -1, 64)
	tw.buf = append(tw.buf, `}}`...)
}
