package obs

import (
	"io"
	"strconv"
)

// ProbeSample is one pool's state at one probe tick. Counter fields
// (Arrived through Tokens, and the busy integrals) are cumulative
// since t=0; the exporters difference consecutive samples of the same
// pool into per-window rates. Gauges (Queue, Live, Parked, KVBlocks,
// NetInFlight) are instantaneous.
type ProbeSample struct {
	T    float64
	Pool int32

	// Gauges.
	Queue       int // outstanding work in the pool's scheduler
	Live        int // up, unparked instances
	Parked      int // autoscaler-parked instances
	KVBlocks    int // KV blocks in use across the pool's allocators
	NetInFlight int // fabric transfers in flight (cluster-wide)

	// Cumulative counters.
	PrefillBusy float64 // prefill busy seconds
	DecodeBusy  float64 // decode busy seconds
	Arrived     int
	Completed   int
	Shed        int
	Retries     int
	Abandoned   int
	Timeouts    int
	Tokens      int    // output tokens generated
	Events      uint64 // engine events fired (cluster-wide)
}

// Probe appends one sample row. The serving simulator calls it once
// per pool per probe tick.
func (r *Recorder) Probe(s ProbeSample) { r.probes = append(r.probes, s) }

// Probes returns the recorded sample rows in capture order.
func (r *Recorder) Probes() []ProbeSample { return r.probes }

// probeHeader is the CSV column set. Windowed columns (suffix _w and
// the rates) are differences between consecutive samples of the same
// pool: goodput is tokens/second over the window, shed_rate and
// retry_rate are events/second, busy columns are mean busy instances.
const probeHeader = "time,pool,queue,live,parked,kv_blocks,net_inflight," +
	"prefill_busy,decode_busy,arrived,completed,shed,retries,abandoned,timeouts," +
	"completed_w,shed_w,goodput,shed_rate,retry_rate,events\n"

// WriteProbesCSV exports the probe series as CSV, one row per (tick,
// pool), in capture order. Output is byte-deterministic.
func (r *Recorder) WriteProbesCSV(w io.Writer) error {
	buf := make([]byte, 0, 64+len(r.probes)*96)
	buf = append(buf, probeHeader...)
	last := make(map[int32]ProbeSample, 8)
	for _, s := range r.probes {
		prev, ok := last[s.Pool]
		if !ok {
			prev = ProbeSample{Pool: s.Pool}
		}
		last[s.Pool] = s
		dt := s.T - prev.T
		if dt <= 0 {
			dt = 1
		}
		buf = strconv.AppendFloat(buf, s.T, 'g', -1, 64)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(s.Pool), 10)
		for _, v := range [...]int{s.Queue, s.Live, s.Parked, s.KVBlocks, s.NetInFlight} {
			buf = append(buf, ',')
			buf = strconv.AppendInt(buf, int64(v), 10)
		}
		for _, v := range [...]float64{(s.PrefillBusy - prev.PrefillBusy) / dt, (s.DecodeBusy - prev.DecodeBusy) / dt} {
			buf = append(buf, ',')
			buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
		}
		for _, v := range [...]int{s.Arrived, s.Completed, s.Shed, s.Retries, s.Abandoned, s.Timeouts} {
			buf = append(buf, ',')
			buf = strconv.AppendInt(buf, int64(v), 10)
		}
		for _, v := range [...]int{s.Completed - prev.Completed, s.Shed - prev.Shed} {
			buf = append(buf, ',')
			buf = strconv.AppendInt(buf, int64(v), 10)
		}
		for _, v := range [...]float64{
			float64(s.Tokens-prev.Tokens) / dt,
			float64(s.Shed-prev.Shed) / dt,
			float64(s.Retries-prev.Retries) / dt,
		} {
			buf = append(buf, ',')
			buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
		}
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, s.Events, 10)
		buf = append(buf, '\n')
	}
	_, err := w.Write(buf)
	return err
}

// WriteProbesJSON exports the probe series as a JSON array of row
// objects mirroring the CSV columns. Output is byte-deterministic.
func (r *Recorder) WriteProbesJSON(w io.Writer) error {
	buf := make([]byte, 0, 64+len(r.probes)*192)
	buf = append(buf, '[')
	last := make(map[int32]ProbeSample, 8)
	for i, s := range r.probes {
		prev, ok := last[s.Pool]
		if !ok {
			prev = ProbeSample{Pool: s.Pool}
		}
		last[s.Pool] = s
		dt := s.T - prev.T
		if dt <= 0 {
			dt = 1
		}
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, "\n{\"time\":"...)
		buf = strconv.AppendFloat(buf, s.T, 'g', -1, 64)
		buf = appendKVInt(buf, "pool", int64(s.Pool))
		buf = appendKVInt(buf, "queue", int64(s.Queue))
		buf = appendKVInt(buf, "live", int64(s.Live))
		buf = appendKVInt(buf, "parked", int64(s.Parked))
		buf = appendKVInt(buf, "kv_blocks", int64(s.KVBlocks))
		buf = appendKVInt(buf, "net_inflight", int64(s.NetInFlight))
		buf = appendKVFloat(buf, "prefill_busy", (s.PrefillBusy-prev.PrefillBusy)/dt)
		buf = appendKVFloat(buf, "decode_busy", (s.DecodeBusy-prev.DecodeBusy)/dt)
		buf = appendKVInt(buf, "arrived", int64(s.Arrived))
		buf = appendKVInt(buf, "completed", int64(s.Completed))
		buf = appendKVInt(buf, "shed", int64(s.Shed))
		buf = appendKVInt(buf, "retries", int64(s.Retries))
		buf = appendKVInt(buf, "abandoned", int64(s.Abandoned))
		buf = appendKVInt(buf, "timeouts", int64(s.Timeouts))
		buf = appendKVFloat(buf, "goodput", float64(s.Tokens-prev.Tokens)/dt)
		buf = appendKVFloat(buf, "shed_rate", float64(s.Shed-prev.Shed)/dt)
		buf = appendKVFloat(buf, "retry_rate", float64(s.Retries-prev.Retries)/dt)
		buf = appendKVInt(buf, "events", int64(s.Events))
		buf = append(buf, '}')
	}
	buf = append(buf, "\n]\n"...)
	_, err := w.Write(buf)
	return err
}

func appendKVInt(buf []byte, k string, v int64) []byte {
	buf = append(buf, ',', '"')
	buf = append(buf, k...)
	buf = append(buf, '"', ':')
	return strconv.AppendInt(buf, v, 10)
}

func appendKVFloat(buf []byte, k string, v float64) []byte {
	buf = append(buf, ',', '"')
	buf = append(buf, k...)
	buf = append(buf, '"', ':')
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}
