package die

import (
	"fmt"
	"math"

	"litegpu/internal/units"
)

// CostModel aggregates the components of per-package manufacturing cost.
// Defaults follow public estimates for CoWoS-class advanced packaging:
// packaging cost grows superlinearly with interposer area because large
// interposers are themselves yield-limited, which is precisely the
// scaling trap the paper argues Lite-GPUs escape.
type CostModel struct {
	Wafer Wafer
	Yield YieldModel

	// PackagingBase is the fixed packaging cost per package.
	PackagingBase units.Dollars

	// PackagingPerMM2 is the packaging cost per mm² of packaged silicon.
	PackagingPerMM2 units.Dollars

	// PackagingExponent makes packaging cost superlinear in area:
	// cost = Base + PerMM2 · area^Exponent / 814^(Exponent−1), normalized
	// so an H100-sized package pays exactly PerMM2·area. Exponent 1 is
	// linear; 1.4 is the default reflecting interposer yield loss.
	PackagingExponent float64

	// TestPerDie is the per-die test and sort cost.
	TestPerDie units.Dollars
}

// DefaultCostModel returns the calibration used by the studies: a 300 mm
// N4-class wafer, Poisson yield at the default defect density, and
// packaging parameters that put an H100-class package near its estimated
// ~$300 packaging cost.
func DefaultCostModel() CostModel {
	return CostModel{
		Wafer:             Wafer300N4(),
		Yield:             Poisson{D0: DefaultDefectDensity},
		PackagingBase:     30,
		PackagingPerMM2:   0.35,
		PackagingExponent: 1.4,
		TestPerDie:        20,
	}
}

// Breakdown itemizes the manufacturing cost of one good packaged die.
type Breakdown struct {
	Area         units.MM2
	DiesPerWafer int
	Yield        float64
	GoodDies     float64 // expected good dies per wafer
	SiliconCost  units.Dollars
	Packaging    units.Dollars
	Test         units.Dollars
	Total        units.Dollars
}

// GoodDieCost returns the cost breakdown for one good packaged die of the
// given area.
func (c CostModel) GoodDieCost(area units.MM2) Breakdown {
	b := Breakdown{Area: area}
	b.DiesPerWafer = c.Wafer.DiesPerWafer(area)
	b.Yield = c.Yield.Yield(area)
	b.GoodDies = float64(b.DiesPerWafer) * b.Yield
	if b.GoodDies > 0 {
		b.SiliconCost = units.Dollars(float64(c.Wafer.Cost) / b.GoodDies)
	} else {
		b.SiliconCost = units.Dollars(math.Inf(1))
	}
	exp := c.PackagingExponent
	if exp <= 0 {
		exp = 1
	}
	// Normalize so that an 814 mm² package costs PerMM2·814 regardless of
	// exponent; smaller packages then cost less than linearly predicted.
	const refArea = 814.0
	norm := math.Pow(refArea, exp-1)
	b.Packaging = c.PackagingBase +
		units.Dollars(float64(c.PackagingPerMM2)*math.Pow(float64(area), exp)/norm)
	b.Test = c.TestPerDie
	b.Total = b.SiliconCost + b.Packaging + b.Test
	return b
}

// EquivalentComputeCost returns the cost of enough dies of the given area
// to match the total silicon area of one reference die: it buys
// ceil(refArea/area) small dies. The paper's "almost 50% reduction in
// manufacturing cost" compares four quarter-dies against one H100-class
// die this way.
func (c CostModel) EquivalentComputeCost(refArea, area units.MM2) units.Dollars {
	if area <= 0 {
		return units.Dollars(math.Inf(1))
	}
	n := math.Ceil(float64(refArea) / float64(area))
	return units.Dollars(n * float64(c.GoodDieCost(area).Total))
}

// CostReduction returns the fractional full-package manufacturing-cost
// saving (silicon + packaging + test) of building refArea worth of compute
// out of dies shrunk by frac.
func (c CostModel) CostReduction(refArea units.MM2, frac float64) float64 {
	big := float64(c.GoodDieCost(refArea).Total)
	small := float64(c.EquivalentComputeCost(refArea, units.MM2(float64(refArea)*frac)))
	if big <= 0 || math.IsInf(big, 0) {
		return 0
	}
	return 1 - small/big
}

// SiliconCostReduction returns the fractional saving in silicon cost per
// good die alone — the quantity behind the paper's "almost 50% reduction
// in manufacturing cost" example, which cites a die-yield calculator and
// therefore reflects wafer cost divided by good dies, before packaging.
// SiliconCostReduction(814, 0.25) ≈ 0.5 at the default defect density.
func (c CostModel) SiliconCostReduction(refArea units.MM2, frac float64) float64 {
	big := float64(c.GoodDieCost(refArea).SiliconCost)
	area := units.MM2(float64(refArea) * frac)
	if area <= 0 {
		return 0
	}
	n := math.Ceil(1 / frac)
	small := n * float64(c.GoodDieCost(area).SiliconCost)
	if big <= 0 || math.IsInf(big, 0) {
		return 0
	}
	return 1 - small/big
}

// String renders the breakdown as a single line.
func (b Breakdown) String() string {
	return fmt.Sprintf("%s die: %d/wafer, yield %.1f%%, silicon %s + pkg %s + test %s = %s",
		b.Area, b.DiesPerWafer, b.Yield*100, b.SiliconCost, b.Packaging, b.Test, b.Total)
}
