package die

import (
	"math"

	"litegpu/internal/units"
)

// Shoreline models the paper's perimeter argument: a die's off-chip
// bandwidth is limited by its perimeter ("shoreline"), and area grows
// quadratically while perimeter grows linearly with side length. Splitting
// one die into k equal dies multiplies total perimeter by √k at constant
// total area — quartering doubles it, which is the 2× bandwidth-to-compute
// headroom behind the Lite+MemBW and Lite+NetBW configurations.

// Perimeter returns the perimeter of a square die of the given area.
func Perimeter(area units.MM2) units.MM {
	if area <= 0 {
		return 0
	}
	return units.MM(4 * math.Sqrt(float64(area)))
}

// TotalPerimeter returns the combined perimeter of n equal square dies
// that together cover totalArea.
func TotalPerimeter(totalArea units.MM2, n int) units.MM {
	if n <= 0 || totalArea <= 0 {
		return 0
	}
	per := Perimeter(units.MM2(float64(totalArea) / float64(n)))
	return units.MM(float64(per) * float64(n))
}

// ShorelineGain returns the total-perimeter multiplier from splitting one
// die into n equal dies: √n exactly for square dies.
func ShorelineGain(n int) float64 {
	if n <= 0 {
		return 0
	}
	return math.Sqrt(float64(n))
}

// BandwidthDensity is achievable off-die bandwidth per millimetre of
// shoreline. The H100 calibration point: 3352 GB/s HBM + 450 GB/s NVLink
// over a 114 mm perimeter ≈ 33 GB/s/mm of realized density.
type BandwidthDensity units.BytesPerSec // per mm

// H100BandwidthDensity returns the realized H100 shoreline density.
func H100BandwidthDensity() BandwidthDensity {
	per := Perimeter(814)
	total := (3352.0 + 450.0) * units.GB
	return BandwidthDensity(total / float64(per))
}

// MaxBandwidth returns the total off-die bandwidth a die of the given
// area supports at density d.
func MaxBandwidth(area units.MM2, d BandwidthDensity) units.BytesPerSec {
	return units.BytesPerSec(float64(Perimeter(area)) * float64(d))
}

// BandwidthToComputeGain returns the factor by which splitting a die into
// n parts raises the cluster-level bandwidth-to-compute ratio, assuming
// compute scales with area and bandwidth with shoreline. It equals
// ShorelineGain(n) because total compute is unchanged.
func BandwidthToComputeGain(n int) float64 { return ShorelineGain(n) }
