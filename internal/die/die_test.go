package die

import (
	"math"
	"testing"
	"testing/quick"

	"litegpu/internal/units"
)

const h100Area units.MM2 = 814

func TestDiesPerWafer(t *testing.T) {
	w := Wafer300N4()
	// H100-class dies: public teardowns put ~60–65 candidates per wafer.
	n := w.DiesPerWafer(h100Area)
	if n < 55 || n > 70 {
		t.Errorf("DiesPerWafer(814) = %d, want ≈60–65", n)
	}
	// Quarter dies pack better than 4× due to edge effects.
	q := w.DiesPerWafer(h100Area / 4)
	if q <= 4*n {
		t.Errorf("quarter dies per wafer = %d, want > 4×%d", q, n)
	}
}

func TestDiesPerWaferEdgeCases(t *testing.T) {
	w := Wafer300N4()
	if n := w.DiesPerWafer(0); n != 0 {
		t.Errorf("DiesPerWafer(0) = %d, want 0", n)
	}
	if n := w.DiesPerWafer(-5); n != 0 {
		t.Errorf("DiesPerWafer(-5) = %d, want 0", n)
	}
	// A die larger than the wafer yields zero.
	if n := w.DiesPerWafer(1e6); n != 0 {
		t.Errorf("DiesPerWafer(huge) = %d, want 0", n)
	}
}

func TestUsableRadius(t *testing.T) {
	w := Wafer300N4()
	if r := w.UsableRadius(); r != 147 {
		t.Errorf("UsableRadius = %v, want 147", r)
	}
	bad := Wafer{Diameter: 10, EdgeExclusion: 10}
	if r := bad.UsableRadius(); r != 0 {
		t.Errorf("UsableRadius with over-large exclusion = %v, want 0", r)
	}
}

func TestPoissonYield(t *testing.T) {
	m := Poisson{D0: DefaultDefectDensity}
	// 814 mm² = 8.14 cm² at 0.1/cm²: Y = exp(-0.814) ≈ 0.443.
	if y := m.Yield(h100Area); math.Abs(y-math.Exp(-0.814)) > 1e-12 {
		t.Errorf("Poisson yield = %v", y)
	}
	if y := m.Yield(0); y != 1 {
		t.Errorf("Poisson yield of zero area = %v, want 1", y)
	}
}

func TestPaperYieldClaim(t *testing.T) {
	// Section 2: "the yield rate can be increased by 1.8× when a
	// H100-like compute die area is reduced by 1/4th".
	m := Poisson{D0: DefaultDefectDensity}
	gain := YieldGain(m, h100Area, 0.25)
	if gain < 1.7 || gain > 1.95 {
		t.Errorf("quarter-die yield gain = %v, want ≈1.8", gain)
	}
}

func TestPaperCostClaim(t *testing.T) {
	// Section 2: "corresponding to almost 50% reduction in manufacturing
	// cost". Four quarter-dies vs one full die, silicon cost per good die
	// (the paper's cited die-yield-calculator methodology).
	c := DefaultCostModel()
	red := c.SiliconCostReduction(h100Area, 0.25)
	if red < 0.40 || red > 0.60 {
		t.Errorf("quarter-die silicon cost reduction = %.1f%%, want ≈50%%", red*100)
	}
	// The full-stack saving (with packaging and test, which have fixed
	// per-package components) is smaller but still substantial.
	full := c.CostReduction(h100Area, 0.25)
	if full < 0.20 || full >= red {
		t.Errorf("full-package cost reduction = %.1f%% (silicon-only %.1f%%)",
			full*100, red*100)
	}
}

func TestYieldModelsAgreeOnOrdering(t *testing.T) {
	// For any area, Poisson ≤ Murphy ≤ Seeds (pessimistic → optimistic).
	models := []YieldModel{
		Poisson{D0: 0.1},
		Murphy{D0: 0.1},
		Seeds{D0: 0.1},
	}
	for _, area := range []units.MM2{100, 400, 814, 1600} {
		p := models[0].Yield(area)
		mu := models[1].Yield(area)
		s := models[2].Yield(area)
		if !(p <= mu+1e-12 && mu <= s+1e-12) {
			t.Errorf("area %v: ordering violated: Poisson %v, Murphy %v, Seeds %v",
				area, p, mu, s)
		}
	}
}

func TestNegativeBinomialLimits(t *testing.T) {
	// Large alpha converges to Poisson.
	nb := NegativeBinomial{D0: 0.1, Alpha: 1e6}
	p := Poisson{D0: 0.1}
	if diff := math.Abs(nb.Yield(814) - p.Yield(814)); diff > 1e-3 {
		t.Errorf("NB(α→∞) differs from Poisson by %v", diff)
	}
	// Zero alpha falls back to the documented default of 2.
	nbDefault := NegativeBinomial{D0: 0.1}
	nb2 := NegativeBinomial{D0: 0.1, Alpha: 2}
	if nbDefault.Yield(814) != nb2.Yield(814) {
		t.Error("NB default alpha is not 2")
	}
}

func TestRadialModel(t *testing.T) {
	r := Radial{D0: 0.1, Gradient: 1.0, Wafer: Wafer300N4()}
	p := Poisson{D0: 0.1}
	// Radial degradation can only hurt relative to uniform density.
	for _, area := range []units.MM2{100, 400, 814} {
		if r.Yield(area) >= p.Yield(area) {
			t.Errorf("area %v: radial yield %v not below uniform %v",
				area, r.Yield(area), p.Yield(area))
		}
	}
	// Zero gradient recovers (approximately) the uniform model.
	flat := Radial{D0: 0.1, Gradient: 0, Wafer: Wafer300N4()}
	if diff := math.Abs(flat.Yield(814) - p.Yield(814)); diff > 1e-9 {
		t.Errorf("flat radial differs from Poisson by %v", diff)
	}
	// Degenerate cases.
	if y := r.Yield(0); y != 1 {
		t.Errorf("radial yield of zero area = %v, want 1", y)
	}
	if y := (Radial{D0: 0.1, Gradient: 1}).Yield(100); y != 0 {
		t.Errorf("radial yield with zero-radius wafer = %v, want 0", y)
	}
	if y := r.Yield(1e6); y != 0 {
		t.Errorf("radial yield of die larger than wafer = %v, want 0", y)
	}
}

func TestRadialPenalizesLargeDiesMore(t *testing.T) {
	r := Radial{D0: 0.1, Gradient: 1.5, Wafer: Wafer300N4()}
	p := Poisson{D0: 0.1}
	smallPenalty := r.Yield(100) / p.Yield(100)
	largePenalty := r.Yield(814) / p.Yield(814)
	if largePenalty >= smallPenalty {
		t.Errorf("radial penalty: large %v vs small %v — larger dies should suffer more",
			largePenalty, smallPenalty)
	}
}

func TestYieldGainInfiniteWhenBaseZero(t *testing.T) {
	// A die too large for the wafer has zero radial yield.
	r := Radial{D0: 0.1, Gradient: 1, Wafer: Wafer300N4()}
	if g := YieldGain(r, 1e6, 0.0001); !math.IsInf(g, 1) {
		t.Errorf("YieldGain with zero base = %v, want +Inf", g)
	}
}

func TestGoodDieCostComponents(t *testing.T) {
	c := DefaultCostModel()
	b := c.GoodDieCost(h100Area)
	if b.DiesPerWafer <= 0 || b.Yield <= 0 || b.Yield > 1 {
		t.Fatalf("bad breakdown: %+v", b)
	}
	if b.Total != b.SiliconCost+b.Packaging+b.Test {
		t.Errorf("total %v ≠ sum of parts", b.Total)
	}
	// H100-class silicon cost lands in the publicly estimated range.
	if b.SiliconCost < 400 || b.SiliconCost > 800 {
		t.Errorf("H100 silicon cost = %v, want $400–800", b.SiliconCost)
	}
	if s := b.String(); len(s) == 0 {
		t.Error("empty breakdown string")
	}
}

func TestGoodDieCostZeroYield(t *testing.T) {
	c := DefaultCostModel()
	c.Yield = Radial{D0: 0.1, Gradient: 1, Wafer: Wafer300N4()}
	b := c.GoodDieCost(1e6) // impossible die
	if !math.IsInf(float64(b.SiliconCost), 1) {
		t.Errorf("silicon cost with zero good dies = %v, want +Inf", b.SiliconCost)
	}
}

func TestEquivalentComputeCost(t *testing.T) {
	c := DefaultCostModel()
	// Four quarter dies must be cheaper than one full die.
	full := c.GoodDieCost(h100Area).Total
	four := c.EquivalentComputeCost(h100Area, h100Area/4)
	if four >= full {
		t.Errorf("4×quarter (%v) not cheaper than 1×full (%v)", four, full)
	}
	if v := c.EquivalentComputeCost(h100Area, 0); !math.IsInf(float64(v), 1) {
		t.Errorf("EquivalentComputeCost(_, 0) = %v, want +Inf", v)
	}
}

func TestPackagingSuperlinearity(t *testing.T) {
	c := DefaultCostModel()
	full := c.GoodDieCost(h100Area).Packaging
	quarter := c.GoodDieCost(h100Area / 4).Packaging
	// Superlinear exponent ⇒ 4 quarter packages cost less than 1 full
	// package even before yield enters.
	if 4*float64(quarter) >= 1.2*float64(full) {
		t.Errorf("packaging: 4×%v vs %v — expected clear sublinear total", quarter, full)
	}
}

func TestPerimeter(t *testing.T) {
	if p := Perimeter(100); p != 40 {
		t.Errorf("Perimeter(100) = %v, want 40", p)
	}
	if p := Perimeter(0); p != 0 {
		t.Errorf("Perimeter(0) = %v, want 0", p)
	}
	if p := Perimeter(-1); p != 0 {
		t.Errorf("Perimeter(-1) = %v, want 0", p)
	}
}

func TestPaperShorelineClaim(t *testing.T) {
	// Section 2: "reducing the die area to 1/4th doubles the perimeter
	// exposed to the four dies, yielding a cluster with 2× the
	// bandwidth-to-compute ratio."
	one := Perimeter(h100Area)
	four := TotalPerimeter(h100Area, 4)
	if ratio := float64(four) / float64(one); math.Abs(ratio-2) > 1e-9 {
		t.Errorf("4-way shoreline ratio = %v, want 2", ratio)
	}
	if g := BandwidthToComputeGain(4); math.Abs(g-2) > 1e-12 {
		t.Errorf("BandwidthToComputeGain(4) = %v, want 2", g)
	}
}

func TestTotalPerimeterEdge(t *testing.T) {
	if p := TotalPerimeter(814, 0); p != 0 {
		t.Errorf("TotalPerimeter n=0 = %v", p)
	}
	if p := TotalPerimeter(0, 4); p != 0 {
		t.Errorf("TotalPerimeter area=0 = %v", p)
	}
	if g := ShorelineGain(0); g != 0 {
		t.Errorf("ShorelineGain(0) = %v", g)
	}
}

func TestH100BandwidthDensity(t *testing.T) {
	d := H100BandwidthDensity()
	// (3352+450) GB/s over 4·√814 ≈ 114.1 mm ≈ 33.3 GB/s/mm.
	got := float64(d) / units.GB
	if got < 30 || got < 0 || got > 37 {
		t.Errorf("H100 shoreline density = %.1f GB/s/mm, want ≈33", got)
	}
	// A Lite die at the same density supports ≥ its Table 1 bandwidth.
	liteMax := MaxBandwidth(h100Area/4, d)
	liteNeed := (1675.0 + 225.0) * units.GB // the most demanding variant
	if float64(liteMax) < liteNeed {
		t.Errorf("Lite shoreline supports %v, needs %v", liteMax, units.BytesPerSec(liteNeed))
	}
}

func TestWaferString(t *testing.T) {
	if s := Wafer300N4().String(); s == "" {
		t.Error("empty wafer string")
	}
}

func TestModelNames(t *testing.T) {
	models := []YieldModel{
		Poisson{}, Murphy{}, Seeds{}, NegativeBinomial{}, Radial{},
	}
	seen := map[string]bool{}
	for _, m := range models {
		n := m.Name()
		if n == "" || seen[n] {
			t.Errorf("bad or duplicate model name %q", n)
		}
		seen[n] = true
	}
}

// Property: yield decreases monotonically with area for every model.
func TestYieldMonotoneProperty(t *testing.T) {
	models := []YieldModel{
		Poisson{D0: 0.1},
		Murphy{D0: 0.1},
		Seeds{D0: 0.1},
		NegativeBinomial{D0: 0.1, Alpha: 2},
	}
	f := func(ra, rb uint16) bool {
		a := units.MM2(float64(ra%2000) + 1)
		b := units.MM2(float64(rb%2000) + 1)
		if a > b {
			a, b = b, a
		}
		for _, m := range models {
			if m.Yield(a) < m.Yield(b)-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: yields always fall in [0, 1].
func TestYieldRangeProperty(t *testing.T) {
	models := []YieldModel{
		Poisson{D0: 0.3},
		Murphy{D0: 0.3},
		Seeds{D0: 0.3},
		NegativeBinomial{D0: 0.3, Alpha: 3},
		Radial{D0: 0.3, Gradient: 2, Wafer: Wafer300N4()},
	}
	f := func(raw uint16) bool {
		area := units.MM2(float64(raw % 3000))
		for _, m := range models {
			y := m.Yield(area)
			if y < 0 || y > 1 || math.IsNaN(y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: splitting finer never reduces total shoreline.
func TestShorelineMonotoneProperty(t *testing.T) {
	f := func(ra, rb uint8) bool {
		n1 := int(ra%64) + 1
		n2 := int(rb%64) + 1
		if n1 > n2 {
			n1, n2 = n2, n1
		}
		return float64(TotalPerimeter(814, n1)) <= float64(TotalPerimeter(814, n2))+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: cost per good die rises with defect density.
func TestCostRisesWithDefectDensityProperty(t *testing.T) {
	f := func(raw uint8) bool {
		d1 := DefectDensity(float64(raw%50)/100 + 0.01)
		d2 := d1 + 0.05
		c1 := DefaultCostModel()
		c1.Yield = Poisson{D0: d1}
		c2 := DefaultCostModel()
		c2.Yield = Poisson{D0: d2}
		return float64(c1.GoodDieCost(814).Total) <= float64(c2.GoodDieCost(814).Total)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
