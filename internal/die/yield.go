package die

import (
	"math"

	"litegpu/internal/units"
)

// DefectDensity is the average defect density in defects per cm².
// Leading-edge logic nodes in volume production run at roughly 0.1/cm²
// (the value at which the paper's quarter-die example yields ~1.8×).
type DefectDensity float64

// DefaultDefectDensity is the N4/N5-class density used by the studies.
const DefaultDefectDensity DefectDensity = 0.10

// YieldModel maps die area to the fraction of manufactured dies that work.
type YieldModel interface {
	// Yield returns the probability that a die of the given area is
	// defect-free, in [0, 1].
	Yield(area units.MM2) float64
	// Name identifies the model in reports.
	Name() string
}

// mm² → cm² conversion for defect-density math.
func areaCM2(a units.MM2) float64 { return float64(a) / 100 }

// Poisson is the classic random-defect model Y = exp(−A·D0). It assumes
// defects land independently and any defect kills the die — pessimistic
// for clustered real-world defects but the canonical first-order model.
type Poisson struct{ D0 DefectDensity }

// Yield implements YieldModel.
func (m Poisson) Yield(area units.MM2) float64 {
	if area <= 0 {
		return 1
	}
	return math.Exp(-areaCM2(area) * float64(m.D0))
}

// Name implements YieldModel.
func (Poisson) Name() string { return "Poisson" }

// Murphy is Murphy's model Y = ((1−e^(−A·D0))/(A·D0))², derived from a
// triangular distribution of defect densities. It sits between Poisson
// and Seeds and matched decades of fab data well.
type Murphy struct{ D0 DefectDensity }

// Yield implements YieldModel.
func (m Murphy) Yield(area units.MM2) float64 {
	ad := areaCM2(area) * float64(m.D0)
	if ad <= 0 {
		return 1
	}
	f := (1 - math.Exp(-ad)) / ad
	return f * f
}

// Name implements YieldModel.
func (Murphy) Name() string { return "Murphy" }

// Seeds is the exponential-distribution model Y = 1/(1+A·D0), the most
// optimistic classical model for large dies.
type Seeds struct{ D0 DefectDensity }

// Yield implements YieldModel.
func (m Seeds) Yield(area units.MM2) float64 {
	ad := areaCM2(area) * float64(m.D0)
	if ad <= 0 {
		return 1
	}
	return 1 / (1 + ad)
}

// Name implements YieldModel.
func (Seeds) Name() string { return "Seeds" }

// NegativeBinomial is the industry-standard clustered-defect model
// Y = (1 + A·D0/α)^(−α) with clustering parameter α (typically 2–3).
// As α → ∞ it converges to Poisson.
type NegativeBinomial struct {
	D0    DefectDensity
	Alpha float64
}

// Yield implements YieldModel.
func (m NegativeBinomial) Yield(area units.MM2) float64 {
	ad := areaCM2(area) * float64(m.D0)
	if ad <= 0 {
		return 1
	}
	a := m.Alpha
	if a <= 0 {
		a = 2
	}
	return math.Pow(1+ad/a, -a)
}

// Name implements YieldModel.
func (NegativeBinomial) Name() string { return "NegativeBinomial" }

// Radial implements a radial yield-degradation model in the spirit of
// Teets (IEEE Trans. Semiconductor Manufacturing, 1996), which the paper
// cites: defect density grows toward the wafer edge, so larger dies —
// which necessarily extend further outward and cannot avoid the degraded
// rim — lose disproportionately. Local density at normalized radius
// ρ = r/R is D(ρ) = D0·(1 + Gradient·ρ²); per-die yield uses the Poisson
// kernel at the die-center density, and wafer-average yield integrates
// die placements over the usable disc.
type Radial struct {
	D0 DefectDensity
	// Gradient is the relative density increase at the wafer edge
	// (e.g. 1.0 means the rim has twice the center density).
	Gradient float64
	// Wafer supplies the usable radius for the placement integral.
	Wafer Wafer
}

// Yield implements YieldModel. It returns the wafer-averaged yield of
// dies of the given area.
func (m Radial) Yield(area units.MM2) float64 {
	if area <= 0 {
		return 1
	}
	r := m.Wafer.UsableRadius()
	if r <= 0 {
		return 0
	}
	side := math.Sqrt(float64(area))
	// Integrate over die center positions on a ring decomposition.
	// Die centers can sit from 0 out to r − side/2 (die fully on wafer).
	maxC := r - side/2/math.Sqrt2 // conservative: half-diagonal inside
	if maxC <= 0 {
		return 0
	}
	const rings = 256
	var weighted, weightSum float64
	for i := 0; i < rings; i++ {
		c := (float64(i) + 0.5) / rings * maxC
		rho := c / r
		d := float64(m.D0) * (1 + m.Gradient*rho*rho)
		y := math.Exp(-areaCM2(area) * d)
		// Ring weight ∝ circumference (area of the annulus).
		w := c
		weighted += y * w
		weightSum += w
	}
	if weightSum == 0 {
		return 0
	}
	return weighted / weightSum
}

// Name implements YieldModel.
func (Radial) Name() string { return "Radial(Teets)" }

// YieldGain returns the multiplicative yield advantage of a die shrunk by
// the given area fraction under model m: Yield(A·frac)/Yield(A).
// The paper's headline example is YieldGain(H100 area, 1/4) ≈ 1.8.
func YieldGain(m YieldModel, area units.MM2, frac float64) float64 {
	base := m.Yield(area)
	if base == 0 {
		return math.Inf(1)
	}
	return m.Yield(units.MM2(float64(area)*frac)) / base
}
