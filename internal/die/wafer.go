// Package die models silicon manufacturing: how many dies fit on a wafer,
// what fraction of them work (defect-limited yield under several classic
// models, including the radial-degradation model the paper cites), what a
// good die costs once wafer, packaging and test are accounted for, and how
// much I/O shoreline (die perimeter) a die exposes.
//
// This package substantiates the paper's Section 2 claims: quartering an
// H100-class die raises yield ~1.8× and cuts manufacturing cost per unit
// of compute by almost half, while doubling total shoreline and therefore
// the achievable bandwidth-to-compute ratio.
package die

import (
	"fmt"
	"math"

	"litegpu/internal/units"
)

// Wafer describes a production wafer.
type Wafer struct {
	// Diameter is the wafer diameter in mm (300 for current fabs).
	Diameter units.MM

	// EdgeExclusion is the unusable rim width in mm.
	EdgeExclusion units.MM

	// ScribeLane is the saw street width in mm added to each die edge.
	ScribeLane units.MM

	// Cost is the processed-wafer price.
	Cost units.Dollars
}

// Wafer300N4 returns a 300 mm wafer at a leading-edge (N4/N5-class)
// logic node. The $16k price is the widely reported figure for TSMC
// 5 nm-class wafers; edge exclusion and scribe widths are industry
// standard values.
func Wafer300N4() Wafer {
	return Wafer{
		Diameter:      300,
		EdgeExclusion: 3,
		ScribeLane:    0.1,
		Cost:          16000,
	}
}

// UsableRadius returns the radius of the printable region in mm.
func (w Wafer) UsableRadius() float64 {
	r := (float64(w.Diameter) - 2*float64(w.EdgeExclusion)) / 2
	if r < 0 {
		return 0
	}
	return r
}

// DiesPerWafer estimates how many complete dies of the given area fit on
// the wafer using the standard analytic approximation
//
//	N = π·r² / S  −  π·2r / √(2·S)
//
// where S is the die area including scribe lanes and r the usable radius.
// The second term accounts for partial dies lost at the wafer edge — the
// reason small dies pack better than a naive area ratio predicts.
func (w Wafer) DiesPerWafer(area units.MM2) int {
	if area <= 0 {
		return 0
	}
	side := math.Sqrt(float64(area))
	s := (side + float64(w.ScribeLane)) * (side + float64(w.ScribeLane))
	r := w.UsableRadius()
	n := math.Pi*r*r/s - math.Pi*2*r/math.Sqrt(2*s)
	if n < 0 {
		return 0
	}
	return int(n)
}

// String renders the wafer spec.
func (w Wafer) String() string {
	return fmt.Sprintf("%.0f mm wafer (%s, edge %.1f mm, scribe %.2f mm)",
		float64(w.Diameter), w.Cost, float64(w.EdgeExclusion), float64(w.ScribeLane))
}
