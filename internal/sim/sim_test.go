package sim

import (
	"reflect"
	"testing"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New(1)
	var got []float64
	for _, at := range []float64{5, 1, 3, 2, 4} {
		at := at
		e.Schedule(at, 0, func(now float64) { got = append(got, now) })
	}
	if n := e.Run(10); n != 5 {
		t.Fatalf("ran %d events, want 5", n)
	}
	want := []float64{1, 2, 3, 4, 5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("fire order %v, want %v", got, want)
	}
	if e.Now() != 5 {
		t.Errorf("clock = %v, want 5 (time of last event, not the horizon)", e.Now())
	}
}

func TestSameTimePriorityThenFIFO(t *testing.T) {
	e := New(1)
	var got []string
	// All at t=1: priority orders phases; within a priority, insertion
	// order wins — never heap-internal order.
	e.Schedule(1, 2, func(float64) { got = append(got, "dispatch") })
	e.Schedule(1, 0, func(float64) { got = append(got, "arrival-a") })
	e.Schedule(1, 1, func(float64) { got = append(got, "complete-a") })
	e.Schedule(1, 0, func(float64) { got = append(got, "arrival-b") })
	e.Schedule(1, 1, func(float64) { got = append(got, "complete-b") })
	e.Run(1)
	want := []string{"arrival-a", "arrival-b", "complete-a", "complete-b", "dispatch"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("order %v, want %v", got, want)
	}
}

func TestRunStopsAtHorizon(t *testing.T) {
	e := New(1)
	var got []float64
	for _, at := range []float64{1, 2, 3, 4} {
		at := at
		e.Schedule(at, 0, func(now float64) { got = append(got, now) })
	}
	if n := e.Run(2); n != 2 {
		t.Fatalf("ran %d events, want 2 (t=2 inclusive)", n)
	}
	if e.Pending() != 2 {
		t.Errorf("pending = %d, want 2", e.Pending())
	}
	if next, ok := e.Next(); !ok || next != 3 {
		t.Errorf("next = %v/%v, want 3", next, ok)
	}
	// Resume: the calendar survives across Run calls.
	e.Run(10)
	if !reflect.DeepEqual(got, []float64{1, 2, 3, 4}) {
		t.Errorf("resumed run produced %v", got)
	}
}

func TestCancel(t *testing.T) {
	e := New(1)
	fired := make(map[string]bool)
	keep := e.Schedule(1, 0, func(float64) { fired["keep"] = true })
	drop := e.Schedule(2, 0, func(float64) { fired["drop"] = true })
	if !e.Cancel(drop) {
		t.Error("Cancel of a pending event reported false")
	}
	if e.Cancel(drop) {
		t.Error("double Cancel reported true")
	}
	e.Run(10)
	if !fired["keep"] || fired["drop"] {
		t.Errorf("fired = %v, want only keep", fired)
	}
	if e.Cancel(keep) {
		t.Error("Cancel of an executed event reported true")
	}
	if e.Cancel(EventID(0)) {
		t.Error("Cancel of the zero EventID reported true")
	}
}

func TestCancelMiddleOfHeapKeepsOrder(t *testing.T) {
	e := New(1)
	var got []float64
	var ids []EventID
	for _, at := range []float64{1, 2, 3, 4, 5, 6, 7, 8} {
		at := at
		ids = append(ids, e.Schedule(at, 0, func(now float64) { got = append(got, now) }))
	}
	e.Cancel(ids[3]) // t=4
	e.Cancel(ids[6]) // t=7
	e.Run(10)
	want := []float64{1, 2, 3, 5, 6, 8}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("order after mid-heap cancels %v, want %v", got, want)
	}
}

func TestHandlersCanScheduleAtCurrentTime(t *testing.T) {
	e := New(1)
	var got []string
	e.Schedule(1, 0, func(now float64) {
		got = append(got, "first")
		// Same-time follow-up runs within the same Run call, after
		// already-pending same-time events of lower priority rank.
		e.Schedule(now, 5, func(float64) { got = append(got, "followup") })
	})
	e.Schedule(1, 1, func(float64) { got = append(got, "second") })
	e.Run(1)
	want := []string{"first", "second", "followup"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("order %v, want %v", got, want)
	}
}

func TestChainedSchedulingAdvancesClock(t *testing.T) {
	e := New(1)
	count := 0
	var tick func(now float64)
	tick = func(now float64) {
		count++
		e.ScheduleAfter(1, 0, tick)
	}
	e.ScheduleAfter(1, 0, tick)
	e.Run(100)
	if count != 100 {
		t.Errorf("ticked %d times, want 100", count)
	}
	if e.Now() != 100 {
		t.Errorf("clock = %v, want 100", e.Now())
	}
}

func TestSchedulingInThePastPanics(t *testing.T) {
	e := New(1)
	e.Schedule(5, 0, func(float64) {})
	e.Run(10)
	defer func() {
		if recover() == nil {
			t.Error("scheduling before Now() did not panic")
		}
	}()
	e.Schedule(1, 0, func(float64) {})
}

func TestDeterministicReplay(t *testing.T) {
	// Two engines driven by identical logic — including RNG draws and a
	// cancellation — must produce identical traces.
	run := func() []float64 {
		e := New(99)
		var got []float64
		var pending EventID
		e.Schedule(1, 0, func(now float64) {
			got = append(got, now+e.RNG().Float64())
			pending = e.ScheduleAfter(10, 0, func(now float64) { got = append(got, -now) })
		})
		e.Schedule(2, 0, func(now float64) {
			e.Cancel(pending)
			got = append(got, now+e.RNG().Float64())
		})
		e.Run(50)
		return got
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("replay diverged: %v vs %v", a, b)
	}
	if len(a) != 2 {
		t.Errorf("cancelled event ran: %v", a)
	}
}

func TestManyEventsStressHeap(t *testing.T) {
	// Schedule a pseudo-random pile of events, cancel a third, and check
	// the execution sequence is sorted.
	e := New(7)
	var ids []EventID
	var got []float64
	for i := 0; i < 2000; i++ {
		at := e.RNG().Float64() * 1000
		ids = append(ids, e.Schedule(at, 0, func(now float64) { got = append(got, now) }))
	}
	for i := 0; i < len(ids); i += 3 {
		e.Cancel(ids[i])
	}
	e.Run(2000)
	if len(got) != 2000-667 {
		t.Fatalf("executed %d events, want %d", len(got), 2000-667)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("out-of-order execution at %d: %v after %v", i, got[i], got[i-1])
		}
	}
}

func TestScheduleCallRoutesArgAndCancels(t *testing.T) {
	e := New(1)
	var got []uint64
	h := func(now float64, arg uint64) { got = append(got, arg) }
	e.ScheduleCall(1, 0, h, 7)
	keep := e.ScheduleCall(2, 0, h, 8)
	drop := e.ScheduleCall(3, 0, h, 9)
	if !e.Cancel(drop) {
		t.Error("Cancel of pending ScheduleCall event reported false")
	}
	e.Run(10)
	if !reflect.DeepEqual(got, []uint64{7, 8}) {
		t.Errorf("args %v, want [7 8]", got)
	}
	if e.Cancel(keep) {
		t.Error("Cancel of executed event reported true (stale id must miss the recycled slot)")
	}
	// The slot behind `keep` has been recycled; a new event in it must
	// carry a fresh generation so the old id still misses.
	id := e.ScheduleCall(11, 0, h, 10)
	if id == keep {
		t.Error("recycled slot reissued an identical EventID")
	}
	e.Run(20)
}

func TestSteadyStateSchedulingIsAllocationFree(t *testing.T) {
	// The hot-path contract: a warm engine schedules and fires
	// pre-bound (Handler, arg) events without allocating. This is what
	// keeps the serving simulator's per-decode-step cost at zero
	// steady-state allocations.
	e := New(1)
	var fired int
	h := func(now float64, arg uint64) { fired++ }
	// Warm the slab, heap, and free list past their high-water mark.
	for i := 0; i < 256; i++ {
		e.ScheduleCall(float64(i), i%4, h, uint64(i))
	}
	e.Run(1 << 20)
	allocs := testing.AllocsPerRun(1000, func() {
		e.ScheduleCall(e.Now()+1, 0, h, 1)
		e.ScheduleCall(e.Now()+2, 1, h, 2)
		e.Step()
		e.Step()
	})
	if allocs != 0 {
		t.Errorf("steady-state schedule+fire allocates %.1f times per event pair, want 0", allocs)
	}
}

func TestCancelIsAllocationFreeAtSteadyState(t *testing.T) {
	e := New(1)
	h := func(float64, uint64) {}
	for i := 0; i < 64; i++ {
		e.ScheduleCall(float64(i+1), 0, h, 0)
	}
	e.Run(1 << 20)
	allocs := testing.AllocsPerRun(1000, func() {
		id := e.ScheduleCall(e.Now()+1, 0, h, 0)
		if !e.Cancel(id) {
			t.Fatal("cancel failed")
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state schedule+cancel allocates %.1f times, want 0", allocs)
	}
}
