package sim

import (
	"reflect"
	"testing"
)

// TestRunBeforeIsExclusive pins the window-barrier semantics: RunBefore
// fires everything strictly before the bound and nothing at it, leaving
// the at-bound events for the next Run.
func TestRunBeforeIsExclusive(t *testing.T) {
	e := New(1)
	var got []float64
	for _, at := range []float64{1, 2, 2, 3} {
		e.Schedule(at, 0, func(now float64) { got = append(got, now) })
	}
	if n := e.RunBefore(2); n != 1 {
		t.Fatalf("RunBefore(2) fired %d events, want 1", n)
	}
	if !reflect.DeepEqual(got, []float64{1}) {
		t.Fatalf("RunBefore(2) fired %v, want [1]", got)
	}
	if e.Pending() != 3 {
		t.Errorf("pending = %d after exclusive window, want 3", e.Pending())
	}
	if n := e.Run(3); n != 3 {
		t.Errorf("Run(3) fired %d events, want the remaining 3", n)
	}
	if !reflect.DeepEqual(got, []float64{1, 2, 2, 3}) {
		t.Errorf("final order %v, want [1 2 2 3]", got)
	}
}

// TestRunBeforeEmptyWindow pins that a window with no events before the
// bound is a no-op that does not advance the clock past fired events.
func TestRunBeforeEmptyWindow(t *testing.T) {
	e := New(1)
	e.Schedule(5, 0, func(float64) {})
	if n := e.RunBefore(5); n != 0 {
		t.Fatalf("RunBefore(5) fired %d events, want 0", n)
	}
	if e.Now() != 0 {
		t.Errorf("clock = %v after empty window, want 0", e.Now())
	}
	if n := e.Run(10); n != 1 {
		t.Errorf("event at the bound was lost: Run fired %d, want 1", n)
	}
}

// replayLog is shared by the replay tests: handlers append to the
// engine-independent record so a restored engine writes a fresh trace
// through the same closures.
type replayLog struct{ lines []float64 }

// TestSnapshotRestoreReplaysIdentically is the fork contract at the
// engine level: a snapshot taken mid-run restores clock, calendar, and
// RNG stream, so the suffix replays event-for-event and draw-for-draw —
// any number of times, because the snapshot is immutable.
func TestSnapshotRestoreReplaysIdentically(t *testing.T) {
	e := New(99)
	log := &replayLog{}
	// A self-rescheduling chain whose gaps come from the engine RNG:
	// replay identity therefore requires the RNG state to round-trip.
	var tick func(now float64)
	tick = func(now float64) {
		log.lines = append(log.lines, now)
		e.ScheduleAfter(0.1+e.RNG().Float64(), 1, tick)
	}
	e.Schedule(0, 1, tick)
	e.Run(10)

	snap := e.Snapshot()
	if snap.Now() != e.Now() {
		t.Fatalf("snapshot clock %v, want %v", snap.Now(), e.Now())
	}
	log.lines = nil
	e.Run(50)
	want := append([]float64(nil), log.lines...)
	if len(want) == 0 {
		t.Fatal("suffix fired no events; replay test is vacuous")
	}
	for i := 0; i < 3; i++ {
		e.Restore(snap)
		log.lines = nil
		e.Run(50)
		if !reflect.DeepEqual(log.lines, want) {
			t.Fatalf("replay %d diverged: %v vs %v", i, log.lines, want)
		}
	}
}

// TestRestoreKeepsEventIDsValid pins that EventIDs issued before a
// snapshot stay cancelable after a restore: the snapshot preserves slab
// slot generations, so handles held across the fork don't dangle.
func TestRestoreKeepsEventIDsValid(t *testing.T) {
	e := New(1)
	var fired []string
	e.Schedule(1, 0, func(float64) { fired = append(fired, "a") })
	id := e.Schedule(2, 0, func(float64) { fired = append(fired, "b") })
	snap := e.Snapshot()

	if !e.Cancel(id) {
		t.Fatal("pre-restore cancel failed")
	}
	e.Run(5)
	if !reflect.DeepEqual(fired, []string{"a"}) {
		t.Fatalf("first run fired %v, want [a]", fired)
	}

	e.Restore(snap)
	fired = nil
	if !e.Cancel(id) {
		t.Fatal("EventID from before the snapshot no longer cancels after restore")
	}
	e.Run(5)
	if !reflect.DeepEqual(fired, []string{"a"}) {
		t.Fatalf("post-restore run fired %v, want [a]", fired)
	}
}

// TestRestoreRewindsClock pins the in-place rewind: restoring an older
// snapshot moves the clock backwards and re-arms already-fired events.
func TestRestoreRewindsClock(t *testing.T) {
	e := New(1)
	count := 0
	e.Schedule(3, 0, func(float64) { count++ })
	snap := e.Snapshot()
	e.Run(5)
	if e.Now() != 3 || count != 1 {
		t.Fatalf("run: now=%v count=%d, want 3 and 1", e.Now(), count)
	}
	e.Restore(snap)
	if e.Now() != 0 {
		t.Fatalf("restore left clock at %v, want 0", e.Now())
	}
	e.Run(5)
	if count != 2 {
		t.Errorf("re-armed event fired %d times total, want 2", count)
	}
}
