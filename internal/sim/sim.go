// Package sim is the deterministic discrete-event core shared by the
// litegpu simulators: an indexed min-heap event calendar, a simulated
// clock, typed event scheduling with O(log n) cancellation, and seeded
// randomness through mathx so every run is byte-identical — including
// under the parallel sweep, where each grid cell derives its own seed
// via mathx.DeriveSeed.
//
// Determinism is the whole point. Events fire in (time, priority,
// insertion order) order: priorities give simulators explicit control
// over same-timestamp phases (arrivals before completions before
// dispatch), and the insertion-order tiebreak makes equal-priority ties
// FIFO rather than heap-arbitrary. No wall clock, no global RNG, no map
// iteration touches event order.
package sim

import (
	"fmt"
	"math"

	"litegpu/internal/mathx"
)

// EventID names a scheduled event for cancellation. The zero EventID is
// never issued, so it can mark "no event pending".
type EventID uint64

// event is one calendar entry. pos is its current index in the heap
// slice, maintained by the sift operations so Cancel can remove it in
// O(log n) without a search.
type event struct {
	at   float64
	prio int
	id   EventID // doubles as the insertion-order tiebreak
	pos  int
	fn   func(now float64)
}

// Engine is a discrete-event simulation: a clock plus a calendar of
// pending events. The zero value is not usable; call New.
type Engine struct {
	now    float64
	nextID EventID
	heap   []*event
	byID   map[EventID]*event
	rng    *mathx.RNG
}

// New returns an engine at time zero whose RNG is seeded with seed.
// Simulators that need several independent streams should derive them
// with RNG().Split or mathx.DeriveSeed rather than sharing one stream
// across components, so adding draws in one component cannot perturb
// another.
func New(seed uint64) *Engine {
	return &Engine{
		byID: make(map[EventID]*event),
		rng:  mathx.NewRNG(seed),
	}
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// RNG returns the engine's seeded generator.
func (e *Engine) RNG() *mathx.RNG { return e.rng }

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.heap) }

// Next peeks at the earliest pending event time.
func (e *Engine) Next() (at float64, ok bool) {
	if len(e.heap) == 0 {
		return 0, false
	}
	return e.heap[0].at, true
}

// Schedule books fn to run at absolute time `at` with the given
// priority. Among events at the same time, lower priority runs first;
// equal priorities run in scheduling order. Scheduling in the past (or a
// non-finite time) panics — it is always a simulator bug, and silently
// clamping it would corrupt causality.
func (e *Engine) Schedule(at float64, prio int, fn func(now float64)) EventID {
	if math.IsNaN(at) || math.IsInf(at, -1) || at < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", at, e.now))
	}
	e.nextID++
	ev := &event{at: at, prio: prio, id: e.nextID, fn: fn}
	e.byID[ev.id] = ev
	ev.pos = len(e.heap)
	e.heap = append(e.heap, ev)
	e.siftUp(ev.pos)
	return ev.id
}

// ScheduleAfter books fn at Now()+delay. Negative delays panic via
// Schedule.
func (e *Engine) ScheduleAfter(delay float64, prio int, fn func(now float64)) EventID {
	return e.Schedule(e.now+delay, prio, fn)
}

// Cancel removes a pending event. It reports false when the event
// already ran, was already cancelled, or never existed — cancelling a
// completed event is a legal no-op, which is what lets simulators keep
// "the completion I booked" handles without tracking their lifecycle.
func (e *Engine) Cancel(id EventID) bool {
	ev, ok := e.byID[id]
	if !ok {
		return false
	}
	delete(e.byID, id)
	e.removeAt(ev.pos)
	return true
}

// Run executes events in order until the calendar is empty or the next
// event lies beyond `until` (events at exactly `until` run). The clock
// advances to each event's time as it fires; it does not advance past
// the last executed event, matching the convention that a horizon ends
// the observation window rather than the world. Returns the number of
// events executed.
//
// Handlers may schedule and cancel freely, including at the current
// time; newly scheduled events at or before `until` run in the same
// call.
func (e *Engine) Run(until float64) int {
	n := 0
	for len(e.heap) > 0 && e.heap[0].at <= until {
		ev := e.heap[0]
		e.removeAt(0)
		delete(e.byID, ev.id)
		e.now = ev.at
		ev.fn(ev.at)
		n++
	}
	return n
}

// Step executes exactly one event if one is pending, reporting whether
// it did. Tests use it to observe intermediate states.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := e.heap[0]
	e.removeAt(0)
	delete(e.byID, ev.id)
	e.now = ev.at
	ev.fn(ev.at)
	return true
}

// less orders the calendar: earlier time, then lower priority, then
// earlier scheduling.
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.id < b.id
}

func (e *Engine) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !less(e.heap[i], e.heap[parent]) {
			break
		}
		e.swap(i, parent)
		i = parent
	}
}

func (e *Engine) siftDown(i int) {
	n := len(e.heap)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && less(e.heap[l], e.heap[min]) {
			min = l
		}
		if r < n && less(e.heap[r], e.heap[min]) {
			min = r
		}
		if min == i {
			return
		}
		e.swap(i, min)
		i = min
	}
}

func (e *Engine) swap(i, j int) {
	e.heap[i], e.heap[j] = e.heap[j], e.heap[i]
	e.heap[i].pos = i
	e.heap[j].pos = j
}

// removeAt deletes the event at heap index i, restoring the heap
// property around the hole.
func (e *Engine) removeAt(i int) {
	last := len(e.heap) - 1
	e.swap(i, last)
	e.heap[last] = nil
	e.heap = e.heap[:last]
	if i < last {
		e.siftDown(i)
		e.siftUp(i)
	}
}
