// Package sim is the deterministic discrete-event core shared by the
// litegpu simulators: a slab-backed min-heap event calendar, a simulated
// clock, closure-free typed event scheduling with O(log n) cancellation,
// and seeded randomness through mathx so every run is byte-identical —
// including under the parallel sweep, where each grid cell derives its
// own seed via mathx.DeriveSeed.
//
// Determinism is the whole point. Events fire in (time, priority,
// insertion order) order: priorities give simulators explicit control
// over same-timestamp phases (arrivals before completions before
// dispatch), and the insertion-order tiebreak makes equal-priority ties
// FIFO rather than heap-arbitrary. No wall clock, no global RNG, no map
// iteration touches event order.
//
// The calendar is allocation-free at steady state. Events live in a
// reusable slab indexed by a heap of small value entries; scheduling
// recycles slots through a free list, and cancellation resolves the
// EventID's (slot, generation) pair directly against the slab — there is
// no per-event heap node, no closure, and no id map. The hot-path API is
// ScheduleCall(at, prio, h, arg): simulators bind their handler funcs
// once at setup and pass per-event context through the arg word, so a
// warm engine schedules and fires events without touching the Go heap.
// Schedule(at, prio, fn) remains as a convenience for cold paths and
// tests; its adapter closure is the only allocation in the package.
package sim

import (
	"fmt"
	"math"

	"litegpu/internal/mathx"
)

// EventID names a scheduled event for cancellation. It packs the
// event's slab slot with the slot's generation at scheduling time, so a
// stale id (the event ran, or was cancelled, and the slot moved on)
// simply fails the generation check. The zero EventID is never issued,
// so it can mark "no event pending".
type EventID uint64

// Handler is a pre-bound event callback: `now` is the event's firing
// time (== Engine.Now()) and `arg` is the word passed to ScheduleCall,
// typically an encoded instance or pool index. Binding handlers once
// and routing per-event context through arg is what keeps the hot path
// closure-free.
type Handler func(now float64, arg uint64)

// event is one slab slot: the callback state of a scheduled (or freed)
// event. Ordering state lives in the heap entries; pos links back from
// the slab so Cancel can remove an event in O(log n) without a search.
type event struct {
	h   Handler
	arg uint64
	gen uint32 // bumped every time the slot is freed
	pos int32  // current heap index; -1 when free
}

// heapEnt is one calendar entry: everything the heap ordering needs,
// kept as a small value so sift operations never chase slab pointers.
type heapEnt struct {
	at   float64
	seq  uint64 // insertion-order tiebreak
	prio int32
	slot int32
}

// Engine is a discrete-event simulation: a clock plus a calendar of
// pending events. The zero value is not usable; call New.
type Engine struct {
	now   float64
	seq   uint64
	fired uint64
	heap  []heapEnt
	slab  []event
	free  []int32
	rng   *mathx.RNG
}

// New returns an engine at time zero whose RNG is seeded with seed.
// Simulators that need several independent streams should derive them
// with RNG().Split or mathx.DeriveSeed rather than sharing one stream
// across components, so adding draws in one component cannot perturb
// another.
func New(seed uint64) *Engine {
	return &Engine{rng: mathx.NewRNG(seed)}
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// RNG returns the engine's seeded generator.
func (e *Engine) RNG() *mathx.RNG { return e.rng }

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.heap) }

// EventsFired returns the count of events executed so far — a cheap
// progress measure for observability probes and heartbeats.
func (e *Engine) EventsFired() uint64 { return e.fired }

// Next peeks at the earliest pending event time.
func (e *Engine) Next() (at float64, ok bool) {
	if len(e.heap) == 0 {
		return 0, false
	}
	return e.heap[0].at, true
}

// ScheduleCall books h(at, arg) at absolute time `at` with the given
// priority. Among events at the same time, lower priority runs first;
// equal priorities run in scheduling order. Scheduling in the past (or a
// non-finite time) panics — it is always a simulator bug, and silently
// clamping it would corrupt causality.
//
// This is the allocation-free hot path: h should be a handler bound
// once at simulator setup (a stored method value), with per-event
// context packed into arg.
//
//litegpu:hotpath
func (e *Engine) ScheduleCall(at float64, prio int, h Handler, arg uint64) EventID {
	if math.IsNaN(at) || math.IsInf(at, -1) || at < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", at, e.now))
	}
	e.seq++
	var slot int32
	if n := len(e.free); n > 0 {
		slot = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.slab = append(e.slab, event{gen: 1})
		slot = int32(len(e.slab) - 1)
	}
	ev := &e.slab[slot]
	ev.h, ev.arg = h, arg
	ev.pos = int32(len(e.heap))
	e.heap = append(e.heap, heapEnt{at: at, seq: e.seq, prio: int32(prio), slot: slot})
	e.siftUp(int(ev.pos))
	return EventID(uint64(ev.gen)<<32 | uint64(uint32(slot)))
}

// Schedule books fn to run at absolute time `at`; see ScheduleCall for
// the ordering contract. The closure adapter allocates, so hot loops
// should prefer ScheduleCall — Schedule exists for cold paths and
// tests.
func (e *Engine) Schedule(at float64, prio int, fn func(now float64)) EventID {
	return e.ScheduleCall(at, prio, func(now float64, _ uint64) { fn(now) }, 0)
}

// ScheduleAfter books fn at Now()+delay. Negative delays panic via
// ScheduleCall.
func (e *Engine) ScheduleAfter(delay float64, prio int, fn func(now float64)) EventID {
	return e.Schedule(e.now+delay, prio, fn)
}

// Cancel removes a pending event. It reports false when the event
// already ran, was already cancelled, or never existed — cancelling a
// completed event is a legal no-op, which is what lets simulators keep
// "the completion I booked" handles without tracking their lifecycle.
//
//litegpu:hotpath
func (e *Engine) Cancel(id EventID) bool {
	slot := uint32(id)
	gen := uint32(id >> 32)
	if uint64(slot) >= uint64(len(e.slab)) {
		return false
	}
	ev := &e.slab[slot]
	if ev.gen != gen || ev.pos < 0 {
		return false
	}
	e.removeAt(int(ev.pos))
	return true
}

// Run executes events in order until the calendar is empty or the next
// event lies beyond `until` (events at exactly `until` run). The clock
// advances to each event's time as it fires; it does not advance past
// the last executed event, matching the convention that a horizon ends
// the observation window rather than the world. Returns the number of
// events executed.
//
// Handlers may schedule and cancel freely, including at the current
// time; newly scheduled events at or before `until` run in the same
// call.
//
//litegpu:hotpath
func (e *Engine) Run(until float64) int {
	n := 0
	for len(e.heap) > 0 && e.heap[0].at <= until {
		e.fireTop()
		n++
	}
	return n
}

// RunBefore executes events in order while the next event lies strictly
// before `until` (events at exactly `until` do NOT run — Run's
// inclusive counterpart). It is the conservative-window primitive of
// the sharded cluster runner: a shard advances through everything that
// can causally precede a cross-shard event at `until`, then parks so
// the coordinator can exchange state at exactly that instant. Returns
// the number of events executed.
//
//litegpu:hotpath
func (e *Engine) RunBefore(until float64) int {
	n := 0
	for len(e.heap) > 0 && e.heap[0].at < until {
		e.fireTop()
		n++
	}
	return n
}

// Step executes exactly one event if one is pending, reporting whether
// it did. Tests use it to observe intermediate states.
//
//litegpu:hotpath
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	e.fireTop()
	return true
}

// fireTop pops the earliest event, frees its slot, advances the clock,
// and invokes the handler. The handler state is copied out before the
// slot is recycled, so handlers may schedule freely (including into the
// slot they just vacated).
//
//litegpu:hotpath
func (e *Engine) fireTop() {
	top := e.heap[0]
	ev := &e.slab[top.slot]
	h, arg := ev.h, ev.arg
	e.removeAt(0)
	e.now = top.at
	e.fired++
	h(top.at, arg)
}

// Snapshot is a frozen copy of an Engine's complete state — clock,
// insertion counter, calendar (heap, slab with slot generations, free
// list), and RNG stream — taken by Engine.Snapshot and replayed by
// Engine.Restore. It is immutable after capture: restoring never
// mutates the snapshot, so one snapshot supports any number of forks.
//
// Handler values are copied as-is. A snapshot is therefore only
// meaningful for in-place restore — Restore on the same Engine whose
// simulator objects (the handler receivers) still exist. That is
// exactly the planner's fork pattern: run, snapshot at the divergence
// point, finish the run, restore, perturb one input, run again.
type Snapshot struct {
	now   float64
	seq   uint64
	fired uint64
	heap  []heapEnt
	slab  []event
	free  []int32
	rng   uint64
}

// Now returns the snapshot's frozen clock.
func (s *Snapshot) Now() float64 { return s.now }

// Snapshot returns a deep copy of the engine's current state. Slot
// generations are included, so EventIDs held by the simulator remain
// valid (or correctly stale) after a Restore.
func (e *Engine) Snapshot() *Snapshot {
	return &Snapshot{
		now:   e.now,
		seq:   e.seq,
		fired: e.fired,
		heap:  append([]heapEnt(nil), e.heap...),
		slab:  append([]event(nil), e.slab...),
		free:  append([]int32(nil), e.free...),
		rng:   e.rng.State(),
	}
}

// Restore rewinds the engine to a snapshot taken from it earlier,
// reusing the engine's existing backing storage where capacity allows.
// The snapshot itself is untouched and may be restored again.
func (e *Engine) Restore(s *Snapshot) {
	e.now = s.now
	e.seq = s.seq
	e.fired = s.fired
	e.heap = append(e.heap[:0], s.heap...)
	e.slab = append(e.slab[:0], s.slab...)
	e.free = append(e.free[:0], s.free...)
	e.rng.SetState(s.rng)
}

// less orders the calendar: earlier time, then lower priority, then
// earlier scheduling.
//
//litegpu:hotpath
func less(a, b heapEnt) bool {
	if mathx.ExactNe(a.at, b.at) {
		return a.at < b.at
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}

//litegpu:hotpath
func (e *Engine) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !less(e.heap[i], e.heap[parent]) {
			break
		}
		e.swap(i, parent)
		i = parent
	}
}

//litegpu:hotpath
func (e *Engine) siftDown(i int) {
	n := len(e.heap)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && less(e.heap[l], e.heap[min]) {
			min = l
		}
		if r < n && less(e.heap[r], e.heap[min]) {
			min = r
		}
		if min == i {
			return
		}
		e.swap(i, min)
		i = min
	}
}

//litegpu:hotpath
func (e *Engine) swap(i, j int) {
	e.heap[i], e.heap[j] = e.heap[j], e.heap[i]
	e.slab[e.heap[i].slot].pos = int32(i)
	e.slab[e.heap[j].slot].pos = int32(j)
}

// removeAt deletes the heap entry at index i, recycles its slab slot
// (bumping the generation so stale EventIDs miss), and restores the
// heap property around the hole.
//
//litegpu:hotpath
func (e *Engine) removeAt(i int) {
	slot := e.heap[i].slot
	ev := &e.slab[slot]
	ev.gen++
	ev.pos = -1
	ev.h = nil
	ev.arg = 0
	e.free = append(e.free, slot)

	last := len(e.heap) - 1
	if i != last {
		e.heap[i] = e.heap[last]
		e.slab[e.heap[i].slot].pos = int32(i)
	}
	e.heap = e.heap[:last]
	if i < last {
		e.siftDown(i)
		e.siftUp(i)
	}
}
