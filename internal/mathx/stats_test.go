package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	s := Summarize(xs)
	if s.N != 5 {
		t.Errorf("N = %d, want 5", s.N)
	}
	if s.Mean != 3 {
		t.Errorf("Mean = %v, want 3", s.Mean)
	}
	if s.Min != 1 || s.Max != 5 {
		t.Errorf("Min/Max = %v/%v, want 1/5", s.Min, s.Max)
	}
	if s.P50 != 3 {
		t.Errorf("P50 = %v, want 3", s.P50)
	}
	wantSD := math.Sqrt(2) // population stddev of 1..5
	if math.Abs(s.Stddev-wantSD) > 1e-12 {
		t.Errorf("Stddev = %v, want %v", s.Stddev, wantSD)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Errorf("empty Summarize = %+v, want zero value", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 10},
		{1, 40},
		{0.5, 25},
		{1.0 / 3.0, 20},
		{-0.5, 10}, // clamped
		{1.5, 40},  // clamped
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.q); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestPercentileEmpty(t *testing.T) {
	if got := Percentile(nil, 0.5); !math.IsNaN(got) {
		t.Errorf("Percentile(nil) = %v, want NaN", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Percentile mutated input: %v", xs)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Errorf("Mean = %v, want 4", got)
	}
	if got := Mean(nil); !math.IsNaN(got) {
		t.Errorf("Mean(nil) = %v, want NaN", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %v, want 2", got)
	}
	if got := GeoMean([]float64{2, -1}); !math.IsNaN(got) {
		t.Errorf("GeoMean with negative = %v, want NaN", got)
	}
	if got := GeoMean(nil); !math.IsNaN(got) {
		t.Errorf("GeoMean(nil) = %v, want NaN", got)
	}
}

func TestBisect(t *testing.T) {
	// Root of x² - 2 in [0, 2] is √2.
	f := func(x float64) float64 { return x*x - 2 }
	x, ok := Bisect(f, 0, 2, 1e-10)
	if !ok {
		t.Fatal("Bisect failed to bracket")
	}
	if math.Abs(x-math.Sqrt2) > 1e-9 {
		t.Errorf("Bisect = %v, want %v", x, math.Sqrt2)
	}
}

func TestBisectDecreasing(t *testing.T) {
	// Decreasing function: 2 - x, root at 2.
	x, ok := Bisect(func(x float64) float64 { return 2 - x }, 0, 5, 1e-10)
	if !ok || math.Abs(x-2) > 1e-9 {
		t.Errorf("Bisect = %v ok=%v, want 2", x, ok)
	}
}

func TestBisectNoBracket(t *testing.T) {
	_, ok := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-10)
	if ok {
		t.Error("Bisect reported success without a bracketed root")
	}
}

func TestBisectEndpointRoot(t *testing.T) {
	x, ok := Bisect(func(x float64) float64 { return x }, 0, 1, 1e-10)
	if !ok || x != 0 {
		t.Errorf("Bisect endpoint root = %v ok=%v, want 0", x, ok)
	}
}

func TestClamp(t *testing.T) {
	tests := []struct{ x, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-5, 0, 10, 0},
		{15, 0, 10, 10},
	}
	for _, tt := range tests {
		if got := Clamp(tt.x, tt.lo, tt.hi); got != tt.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", tt.x, tt.lo, tt.hi, got, tt.want)
		}
	}
}

func TestDivisors(t *testing.T) {
	tests := []struct {
		n    int
		want []int
	}{
		{1, []int{1}},
		{12, []int{1, 2, 3, 4, 6, 12}},
		{64, []int{1, 2, 4, 8, 16, 32, 64}},
		{96, []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 96}},
		{0, nil},
		{-4, nil},
	}
	for _, tt := range tests {
		got := Divisors(tt.n)
		if len(got) != len(tt.want) {
			t.Errorf("Divisors(%d) = %v, want %v", tt.n, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("Divisors(%d) = %v, want %v", tt.n, got, tt.want)
				break
			}
		}
	}
}

// Property: every reported divisor divides n, and the count is symmetric.
func TestDivisorsProperty(t *testing.T) {
	f := func(raw uint8) bool {
		n := int(raw) + 1
		ds := Divisors(n)
		for _, d := range ds {
			if n%d != 0 {
				return false
			}
		}
		// 1 and n always present.
		return ds[0] == 1 && ds[len(ds)-1] == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: percentile is monotone in q.
func TestPercentileMonotoneProperty(t *testing.T) {
	r := NewRNG(123)
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = r.Float64() * 100
	}
	f := func(a, b uint8) bool {
		q1 := float64(a) / 255
		q2 := float64(b) / 255
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		return Percentile(xs, q1) <= Percentile(xs, q2)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Summarize min ≤ p50 ≤ p999 ≤ max for any sample.
func TestSummarizeOrderProperty(t *testing.T) {
	f := func(raws []uint16) bool {
		if len(raws) == 0 {
			return true
		}
		xs := make([]float64, len(raws))
		for i, v := range raws {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		return s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.P999 && s.P999 <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
