package mathx

import (
	"math"
	"sort"
)

// Summary holds the summary statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
	P50    float64
	P90    float64
	P99    float64
	P999   float64
}

// Summarize computes summary statistics over xs. An empty sample yields a
// zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	n := float64(len(xs))
	s.Mean = sum / n
	variance := sumSq/n - s.Mean*s.Mean
	if variance > 0 {
		s.Stddev = math.Sqrt(variance)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = quantileSorted(sorted, 0.50)
	s.P90 = quantileSorted(sorted, 0.90)
	s.P99 = quantileSorted(sorted, 0.99)
	s.P999 = quantileSorted(sorted, 0.999)
	return s
}

// Percentile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks. It copies and sorts xs.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// quantileSorted returns the q-quantile of an already sorted sample.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or NaN for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// non-positive inputs yield NaN.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Bisect finds x in [lo, hi] with f(x) ≈ 0, assuming f is monotone and
// f(lo), f(hi) bracket a root. It returns the midpoint after the interval
// shrinks below tol or 200 iterations, whichever comes first. ok is false
// when the initial interval does not bracket a root.
func Bisect(f func(float64) float64, lo, hi, tol float64) (x float64, ok bool) {
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo, true
	}
	if fhi == 0 {
		return hi, true
	}
	if (flo > 0) == (fhi > 0) {
		return 0, false
	}
	for i := 0; i < 200 && hi-lo > tol; i++ {
		mid := lo + (hi-lo)/2
		fm := f(mid)
		if fm == 0 {
			return mid, true
		}
		if (fm > 0) == (flo > 0) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2, true
}

// Clamp returns x limited to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Divisors returns the positive divisors of n in ascending order.
// The tensor-parallel search uses it to enumerate legal TP degrees
// (divisors of the attention-head count).
func Divisors(n int) []int {
	if n <= 0 {
		return nil
	}
	var ds []int
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			ds = append(ds, d)
			if d != n/d {
				ds = append(ds, n/d)
			}
		}
	}
	sort.Ints(ds)
	return ds
}
