package mathx

import "math"

import "testing"

func TestExactEq(t *testing.T) {
	cases := []struct {
		a, b float64
		eq   bool
	}{
		{1.5, 1.5, true},
		{1.5, 1.5000000001, false},
		{0, math.Copysign(0, -1), true}, // -0 == +0 under IEEE
		{math.NaN(), math.NaN(), false}, // NaN is not equal to itself
		{math.NaN(), 1, false},
		{math.Inf(1), math.Inf(1), true},
	}
	for _, c := range cases {
		if got := ExactEq(c.a, c.b); got != c.eq {
			t.Errorf("ExactEq(%v, %v) = %v, want %v", c.a, c.b, got, c.eq)
		}
		if got := ExactNe(c.a, c.b); got != !c.eq {
			t.Errorf("ExactNe(%v, %v) = %v, want %v", c.a, c.b, got, !c.eq)
		}
	}
}
