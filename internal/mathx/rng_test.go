package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seeded generators diverged at draw %d", i)
		}
	}
}

func TestRNGDistinctSeeds(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("distinct seeds produced %d identical draws out of 100", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want ≈0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) hit only %d distinct values in 1000 draws", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(99)
	child := r.Split()
	// The child stream must differ from the parent's continued stream.
	differ := false
	for i := 0; i < 20; i++ {
		if r.Uint64() != child.Uint64() {
			differ = true
			break
		}
	}
	if !differ {
		t.Error("split stream tracks parent stream")
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(5)
	const rate = 2.0
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exponential(rate)
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Errorf("exponential mean = %v, want ≈%v", mean, 1/rate)
	}
}

func TestExponentialNonNegative(t *testing.T) {
	r := NewRNG(6)
	for i := 0; i < 10000; i++ {
		if v := r.Exponential(3); v < 0 {
			t.Fatalf("Exponential draw %v < 0", v)
		}
	}
}

func TestExponentialZeroRate(t *testing.T) {
	r := NewRNG(1)
	if v := r.Exponential(0); !math.IsInf(v, 1) {
		t.Errorf("Exponential(0) = %v, want +Inf", v)
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(8)
	const mu, sigma = 5.0, 2.0
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Normal(mu, sigma)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-mu) > 0.03 {
		t.Errorf("normal mean = %v, want ≈%v", mean, mu)
	}
	if math.Abs(sd-sigma) > 0.03 {
		t.Errorf("normal stddev = %v, want ≈%v", sd, sigma)
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := NewRNG(9)
	const mu, sigma = 1.0, 0.5
	const n = 100001
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.LogNormal(mu, sigma)
	}
	med := Percentile(xs, 0.5)
	want := math.Exp(mu)
	if math.Abs(med-want)/want > 0.03 {
		t.Errorf("lognormal median = %v, want ≈%v", med, want)
	}
}

func TestPoissonMean(t *testing.T) {
	r := NewRNG(10)
	for _, mean := range []float64{0.5, 4, 20, 200} {
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean)/math.Max(mean, 1) > 0.05 {
			t.Errorf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
}

func TestPoissonZeroMean(t *testing.T) {
	r := NewRNG(2)
	if v := r.Poisson(0); v != 0 {
		t.Errorf("Poisson(0) = %d, want 0", v)
	}
	if v := r.Poisson(-1); v != 0 {
		t.Errorf("Poisson(-1) = %d, want 0", v)
	}
}

func TestWeibullShapeOneIsExponential(t *testing.T) {
	r := NewRNG(12)
	const scale = 3.0
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Weibull(1, scale)
	}
	mean := sum / n
	// Weibull(shape=1, scale) has mean = scale.
	if math.Abs(mean-scale)/scale > 0.02 {
		t.Errorf("Weibull(1,%v) mean = %v, want ≈%v", scale, mean, scale)
	}
}

func TestWeibullInvalidParams(t *testing.T) {
	r := NewRNG(1)
	if v := r.Weibull(0, 1); !math.IsInf(v, 1) {
		t.Errorf("Weibull(0,1) = %v, want +Inf", v)
	}
	if v := r.Weibull(1, 0); !math.IsInf(v, 1) {
		t.Errorf("Weibull(1,0) = %v, want +Inf", v)
	}
}

func TestLogNormalParams(t *testing.T) {
	mu, sigma := LogNormalParams(1500, 6000)
	if math.Abs(math.Exp(mu)-1500) > 1e-9 {
		t.Errorf("median mismatch: exp(mu) = %v", math.Exp(mu))
	}
	// Check that the p99 of the resulting distribution is near 6000.
	const z99 = 2.3263478740408408
	p99 := math.Exp(mu + z99*sigma)
	if math.Abs(p99-6000)/6000 > 1e-9 {
		t.Errorf("p99 mismatch: got %v", p99)
	}
}

func TestLogNormalParamsDegenerate(t *testing.T) {
	mu, sigma := LogNormalParams(100, 50) // p99 < median: degenerate
	if sigma != 0 {
		t.Errorf("sigma = %v, want 0 for degenerate input", sigma)
	}
	if math.Abs(math.Exp(mu)-100) > 1e-9 {
		t.Errorf("exp(mu) = %v, want 100", math.Exp(mu))
	}
}

// Property: Weibull draws are always non-negative for valid parameters.
func TestWeibullNonNegativeProperty(t *testing.T) {
	r := NewRNG(77)
	f := func(rawShape, rawScale uint8) bool {
		shape := float64(rawShape)/32 + 0.1
		scale := float64(rawScale)/16 + 0.1
		return r.Weibull(shape, scale) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDeriveSeedDistinctAndStable(t *testing.T) {
	seen := make(map[uint64]uint64)
	for base := uint64(0); base < 4; base++ {
		for i := uint64(0); i < 1000; i++ {
			s := DeriveSeed(base, i)
			if s != DeriveSeed(base, i) {
				t.Fatal("DeriveSeed not deterministic")
			}
			if prev, dup := seen[s]; dup {
				t.Fatalf("collision: seed %d from (base=%d,i=%d) and earlier key %d", s, base, i, prev)
			}
			seen[s] = base*1000 + i
		}
	}
	// Derived streams should look independent: consecutive indices must
	// not yield consecutive generator states.
	a := NewRNG(DeriveSeed(42, 0)).Float64()
	b := NewRNG(DeriveSeed(42, 1)).Float64()
	if a == b {
		t.Error("adjacent indices produced identical first draws")
	}
}
