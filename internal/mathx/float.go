package mathx

// ExactEq reports whether a and b are exactly equal under IEEE-754 ==.
//
// In simulation packages, exact float equality is usually *correct*:
// values compared this way are assigned sentinels (0 means "no step in
// flight") or copies of one another, never results of differing
// computations, and the golden corpora pin their exact evolution. The
// litegpu-lint floatcmp analyzer flags bare ==/!= on floats precisely
// so that intentional exact comparisons are routed here, where the name
// says what the operator cannot. IEEE semantics are preserved: NaN is
// not ExactEq to anything, and -0 is ExactEq to +0.
func ExactEq(a, b float64) bool {
	return a == b
}

// ExactNe reports whether a and b differ under IEEE-754 !=. It is the
// negation of [ExactEq]; NaN is ExactNe to everything, including NaN.
func ExactNe(a, b float64) bool {
	return a != b
}
