// Package mathx provides the numeric substrate shared by the litegpu
// models: a deterministic random number generator, the probability
// distributions the workload and failure models draw from, summary
// statistics, and a bisection root finder.
//
// Everything stochastic in this repository flows through mathx.RNG with an
// explicit seed so that every experiment regenerates byte-identically.
package mathx

import "math"

// RNG is a deterministic pseudo-random generator based on SplitMix64.
// SplitMix64 passes BigCrush, needs only one uint64 of state, and — unlike
// math/rand's global generator — makes seeding explicit and cheap, which is
// what reproducible simulation requires. The zero value is a valid
// generator seeded with 0.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Distinct seeds yield
// independent-looking streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	// Use the top 53 bits for a full-precision mantissa.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mathx: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// State returns the generator's internal state word. Together with
// SetState it lets simulators snapshot and later restore a stream
// mid-run (sim.Engine.Snapshot/Restore): SplitMix64's entire state is
// one uint64, so a saved state replays the exact remaining sequence.
func (r *RNG) State() uint64 { return r.state }

// SetState rewinds (or fast-forwards) the generator to a state
// previously obtained from State.
func (r *RNG) SetState(state uint64) { r.state = state }

// Split returns a new generator whose stream is independent of r's
// continued output. It is used to give each simulated component its own
// stream so that adding draws in one component does not perturb another.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() ^ 0xD1B54A32D192ED03}
}

// Exponential returns a draw from the exponential distribution with the
// given rate (events per unit time). Mean is 1/rate.
func (r *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		return math.Inf(1)
	}
	u := r.Float64()
	// 1-u is in (0, 1], avoiding log(0).
	return -math.Log(1-u) / rate
}

// Normal returns a draw from the normal distribution N(mu, sigma²) using
// the Box–Muller transform.
func (r *RNG) Normal(mu, sigma float64) float64 {
	u1 := r.Float64()
	u2 := r.Float64()
	// Guard against u1 == 0.
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mu + sigma*z
}

// LogNormal returns a draw whose logarithm is N(mu, sigma²). Production
// LLM token-length distributions are well approximated by lognormals.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Poisson returns a draw from the Poisson distribution with the given
// mean. It uses Knuth's method for small means and a normal approximation
// for large ones, which is accurate to within the needs of workload
// synthesis.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		// Normal approximation with continuity correction.
		v := r.Normal(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Weibull returns a draw from the Weibull distribution with the given
// shape k and scale lambda. Shape < 1 models infant mortality, shape == 1
// is exponential, shape > 1 models wear-out — the standard menu for
// hardware lifetime modeling.
func (r *RNG) Weibull(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		return math.Inf(1)
	}
	u := r.Float64()
	return scale * math.Pow(-math.Log(1-u), 1/shape)
}

// DeriveSeed deterministically derives an independent-looking child seed
// from a base seed and a point index. Parallel sweeps use it to give
// every grid cell its own RNG stream keyed by the cell's position, so a
// sweep's results are byte-identical no matter how many workers ran it
// or in what order. The mixing is the SplitMix64 output function applied
// to the (base, index) pair, matching the quality of RNG.Split.
func DeriveSeed(base uint64, index uint64) uint64 {
	z := base + 0x9E3779B97F4A7C15*(index+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// LogNormalParams converts a desired median and p99 into (mu, sigma) for
// LogNormal. The median of a lognormal is exp(mu) and quantiles scale with
// sigma; this helper lets trace generators pin published medians directly.
func LogNormalParams(median, p99 float64) (mu, sigma float64) {
	if median <= 0 || p99 <= median {
		return math.Log(math.Max(median, 1)), 0
	}
	mu = math.Log(median)
	// Phi^-1(0.99) = 2.3263478740408408
	const z99 = 2.3263478740408408
	sigma = (math.Log(p99) - mu) / z99
	return mu, sigma
}
