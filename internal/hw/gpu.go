// Package hw describes GPU hardware: the spec sheet quantities the
// litegpu models consume (compute throughput, memory capacity and
// bandwidth, network bandwidth, SM count, die geometry, power), the
// Table 1 configuration catalog from the paper, and the derivation
// operators that turn a parent GPU into Lite-GPU variants.
package hw

import (
	"fmt"
	"math"

	"litegpu/internal/units"
)

// GPU is a single GPU package specification. The five headline fields
// (FLOPS, Capacity, MemBW, NetBW, MaxGPUs) mirror Table 1 of the paper;
// the remainder support the die, power, and reliability models.
type GPU struct {
	// Name identifies the configuration, e.g. "H100" or "Lite+NetBW".
	Name string

	// FLOPS is peak dense compute throughput at the modeled precision
	// (FP8 for the Table 1 values).
	FLOPS units.FLOPSRate

	// Capacity is HBM capacity.
	Capacity units.Bytes

	// MemBW is HBM bandwidth.
	MemBW units.BytesPerSec

	// NetBW is unidirectional off-package network bandwidth.
	NetBW units.BytesPerSec

	// SMs is the number of streaming multiprocessors; the paper's
	// efficiency metric normalizes throughput by total SMs.
	SMs int

	// MaxGPUs is the largest cluster size the paper's search considers
	// for this GPU type.
	MaxGPUs int

	// DieArea is the compute die area per die.
	DieArea units.MM2

	// DiesPerPackage is the number of compute dies in the package
	// (1 for H100 and Lite-GPUs, 2 for Blackwell-class parts).
	DiesPerPackage int

	// TDP is the package thermal design power.
	TDP units.Watts

	// BaseClock is the sustained boost clock at TDP.
	BaseClock units.Hertz
}

// Validate reports the first inconsistency in the spec, or nil.
func (g GPU) Validate() error {
	switch {
	case g.Name == "":
		return fmt.Errorf("hw: GPU has empty name")
	case g.FLOPS <= 0:
		return fmt.Errorf("hw: %s: non-positive FLOPS", g.Name)
	case g.Capacity <= 0:
		return fmt.Errorf("hw: %s: non-positive capacity", g.Name)
	case g.MemBW <= 0:
		return fmt.Errorf("hw: %s: non-positive memory bandwidth", g.Name)
	case g.NetBW < 0:
		return fmt.Errorf("hw: %s: negative network bandwidth", g.Name)
	case g.SMs <= 0:
		return fmt.Errorf("hw: %s: non-positive SM count", g.Name)
	case g.MaxGPUs <= 0:
		return fmt.Errorf("hw: %s: non-positive max cluster size", g.Name)
	case g.DiesPerPackage < 0:
		return fmt.Errorf("hw: %s: negative dies per package", g.Name)
	}
	return nil
}

// FLOPSPerSM returns per-SM compute throughput, the denominator of the
// paper's tokens/s/SM efficiency metric.
func (g GPU) FLOPSPerSM() units.FLOPSRate {
	if g.SMs == 0 {
		return 0
	}
	return g.FLOPS / units.FLOPSRate(g.SMs)
}

// MemBWPerFLOPS returns the memory bandwidth-to-compute ratio in
// bytes per FLOP. Lite-GPUs raise this ratio via extra shoreline.
func (g GPU) MemBWPerFLOPS() float64 {
	if g.FLOPS == 0 {
		return math.Inf(1)
	}
	return float64(g.MemBW) / float64(g.FLOPS)
}

// NetBWPerFLOPS returns the network bandwidth-to-compute ratio in
// bytes per FLOP.
func (g GPU) NetBWPerFLOPS() float64 {
	if g.FLOPS == 0 {
		return math.Inf(1)
	}
	return float64(g.NetBW) / float64(g.FLOPS)
}

// PowerDensity returns TDP divided by total die area (W/mm²), the
// quantity that drives cooling difficulty in the power model.
func (g GPU) PowerDensity() float64 {
	area := float64(g.DieArea) * float64(maxInt(g.DiesPerPackage, 1))
	if area == 0 {
		return 0
	}
	return float64(g.TDP) / area
}

// Scale returns a copy of g with compute, memory, network, SM count, die
// area, and TDP multiplied by frac, and MaxGPUs divided by frac. This is
// the paper's Lite-GPU construction: Scale(1/4) applied to an H100 yields
// the "Lite" row of Table 1 (with MaxGPUs going 8 → 32).
//
// Die area scales linearly with compute here because a Lite-GPU is a
// smaller instance of the same microarchitecture at the same process node.
func (g GPU) Scale(frac float64) GPU {
	if frac <= 0 {
		panic("hw: Scale requires a positive fraction")
	}
	s := g
	s.Name = fmt.Sprintf("%s×%.3g", g.Name, frac)
	s.FLOPS = units.FLOPSRate(float64(g.FLOPS) * frac)
	s.Capacity = units.Bytes(float64(g.Capacity) * frac)
	s.MemBW = units.BytesPerSec(float64(g.MemBW) * frac)
	s.NetBW = units.BytesPerSec(float64(g.NetBW) * frac)
	s.SMs = int(math.Round(float64(g.SMs) * frac))
	s.MaxGPUs = int(math.Round(float64(g.MaxGPUs) / frac))
	s.DieArea = units.MM2(float64(g.DieArea) * frac)
	s.TDP = units.Watts(float64(g.TDP) * frac)
	return s
}

// WithName returns a copy of g renamed to name.
func (g GPU) WithName(name string) GPU {
	g.Name = name
	return g
}

// WithNetBW returns a copy of g with network bandwidth set to bw.
func (g GPU) WithNetBW(bw units.BytesPerSec) GPU {
	g.NetBW = bw
	return g
}

// WithMemBW returns a copy of g with memory bandwidth set to bw.
func (g GPU) WithMemBW(bw units.BytesPerSec) GPU {
	g.MemBW = bw
	return g
}

// WithFLOPS returns a copy of g with peak compute set to f.
func (g GPU) WithFLOPS(f units.FLOPSRate) GPU {
	g.FLOPS = f
	return g
}

// Overclock returns a copy of g with compute throughput and TDP scaled by
// factor (> 1 overclocks, < 1 down-clocks). Dynamic power grows faster
// than linearly with frequency because voltage rises with it; the power
// model owns the precise curve, so here TDP uses the conventional
// first-order f³ dynamic scaling on the dynamic fraction of TDP.
func (g GPU) Overclock(factor float64) GPU {
	if factor <= 0 {
		panic("hw: Overclock requires a positive factor")
	}
	s := g
	s.FLOPS = units.FLOPSRate(float64(g.FLOPS) * factor)
	s.BaseClock = units.Hertz(float64(g.BaseClock) * factor)
	const dynamicFraction = 0.7 // typical dynamic share of GPU TDP
	dyn := float64(g.TDP) * dynamicFraction * factor * factor * factor
	static := float64(g.TDP) * (1 - dynamicFraction)
	s.TDP = units.Watts(dyn + static)
	return s
}

// String renders the Table 1 row for g.
func (g GPU) String() string {
	return fmt.Sprintf("%s: %s, %s HBM @ %s, net %s, %d SMs, ≤%d GPUs",
		g.Name, g.FLOPS, g.Capacity, g.MemBW, g.NetBW, g.SMs, g.MaxGPUs)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
