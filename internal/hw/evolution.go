package hw

import "litegpu/internal/units"

// Generation is one entry in the "evolution of GPUs in AI clusters"
// timeline the paper's Figure 1 sketches: successive datacenter GPUs pack
// more transistors and more dies into one increasingly complex package.
type Generation struct {
	Name        string
	Year        int
	ProcessNM   float64   // marketing node, nm
	Transistors float64   // per package
	Dies        int       // compute dies per package
	DieArea     units.MM2 // per compute die
	TDP         units.Watts
	HBM         units.Bytes
	Packaging   string // packaging technology
}

// Evolution returns the GPU-generation timeline behind Figure 1, from the
// single-die P100 to the dual-die Blackwell parts whose packaging and
// cooling issues motivate the paper.
func Evolution() []Generation {
	return []Generation{
		{
			Name: "P100", Year: 2016, ProcessNM: 16,
			Transistors: 15.3e9, Dies: 1, DieArea: 610,
			TDP: 300, HBM: 16 * units.GB, Packaging: "CoWoS",
		},
		{
			Name: "V100", Year: 2017, ProcessNM: 12,
			Transistors: 21.1e9, Dies: 1, DieArea: 815,
			TDP: 300, HBM: 32 * units.GB, Packaging: "CoWoS",
		},
		{
			Name: "A100", Year: 2020, ProcessNM: 7,
			Transistors: 54.2e9, Dies: 1, DieArea: 826,
			TDP: 400, HBM: 80 * units.GB, Packaging: "CoWoS",
		},
		{
			Name: "H100", Year: 2022, ProcessNM: 4,
			Transistors: 80e9, Dies: 1, DieArea: 814,
			TDP: 700, HBM: 80 * units.GB, Packaging: "CoWoS-S",
		},
		{
			Name: "B200", Year: 2024, ProcessNM: 4,
			Transistors: 208e9, Dies: 2, DieArea: 800,
			TDP: 1000, HBM: 192 * units.GB, Packaging: "CoWoS-L dual-die",
		},
		{
			Name: "GB200 NVL72", Year: 2024, ProcessNM: 4,
			Transistors: 416e9, Dies: 4, DieArea: 800,
			TDP: 2700, HBM: 384 * units.GB, Packaging: "superchip (2×B200+Grace)",
		},
	}
}

// TransistorGrowth returns the multiplicative transistor growth of the
// last generation over the first — the scaling squeeze Figure 1 depicts.
func TransistorGrowth(gens []Generation) float64 {
	if len(gens) < 2 {
		return 1
	}
	first, last := gens[0], gens[len(gens)-1]
	if first.Transistors <= 0 {
		return 1
	}
	return last.Transistors / first.Transistors
}
