package hw

import "litegpu/internal/units"

// The Table 1 catalog. Values are verbatim from the paper:
//
//	GPU type            TFLOPS  Cap GB  MemBW GB/s  NetBW GB/s  #Max GPUs
//	H100                2000    80      3352        450         8
//	Lite                500     20      838         112.5       32
//	Lite+NetBW          500     20      838         225         32
//	Lite+NetBW+FLOPS    550     20      419         225         32
//	Lite+MemBW          500     20      1675        112.5       32
//	Lite+MemBW+NetBW    500     20      1675        225         32
//
// The H100 die/power/clock figures come from the Hopper whitepaper
// (814 mm² die, 700 W SXM TDP, 132 SMs, 1.98 GHz boost); Lite variants
// inherit one quarter of area, TDP and SMs.

// H100 returns the paper's baseline GPU.
func H100() GPU {
	return GPU{
		Name:           "H100",
		FLOPS:          2000 * units.Tera,
		Capacity:       80 * units.GB,
		MemBW:          3352 * units.GB,
		NetBW:          450 * units.GB,
		SMs:            132,
		MaxGPUs:        8,
		DieArea:        814,
		DiesPerPackage: 1,
		TDP:            700,
		BaseClock:      1.98 * units.Giga,
	}
}

// Lite returns the basic Lite-GPU: an H100 scaled to one quarter in every
// capability, exactly the "Lite" row of Table 1.
func Lite() GPU {
	return GPU{
		Name:           "Lite",
		FLOPS:          500 * units.Tera,
		Capacity:       20 * units.GB,
		MemBW:          838 * units.GB,
		NetBW:          112.5 * units.GB,
		SMs:            33,
		MaxGPUs:        32,
		DieArea:        814.0 / 4,
		DiesPerPackage: 1,
		TDP:            175,
		BaseClock:      1.98 * units.Giga,
	}
}

// LiteNetBW returns Lite with network bandwidth doubled to 225 GB/s,
// spending part of the extra shoreline on networking.
func LiteNetBW() GPU {
	return Lite().WithNetBW(225 * units.GB).WithName("Lite+NetBW")
}

// LiteNetBWFLOPS returns Lite+NetBW with compute raised to 550 TFLOPS via
// overclocking (easier cooling) and memory bandwidth halved to 419 GB/s —
// Table 1's deliberate FLOPS-for-bandwidth trade.
func LiteNetBWFLOPS() GPU {
	g := LiteNetBW().
		WithFLOPS(550 * units.Tera).
		WithMemBW(419 * units.GB).
		WithName("Lite+NetBW+FLOPS")
	return g
}

// LiteMemBW returns Lite with memory bandwidth doubled to 1675 GB/s,
// spending the extra shoreline on HBM interfaces.
func LiteMemBW() GPU {
	return Lite().WithMemBW(1675 * units.GB).WithName("Lite+MemBW")
}

// LiteMemBWNetBW returns Lite with both memory (1675 GB/s) and network
// (225 GB/s) bandwidth doubled.
func LiteMemBWNetBW() GPU {
	return LiteMemBW().WithNetBW(225 * units.GB).WithName("Lite+MemBW+NetBW")
}

// Table1 returns the six configurations of Table 1 in paper order.
func Table1() []GPU {
	return []GPU{
		H100(),
		Lite(),
		LiteNetBW(),
		LiteNetBWFLOPS(),
		LiteMemBW(),
		LiteMemBWNetBW(),
	}
}

// PrefillConfigs returns the configurations plotted in Figure 3a.
func PrefillConfigs() []GPU {
	return []GPU{H100(), Lite(), LiteNetBW(), LiteNetBWFLOPS()}
}

// DecodeConfigs returns the configurations plotted in Figure 3b.
func DecodeConfigs() []GPU {
	return []GPU{H100(), Lite(), LiteMemBW(), LiteMemBWNetBW()}
}

// ByName returns the cataloged configuration with the given name.
func ByName(name string) (GPU, bool) {
	for _, g := range Table1() {
		if g.Name == name {
			return g, true
		}
	}
	return GPU{}, false
}
