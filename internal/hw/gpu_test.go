package hw

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"litegpu/internal/units"
)

func TestTable1MatchesPaper(t *testing.T) {
	// The six rows of Table 1, verbatim.
	want := []struct {
		name   string
		tflops float64
		capGB  float64
		memGBs float64
		netGBs float64
		maxG   int
	}{
		{"H100", 2000, 80, 3352, 450, 8},
		{"Lite", 500, 20, 838, 112.5, 32},
		{"Lite+NetBW", 500, 20, 838, 225, 32},
		{"Lite+NetBW+FLOPS", 550, 20, 419, 225, 32},
		{"Lite+MemBW", 500, 20, 1675, 112.5, 32},
		{"Lite+MemBW+NetBW", 500, 20, 1675, 225, 32},
	}
	got := Table1()
	if len(got) != len(want) {
		t.Fatalf("Table1 has %d rows, want %d", len(got), len(want))
	}
	for i, w := range want {
		g := got[i]
		if g.Name != w.name {
			t.Errorf("row %d: name %q, want %q", i, g.Name, w.name)
		}
		if math.Abs(float64(g.FLOPS)-w.tflops*units.Tera) > 1 {
			t.Errorf("%s: FLOPS = %v, want %v TFLOPS", w.name, g.FLOPS, w.tflops)
		}
		if math.Abs(float64(g.Capacity)-w.capGB*units.GB) > 1 {
			t.Errorf("%s: capacity = %v, want %v GB", w.name, g.Capacity, w.capGB)
		}
		if math.Abs(float64(g.MemBW)-w.memGBs*units.GB) > 1 {
			t.Errorf("%s: mem BW = %v, want %v GB/s", w.name, g.MemBW, w.memGBs)
		}
		if math.Abs(float64(g.NetBW)-w.netGBs*units.GB) > 1 {
			t.Errorf("%s: net BW = %v, want %v GB/s", w.name, g.NetBW, w.netGBs)
		}
		if g.MaxGPUs != w.maxG {
			t.Errorf("%s: max GPUs = %d, want %d", w.name, g.MaxGPUs, w.maxG)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: invalid: %v", w.name, err)
		}
	}
}

func TestLiteIsQuarterH100(t *testing.T) {
	h, l := H100(), Lite()
	if got := float64(l.FLOPS) / float64(h.FLOPS); got != 0.25 {
		t.Errorf("FLOPS ratio = %v, want 0.25", got)
	}
	if got := float64(l.Capacity) / float64(h.Capacity); got != 0.25 {
		t.Errorf("capacity ratio = %v, want 0.25", got)
	}
	if got := float64(l.NetBW) / float64(h.NetBW); got != 0.25 {
		t.Errorf("net BW ratio = %v, want 0.25", got)
	}
	// 838/3352 = 0.25 exactly
	if got := float64(l.MemBW) / float64(h.MemBW); got != 0.25 {
		t.Errorf("mem BW ratio = %v, want 0.25", got)
	}
	// 4 Lite-GPUs have the SM count of one H100.
	if l.SMs*4 != h.SMs {
		t.Errorf("SMs: 4×%d ≠ %d", l.SMs, h.SMs)
	}
	// The Lite cluster max matches total SMs of the H100 cluster max.
	if l.SMs*l.MaxGPUs != h.SMs*h.MaxGPUs {
		t.Errorf("max-cluster SMs: %d ≠ %d", l.SMs*l.MaxGPUs, h.SMs*h.MaxGPUs)
	}
}

func TestScale(t *testing.T) {
	h := H100()
	q := h.Scale(0.25)
	if math.Abs(float64(q.FLOPS)-float64(h.FLOPS)/4) > 1 {
		t.Errorf("Scale FLOPS = %v", q.FLOPS)
	}
	if q.SMs != 33 {
		t.Errorf("Scale SMs = %d, want 33", q.SMs)
	}
	if q.MaxGPUs != 32 {
		t.Errorf("Scale MaxGPUs = %d, want 32", q.MaxGPUs)
	}
	if math.Abs(float64(q.DieArea)-814.0/4) > 1e-9 {
		t.Errorf("Scale DieArea = %v", q.DieArea)
	}
	if math.Abs(float64(q.TDP)-175) > 1e-9 {
		t.Errorf("Scale TDP = %v", q.TDP)
	}
}

func TestScalePanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Scale(0) did not panic")
		}
	}()
	H100().Scale(0)
}

func TestWithers(t *testing.T) {
	g := H100().WithNetBW(1).WithMemBW(2).WithFLOPS(3).WithName("x")
	if g.NetBW != 1 || g.MemBW != 2 || g.FLOPS != 3 || g.Name != "x" {
		t.Errorf("withers failed: %+v", g)
	}
	// Original is unchanged (value semantics).
	if H100().NetBW == 1 {
		t.Error("WithNetBW mutated the catalog value")
	}
}

func TestOverclock(t *testing.T) {
	g := H100()
	oc := g.Overclock(1.1)
	if math.Abs(float64(oc.FLOPS)/float64(g.FLOPS)-1.1) > 1e-9 {
		t.Errorf("Overclock FLOPS ratio = %v", float64(oc.FLOPS)/float64(g.FLOPS))
	}
	if oc.TDP <= g.TDP {
		t.Errorf("Overclock did not raise TDP: %v → %v", g.TDP, oc.TDP)
	}
	// Down-clocking lowers power.
	dc := g.Overclock(0.5)
	if dc.TDP >= g.TDP {
		t.Errorf("down-clock did not lower TDP: %v → %v", g.TDP, dc.TDP)
	}
}

func TestOverclockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Overclock(-1) did not panic")
		}
	}()
	H100().Overclock(-1)
}

func TestRatios(t *testing.T) {
	h := H100()
	// H100: 3352/2e6 GB per TFLOP = 0.001676 B/FLOP.
	want := 3352.0 * units.GB / (2000 * units.Tera)
	if got := h.MemBWPerFLOPS(); math.Abs(got-want) > 1e-12 {
		t.Errorf("MemBWPerFLOPS = %v, want %v", got, want)
	}
	// Lite+MemBW doubles the ratio vs H100.
	lm := LiteMemBW()
	if got := lm.MemBWPerFLOPS() / h.MemBWPerFLOPS(); math.Abs(got-2) > 0.01 {
		t.Errorf("Lite+MemBW ratio gain = %v, want ≈2", got)
	}
	var zero GPU
	if !math.IsInf(zero.MemBWPerFLOPS(), 1) {
		t.Error("zero GPU MemBWPerFLOPS should be +Inf")
	}
	if !math.IsInf(zero.NetBWPerFLOPS(), 1) {
		t.Error("zero GPU NetBWPerFLOPS should be +Inf")
	}
}

func TestFLOPSPerSM(t *testing.T) {
	h := H100()
	want := float64(h.FLOPS) / 132
	if got := float64(h.FLOPSPerSM()); math.Abs(got-want) > 1 {
		t.Errorf("FLOPSPerSM = %v, want %v", got, want)
	}
	var zero GPU
	if zero.FLOPSPerSM() != 0 {
		t.Error("zero GPU FLOPSPerSM should be 0")
	}
}

func TestPowerDensityLiteIsNotWorse(t *testing.T) {
	h, l := H100(), Lite()
	// Same W/mm² by construction (both scale linearly)…
	if math.Abs(h.PowerDensity()-l.PowerDensity()) > 1e-9 {
		t.Errorf("power density: H100 %v vs Lite %v", h.PowerDensity(), l.PowerDensity())
	}
	// …but the Lite package dissipates 4× less total heat.
	if float64(l.TDP)*4 != float64(h.TDP) {
		t.Errorf("TDP: 4×%v ≠ %v", l.TDP, h.TDP)
	}
}

func TestValidateCatchesBadSpecs(t *testing.T) {
	good := H100()
	bad := []GPU{
		{},
		good.WithName(""),
		good.WithFLOPS(0),
		func() GPU { g := good; g.Capacity = 0; return g }(),
		func() GPU { g := good; g.MemBW = -1; return g }(),
		func() GPU { g := good; g.NetBW = -1; return g }(),
		func() GPU { g := good; g.SMs = 0; return g }(),
		func() GPU { g := good; g.MaxGPUs = 0; return g }(),
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("bad spec %d passed validation: %+v", i, g)
		}
	}
	if err := good.Validate(); err != nil {
		t.Errorf("good spec failed validation: %v", err)
	}
}

func TestByName(t *testing.T) {
	g, ok := ByName("Lite+MemBW")
	if !ok || g.Name != "Lite+MemBW" {
		t.Errorf("ByName(Lite+MemBW) = %v, %v", g, ok)
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("ByName(nonexistent) reported success")
	}
}

func TestConfigLists(t *testing.T) {
	p := PrefillConfigs()
	if len(p) != 4 || p[0].Name != "H100" || p[3].Name != "Lite+NetBW+FLOPS" {
		t.Errorf("PrefillConfigs = %v", p)
	}
	d := DecodeConfigs()
	if len(d) != 4 || d[2].Name != "Lite+MemBW" || d[3].Name != "Lite+MemBW+NetBW" {
		t.Errorf("DecodeConfigs = %v", d)
	}
}

func TestStringContainsEssentials(t *testing.T) {
	s := H100().String()
	for _, want := range []string{"H100", "2 PFLOP/s", "80 GB", "132 SMs"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestEvolution(t *testing.T) {
	gens := Evolution()
	if len(gens) < 5 {
		t.Fatalf("Evolution has %d generations, want ≥5", len(gens))
	}
	// Years and transistor counts are non-decreasing (the Figure 1 trend).
	for i := 1; i < len(gens); i++ {
		if gens[i].Year < gens[i-1].Year {
			t.Errorf("generation %s predates %s", gens[i].Name, gens[i-1].Name)
		}
		if gens[i].Transistors < gens[i-1].Transistors {
			t.Errorf("transistors shrank from %s to %s", gens[i-1].Name, gens[i].Name)
		}
	}
	// H100 appears and has 1 die; the last generation packs multiple dies.
	foundH100 := false
	for _, g := range gens {
		if g.Name == "H100" {
			foundH100 = true
			if g.Dies != 1 {
				t.Errorf("H100 dies = %d, want 1", g.Dies)
			}
		}
	}
	if !foundH100 {
		t.Error("Evolution missing H100")
	}
	if last := gens[len(gens)-1]; last.Dies < 2 {
		t.Errorf("latest generation %s has %d dies, want ≥2", last.Name, last.Dies)
	}
	if g := TransistorGrowth(gens); g < 10 {
		t.Errorf("TransistorGrowth = %v, want >10×", g)
	}
	if g := TransistorGrowth(nil); g != 1 {
		t.Errorf("TransistorGrowth(nil) = %v, want 1", g)
	}
}

// Property: Scale(a).Scale(b) compute equals Scale(a*b) compute.
func TestScaleCompositionProperty(t *testing.T) {
	f := func(ra, rb uint8) bool {
		a := float64(ra)/256 + 0.1
		b := float64(rb)/256 + 0.1
		g := H100()
		lhs := g.Scale(a).Scale(b)
		rhs := g.Scale(a * b)
		return math.Abs(float64(lhs.FLOPS)-float64(rhs.FLOPS)) < 1e-3*float64(rhs.FLOPS)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: scaling preserves the bandwidth-to-compute ratio.
func TestScalePreservesRatiosProperty(t *testing.T) {
	f := func(raw uint8) bool {
		frac := float64(raw)/256 + 0.05
		g := H100()
		s := g.Scale(frac)
		return math.Abs(s.MemBWPerFLOPS()-g.MemBWPerFLOPS()) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
