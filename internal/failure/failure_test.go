package failure

import (
	"math"
	"testing"

	"litegpu/internal/hw"
	"litegpu/internal/units"
)

func TestAFRScalesWithArea(t *testing.T) {
	p := DefaultParams()
	h := p.AFR(hw.H100())
	l := p.AFR(hw.Lite())
	// H100 AFR = base + ref = 0.055.
	if math.Abs(h-0.055) > 1e-12 {
		t.Errorf("H100 AFR = %v, want 0.055", h)
	}
	// Lite = base + ref/4 = 0.0175: less than 1/3 of the big GPU's.
	if math.Abs(l-0.0175) > 1e-12 {
		t.Errorf("Lite AFR = %v, want 0.0175", l)
	}
	// But 4 Lites fail more often in aggregate than 1 H100 (extra
	// packages): 4×0.0175 = 0.07 > 0.055.
	if 4*l <= h {
		t.Errorf("aggregate Lite AFR (%v) should exceed H100 AFR (%v)", 4*l, h)
	}
}

func TestMTBF(t *testing.T) {
	p := DefaultParams()
	// 5.5%/yr ⇒ MTBF ≈ 18.2 years.
	mtbf := p.MTBF(hw.H100())
	years := float64(mtbf) / float64(Year)
	if math.Abs(years-1/0.055) > 1e-9 {
		t.Errorf("MTBF = %v years, want %v", years, 1/0.055)
	}
	// Zero-rate params give infinite MTBF.
	zero := Params{}
	if !math.IsInf(float64(zero.MTBF(hw.H100())), 1) {
		t.Error("zero AFR should give infinite MTBF")
	}
}

func TestHardwareBlastRadius(t *testing.T) {
	big := Spec{GPU: hw.H100(), InstanceGPUs: 8}
	lite := Spec{GPU: hw.Lite(), InstanceGPUs: 32}
	if big.HardwareBlastRadius() != 0.125 {
		t.Errorf("H100 blast radius = %v, want 1/8", big.HardwareBlastRadius())
	}
	if lite.HardwareBlastRadius() != 1.0/32 {
		t.Errorf("Lite blast radius = %v, want 1/32", lite.HardwareBlastRadius())
	}
	var zero Spec
	if zero.HardwareBlastRadius() != 0 {
		t.Error("zero spec blast radius should be 0")
	}
}

func TestSpareCostFraction(t *testing.T) {
	s := Spec{InstanceGPUs: 32, Spares: 2}
	want := 2.0 / 34.0
	if math.Abs(s.SpareCostFraction()-want) > 1e-12 {
		t.Errorf("spare cost fraction = %v, want %v", s.SpareCostFraction(), want)
	}
	var zero Spec
	if zero.SpareCostFraction() != 0 {
		t.Error("zero spec spare fraction should be 0")
	}
}

func TestAnalyticAvailabilityNoSpares(t *testing.T) {
	p := DefaultParams()
	s := Spec{GPU: hw.H100(), InstanceGPUs: 8}
	// a^8 with a = MTBF/(MTBF+MTTR).
	mtbf := float64(p.MTBF(hw.H100()))
	a := mtbf / (mtbf + float64(p.MTTR))
	want := math.Pow(a, 8)
	got := AnalyticAvailability(s, p)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("availability = %v, want %v", got, want)
	}
}

func TestAnalyticAvailabilitySparesHelp(t *testing.T) {
	p := DefaultParams()
	prev := 0.0
	for spares := 0; spares <= 3; spares++ {
		s := Spec{GPU: hw.Lite(), InstanceGPUs: 32, Spares: spares}
		a := AnalyticAvailability(s, p)
		if a <= prev {
			t.Errorf("availability with %d spares (%v) not above %d spares (%v)",
				spares, a, spares-1, prev)
		}
		prev = a
	}
	// One spare already pushes a 32-unit Lite instance past 0.999.
	one := AnalyticAvailability(Spec{GPU: hw.Lite(), InstanceGPUs: 32, Spares: 1}, p)
	if one < 0.999 {
		t.Errorf("32-unit Lite with 1 spare = %v, want ≥0.999", one)
	}
}

func TestPaperSpareEconomics(t *testing.T) {
	// The paper: Lite clusters suit hot spares because each spare is
	// smaller and cheaper. At EQUAL spare-cost fraction (1 H100 spare ≈
	// 4 Lite spares), the Lite instance achieves higher availability.
	p := DefaultParams()
	c := CompareSpares(hw.H100(), 8, 4, 1, 4, p)
	bigFrac := c.Big.SpareCostFraction()
	liteFrac := c.Lite.SpareCostFraction()
	if math.Abs(bigFrac-liteFrac) > 1e-12 {
		t.Fatalf("spare fractions differ: %v vs %v", bigFrac, liteFrac)
	}
	if c.LiteAvailability <= c.BigAvailability {
		t.Errorf("Lite availability (%v) should beat big (%v) at equal spare cost",
			c.LiteAvailability, c.BigAvailability)
	}
	if c.String() == "" {
		t.Error("empty comparison string")
	}
	// And a FINER spare quantum is available: 1 Lite spare costs 1/32 of
	// the instance versus 1/8 for the H100 spare, yet still beats the
	// unspared H100 instance.
	fine := CompareSpares(hw.H100(), 8, 4, 0, 1, p)
	if fine.LiteAvailability <= fine.BigAvailability {
		t.Errorf("1-Lite-spare availability (%v) should beat spare-less H100 (%v)",
			fine.LiteAvailability, fine.BigAvailability)
	}
}

func TestSimulateMatchesAnalytic(t *testing.T) {
	p := DefaultParams()
	p.RecoveryTime = 0 // analytic model has no takeover cost
	s := Spec{GPU: hw.Lite(), InstanceGPUs: 16, Spares: 1}
	want := AnalyticAvailability(s, p)
	got := Simulate(s, p, 10*Year, 400, 42)
	if math.Abs(got.Availability-want) > 0.005 {
		t.Errorf("simulated availability %v vs analytic %v", got.Availability, want)
	}
}

func TestSimulateDeterministicSeed(t *testing.T) {
	p := DefaultParams()
	s := Spec{GPU: hw.Lite(), InstanceGPUs: 8, Spares: 1}
	a := Simulate(s, p, Year, 50, 7)
	b := Simulate(s, p, Year, 50, 7)
	if a != b {
		t.Error("same seed produced different results")
	}
	c := Simulate(s, p, Year, 50, 8)
	if a == c {
		t.Error("different seeds produced identical results")
	}
}

func TestSimulateDegenerate(t *testing.T) {
	p := DefaultParams()
	if r := Simulate(Spec{}, p, Year, 10, 1); r != (Result{}) {
		t.Errorf("empty spec simulated to %+v", r)
	}
	if r := Simulate(Spec{GPU: hw.Lite(), InstanceGPUs: 4}, p, 0, 10, 1); r != (Result{}) {
		t.Errorf("zero horizon simulated to %+v", r)
	}
	if r := Simulate(Spec{GPU: hw.Lite(), InstanceGPUs: 4}, p, Year, 0, 1); r != (Result{}) {
		t.Errorf("zero trials simulated to %+v", r)
	}
}

func TestSimulateSparesImproveAvailability(t *testing.T) {
	p := DefaultParams()
	horizon := 10 * Year
	none := Simulate(Spec{GPU: hw.Lite(), InstanceGPUs: 32}, p, horizon, 200, 3)
	one := Simulate(Spec{GPU: hw.Lite(), InstanceGPUs: 32, Spares: 1}, p, horizon, 200, 3)
	if one.Availability <= none.Availability {
		t.Errorf("spare did not improve availability: %v vs %v",
			one.Availability, none.Availability)
	}
}

func TestSimulateCountsFailures(t *testing.T) {
	p := DefaultParams()
	// 32 Lite units at 1.75%/yr for 10 years ⇒ ≈5.6 failures expected.
	r := Simulate(Spec{GPU: hw.Lite(), InstanceGPUs: 32}, p, 10*Year, 300, 11)
	perTrial := float64(r.Failures) / 300
	if perTrial < 4 || perTrial > 7.5 {
		t.Errorf("failures per 10-year mission = %v, want ≈5.6", perTrial)
	}
	if r.LostGPUHours <= 0 {
		t.Error("no lost GPU-hours recorded")
	}
}

func TestRecoveryTimePenalizesAvailability(t *testing.T) {
	fast := DefaultParams()
	fast.RecoveryTime = 0
	slow := DefaultParams()
	slow.RecoveryTime = units.Seconds(3600)
	s := Spec{GPU: hw.Lite(), InstanceGPUs: 32, Spares: 2}
	a := Simulate(s, fast, 10*Year, 200, 5)
	b := Simulate(s, slow, 10*Year, 200, 5)
	if b.Availability >= a.Availability {
		t.Errorf("slow recovery (%v) should lower availability (%v)",
			b.Availability, a.Availability)
	}
}
