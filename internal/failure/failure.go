// Package failure models the reliability of GPU clusters: per-package
// failure processes whose rates scale with die area, the blast radius of
// a failure under rigid model-instance deployment (one GPU down takes the
// instance down, as the paper notes today's serving stacks impose), and
// hot-spare policies that shrink effective downtime.
//
// It substantiates the paper's fault-tolerance argument: many small GPUs
// fail more often in aggregate but each failure removes less capacity,
// and because each spare unit is small and cheap, spare provisioning
// costs proportionally less for the same availability.
package failure

import (
	"fmt"
	"math"

	"litegpu/internal/hw"
	"litegpu/internal/mathx"
	"litegpu/internal/units"
)

// Year is one year in seconds, the natural unit for failure rates.
const Year units.Seconds = 365.25 * 24 * 3600

// Params describes the failure and repair processes.
type Params struct {
	// RefAFR is the annualized failure rate of a package with RefArea of
	// silicon (H100-class packages see low-single-digit to ~9% AFRs in
	// production fleets; 5% is the default).
	RefAFR  float64
	RefArea units.MM2

	// BaseAFR is the area-independent per-package failure rate (fans,
	// voltage regulators, connectors). It is what keeps a quarter-area
	// GPU from being exactly 4× more reliable.
	BaseAFR float64

	// MTTR is the mean time to replace/repair a failed unit.
	MTTR units.Seconds

	// RecoveryTime is the service interruption when a hot spare takes
	// over (state re-sharding, reload), much shorter than MTTR.
	RecoveryTime units.Seconds
}

// DefaultParams returns the calibration used by the studies.
func DefaultParams() Params {
	return Params{
		RefAFR:       0.05,
		RefArea:      814,
		BaseAFR:      0.005,
		MTTR:         units.Seconds(24 * 3600),
		RecoveryTime: 60,
	}
}

// AFR returns the annualized failure rate of the given GPU: the base
// package rate plus the silicon rate scaled by die area.
func (p Params) AFR(g hw.GPU) float64 {
	area := float64(g.DieArea) * float64(maxInt(g.DiesPerPackage, 1))
	if p.RefArea <= 0 {
		return p.BaseAFR
	}
	return p.BaseAFR + p.RefAFR*area/float64(p.RefArea)
}

// MTBF returns the mean time between failures of one unit.
func (p Params) MTBF(g hw.GPU) units.Seconds {
	afr := p.AFR(g)
	if afr <= 0 {
		return units.Seconds(math.Inf(1))
	}
	return units.Seconds(float64(Year) / afr)
}

// Spec describes a deployed model instance and its spare pool.
type Spec struct {
	// GPU is the unit type.
	GPU hw.GPU
	// InstanceGPUs is how many GPUs one model instance needs (the
	// software blast radius: any one failing downs the instance until a
	// spare covers it).
	InstanceGPUs int
	// Spares is the number of hot spares kept next to the instance.
	Spares int
}

// HardwareBlastRadius returns the fraction of the instance's compute a
// single package failure physically removes: 1/InstanceGPUs — the
// quantity the paper argues Lite-GPUs shrink.
func (s Spec) HardwareBlastRadius() float64 {
	if s.InstanceGPUs <= 0 {
		return 0
	}
	return 1 / float64(s.InstanceGPUs)
}

// SpareCostFraction returns the share of cluster hardware spent on
// spares: Spares/(InstanceGPUs+Spares).
func (s Spec) SpareCostFraction() float64 {
	total := s.InstanceGPUs + s.Spares
	if total <= 0 {
		return 0
	}
	return float64(s.Spares) / float64(total)
}

// AnalyticAvailability returns the steady-state probability that at most
// `Spares` of the instance's units are down simultaneously, treating each
// unit as an independent alternating renewal process with availability
// a = MTBF/(MTBF+MTTR). This is the binomial k-out-of-n availability of
// the instance with a shared spare pool.
func AnalyticAvailability(s Spec, p Params) float64 {
	n := s.InstanceGPUs + s.Spares
	if n <= 0 {
		return 0
	}
	mtbf := float64(p.MTBF(s.GPU))
	a := mtbf / (mtbf + float64(p.MTTR))
	// P(#down ≤ Spares) over n units.
	q := 1 - a
	var prob float64
	for k := 0; k <= s.Spares; k++ {
		prob += binomPMF(n, k, q)
	}
	return prob
}

func binomPMF(n, k int, q float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	// Compute C(n,k)·q^k·(1−q)^(n−k) in log space for stability.
	lg := lgamma(n+1) - lgamma(k+1) - lgamma(n-k+1)
	return math.Exp(lg + float64(k)*math.Log(q) + float64(n-k)*math.Log(1-q))
}

func lgamma(x int) float64 {
	v, _ := math.Lgamma(float64(x))
	return v
}

// Result summarizes a simulated mission.
type Result struct {
	// Availability is the fraction of mission time the instance served
	// (at most `Spares` units down, counting takeover interruptions).
	Availability float64
	// EffectiveCapacity is the time-averaged served fraction of nominal
	// instance compute (0 while down, 1 while covered).
	EffectiveCapacity float64
	// Failures is the number of unit failures observed.
	Failures int
	// LostGPUHours is the total unit-downtime in hours.
	LostGPUHours float64
}

// Simulate runs a Monte Carlo mission of the given duration with
// exponential unit lifetimes and deterministic repair, averaging over
// trials. The spare pool is shared: the instance is down whenever more
// units are in repair than spares exist, plus a RecoveryTime interruption
// per covered failure (the cost of a spare taking over).
func Simulate(s Spec, p Params, horizon units.Seconds, trials int, seed uint64) Result {
	if s.InstanceGPUs <= 0 || trials <= 0 || horizon <= 0 {
		return Result{}
	}
	rng := mathx.NewRNG(seed)
	var agg Result
	for trial := 0; trial < trials; trial++ {
		r := simulateOnce(s, p, horizon, rng.Split())
		agg.Availability += r.Availability
		agg.EffectiveCapacity += r.EffectiveCapacity
		agg.Failures += r.Failures
		agg.LostGPUHours += r.LostGPUHours
	}
	f := float64(trials)
	agg.Availability /= f
	agg.EffectiveCapacity /= f
	agg.LostGPUHours /= f
	return agg
}

func simulateOnce(s Spec, p Params, horizon units.Seconds, rng *mathx.RNG) Result {
	n := s.InstanceGPUs + s.Spares
	rate := 1 / float64(p.MTBF(s.GPU)) // per second
	// nextEvent[i] is the time of unit i's next transition; down[i]
	// marks units in repair.
	next := make([]float64, n)
	down := make([]bool, n)
	for i := range next {
		next[i] = rng.Exponential(rate)
	}
	var (
		t          float64
		downCount  int
		upTime     float64 // time with instance serving
		interrupts int
	)
	h := float64(horizon)
	for t < h {
		// Find the earliest transition.
		minI, minT := -1, math.Inf(1)
		for i, ti := range next {
			if ti < minT {
				minI, minT = i, ti
			}
		}
		if minT > h {
			minT = h
			minI = -1
		}
		dt := minT - t
		if downCount <= s.Spares {
			upTime += dt
		}
		t = minT
		if minI < 0 {
			break
		}
		if down[minI] {
			down[minI] = false
			downCount--
			next[minI] = t + rng.Exponential(rate)
		} else {
			down[minI] = true
			downCount++
			interrupts++
			next[minI] = t + float64(p.MTTR)
		}
	}
	// Each covered failure still interrupts service for RecoveryTime.
	recovery := float64(p.RecoveryTime) * float64(interrupts)
	upTime = math.Max(upTime-recovery, 0)
	res := Result{
		Availability:      upTime / h,
		EffectiveCapacity: upTime / h,
		Failures:          interrupts,
	}
	res.LostGPUHours = float64(interrupts) * float64(p.MTTR) / 3600
	return res
}

// Compare runs the paper's headline comparison: one H100-class instance
// versus its Lite replacement (instance size × split) at equal spare-cost
// fraction, returning both availabilities.
type Comparison struct {
	Big, Lite        Spec
	BigAvailability  float64
	LiteAvailability float64
}

// CompareSpares builds the comparison with the given spare counts and
// evaluates both analytically.
func CompareSpares(big hw.GPU, instance, split, bigSpares, liteSpares int, p Params) Comparison {
	lite := big.Scale(1 / float64(split))
	c := Comparison{
		Big:  Spec{GPU: big, InstanceGPUs: instance, Spares: bigSpares},
		Lite: Spec{GPU: lite, InstanceGPUs: instance * split, Spares: liteSpares},
	}
	c.BigAvailability = AnalyticAvailability(c.Big, p)
	c.LiteAvailability = AnalyticAvailability(c.Lite, p)
	return c
}

// String renders the comparison.
func (c Comparison) String() string {
	return fmt.Sprintf("big %d+%d spares: %.5f vs lite %d+%d spares: %.5f",
		c.Big.InstanceGPUs, c.Big.Spares, c.BigAvailability,
		c.Lite.InstanceGPUs, c.Lite.Spares, c.LiteAvailability)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
