// Package straggler quantifies the synchronization penalty the paper
// flags for more-distributed clusters: "Lite-GPUs would result in more
// distributed systems in the datacenter... These can potentially amplify
// issues such as synchronization and straggling GPUs."
//
// A tensor-parallel gang advances at the pace of its slowest member:
// per-step time is the maximum of G draws from the per-GPU step-time
// distribution. The expected maximum grows with G — slowly for
// light-tailed jitter, sharply for heavy tails — which is exactly the
// amplification at stake when one H100 gang of 8 becomes a Lite gang of
// 32. The package provides a Monte Carlo estimator plus the closed form
// for exponential-tailed jitter, and the mitigation analysis for
// over-provisioning (run G+k, drop the k slowest — the paper's hot-spare
// utilization question).
package straggler

import (
	"math"
	"sort"

	"litegpu/internal/mathx"
)

// Jitter describes per-step per-GPU time variation: each GPU's step time
// is Base · (1 + X) with X drawn per step.
type Jitter struct {
	// CV is the coefficient of variation of the per-GPU step time
	// (production GPU kernels typically show 1–5%).
	CV float64
	// Tail selects the distribution shape.
	Tail Tail
}

// Tail selects a jitter distribution.
type Tail int

// The jitter shapes studied.
const (
	// Gaussian is light-tailed jitter (clock/thermal noise).
	Gaussian Tail = iota
	// Exponential is heavier-tailed (interference, ECC retries).
	Exponential
	// LogNormal models occasional long stalls (page faults, thermal
	// throttling events).
	LogNormal
)

// String implements fmt.Stringer.
func (t Tail) String() string {
	switch t {
	case Gaussian:
		return "gaussian"
	case Exponential:
		return "exponential"
	case LogNormal:
		return "lognormal"
	default:
		return "unknown"
	}
}

// Draw returns one (1 + X) step-time factor from the jitter
// distribution, floored at 0.5. The serving simulator draws one factor
// per instance from a seeded stream to model persistently slow
// stragglers (serve.StragglerConfig).
func (j Jitter) Draw(rng *mathx.RNG) float64 { return j.draw(rng) }

// draw returns one (1 + X) factor, ≥ some small positive floor.
func (j Jitter) draw(rng *mathx.RNG) float64 {
	var x float64
	switch j.Tail {
	case Gaussian:
		x = rng.Normal(0, j.CV)
	case Exponential:
		// Exponential with mean CV, shifted to zero mean.
		x = rng.Exponential(1/j.CV) - j.CV
	case LogNormal:
		// Lognormal with unit median scaled to the requested CV.
		sigma := math.Sqrt(math.Log(1 + j.CV*j.CV))
		x = rng.LogNormal(-sigma*sigma/2, sigma) - 1
	}
	v := 1 + x
	if v < 0.5 {
		v = 0.5
	}
	return v
}

// GangSlowdown estimates E[max of g draws] / E[one draw]: the factor by
// which gang synchronization inflates step time over a single device,
// by Monte Carlo with the given number of steps.
func GangSlowdown(g int, j Jitter, steps int, seed uint64) float64 {
	if g <= 0 || steps <= 0 {
		return 0
	}
	rng := mathx.NewRNG(seed)
	var sumMax, sumOne float64
	for s := 0; s < steps; s++ {
		worst := 0.0
		for i := 0; i < g; i++ {
			v := j.draw(rng)
			sumOne += v
			if v > worst {
				worst = v
			}
		}
		sumMax += worst
	}
	meanOne := sumOne / float64(steps*g)
	meanMax := sumMax / float64(steps)
	if meanOne <= 0 {
		return 0
	}
	return meanMax / meanOne
}

// ExpectedMaxGaussian returns the closed-form approximation of the gang
// slowdown under Gaussian jitter, using Blom's order-statistic formula
// E[max of g N(0,1)] ≈ Φ⁻¹((g − 0.375)/(g + 0.25)); the slowdown is
// 1 + CV·E[max]. Exposed for cross-checking the Monte Carlo estimator.
func ExpectedMaxGaussian(g int, cv float64) float64 {
	if g <= 1 {
		return 1
	}
	p := (float64(g) - 0.375) / (float64(g) + 0.25)
	z := math.Sqrt2 * math.Erfinv(2*p-1)
	return 1 + cv*z
}

// DropSlowest estimates the slowdown when the gang runs g+k members and
// each step waits only for the fastest g (the paper's hot-spare
// utilization idea applied to stragglers: spare members absorb the tail).
// Returned is E[g-th order statistic of g+k draws] / E[one draw].
func DropSlowest(g, k int, j Jitter, steps int, seed uint64) float64 {
	if g <= 0 || steps <= 0 || k < 0 {
		return 0
	}
	rng := mathx.NewRNG(seed)
	n := g + k
	draws := make([]float64, n)
	var sumKth, sumOne float64
	for s := 0; s < steps; s++ {
		for i := 0; i < n; i++ {
			draws[i] = j.draw(rng)
			sumOne += draws[i]
		}
		sort.Float64s(draws)
		sumKth += draws[g-1] // g-th smallest: the slowest member we wait for
	}
	meanOne := sumOne / float64(steps*n)
	meanKth := sumKth / float64(steps)
	if meanOne <= 0 {
		return 0
	}
	return meanKth / meanOne
}
