package straggler

import (
	"math"
	"testing"
)

func TestGangSlowdownGrowsWithGangSize(t *testing.T) {
	j := Jitter{CV: 0.03, Tail: Gaussian}
	prev := 1.0
	for _, g := range []int{1, 2, 8, 32, 128} {
		s := GangSlowdown(g, j, 20000, 42)
		if s < prev-0.005 {
			t.Errorf("slowdown at gang %d (%v) below smaller gang (%v)", g, s, prev)
		}
		prev = s
	}
	// A gang of one is (statistically) no slower than a lone GPU.
	if one := GangSlowdown(1, j, 20000, 42); math.Abs(one-1) > 0.01 {
		t.Errorf("gang-of-1 slowdown = %v, want ≈1", one)
	}
}

func TestGangSlowdownMatchesGaussianAsymptotic(t *testing.T) {
	// Monte Carlo vs the √(2 ln g) closed form at CV=3%.
	j := Jitter{CV: 0.03, Tail: Gaussian}
	for _, g := range []int{8, 32} {
		mc := GangSlowdown(g, j, 50000, 7)
		cf := ExpectedMaxGaussian(g, 0.03)
		if math.Abs(mc-cf) > 0.01 {
			t.Errorf("gang %d: MC %v vs closed form %v", g, mc, cf)
		}
	}
}

func TestHeavierTailsAmplifyMore(t *testing.T) {
	const g = 32
	gauss := GangSlowdown(g, Jitter{CV: 0.05, Tail: Gaussian}, 30000, 3)
	exp := GangSlowdown(g, Jitter{CV: 0.05, Tail: Exponential}, 30000, 3)
	logn := GangSlowdown(g, Jitter{CV: 0.05, Tail: LogNormal}, 30000, 3)
	if exp <= gauss {
		t.Errorf("exponential tail (%v) should amplify more than gaussian (%v)", exp, gauss)
	}
	if logn <= gauss {
		t.Errorf("lognormal tail (%v) should amplify more than gaussian (%v)", logn, gauss)
	}
}

func TestPaperAmplificationClaim(t *testing.T) {
	// The paper: replacing an 8-GPU gang with a 32-GPU gang amplifies
	// straggling — but the increment is modest for light-tailed jitter
	// (√(2 ln g) growth), which is the quantitative point worth making.
	j := Jitter{CV: 0.03, Tail: Gaussian}
	s8 := GangSlowdown(8, j, 50000, 11)
	s32 := GangSlowdown(32, j, 50000, 11)
	if s32 <= s8 {
		t.Fatalf("32-gang (%v) not slower than 8-gang (%v)", s32, s8)
	}
	// The amplification from 8→32 stays under 3 percentage points at 3% CV.
	if s32-s8 > 0.03 {
		t.Errorf("8→32 amplification = %.4f, expected < 0.03", s32-s8)
	}
}

func TestDropSlowestRecoversSlowdown(t *testing.T) {
	// Running spares and waiting only for the fastest g members cuts the
	// straggler penalty — quantifying the paper's hot-spare utilization
	// idea.
	j := Jitter{CV: 0.05, Tail: LogNormal}
	full := GangSlowdown(32, j, 30000, 5)
	dropped := DropSlowest(32, 2, j, 30000, 5)
	if dropped >= full {
		t.Errorf("drop-2 slowdown (%v) should be below full-gang (%v)", dropped, full)
	}
	// No spares equals the plain gang (same estimator).
	zero := DropSlowest(32, 0, j, 30000, 5)
	if math.Abs(zero-full) > 0.01 {
		t.Errorf("drop-0 (%v) should equal full gang (%v)", zero, full)
	}
}

func TestDegenerateInputs(t *testing.T) {
	j := Jitter{CV: 0.05, Tail: Gaussian}
	if GangSlowdown(0, j, 100, 1) != 0 {
		t.Error("zero gang should return 0")
	}
	if GangSlowdown(4, j, 0, 1) != 0 {
		t.Error("zero steps should return 0")
	}
	if DropSlowest(0, 1, j, 100, 1) != 0 {
		t.Error("zero gang drop should return 0")
	}
	if DropSlowest(4, -1, j, 100, 1) != 0 {
		t.Error("negative spares should return 0")
	}
}

func TestDeterminism(t *testing.T) {
	j := Jitter{CV: 0.04, Tail: Exponential}
	a := GangSlowdown(16, j, 5000, 9)
	b := GangSlowdown(16, j, 5000, 9)
	if a != b {
		t.Error("same seed produced different slowdowns")
	}
}

func TestExpectedMaxGaussianEdge(t *testing.T) {
	if ExpectedMaxGaussian(1, 0.05) != 1 {
		t.Error("g=1 closed form should be 1")
	}
	if ExpectedMaxGaussian(0, 0.05) != 1 {
		t.Error("g=0 closed form should be 1")
	}
}

func TestTailStrings(t *testing.T) {
	for _, tail := range []Tail{Gaussian, Exponential, LogNormal, Tail(9)} {
		if tail.String() == "" {
			t.Error("empty tail string")
		}
	}
}

func TestDrawFloor(t *testing.T) {
	// Draws never go below the 0.5 floor even with huge CV.
	j := Jitter{CV: 2.0, Tail: Gaussian}
	s := GangSlowdown(4, j, 5000, 13)
	if s <= 0 || math.IsNaN(s) {
		t.Errorf("slowdown with huge CV = %v", s)
	}
}
