package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"litegpu/internal/hw"
	"litegpu/internal/units"
)

func TestAllocateWholeUnits(t *testing.T) {
	c := New(hw.H100(), 8) // 132 SMs per unit
	got, ok := c.Allocate("a", 100)
	if !ok || got != 1 {
		t.Errorf("Allocate(100 SMs) = %d, %v; want 1 unit", got, ok)
	}
	got, ok = c.Allocate("b", 133)
	if !ok || got != 2 {
		t.Errorf("Allocate(133 SMs) = %d, %v; want 2 units", got, ok)
	}
	if c.Free() != 5 {
		t.Errorf("free = %d, want 5", c.Free())
	}
}

func TestAllocateRejections(t *testing.T) {
	c := New(hw.H100(), 2)
	if _, ok := c.Allocate("a", 0); ok {
		t.Error("zero demand accepted")
	}
	if _, ok := c.Allocate("a", -5); ok {
		t.Error("negative demand accepted")
	}
	if _, ok := c.Allocate("a", 132); !ok {
		t.Fatal("valid allocation rejected")
	}
	if _, ok := c.Allocate("a", 132); ok {
		t.Error("duplicate id accepted")
	}
	if _, ok := c.Allocate("b", 1000); ok {
		t.Error("oversized allocation accepted")
	}
}

func TestRelease(t *testing.T) {
	c := New(hw.H100(), 4)
	c.Allocate("a", 264)
	if !c.Release("a") {
		t.Error("release of held id failed")
	}
	if c.Free() != 4 {
		t.Errorf("free after release = %d, want 4", c.Free())
	}
	if c.Release("a") {
		t.Error("double release succeeded")
	}
	if c.Release("never") {
		t.Error("release of unknown id succeeded")
	}
}

func TestUsage(t *testing.T) {
	c := New(hw.H100(), 4) // 528 SMs total
	c.Allocate("a", 66)    // gets 132, wastes 66
	u := c.Usage()
	if math.Abs(u.Allocated-132.0/528) > 1e-12 {
		t.Errorf("allocated = %v", u.Allocated)
	}
	if math.Abs(u.Useful-66.0/528) > 1e-12 {
		t.Errorf("useful = %v", u.Useful)
	}
	if math.Abs(u.Stranded-66.0/528) > 1e-12 {
		t.Errorf("stranded = %v", u.Stranded)
	}
	empty := New(hw.H100(), 0)
	if empty.Usage() != (Usage{}) {
		t.Error("empty cluster usage should be zero")
	}
}

func TestFragmentationAt(t *testing.T) {
	// Demand of half a unit strands half of it.
	if f := FragmentationAt(66, 132); math.Abs(f-0.5) > 1e-12 {
		t.Errorf("frag(66,132) = %v, want 0.5", f)
	}
	// Exact fit strands nothing.
	if f := FragmentationAt(132, 132); f != 0 {
		t.Errorf("frag(132,132) = %v, want 0", f)
	}
	// A Lite unit (33 SMs) strands far less on the same demand.
	big := FragmentationAt(66, 132)
	lite := FragmentationAt(66, 33)
	if lite >= big {
		t.Errorf("lite frag %v should be below big frag %v", lite, big)
	}
	if FragmentationAt(0, 132) != 0 || FragmentationAt(10, 0) != 0 {
		t.Error("degenerate fragmentation should be 0")
	}
}

func TestPaperGranularityClaim(t *testing.T) {
	// Equal-capacity clusters, job demands in fractional-GPU sizes: the
	// Lite cluster strands less and serves more useful work.
	bigRes, liteRes := GranularityStudy(hw.H100(), 16, 4, 200, 0.1, 2.5, 42)
	if liteRes.MeanStranded >= bigRes.MeanStranded {
		t.Errorf("lite stranding (%v) should be below big (%v)",
			liteRes.MeanStranded, bigRes.MeanStranded)
	}
	if liteRes.MeanUseful <= bigRes.MeanUseful {
		t.Errorf("lite useful utilization (%v) should exceed big (%v)",
			liteRes.MeanUseful, bigRes.MeanUseful)
	}
	if bigRes.Placed+bigRes.Rejected != 200 || liteRes.Placed+liteRes.Rejected != 200 {
		t.Error("job accounting mismatch")
	}
}

func TestGranularityStudyDeterministic(t *testing.T) {
	a1, l1 := GranularityStudy(hw.H100(), 8, 4, 50, 0.2, 1.5, 7)
	a2, l2 := GranularityStudy(hw.H100(), 8, 4, 50, 0.2, 1.5, 7)
	if a1 != a2 || l1 != l2 {
		t.Error("same seed produced different study results")
	}
}

func TestSimulateStreamReleasesCapacity(t *testing.T) {
	c := New(hw.H100(), 1)
	jobs := []Job{
		{ID: "a", Arrival: 0, Duration: 10, DemandSMs: 132},
		{ID: "b", Arrival: 20, Duration: 10, DemandSMs: 132},
	}
	res := SimulateStream(c, jobs, 100)
	if res.Placed != 2 || res.Rejected != 0 {
		t.Errorf("placed/rejected = %d/%d, want 2/0", res.Placed, res.Rejected)
	}
}

func TestSimulateStreamRejectsWhenFull(t *testing.T) {
	c := New(hw.H100(), 1)
	jobs := []Job{
		{ID: "a", Arrival: 0, Duration: 100, DemandSMs: 132},
		{ID: "b", Arrival: 1, Duration: 100, DemandSMs: 132},
	}
	res := SimulateStream(c, jobs, units.Seconds(50))
	if res.Placed != 1 || res.Rejected != 1 {
		t.Errorf("placed/rejected = %d/%d, want 1/1", res.Placed, res.Rejected)
	}
}

func TestStrandAccumulator(t *testing.T) {
	var a StrandAccumulator
	a.Add(10, Usage{Useful: 0.5, Stranded: 0.1})
	a.Add(10, Usage{Useful: 0.7, Stranded: 0.3})
	if math.Abs(a.Useful()-0.6) > 1e-12 {
		t.Errorf("useful = %v, want 0.6", a.Useful())
	}
	if math.Abs(a.Stranded()-0.2) > 1e-12 {
		t.Errorf("stranded = %v, want 0.2", a.Stranded())
	}
	a.Add(-5, Usage{Useful: 1}) // ignored
	if math.Abs(a.Useful()-0.6) > 1e-12 {
		t.Error("negative dt was not ignored")
	}
	var empty StrandAccumulator
	if empty.Useful() != 0 || empty.Stranded() != 0 {
		t.Error("empty accumulator should report 0")
	}
}

// Property: allocation never over-grants or under-grants.
func TestAllocationCoversDemandProperty(t *testing.T) {
	f := func(raw uint16) bool {
		demand := float64(raw%2000) + 1
		c := New(hw.H100(), 64)
		got, ok := c.Allocate("x", demand)
		if !ok {
			return true // too big for the cluster, fine
		}
		granted := float64(got * 132)
		return granted >= demand && granted-demand < 132
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: fragmentation is always in [0, 1) and smaller units never
// fragment more.
func TestFragmentationBoundsProperty(t *testing.T) {
	f := func(raw uint16) bool {
		demand := float64(raw%4000) + 1
		big := FragmentationAt(demand, 132)
		lite := FragmentationAt(demand, 33)
		return big >= 0 && big < 1 && lite >= 0 && lite <= big+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
