// Package cluster models GPU resource management: allocating whole GPU
// packages to jobs (physical isolation, as the paper's AI-as-a-service
// discussion requires), the internal fragmentation that allocation
// granularity causes, and a job-stream simulator that measures achieved
// utilization for big-GPU versus Lite-GPU clusters of equal aggregate
// capacity.
//
// It substantiates the paper's finer-granularity claim: when demand
// arrives in sizes that are not multiples of a big GPU, a cluster of
// quarter-size units strands less capacity.
package cluster

import (
	"fmt"
	"sort"

	"litegpu/internal/hw"
	"litegpu/internal/mathx"
	"litegpu/internal/units"
)

// Cluster is an inventory of identical GPU units allocated whole to jobs.
type Cluster struct {
	gpu    hw.GPU
	total  int
	free   int
	allocs map[string]allocation
}

type allocation struct {
	units  int
	demand float64 // SMs actually wanted
}

// New returns a cluster of n units of the given GPU type.
func New(gpu hw.GPU, n int) *Cluster {
	return &Cluster{gpu: gpu, total: n, free: n, allocs: make(map[string]allocation)}
}

// UnitSMs returns the SM count of one allocatable unit.
func (c *Cluster) UnitSMs() int { return c.gpu.SMs }

// TotalSMs returns the cluster's aggregate SM count.
func (c *Cluster) TotalSMs() int { return c.total * c.gpu.SMs }

// Free returns the number of unallocated units.
func (c *Cluster) Free() int { return c.free }

// Allocate grants the smallest number of whole units covering demandSMs
// to the job. It reports the granted unit count and false when either the
// id is taken or insufficient units remain.
func (c *Cluster) Allocate(id string, demandSMs float64) (int, bool) {
	if demandSMs <= 0 {
		return 0, false
	}
	if _, exists := c.allocs[id]; exists {
		return 0, false
	}
	need := int((demandSMs + float64(c.gpu.SMs) - 1) / float64(c.gpu.SMs))
	if need == 0 {
		need = 1
	}
	if need > c.free {
		return 0, false
	}
	c.free -= need
	c.allocs[id] = allocation{units: need, demand: demandSMs}
	return need, true
}

// Release frees the job's units. It reports whether the id was held.
func (c *Cluster) Release(id string) bool {
	a, ok := c.allocs[id]
	if !ok {
		return false
	}
	c.free += a.units
	delete(c.allocs, id)
	return true
}

// Usage summarizes how the cluster's capacity is being spent.
type Usage struct {
	// Allocated is the fraction of SMs granted to jobs.
	Allocated float64
	// Useful is the fraction of SMs jobs actually demanded.
	Useful float64
	// Stranded is the fraction granted but not demanded (internal
	// fragmentation from whole-unit allocation).
	Stranded float64
}

// Usage returns the current capacity breakdown.
func (c *Cluster) Usage() Usage {
	total := float64(c.TotalSMs())
	if total == 0 {
		return Usage{}
	}
	// Sum in sorted key order so float accumulation is deterministic
	// regardless of map iteration order.
	ids := make([]string, 0, len(c.allocs))
	for id := range c.allocs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var granted, demanded float64
	for _, id := range ids {
		a := c.allocs[id]
		granted += float64(a.units * c.gpu.SMs)
		demanded += minF(a.demand, float64(a.units*c.gpu.SMs))
	}
	return Usage{
		Allocated: granted / total,
		Useful:    demanded / total,
		Stranded:  (granted - demanded) / total,
	}
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// FragmentationAt returns the stranded fraction of a single allocation of
// demandSMs on units of unitSMs: (ceil(d/u)·u − d)/(ceil(d/u)·u).
func FragmentationAt(demandSMs float64, unitSMs int) float64 {
	if demandSMs <= 0 || unitSMs <= 0 {
		return 0
	}
	u := float64(unitSMs)
	units := float64(int((demandSMs + u - 1) / u))
	if units == 0 {
		units = 1
	}
	granted := units * u
	return (granted - demandSMs) / granted
}

// Job is one entry in the job-stream simulation.
type Job struct {
	ID        string
	Arrival   units.Seconds
	Duration  units.Seconds
	DemandSMs float64
}

// StreamResult summarizes a job-stream simulation.
type StreamResult struct {
	Placed   int
	Rejected int
	// MeanUseful is the time-averaged useful utilization.
	MeanUseful float64
	// MeanStranded is the time-averaged stranded fraction.
	MeanStranded float64
}

// SimulateStream replays jobs (sorted by arrival) against the cluster
// with first-fit admission: a job that cannot be placed at arrival is
// rejected (no queueing — capacity studies want the loss signal).
// Utilization is averaged over the simulation horizon.
func SimulateStream(c *Cluster, jobs []Job, horizon units.Seconds) StreamResult {
	type event struct {
		t     float64
		isEnd bool
		job   Job
	}
	var events []event
	for _, j := range jobs {
		events = append(events, event{t: float64(j.Arrival), job: j})
	}
	sort.Slice(events, func(i, k int) bool { return events[i].t < events[k].t })

	var res StrandAccumulator
	var out StreamResult
	// Active departures as a simple sorted list (job counts are modest).
	type departure struct {
		t  float64
		id string
	}
	var deps []departure
	now := 0.0
	h := float64(horizon)
	pop := func(until float64) {
		for len(deps) > 0 {
			sort.Slice(deps, func(i, k int) bool { return deps[i].t < deps[k].t })
			if deps[0].t > until {
				return
			}
			u := c.Usage()
			res.Add(deps[0].t-now, u)
			now = deps[0].t
			c.Release(deps[0].id)
			deps = deps[1:]
		}
	}
	for _, ev := range events {
		if ev.t > h {
			break
		}
		pop(ev.t)
		u := c.Usage()
		res.Add(ev.t-now, u)
		now = ev.t
		if _, ok := c.Allocate(ev.job.ID, ev.job.DemandSMs); ok {
			out.Placed++
			deps = append(deps, departure{t: ev.t + float64(ev.job.Duration), id: ev.job.ID})
		} else {
			out.Rejected++
		}
	}
	pop(h)
	res.Add(h-now, c.Usage())
	out.MeanUseful = res.Useful()
	out.MeanStranded = res.Stranded()
	return out
}

// StrandAccumulator time-averages Usage samples.
type StrandAccumulator struct {
	t, useful, stranded float64
}

// Add accumulates a usage sample held for dt.
func (a *StrandAccumulator) Add(dt float64, u Usage) {
	if dt <= 0 {
		return
	}
	a.t += dt
	a.useful += dt * u.Useful
	a.stranded += dt * u.Stranded
}

// Useful returns the time-averaged useful fraction.
func (a *StrandAccumulator) Useful() float64 {
	if a.t == 0 {
		return 0
	}
	return a.useful / a.t
}

// Stranded returns the time-averaged stranded fraction.
func (a *StrandAccumulator) Stranded() float64 {
	if a.t == 0 {
		return 0
	}
	return a.stranded / a.t
}

// GranularityStudy compares equal-capacity big and Lite clusters on the
// same synthetic job mix and returns both results. Demands are drawn
// uniformly in [minFrac, maxFrac] of one big GPU, the regime where
// granularity matters (sub-GPU and non-integral multi-GPU jobs).
func GranularityStudy(big hw.GPU, bigUnits, split int, jobs int, minFrac, maxFrac float64, seed uint64) (bigRes, liteRes StreamResult) {
	lite := big.Scale(1 / float64(split))
	mk := func() []Job {
		rng := mathx.NewRNG(seed)
		var js []Job
		for i := 0; i < jobs; i++ {
			frac := minFrac + rng.Float64()*(maxFrac-minFrac)
			js = append(js, Job{
				ID:        fmt.Sprintf("job-%d", i),
				Arrival:   units.Seconds(rng.Exponential(1.0 / 30)), // staggered
				Duration:  units.Seconds(600 + rng.Float64()*3000),
				DemandSMs: frac * float64(big.SMs),
			})
		}
		// Arrival times accumulate.
		var t float64
		rng2 := mathx.NewRNG(seed + 1)
		for i := range js {
			t += rng2.Exponential(1.0 / 30)
			js[i].Arrival = units.Seconds(t)
		}
		return js
	}
	horizon := units.Seconds(float64(jobs)*30 + 4000)
	bigRes = SimulateStream(New(big, bigUnits), mk(), horizon)
	liteRes = SimulateStream(New(lite, bigUnits*split), mk(), horizon)
	return bigRes, liteRes
}
