package trace

import (
	"testing"

	"litegpu/internal/units"
)

// FuzzGeneratorStream drives the request generator across its whole
// configuration space, seeded from the calibrated workloads' parameter
// shapes. For every configuration that validates, the generated trace
// must satisfy the invariants the simulators assume: arrivals
// nondecreasing and inside the horizon, token counts in [1, MaxTokens],
// sequential IDs — and the lazy Stream must be byte-identical to the
// materialized Generate, which is what lets simulations switch between
// the two without perturbing a metric.
func FuzzGeneratorStream(f *testing.F) {
	add := func(g Generator) {
		f.Add(g.Rate, g.PromptMedian, g.PromptP99, g.OutputMedian, g.OutputP99,
			g.MaxTokens, g.BurstFactor, g.BurstFraction, float64(g.BurstDwell), g.Seed)
	}
	add(CodingWorkload(100, 1))
	add(ConversationWorkload(250, 42))
	bursty := CodingWorkload(50, 7)
	bursty.BurstFactor, bursty.BurstFraction, bursty.BurstDwell = 4, 0.25, 0.1
	add(bursty)
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 0, -1.0, 2.0, -3.0, uint64(0))
	f.Add(1e300, 1.0, 0.5, 1.0, 0.5, 1, 0.5, 0.0, 0.0, uint64(9))

	f.Fuzz(func(t *testing.T, rate, pm, pp, om, op float64, maxTok int,
		bf, bfr, bd float64, seed uint64) {
		g := Generator{
			Rate:         rate,
			PromptMedian: pm, PromptP99: pp,
			OutputMedian: om, OutputP99: op,
			MaxTokens:   maxTok,
			BurstFactor: bf, BurstFraction: bfr,
			BurstDwell: units.Seconds(bd),
			Seed:       seed,
		}
		if g.Validate() != nil {
			if _, err := g.Generate(1); err == nil {
				t.Fatal("Generate succeeded on a Generator that fails Validate")
			}
			return
		}
		// Bound the work per input, not the domain: the invariants
		// don't depend on the trace being short.
		effRate := g.Rate
		if g.BurstFactor > 1 {
			effRate *= g.BurstFactor
		}
		if effRate > 20000 {
			return
		}
		const horizon = units.Seconds(0.5)

		reqs, err := g.Generate(horizon)
		if err != nil {
			t.Fatalf("Generate failed on a validated Generator: %v", err)
		}
		prev := 0.0
		for i, r := range reqs {
			if r.ID != i {
				t.Fatalf("request %d has ID %d, want sequential", i, r.ID)
			}
			at := float64(r.Arrival)
			if at < prev || at > float64(horizon) {
				t.Fatalf("request %d arrival %v outside [%v, %v]", i, at, prev, horizon)
			}
			prev = at
			if r.PromptTokens < 1 || r.PromptTokens > g.MaxTokens {
				t.Fatalf("request %d prompt %d outside [1, %d]", i, r.PromptTokens, g.MaxTokens)
			}
			if r.OutputTokens < 1 || r.OutputTokens > g.MaxTokens {
				t.Fatalf("request %d output %d outside [1, %d]", i, r.OutputTokens, g.MaxTokens)
			}
		}

		s, err := g.Stream(horizon)
		if err != nil {
			t.Fatalf("Stream failed on a validated Generator: %v", err)
		}
		for i := 0; ; i++ {
			r, ok := s.Next()
			if !ok {
				if i != len(reqs) {
					t.Fatalf("Stream produced %d requests, Generate %d", i, len(reqs))
				}
				break
			}
			if i >= len(reqs) || r != reqs[i] {
				t.Fatalf("Stream diverges from Generate at request %d", i)
			}
		}
	})
}

// FuzzTenantTraceStream drives the multi-tenant generator across class
// counts, priorities, and envelope shapes. Every configuration that
// validates must produce a merged stream with nondecreasing arrivals
// inside the horizon, sequential IDs, class labels inside [0, classes),
// class-consistent priorities — and MultiGenerator.Generate must be
// byte-identical to MultiGenerator.Stream.
func FuzzTenantTraceStream(f *testing.F) {
	f.Add(uint(2), 4.0, 2.0, 10, 0.0, 0.0, 0.0, 0.0, 0.0, uint64(9))
	f.Add(uint(3), 8.0, 1.0, 3, 0.5, 120.0, 50.0, 30.0, 4.0, uint64(42))
	f.Add(uint(1), 50.0, 0.0, 0, 0.9, 10.0, 0.0, 0.0, 1.0, uint64(0))
	f.Add(uint(9), 1e9, -2.0, -5, 2.0, -1.0, 5.0, -3.0, 0.25, uint64(7))

	f.Fuzz(func(t *testing.T, classes uint, rateA, rateB float64, prioB int,
		amp, period, flashAt, flashDur, flashFactor float64, seed uint64) {
		if classes > 8 {
			classes = classes%8 + 1
		}
		m := MultiGenerator{Seed: seed}
		for i := uint(0); i < classes; i++ {
			g := ConversationWorkload(rateA, 0)
			prio := 0
			if i%2 == 1 {
				g = CodingWorkload(rateB, 0)
				prio = prioB
			}
			m.Classes = append(m.Classes, TenantClass{Gen: g, Priority: prio})
		}
		if amp != 0 || flashFactor != 0 {
			m.Envelope = Envelope{
				DiurnalAmplitude: amp,
				DiurnalPeriod:    units.Seconds(period),
			}
			if flashFactor != 0 {
				m.Envelope.Flash = []FlashCrowd{{
					At: units.Seconds(flashAt), Duration: units.Seconds(flashDur),
					Factor: flashFactor,
				}}
			}
		}
		if m.Validate() != nil {
			if _, err := m.Generate(1); err == nil {
				t.Fatal("Generate succeeded on a MultiGenerator that fails Validate")
			}
			return
		}
		// Bound work per input: thinning generates at peak rate.
		peak := m.Envelope.peak()
		var effRate float64
		for _, c := range m.Classes {
			r := c.Gen.Rate
			if c.Gen.BurstFactor > 1 {
				r *= c.Gen.BurstFactor
			}
			effRate += r * peak
		}
		if effRate > 20000 || effRate != effRate {
			return
		}
		const horizon = units.Seconds(0.5)

		reqs, err := m.Generate(horizon)
		if err != nil {
			t.Fatalf("Generate failed on a validated MultiGenerator: %v", err)
		}
		prev := 0.0
		for i, r := range reqs {
			if r.ID != i {
				t.Fatalf("request %d has ID %d, want sequential", i, r.ID)
			}
			at := float64(r.Arrival)
			if at < prev || at > float64(horizon) {
				t.Fatalf("request %d arrival %v outside [%v, %v]", i, at, prev, horizon)
			}
			prev = at
			if r.Class < 0 || r.Class >= len(m.Classes) {
				t.Fatalf("request %d class %d outside [0, %d)", i, r.Class, len(m.Classes))
			}
			if r.Priority != m.Classes[r.Class].Priority {
				t.Fatalf("request %d priority %d disagrees with class %d", i, r.Priority, r.Class)
			}
		}

		s, err := m.Stream(horizon)
		if err != nil {
			t.Fatalf("Stream failed on a validated MultiGenerator: %v", err)
		}
		for i := 0; ; i++ {
			r, ok := s.Next()
			if !ok {
				if i != len(reqs) {
					t.Fatalf("Stream produced %d requests, Generate %d", i, len(reqs))
				}
				break
			}
			if i >= len(reqs) || r != reqs[i] {
				t.Fatalf("Stream diverges from Generate at request %d", i)
			}
		}
	})
}
