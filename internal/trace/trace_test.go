package trace

import (
	"math"
	"reflect"
	"testing"
)

func TestGenerateReproducible(t *testing.T) {
	g := CodingWorkload(2.0, 42)
	a, err := g.Generate(600)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Generate(600)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("same seed produced %d vs %d requests", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs between identical runs", i)
		}
	}
}

func TestGenerateRate(t *testing.T) {
	g := CodingWorkload(5.0, 7)
	reqs, err := g.Generate(2000)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(reqs, 2000)
	if math.Abs(s.MeanRate-5.0)/5.0 > 0.05 {
		t.Errorf("mean rate = %v, want ≈5", s.MeanRate)
	}
}

func TestPromptMedianMatchesPaper(t *testing.T) {
	// The paper pins the coding-workload median prompt at 1500 tokens.
	g := CodingWorkload(10, 3)
	reqs, err := g.Generate(5000)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(reqs, 5000)
	if math.Abs(s.PromptMedian-1500)/1500 > 0.05 {
		t.Errorf("prompt median = %v, want ≈1500", s.PromptMedian)
	}
	// Heavy tail reaches well past the median but within the cap.
	if s.PromptP99 < 3000 || s.PromptP99 > float64(g.MaxTokens) {
		t.Errorf("prompt p99 = %v, want (3000, %d]", s.PromptP99, g.MaxTokens)
	}
}

func TestArrivalsMonotone(t *testing.T) {
	g := ConversationWorkload(3, 11)
	reqs, err := g.Generate(1000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Arrival < reqs[i-1].Arrival {
			t.Fatalf("arrivals not sorted at %d", i)
		}
		if reqs[i].ID != i {
			t.Fatalf("IDs not sequential at %d", i)
		}
	}
}

func TestTokenBounds(t *testing.T) {
	g := CodingWorkload(10, 5)
	reqs, err := g.Generate(1000)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		if r.PromptTokens < 1 || r.PromptTokens > g.MaxTokens {
			t.Fatalf("prompt tokens %d out of [1, %d]", r.PromptTokens, g.MaxTokens)
		}
		if r.OutputTokens < 1 || r.OutputTokens > g.MaxTokens {
			t.Fatalf("output tokens %d out of [1, %d]", r.OutputTokens, g.MaxTokens)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []Generator{
		{},
		{Rate: -1, PromptMedian: 100, OutputMedian: 10, MaxTokens: 100},
		{Rate: 1, PromptMedian: 0, OutputMedian: 10, MaxTokens: 100},
		{Rate: 1, PromptMedian: 100, OutputMedian: 10, MaxTokens: 0},
		{Rate: 1, PromptMedian: 100, OutputMedian: 10, MaxTokens: 100, BurstFactor: 0.5},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("bad generator %d validated", i)
		}
		if _, err := g.Generate(10); err == nil {
			t.Errorf("bad generator %d generated", i)
		}
	}
	if err := CodingWorkload(1, 0).Validate(); err != nil {
		t.Errorf("good generator rejected: %v", err)
	}
}

func TestBurstyGeneratorProducesMoreVariance(t *testing.T) {
	smooth := CodingWorkload(5, 9)
	bursty := CodingWorkload(5, 9)
	bursty.BurstFactor = 6
	bursty.BurstFraction = 0.2
	bursty.BurstDwell = 20

	countPerBin := func(g Generator) []float64 {
		reqs, err := g.Generate(2000)
		if err != nil {
			t.Fatal(err)
		}
		bins := make([]float64, 200)
		for _, r := range reqs {
			idx := int(float64(r.Arrival) / 10)
			if idx >= 0 && idx < len(bins) {
				bins[idx]++
			}
		}
		return bins
	}
	varOf := func(xs []float64) float64 {
		var sum, sumSq float64
		for _, x := range xs {
			sum += x
			sumSq += x * x
		}
		n := float64(len(xs))
		mean := sum / n
		return sumSq/n - mean*mean
	}
	if varOf(countPerBin(bursty)) <= varOf(countPerBin(smooth)) {
		t.Error("bursty stream should have higher arrival variance")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil, 100)
	if s.Requests != 0 || s.MeanRate != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeTotals(t *testing.T) {
	reqs := []Request{
		{PromptTokens: 100, OutputTokens: 10},
		{PromptTokens: 200, OutputTokens: 20},
	}
	s := Summarize(reqs, 10)
	if s.TotalPrompt != 300 || s.TotalOutput != 30 {
		t.Errorf("totals = %d/%d, want 300/30", s.TotalPrompt, s.TotalOutput)
	}
	if s.MeanRate != 0.2 {
		t.Errorf("rate = %v, want 0.2", s.MeanRate)
	}
}

// TestBurstModeConvergesToConfiguration pins the MMPP generator's
// calibration: over a long horizon the empirical arrival rate must
// converge to the two-state mixture rate, and the burst-state dwell
// statistics to the configured BurstFraction/BurstDwell split.
func TestBurstModeConvergesToConfiguration(t *testing.T) {
	g := CodingWorkload(2.0, 31)
	g.BurstFactor = 4
	g.BurstFraction = 0.25
	g.BurstDwell = 50
	const horizon = 40000.0

	reqs, stats, err := g.GenerateWithStats(horizon)
	if err != nil {
		t.Fatal(err)
	}

	// Mixture rate: Rate·(1−f) + Rate·BurstFactor·f.
	wantRate := g.Rate*(1-g.BurstFraction) + g.Rate*g.BurstFactor*g.BurstFraction
	gotRate := float64(len(reqs)) / horizon
	if rel := math.Abs(gotRate-wantRate) / wantRate; rel > 0.05 {
		t.Errorf("empirical rate %.3f vs configured mixture %.3f (%.1f%% off)", gotRate, wantRate, rel*100)
	}

	// Time partition: BurstFraction of the horizon spent bursting.
	if got := stats.BurstFraction(); math.Abs(got-g.BurstFraction) > 0.05 {
		t.Errorf("burst-time fraction %.3f, want ≈ %.3f", got, g.BurstFraction)
	}
	if total := stats.BurstTime + stats.NormalTime; math.Abs(total-horizon) > 1e-6 {
		t.Errorf("state times sum to %.6f, want the %.0f horizon", total, horizon)
	}

	// Dwell means: burst spells average BurstDwell·f, normal spells
	// BurstDwell·(1−f). With ~40000/50 = 800 spells the exponential
	// sample means sit within a few percent; 15% is comfortable.
	dwell := float64(g.BurstDwell)
	if stats.BurstSpells < 100 || stats.NormalSpells < 100 {
		t.Fatalf("too few spells to test convergence: %d burst, %d normal", stats.BurstSpells, stats.NormalSpells)
	}
	wantBurst := dwell * g.BurstFraction
	if rel := math.Abs(stats.MeanBurstDwell()-wantBurst) / wantBurst; rel > 0.15 {
		t.Errorf("mean burst dwell %.2f s, want ≈ %.2f s (%.1f%% off)", stats.MeanBurstDwell(), wantBurst, rel*100)
	}
	wantNormal := dwell * (1 - g.BurstFraction)
	if rel := math.Abs(stats.MeanNormalDwell()-wantNormal) / wantNormal; rel > 0.15 {
		t.Errorf("mean normal dwell %.2f s, want ≈ %.2f s (%.1f%% off)", stats.MeanNormalDwell(), wantNormal, rel*100)
	}
}

// TestGenerateWithStatsPreservesStream guards the refactor: the stats
// accounting must not perturb the request stream.
func TestGenerateWithStatsPreservesStream(t *testing.T) {
	g := ConversationWorkload(1.5, 9)
	g.BurstFactor = 6
	g.BurstFraction = 0.2
	g.BurstDwell = 20
	plain, err := g.Generate(500)
	if err != nil {
		t.Fatal(err)
	}
	withStats, stats, err := g.GenerateWithStats(500)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, withStats) {
		t.Error("GenerateWithStats produced a different stream than Generate")
	}
	if stats.BurstSpells == 0 {
		t.Error("bursty stream recorded no burst spells")
	}
}

// TestNonBurstyStatsAreTrivial pins the degenerate case: a plain
// Poisson stream is one normal spell spanning the horizon.
func TestNonBurstyStatsAreTrivial(t *testing.T) {
	_, stats, err := CodingWorkload(1.0, 3).GenerateWithStats(200)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BurstSpells != 0 || stats.BurstTime != 0 {
		t.Errorf("non-bursty stream has burst activity: %+v", stats)
	}
	if stats.NormalSpells != 1 || math.Abs(stats.NormalTime-200) > 1e-9 {
		t.Errorf("non-bursty stream stats = %+v, want one 200 s normal spell", stats)
	}
}
