package trace

import (
	"testing"

	"litegpu/internal/units"
)

func twoClassGen(seed uint64) MultiGenerator {
	return MultiGenerator{
		Classes: []TenantClass{
			{Name: "free", Gen: ConversationWorkload(4, 0), Priority: 0},
			{Name: "paid", Gen: CodingWorkload(2, 0), Priority: 10},
		},
		Seed: seed,
	}
}

// A single-class MultiGenerator with a pinned class seed and no
// envelope must reproduce the standalone Generator stream byte for
// byte, modulo the class/priority stamp — the zero-value contract that
// lets existing studies adopt MultiGenerator without re-baselining.
func TestSingleClassMatchesGenerator(t *testing.T) {
	g := CodingWorkload(3, 77)
	m := MultiGenerator{Classes: []TenantClass{{Name: "only", Gen: g, Priority: 5}}}
	const horizon = units.Seconds(200)
	want, err := g.Generate(horizon)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Generate(horizon)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("lengths differ: multi %d vs plain %d", len(got), len(want))
	}
	for i := range got {
		w := want[i]
		w.Class, w.Priority = 0, 5
		if got[i] != w {
			t.Fatalf("request %d differs: %+v vs %+v", i, got[i], w)
		}
	}
}

// The merged stream must interleave classes in arrival order with
// globally sequential IDs, valid class labels, per-class priorities —
// and Generate must equal Stream.
func TestMultiStreamMergeInvariants(t *testing.T) {
	m := twoClassGen(9)
	const horizon = units.Seconds(300)
	reqs, err := m.Generate(horizon)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) < 100 {
		t.Fatalf("suspiciously short merged trace: %d requests", len(reqs))
	}
	seen := make([]int, len(m.Classes))
	prev := units.Seconds(0)
	for i, r := range reqs {
		if r.ID != i {
			t.Fatalf("request %d has ID %d, want sequential", i, r.ID)
		}
		if r.Arrival < prev || r.Arrival > horizon {
			t.Fatalf("request %d arrival %v out of order or past horizon", i, r.Arrival)
		}
		prev = r.Arrival
		if r.Class < 0 || r.Class >= len(m.Classes) {
			t.Fatalf("request %d has invalid class %d", i, r.Class)
		}
		if r.Priority != m.Classes[r.Class].Priority {
			t.Fatalf("request %d priority %d, want class %d's %d",
				i, r.Priority, r.Class, m.Classes[r.Class].Priority)
		}
		seen[r.Class]++
	}
	for c, n := range seen {
		if n == 0 {
			t.Fatalf("class %d produced no arrivals", c)
		}
	}

	s, err := m.Stream(horizon)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		r, ok := s.Next()
		if !ok {
			if i != len(reqs) {
				t.Fatalf("stream ended after %d requests, Generate produced %d", i, len(reqs))
			}
			break
		}
		if r != reqs[i] {
			t.Fatalf("stream diverges from Generate at %d: %+v vs %+v", i, r, reqs[i])
		}
	}
}

// A flash crowd must multiply the arrival intensity inside its window
// and leave the rest of the horizon statistically untouched.
func TestFlashCrowdShapesRate(t *testing.T) {
	m := twoClassGen(11)
	m.Envelope = Envelope{Flash: []FlashCrowd{{At: 100, Duration: 50, Factor: 4}}}
	const horizon = units.Seconds(300)
	reqs, err := m.Generate(horizon)
	if err != nil {
		t.Fatal(err)
	}
	var in, out int
	for _, r := range reqs {
		if r.Arrival >= 100 && r.Arrival < 150 {
			in++
		} else {
			out++
		}
	}
	// Base rate 6/s: expect ~50·6·4=1200 inside, ~250·6=1500 outside.
	inRate := float64(in) / 50
	outRate := float64(out) / 250
	if inRate < 3*outRate {
		t.Fatalf("flash window rate %.1f/s not ≳ 3× the baseline %.1f/s", inRate, outRate)
	}
	if outRate < 4 || outRate > 8 {
		t.Fatalf("baseline rate %.1f/s drifted from the configured 6/s", outRate)
	}
}

// The diurnal swing must move mass from trough to crest.
func TestDiurnalEnvelope(t *testing.T) {
	m := MultiGenerator{
		Classes: []TenantClass{{Gen: ConversationWorkload(10, 0)}},
		Envelope: Envelope{
			DiurnalAmplitude: 0.8,
			DiurnalPeriod:    400,
		},
		Seed: 21,
	}
	reqs, err := m.Generate(400)
	if err != nil {
		t.Fatal(err)
	}
	var crest, trough int
	for _, r := range reqs {
		// sin peaks in the first half-period, troughs in the second.
		if r.Arrival < 200 {
			crest++
		} else {
			trough++
		}
	}
	if crest < 2*trough {
		t.Fatalf("crest half %d not ≫ trough half %d under 0.8 amplitude", crest, trough)
	}
}

func TestMultiGeneratorValidate(t *testing.T) {
	cases := []MultiGenerator{
		{},
		{Classes: []TenantClass{{Gen: Generator{}}}},
		{Classes: []TenantClass{{Gen: CodingWorkload(1, 0), Priority: -1}}},
		{Classes: []TenantClass{{Gen: CodingWorkload(1, 0)}},
			Envelope: Envelope{DiurnalAmplitude: 1.5}},
		{Classes: []TenantClass{{Gen: CodingWorkload(1, 0)}},
			Envelope: Envelope{Flash: []FlashCrowd{{At: 1, Duration: 0, Factor: 2}}}},
		{Classes: []TenantClass{{Gen: CodingWorkload(1, 0)}},
			Envelope: Envelope{Flash: []FlashCrowd{{At: 1, Duration: 5, Factor: 0.5}}}},
	}
	for i, m := range cases {
		if m.Validate() == nil {
			t.Errorf("case %d: Validate accepted an invalid MultiGenerator", i)
		}
		if _, err := m.Generate(1); err == nil {
			t.Errorf("case %d: Generate accepted an invalid MultiGenerator", i)
		}
	}
	if err := twoClassGen(1).Validate(); err != nil {
		t.Fatalf("valid MultiGenerator rejected: %v", err)
	}
}

// Independent class streams: adding a class must not perturb the
// arrivals of the existing ones (their requests keep identical arrival
// times and token counts, only IDs renumber).
func TestClassIndependence(t *testing.T) {
	base := MultiGenerator{
		Classes: []TenantClass{{Name: "a", Gen: CodingWorkload(2, 0)}},
		Seed:    5,
	}
	grown := MultiGenerator{
		Classes: []TenantClass{
			{Name: "a", Gen: CodingWorkload(2, 0)},
			{Name: "b", Gen: ConversationWorkload(3, 0)},
		},
		Seed: 5,
	}
	const horizon = units.Seconds(120)
	one, err := base.Generate(horizon)
	if err != nil {
		t.Fatal(err)
	}
	two, err := grown.Generate(horizon)
	if err != nil {
		t.Fatal(err)
	}
	var onlyA []Request
	for _, r := range two {
		if r.Class == 0 {
			onlyA = append(onlyA, r)
		}
	}
	if len(onlyA) != len(one) {
		t.Fatalf("class a yielded %d requests alone, %d merged", len(one), len(onlyA))
	}
	for i := range one {
		a, b := one[i], onlyA[i]
		a.ID, b.ID = 0, 0
		if a != b {
			t.Fatalf("class a request %d perturbed by adding class b: %+v vs %+v", i, one[i], onlyA[i])
		}
	}
}
