package trace

import (
	"fmt"
	"math"

	"litegpu/internal/mathx"
	"litegpu/internal/units"
)

// TenantClass is one tenant population sharing a cluster: its own
// arrival and token-length process, plus the priority admission control
// uses to rank it against the other classes under overload.
type TenantClass struct {
	// Name labels the class in reports (defaults to "class<i>").
	Name string
	// Gen is the class's arrival/length process. Its Seed is ignored
	// unless nonzero: by default every class derives an independent
	// stream from MultiGenerator.Seed, so adding a class never perturbs
	// the others.
	Gen Generator
	// Priority ranks the class for admission control; higher is more
	// important. Zero is the lowest tier.
	Priority int
}

// FlashCrowd is one transient surge in a class-wide arrival envelope:
// between At and At+Duration the instantaneous rate is multiplied by
// Factor (a regional failover, a product launch, a retry storm's
// upstream cause).
type FlashCrowd struct {
	At       units.Seconds
	Duration units.Seconds
	Factor   float64
}

// Envelope shapes arrival intensity over the horizon, multiplying the
// per-class base rates (and composing with MMPP bursts, which modulate
// on much shorter timescales). The zero value is flat: enabled
// generators stay byte-identical to their un-enveloped streams.
type Envelope struct {
	// DiurnalAmplitude in [0, 1) swings the rate sinusoidally:
	// rate(t) = rate · (1 + A·sin(2πt/Period)). Zero disables the swing.
	DiurnalAmplitude float64
	// DiurnalPeriod is the sinusoid period (default 86400 s — one day).
	DiurnalPeriod units.Seconds
	// Flash lists transient surges layered on top of the diurnal swing.
	Flash []FlashCrowd
}

// Enabled reports whether the envelope shapes anything.
func (e Envelope) Enabled() bool {
	return e.DiurnalAmplitude > 0 || len(e.Flash) > 0
}

// Validate reports the first envelope problem, or nil.
func (e Envelope) Validate() error {
	if e.DiurnalAmplitude < 0 || e.DiurnalAmplitude >= 1 {
		return fmt.Errorf("trace: DiurnalAmplitude %v outside [0, 1)", e.DiurnalAmplitude)
	}
	if e.DiurnalAmplitude > 0 && e.DiurnalPeriod < 0 {
		return fmt.Errorf("trace: negative DiurnalPeriod %v", e.DiurnalPeriod)
	}
	for i, f := range e.Flash {
		if f.Factor < 1 || f.Duration <= 0 || f.At < 0 ||
			math.IsNaN(f.Factor) || math.IsInf(f.Factor, 0) {
			return fmt.Errorf("trace: flash crowd %d needs At ≥ 0, Duration > 0, finite Factor ≥ 1", i)
		}
	}
	return nil
}

func (e Envelope) period() float64 {
	if p := float64(e.DiurnalPeriod); p > 0 {
		return p
	}
	return 86400
}

// factor returns the envelope's rate multiplier at time t.
func (e Envelope) factor(t float64) float64 {
	v := 1.0
	if e.DiurnalAmplitude > 0 {
		v = 1 + e.DiurnalAmplitude*math.Sin(2*math.Pi*t/e.period())
	}
	for _, f := range e.Flash {
		if t >= float64(f.At) && t < float64(f.At)+float64(f.Duration) {
			v *= f.Factor
		}
	}
	return v
}

// peak bounds factor(t) from above: the diurnal crest times the product
// of every flash factor. Overlapping flashes attain the bound; disjoint
// ones make thinning merely reject more candidates, which costs draws
// but never correctness.
func (e Envelope) peak() float64 {
	v := 1 + e.DiurnalAmplitude
	for _, f := range e.Flash {
		v *= f.Factor
	}
	return v
}

// MultiGenerator produces a multi-tenant request stream: each class's
// arrivals synthesize independently (own rates, lengths, bursts), the
// envelope shapes all of them, and the merged stream interleaves the
// classes in arrival order with globally sequential IDs. Requests carry
// their class index and priority, which is what the serving layer's
// per-class SLOs and admission control key on.
type MultiGenerator struct {
	Classes []TenantClass
	// Envelope shapes every class's arrival intensity; the zero value
	// leaves the class streams byte-identical to standalone Generators.
	Envelope Envelope
	// Seed derives every class's stream (and the envelope-thinning
	// stream) via mathx.DeriveSeed, unless a class pins its own
	// Gen.Seed.
	Seed uint64
}

// Validate reports the first configuration problem, or nil.
func (m MultiGenerator) Validate() error {
	if len(m.Classes) == 0 {
		return fmt.Errorf("trace: MultiGenerator needs at least one class")
	}
	for i, c := range m.Classes {
		if err := c.Gen.Validate(); err != nil {
			return fmt.Errorf("trace: class %d (%s): %w", i, c.Name, err)
		}
		if c.Priority < 0 {
			return fmt.Errorf("trace: class %d (%s): negative priority %d", i, c.Name, c.Priority)
		}
	}
	return m.Envelope.Validate()
}

// ClassName returns the display name of class i.
func (m MultiGenerator) ClassName(i int) string {
	if i >= 0 && i < len(m.Classes) && m.Classes[i].Name != "" {
		return m.Classes[i].Name
	}
	return fmt.Sprintf("class%d", i)
}

// Generate materializes all requests arriving within the horizon, in
// nondecreasing arrival order. It is implemented on Stream, so the two
// are byte-identical.
func (m MultiGenerator) Generate(horizon units.Seconds) ([]Request, error) {
	s, err := m.Stream(horizon)
	if err != nil {
		return nil, err
	}
	var reqs []Request
	for {
		r, ok := s.Next()
		if !ok {
			return reqs, nil
		}
		reqs = append(reqs, r)
	}
}

// envStream is one class's enveloped arrival stream: candidates are
// generated at the envelope's peak rate and thinned (accepted with
// probability factor(t)/peak) from a dedicated RNG, the standard exact
// simulation of an inhomogeneous Poisson process — and the thinning
// composes with the class's own MMPP modulation, which rides inside the
// candidate stream. With the envelope disabled this is the plain class
// stream: no extra RNG exists and no draw is added, so single-class
// zero-envelope MultiGenerators reproduce Generator streams byte for
// byte.
type envStream struct {
	s    *Stream
	env  Envelope
	peak float64
	rng  *mathx.RNG // nil when the envelope is off
}

func (es *envStream) next() (Request, bool) {
	for {
		r, ok := es.s.Next()
		if !ok || es.rng == nil {
			return r, ok
		}
		if es.rng.Float64()*es.peak < es.env.factor(float64(r.Arrival)) {
			return r, true
		}
	}
}

// MultiStream merges the per-class enveloped streams in arrival order
// (ties break toward the lower class index), renumbering IDs globally
// and stamping each request with its class index and priority. It
// implements the same lazy O(in-flight) contract as Stream and plugs
// into RunClusterFrom unchanged.
type MultiStream struct {
	m       MultiGenerator
	streams []*envStream
	heads   []Request
	headOK  []bool
	n       int
}

// Stream validates the generator and returns the lazy merged iterator
// for all requests arriving within the horizon.
func (m MultiGenerator) Stream(horizon units.Seconds) (*MultiStream, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	ms := &MultiStream{
		m:       m,
		streams: make([]*envStream, len(m.Classes)),
		heads:   make([]Request, len(m.Classes)),
		headOK:  make([]bool, len(m.Classes)),
	}
	for i, c := range m.Classes {
		g := c.Gen
		if g.Seed == 0 {
			g.Seed = mathx.DeriveSeed(m.Seed, uint64(i))
		}
		es := &envStream{env: m.Envelope}
		if m.Envelope.Enabled() {
			es.peak = m.Envelope.peak()
			g.Rate *= es.peak
			// The thinning stream is derived, not split, so it exists
			// only when the envelope does — a flat envelope leaves the
			// class stream untouched.
			es.rng = mathx.NewRNG(mathx.DeriveSeed(g.Seed, math.MaxUint64))
		}
		s, err := g.Stream(horizon)
		if err != nil {
			return nil, err
		}
		es.s = s
		ms.streams[i] = es
		ms.heads[i], ms.headOK[i] = es.next()
	}
	return ms, nil
}

// Next returns the next merged arrival, or ok=false once every class
// stream is exhausted.
func (ms *MultiStream) Next() (Request, bool) {
	best := -1
	for i := range ms.streams {
		if !ms.headOK[i] {
			continue
		}
		if best < 0 || ms.heads[i].Arrival < ms.heads[best].Arrival {
			best = i
		}
	}
	if best < 0 {
		return Request{}, false
	}
	r := ms.heads[best]
	ms.heads[best], ms.headOK[best] = ms.streams[best].next()
	r.ID = ms.n
	r.Class = best
	r.Priority = ms.m.Classes[best].Priority
	ms.n++
	return r, true
}
