// Package trace synthesizes LLM inference request streams with the
// statistical shape of production workloads: Poisson (or bursty
// Markov-modulated) arrivals and lognormal token-length distributions
// pinned to published medians — the paper's evaluation uses the 1500-token
// median prompt length of a production coding workload (Splitwise).
//
// This substitutes for the proprietary production traces the paper's
// references draw on; only the statistics the models consume (medians,
// tail ratios, arrival intensity) are represented.
package trace

import (
	"fmt"
	"math"

	"litegpu/internal/mathx"
	"litegpu/internal/units"
)

// Request is one inference request.
type Request struct {
	ID      int
	Arrival units.Seconds
	// PromptTokens is the prefill length.
	PromptTokens int
	// OutputTokens is the number of tokens to decode.
	OutputTokens int
}

// Generator produces synthetic request streams. The zero value is not
// useful; use NewGenerator or fill all fields.
type Generator struct {
	// Rate is the mean arrival rate in requests per second.
	Rate float64

	// PromptMedian and PromptP99 pin the prompt-length lognormal.
	PromptMedian, PromptP99 float64

	// OutputMedian and OutputP99 pin the output-length lognormal.
	OutputMedian, OutputP99 float64

	// MaxTokens caps both lengths (context-window limit).
	MaxTokens int

	// BurstFactor > 1 enables a two-state Markov-modulated Poisson
	// process: bursts arrive at Rate·BurstFactor for BurstFraction of
	// the time.
	BurstFactor   float64
	BurstFraction float64
	// BurstDwell is the mean dwell time in each burst state.
	BurstDwell units.Seconds

	// Seed makes the stream reproducible.
	Seed uint64
}

// CodingWorkload returns the generator calibrated to the production
// coding workload the paper cites: median prompt 1500 tokens (Splitwise's
// reported median), heavy-tailed up to the context limit, short outputs.
func CodingWorkload(rate float64, seed uint64) Generator {
	return Generator{
		Rate:         rate,
		PromptMedian: 1500, PromptP99: 7000,
		OutputMedian: 80, OutputP99: 500,
		MaxTokens: 8192,
		Seed:      seed,
	}
}

// ConversationWorkload returns a chat-style mix: shorter prompts, longer
// outputs (Splitwise's conversation class).
func ConversationWorkload(rate float64, seed uint64) Generator {
	return Generator{
		Rate:         rate,
		PromptMedian: 1020, PromptP99: 6000,
		OutputMedian: 205, OutputP99: 1000,
		MaxTokens: 8192,
		Seed:      seed,
	}
}

// Validate reports the first parameter problem, or nil.
func (g Generator) Validate() error {
	switch {
	case g.Rate <= 0:
		return fmt.Errorf("trace: non-positive rate %v", g.Rate)
	case g.PromptMedian <= 0 || g.OutputMedian <= 0:
		return fmt.Errorf("trace: non-positive token medians")
	case g.MaxTokens <= 0:
		return fmt.Errorf("trace: non-positive MaxTokens")
	case g.BurstFactor != 0 && g.BurstFactor < 1:
		return fmt.Errorf("trace: BurstFactor must be ≥ 1 when set")
	}
	return nil
}

// BurstStats summarizes the Markov-modulated arrival process of one
// generated stream: how much of the horizon was spent bursting and how
// the state dwells distributed. For a non-bursty generator (BurstFactor
// ≤ 1) the whole horizon is one normal spell.
type BurstStats struct {
	// BurstTime and NormalTime partition the horizon between the two
	// modulation states, in seconds.
	BurstTime  float64
	NormalTime float64
	// BurstSpells and NormalSpells count state visits (the initial
	// normal spell included).
	BurstSpells  int
	NormalSpells int
}

// BurstFraction returns the observed share of time spent bursting.
func (b BurstStats) BurstFraction() float64 {
	total := b.BurstTime + b.NormalTime
	if total <= 0 {
		return 0
	}
	return b.BurstTime / total
}

// MeanBurstDwell returns the observed mean burst-spell length.
func (b BurstStats) MeanBurstDwell() float64 {
	if b.BurstSpells == 0 {
		return 0
	}
	return b.BurstTime / float64(b.BurstSpells)
}

// MeanNormalDwell returns the observed mean normal-spell length.
func (b BurstStats) MeanNormalDwell() float64 {
	if b.NormalSpells == 0 {
		return 0
	}
	return b.NormalTime / float64(b.NormalSpells)
}

// Generate produces all requests arriving within the horizon.
func (g Generator) Generate(horizon units.Seconds) ([]Request, error) {
	reqs, _, err := g.GenerateWithStats(horizon)
	return reqs, err
}

// GenerateWithStats is Generate plus the burst-process accounting the
// calibration tests assert against. The request stream is byte-identical
// to Generate's: the accounting consumes no randomness.
func (g Generator) GenerateWithStats(horizon units.Seconds) ([]Request, BurstStats, error) {
	if err := g.Validate(); err != nil {
		return nil, BurstStats{}, err
	}
	rng := mathx.NewRNG(g.Seed)
	lenRNG := rng.Split()
	burstRNG := rng.Split()

	pMu, pSigma := mathx.LogNormalParams(g.PromptMedian, g.PromptP99)
	oMu, oSigma := mathx.LogNormalParams(g.OutputMedian, g.OutputP99)

	var reqs []Request
	t := 0.0
	h := float64(horizon)
	bursting := false
	stateLeft := g.dwell(burstRNG, bursting)
	stats := BurstStats{NormalSpells: 1}
	// dwellTime credits elapsed time to the state it was spent in,
	// clipping at the horizon so the partition sums to exactly h.
	dwellTime := func(from, span float64, inBurst bool) {
		if from >= h {
			return
		}
		if from+span > h {
			span = h - from
		}
		if inBurst {
			stats.BurstTime += span
		} else {
			stats.NormalTime += span
		}
	}
	for {
		rate := g.Rate
		if g.BurstFactor > 1 && bursting {
			rate *= g.BurstFactor
		}
		dt := rng.Exponential(rate)
		// Advance the burst state across the gap.
		if g.BurstFactor > 1 {
			for dt >= stateLeft {
				dt -= stateLeft
				dwellTime(t, stateLeft, bursting)
				t += stateLeft
				bursting = !bursting
				if t < h {
					if bursting {
						stats.BurstSpells++
					} else {
						stats.NormalSpells++
					}
				}
				stateLeft = g.dwell(burstRNG, bursting)
				rate = g.Rate
				if bursting {
					rate *= g.BurstFactor
				}
				// Resample the remaining gap at the new rate.
				dt = rng.Exponential(rate)
			}
			stateLeft -= dt
		}
		dwellTime(t, dt, bursting)
		t += dt
		if t > h {
			break
		}
		reqs = append(reqs, Request{
			ID:           len(reqs),
			Arrival:      units.Seconds(t),
			PromptTokens: g.sampleLen(lenRNG, pMu, pSigma),
			OutputTokens: g.sampleLen(lenRNG, oMu, oSigma),
		})
	}
	if g.BurstFactor <= 1 {
		stats = BurstStats{NormalSpells: 1, NormalTime: math.Min(t, h)}
	}
	return reqs, stats, nil
}

func (g Generator) dwell(rng *mathx.RNG, bursting bool) float64 {
	dwell := float64(g.BurstDwell)
	if dwell <= 0 {
		dwell = 30
	}
	frac := g.BurstFraction
	if frac <= 0 || frac >= 1 {
		frac = 0.2
	}
	mean := dwell * (1 - frac)
	if bursting {
		mean = dwell * frac
	}
	return rng.Exponential(1 / mean)
}

func (g Generator) sampleLen(rng *mathx.RNG, mu, sigma float64) int {
	v := rng.LogNormal(mu, sigma)
	n := int(math.Round(v))
	if n < 1 {
		n = 1
	}
	if n > g.MaxTokens {
		n = g.MaxTokens
	}
	return n
}

// Stats summarizes a generated stream for calibration checks.
type Stats struct {
	Requests     int
	MeanRate     float64
	PromptMedian float64
	PromptP99    float64
	OutputMedian float64
	TotalPrompt  int
	TotalOutput  int
}

// Summarize computes stream statistics over the given horizon.
func Summarize(reqs []Request, horizon units.Seconds) Stats {
	s := Stats{Requests: len(reqs)}
	if len(reqs) == 0 {
		return s
	}
	prompts := make([]float64, len(reqs))
	outputs := make([]float64, len(reqs))
	for i, r := range reqs {
		prompts[i] = float64(r.PromptTokens)
		outputs[i] = float64(r.OutputTokens)
		s.TotalPrompt += r.PromptTokens
		s.TotalOutput += r.OutputTokens
	}
	if horizon > 0 {
		s.MeanRate = float64(len(reqs)) / float64(horizon)
	}
	s.PromptMedian = mathx.Percentile(prompts, 0.5)
	s.PromptP99 = mathx.Percentile(prompts, 0.99)
	s.OutputMedian = mathx.Percentile(outputs, 0.5)
	return s
}
