// Package trace synthesizes LLM inference request streams with the
// statistical shape of production workloads: Poisson (or bursty
// Markov-modulated) arrivals and lognormal token-length distributions
// pinned to published medians — the paper's evaluation uses the 1500-token
// median prompt length of a production coding workload (Splitwise).
//
// This substitutes for the proprietary production traces the paper's
// references draw on; only the statistics the models consume (medians,
// tail ratios, arrival intensity) are represented.
package trace

import (
	"fmt"
	"math"

	"litegpu/internal/mathx"
	"litegpu/internal/units"
)

// Request is one inference request.
type Request struct {
	ID      int
	Arrival units.Seconds
	// PromptTokens is the prefill length.
	PromptTokens int
	// OutputTokens is the number of tokens to decode.
	OutputTokens int
	// PrefixTokens is how many leading prompt tokens belong to a shared
	// prefix (a system prompt, tool definitions, conversation history)
	// identified by PrefixID; zero means no shared prefix. Only the KV
	// prefix cache reads these fields — they change nothing elsewhere.
	PrefixTokens int
	// PrefixID names which shared prefix the request reuses; requests
	// with equal nonzero PrefixID share prefix content.
	PrefixID int
	// Class is the tenant class index the request belongs to (its
	// position in MultiGenerator.Classes); zero for single-tenant
	// streams. Only multi-tenant serving features read it.
	Class int
	// Priority is the request's scheduling priority, copied from its
	// tenant class (higher is more important); zero for single-tenant
	// streams. Only admission control reads it.
	Priority int
}

// Generator produces synthetic request streams. The zero value is not
// useful; use NewGenerator or fill all fields.
type Generator struct {
	// Rate is the mean arrival rate in requests per second.
	Rate float64

	// PromptMedian and PromptP99 pin the prompt-length lognormal.
	PromptMedian, PromptP99 float64

	// OutputMedian and OutputP99 pin the output-length lognormal.
	OutputMedian, OutputP99 float64

	// MaxTokens caps both lengths (context-window limit).
	MaxTokens int

	// BurstFactor > 1 enables a two-state Markov-modulated Poisson
	// process: bursts arrive at Rate·BurstFactor for BurstFraction of
	// the time.
	BurstFactor   float64
	BurstFraction float64
	// BurstDwell is the mean dwell time in each burst state.
	BurstDwell units.Seconds

	// PrefixTokens and PrefixGroups mark every request as reusing one of
	// PrefixGroups shared prefixes of PrefixTokens leading prompt tokens
	// (clamped to the request's own prompt length). Group assignment
	// cycles deterministically by request index and consumes no
	// randomness, so setting these fields never perturbs the arrival or
	// length streams. Zero disables prefix marking.
	PrefixTokens int
	PrefixGroups int

	// Seed makes the stream reproducible.
	Seed uint64
}

// CodingWorkload returns the generator calibrated to the production
// coding workload the paper cites: median prompt 1500 tokens (Splitwise's
// reported median), heavy-tailed up to the context limit, short outputs.
func CodingWorkload(rate float64, seed uint64) Generator {
	return Generator{
		Rate:         rate,
		PromptMedian: 1500, PromptP99: 7000,
		OutputMedian: 80, OutputP99: 500,
		MaxTokens: 8192,
		Seed:      seed,
	}
}

// ConversationWorkload returns a chat-style mix: shorter prompts, longer
// outputs (Splitwise's conversation class).
func ConversationWorkload(rate float64, seed uint64) Generator {
	return Generator{
		Rate:         rate,
		PromptMedian: 1020, PromptP99: 6000,
		OutputMedian: 205, OutputP99: 1000,
		MaxTokens: 8192,
		Seed:      seed,
	}
}

// AgentWorkload returns an agentic mix: long prompts that open with a
// shared system-prompt-plus-tool-definitions prefix reused across a
// small set of agent templates, and tool-call-sized outputs. The shared
// 1024-token prefix across 4 templates is what the KV prefix cache
// exploits; with prefix caching off the stream behaves like any other
// long-prompt workload.
func AgentWorkload(rate float64, seed uint64) Generator {
	return Generator{
		Rate:         rate,
		PromptMedian: 2000, PromptP99: 7500,
		OutputMedian: 150, OutputP99: 900,
		MaxTokens:    8192,
		PrefixTokens: 1024, PrefixGroups: 4,
		Seed: seed,
	}
}

// Validate reports the first parameter problem, or nil.
func (g Generator) Validate() error {
	switch {
	case g.Rate <= 0:
		return fmt.Errorf("trace: non-positive rate %v", g.Rate)
	case g.PromptMedian <= 0 || g.OutputMedian <= 0:
		return fmt.Errorf("trace: non-positive token medians")
	case g.MaxTokens <= 0:
		return fmt.Errorf("trace: non-positive MaxTokens")
	case mathx.ExactNe(g.BurstFactor, 0) && g.BurstFactor < 1:
		return fmt.Errorf("trace: BurstFactor must be ≥ 1 when set")
	case g.PrefixTokens < 0 || g.PrefixGroups < 0:
		return fmt.Errorf("trace: negative prefix parameters")
	}
	return nil
}

// BurstStats summarizes the Markov-modulated arrival process of one
// generated stream: how much of the horizon was spent bursting and how
// the state dwells distributed. For a non-bursty generator (BurstFactor
// ≤ 1) the whole horizon is one normal spell.
type BurstStats struct {
	// BurstTime and NormalTime partition the horizon between the two
	// modulation states, in seconds.
	BurstTime  float64
	NormalTime float64
	// BurstSpells and NormalSpells count state visits (the initial
	// normal spell included).
	BurstSpells  int
	NormalSpells int
}

// BurstFraction returns the observed share of time spent bursting.
func (b BurstStats) BurstFraction() float64 {
	total := b.BurstTime + b.NormalTime
	if total <= 0 {
		return 0
	}
	return b.BurstTime / total
}

// MeanBurstDwell returns the observed mean burst-spell length.
func (b BurstStats) MeanBurstDwell() float64 {
	if b.BurstSpells == 0 {
		return 0
	}
	return b.BurstTime / float64(b.BurstSpells)
}

// MeanNormalDwell returns the observed mean normal-spell length.
func (b BurstStats) MeanNormalDwell() float64 {
	if b.NormalSpells == 0 {
		return 0
	}
	return b.NormalTime / float64(b.NormalSpells)
}

// Generate produces all requests arriving within the horizon,
// materialized as a slice. For horizon×rate products in the millions,
// prefer Stream, which yields the identical request sequence one
// arrival at a time in constant memory.
func (g Generator) Generate(horizon units.Seconds) ([]Request, error) {
	reqs, _, err := g.GenerateWithStats(horizon)
	return reqs, err
}

// GenerateWithStats is Generate plus the burst-process accounting the
// calibration tests assert against. The request stream is byte-identical
// to Generate's: the accounting consumes no randomness.
func (g Generator) GenerateWithStats(horizon units.Seconds) ([]Request, BurstStats, error) {
	s, err := g.Stream(horizon)
	if err != nil {
		return nil, BurstStats{}, err
	}
	var reqs []Request
	for {
		r, ok := s.Next()
		if !ok {
			break
		}
		reqs = append(reqs, r)
	}
	return reqs, s.Stats(), nil
}

// Stream is a lazy request generator: Next synthesizes arrivals one at
// a time, in nondecreasing arrival order, holding only O(1) state — no
// materialized trace. The sequence is byte-identical to what Generate
// returns for the same Generator and horizon (Generate is implemented
// on Stream), so simulations can switch between materialized and
// streaming traces without perturbing a single metric.
//
// A Stream is single-use and not safe for concurrent use; derive one
// per simulation.
type Stream struct {
	g        Generator
	rng      *mathx.RNG
	lenRNG   *mathx.RNG
	burstRNG *mathx.RNG

	pMu, pSigma float64
	oMu, oSigma float64

	h         float64
	t         float64
	n         int
	bursting  bool
	stateLeft float64
	done      bool
	stats     BurstStats
}

// Stream validates the generator and returns the lazy arrival iterator
// for all requests arriving within the horizon.
func (g Generator) Stream(horizon units.Seconds) (*Stream, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	rng := mathx.NewRNG(g.Seed)
	s := &Stream{
		g:        g,
		rng:      rng,
		lenRNG:   rng.Split(),
		burstRNG: rng.Split(),
		h:        float64(horizon),
		stats:    BurstStats{NormalSpells: 1},
	}
	s.pMu, s.pSigma = mathx.LogNormalParams(g.PromptMedian, g.PromptP99)
	s.oMu, s.oSigma = mathx.LogNormalParams(g.OutputMedian, g.OutputP99)
	s.stateLeft = g.dwell(s.burstRNG, false)
	return s, nil
}

// dwellTime credits elapsed time to the state it was spent in,
// clipping at the horizon so the partition sums to exactly h.
func (s *Stream) dwellTime(from, span float64, inBurst bool) {
	if from >= s.h {
		return
	}
	if from+span > s.h {
		span = s.h - from
	}
	if inBurst {
		s.stats.BurstTime += span
	} else {
		s.stats.NormalTime += span
	}
}

// Next returns the next arrival, or ok=false once the horizon is
// exhausted (every later call keeps returning false).
func (s *Stream) Next() (Request, bool) {
	if s.done {
		return Request{}, false
	}
	g := s.g
	rate := g.Rate
	if g.BurstFactor > 1 && s.bursting {
		rate *= g.BurstFactor
	}
	dt := s.rng.Exponential(rate)
	// Advance the burst state across the gap.
	if g.BurstFactor > 1 {
		for dt >= s.stateLeft {
			dt -= s.stateLeft
			s.dwellTime(s.t, s.stateLeft, s.bursting)
			s.t += s.stateLeft
			s.bursting = !s.bursting
			if s.t < s.h {
				if s.bursting {
					s.stats.BurstSpells++
				} else {
					s.stats.NormalSpells++
				}
			}
			s.stateLeft = g.dwell(s.burstRNG, s.bursting)
			rate = g.Rate
			if s.bursting {
				rate *= g.BurstFactor
			}
			// Resample the remaining gap at the new rate.
			dt = s.rng.Exponential(rate)
		}
		s.stateLeft -= dt
	}
	s.dwellTime(s.t, dt, s.bursting)
	s.t += dt
	if s.t > s.h {
		s.done = true
		return Request{}, false
	}
	r := Request{
		ID:           s.n,
		Arrival:      units.Seconds(s.t),
		PromptTokens: g.sampleLen(s.lenRNG, s.pMu, s.pSigma),
		OutputTokens: g.sampleLen(s.lenRNG, s.oMu, s.oSigma),
	}
	if g.PrefixGroups > 0 && g.PrefixTokens > 0 {
		// Derived from the request index, not the RNGs: streams with and
		// without prefix marking are otherwise byte-identical.
		r.PrefixID = 1 + s.n%g.PrefixGroups
		r.PrefixTokens = min(g.PrefixTokens, r.PromptTokens)
	}
	s.n++
	return r, true
}

// Stats returns the burst-process accounting. It is complete once Next
// has reported ok=false; before exhaustion it covers the stream so far.
func (s *Stream) Stats() BurstStats {
	if s.g.BurstFactor <= 1 {
		// Non-bursty streams are one normal spell; the incremental
		// accounting is only meaningful for the Markov-modulated case.
		return BurstStats{NormalSpells: 1, NormalTime: math.Min(s.t, s.h)}
	}
	return s.stats
}

func (g Generator) dwell(rng *mathx.RNG, bursting bool) float64 {
	dwell := float64(g.BurstDwell)
	if dwell <= 0 {
		dwell = 30
	}
	frac := g.BurstFraction
	if frac <= 0 || frac >= 1 {
		frac = 0.2
	}
	mean := dwell * (1 - frac)
	if bursting {
		mean = dwell * frac
	}
	return rng.Exponential(1 / mean)
}

func (g Generator) sampleLen(rng *mathx.RNG, mu, sigma float64) int {
	v := rng.LogNormal(mu, sigma)
	n := int(math.Round(v))
	if n < 1 {
		n = 1
	}
	if n > g.MaxTokens {
		n = g.MaxTokens
	}
	return n
}

// Stats summarizes a generated stream for calibration checks.
type Stats struct {
	Requests     int
	MeanRate     float64
	PromptMedian float64
	PromptP99    float64
	OutputMedian float64
	TotalPrompt  int
	TotalOutput  int
}

// Summarize computes stream statistics over the given horizon.
func Summarize(reqs []Request, horizon units.Seconds) Stats {
	s := Stats{Requests: len(reqs)}
	if len(reqs) == 0 {
		return s
	}
	prompts := make([]float64, len(reqs))
	outputs := make([]float64, len(reqs))
	for i, r := range reqs {
		prompts[i] = float64(r.PromptTokens)
		outputs[i] = float64(r.OutputTokens)
		s.TotalPrompt += r.PromptTokens
		s.TotalOutput += r.OutputTokens
	}
	if horizon > 0 {
		s.MeanRate = float64(len(reqs)) / float64(horizon)
	}
	s.PromptMedian = mathx.Percentile(prompts, 0.5)
	s.PromptP99 = mathx.Percentile(prompts, 0.99)
	s.OutputMedian = mathx.Percentile(outputs, 0.5)
	return s
}
