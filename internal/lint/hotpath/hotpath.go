// Package hotpath defines the litegpu-lint analyzer behind the
// //litegpu:hotpath annotation: a per-function, named version of the
// AllocsPerRun pins.
//
// The simulators' steady state is allocation-free (PR 4/5); the
// AllocsPerRun tests prove it end-to-end but diagnose nothing — when a
// pin trips, someone bisects. This analyzer turns the invariant into
// per-function diagnoses: a function whose doc comment carries
// //litegpu:hotpath (event handlers, scheduler step functions, the
// netsim waterfill, ring-buffer ops) is checked for allocation-prone
// constructs:
//
//   - closure literals (a per-event closure was the exact regression PR
//     4 removed from the event calendar);
//   - map/slice composite literals, make, and new;
//   - append that cannot be the recycled-buffer idiom: appending into a
//     different slice than the first operand, or growing a
//     function-local slice that dies with the call. Self-append to a
//     field, parameter, or package-level buffer is the sanctioned
//     reuse pattern (amortized-zero, proven by the pins) and is
//     allowed;
//   - interface boxing at call sites: passing a non-pointer-shaped
//     concrete value to an interface parameter allocates;
//   - fmt calls and non-constant string concatenation.
//
// Arguments of panic(...) are exempt — a panic path is cold by
// definition, and the repo convention panics with fmt.Sprintf detail.
// Anything else must be fixed or waived with //litegpu:alloc-ok
// <reason>; the waiver is how warm-up growth (arena chunks, high-water
// marks) is documented in place.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"litegpu/internal/lint/analysis"
)

// Analyzer is the hot-path allocation check.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "check //litegpu:hotpath functions for allocation-prone " +
		"constructs (closures, literals, growing appends, boxing, fmt)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		marked := map[*ast.Comment]bool{}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if isHotpathMarker(c.Text) {
					marked[c] = true
					if fd.Body != nil {
						check(pass, fd)
					}
				}
			}
		}
		// A marker that is not part of some function's doc comment
		// marks nothing — report it rather than let it lie.
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if isHotpathMarker(c.Text) && !marked[c] {
					pass.Reportf(c.Pos(), "",
						"misplaced //litegpu:hotpath: the marker must sit in a function declaration's doc comment")
				}
			}
		}
	}
	return nil
}

func isHotpathMarker(text string) bool {
	return text == analysis.HotpathDirective ||
		strings.HasPrefix(text, analysis.HotpathDirective+" ")
}

// checker carries one hot-path function's walk state.
type checker struct {
	pass *analysis.Pass
	fn   *ast.FuncDecl
	// panicArgs marks every node inside a panic(...) argument: the cold
	// path exemption.
	panicArgs map[ast.Node]bool
	// params are the function's parameter/receiver/result objects —
	// slices among them are caller-owned buffers, so self-append to
	// them is reuse, not growth.
	params map[types.Object]bool
	// handledAppends are append calls consumed by assignment analysis;
	// any append call seen outside one is an escaping append.
	handledAppends map[*ast.CallExpr]bool
}

func check(pass *analysis.Pass, fd *ast.FuncDecl) {
	c := &checker{
		pass:           pass,
		fn:             fd,
		panicArgs:      map[ast.Node]bool{},
		params:         map[types.Object]bool{},
		handledAppends: map[*ast.CallExpr]bool{},
	}
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pass.TypesInfo.ObjectOf(name); obj != nil {
					c.params[obj] = true
				}
			}
		}
	}
	collect(fd.Recv)
	collect(fd.Type.Params)
	collect(fd.Type.Results)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && c.isBuiltin(call.Fun, "panic") {
			for _, a := range call.Args {
				ast.Inspect(a, func(m ast.Node) bool {
					if m != nil {
						c.panicArgs[m] = true
					}
					return true
				})
			}
		}
		return true
	})

	ast.Inspect(fd.Body, c.visit)
}

func (c *checker) visit(n ast.Node) bool {
	if n == nil || c.panicArgs[n] {
		return n != nil && !c.panicArgs[n] // skip whole panic-arg subtrees
	}
	switch n := n.(type) {
	case *ast.FuncLit:
		c.report(n.Pos(), "closure literal allocates per call; bind the handler once at setup and pass context through an arg word")
		return false // the literal's body runs elsewhere; one report is enough
	case *ast.CompositeLit:
		c.checkCompositeLit(n)
	case *ast.AssignStmt:
		c.checkAssign(n)
	case *ast.CallExpr:
		c.checkCall(n)
	case *ast.BinaryExpr:
		c.checkConcat(n)
	}
	return true
}

func (c *checker) report(pos token.Pos, format string, args ...interface{}) {
	c.pass.Reportf(pos, "alloc", "hot path %s: "+format,
		append([]interface{}{c.fn.Name.Name}, args...)...)
}

// checkCompositeLit flags map and slice literals; struct and array
// literals are values and stay off the heap.
func (c *checker) checkCompositeLit(lit *ast.CompositeLit) {
	t := c.pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		c.report(lit.Pos(), "slice literal allocates; reuse a preallocated buffer")
	case *types.Map:
		c.report(lit.Pos(), "map literal allocates; hoist it to setup")
	}
}

// checkAssign pairs appends with their destination so the recycled-
// buffer idiom (x = append(x, ...) into storage that outlives the call)
// passes while growing appends are flagged.
func (c *checker) checkAssign(asg *ast.AssignStmt) {
	if len(asg.Lhs) != len(asg.Rhs) {
		return
	}
	for i, rhs := range asg.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !c.isBuiltin(call.Fun, "append") || len(call.Args) == 0 {
			continue
		}
		c.handledAppends[call] = true
		if c.panicArgs[call] {
			continue
		}
		lhs := asg.Lhs[i]
		if types.ExprString(lhs) != types.ExprString(sliceBase(call.Args[0])) {
			c.report(call.Pos(), "append into a different slice (%s vs %s) allocates a new backing array",
				types.ExprString(lhs), types.ExprString(call.Args[0]))
			continue
		}
		if id, ok := lhs.(*ast.Ident); ok {
			obj := c.pass.TypesInfo.ObjectOf(id)
			if c.isFunctionLocal(obj) {
				c.report(call.Pos(), "append grows function-local slice %s, which dies with the call; reuse a field or parameter buffer or waive with //litegpu:alloc-ok",
					id.Name)
			}
		}
	}
}

// isFunctionLocal reports whether obj is a variable declared inside the
// checked function body — not a parameter, receiver, field, or
// package-level buffer.
func (c *checker) isFunctionLocal(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || c.params[obj] || v.IsField() {
		return false
	}
	return obj.Pos() >= c.fn.Body.Pos() && obj.Pos() <= c.fn.Body.End()
}

// sliceBase unwraps reslicings: the base of x[:n] is x, so
// `buf = append(buf[:0], ...)` still counts as self-append.
func sliceBase(e ast.Expr) ast.Expr {
	for {
		s, ok := e.(*ast.SliceExpr)
		if !ok {
			return e
		}
		e = s.X
	}
}

func (c *checker) checkCall(call *ast.CallExpr) {
	switch {
	case c.isBuiltin(call.Fun, "append"):
		if !c.handledAppends[call] {
			c.report(call.Pos(), "append result escapes (not assigned back to its operand); it allocates a new backing array")
		}
		return
	case c.isBuiltin(call.Fun, "make"):
		c.report(call.Pos(), "make allocates; hoist the buffer to setup or waive with //litegpu:alloc-ok")
		return
	case c.isBuiltin(call.Fun, "new"):
		c.report(call.Pos(), "new allocates; recycle through an arena free list")
		return
	case c.isBuiltin(call.Fun, "panic"):
		// The argument subtree is already exempt (cold path); the boxing
		// into panic's interface{} parameter is part of the same exemption.
		return
	}

	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok &&
			fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			c.report(call.Pos(), "fmt.%s allocates; hot paths must not format", fn.Name())
			return
		}
	}

	// Interface boxing at the call site: a non-pointer-shaped concrete
	// argument passed as an interface parameter allocates.
	if c.pass.TypesInfo.Types[call.Fun].IsType() {
		return // conversion, not a call
	}
	sig, ok := typeAsSignature(c.pass.TypesInfo.TypeOf(call.Fun))
	if !ok || sig.Params() == nil {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis != token.NoPos {
				continue // s... passes the slice through, no boxing here
			}
			pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := c.pass.TypesInfo.TypeOf(arg)
		if at == nil || types.IsInterface(at) || isUntypedNil(at) || pointerShaped(at) {
			continue
		}
		c.report(arg.Pos(), "passing %s as interface %s boxes the value and allocates",
			types.TypeString(at, nil), types.TypeString(pt, nil))
	}
}

// checkConcat flags non-constant string concatenation.
func (c *checker) checkConcat(be *ast.BinaryExpr) {
	if be.Op != token.ADD {
		return
	}
	t := c.pass.TypesInfo.TypeOf(be)
	if t == nil {
		return
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsString == 0 {
		return
	}
	if c.pass.TypesInfo.Types[be].Value != nil {
		return // folded at compile time
	}
	c.report(be.Pos(), "string concatenation allocates; hot paths must not build strings")
}

func (c *checker) isBuiltin(fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = c.pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

func typeAsSignature(t types.Type) (*types.Signature, bool) {
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// pointerShaped reports whether values of t fit in an interface's data
// word without allocating: pointers, channels, maps, funcs, and
// unsafe.Pointer.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}
