package hotpath_test

import (
	"testing"

	"litegpu/internal/lint/analysistest"
	"litegpu/internal/lint/hotpath"
)

// TestHotpath pins the //litegpu:hotpath contract: annotated functions
// are checked for closures, map/slice literals, make/new, growing
// appends, fmt, string building, and interface boxing, while the
// recycled-buffer idiom, panic arguments, pointer-shaped boxing, and
// //litegpu:alloc-ok-waived lines pass. Unannotated functions are never
// checked; a marker outside a function doc is reported as misplaced.
func TestHotpath(t *testing.T) {
	analysistest.Run(t, "../testdata", "hotpath", hotpath.Analyzer)
}
