// Package driver loads and typechecks Go packages for litegpu-lint and
// formats the resulting diagnostics.
//
// It supports the two ways the linter runs:
//
//   - Standalone (Load): shell out to `go list -deps -export -json`,
//     which compiles export data for every dependency into the build
//     cache, then typecheck each root package from source with an
//     importer that reads that export data. This needs no network, no
//     module downloads, and no x/tools — only the go tool that built
//     the repo.
//
//   - Vet tool (RunVetCfg): speak the `go vet -vettool` protocol. The
//     go command invokes the tool once per package with a JSON config
//     file naming the sources, the import map, and the export data it
//     already built; diagnostics go to stderr and a nonzero exit marks
//     findings.
package driver

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"

	"litegpu/internal/lint/analysis"
)

// listPackage is the subset of `go list -json` output the driver needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load resolves patterns ("./...", "litegpu/internal/sim") to their
// packages, typechecks each from source, and returns them ready for
// analysis. Dependencies — listed packages' imports and the standard
// library — come from compiled export data, so only root packages pay
// for parsing. Test files are not loaded; the analyzers run over what
// ships.
func Load(dir string, patterns []string) ([]*analysis.Package, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v", strings.Join(args, " "), err)
	}

	exports := map[string]string{}
	var roots []*listPackage
	seen := map[string]bool{}
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("loading %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !seen[p.ImportPath] && len(p.GoFiles) > 0 {
			seen[p.ImportPath] = true
			roots = append(roots, &p)
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, func(path string) string { return exports[path] })

	var pkgs []*analysis.Package
	for _, r := range roots {
		pkg, err := typecheck(fset, imp, r.ImportPath, r.Dir, r.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// exportImporter returns a gc-export-data importer whose lookup is
// resolve: import path -> export data file.
func exportImporter(fset *token.FileSet, resolve func(string) string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f := resolve(path)
		if f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// typecheck parses and checks one package from source.
func typecheck(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*analysis.Package, error) {
	var files []*ast.File
	sources := map[string][]byte{}
	for _, name := range goFiles {
		full := name
		if dir != "" && !strings.HasPrefix(name, "/") {
			full = dir + "/" + name
		}
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(fset, full, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		sources[full] = src
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", importPath, err)
	}
	return &analysis.Package{
		Path:      importPath,
		Fset:      fset,
		Files:     files,
		Sources:   sources,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// Format renders one diagnostic as file:line:col: message (analyzer).
func Format(fset *token.FileSet, d analysis.Diagnostic) string {
	p := fset.Position(d.Pos)
	name := p.Filename
	if wd, err := os.Getwd(); err == nil {
		if rel := strings.TrimPrefix(name, wd+"/"); rel != name {
			name = rel
		}
	}
	return fmt.Sprintf("%s:%d:%d: %s (%s)", name, p.Line, p.Column, d.Message, d.Analyzer)
}

// vetConfig is the JSON unit description `go vet -vettool` hands the
// tool, one file per package (see cmd/go internal/work and the x/tools
// unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunVetCfg executes one vet unit: load the config, typecheck the
// package, run the analyzers, print findings to w. It returns the
// process exit code: 0 clean, 1 findings, 2 internal error.
func RunVetCfg(cfgPath string, analyzers []*analysis.Analyzer, w io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(w, "litegpu-lint: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(w, "litegpu-lint: parsing %s: %v\n", cfgPath, err)
		return 2
	}

	// The go command expects the facts file to exist even though these
	// analyzers produce no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(w, "litegpu-lint: writing facts: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, func(path string) string {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		return cfg.PackageFile[path]
	})
	pkg, err := typecheck(fset, imp, cfg.ImportPath, "", cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(w, "litegpu-lint: %v\n", err)
		return 2
	}
	diags, err := analysis.RunPackage(pkg, analyzers)
	if err != nil {
		fmt.Fprintf(w, "litegpu-lint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		p := fset.Position(d.Pos)
		fmt.Fprintf(w, "%s:%d:%d: %s\n", p.Filename, p.Line, p.Column, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
