package lint_test

import (
	"strings"
	"testing"

	"litegpu/internal/lint"
	"litegpu/internal/lint/analysis"
	"litegpu/internal/lint/driver"
)

// TestRepoIsLintClean runs the full analyzer suite over every package
// in the module and requires zero findings: each real hazard has been
// fixed or carries an audited //litegpu: waiver, and no waiver is
// stale. This is the same check CI's lint job performs via
// cmd/litegpu-lint.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go tool")
	}
	pkgs, err := driver.Load("", []string{"litegpu/..."})
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	var sawSim bool
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Path, "internal/sim") {
			sawSim = true
		}
		diags, err := analysis.RunPackage(pkg, lint.All())
		if err != nil {
			t.Fatalf("%v", err)
		}
		for _, d := range diags {
			t.Errorf("lint finding: %s", driver.Format(pkg.Fset, d))
		}
	}
	if !sawSim {
		t.Fatal("litegpu/internal/sim not among loaded packages; pattern broken")
	}
}
