// Package analysistest runs litegpu-lint analyzers over golden fixture
// packages, in the style of golang.org/x/tools/go/analysis/analysistest
// (reimplemented on the standard library; see internal/lint/analysis
// for why).
//
// A fixture lives at <testdata>/src/<pkgpath>/ and is plain Go source.
// Expected findings are written in the source as `// want` comments:
//
//	t0 := time.Now() // want "wall clock in simulation package"
//
// Each double-quoted string after `// want` is a regular expression
// that must match one diagnostic on that line; diagnostics without a
// matching expectation, and expectations without a matching diagnostic,
// fail the test. Waiver hygiene findings (stale waivers, missing
// reasons, unknown directives) participate like any other diagnostic,
// so fixtures can pin the waiver machinery itself.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"litegpu/internal/lint/analysis"
)

// Run loads the fixture package at <testdata>/src/<pkgpath>, applies
// the analyzers through analysis.RunPackage (waivers included), and
// checks the resulting diagnostics against the fixture's `// want`
// expectations.
func Run(t *testing.T, testdata, pkgpath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	pkg, err := loadFixture(testdata, pkgpath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgpath, err)
	}
	diags, err := analysis.RunPackage(pkg, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", pkgpath, err)
	}

	expects, err := parseExpectations(pkg)
	if err != nil {
		t.Fatalf("parsing // want expectations in %s: %v", pkgpath, err)
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !claim(expects, pos, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", pos, d.Message, d.Analyzer)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", e.file, e.line, e.re)
		}
	}
}

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// claim marks the first unmatched expectation on the diagnostic's line
// whose pattern matches; it reports whether one was found.
func claim(expects []*expectation, pos token.Position, msg string) bool {
	for _, e := range expects {
		if e.matched || e.line != pos.Line || e.file != pos.Filename {
			continue
		}
		if e.re.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

// wantMarker introduces expectations inside a comment. It may start the
// comment (`// want "..."`) or trail other comment text — notably a
// waiver directive asserting its own hygiene finding.
const wantMarker = "// want"

func parseExpectations(pkg *analysis.Package) ([]*expectation, error) {
	var expects []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				i := strings.Index(c.Text, wantMarker)
				if i < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(c.Text[i+len(wantMarker):])
				if rest == "" {
					return nil, fmt.Errorf("%s: empty // want", pos)
				}
				for rest != "" {
					if rest[0] != '"' {
						return nil, fmt.Errorf("%s: // want expects double-quoted regexps, got %q", pos, rest)
					}
					end := quoteEnd(rest)
					if end < 0 {
						return nil, fmt.Errorf("%s: unterminated string in // want", pos)
					}
					pat, err := strconv.Unquote(rest[:end+1])
					if err != nil {
						return nil, fmt.Errorf("%s: bad string in // want: %v", pos, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s: bad regexp in // want: %v", pos, err)
					}
					expects = append(expects, &expectation{
						file: pos.Filename, line: pos.Line, re: re,
					})
					rest = strings.TrimSpace(rest[end+1:])
				}
			}
		}
	}
	return expects, nil
}

// quoteEnd returns the index of the closing quote of the double-quoted
// string starting at s[0], honoring backslash escapes, or -1.
func quoteEnd(s string) int {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return i
		}
	}
	return -1
}

// loadFixture parses and typechecks one fixture package from source.
// Fixtures may import the standard library only; imports resolve
// through the gc export data shipped with the Go distribution, so no
// network or module cache is needed.
func loadFixture(testdata, pkgpath string) (*analysis.Package, error) {
	dir := filepath.Join(testdata, "src", filepath.FromSlash(pkgpath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	sources := map[string][]byte{}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, filepath.Join(dir, e.Name()))
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	for _, name := range names {
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		sources[name] = src
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", nil)}
	tpkg, err := conf.Check(pkgpath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck: %v", err)
	}
	return &analysis.Package{
		Path:      pkgpath,
		Fset:      fset,
		Files:     files,
		Sources:   sources,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
