// KV-allocator-shaped cases: the paged-allocator idioms the kv package
// leans on — free-list pops, intrusive-list relinks, table lookups by
// key mixing — must all be expressible without allocation, and the
// tempting shortcuts (per-call scratch maps, growing a local eviction
// list) are exactly what the analyzer flags.
package hotpath

type seq struct {
	blocks []int32
}

type alloc struct {
	free []int32
	seqs []seq
	refs []int16
}

// obtain is the sanctioned steady-state form: pop the free stack and
// relink fixed-size tables in place — no allocation anywhere.
//
//litegpu:hotpath
func (a *alloc) obtain() int32 {
	if n := len(a.free); n > 0 {
		b := a.free[n-1]
		a.free = a.free[:n-1]
		a.refs[b]++
		return b
	}
	return -1
}

// release recycles a block back through the same backing array.
//
//litegpu:hotpath
func (a *alloc) release(b int32) {
	a.refs[b]--
	a.free = append(a.free, b) // self-append to field buffer: reuse, allowed
}

//litegpu:hotpath
func (a *alloc) evictBatch(n int) []int32 {
	victims := []int32{} // want "slice literal allocates"
	for i := 0; i < n; i++ {
		victims = append(victims, a.obtain()) // want "append grows function-local slice victims"
	}
	return victims
}

//litegpu:hotpath
func (a *alloc) lookupScratch(keys []uint64) int {
	seen := map[uint64]bool{} // want "map literal allocates"
	for _, k := range keys {
		seen[k] = true
	}
	return len(seen)
}
