// Fixture for the observer-hook idiom: telemetry hooks threaded
// through //litegpu:hotpath functions must be a nil-guarded method
// call on a concrete recorder pointer with scalar arguments only —
// that form is free when the recorder is nil and allocation-free when
// it is live. Boxing the payload into an interface or rendering it
// with fmt turns the hook into a per-event allocation and is flagged.
package hotpath

import "fmt"

// recorder mimics internal/obs.Recorder: a concrete pointer type whose
// hook method takes only scalar words.
type recorder struct{ events int }

func (r *recorder) request(kind uint8, t float64, pool, inst int32, req int64, val float64) {
	r.events++
}

type observedPool struct {
	rec *recorder
}

// The sanctioned hook form: nil-guard on the concrete pointer, scalar
// arguments, nothing formatted, nothing boxed.
//
//litegpu:hotpath
func (p *observedPool) dispatch(now float64, id int64, tokens int) {
	if p.rec != nil {
		p.rec.request(1, now, 0, -1, id, float64(tokens))
	}
}

// Formatting the event label defeats the zero-cost contract even
// behind the nil guard.
//
//litegpu:hotpath
func (p *observedPool) dispatchFormatted(now float64, id int64) {
	if p.rec != nil {
		label := fmt.Sprintf("req %d", id) // want "fmt.Sprintf allocates"
		_ = label
		p.rec.request(1, now, 0, -1, id, 0)
	}
}

// Boxing the payload into an interface allocates per event; the hook
// signature must stay scalar.
//
//litegpu:hotpath
func (p *observedPool) dispatchBoxed(now float64, id int64) {
	if p.rec != nil {
		consume(id) // want "passing int64 as interface"
		p.rec.request(1, now, 0, -1, id, 0)
	}
}
