// Fixture for the hotpath analyzer: only functions whose doc carries
// //litegpu:hotpath are checked; within them every allocation-prone
// construct is flagged unless it is the recycled-buffer idiom, a panic
// argument, or carries an //litegpu:alloc-ok waiver.
package hotpath

import "fmt"

type ring struct {
	buf []int
}

var global []int

func sinkSlice(v []int)          {}
func consume(v interface{})      {}
func variadic(vs ...interface{}) {}

// cold is unannotated: anything goes.
func cold() []int {
	f := func() int { return 1 }
	return append([]int{}, f())
}

//litegpu:hotpath
func closure(v int) func() int {
	return func() int { return v } // want "closure literal allocates"
}

//litegpu:hotpath
func literals() {
	_ = []int{1, 2}      // want "slice literal allocates"
	_ = map[string]int{} // want "map literal allocates"
}

//litegpu:hotpath
func makes() {
	_ = make([]int, 4) // want "make allocates"
	_ = new(int)       // want "new allocates"
}

//litegpu:hotpath
func appends(dst []int, n int) []int {
	dst = append(dst, n)       // self-append to parameter: reuse, allowed
	global = append(global, n) // self-append to package buffer: allowed
	local := []int(nil)
	local = append(local, n)  // want "append grows function-local slice local"
	dst = append(local, n)    // want "append into a different slice"
	sinkSlice(append(dst, n)) // want "append result escapes"
	return dst
}

// push is the sanctioned reslice-reuse form: append into a field
// through a reslicing of itself.
//
//litegpu:hotpath
func (r *ring) push(v int) {
	r.buf = append(r.buf[:0], v)
}

//litegpu:hotpath
func format(name string) string {
	s := fmt.Sprintf("x=%s", name) // want "fmt.Sprintf allocates"
	return s + "!"                 // want "string concatenation allocates"
}

//litegpu:hotpath
func boxing(n int, r *ring) {
	consume(n)       // want "passing int as interface"
	consume(r)       // pointer-shaped: no allocation, allowed
	variadic(n, nil) // want "passing int as interface"
	variadic(nil)    // untyped nil: allowed
}

// guard panics with formatted detail: panic arguments are cold-path and
// exempt from every hotpath check.
//
//litegpu:hotpath
func guard(n int) {
	if n < 0 {
		panic(fmt.Sprintf("negative: %d", n))
	}
}

//litegpu:hotpath
func waived() {
	scratch := make([]int, 0, 4) //litegpu:alloc-ok warm-up scratch, amortized-zero per the pins
	_ = scratch
}

// A marker outside a function doc marks nothing and is reported.
//
//litegpu:hotpath // want "misplaced //litegpu:hotpath"
var notAFunction int
