// Fixture for the goroutine-rule waiver: the package path ends in
// "sim" so spawns are in scope, and //litegpu:go-ok is the only way to
// keep one. It pins both sides of the contract — an audited spawn with
// a reasoned waiver stays silent, everything else still fires.
package sim

func work() {}

// ShardWorker is the sanctioned shape: a spawn audited for determinism
// (window-synchronized, merged in fixed order) carrying a reasoned
// trailing waiver.
func ShardWorker() {
	go work() //litegpu:go-ok window-synchronized shard worker, merged in fixed pool order
}

// StandaloneWaived has the waiver on its own line, covering the spawn
// on the next.
func StandaloneWaived() {
	//litegpu:go-ok command-channel worker; barriers make it deterministic
	go work()
}

// Unwaived proves spawns stay forbidden by default.
func Unwaived() {
	go work() // want "goroutine spawned in simulation package"
}

// Reasonless proves a bare waiver is malformed: the hygiene finding
// fires and the spawn finding it meant to cover survives.
func Reasonless() {
	go work() //litegpu:go-ok // want "goroutine spawned in simulation package" "waiver needs a reason"
}

// WrongCategory proves waivers are category-precise: an ordered-ok
// cannot mute a spawn, and is itself stale.
func WrongCategory() {
	go work() //litegpu:ordered-ok not the right directive // want "goroutine spawned in simulation package" "stale //litegpu:ordered-ok waiver"
}

//litegpu:go-ok nothing spawns on the next line // want "stale //litegpu:go-ok waiver"
func Stale() {}
