// Fixture proving scope: this package path does not end in a simulation
// segment, so determinism and floatcmp stay silent on constructs they
// would flag in internal/sim.
package notsim

import "time"

func Uptime(start time.Time) time.Duration {
	return time.Since(start)
}

func Sum(m map[string]float64) (total float64) {
	for _, v := range m {
		total += v
	}
	return total
}

func Same(a, b float64) bool {
	return a == b
}
