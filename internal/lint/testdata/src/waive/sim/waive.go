// Fixture for the waiver machinery: valid waivers suppress exactly the
// finding on their line, and the scanner reports its own hygiene
// findings (stale waivers, missing reasons, unknown directives).
package sim

var registry = map[string]int{}

// Waived has a trailing waiver on the map range: suppressed, no want.
func Waived() int {
	total := 0
	for _, v := range registry { //litegpu:ordered-ok summation is commutative
		total += v
	}
	return total
}

// StandaloneWaived has the waiver on its own line, covering the next.
func StandaloneWaived() int {
	n := 0
	//litegpu:ordered-ok single-entry map in this configuration
	for k, v := range registry {
		n += len(k) + v
	}
	return n
}

// Unwaived proves a waiver's scope is one line: the waivers above do
// not leak here.
func Unwaived() int {
	n := 0
	for k := range registry { // want "range over map"
		n += len(k)
	}
	return n
}

//litegpu:ordered-ok nothing on the next line needs this // want "stale //litegpu:ordered-ok waiver"
func Stale() int { return len(registry) }

// MissingReason: a reasonless waiver is malformed, so it is reported
// AND the finding it meant to cover still fires.
func MissingReason() int {
	m := 0
	for _, v := range registry { //litegpu:ordered-ok // want "range over map" "waiver needs a reason"
		m += v
	}
	return m
}

//litegpu:frobnicate yes // want "unknown //litegpu: directive frobnicate"
func Unknown() int { return 0 }
