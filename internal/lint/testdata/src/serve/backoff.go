// Fixture for the determinism analyzer over the closed-loop client
// idiom: the package path ends in "serve" (simulation scope), and the
// retry/backoff machinery must draw jitter only from an explicitly
// seeded generator — never the global math/rand stream or a wall
// clock. This pins the contract docs/workloads.md states for
// ClientConfig: backoff jitter comes from the pool's seeded RNG, so
// closed-loop runs stay byte-identical.
package serve

import (
	"math/rand"
	"time"
)

// Client mirrors the shape of the real closed-loop client state: a
// backoff policy plus a generator seeded once at construction.
type Client struct {
	Base, Cap, Jitter float64
	rng               *rand.Rand
}

// NewClient seeds the retry RNG explicitly — the sanctioned form.
func NewClient(seed int64) *Client {
	return &Client{Base: 1, Cap: 30, Jitter: 0.5, rng: rand.New(rand.NewSource(seed))}
}

// Backoff is the sanctioned retry delay: capped exponential growth with
// jitter drawn from the client's own seeded generator. No findings.
func (c *Client) Backoff(attempt int) float64 {
	d := c.Base
	for a := 0; a < attempt && d < c.Cap; a++ {
		d *= 2
	}
	if d > c.Cap {
		d = c.Cap
	}
	if c.Jitter > 0 {
		d *= 1 + c.Jitter*c.rng.Float64()
	}
	return d
}

// globalJitterBackoff is the bug the analyzer exists to catch: jitter
// from the implicitly seeded global stream makes every retry schedule
// differ run to run.
func globalJitterBackoff(base, jitter float64) float64 {
	return base * (1 + jitter*rand.Float64()) // want "rand.Float64 is implicitly seeded"
}

// wallClockDeadline is the other classic leak: deadlines must be
// simulated-time offsets, not wall-clock stamps.
func wallClockDeadline(timeout time.Duration) time.Time {
	return time.Now().Add(timeout) // want "wall clock in simulation package: time.Now"
}

// shuffledRetryOrder: reordering pending retries through the global
// stream is just as nondeterministic as drawing from it.
func shuffledRetryOrder(pending []int) {
	rand.Shuffle(len(pending), func(i, j int) { // want "rand.Shuffle is implicitly seeded"
		pending[i], pending[j] = pending[j], pending[i]
	})
}
