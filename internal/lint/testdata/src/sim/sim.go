// Fixture for the determinism analyzer: the package path ends in "sim"
// so every check is in scope.
package sim

import (
	"math/rand"
	"sort"
	"time"
)

var state = map[string]float64{}

func Clocks() time.Duration {
	t0 := time.Now()      // want "wall clock in simulation package: time.Now"
	time.Sleep(1)         // want "time.Sleep breaks run-to-run determinism"
	return time.Since(t0) // want "time.Since breaks run-to-run determinism"
}

func Draws() float64 {
	rand.Shuffle(2, func(i, j int) {}) // want "rand.Shuffle is implicitly seeded"
	return rand.Float64()              // want "rand.Float64 is implicitly seeded"
}

// Seeded is the sanctioned form: an explicitly seeded generator, drawn
// from via method calls.
func Seeded() float64 {
	r := rand.New(rand.NewSource(42))
	return r.Float64()
}

func Sum() float64 {
	total := 0.0
	for _, v := range state { // want "range over map"
		total += v
	}
	return total
}

// SortedSum is the sanctioned iteration: collect keys (the exempt
// idiom), sort, walk the slice.
func SortedSum() float64 {
	keys := make([]string, 0, len(state))
	for k := range state {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0.0
	for _, k := range keys {
		total += state[k]
	}
	return total
}

func Spawn() {
	go Sum() // want "goroutine spawned in simulation package"
}
