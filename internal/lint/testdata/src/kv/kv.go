// Fixture for the determinism analyzer's kv scope: the package path
// ends in "kv", so the allocator package is held to the same
// determinism contract as the event engines — block-table iteration
// order, eviction tie-breaks, and timestamps must never depend on map
// order, wall clocks, or implicit randomness.
package kv

import (
	"math/rand"
	"sort"
	"time"
)

var blockRefs = map[uint64]int{}

// EvictAny picks a victim by map range — exactly the nondeterminism
// that would make two identical runs preempt different sequences.
func EvictAny() uint64 {
	for key := range blockRefs { // want "range over map"
		return key
	}
	return 0
}

// EvictOldest is the sanctioned form: collect keys (the exempt idiom),
// sort, take the first — a total order no map seed can perturb.
func EvictOldest() uint64 {
	keys := make([]uint64, 0, len(blockRefs))
	for k := range blockRefs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	if len(keys) == 0 {
		return 0
	}
	return keys[0]
}

// StampNow timestamps an allocation off the wall clock instead of the
// simulated clock.
func StampNow() int64 {
	return time.Now().UnixNano() // want "wall clock in simulation package: time.Now"
}

// RandomVictim draws from the implicitly seeded global generator.
func RandomVictim(n int) int {
	return rand.Intn(n) // want "rand.Intn is implicitly seeded"
}

// SeededVictim is the sanctioned draw: an explicit seed, so eviction
// choices replay bit-for-bit.
func SeededVictim(n int, seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}
