// Fixture for the floatcmp analyzer: the package path ends in "sim" so
// float equality must be explicit.
package sim

const eps = 1e-9

func Exact(a, b float64) bool {
	return a == b // want "float == comparison in simulation package"
}

func NotEq(a, b float32) bool {
	return a != b // want "float != comparison in simulation package"
}

func Sentinel(a float64) bool {
	return a == 0 // want "float == comparison in simulation package"
}

func Ints(a, b int) bool {
	return a == b
}

func Consts() bool {
	return eps == 1e-9
}

func Waived(a float64) bool {
	return a == 0 //litegpu:floatcmp-ok zero is the unset sentinel, assigned not computed
}
