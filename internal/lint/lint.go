// Package lint assembles the litegpu-lint analyzer suite.
//
// The suite statically enforces the two invariants the repository's
// tests can only witness dynamically:
//
//   - determinism: simulation packages must evolve bit-for-bit
//     identically run to run (the %x golden corpora depend on it);
//   - zero-alloc hot paths: functions annotated //litegpu:hotpath must
//     not contain allocation-prone constructs (the AllocsPerRun pins
//     depend on it).
//
// See docs/correctness.md for the full contract, including the
// //litegpu: waiver grammar.
package lint

import (
	"litegpu/internal/lint/analysis"
	"litegpu/internal/lint/determinism"
	"litegpu/internal/lint/floatcmp"
	"litegpu/internal/lint/hotpath"
)

// All returns the full analyzer suite in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		hotpath.Analyzer,
		floatcmp.Analyzer,
	}
}
