package determinism_test

import (
	"testing"

	"litegpu/internal/lint/analysistest"
	"litegpu/internal/lint/determinism"
)

const testdata = "../testdata"

// TestSimPackage pins every determinism finding: wall clocks, global
// math/rand draws, map ranges, goroutine spawns — and the sanctioned
// counterparts (seeded generators, the key-collection idiom) staying
// silent.
func TestSimPackage(t *testing.T) {
	analysistest.Run(t, testdata, "sim", determinism.Analyzer)
}

// TestNonSimPackageSilent pins the scope rule: the same constructs
// outside a simulation package produce no findings.
func TestNonSimPackageSilent(t *testing.T) {
	analysistest.Run(t, testdata, "notsim", determinism.Analyzer)
}

// TestKVPackageInScope pins that the KV allocator package is simulation
// scope: map-order eviction, wall-clock stamps, and implicit
// randomness are findings there, while the sorted-eviction and
// seeded-draw idioms stay silent.
func TestKVPackageInScope(t *testing.T) {
	analysistest.Run(t, testdata, "kv", determinism.Analyzer)
}

// TestServeBackoffFixture pins the closed-loop client contract: retry
// backoff jitter may be drawn only from an explicitly seeded generator.
// Global-stream jitter, wall-clock deadlines, and global-stream retry
// shuffles are findings; the seeded-RNG backoff stays silent.
func TestServeBackoffFixture(t *testing.T) {
	analysistest.Run(t, testdata, "serve", determinism.Analyzer)
}

// TestWaivers pins the waiver contract: //litegpu:ordered-ok suppresses
// exactly the finding on the line it covers (trailing or next-line),
// while stale waivers, reasonless waivers, and unknown directives are
// themselves reported.
func TestWaivers(t *testing.T) {
	analysistest.Run(t, testdata, "waive/sim", determinism.Analyzer)
}

// TestGoroutineWaivers pins the goroutine-rule extension: an audited
// spawn under //litegpu:go-ok <reason> is allowed, while unwaived,
// reasonless, and wrong-category spawns all still fire (and unused
// go-ok waivers are reported stale).
func TestGoroutineWaivers(t *testing.T) {
	analysistest.Run(t, testdata, "goroutine/sim", determinism.Analyzer)
}
