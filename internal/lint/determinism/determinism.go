// Package determinism defines the litegpu-lint analyzer that keeps
// nondeterminism out of the simulation packages.
//
// Every headline number this repository produces is pinned by %x golden
// corpora: two runs of the same configuration must evolve bit-for-bit
// identically. Three constructs silently break that contract and are
// forbidden in simulation packages (internal/{sim,serve,netsim,trace,
// sweep,failure}):
//
//   - wall-clock reads (time.Now, time.Since, timers): simulated time
//     comes from the sim.Engine clock, never from the host;
//   - the global math/rand generator: all randomness flows through
//     mathx.RNG with an explicit seed (constructors like rand.New are
//     allowed — it is the ambient, implicitly-seeded stream that is
//     banned);
//   - ranging over a map: iteration order is randomized per run, so any
//     map range that can reach simulation state, metrics, or event
//     scheduling is a latent golden diff. Iterate a sorted key slice
//     instead, or waive the line with //litegpu:ordered-ok <reason>.
//     The key-collection loop of the sorted-iteration idiom (a range
//     whose body only appends the key to a slice) is recognized and
//     exempt.
//
// It also forbids spawning goroutines anywhere but internal/sweep, the
// one sanctioned concurrency layer — scheduling decisions made on
// goroutine timing are nondeterminism by construction. A spawn site
// that has been audited to be deterministic anyway (the serve shard
// workers, which synchronize through conservative time windows and
// merge in a fixed order) may carry a //litegpu:go-ok <reason> waiver;
// like every waiver it covers exactly one line and is reported as
// stale when it stops suppressing anything.
package determinism

import (
	"go/ast"
	"go/types"
	"strings"

	"litegpu/internal/lint/analysis"
)

// Analyzer is the determinism check.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid wall clocks, the global math/rand, map iteration, and " +
		"goroutine spawns in simulation packages",
	Run: run,
}

// bannedTime are the time package functions that read the wall clock or
// create host-time-driven machinery.
var bannedTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsSimPackage(pass.Path) {
		return nil
	}
	allowGo := analysis.PathBase(pass.Path) == "sweep"
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Package, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkRange(pass, n)
			case *ast.GoStmt:
				if !allowGo {
					pass.Reportf(n.Pos(), "go",
						"goroutine spawned in simulation package %s: internal/sweep is the only sanctioned concurrency layer; audited deterministic runners may waive with //litegpu:go-ok <reason>",
						pass.Path)
				}
			}
			return true
		})
	}
	return nil
}

// checkCall flags wall-clock reads and global math/rand draws.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // method call, not a package-level function
	}
	switch fn.Pkg().Path() {
	case "time":
		if bannedTime[fn.Name()] {
			pass.Reportf(call.Pos(), "",
				"wall clock in simulation package: time.%s breaks run-to-run determinism; simulated time comes from sim.Engine",
				fn.Name())
		}
	case "math/rand", "math/rand/v2":
		// Constructors (New, NewSource, NewZipf, ...) build explicitly
		// seeded generators and are fine; everything else draws from or
		// seeds the ambient global stream.
		if !strings.HasPrefix(fn.Name(), "New") {
			pass.Reportf(call.Pos(), "",
				"global math/rand in simulation package: rand.%s is implicitly seeded; draw from a seeded mathx.RNG instead",
				fn.Name())
		}
	}
}

// checkRange flags ranging over a map, excepting the sorted-iteration
// idiom's key-collection loop.
func checkRange(pass *analysis.Pass, rs *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if isKeyCollection(rs) {
		return
	}
	pass.Reportf(rs.Pos(), "ordered",
		"range over map %s in simulation package: iteration order is nondeterministic; iterate a sorted key slice or waive with //litegpu:ordered-ok <reason>",
		types.TypeString(t, nil))
}

// isKeyCollection recognizes the first half of the sorted-iteration
// idiom: `for k := range m { keys = append(keys, k) }`. Its body is
// order-insensitive by construction (the keys are sorted before use),
// so it is exempt.
func isKeyCollection(rs *ast.RangeStmt) bool {
	if rs.Value != nil || rs.Key == nil || len(rs.Body.List) != 1 {
		return false
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok {
		return false
	}
	asg, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fun, ok := call.Fun.(*ast.Ident)
	if !ok || fun.Name != "append" {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	return ok && arg.Name == key.Name &&
		types.ExprString(asg.Lhs[0]) == types.ExprString(call.Args[0])
}
