// Package analysis is the self-contained core of litegpu-lint: a
// deliberately small mirror of the golang.org/x/tools/go/analysis API
// (Analyzer, Pass, Diagnostic) plus the repo's waiver machinery.
//
// The build environment for this repository is hermetic — no module
// proxy, no vendored x/tools — so the framework is reimplemented here
// on the standard library alone (go/ast, go/types, go/importer). The
// shapes match x/tools closely enough that an analyzer written against
// this package ports to the real framework by changing one import.
//
// Three analyzers live in sibling packages (determinism, hotpath,
// floatcmp); internal/lint/driver loads and typechecks packages and
// runs them; cmd/litegpu-lint is the multichecker CLI, also usable as
// a `go vet -vettool`. See docs/correctness.md for the invariants the
// suite enforces.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI flags.
	Name string
	// Doc is the analyzer's one-paragraph documentation.
	Doc string
	// Run applies the analyzer to a package, reporting findings via
	// pass.Reportf.
	Run func(*Pass) error
}

// A Package is one loaded, typechecked compilation unit — the input
// shared by every analyzer pass and by the waiver scanner.
type Package struct {
	// Path is the package's import path (e.g. "litegpu/internal/sim").
	// Test fixtures use short paths like "sim"; scope predicates match
	// on the final path segment.
	Path string
	// Fset positions every file in Files.
	Fset *token.FileSet
	// Files are the package's parsed source files, comments included.
	Files []*ast.File
	// Sources maps each file name (as recorded in Fset) to its raw
	// content; the waiver scanner needs it to distinguish trailing
	// comments from standalone comment lines.
	Sources map[string][]byte
	// Types and TypesInfo are the typechecker's outputs.
	Types     *types.Package
	TypesInfo *types.Info
}

// A Pass connects one Analyzer run to one Package.
type Pass struct {
	Analyzer *Analyzer
	*Package

	diags []Diagnostic
}

// A Diagnostic is one finding.
type Diagnostic struct {
	// Pos anchors the finding.
	Pos token.Pos
	// Category is the finding's waiver key ("ordered", "alloc",
	// "floatcmp"); empty means the finding cannot be waived.
	Category string
	// Message is the human-readable report.
	Message string
	// Analyzer names the reporting analyzer.
	Analyzer string
}

// Reportf records a finding at pos. category selects which waiver
// directive (if any) may suppress it; pass "" for unwaivable findings.
func (p *Pass) Reportf(pos token.Pos, category, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Category: category,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// RunPackage applies the analyzers to pkg and returns the surviving
// diagnostics: every analyzer finding not suppressed by a waiver, plus
// the waiver scanner's own hygiene findings (stale waivers, waivers
// missing a reason, unknown //litegpu: directives), sorted by position.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Package: pkg}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", pkg.Path, a.Name, err)
		}
		diags = append(diags, pass.diags...)
	}
	diags = applyWaivers(pkg, diags)
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(diags[i].Pos), pkg.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}

// simPackages are the final import-path segments of the packages whose
// event evolution feeds the golden corpora. Determinism and floatcmp
// apply only inside them; everything else (CLIs, experiments, the
// analytical models) may use wall clocks and approximate comparisons
// freely.
var simPackages = map[string]bool{
	"sim":     true,
	"serve":   true,
	"netsim":  true,
	"trace":   true,
	"sweep":   true,
	"failure": true,
	"kv":      true,
	"obs":     true,
}

// IsSimPackage reports whether the import path names a simulation
// package — one whose execution must be bit-for-bit deterministic.
// Matching is by final path segment so analysistest fixtures (package
// path "sim", "waive/sim") land in scope exactly like the real
// litegpu/internal/sim.
func IsSimPackage(path string) bool {
	return simPackages[PathBase(path)]
}

// PathBase returns the final segment of an import path.
func PathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// IsTestFile reports whether f comes from a _test.go file. The
// determinism and floatcmp contracts cover shipped simulation code;
// tests assert exact floats and compare maps deliberately, and under
// `go vet -vettool` (which analyzes test units too) they would drown
// the real findings.
func IsTestFile(pkg *Package, f *ast.File) bool {
	return strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go")
}
