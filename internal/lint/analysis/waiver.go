package analysis

import (
	"go/token"
	"strings"
)

// The //litegpu: directive grammar.
//
//	//litegpu:hotpath                 marks the next function declaration
//	                                  as an allocation-free hot path
//	                                  (consumed by the hotpath analyzer)
//	//litegpu:ordered-ok <reason>     waives one line's map-iteration
//	                                  findings (determinism analyzer)
//	//litegpu:alloc-ok <reason>       waives one line's hot-path
//	                                  allocation findings (hotpath)
//	//litegpu:floatcmp-ok <reason>    waives one line's float-comparison
//	                                  findings (floatcmp)
//	//litegpu:go-ok <reason>          waives one line's goroutine-spawn
//	                                  findings (determinism) — reserved
//	                                  for audited deterministic runners
//	                                  like the serve shard workers
//
// A waiver written as a trailing comment applies to its own line; a
// waiver on a line of its own applies to the next line. Every waiver
// must carry a reason, and a waiver that suppresses nothing is itself
// reported as stale — waivers are precise, audited exceptions, not
// blanket mutes.
const directivePrefix = "//litegpu:"

// HotpathDirective is the marker directive (with prefix) that annotates
// hot-path functions.
const HotpathDirective = directivePrefix + "hotpath"

// waiverCategories maps a waiver directive name to the diagnostic
// category it suppresses.
var waiverCategories = map[string]string{
	"ordered-ok":  "ordered",
	"alloc-ok":    "alloc",
	"floatcmp-ok": "floatcmp",
	"go-ok":       "go",
}

// markerDirectives are non-waiver directives; they are validated by the
// analyzer that consumes them, not by the waiver scanner.
var markerDirectives = map[string]bool{
	"hotpath": true,
}

type waiver struct {
	category  string // diagnostic category this waiver suppresses
	directive string // directive name, for messages
	pos       token.Pos
	file      string
	line      int // line the waiver applies to
	used      bool
}

// applyWaivers matches waivers against diags: a diagnostic whose
// category has a matching waiver on its line is suppressed. It returns
// the surviving diagnostics plus hygiene findings for malformed
// directives and stale waivers.
func applyWaivers(pkg *Package, diags []Diagnostic) []Diagnostic {
	var waivers []*waiver
	var hygiene []Diagnostic
	for _, f := range pkg.Files {
		if IsTestFile(pkg, f) {
			continue // test files are outside the waivable checks' scope
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				w, d := parseDirective(pkg, c.Slash, c.Text)
				if w != nil {
					waivers = append(waivers, w)
				}
				if d != nil {
					hygiene = append(hygiene, *d)
				}
			}
		}
	}

	kept := diags[:0]
	for _, d := range diags {
		if d.Category != "" && waive(pkg, waivers, d) {
			continue
		}
		kept = append(kept, d)
	}
	for _, w := range waivers {
		if !w.used {
			hygiene = append(hygiene, Diagnostic{
				Pos:      w.pos,
				Analyzer: "waiver",
				Message: "stale //litegpu:" + w.directive + " waiver: no " +
					w.category + " finding on the line it covers",
			})
		}
	}
	return append(kept, hygiene...)
}

func waive(pkg *Package, waivers []*waiver, d Diagnostic) bool {
	pos := pkg.Fset.Position(d.Pos)
	ok := false
	for _, w := range waivers {
		if w.category == d.Category && w.file == pos.Filename && w.line == pos.Line {
			w.used = true
			ok = true
		}
	}
	return ok
}

// parseDirective interprets one comment. It returns a waiver (for
// well-formed waiver directives) and/or a hygiene diagnostic (for
// waivers missing a reason and for unknown directives).
func parseDirective(pkg *Package, pos token.Pos, text string) (*waiver, *Diagnostic) {
	if !strings.HasPrefix(text, directivePrefix) {
		return nil, nil
	}
	rest := text[len(directivePrefix):]
	name := rest
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		name, rest = rest[:i], rest[i+1:]
	} else {
		rest = ""
	}
	if markerDirectives[name] {
		return nil, nil
	}
	category, ok := waiverCategories[name]
	if !ok {
		return nil, &Diagnostic{
			Pos:      pos,
			Analyzer: "waiver",
			Message: "unknown //litegpu: directive " + name +
				" (known: hotpath, ordered-ok, alloc-ok, floatcmp-ok, go-ok)",
		}
	}
	// Strip an analysistest expectation riding the same comment, so
	// fixtures can assert on waiver hygiene findings.
	if i := strings.Index(rest, "// want"); i >= 0 {
		rest = rest[:i]
	}
	if strings.TrimSpace(rest) == "" {
		return nil, &Diagnostic{
			Pos:      pos,
			Analyzer: "waiver",
			Message: "//litegpu:" + name +
				" waiver needs a reason: //litegpu:" + name + " <why this line is safe>",
		}
	}
	p := pkg.Fset.Position(pos)
	w := &waiver{category: category, directive: name, pos: pos, file: p.Filename, line: p.Line}
	if standaloneComment(pkg, p) {
		w.line++
	}
	return w, nil
}

// standaloneComment reports whether the comment at p begins its source
// line (nothing but whitespace before it) — such waivers cover the
// following line, trailing waivers cover their own.
func standaloneComment(pkg *Package, p token.Position) bool {
	src, ok := pkg.Sources[p.Filename]
	if !ok {
		return false
	}
	start := p.Offset - (p.Column - 1)
	if start < 0 || p.Offset > len(src) {
		return false
	}
	return strings.TrimSpace(string(src[start:p.Offset])) == ""
}
