package floatcmp_test

import (
	"testing"

	"litegpu/internal/lint/analysistest"
	"litegpu/internal/lint/floatcmp"
)

const testdata = "../testdata"

// TestSimPackage pins the float-comparison findings: ==/!= with any
// float operand fires, integer comparisons and constant-folded
// comparisons stay silent, and //litegpu:floatcmp-ok waives a line.
func TestSimPackage(t *testing.T) {
	analysistest.Run(t, testdata, "floatcmp/sim", floatcmp.Analyzer)
}

// TestNonSimPackageSilent pins the scope rule for float comparisons.
func TestNonSimPackageSilent(t *testing.T) {
	analysistest.Run(t, testdata, "notsim", floatcmp.Analyzer)
}
