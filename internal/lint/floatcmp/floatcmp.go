// Package floatcmp defines the litegpu-lint analyzer that makes float
// equality explicit in simulation packages.
//
// The golden corpora pin exact float evolution: a float that should be
// 0.0 is exactly 0.0 on every run, or the goldens diff. That makes ==
// and != on floats *meaningful* here — and therefore dangerous to leave
// implicit, because a reader (or a refactor introducing an epsilon, an
// FMA, or a different summation order) cannot tell an intentional
// exact sentinel test from a float-comparison bug. In simulation
// packages every ==/!= with a float operand must either go through the
// named mathx helpers (mathx.ExactEq / mathx.ExactNe), which document
// that bitwise-exact comparison is the point, or carry a
// //litegpu:floatcmp-ok <reason> waiver.
package floatcmp

import (
	"go/ast"
	"go/token"
	"go/types"

	"litegpu/internal/lint/analysis"
)

// Analyzer is the float-comparison check.
var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc: "flag ==/!= on floats in simulation packages; exactness must be " +
		"explicit via mathx.ExactEq/ExactNe or a waiver",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsSimPackage(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Package, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass, be.X) && !isFloat(pass, be.Y) {
				return true
			}
			// A comparison folded at compile time is a constant, not a
			// runtime float comparison.
			if isConst(pass, be.X) && isConst(pass, be.Y) {
				return true
			}
			pass.Reportf(be.Pos(), "floatcmp",
				"float %s comparison in simulation package: goldens depend on exact float evolution — use mathx.ExactEq/ExactNe to mark the comparison intentional, or waive with //litegpu:floatcmp-ok <reason>",
				be.Op)
			return true
		})
	}
	return nil
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

func isConst(pass *analysis.Pass, e ast.Expr) bool {
	return pass.TypesInfo.Types[e].Value != nil
}
