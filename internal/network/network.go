// Package network models the interconnect fabrics a Lite-GPU cluster
// could use: link technologies (copper, pluggable optics, co-packaged
// optics), switching disciplines (electrical packet switches vs optical
// circuit switches), and topologies (direct-connect groups, single
// switches, two-tier leaf–spine fabrics, and flat circuit-switched
// networks in the style of Sirius).
//
// It substantiates the paper's Section 3 networking claims: co-packaged
// optics brings per-bit energy near copper levels at tens-of-meters
// reach, and circuit switching is ≥50% more energy-efficient than packet
// switching with lower latency and higher-radix growth.
package network

import (
	"fmt"
	"math"

	"litegpu/internal/units"
)

// LinkTech is a physical-layer technology for GPU-to-GPU links.
type LinkTech struct {
	Name string
	// EnergyPerBit is transceiver energy, in joules per bit, paid once
	// per endpoint traversal (so twice per link: out and in).
	EnergyPerBit float64
	// Reach is the usable cable length.
	Reach float64 // meters
	// PortBW is the per-port unidirectional bandwidth.
	PortBW units.BytesPerSec
	// PortCost is the per-port transceiver cost.
	PortCost units.Dollars
}

// Copper returns NVLink-class electrical signaling: cheap and efficient
// but limited to about a rack.
func Copper() LinkTech {
	return LinkTech{
		Name:         "copper",
		EnergyPerBit: 5e-12, // ≈5 pJ/bit serdes
		Reach:        3,
		PortBW:       100 * units.GB,
		PortCost:     80,
	}
}

// PluggableOptics returns today's pluggable transceivers (800G class):
// long reach but power-hungry, with the full electrical path between
// ASIC and module.
func PluggableOptics() LinkTech {
	return LinkTech{
		Name:         "pluggable optics",
		EnergyPerBit: 18e-12, // ≈15 W per 800 Gb/s module
		Reach:        500,
		PortBW:       100 * units.GB,
		PortCost:     600,
	}
}

// CoPackagedOptics returns CPO as the paper anticipates it: optical
// engines millimetres from the die, cutting the electrical path and
// its energy, with tens-of-meters reach.
func CoPackagedOptics() LinkTech {
	return LinkTech{
		Name:         "co-packaged optics",
		EnergyPerBit: 5e-12,
		Reach:        50,
		PortBW:       200 * units.GB,
		PortCost:     250,
	}
}

// Switch is a switching element.
type Switch struct {
	Name string
	// EnergyPerBit is the per-bit energy of traversing the switch
	// (buffering, arbitration, serdes for packet switches; essentially
	// insertion loss for optical circuit switches).
	EnergyPerBit float64
	// Latency is the per-traversal latency.
	Latency units.Seconds
	// Radix is the port count at full bandwidth.
	Radix int
	// Cost is the per-switch cost.
	Cost units.Dollars
	// Circuit marks optical circuit switches, which carry no per-packet
	// processing but need reconfiguration to change connectivity.
	Circuit bool
	// ReconfigTime is the time to establish a new circuit (0 for packet
	// switches, which forward anything immediately).
	ReconfigTime units.Seconds
}

// PacketSwitch returns an electrical packet switch (Tomahawk-class:
// 51.2 Tb/s, ≈550 W ⇒ ≈10 pJ/bit through the ASIC plus serdes).
func PacketSwitch() Switch {
	return Switch{
		Name:         "packet switch",
		EnergyPerBit: 12e-12,
		Latency:      600e-9,
		Radix:        64,
		Cost:         8000,
	}
}

// CircuitSwitch returns an optical circuit switch in the style the paper
// cites (Sirius / TPUv4 OCS): passive per-bit transport, higher radix,
// but connectivity must be scheduled.
func CircuitSwitch() Switch {
	return Switch{
		Name:         "circuit switch",
		EnergyPerBit: 1e-12,
		Latency:      50e-9,
		Radix:        128,
		Cost:         5000,
		Circuit:      true,
		ReconfigTime: 10e-6,
	}
}

// Topology is a network design connecting a set of GPU endpoints.
type Topology struct {
	Name      string
	Endpoints int
	Link      LinkTech
	Switch    Switch // zero value for switchless designs
	Switches  int
	// Hops is the worst-case number of switch traversals between two
	// endpoints (0 for direct connect).
	Hops int
	// PortsPerEndpoint is how many fabric ports each endpoint uses.
	PortsPerEndpoint int
	// Oversubscription is the ratio of worst-case offered load to
	// bisection capacity (1 = non-blocking).
	Oversubscription float64
}

// DirectConnect returns a full mesh over n endpoints — the paper's
// "direct-connect topology within that group of Lite-GPUs" option that
// approximates the original single-GPU locality but gives up blast-radius
// benefits.
func DirectConnect(n int, link LinkTech) Topology {
	return Topology{
		Name:             fmt.Sprintf("direct-connect(%d)", n),
		Endpoints:        n,
		Link:             link,
		Hops:             0,
		PortsPerEndpoint: n - 1,
		Oversubscription: 1,
	}
}

// SingleSwitch returns a star over one switch; n must not exceed the
// switch radix.
func SingleSwitch(n int, link LinkTech, sw Switch) Topology {
	return Topology{
		Name:             fmt.Sprintf("single-switch(%d)", n),
		Endpoints:        n,
		Link:             link,
		Switch:           sw,
		Switches:         1,
		Hops:             1,
		PortsPerEndpoint: 1,
		Oversubscription: 1,
	}
}

// LeafSpine returns a non-blocking two-tier fabric: leaves with half
// their radix down, spines interconnecting every leaf.
func LeafSpine(n int, link LinkTech, sw Switch) Topology {
	down := sw.Radix / 2
	if down < 1 {
		down = 1
	}
	leaves := ceilDiv(n, down)
	spines := ceilDiv(leaves*down, sw.Radix)
	return Topology{
		Name:             fmt.Sprintf("leaf-spine(%d)", n),
		Endpoints:        n,
		Link:             link,
		Switch:           sw,
		Switches:         leaves + spines,
		Hops:             3, // leaf → spine → leaf
		PortsPerEndpoint: 1,
		Oversubscription: 1,
	}
}

// Clos returns a folded-Clos (fat-tree) fabric with the minimum tier
// count that reaches n endpoints non-blocking on the switch radix:
// tiers T satisfy n ≤ radix·(radix/2)^(T−1). Ports and switch boxes both
// scale with (2T−1), which is where the paper's warning — networking
// cost growing into a bottleneck with scale — comes from.
func Clos(n int, link LinkTech, sw Switch) Topology {
	r := sw.Radix
	if r < 2 {
		r = 2
	}
	tiers := 1
	reach := float64(r)
	for reach < float64(n) && tiers < 8 {
		tiers++
		reach *= float64(r) / 2
	}
	stageFactor := 2*tiers - 1
	return Topology{
		Name:             fmt.Sprintf("clos-%dt(%d)", tiers, n),
		Endpoints:        n,
		Link:             link,
		Switch:           sw,
		Switches:         ceilDiv(n, r) * stageFactor,
		Hops:             stageFactor,
		PortsPerEndpoint: stageFactor, // fabric transceivers per endpoint path
		Oversubscription: 1,
	}
}

// FlatCircuit returns a single-tier optical-circuit fabric in the style
// of Sirius: parallel high-radix OCS planes with connectivity
// time-multiplexed across circuits rather than packet-switched, keeping
// every path one optical hop even past a single switch's radix.
func FlatCircuit(n int, link LinkTech, sw Switch) Topology {
	return Topology{
		Name:             fmt.Sprintf("flat-circuit(%d)", n),
		Endpoints:        n,
		Link:             link,
		Switch:           sw,
		Switches:         ceilDiv(n, sw.Radix),
		Hops:             1,
		PortsPerEndpoint: 1,
		Oversubscription: 1,
	}
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// EnergyPerBit returns the end-to-end energy of moving one bit across the
// topology's worst-case path: a transceiver at each endpoint plus every
// switch traversal. Packet switches terminate the optical signal, so each
// hop pays the switch ASIC energy plus an O-E-O transceiver pair; optical
// circuit switches pass light through, paying only insertion energy —
// the physical basis of the paper's circuit-switching efficiency claim.
func (t Topology) EnergyPerBit() float64 {
	// Source + destination transceivers.
	e := 2 * t.Link.EnergyPerBit
	perHop := t.Switch.EnergyPerBit
	if !t.Switch.Circuit {
		perHop += 2 * t.Link.EnergyPerBit
	}
	return e + float64(t.Hops)*perHop
}

// PathLatency returns the worst-case propagation-free path latency:
// switch traversals only (cable flight time depends on layout and is the
// same across the disciplines compared here).
func (t Topology) PathLatency() units.Seconds {
	return units.Seconds(float64(t.Hops) * float64(t.Switch.Latency))
}

// FabricPower returns the network power draw at the given total offered
// traffic (sum over endpoints of injection rate).
func (t Topology) FabricPower(traffic units.BytesPerSec) units.Watts {
	bitsPerSec := float64(traffic) * 8
	return units.Watts(bitsPerSec * t.EnergyPerBit())
}

// Cost returns fabric hardware cost: endpoint ports plus switch boxes
// (switch port transceivers are folded into the per-switch cost for
// packet/circuit boxes; direct-connect pays two ports per link).
func (t Topology) Cost() units.Dollars {
	ports := float64(t.Endpoints * t.PortsPerEndpoint)
	c := ports * float64(t.Link.PortCost)
	if t.Hops == 0 {
		// Each mesh link terminates on two endpoints; PortsPerEndpoint
		// already counts both ends.
		return units.Dollars(c)
	}
	return units.Dollars(c + float64(t.Switches)*float64(t.Switch.Cost))
}

// BisectionBW returns the worst-case bandwidth across a bisection of the
// fabric.
func (t Topology) BisectionBW() units.BytesPerSec {
	if t.Endpoints < 2 {
		return 0
	}
	half := float64(t.Endpoints / 2)
	per := float64(t.Link.PortBW) * float64(t.PortsPerEndpoint)
	if t.Hops == 0 {
		// Each of the n/2 endpoints has links to the other half:
		// (n/2)·(n−n/2) links cross the cut.
		links := half * float64(t.Endpoints-t.Endpoints/2)
		return units.BytesPerSec(links * float64(t.Link.PortBW))
	}
	over := t.Oversubscription
	if over <= 0 {
		over = 1
	}
	return units.BytesPerSec(half * per / over)
}

// CircuitEnergyAdvantage returns the fractional per-bit energy saving of
// a circuit-switched fabric over a packet-switched one at the same scale
// and link technology — the paper's "more than 50% better energy
// efficiency" claim (Sirius).
func CircuitEnergyAdvantage(n int, link LinkTech) float64 {
	pkt := FlatCircuit(n, link, PacketSwitch()) // same shape, packet boxes
	pkt.Name = "flat-packet"
	cir := FlatCircuit(n, link, CircuitSwitch())
	pe := pkt.EnergyPerBit()
	if pe <= 0 {
		return 0
	}
	return 1 - cir.EnergyPerBit()/pe
}

// RequiredReach returns the cable reach a cluster of the given size
// needs to connect every endpoint to a mid-row switch location, assuming
// ~32 accelerators per rack and 1.2 m of row per rack — the scale
// argument for optics once a Lite-GPU cluster outgrows a rack.
func RequiredReach(endpoints int) float64 {
	racks := math.Ceil(float64(endpoints) / 32)
	if racks <= 1 {
		return 2 // within rack
	}
	return racks * 1.2
}

// Feasible reports whether the link technology can physically cable the
// topology at datacenter scale.
func (t Topology) Feasible() bool {
	if t.Switch.Radix > 0 && t.Switches > 0 && t.PortsPerEndpoint > 0 {
		need := ceilDiv(t.Endpoints, t.Switches)
		if need > t.Switch.Radix {
			return false
		}
	}
	return t.Link.Reach >= RequiredReach(t.Endpoints)
}
