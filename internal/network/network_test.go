package network

import (
	"math"
	"testing"
	"testing/quick"

	"litegpu/internal/units"
)

func TestLinkTechOrdering(t *testing.T) {
	// Energy: copper ≈ CPO < pluggable. Reach: copper < CPO < pluggable.
	cu, cpo, plug := Copper(), CoPackagedOptics(), PluggableOptics()
	if cu.EnergyPerBit > plug.EnergyPerBit {
		t.Error("copper should beat pluggable optics on energy")
	}
	if cpo.EnergyPerBit > plug.EnergyPerBit {
		t.Error("CPO should beat pluggable optics on energy")
	}
	if !(cu.Reach < cpo.Reach && cpo.Reach < plug.Reach) {
		t.Errorf("reach ordering wrong: %v %v %v", cu.Reach, cpo.Reach, plug.Reach)
	}
}

func TestPaperCircuitSwitchingClaim(t *testing.T) {
	// Section 3: circuit switching presents "more than 50% better energy
	// efficiency" over packet switching.
	adv := CircuitEnergyAdvantage(512, CoPackagedOptics())
	if adv < 0.50 {
		t.Errorf("circuit energy advantage = %.1f%%, want >50%%", adv*100)
	}
	if adv >= 1 {
		t.Errorf("circuit energy advantage = %v, impossible", adv)
	}
}

func TestCircuitSwitchLowerLatencyMoreRadix(t *testing.T) {
	// The paper's other two circuit-switching benefits.
	cs, ps := CircuitSwitch(), PacketSwitch()
	if cs.Latency >= ps.Latency {
		t.Error("circuit switch should have lower latency")
	}
	if cs.Radix <= ps.Radix {
		t.Error("circuit switch should offer more ports at high bandwidth")
	}
}

func TestDirectConnect(t *testing.T) {
	d := DirectConnect(4, Copper())
	if d.PortsPerEndpoint != 3 {
		t.Errorf("quad mesh ports = %d, want 3", d.PortsPerEndpoint)
	}
	if d.Hops != 0 || d.Switches != 0 {
		t.Error("direct connect should have no switches")
	}
	// Energy is exactly two transceivers.
	if e := d.EnergyPerBit(); math.Abs(e-2*Copper().EnergyPerBit) > 1e-18 {
		t.Errorf("direct energy = %v", e)
	}
	if d.PathLatency() != 0 {
		t.Error("direct connect should have zero switch latency")
	}
}

func TestSingleSwitch(t *testing.T) {
	s := SingleSwitch(32, CoPackagedOptics(), PacketSwitch())
	if s.Switches != 1 || s.Hops != 1 {
		t.Errorf("single switch topology wrong: %+v", s)
	}
	// One switch traversal of energy plus two endpoint + two switch-side
	// transceivers.
	want := 4*CoPackagedOptics().EnergyPerBit + PacketSwitch().EnergyPerBit
	if e := s.EnergyPerBit(); math.Abs(e-want) > 1e-18 {
		t.Errorf("single-switch energy = %v, want %v", e, want)
	}
}

func TestLeafSpine(t *testing.T) {
	ls := LeafSpine(512, CoPackagedOptics(), PacketSwitch())
	// 512 endpoints at 32 down-ports per leaf = 16 leaves; 512 uplinks
	// need 8 spines of radix 64.
	if ls.Switches != 16+8 {
		t.Errorf("leaf-spine switches = %d, want 24", ls.Switches)
	}
	if ls.Hops != 3 {
		t.Errorf("leaf-spine hops = %d, want 3", ls.Hops)
	}
	// More hops ⇒ more energy than single switch.
	ss := SingleSwitch(64, CoPackagedOptics(), PacketSwitch())
	if ls.EnergyPerBit() <= ss.EnergyPerBit() {
		t.Error("leaf-spine should cost more energy per bit than one switch")
	}
}

func TestFlatCircuitScalesSwitchCount(t *testing.T) {
	fc := FlatCircuit(512, CoPackagedOptics(), CircuitSwitch())
	if fc.Switches != 4 { // 512 / radix 128
		t.Errorf("flat-circuit switches = %d, want 4", fc.Switches)
	}
	if fc.Hops != 1 {
		t.Errorf("flat-circuit hops = %d, want 1", fc.Hops)
	}
}

func TestFabricPower(t *testing.T) {
	topo := SingleSwitch(32, CoPackagedOptics(), PacketSwitch())
	// 1 TB/s of traffic at e J/bit.
	p := topo.FabricPower(units.BytesPerSec(units.TB))
	want := 8e12 * topo.EnergyPerBit()
	if math.Abs(float64(p)-want) > 1e-9 {
		t.Errorf("fabric power = %v, want %v W", p, want)
	}
}

func TestCost(t *testing.T) {
	d := DirectConnect(4, Copper())
	// 4 endpoints × 3 ports × $80.
	if c := d.Cost(); c != 960 {
		t.Errorf("mesh cost = %v, want $960", c)
	}
	s := SingleSwitch(32, Copper(), PacketSwitch())
	want := 32*80.0 + 8000
	if c := s.Cost(); float64(c) != want {
		t.Errorf("single-switch cost = %v, want %v", c, want)
	}
}

func TestBisectionBW(t *testing.T) {
	link := Copper() // 100 GB/s ports
	// 4-node mesh: 2×2 links across the cut = 4 × 100 GB/s.
	d := DirectConnect(4, link)
	if bw := d.BisectionBW(); math.Abs(float64(bw)-4*100*units.GB) > 1 {
		t.Errorf("mesh bisection = %v, want 400 GB/s", bw)
	}
	// Non-blocking single switch over 32: half the endpoints inject.
	s := SingleSwitch(32, link, PacketSwitch())
	if bw := s.BisectionBW(); math.Abs(float64(bw)-16*100*units.GB) > 1 {
		t.Errorf("switch bisection = %v, want 1.6 TB/s", bw)
	}
	if bw := DirectConnect(1, link).BisectionBW(); bw != 0 {
		t.Errorf("single-endpoint bisection = %v, want 0", bw)
	}
}

func TestRequiredReach(t *testing.T) {
	if r := RequiredReach(8); r != 2 {
		t.Errorf("one-rack reach = %v, want 2", r)
	}
	if r := RequiredReach(512); r <= 2 {
		t.Errorf("512-endpoint reach = %v, want multi-rack scale", r)
	}
}

func TestFeasibility(t *testing.T) {
	// Copper cannot cable a 1024-endpoint flat fabric.
	big := FlatCircuit(1024, Copper(), CircuitSwitch())
	if big.Feasible() {
		t.Error("1024-endpoint copper fabric should be infeasible")
	}
	// CPO can (50 m reach).
	bigCPO := FlatCircuit(1024, CoPackagedOptics(), CircuitSwitch())
	if !bigCPO.Feasible() {
		t.Error("1024-endpoint CPO fabric should be feasible")
	}
	// A single switch cannot serve more endpoints than its radix.
	overloaded := SingleSwitch(256, CoPackagedOptics(), PacketSwitch())
	if overloaded.Feasible() {
		t.Error("256 endpoints on one radix-64 switch should be infeasible")
	}
}

func TestCeilDiv(t *testing.T) {
	if ceilDiv(10, 3) != 4 || ceilDiv(9, 3) != 3 || ceilDiv(1, 0) != 0 {
		t.Error("ceilDiv wrong")
	}
}

// Property: adding hops never reduces energy per bit.
func TestEnergyMonotoneInHopsProperty(t *testing.T) {
	f := func(rh uint8) bool {
		h := int(rh % 8)
		a := Topology{Link: CoPackagedOptics(), Switch: PacketSwitch(), Hops: h}
		b := Topology{Link: CoPackagedOptics(), Switch: PacketSwitch(), Hops: h + 1}
		return a.EnergyPerBit() <= b.EnergyPerBit()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: fabric power is linear in traffic.
func TestFabricPowerLinearProperty(t *testing.T) {
	topo := LeafSpine(256, CoPackagedOptics(), PacketSwitch())
	f := func(raw uint32) bool {
		tr := units.BytesPerSec(raw)
		p1 := topo.FabricPower(tr)
		p2 := topo.FabricPower(2 * tr)
		return math.Abs(2*float64(p1)-float64(p2)) <= 1e-9*math.Max(float64(p2), 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: circuit advantage holds across scales and link technologies.
func TestCircuitAdvantageProperty(t *testing.T) {
	links := []LinkTech{Copper(), PluggableOptics(), CoPackagedOptics()}
	f := func(rn uint16, rl uint8) bool {
		n := int(rn%4096) + 2
		link := links[int(rl)%len(links)]
		adv := CircuitEnergyAdvantage(n, link)
		return adv > 0 && adv < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClosTierScaling(t *testing.T) {
	sw := PacketSwitch() // radix 64
	// Within one radix: one tier, one switch stage.
	small := Clos(64, CoPackagedOptics(), sw)
	if small.Hops != 1 || small.PortsPerEndpoint != 1 {
		t.Errorf("64-endpoint Clos = %+v, want single tier", small)
	}
	// Beyond the radix: two tiers, 3 switch stages on the path.
	mid := Clos(2048, CoPackagedOptics(), sw)
	if mid.Hops != 3 || mid.PortsPerEndpoint != 3 {
		t.Errorf("2048-endpoint Clos = %+v, want 2 tiers (3 stages)", mid)
	}
	// Far beyond: three tiers, 5 stages.
	big := Clos(32768, CoPackagedOptics(), sw)
	if big.Hops != 5 {
		t.Errorf("32768-endpoint Clos hops = %d, want 5", big.Hops)
	}
	// Cost per endpoint grows with tier count.
	costPer := func(t Topology) float64 { return float64(t.Cost()) / float64(t.Endpoints) }
	if !(costPer(small) < costPer(mid) && costPer(mid) < costPer(big)) {
		t.Errorf("Clos cost per endpoint not growing: %v %v %v",
			costPer(small), costPer(mid), costPer(big))
	}
	// Degenerate radix is clamped rather than dividing by zero.
	weird := Clos(8, CoPackagedOptics(), Switch{Radix: 0, Cost: 1})
	if weird.Switches <= 0 {
		t.Errorf("zero-radix Clos = %+v", weird)
	}
}

func TestClosEnergyExceedsFlat(t *testing.T) {
	// A multi-tier packet Clos pays O-E-O at every stage; the flat
	// circuit fabric does not — the combined CPO + OCS story.
	clos := Clos(2048, CoPackagedOptics(), PacketSwitch())
	flat := FlatCircuit(2048, CoPackagedOptics(), CircuitSwitch())
	if clos.EnergyPerBit() <= 2*flat.EnergyPerBit() {
		t.Errorf("Clos energy (%v) should be well above flat circuit (%v)",
			clos.EnergyPerBit(), flat.EnergyPerBit())
	}
}
