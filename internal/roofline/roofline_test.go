package roofline

import (
	"math"
	"testing"
	"testing/quick"

	"litegpu/internal/units"
)

var h100ish = Device{
	Compute: 2000 * units.Tera,
	MemBW:   3352 * units.GB,
	NetBW:   450 * units.GB,
}

func TestRunComputeBound(t *testing.T) {
	s := Stage{Name: "gemm", FLOPs: 2000 * units.Tera, MemBytes: units.Bytes(units.GB)}
	r := Run(s, h100ish)
	if r.Bound != ComputeBound {
		t.Errorf("bound = %v, want compute", r.Bound)
	}
	if math.Abs(float64(r.Total)-1) > 1e-9 {
		t.Errorf("total = %v, want 1 s", r.Total)
	}
}

func TestRunMemoryBound(t *testing.T) {
	s := Stage{Name: "decode", FLOPs: units.FLOPs(units.Tera), MemBytes: 3352 * units.GB}
	r := Run(s, h100ish)
	if r.Bound != MemoryBound {
		t.Errorf("bound = %v, want memory", r.Bound)
	}
	if math.Abs(float64(r.Total)-1) > 1e-9 {
		t.Errorf("total = %v, want 1 s", r.Total)
	}
}

func TestRunNetworkBound(t *testing.T) {
	s := Stage{Name: "allreduce", NetBytes: 450 * units.GB}
	r := Run(s, h100ish)
	if r.Bound != NetworkBound {
		t.Errorf("bound = %v, want network", r.Bound)
	}
	if math.Abs(float64(r.Total)-1) > 1e-9 {
		t.Errorf("total = %v, want 1 s", r.Total)
	}
}

func TestRunLatencyBound(t *testing.T) {
	s := Stage{Name: "tiny", FLOPs: 1, Latency: 1}
	r := Run(s, h100ish)
	if r.Bound != LatencyBound {
		t.Errorf("bound = %v, want latency", r.Bound)
	}
	if float64(r.Total) < 1 {
		t.Errorf("total %v should include latency", r.Total)
	}
}

func TestLatencyIsAdditive(t *testing.T) {
	s := Stage{FLOPs: 2000 * units.Tera, Latency: 0.5}
	r := Run(s, h100ish)
	if math.Abs(float64(r.Total)-1.5) > 1e-9 {
		t.Errorf("total = %v, want 1.5 (compute 1 + latency 0.5)", r.Total)
	}
}

func TestRunSerialSums(t *testing.T) {
	s := Stage{
		FLOPs:    2000 * units.Tera, // 1 s
		MemBytes: 3352 * units.GB,   // 1 s
		NetBytes: 450 * units.GB,    // 1 s
	}
	overlap := Run(s, h100ish)
	serial := RunSerial(s, h100ish)
	if math.Abs(float64(overlap.Total)-1) > 1e-9 {
		t.Errorf("overlap total = %v, want 1", overlap.Total)
	}
	if math.Abs(float64(serial.Total)-3) > 1e-9 {
		t.Errorf("serial total = %v, want 3", serial.Total)
	}
}

func TestZeroDeviceGivesInfiniteTime(t *testing.T) {
	s := Stage{FLOPs: 1, MemBytes: 1, NetBytes: 1}
	r := Run(s, Device{})
	if !math.IsInf(float64(r.Total), 1) {
		t.Errorf("total on zero device = %v, want +Inf", r.Total)
	}
}

func TestRunAll(t *testing.T) {
	stages := []Stage{
		{Name: "a", FLOPs: 2000 * units.Tera},
		{Name: "b", MemBytes: 3352 * units.GB},
	}
	p := RunAll(stages, h100ish)
	if len(p.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(p.Results))
	}
	if math.Abs(float64(p.Total)-2) > 1e-9 {
		t.Errorf("pipeline total = %v, want 2", p.Total)
	}
	shares := p.BoundShare()
	if math.Abs(shares[ComputeBound]-0.5) > 1e-9 || math.Abs(shares[MemoryBound]-0.5) > 1e-9 {
		t.Errorf("bound shares = %v, want 50/50", shares)
	}
}

func TestBoundShareEmpty(t *testing.T) {
	var p Pipeline
	if shares := p.BoundShare(); len(shares) != 0 {
		t.Errorf("empty pipeline shares = %v", shares)
	}
}

func TestArithmeticIntensity(t *testing.T) {
	s := Stage{FLOPs: 100, MemBytes: 50}
	if ai := ArithmeticIntensity(s); ai != 2 {
		t.Errorf("intensity = %v, want 2", ai)
	}
	if ai := ArithmeticIntensity(Stage{FLOPs: 1}); !math.IsInf(ai, 1) {
		t.Errorf("intensity with no bytes = %v, want +Inf", ai)
	}
}

func TestRidgePoint(t *testing.T) {
	// H100: 2000e12 / 3352e9 ≈ 597 FLOP/B.
	rp := RidgePoint(h100ish)
	if math.Abs(rp-2000e12/3352e9) > 1e-6 {
		t.Errorf("ridge point = %v", rp)
	}
	if !math.IsInf(RidgePoint(Device{Compute: 1}), 1) {
		t.Error("ridge point with zero BW should be +Inf")
	}
}

func TestAttainableFLOPS(t *testing.T) {
	// Below the ridge: bandwidth-limited.
	low := AttainableFLOPS(h100ish, 10)
	if math.Abs(float64(low)-10*3352e9) > 1 {
		t.Errorf("attainable at AI=10: %v", low)
	}
	// Above the ridge: peak.
	high := AttainableFLOPS(h100ish, 10000)
	if high != h100ish.Compute {
		t.Errorf("attainable at AI=10000: %v, want peak", high)
	}
}

func TestBoundString(t *testing.T) {
	for _, b := range []Bound{ComputeBound, MemoryBound, NetworkBound, LatencyBound, Bound(42)} {
		if b.String() == "" {
			t.Errorf("empty string for bound %d", int(b))
		}
	}
}

// Property: overlap total equals max of engine times plus latency.
func TestOverlapIsMaxProperty(t *testing.T) {
	f := func(fl, mb, nb uint32) bool {
		s := Stage{
			FLOPs:    units.FLOPs(fl),
			MemBytes: units.Bytes(mb),
			NetBytes: units.Bytes(nb),
		}
		r := Run(s, h100ish)
		want := math.Max(float64(r.ComputeTime), math.Max(float64(r.MemTime), float64(r.NetTime)))
		return math.Abs(float64(r.Total)-want) < 1e-18
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: serial execution is never faster than overlapped execution.
func TestSerialDominatesOverlapProperty(t *testing.T) {
	f := func(fl, mb, nb uint32) bool {
		s := Stage{
			FLOPs:    units.FLOPs(fl),
			MemBytes: units.Bytes(mb),
			NetBytes: units.Bytes(nb),
		}
		return RunSerial(s, h100ish).Total >= Run(s, h100ish).Total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: attainable FLOPS never exceeds peak and is monotone in intensity.
func TestAttainableFLOPSProperty(t *testing.T) {
	f := func(ra, rb uint16) bool {
		a := float64(ra) / 10
		b := float64(rb) / 10
		if a > b {
			a, b = b, a
		}
		fa := AttainableFLOPS(h100ish, a)
		fb := AttainableFLOPS(h100ish, b)
		return fa <= fb && fb <= h100ish.Compute
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
