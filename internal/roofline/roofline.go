// Package roofline implements the roofline performance model (Williams,
// Waterman, Patterson, CACM 2009) extended with a network ceiling: a
// stage's execution time is the maximum of its compute, memory, and
// network times when engines overlap, or their sum when they do not.
// The paper's methodology is exactly this model: "Compute, memory I/O,
// and network I/O can overlap within each stage."
package roofline

import (
	"fmt"
	"math"

	"litegpu/internal/units"
)

// Device is the set of ceilings a stage runs against.
type Device struct {
	Compute units.FLOPSRate
	MemBW   units.BytesPerSec
	NetBW   units.BytesPerSec
}

// Stage is one unit of work: floating-point operations, bytes moved over
// HBM, and bytes moved over the network, plus a fixed latency term that
// models non-overlappable costs (kernel launch, collective α terms).
type Stage struct {
	Name     string
	FLOPs    units.FLOPs
	MemBytes units.Bytes
	NetBytes units.Bytes
	Latency  units.Seconds
}

// Bound identifies which ceiling limits a stage.
type Bound int

// The possible limiting resources.
const (
	ComputeBound Bound = iota
	MemoryBound
	NetworkBound
	LatencyBound
)

// String implements fmt.Stringer.
func (b Bound) String() string {
	switch b {
	case ComputeBound:
		return "compute"
	case MemoryBound:
		return "memory"
	case NetworkBound:
		return "network"
	case LatencyBound:
		return "latency"
	default:
		return fmt.Sprintf("Bound(%d)", int(b))
	}
}

// Result is the timing verdict for one stage.
type Result struct {
	Stage       Stage
	ComputeTime units.Seconds
	MemTime     units.Seconds
	NetTime     units.Seconds
	Total       units.Seconds
	Bound       Bound
}

// Run evaluates one stage on a device with full overlap: the stage takes
// as long as its slowest engine, plus the fixed latency term.
func Run(s Stage, d Device) Result {
	r := Result{Stage: s}
	r.ComputeTime = s.FLOPs.Over(d.Compute)
	r.MemTime = s.MemBytes.Over(d.MemBW)
	r.NetTime = s.NetBytes.Over(d.NetBW)
	r.Total = r.ComputeTime
	r.Bound = ComputeBound
	if r.MemTime > r.Total {
		r.Total = r.MemTime
		r.Bound = MemoryBound
	}
	if r.NetTime > r.Total {
		r.Total = r.NetTime
		r.Bound = NetworkBound
	}
	if s.Latency > r.Total {
		r.Bound = LatencyBound
	}
	r.Total += s.Latency
	return r
}

// RunSerial evaluates one stage with no overlap: engine times add.
// Used by ablations that quantify what overlap is worth.
func RunSerial(s Stage, d Device) Result {
	r := Run(s, d)
	r.Total = r.ComputeTime + r.MemTime + r.NetTime + s.Latency
	return r
}

// Pipeline sums per-stage results over a sequence of stages, with overlap.
type Pipeline struct {
	Results []Result
	Total   units.Seconds
}

// RunAll evaluates all stages with overlap and accumulates the total.
func RunAll(stages []Stage, d Device) Pipeline {
	p := Pipeline{Results: make([]Result, 0, len(stages))}
	for _, s := range stages {
		r := Run(s, d)
		p.Results = append(p.Results, r)
		p.Total += r.Total
	}
	return p
}

// BoundShare returns the fraction of total time attributed to stages
// limited by each resource — the bottleneck profile reported alongside
// Figure 3 style results.
func (p Pipeline) BoundShare() map[Bound]float64 {
	shares := make(map[Bound]float64)
	if p.Total <= 0 {
		return shares
	}
	for _, r := range p.Results {
		shares[r.Bound] += float64(r.Total) / float64(p.Total)
	}
	return shares
}

// ArithmeticIntensity returns FLOPs per HBM byte for a stage, the x-axis
// of the classic roofline plot.
func ArithmeticIntensity(s Stage) float64 {
	if s.MemBytes <= 0 {
		return math.Inf(1)
	}
	return float64(s.FLOPs) / float64(s.MemBytes)
}

// RidgePoint returns the arithmetic intensity at which a device moves
// from memory-bound to compute-bound: peak FLOPS divided by memory
// bandwidth.
func RidgePoint(d Device) float64 {
	if d.MemBW <= 0 {
		return math.Inf(1)
	}
	return float64(d.Compute) / float64(d.MemBW)
}

// AttainableFLOPS returns the classic roofline ceiling for a kernel of
// the given arithmetic intensity on the device:
// min(peak, intensity × memory bandwidth).
func AttainableFLOPS(d Device, intensity float64) units.FLOPSRate {
	byBW := units.FLOPSRate(intensity * float64(d.MemBW))
	if byBW < d.Compute {
		return byBW
	}
	return d.Compute
}
