// Package collective prices collective-communication operations with the
// standard α–β (latency–bandwidth) machine model: a participant pays α
// per message step and 1/β per byte on the wire. The inference study uses
// it for the tensor-parallel all-reduces that dominate Lite-GPU network
// demand; the network package reuses it for topology comparisons.
package collective

import (
	"fmt"
	"math"

	"litegpu/internal/units"
)

// Link characterizes the point-to-point channel between participants.
type Link struct {
	// Bandwidth is per-participant unidirectional injection bandwidth.
	Bandwidth units.BytesPerSec
	// Latency is the per-message-step latency (α).
	Latency units.Seconds
}

// Op is a collective operation.
type Op int

// The collective operations the models use.
const (
	AllReduce Op = iota
	AllGather
	ReduceScatter
	Broadcast
	AllToAll
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case AllReduce:
		return "all-reduce"
	case AllGather:
		return "all-gather"
	case ReduceScatter:
		return "reduce-scatter"
	case Broadcast:
		return "broadcast"
	case AllToAll:
		return "all-to-all"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Algorithm selects the schedule used to run a collective.
type Algorithm int

// The implemented schedules.
const (
	// Ring is the bandwidth-optimal schedule: 2(N−1) steps for
	// all-reduce, each moving D/N bytes.
	Ring Algorithm = iota
	// Doubling is recursive halving/doubling: log₂N steps, bandwidth
	// near-optimal, far fewer α terms — the small-message winner.
	Doubling
	// Tree is a binomial tree: latency-optimal for tiny payloads but
	// moves the full payload every step.
	Tree
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case Ring:
		return "ring"
	case Doubling:
		return "doubling"
	case Tree:
		return "tree"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

func log2Ceil(n int) float64 {
	if n <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(n)))
}

// Time returns the completion time of op over n participants with a
// payload of size bytes (the full tensor size for all-reduce/broadcast;
// the gathered size for all-gather; the total exchanged matrix for
// all-to-all) using the given algorithm on the given link.
//
// n ≤ 1 or a non-positive payload costs nothing. A zero-bandwidth link
// yields +Inf, letting an absent network dominate a roofline max() term.
func Time(op Op, algo Algorithm, n int, bytes units.Bytes, l Link) units.Seconds {
	if n <= 1 || bytes <= 0 {
		return 0
	}
	if l.Bandwidth <= 0 {
		return units.Seconds(math.Inf(1))
	}
	d := float64(bytes)
	bw := float64(l.Bandwidth)
	alpha := float64(l.Latency)
	nf := float64(n)
	steps2 := 2 * (nf - 1) // ring all-reduce steps
	frac := (nf - 1) / nf  // bandwidth-optimal per-phase byte fraction
	logn := log2Ceil(n)

	var t float64
	switch op {
	case AllReduce:
		switch algo {
		case Ring:
			t = steps2*alpha + 2*frac*d/bw
		case Doubling:
			t = 2*logn*alpha + 2*frac*d/bw
		case Tree:
			// Reduce up + broadcast down, full payload per step.
			t = 2 * logn * (alpha + d/bw)
		}
	case AllGather, ReduceScatter:
		switch algo {
		case Ring:
			t = (nf-1)*alpha + frac*d/bw
		case Doubling:
			t = logn*alpha + frac*d/bw
		case Tree:
			t = logn * (alpha + d/bw)
		}
	case Broadcast:
		switch algo {
		case Ring:
			t = (nf-1)*alpha + d/bw // pipelined chain
		default:
			t = logn * (alpha + d/bw)
		}
	case AllToAll:
		// Each participant exchanges d/n with every peer; schedule-
		// independent to first order.
		t = (nf-1)*alpha + frac*d/bw
	}
	return units.Seconds(t)
}

// Best returns the fastest schedule for op at this size and scale,
// and its completion time. This mirrors what NCCL's tuner does: rings for
// large payloads, logarithmic schedules for small ones.
func Best(op Op, n int, bytes units.Bytes, l Link) (Algorithm, units.Seconds) {
	bestAlgo := Ring
	bestT := Time(op, Ring, n, bytes, l)
	for _, a := range []Algorithm{Doubling, Tree} {
		if t := Time(op, a, n, bytes, l); t < bestT {
			bestAlgo, bestT = a, t
		}
	}
	return bestAlgo, bestT
}

// BusBandwidth converts a measured completion time into the "bus
// bandwidth" convention used by nccl-tests: the per-participant wire rate
// a perfect implementation would need, 2·(n−1)/n·D/t for all-reduce and
// (n−1)/n·D/t for all-gather/reduce-scatter/all-to-all, D/t otherwise.
func BusBandwidth(op Op, n int, bytes units.Bytes, t units.Seconds) units.BytesPerSec {
	if t <= 0 || n <= 1 {
		return 0
	}
	d := float64(bytes)
	nf := float64(n)
	var wire float64
	switch op {
	case AllReduce:
		wire = 2 * (nf - 1) / nf * d
	case AllGather, ReduceScatter, AllToAll:
		wire = (nf - 1) / nf * d
	default:
		wire = d
	}
	return units.BytesPerSec(wire / float64(t))
}

// WireBytes returns the bytes each participant sends for op with the
// given payload under a bandwidth-optimal schedule. The inference model
// uses it to attribute network-bound time per GPU.
func WireBytes(op Op, n int, bytes units.Bytes) units.Bytes {
	if n <= 1 || bytes <= 0 {
		return 0
	}
	frac := float64(n-1) / float64(n)
	switch op {
	case AllReduce:
		return units.Bytes(2 * frac * float64(bytes))
	case AllGather, ReduceScatter, AllToAll:
		return units.Bytes(frac * float64(bytes))
	default:
		return bytes
	}
}
