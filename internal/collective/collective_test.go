package collective

import (
	"math"
	"testing"
	"testing/quick"

	"litegpu/internal/units"
)

var testLink = Link{Bandwidth: 100 * units.GB, Latency: 1e-6}

func TestTimeTrivialCases(t *testing.T) {
	if got := Time(AllReduce, Ring, 1, units.Bytes(units.MB), testLink); got != 0 {
		t.Errorf("n=1 all-reduce = %v, want 0", got)
	}
	if got := Time(AllReduce, Ring, 8, 0, testLink); got != 0 {
		t.Errorf("zero-byte all-reduce = %v, want 0", got)
	}
	if got := Time(AllReduce, Ring, 8, units.Bytes(units.MB), Link{}); !math.IsInf(float64(got), 1) {
		t.Errorf("zero-bandwidth all-reduce = %v, want +Inf", got)
	}
}

func TestRingAllReduceFormula(t *testing.T) {
	// 8 ranks, 8 MB, 100 GB/s, α = 1 µs:
	// t = 2·7·1e-6 + 2·(7/8)·8e6/100e9 = 14e-6 + 140e-6 = 154 µs.
	got := Time(AllReduce, Ring, 8, 8*units.MB, testLink)
	want := 14e-6 + 2*(7.0/8.0)*8e6/100e9
	if math.Abs(float64(got)-want) > 1e-12 {
		t.Errorf("ring all-reduce = %v, want %v", got, want)
	}
}

func TestDoublingAllReduceFormula(t *testing.T) {
	// 8 ranks: 2·log2(8)=6 α terms, same bandwidth term as ring.
	got := Time(AllReduce, Doubling, 8, 8*units.MB, testLink)
	want := 6e-6 + 2*(7.0/8.0)*8e6/100e9
	if math.Abs(float64(got)-want) > 1e-12 {
		t.Errorf("doubling all-reduce = %v, want %v", got, want)
	}
}

func TestTreeAllReduceFormula(t *testing.T) {
	// Tree moves the full payload each of 2·log2(n) steps.
	got := Time(AllReduce, Tree, 8, units.Bytes(units.MB), testLink)
	want := 2 * 3 * (1e-6 + 1e6/100e9)
	if math.Abs(float64(got)-want) > 1e-12 {
		t.Errorf("tree all-reduce = %v, want %v", got, want)
	}
}

func TestAllGatherFormula(t *testing.T) {
	got := Time(AllGather, Ring, 4, 4*units.MB, testLink)
	want := 3e-6 + (3.0/4.0)*4e6/100e9
	if math.Abs(float64(got)-want) > 1e-12 {
		t.Errorf("ring all-gather = %v, want %v", got, want)
	}
	// Reduce-scatter is symmetric.
	if rs := Time(ReduceScatter, Ring, 4, 4*units.MB, testLink); rs != got {
		t.Errorf("reduce-scatter %v ≠ all-gather %v", rs, got)
	}
}

func TestBroadcast(t *testing.T) {
	ring := Time(Broadcast, Ring, 8, units.Bytes(units.MB), testLink)
	tree := Time(Broadcast, Tree, 8, units.Bytes(units.MB), testLink)
	if ring <= 0 || tree <= 0 {
		t.Fatalf("broadcast times: ring %v, tree %v", ring, tree)
	}
	// Pipelined chain beats tree for large payloads.
	big := 100 * units.MB
	if Time(Broadcast, Ring, 8, units.Bytes(big), testLink) >= Time(Broadcast, Tree, 8, units.Bytes(big), testLink) {
		t.Error("pipelined broadcast should beat tree at large payloads")
	}
}

func TestAllToAll(t *testing.T) {
	got := Time(AllToAll, Ring, 8, 8*units.MB, testLink)
	want := 7e-6 + (7.0/8.0)*8e6/100e9
	if math.Abs(float64(got)-want) > 1e-12 {
		t.Errorf("all-to-all = %v, want %v", got, want)
	}
}

func TestBestSelectsRingForLargeDoublingForSmall(t *testing.T) {
	// Large payload at high scale: ring and doubling tie on bandwidth,
	// but doubling saves α steps, so Best must never pick worse than ring.
	algo, tBig := Best(AllReduce, 32, 256*units.MB, testLink)
	if tBig > Time(AllReduce, Ring, 32, 256*units.MB, testLink) {
		t.Errorf("Best (%v) slower than ring", algo)
	}
	// Tiny payload: logarithmic schedule must win over ring.
	algoSmall, _ := Best(AllReduce, 32, 256, testLink)
	if algoSmall == Ring {
		t.Error("Best picked ring for a 256-byte all-reduce at n=32")
	}
}

func TestBusBandwidth(t *testing.T) {
	// A ring all-reduce with zero α runs at exactly link bandwidth in the
	// bus convention.
	l := Link{Bandwidth: 100 * units.GB}
	tt := Time(AllReduce, Ring, 8, 8*units.MB, l)
	bus := BusBandwidth(AllReduce, 8, 8*units.MB, tt)
	if math.Abs(float64(bus)-100*units.GB)/1e11 > 1e-9 {
		t.Errorf("bus bandwidth = %v, want 100 GB/s", bus)
	}
	if BusBandwidth(AllReduce, 8, 8*units.MB, 0) != 0 {
		t.Error("zero-time bus bandwidth should be 0")
	}
	if BusBandwidth(AllReduce, 1, 8*units.MB, 1) != 0 {
		t.Error("single-rank bus bandwidth should be 0")
	}
}

func TestWireBytes(t *testing.T) {
	// All-reduce: 2·(n−1)/n·D.
	got := WireBytes(AllReduce, 8, 8*units.MB)
	want := units.Bytes(2 * 7.0 / 8.0 * 8e6)
	if math.Abs(float64(got)-float64(want)) > 1e-6 {
		t.Errorf("WireBytes all-reduce = %v, want %v", got, want)
	}
	if WireBytes(AllReduce, 1, 8*units.MB) != 0 {
		t.Error("single-rank wire bytes should be 0")
	}
	if WireBytes(Broadcast, 8, units.Bytes(units.MB)) != units.Bytes(units.MB) {
		t.Error("broadcast wire bytes should equal payload")
	}
}

func TestStringers(t *testing.T) {
	ops := []Op{AllReduce, AllGather, ReduceScatter, Broadcast, AllToAll, Op(99)}
	for _, o := range ops {
		if o.String() == "" {
			t.Errorf("empty string for op %d", int(o))
		}
	}
	algos := []Algorithm{Ring, Doubling, Tree, Algorithm(99)}
	for _, a := range algos {
		if a.String() == "" {
			t.Errorf("empty string for algorithm %d", int(a))
		}
	}
}

// Property: collective time grows monotonically with payload size.
func TestTimeMonotoneInSizeProperty(t *testing.T) {
	f := func(ra, rb uint32, rn uint8) bool {
		a := units.Bytes(ra)
		b := units.Bytes(rb)
		if a > b {
			a, b = b, a
		}
		n := int(rn%63) + 2
		for _, algo := range []Algorithm{Ring, Doubling, Tree} {
			if Time(AllReduce, algo, n, a, testLink) > Time(AllReduce, algo, n, b, testLink) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: all-reduce costs at least as much as reduce-scatter (it is a
// reduce-scatter plus an all-gather).
func TestAllReduceDominatesReduceScatterProperty(t *testing.T) {
	f := func(raw uint32, rn uint8) bool {
		d := units.Bytes(raw)
		n := int(rn%31) + 2
		return Time(AllReduce, Ring, n, d, testLink) >= Time(ReduceScatter, Ring, n, d, testLink)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Best is never slower than any single algorithm.
func TestBestOptimalityProperty(t *testing.T) {
	f := func(raw uint32, rn uint8) bool {
		d := units.Bytes(raw % 100000000)
		n := int(rn%63) + 2
		_, best := Best(AllReduce, n, d, testLink)
		for _, a := range []Algorithm{Ring, Doubling, Tree} {
			if best > Time(AllReduce, a, n, d, testLink) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
