package serve

import (
	"sort"

	"litegpu/internal/trace"
)

// Sharded cluster execution: RunCluster's pools are coupled only
// through the router (and, when enabled, the fabric — which disables
// sharding; see ClusterConfig.shardable). Everything else an event can
// touch is pool-local, so contiguous pool ranges can advance on
// independent sim.Engines in parallel, provided every cross-pool
// observation happens at the same simulated instant it would have
// sequentially.
//
// The synchronization model is conservative time windows keyed on the
// one cross-pool event class, router decisions:
//
//   - RoundRobin routes request i to pool i mod P regardless of state,
//     so the whole trace is pre-routed and each shard runs its pools'
//     subsequence to the horizon with no synchronization at all. On a
//     contiguous pool range, shard-local round-robin over the
//     subsequence reproduces the global assignment exactly.
//   - JoinShortestQueue reads every pool's queue depth and liveness at
//     each arrival, so the controller walks arrivals in order: for an
//     arrival at time T it barriers every shard through RunBefore(T)
//     (all events strictly before T — exactly the state a sequential
//     arrival at T observes, because arrivals carry the lowest
//     priority at their timestamp), replicates route()'s scan over the
//     global pool list, and injects the request into the winning
//     pool's shard.
//
// Shard-local dispatch passes replace the sequential all-pool pass;
// the pools a sequential pass would have touched "for free" have
// nothing actionable (any state change that makes work dispatchable
// requests a dispatch on its own shard at that same instant), so the
// narrowing is unobservable. Per-pool metrics are therefore
// byte-identical to sequential, and assemblePools folds them in global
// pool order through the sequential accumulation sequence — the same
// bytes at any shard count.
//
// The goroutines below are audited under this argument: workers only
// advance between channel barriers, never race on shared simulation
// state, and the merge order is fixed by global pool index. They carry
// //litegpu:go-ok waivers (see internal/lint/determinism).

// shardCmd asks a shard worker to advance its calendar: through
// `until` inclusively (Run) or exclusively (RunBefore, the window
// barrier).
type shardCmd struct {
	until  float64
	before bool
}

// clusterShard is one worker's slice of the cluster: a self-contained
// clusterSim over a contiguous pool range, plus the command/ack pair
// the controller synchronizes it through. Between an ack and the next
// command the worker is parked, so the controller may read and mutate
// the shard's state directly (channel operations order the accesses).
type clusterShard struct {
	sim  *clusterSim
	cmd  chan shardCmd
	done chan struct{}
}

// loop is the shard worker: advance on command, ack, park. It exits
// when the controller closes cmd.
func (sh *clusterShard) loop() {
	for c := range sh.cmd {
		if c.before {
			sh.sim.eng.RunBefore(c.until)
		} else {
			sh.sim.eng.Run(c.until)
		}
		sh.done <- struct{}{}
	}
}

// advanceShards runs one synchronization window: every shard advances
// to `until` in parallel, and the call returns once all have acked.
func advanceShards(shards []*clusterShard, until float64, before bool) {
	for _, sh := range shards {
		sh.cmd <- shardCmd{until: until, before: before}
	}
	for _, sh := range shards {
		<-sh.done
	}
}

// runShardedCluster is RunCluster's parallel path (cc.shardable() was
// already checked, cc validated). It produces byte-identical
// ClusterMetrics to the sequential path at any shard count.
func runShardedCluster(cc ClusterConfig, reqs []trace.Request, h float64) (ClusterMetrics, error) {
	sorted := reqs
	if !sortedByArrival(reqs) {
		// Identical sort to the sequential path (including tie order).
		sorted = append([]trace.Request(nil), reqs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Arrival < sorted[j].Arrival })
	}

	nPools := len(cc.Pools)
	nShards := cc.Shards
	if nShards > nPools {
		nShards = nPools
	}

	// Build one clusterSim per contiguous pool range. Global pool and
	// instance offsets keep event priorities and failure seeds exactly
	// where the sequential whole-cluster simulation puts them.
	shards := make([]*clusterShard, 0, nShards)
	pools := make([]*poolSim, 0, nPools) // global pool order
	poolShard := make([]int, 0, nPools)  // owning shard by global pool index
	instBase := 0
	for s := 0; s < nShards; s++ {
		a, b := s*nPools/nShards, (s+1)*nPools/nShards
		scc := cc
		scc.Pools = cc.Pools[a:b]
		scc.Shards = 0
		sub, err := newClusterSimAt(scc, h, a, instBase)
		if err != nil {
			return ClusterMetrics{}, err
		}
		for _, p := range sub.pools {
			instBase += p.sched.numInstances()
			pools = append(pools, p)
			poolShard = append(poolShard, s)
		}
		shards = append(shards, &clusterShard{
			sim:  sub,
			cmd:  make(chan shardCmd),
			done: make(chan struct{}),
		})
	}

	jsq := cc.Router == JoinShortestQueue
	if jsq {
		// Arrivals are injected by the controller below; shards start
		// with only their failure processes booked.
		for _, sh := range shards {
			sh.sim.start(nil)
		}
	} else {
		// RoundRobin: pre-route request i to global pool i mod P and
		// hand each shard its pools' subsequence. Within a contiguous
		// range the fed requests cycle through the range's pools in
		// order, so the shard's local round-robin reproduces the global
		// assignment.
		parts := make([][]trace.Request, nShards)
		for i, r := range sorted {
			s := poolShard[i%nPools]
			parts[s] = append(parts[s], r)
		}
		for s, sh := range shards {
			sh.sim.start(&sliceSource{reqs: parts[s]})
		}
	}

	for _, sh := range shards {
		go sh.loop() //litegpu:go-ok shard worker advances only between channel barriers; results merge in fixed global pool order
	}

	if jsq {
		for _, r := range sorted {
			t := float64(r.Arrival)
			if t > h {
				break // past the horizon this arrival would never fire
			}
			// Barrier: every shard reaches the state a sequential run
			// has when the arrival event (lowest priority at t) fires.
			advanceShards(shards, t, true)
			// Replicate route()'s JoinShortestQueue decision over the
			// global pool list, byte for byte (same jsqPick), then run
			// the arrival through the owning shard's frontend so
			// admission control and the closed client loop behave
			// identically under sharding — the shard's engine owns every
			// event acceptArrival books (deadlines are pool-local).
			tgt := jsqPick(pools)
			p := pools[tgt]
			sub := shards[poolShard[tgt]].sim
			sub.acceptArrival(p, r, t)
			sub.requestDispatch(t)
		}
	}

	// Drain every shard to the horizon in parallel, then retire the
	// workers.
	advanceShards(shards, h, false)
	for _, sh := range shards {
		close(sh.cmd)
	}

	return assemblePools(pools, h), nil
}
