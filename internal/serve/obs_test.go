package serve

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"litegpu/internal/kv"
	"litegpu/internal/obs"
	"litegpu/internal/trace"
	"litegpu/internal/units"
)

// observedChaosCluster builds the ol-chaos deployment from the overload
// corpus under the given scheduler: closed-loop clients, adaptive
// admission, an elastic decode fleet, persistent stragglers, KV
// scarcity and accelerated failures all at once — the regime where a
// read-only observer has the most state to watch and the most ways to
// accidentally perturb it.
func observedChaosCluster(t *testing.T, pol SchedulerPolicy) (ClusterConfig, []trace.Request, units.Seconds) {
	t.Helper()
	cfg := smallConfig()
	cfg.Scheduler = pol
	cfg.DecodeInstances = 3
	cfg.Client = ClientConfig{
		Default: ClientBehavior{Timeout: 30, Retries: 1, BackoffBase: 2},
		Classes: []ClientBehavior{
			{Timeout: 30, Retries: 2, BackoffBase: 1, Jitter: 0.25, TTFTSLO: 2},
			{Timeout: 15, Retries: 1, BackoffBase: 4},
		},
		Seed: 7,
	}
	cfg.Admission = AdmissionConfig{Policy: AdmitAdaptive, QueueLimit: 24, Levels: 2}
	cfg.Autoscale = AutoscaleConfig{
		Enabled: true, Interval: 5, HighWater: 6, LowWater: 1, MinInstances: 1, WarmUp: 10,
	}
	cfg.KV = kv.Config{Policy: kv.Recompute, Blocks: 600}
	cc := clusterOf(cfg)
	cc.Failures = acceleratedFailures(0)
	return cc, twoTenantTrace(t, 10.0, 30.0, 150), 240
}

// runObserved attaches a fresh recorder (fixed seed, probes every 5 s)
// to the cluster, runs it, and returns the metrics plus the two export
// artifacts as strings.
func runObserved(t *testing.T, cc ClusterConfig, reqs []trace.Request, horizon units.Seconds) (ClusterMetrics, string, string) {
	t.Helper()
	rec := obs.New(obs.Options{Seed: 42, SampleTargets: 256, ProbeInterval: 5})
	cc.Observer = rec
	cm, err := RunCluster(cc, reqs, horizon)
	if err != nil {
		t.Fatal(err)
	}
	var tr, pb bytes.Buffer
	if err := rec.WriteTrace(&tr); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteProbesCSV(&pb); err != nil {
		t.Fatal(err)
	}
	return cm, tr.String(), pb.String()
}

// TestObservedRunsAreDeterministic pins the observer's own outputs:
// the same seed and config must export byte-identical timeline JSON and
// probe CSV under every scheduler, with failures, KV scarcity, and
// closed-loop clients all active. The reservoir RNG rides its own
// DeriveSeed stream, so sampling decisions replay exactly.
func TestObservedRunsAreDeterministic(t *testing.T) {
	for _, pol := range SchedulerPolicies() {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			cc, reqs, horizon := observedChaosCluster(t, pol)
			_, trace1, probes1 := runObserved(t, cc, reqs, horizon)
			_, trace2, probes2 := runObserved(t, cc, reqs, horizon)
			if trace1 != trace2 {
				t.Errorf("timeline JSON differs between identical runs (%d vs %d bytes)", len(trace1), len(trace2))
			}
			if probes1 != probes2 {
				t.Errorf("probe CSV differs between identical runs (%d vs %d bytes)", len(probes1), len(probes2))
			}
			if !strings.Contains(trace1, `"ph"`) {
				t.Error("timeline export contains no trace events")
			}
			// One probe row per pool per interval across the horizon,
			// plus the header.
			rows := strings.Count(probes1, "\n") - 1
			want := int(float64(horizon)/5) * len(cc.Pools)
			if rows != want {
				t.Errorf("probe CSV has %d rows, want %d (horizon %v / interval 5 × %d pools)",
					rows, want, horizon, len(cc.Pools))
			}
		})
	}
}

// TestObserverDoesNotPerturbSimulation is the read-only contract: a
// live observer must leave every simulated metric byte-identical to the
// unobserved run, under every scheduler, in the chaos regime. Renders
// through the same %x hex-float view the golden corpus uses, so any
// drift the goldens would catch is caught here with the observer live.
func TestObserverDoesNotPerturbSimulation(t *testing.T) {
	render := func(cm ClusterMetrics) string {
		var b strings.Builder
		for _, pm := range cm.Pools {
			fmt.Fprintf(&b, "pool %s: %x\n", pm.Name, preObsView(pm.Metrics))
		}
		fmt.Fprintf(&b, "total: %x\n", preObsView(cm.Total))
		return b.String()
	}
	for _, pol := range SchedulerPolicies() {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			cc, reqs, horizon := observedChaosCluster(t, pol)
			bare, err := RunCluster(cc, reqs, horizon)
			if err != nil {
				t.Fatal(err)
			}
			observed, _, _ := runObserved(t, cc, reqs, horizon)
			if got, want := render(observed), render(bare); got != want {
				t.Errorf("observer perturbed the simulation:\nobserved: %swant:     %s", got, want)
			}
		})
	}
}

// TestObserverHeartbeatCountsEveryCompletion pins the -progress
// mechanism end to end: the heartbeat callback fires once per completed
// request — before reservoir sampling, so the count is exact — with
// non-decreasing simulated time, and its final count matches the
// metrics the run reports.
func TestObserverHeartbeatCountsEveryCompletion(t *testing.T) {
	cc, reqs, horizon := observedChaosCluster(t, StaticDisaggregated)
	var calls int64
	lastT := -1.0
	rec := obs.New(obs.Options{
		Seed:          42,
		SampleTargets: 4, // tiny reservoir: the count must not depend on sampling
		Heartbeat: func(now float64, completed int64) {
			calls++
			if completed != calls {
				t.Fatalf("heartbeat completed=%d on call %d; must increment by exactly one", completed, calls)
			}
			if now < lastT {
				t.Fatalf("heartbeat time went backwards: %v after %v", now, lastT)
			}
			lastT = now
		},
	})
	cc.Observer = rec
	cm, err := RunCluster(cc, reqs, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("heartbeat never fired")
	}
	if calls != int64(cm.Total.Completed) {
		t.Errorf("heartbeat fired %d times, metrics report %d completions", calls, cm.Total.Completed)
	}
}

// TestObserverDisabledAllocationFree pins the dormant-hook cost at
// zero: with Observer nil (the default) the nil-guarded hooks threaded
// through the cluster path must not allocate per request, so cluster
// allocations stay flat as the trace grows — same contract and budget
// as TestServeAllocationsDoNotScaleWithRequests, measured through
// RunCluster so the engine-level hooks (ingress, probes) are on the
// measured path too.
func TestObserverDisabledAllocationFree(t *testing.T) {
	for _, pol := range SchedulerPolicies() {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			cfg := smallConfig()
			cfg.Scheduler = pol
			gen := trace.CodingWorkload(1.0, 7)
			short, err := gen.Generate(100)
			if err != nil {
				t.Fatal(err)
			}
			long, err := gen.Generate(400)
			if err != nil {
				t.Fatal(err)
			}
			allocs := func(reqs []trace.Request, horizon units.Seconds) float64 {
				return testing.AllocsPerRun(3, func() {
					if _, err := RunCluster(clusterOf(cfg), reqs, horizon); err != nil {
						t.Fatal(err)
					}
				})
			}
			aShort := allocs(short, 200)
			aLong := allocs(long, 500)
			extraReqs := len(long) - len(short)
			extra := aLong - aShort
			if extra > 160 || extra > 0.5*float64(extraReqs) {
				t.Errorf("%s: %d extra requests cost %.0f extra allocations with observer disabled (short %.0f, long %.0f)",
					pol, extraReqs, extra, aShort, aLong)
			}
		})
	}
}
