package serve

import (
	"reflect"
	"strings"
	"testing"

	"litegpu/internal/hw"
	"litegpu/internal/inference"
	"litegpu/internal/model"
	"litegpu/internal/straggler"
	"litegpu/internal/trace"
)

func planRequest(rate float64) PlanRequest {
	return PlanRequest{
		GPU:      hw.H100(),
		Model:    model.Llama3_8B(),
		Opts:     inference.DefaultOptions(),
		Workload: trace.CodingWorkload(rate, 7),
		Horizon:  120,
		Drain:    60,
	}
}

func TestPlanCapacityMeetsSLO(t *testing.T) {
	slo := SLO{TTFTAttainment: 0.99, TBTAttainment: 0.99, MinCompletion: 0.95}
	plan, err := PlanCapacity(planRequest(20), slo)
	if err != nil {
		t.Fatal(err)
	}
	m := plan.Metrics
	if m.TTFTAttainment < slo.TTFTAttainment {
		t.Errorf("TTFT attainment %v below target %v", m.TTFTAttainment, slo.TTFTAttainment)
	}
	if m.TBTAttainment < slo.TBTAttainment {
		t.Errorf("TBT attainment %v below target %v", m.TBTAttainment, slo.TBTAttainment)
	}
	if m.Dropped != 0 {
		t.Errorf("plan drops %d requests", m.Dropped)
	}
	if float64(m.Completed) < slo.MinCompletion*float64(m.Arrived) {
		t.Errorf("completed %d of %d, below the completion floor", m.Completed, m.Arrived)
	}
	if want := plan.Config.PrefillInstances*plan.Config.PrefillGPUs +
		plan.Config.DecodeInstances*plan.Config.DecodeGPUs; plan.TotalGPUs != want {
		t.Errorf("TotalGPUs = %d, want %d", plan.TotalGPUs, want)
	}
	if plan.Cost.Total <= 0 {
		t.Error("TCO breakdown missing")
	}
	if plan.Cost.CostPerMTokens <= 0 {
		t.Error("cost-per-Mtoken readout missing")
	}
}

func TestPlanCapacityIsMinimal(t *testing.T) {
	// Shrinking either pool of the returned plan by one instance must
	// break the SLO — otherwise the planner is not returning the
	// cheapest deployment its search space contains.
	req := planRequest(250)
	slo := SLO{TTFTAttainment: 0.99, TBTAttainment: 0.99, MinCompletion: 0.95}
	plan, err := PlanCapacity(req, slo)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := req.Workload.Generate(req.Horizon)
	if err != nil {
		t.Fatal(err)
	}
	feasible := func(p, d int) bool {
		cfg := plan.Config
		cfg.PrefillInstances, cfg.DecodeInstances = p, d
		m, err := Run(cfg, reqs, req.Horizon+req.Drain)
		if err != nil {
			return false
		}
		return m.Dropped == 0 &&
			m.TTFTAttainment >= slo.TTFTAttainment &&
			m.TBTAttainment >= slo.TBTAttainment &&
			float64(m.Completed) >= slo.MinCompletion*float64(m.Arrived)
	}
	p, d := plan.Config.PrefillInstances, plan.Config.DecodeInstances
	if p > 1 && feasible(p-1, d) {
		t.Errorf("plan %d×P+%d×D is not minimal: %d×P also meets the SLO", p, d, p-1)
	}
	if d > 1 && feasible(p, d-1) {
		t.Errorf("plan %d×P+%d×D is not minimal: %d×D also meets the SLO", p, d, d-1)
	}
	if p == 1 && d == 1 {
		t.Fatal("rate 250 should need more than the floor deployment; search never ran")
	}
}

func TestPlanCapacityDeterministic(t *testing.T) {
	a, err := PlanCapacity(planRequest(20), SLO{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlanCapacity(planRequest(20), SLO{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Config, b.Config) || a.TotalGPUs != b.TotalGPUs {
		t.Errorf("repeated plans differ: %+v vs %+v", a.Config, b.Config)
	}
	if !reflect.DeepEqual(a.Metrics, b.Metrics) {
		t.Error("repeated plan metrics differ")
	}
}

func TestPlanCapacityReportsInfeasible(t *testing.T) {
	req := planRequest(500)
	req.MaxInstances = 1
	_, err := PlanCapacity(req, SLO{})
	if err == nil {
		t.Fatal("expected an infeasibility error")
	}
	if !strings.Contains(err.Error(), "no deployment") {
		t.Errorf("err = %v, want a no-deployment diagnosis", err)
	}
}

func TestPlanCapacityRejectsOversizedModel(t *testing.T) {
	req := planRequest(1)
	lite := hw.Lite()
	lite.MaxGPUs = 1
	lite.Capacity = lite.Capacity / 8 // 2.5 GB: Llama3-8B weights cannot fit
	req.GPU = lite
	if _, err := PlanCapacity(req, SLO{}); err == nil {
		t.Fatal("expected a does-not-fit error")
	}
}

func TestMinFeasibleTPAutoSizing(t *testing.T) {
	opts := inference.DefaultOptions()
	// Llama3-405B cannot fit one H100 but fits a TP group.
	tp, err := inference.MinFeasibleTP(hw.H100(), model.Llama3_405B(), inference.Decode, opts)
	if err != nil {
		t.Fatal(err)
	}
	if tp <= 1 {
		t.Errorf("405B min TP on H100 = %d, want > 1", tp)
	}
	if inference.MaxFeasibleBatch(hw.H100(), model.Llama3_405B(), inference.Decode, tp, opts) < 1 {
		t.Error("reported TP does not actually fit")
	}
}

func TestPlanCapacityAvailabilityAware(t *testing.T) {
	req := planRequest(20)
	slo := SLO{MinAvailability: 0.99999}
	base, err := PlanCapacity(req, SLO{})
	if err != nil {
		t.Fatal(err)
	}
	req.Failures = FailureConfig{Enabled: true, Seed: 5}
	plan, err := PlanCapacity(req, slo)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Spares < 1 {
		t.Errorf("five-nines target yielded %d spares, want ≥ 1", plan.Spares)
	}
	if plan.Availability < slo.MinAvailability {
		t.Errorf("plan availability %v below target %v", plan.Availability, slo.MinAvailability)
	}
	if want := plan.Config.PrefillInstances*plan.Config.PrefillGPUs +
		plan.Config.DecodeInstances*plan.Config.DecodeGPUs + plan.Spares; plan.TotalGPUs != want {
		t.Errorf("TotalGPUs = %d does not include the %d spares (want %d)", plan.TotalGPUs, plan.Spares, want)
	}
	// Spares are hot units: the TCO must charge for them.
	if plan.TotalGPUs > base.TotalGPUs && plan.Cost.GPUCapex <= base.Cost.GPUCapex {
		t.Errorf("spared plan GPU capex %v not above unspared %v", plan.Cost.GPUCapex, base.Cost.GPUCapex)
	}
	// The simulated metrics come from a failure-injected run; at paper
	// AFRs over a minutes-long window the deployment should stay fully
	// available but the field must be populated.
	if plan.Metrics.Availability <= 0 {
		t.Error("availability-aware plan metrics missing Availability")
	}
}

func TestPlanCapacityWithoutFailuresHasNoSpares(t *testing.T) {
	plan, err := PlanCapacity(planRequest(20), SLO{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Spares != 0 {
		t.Errorf("failure-free plan grew %d spares", plan.Spares)
	}
	if plan.Availability != 1 {
		t.Errorf("failure-free plan availability = %v, want 1", plan.Availability)
	}
}

func TestPlanCapacityAvailabilityDeterministic(t *testing.T) {
	req := planRequest(20)
	req.Failures = FailureConfig{Enabled: true, Seed: 5}
	a, err := PlanCapacity(req, SLO{MinAvailability: 0.99999})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlanCapacity(req, SLO{MinAvailability: 0.99999})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Config, b.Config) || a.Spares != b.Spares || !reflect.DeepEqual(a.Metrics, b.Metrics) {
		t.Error("repeated availability-aware plans differ")
	}
}

func TestPlanCapacityWorkerCountInvariant(t *testing.T) {
	// The chosen plan must be byte-identical at any worker count:
	// speculative ladder probes and concurrent policy sizing change how
	// many candidates are simulated, never which plan is selected.
	req := planRequest(20)
	req.Schedulers = SchedulerPolicies()
	var plans []Plan
	for _, workers := range []int{1, 3, 8} {
		r := req
		r.Workers = workers
		plan, err := PlanCapacity(r, SLO{})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		plans = append(plans, plan)
	}
	for i := 1; i < len(plans); i++ {
		if !reflect.DeepEqual(plans[i].Config, plans[0].Config) || !reflect.DeepEqual(plans[i].Metrics, plans[0].Metrics) ||
			plans[i].Cost != plans[0].Cost || plans[i].TotalGPUs != plans[0].TotalGPUs {
			t.Errorf("plan at worker count %d differs from sequential plan", []int{1, 3, 8}[i])
		}
	}
}

func TestPlanCapacityWithOverloadAxis(t *testing.T) {
	// Closed-loop clients, an admission-gate axis, and the straggler
	// model all ride inside the sizing simulations; the chosen plan
	// carries its winning gate and must still be deterministic.
	req := planRequest(20)
	req.Client = ClientConfig{
		Default: ClientBehavior{Timeout: 30, Retries: 1, BackoffBase: 1, Jitter: 0.5},
		Seed:    3,
	}
	req.Admissions = []AdmissionConfig{
		{},
		{Policy: AdmitAdaptive, QueueLimit: 64, Levels: 2},
	}
	req.Straggler = StragglerConfig{Jitter: straggler.Jitter{CV: 0.1}, Seed: 2}
	slo := SLO{TTFTAttainment: 0.95, TBTAttainment: 0.95, MinCompletion: 0.9}
	a, err := PlanCapacity(req, slo)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlanCapacity(req, slo)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Config, b.Config) || !reflect.DeepEqual(a.Metrics, b.Metrics) {
		t.Error("overload-axis plan not deterministic")
	}
	if !reflect.DeepEqual(a.Config.Client, req.Client) {
		t.Error("plan config dropped the client loop")
	}
	found := false
	for _, adm := range req.Admissions {
		if reflect.DeepEqual(a.Config.Admission, adm) {
			found = true
		}
	}
	if !found {
		t.Errorf("plan admission %+v not among the candidates", a.Config.Admission)
	}
}
