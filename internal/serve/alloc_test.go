package serve

import (
	"testing"

	"litegpu/internal/trace"
	"litegpu/internal/units"
)

// allocsForTrace measures the allocations of one full simulation of the
// given pre-generated trace.
func allocsForTrace(t *testing.T, cfg Config, reqs []trace.Request, horizon units.Seconds) float64 {
	t.Helper()
	return testing.AllocsPerRun(3, func() {
		if _, err := Run(cfg, reqs, horizon); err != nil {
			t.Fatal(err)
		}
	})
}

// TestServeAllocationsDoNotScaleWithRequests pins the hot path's
// per-request bookkeeping at zero steady-state allocations: a
// simulation's allocation count is dominated by setup (timer caches,
// sample buffers, arena warm-up) and must stay essentially flat as the
// trace grows — before the allocation-free rework, every request cost
// hundreds of allocations (event nodes, closures, per-step slices), so
// a 4× trace meant roughly 4× the allocations.
func TestServeAllocationsDoNotScaleWithRequests(t *testing.T) {
	for _, pol := range SchedulerPolicies() {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			cfg := smallConfig()
			cfg.Scheduler = pol
			gen := trace.CodingWorkload(1.0, 7)
			short, err := gen.Generate(100)
			if err != nil {
				t.Fatal(err)
			}
			long, err := gen.Generate(400)
			if err != nil {
				t.Fatal(err)
			}
			if len(long) < 3*len(short) {
				t.Fatalf("premise: long trace (%d) not ≥3× short trace (%d)", len(long), len(short))
			}
			aShort := allocsForTrace(t, cfg, short, 200)
			aLong := allocsForTrace(t, cfg, long, 500)
			extraReqs := len(long) - len(short)
			// The long run simulates hundreds of extra requests (and tens
			// of thousands of extra tokens, i.e. thousands of extra decode
			// steps). Allow a fixed budget for config-bounded growth —
			// timer-cache entries at batch sizes the short run never
			// reached (≤ MaxDecodeBatch), deeper queues, arena chunks —
			// but nothing anywhere near per-request or per-step scale:
			// before the allocation-free rework this difference was
			// ~300 allocations per request.
			extra := aLong - aShort
			if extra > 160 || extra > 0.5*float64(extraReqs) {
				t.Errorf("%s: simulating %d extra requests cost %.0f extra allocations (short %.0f, long %.0f); steady state must not allocate per request",
					pol, extraReqs, extra, aShort, aLong)
			}
		})
	}
}
