package serve

import (
	"math"
	"reflect"
	"testing"

	"litegpu/internal/failure"
	"litegpu/internal/hw"
	"litegpu/internal/inference"
	"litegpu/internal/model"
	"litegpu/internal/trace"
	"litegpu/internal/units"
)

// acceleratedFailures returns a failure config hot enough that a
// minutes-long window reliably sees several instance failures: the
// default AFR calibration sped up 8×10⁶×, i.e. an H100-class unit fails
// roughly every 70 simulated seconds. Repair takes 300 s, so without a
// spare an instance that dies mid-window mostly stays dead; with spares
// the 5 s takeover is the only interruption.
func acceleratedFailures(spares int) FailureConfig {
	p := failure.DefaultParams()
	p.MTTR = 300
	p.RecoveryTime = 5
	return FailureConfig{
		Enabled:   true,
		Params:    p,
		Spares:    spares,
		TimeScale: 8e6,
		Seed:      99,
	}
}

func clusterOf(cfgs ...Config) ClusterConfig {
	var cc ClusterConfig
	for _, c := range cfgs {
		cc.Pools = append(cc.Pools, Pool{Config: c})
	}
	return cc
}

func codingTrace(t *testing.T, rate float64, seed uint64, horizon units.Seconds) []trace.Request {
	t.Helper()
	reqs, err := trace.CodingWorkload(rate, seed).Generate(horizon)
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func TestSinglePoolClusterMatchesRun(t *testing.T) {
	// RunCluster with one pool and no failures IS Run: pool metrics and
	// the aggregate must both match field-for-field.
	cfg := smallConfig()
	reqs := codingTrace(t, 1.0, 7, 200)
	m, err := Run(cfg, reqs, 400)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := RunCluster(clusterOf(cfg), reqs, 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(cm.Pools) != 1 {
		t.Fatalf("pools = %d, want 1", len(cm.Pools))
	}
	if !reflect.DeepEqual(cm.Pools[0].Metrics, m) {
		t.Errorf("pool metrics diverge from Run:\n%+v\nvs\n%+v", cm.Pools[0].Metrics, m)
	}
	if !reflect.DeepEqual(cm.Total, m) {
		t.Errorf("single-pool aggregate diverges from Run:\n%+v\nvs\n%+v", cm.Total, m)
	}
	if cm.Pools[0].Name != cfg.GPU.Name {
		t.Errorf("pool name defaulted to %q, want GPU name %q", cm.Pools[0].Name, cfg.GPU.Name)
	}
}

func TestNoFailuresReportsIdealReliability(t *testing.T) {
	m, err := Run(smallConfig(), codingTrace(t, 0.5, 42, 120), 240)
	if err != nil {
		t.Fatal(err)
	}
	if m.Availability != 1 {
		t.Errorf("Availability = %v with no failure injection, want 1", m.Availability)
	}
	if m.FailureEvents != 0 || m.Requeued != 0 || m.DroppedOnFailure != 0 {
		t.Errorf("phantom failure activity: %+v", m)
	}
	if m.Goodput <= 0 {
		t.Error("Goodput not reported")
	}
	// 1 prefill + 1 decode instance, 1 GPU each: either failure removes
	// half the deployment.
	if math.Abs(m.BlastRadius-0.5) > 1e-12 {
		t.Errorf("BlastRadius = %v, want 0.5", m.BlastRadius)
	}
}

// failureTrace is the stream the failure tests share: decode-heavy
// conversation traffic busy enough (~90% decode utilization) that an
// instance death almost always catches requests in flight, simulated
// with no drain window so a dead instance's backlog cannot quietly
// catch up before the horizon.
func failureTrace(t *testing.T) []trace.Request {
	t.Helper()
	reqs, err := trace.ConversationWorkload(4.0, 11).Generate(300)
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func TestFailureInjectionDegradesService(t *testing.T) {
	cfg := smallConfig()
	reqs := failureTrace(t)
	clean, err := Run(cfg, reqs, 300)
	if err != nil {
		t.Fatal(err)
	}
	cc := clusterOf(cfg)
	cc.Failures = acceleratedFailures(0)
	faulty, err := RunCluster(cc, reqs, 300)
	if err != nil {
		t.Fatal(err)
	}
	m := faulty.Total
	if m.FailureEvents == 0 {
		t.Fatal("accelerated failure clock produced no failures")
	}
	if m.Availability >= 1 || m.Availability <= 0 {
		t.Errorf("Availability = %v, want in (0, 1) with failures and no spares", m.Availability)
	}
	if m.Completed >= clean.Completed {
		t.Errorf("failures did not reduce completions: %d with vs %d without", m.Completed, clean.Completed)
	}
	if m.Goodput >= clean.Goodput {
		t.Errorf("failures did not reduce goodput: %v vs %v", m.Goodput, clean.Goodput)
	}
	if m.Requeued == 0 {
		t.Error("requeue policy never requeued in-flight work despite failures")
	}
	if m.DroppedOnFailure != 0 {
		t.Errorf("requeue policy dropped %d requests", m.DroppedOnFailure)
	}
}

func TestDropPolicyDropsInFlight(t *testing.T) {
	cfg := smallConfig()
	reqs := failureTrace(t)
	cc := clusterOf(cfg)
	cc.Failures = acceleratedFailures(0)
	cc.Failures.Policy = DropOnFailure
	cm, err := RunCluster(cc, reqs, 300)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Total.DroppedOnFailure == 0 {
		t.Error("drop policy never dropped despite failures")
	}
	if cm.Total.Requeued != 0 {
		t.Errorf("drop policy requeued %d requests", cm.Total.Requeued)
	}
	// Oversized-prompt drops are a separate channel and must stay zero
	// here.
	if cm.Total.Dropped != 0 {
		t.Errorf("failure drops leaked into Dropped: %d", cm.Total.Dropped)
	}
}

func TestHotSparesRestoreCapacity(t *testing.T) {
	cfg := smallConfig()
	reqs := failureTrace(t)
	run := func(spares int) Metrics {
		cc := clusterOf(cfg)
		cc.Failures = acceleratedFailures(spares)
		cm, err := RunCluster(cc, reqs, 300)
		if err != nil {
			t.Fatal(err)
		}
		return cm.Total
	}
	none := run(0)
	two := run(2)
	if none.FailureEvents == 0 {
		t.Fatal("no failures fired")
	}
	if two.Availability <= none.Availability {
		t.Errorf("2 spares availability %v not above 0 spares %v", two.Availability, none.Availability)
	}
	if two.Completed <= none.Completed {
		t.Errorf("2 spares completed %d < 0 spares %d", two.Completed, none.Completed)
	}
}

func TestFailureRunIsDeterministic(t *testing.T) {
	cfg := smallConfig()
	reqs := codingTrace(t, 1.5, 3, 200)
	cc := clusterOf(cfg)
	cc.Failures = acceleratedFailures(1)
	a, err := RunCluster(cc, reqs, 300)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCluster(cc, reqs, 300)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("repeated failure runs diverge:\n%+v\nvs\n%+v", a.Total, b.Total)
	}
}

func TestHeterogeneousPoolsServeOneTrace(t *testing.T) {
	// An H100 pool and its Lite replacement serve the same stream side
	// by side; every request lands in exactly one pool and the aggregate
	// accounts for all of them.
	h100 := smallConfig()
	lite := smallConfig()
	lite.GPU = hw.Lite()
	lite.PrefillGPUs = 4
	lite.DecodeGPUs = 4
	reqs := codingTrace(t, 2.0, 17, 300)
	for _, router := range []RouterPolicy{RoundRobin, JoinShortestQueue} {
		cc := clusterOf(h100, lite)
		cc.Router = router
		cm, err := RunCluster(cc, reqs, 500)
		if err != nil {
			t.Fatal(err)
		}
		if got := cm.Pools[0].Metrics.Arrived + cm.Pools[1].Metrics.Arrived; got != len(reqs) {
			t.Errorf("router %v: pools saw %d arrivals, want %d", router, got, len(reqs))
		}
		if cm.Total.Arrived != len(reqs) {
			t.Errorf("router %v: aggregate arrivals %d, want %d", router, cm.Total.Arrived, len(reqs))
		}
		for i, pm := range cm.Pools {
			if pm.Metrics.Arrived == 0 {
				t.Errorf("router %v: pool %d starved", router, i)
			}
			if pm.Metrics.Completed == 0 {
				t.Errorf("router %v: pool %d completed nothing", router, i)
			}
		}
		if cm.Total.Completed != cm.Pools[0].Metrics.Completed+cm.Pools[1].Metrics.Completed {
			t.Errorf("router %v: aggregate completions do not sum", router)
		}
	}
}

func TestRoundRobinSplitsEvenly(t *testing.T) {
	cfg := smallConfig()
	reqs := codingTrace(t, 2.0, 23, 200)
	cc := clusterOf(cfg, cfg)
	cc.Router = RoundRobin
	cm, err := RunCluster(cc, reqs, 400)
	if err != nil {
		t.Fatal(err)
	}
	a, b := cm.Pools[0].Metrics.Arrived, cm.Pools[1].Metrics.Arrived
	if diff := a - b; diff < -1 || diff > 1 {
		t.Errorf("round-robin split %d/%d, want within 1", a, b)
	}
}

func TestJSQAvoidsSlowPool(t *testing.T) {
	// One pool has triple the decode instances of the other. At a rate
	// that saturates a single decode engine, JSQ must send the wider
	// pool more work (round-robin would stay blind at 50/50).
	slow := smallConfig()
	fast := smallConfig()
	fast.DecodeInstances = 3
	reqs := codingTrace(t, 8.0, 29, 200)

	ccJSQ := clusterOf(slow, fast)
	ccJSQ.Router = JoinShortestQueue
	jsq, err := RunCluster(ccJSQ, reqs, 400)
	if err != nil {
		t.Fatal(err)
	}
	if jsq.Pools[1].Metrics.Arrived <= jsq.Pools[0].Metrics.Arrived {
		t.Errorf("JSQ sent %d to the 3×-decode pool vs %d to the 1× pool; want more to the wide pool",
			jsq.Pools[1].Metrics.Arrived, jsq.Pools[0].Metrics.Arrived)
	}
}

func TestJSQRoutesAroundFailures(t *testing.T) {
	// Same two pools under an accelerated failure clock: JSQ should not
	// collapse; every arrival still lands somewhere and aggregates hold.
	cfg := smallConfig()
	cc := clusterOf(cfg, cfg)
	cc.Router = JoinShortestQueue
	cc.Failures = acceleratedFailures(1)
	reqs := codingTrace(t, 2.0, 31, 300)
	cm, err := RunCluster(cc, reqs, 420)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Total.FailureEvents == 0 {
		t.Fatal("no failures fired")
	}
	if cm.Total.Arrived != len(reqs) {
		t.Errorf("arrivals %d, want %d", cm.Total.Arrived, len(reqs))
	}
	if cm.Total.Completed == 0 {
		t.Error("cluster served nothing under failures")
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := RunCluster(ClusterConfig{}, nil, 10); err == nil {
		t.Error("empty cluster accepted")
	}
	bad := smallConfig()
	bad.MaxDecodeBatch = 0
	if _, err := RunCluster(clusterOf(bad), nil, 10); err == nil {
		t.Error("invalid pool accepted")
	}
	big := smallConfig()
	big.Model = model.Llama3_405B()
	if _, err := RunCluster(clusterOf(big), nil, 10); err == nil {
		t.Error("oversized model accepted")
	}
}

func TestBlastRadiusScalesWithInstanceCount(t *testing.T) {
	// The paper's serving-level fault-tolerance claim in miniature: at
	// equal aggregate compute, a deployment of many small instances
	// loses a smaller capacity fraction per failure than one of few big
	// instances.
	big := smallConfig() // 1×1P + 1×1D H100
	lite := smallConfig()
	lite.GPU = hw.Lite()
	lite.PrefillInstances = 4 // 4×1P + 4×1D quarter-GPUs
	lite.DecodeInstances = 4
	if inference.MaxFeasibleBatch(lite.GPU, lite.Model, inference.Decode, 1, lite.Opts) < 1 {
		t.Skip("Llama3-8B no longer fits one Lite GPU")
	}
	reqs := codingTrace(t, 0.5, 5, 120)
	mBig, err := Run(big, reqs, 240)
	if err != nil {
		t.Fatal(err)
	}
	mLite, err := Run(lite, reqs, 240)
	if err != nil {
		t.Fatal(err)
	}
	if mLite.BlastRadius >= mBig.BlastRadius {
		t.Errorf("Lite blast radius %v not below big-GPU %v", mLite.BlastRadius, mBig.BlastRadius)
	}
	if math.Abs(mLite.BlastRadius-0.125) > 1e-12 {
		t.Errorf("8-instance blast radius = %v, want 1/8", mLite.BlastRadius)
	}
}
