package serve

import (
	"fmt"
	"testing"

	"litegpu/internal/hw"
	"litegpu/internal/kv"
	"litegpu/internal/trace"
	"litegpu/internal/units"
)

func agentTrace(t *testing.T, rate float64, seed uint64, horizon units.Seconds) []trace.Request {
	t.Helper()
	reqs, err := trace.AgentWorkload(rate, seed).Generate(horizon)
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func convTrace(t *testing.T, rate float64, seed uint64, horizon units.Seconds) []trace.Request {
	t.Helper()
	reqs, err := trace.ConversationWorkload(rate, seed).Generate(horizon)
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

// TestKVConfigValidation pins the serve-level Config gate on kv
// parameters: block knobs without a policy are a misconfiguration, not
// a silent no-op.
func TestKVConfigValidation(t *testing.T) {
	bad := []kv.Config{
		{Policy: kv.Policy(7)},
		{BlockTokens: 16},   // knobs without a policy
		{PrefixCache: true}, // ditto
		{Blocks: 100},       // ditto
		{Policy: kv.Recompute, BlockTokens: -1},
		{Policy: kv.Recompute, Blocks: -1},
	}
	for i, kc := range bad {
		cfg := smallConfig()
		cfg.KV = kc
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad kv config %d validated: %+v", i, kc)
		}
	}
	good := smallConfig()
	good.KV = kv.Config{Policy: kv.Swap, BlockTokens: 32, PrefixCache: true, Blocks: 500}
	if err := good.Validate(); err != nil {
		t.Errorf("good kv config rejected: %v", err)
	}
}

// TestKVAmpleMemoryMatchesLegacy is the backward-compatibility half of
// the KV contract: with the memory model ON but the block budget far
// above any working set, no admission ever blocks, no sequence is ever
// preempted, and every legacy metric must be byte-identical to the
// infinite-memory run — under all three scheduling disciplines. The
// memory model may only change outcomes through genuine scarcity.
func TestKVAmpleMemoryMatchesLegacy(t *testing.T) {
	reqs := convTrace(t, 4.0, 11, 120)
	for _, pol := range SchedulerPolicies() {
		t.Run(pol.String(), func(t *testing.T) {
			cfg := smallConfig()
			cfg.Scheduler = pol
			base := mustRun(t, cfg, reqs, 240)

			kvCfg := cfg
			kvCfg.KV = kv.Config{Policy: kv.Recompute, Blocks: 1 << 20}
			got := mustRun(t, kvCfg, reqs, 240)

			if got.KVPreemptions != 0 || got.KVRecomputeTokens != 0 {
				t.Fatalf("ample memory still preempted: %d preemptions, %d recomputed tokens",
					got.KVPreemptions, got.KVRecomputeTokens)
			}
			if got.KVPeakBlocks == 0 {
				t.Fatal("memory model on but no blocks ever in use")
			}
			if fmt.Sprintf("%x", legacyView(got)) != fmt.Sprintf("%x", legacyView(base)) {
				t.Errorf("ample-memory run diverges from infinite-memory run:\ngot:  %x\nwant: %x",
					legacyView(got), legacyView(base))
			}
		})
	}
}

// TestKVEqualSiliconLitePreemptsMore is the paper-facing acceptance
// claim: at equal total silicon, a fleet of small-HBM Lite instances
// preempts strictly more than one big-HBM H100 deployment, because
// each Lite instance replicates the model weights out of a quarter of
// the memory and fragments the remaining KV capacity — a 256-sequence
// working set that fits comfortably in one 80 GB pool does not fit
// sliced four ways. Same trace, same aggregate compute.
func TestKVEqualSiliconLitePreemptsMore(t *testing.T) {
	reqs := convTrace(t, 100.0, 7, 150)
	kvCfg := kv.Config{Policy: kv.Recompute}

	h100 := smallConfig() // 1 prefill + 1 decode, 1×H100 each
	h100.MaxDecodeBatch = 256
	h100.KV = kvCfg
	hm := mustRun(t, h100, reqs, 300)

	lite := smallConfig()
	lite.GPU = hw.Lite() // quarter-scale: 4 of them per H100
	lite.PrefillInstances = 4
	lite.DecodeInstances = 4
	lite.MaxDecodeBatch = 256
	lite.KV = kvCfg
	lm := mustRun(t, lite, reqs, 300)

	if lm.KVPreemptions <= hm.KVPreemptions {
		t.Errorf("equal-silicon claim failed: Lite preemptions %d, H100 preemptions %d (want strictly more on Lite)",
			lm.KVPreemptions, hm.KVPreemptions)
	}
}

// TestKVPrefixCachingRecoversGoodput pins the prefix-cache payoff on
// the workload it exists for: agent traffic whose requests share a few
// long system prompts. Under the same scarce block budget, turning
// prefix caching on must produce a real hit rate and recover goodput —
// shared blocks mean the same budget admits more sequences and
// recomputes less.
func TestKVPrefixCachingRecoversGoodput(t *testing.T) {
	reqs := agentTrace(t, 8.0, 42, 150)
	run := func(prefix bool) Metrics {
		cfg := smallConfig()
		cfg.KV = kv.Config{Policy: kv.Recompute, PrefixCache: prefix, Blocks: 600}
		// No drain window: goodput is throughput inside the arrival
		// window, so the recompute tax shows up as missing completions.
		return mustRun(t, cfg, reqs, 150)
	}
	plain := run(false)
	cached := run(true)

	if plain.KVCacheHitRate != 0 {
		t.Errorf("prefix caching off but hit rate %.3f", plain.KVCacheHitRate)
	}
	if cached.KVCacheHitRate <= 0.2 {
		t.Errorf("agent workload hit rate %.3f, want > 0.2", cached.KVCacheHitRate)
	}
	if cached.Goodput <= plain.Goodput {
		t.Errorf("prefix caching did not recover goodput: %.1f tok/s cached vs %.1f uncached",
			cached.Goodput, plain.Goodput)
	}
	if cached.KVRecomputeTokens > plain.KVRecomputeTokens {
		t.Errorf("prefix caching increased recompute: %d cached vs %d uncached",
			cached.KVRecomputeTokens, plain.KVRecomputeTokens)
	}
}

// TestKVPeakRespectsBudget pins the resource accounting itself: under
// an explicit per-instance block budget, the reported peak can never
// exceed budget × instances, and a scarce run must actually preempt.
func TestKVPeakRespectsBudget(t *testing.T) {
	const blocks = 500
	reqs := convTrace(t, 8.0, 3, 120)
	for _, pol := range SchedulerPolicies() {
		t.Run(pol.String(), func(t *testing.T) {
			cfg := smallConfig()
			cfg.Scheduler = pol
			cfg.KV = kv.Config{Policy: kv.Recompute, Blocks: blocks}
			m := mustRun(t, cfg, reqs, 240)
			instances := cfg.DecodeInstances
			if pol.Colocated() {
				instances, _ = cfg.ColocatedShape()
			}
			if m.KVPeakBlocks > blocks*instances {
				t.Errorf("peak %d blocks exceeds budget %d×%d", m.KVPeakBlocks, blocks, instances)
			}
			if m.KVPeakBlocks == 0 {
				t.Error("no blocks ever in use")
			}
			if m.KVMeanBlocks <= 0 || m.KVMeanBlocks > float64(m.KVPeakBlocks) {
				t.Errorf("mean blocks %.2f outside (0, peak %d]", m.KVMeanBlocks, m.KVPeakBlocks)
			}
			if m.KVPreemptions == 0 {
				t.Error("scarce budget but no preemptions — pressure scenario is vacuous")
			}
		})
	}
}

// TestKVSwapPricedOnFabric pins the swap policy's network coupling: on
// an in-loop fabric, every preemption round-trips the victim's blocks
// through remote memory as real transfers, so a swapping run must
// report strictly more fabric transfers than the same run under
// recompute (which moves no bytes for preemption).
func TestKVSwapPricedOnFabric(t *testing.T) {
	reqs := convTrace(t, 4.0, 11, 120)
	run := func(pol kv.Policy) Metrics {
		cfg := l70Config()
		cfg.Network = pluggablePacket()
		cfg.KV = kv.Config{Policy: pol, Blocks: 800}
		return mustRun(t, cfg, reqs, 240)
	}
	rec := run(kv.Recompute)
	swp := run(kv.Swap)
	if rec.KVPreemptions == 0 || swp.KVPreemptions == 0 {
		t.Fatalf("pressure scenario vacuous: %d recompute / %d swap preemptions",
			rec.KVPreemptions, swp.KVPreemptions)
	}
	if swp.NetTransfers <= rec.NetTransfers {
		t.Errorf("swap transfers %d not above recompute's %d — swaps are not riding the fabric",
			swp.NetTransfers, rec.NetTransfers)
	}
	if swp.KVRecomputeTokens != 0 {
		t.Errorf("swap policy recomputed %d tokens", swp.KVRecomputeTokens)
	}
	if rec.KVRecomputeTokens == 0 {
		t.Error("recompute policy preempted but recomputed nothing")
	}
}

// TestKVSnapshotForkInvariance extends the snapshot contract to the
// memory model: forking a failure run at its first failure with KV
// pressure live (allocator state, reprefill queues, swap transfers in
// flight) must be byte-identical to simulating the whole run from t=0.
func TestKVSnapshotForkInvariance(t *testing.T) {
	cfg := smallConfig()
	cfg.KV = kv.Config{Policy: kv.Recompute, PrefixCache: true, Blocks: 500}
	reqs := convTrace(t, 8.0, 3, 200)
	f := acceleratedFailures(0)
	m0, fork, err := runForkable(cfg, f, reqs, 300)
	if err != nil {
		t.Fatal(err)
	}
	if fork.sim.snap == nil {
		t.Fatal("accelerated failures fired no failure; fork test is vacuous")
	}
	if m0.KVPreemptions == 0 {
		t.Fatal("fork scenario saw no KV pressure; test is vacuous")
	}
	for spares := 0; spares <= 2; spares++ {
		fs := f
		fs.Spares = spares
		want, err := RunWithFailures(cfg, fs, reqs, 300)
		if err != nil {
			t.Fatal(err)
		}
		got := fork.runWithSpares(spares)
		if fmt.Sprintf("%x", got) != fmt.Sprintf("%x", want) {
			t.Errorf("spares=%d: fork resume diverges from full run\ngot:  %x\nwant: %x", spares, got, want)
		}
	}
}

// TestKVPlanPolicyAxis pins the planner's memory axis: a KVPolicies
// list sizes every candidate independently and the winning plan
// carries its kv config, exactly as the fabric axis does.
func TestKVPlanPolicyAxis(t *testing.T) {
	req := planRequest(6)
	req.KVPolicies = []kv.Config{{}, {Policy: kv.Recompute, PrefixCache: true}}
	plan, err := PlanCapacity(req, SLO{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Config.PrefillInstances <= 0 && plan.Config.Instances <= 0 {
		t.Fatalf("empty plan: %+v", plan.Config)
	}
	// The winner must be one of the candidates, verbatim.
	if plan.Config.KV != req.KVPolicies[0] && plan.Config.KV != req.KVPolicies[1] {
		t.Errorf("plan kv config %+v is not one of the candidates", plan.Config.KV)
	}
}
