package serve

import (
	"fmt"
	"testing"

	"litegpu/internal/hw"
	"litegpu/internal/kv"
	"litegpu/internal/trace"
	"litegpu/internal/units"
)

// lite4Of rebuilds a config on the paper's Lite-GPU at equal silicon:
// four Lite dies stand in for each H100 per instance.
func lite4Of(cfg Config) Config {
	cfg.GPU = hw.Lite()
	cfg.PrefillGPUs = 4
	cfg.DecodeGPUs = 4
	return cfg
}

// overloadTenants is the acceptance trace: a paid tier (priority 1) at
// a quarter of the total rate, a free tier at the rest, and a flash
// crowd doubling arrivals mid-run.
func overloadTenants(t *testing.T, paid, free float64, span units.Seconds) []trace.Request {
	t.Helper()
	mg := trace.MultiGenerator{
		Classes: []trace.TenantClass{
			{Name: "paid", Gen: trace.ConversationWorkload(paid, 0), Priority: 1},
			{Name: "free", Gen: trace.ConversationWorkload(free, 0), Priority: 0},
		},
		Envelope: trace.Envelope{Flash: []trace.FlashCrowd{{At: 30, Duration: 60, Factor: 2}}},
		Seed:     5,
	}
	reqs, err := mg.Generate(span)
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

// TestOverloadZeroValueEquivalence pins the contract that every PR-9
// knob is inert at its zero value: a config whose client loop,
// admission gate, autoscaler, and straggler model are all off — even
// with their inactive parameters set to junk — must produce metrics
// byte-identical to the plain config, under all three schedulers.
func TestOverloadZeroValueEquivalence(t *testing.T) {
	reqs := codingTrace(t, 30, 17, 60)
	for _, pol := range SchedulerPolicies() {
		base := smallConfig()
		base.Scheduler = pol
		if pol == ChunkedPrefill {
			base.PrefillChunk = 256
		}
		want, err := Run(base, reqs, 200)
		if err != nil {
			t.Fatal(err)
		}
		wantHex := fmt.Sprintf("%x", want)

		variants := map[string]func(*Config){
			"client-seed-only": func(c *Config) {
				c.Client = ClientConfig{Seed: 42}
			},
			"admit-all-with-params": func(c *Config) {
				c.Admission = AdmissionConfig{Policy: AdmitAll, QueueLimit: 8, MinPriority: 5, Levels: 3}
			},
			"autoscale-disabled-with-params": func(c *Config) {
				c.Autoscale = AutoscaleConfig{Interval: 1, HighWater: 2, LowWater: 1, Step: 3, WarmUp: 100}
			},
			"straggler-zero-cv": func(c *Config) {
				c.Straggler = StragglerConfig{Seed: 7}
			},
		}
		for name, mut := range variants {
			cfg := base
			mut(&cfg)
			got, err := Run(cfg, reqs, 200)
			if err != nil {
				t.Fatalf("%v/%s: %v", pol, name, err)
			}
			if fmt.Sprintf("%x", got) != wantHex {
				t.Errorf("%v/%s: inert knob changed metrics", pol, name)
			}
		}
	}
}

// TestClosedLoopLeaksNothing is the leak property test: when every
// request has resolved — served, timed out, abandoned, or shed — the
// pool must hold no client tracks, no tombstones, no KV blocks, no
// scheduler-outstanding work, and no in-flight handoffs. Cancellation
// reclaims everything, under every scheduler, with and without
// failures.
func TestClosedLoopLeaksNothing(t *testing.T) {
	reqs := overloadTenants(t, 15, 45, 60)
	for _, pol := range SchedulerPolicies() {
		for _, withFailures := range []bool{false, true} {
			name := fmt.Sprintf("%v/failures=%v", pol, withFailures)
			cfg := smallConfig()
			cfg.Scheduler = pol
			if pol == ChunkedPrefill {
				cfg.PrefillChunk = 256
			}
			cfg.Client = ClientConfig{
				Default: ClientBehavior{Timeout: 5, Retries: 2, BackoffBase: 1, Jitter: 0.5},
				Seed:    11,
			}
			cfg.Admission = AdmissionConfig{Policy: AdmitAdaptive, QueueLimit: 16, Levels: 2}
			cfg.KV = kv.Config{Policy: kv.Recompute, Blocks: 500}
			cc := clusterOf(cfg)
			if withFailures {
				cc.Failures = acceleratedFailures(0)
			}
			// A long horizon so every deadline, backoff retry, and repair
			// resolves before the run ends.
			s, err := newClusterSim(cc, 400)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			m := s.run(reqs)
			if m.Total.Arrived == 0 {
				t.Fatalf("%s: empty run", name)
			}
			for _, p := range s.pools {
				if n := len(p.tracks); n != 0 {
					t.Errorf("%s: %d live client tracks leaked", name, n)
				}
				if n := len(p.cancelled); n != 0 {
					t.Errorf("%s: %d cancellation tombstones leaked", name, n)
				}
				for i := range p.trackArena {
					if p.trackArena[i].open {
						t.Errorf("%s: arena track %d still open", name, p.trackArena[i].id)
						break
					}
				}
				if p.kvInUse != 0 {
					t.Errorf("%s: %d KV blocks leaked", name, p.kvInUse)
				}
				if n := p.sched.outstanding(); n != 0 {
					t.Errorf("%s: scheduler reports %d outstanding", name, n)
				}
				if n := len(p.liveXfers); n != 0 {
					t.Errorf("%s: %d KV handoffs still in flight", name, n)
				}
			}
		}
	}
}

// TestGracefulDegradationUnderFlashCrowd is the acceptance test: a
// flash crowd at roughly twice the sustainable rate, on both the
// big-GPU and equal-silicon Lite deployments. Three runs on identical
// hardware and trace:
//
//   - open: clients with the same deadlines but no feedback
//     (ObserveOnly) — the open-loop infinite-queueing baseline;
//   - closed: deadlines, abandonment, and capped-exponential backoff,
//     but no admission control — the queue still collapses, just with
//     retries;
//   - shed: closed loop plus adaptive admission — the free tier sheds
//     first and the paid tier keeps its TTFT SLO.
//
// The claims under test: closed-loop abandonment+backoff beats
// open-loop queueing on deadline-qualified goodput; adaptive shedding
// keeps paid-tier TTFT attainment high while the ungated run
// collapses; and the ungated tail (TTFT p99) grows without bound while
// the gated one stays near the SLO.
func TestGracefulDegradationUnderFlashCrowd(t *testing.T) {
	clients := ClientConfig{
		Classes: []ClientBehavior{
			{Timeout: 15, Retries: 2, BackoffBase: 2, BackoffCap: 8, Jitter: 0.5, TTFTSLO: 2},
			{Timeout: 15, Retries: 2, BackoffBase: 2, BackoffCap: 8, Jitter: 0.5},
		},
		Seed: 7,
	}
	reqs := overloadTenants(t, 20, 60, 120)
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"h100", smallConfig()},
		{"lite-equal-silicon", lite4Of(smallConfig())},
	} {
		t.Run(tc.name, func(t *testing.T) {
			base := tc.cfg
			base.KV = kv.Config{Policy: kv.Recompute, Blocks: 2000}

			openCfg := base
			openCfg.Client = clients
			openCfg.Client.ObserveOnly = true
			open, err := Run(openCfg, reqs, 300)
			if err != nil {
				t.Fatal(err)
			}

			closedCfg := base
			closedCfg.Client = clients
			closed, err := Run(closedCfg, reqs, 300)
			if err != nil {
				t.Fatal(err)
			}

			shedCfg := closedCfg
			shedCfg.Admission = AdmissionConfig{Policy: AdmitAdaptive, QueueLimit: 48, Levels: 4}
			shed, err := Run(shedCfg, reqs, 300)
			if err != nil {
				t.Fatal(err)
			}

			// Closed-loop clients waste capacity on retried prefills, but
			// abandonment stops the simulator burning decode on requests
			// nobody is waiting for: deadline-qualified goodput must be
			// strictly higher than open-loop infinite queueing.
			if closed.UsefulGoodput <= open.UsefulGoodput {
				t.Errorf("closed-loop useful goodput %.1f not above open-loop %.1f",
					closed.UsefulGoodput, open.UsefulGoodput)
			}
			if shed.UsefulGoodput <= closed.UsefulGoodput {
				t.Errorf("shedding useful goodput %.1f not above closed-loop %.1f",
					shed.UsefulGoodput, closed.UsefulGoodput)
			}

			// The paid tier survives the crowd only behind the gate.
			paidShed := shed.Classes[0].TTFTAttainment
			paidClosed := closed.Classes[0].TTFTAttainment
			if paidShed < 0.7 {
				t.Errorf("paid-tier TTFT attainment %.3f under shedding, want >= 0.7", paidShed)
			}
			if paidClosed > 0.3 {
				t.Errorf("paid-tier TTFT attainment %.3f without admission control, want collapse (<= 0.3)", paidClosed)
			}
			if paidShed <= paidClosed {
				t.Errorf("shedding attainment %.3f not above ungated %.3f", paidShed, paidClosed)
			}

			// Ungated, the TTFT tail grows to the client timeout; gated it
			// stays near the SLO.
			if closed.TTFT.P99 < 5 {
				t.Errorf("ungated TTFT p99 %.2fs, want unbounded growth (>= 5s)", closed.TTFT.P99)
			}
			if shed.TTFT.P99 > 2 {
				t.Errorf("gated TTFT p99 %.2fs, want within SLO reach (<= 2s)", shed.TTFT.P99)
			}
			t.Logf("%s: useful goodput open=%.0f closed=%.0f shed=%.0f; paid attainment closed=%.3f shed=%.3f; ttft p99 closed=%.1fs shed=%.1fs",
				tc.name, open.UsefulGoodput, closed.UsefulGoodput, shed.UsefulGoodput,
				paidClosed, paidShed, closed.TTFT.P99, shed.TTFT.P99)
		})
	}
}

// TestAutoscalerShardDeterminism runs an elastic, failure-injected,
// closed-loop cluster at shard counts 1, 2, and 4 and requires
// byte-identical metrics: the autoscaler's control loop, cold-start
// warm-ups (including instances that die mid-warm-up under the
// accelerated failure clock), and drain-first scale-downs are all
// event-driven state inside each pool, so sharding must not observe
// them.
func TestAutoscalerShardDeterminism(t *testing.T) {
	cfg := smallConfig()
	cfg.DecodeInstances = 4
	cfg.MaxDecodeBatch = 16
	cfg.Client = ClientConfig{
		Default: ClientBehavior{Timeout: 20, Retries: 2, BackoffBase: 1, Jitter: 0.5},
		Seed:    13,
	}
	cfg.Admission = AdmissionConfig{Policy: AdmitAdaptive, QueueLimit: 32, Levels: 2}
	cfg.Autoscale = AutoscaleConfig{
		Enabled: true, Interval: 5, HighWater: 6, LowWater: 1, MinInstances: 1, WarmUp: 20,
	}
	cc := clusterOf(cfg, cfg, cfg, cfg)
	cc.Router = JoinShortestQueue
	cc.Failures = acceleratedFailures(0)
	reqs := overloadTenants(t, 25, 75, 90)

	run := func(shards int) string {
		c := cc
		c.Shards = shards
		cm, err := RunCluster(c, reqs, 240)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if shards <= 1 {
			if cm.Total.ScaleUps == 0 {
				t.Fatal("scenario never scaled up — not exercising the autoscaler")
			}
			if cm.Total.FailureEvents == 0 {
				t.Fatal("scenario saw no failures — not exercising warm-up/failure interaction")
			}
		}
		return hexCluster(cm)
	}
	seq := run(1)
	for _, shards := range []int{2, 4} {
		if got := run(shards); got != seq {
			t.Errorf("shards=%d diverges from sequential run", shards)
		}
	}
}

// TestWarmupAbortsWhenInstanceDies pins the cold-start/failure
// interaction directly: an instance that dies while warming must stay
// parked when its warm-up completes, rather than unparking dead
// capacity.
func TestWarmupAbortsWhenInstanceDies(t *testing.T) {
	cfg := smallConfig()
	cfg.DecodeInstances = 2
	cfg.Autoscale = AutoscaleConfig{
		Enabled: true, Interval: 5, HighWater: 2, LowWater: 1, MinInstances: 1, WarmUp: 10,
	}
	s, err := newClusterSim(clusterOf(cfg), 100)
	if err != nil {
		t.Fatal(err)
	}
	p := s.pools[0]
	parked := -1
	for id := p.scaleLo; id < p.scaleHi; id++ {
		if p.sched.state(id).parked {
			parked = id
			break
		}
	}
	if parked < 0 {
		t.Fatal("no instance starts parked above the floor")
	}
	if !s.scaleUpOne(p, 0) {
		t.Fatal("scale-up found no target")
	}
	st := p.sched.state(parked)
	if !st.warming {
		t.Fatal("scale-up did not start a warm-up")
	}
	st.up = false // the instance fails mid-warm-up
	s.onWarm(float64(cfg.Autoscale.WarmUp), packArg(0, parked))
	if st.warming {
		t.Error("warming flag not cleared")
	}
	if !st.parked {
		t.Error("dead instance unparked at warm-up completion")
	}
	// When it was alive, the same warm-up completes normally.
	st.up = true
	st.warming = true
	s.onWarm(2*float64(cfg.Autoscale.WarmUp), packArg(0, parked))
	if st.parked {
		t.Error("live instance failed to unpark at warm-up completion")
	}
}
