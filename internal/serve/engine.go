package serve

import (
	"fmt"
	"math"
	"sort"

	"litegpu/internal/failure"
	"litegpu/internal/inference"
	"litegpu/internal/mathx"
	"litegpu/internal/sim"
	"litegpu/internal/trace"
	"litegpu/internal/units"
)

// Same-timestamp event ordering, reproducing the phased scan of the
// pre-sim serve loop: all arrivals, then prefill completions in engine
// order, then decode completions in engine order, then failure
// machinery, then exactly one dispatch pass. Within each band an
// instance's offset is poolIndexBase(pool)+instance, so pool 0's
// engines order before pool 1's; ClusterConfig validation caps pools
// at maxPoolInstances instances to keep offsets inside their band.
const (
	prioArrival  = 0
	prioPrefill  = 1 << 20 // + global prefill engine index
	prioDecode   = 2 << 20 // + global decode engine index
	prioFailure  = 3 << 20 // + global instance index
	prioDispatch = 1 << 30
)

type activeReq struct {
	req       trace.Request
	remaining int
	decodeAt  float64 // decode admission time (first admission; survives requeues)
	firstAt   float64 // first-token emission time
	admitted  bool
	emitted   bool
}

// instanceState is the failure-facing side of an engine: every prefill
// or decode instance is a unit that can be down, waiting for a spare,
// or serving.
type instanceState struct {
	up      bool
	downAt  float64
	downSec float64 // accumulated instance downtime, seconds
	failRNG *mathx.RNG
	rate    float64 // instance failure rate per simulated second
	prio    int     // unique per-instance offset added to a priority band
	doneEv  sim.EventID
}

type prefillEngine struct {
	instanceState
	freeAt float64
	busy   float64
	batch  []trace.Request
}

type decodeEngine struct {
	instanceState
	active  []*activeReq
	stepEnd float64 // 0 when idle
	busy    float64
}

// poolSim is one serving pool's live state.
type poolSim struct {
	name      string
	cfg       Config
	spares    int
	prefills  []prefillEngine
	decodes   []decodeEngine
	prefillQ  []trace.Request
	decodeQ   []*activeReq
	decodeCap int

	prefillTime func([]trace.Request) float64
	decodeTime  func(int) float64

	// afrPerGPU and flopsPerGPU weight this pool's instances in
	// cluster-total reliability aggregates: failure odds scale with
	// per-GPU AFR, capacity with per-GPU compute. Within a pool both
	// are uniform, so per-pool metrics never see them.
	afrPerGPU   float64
	flopsPerGPU float64

	// Spare shelf and the FIFO of down instances waiting for one.
	// Instances are identified pool-locally: prefill i is i, decode j is
	// PrefillInstances+j.
	spareFree int
	waiting   []int

	m          Metrics
	goodTokens int
	ttfts      []float64
	tbts       []float64
	e2es       []float64
	ttftOK     int
	tbtOK      int
}

func (p *poolSim) instance(id int) *instanceState {
	if id < len(p.prefills) {
		return &p.prefills[id].instanceState
	}
	return &p.decodes[id-len(p.prefills)].instanceState
}

func (p *poolSim) instanceGPUs(id int) int {
	if id < len(p.prefills) {
		return p.cfg.PrefillGPUs
	}
	return p.cfg.DecodeGPUs
}

type clusterSim struct {
	eng   *sim.Engine
	cc    ClusterConfig
	pools []*poolSim
	h     float64

	rrNext          int
	dispatchPending bool

	failMTTR     float64
	failRecovery float64
}

func newClusterSim(cc ClusterConfig, horizon float64) (*clusterSim, error) {
	s := &clusterSim{
		eng: sim.New(cc.Failures.Seed),
		cc:  cc,
		h:   horizon,
	}
	fp := cc.Failures.params()
	scale := cc.Failures.timeScale()
	s.failMTTR = float64(fp.MTTR)
	s.failRecovery = float64(fp.RecoveryTime)

	globalInstance := 0
	for pi, pool := range cc.Pools {
		cfg := pool.Config
		opts := cfg.Opts
		maxKV := inference.MaxFeasibleBatch(cfg.GPU, cfg.Model, inference.Decode, cfg.DecodeGPUs, opts)
		if maxKV <= 0 {
			return nil, fmt.Errorf("serve: %s does not fit on %d×%s for decode",
				cfg.Model.Name, cfg.DecodeGPUs, cfg.GPU.Name)
		}
		decodeCap := cfg.MaxDecodeBatch
		if decodeCap > maxKV {
			decodeCap = maxKV
		}
		if inference.MaxFeasibleBatch(cfg.GPU, cfg.Model, inference.Prefill, cfg.PrefillGPUs, opts) < 1 {
			return nil, fmt.Errorf("serve: %s does not fit on %d×%s for prefill",
				cfg.Model.Name, cfg.PrefillGPUs, cfg.GPU.Name)
		}
		name := pool.Name
		if name == "" {
			name = cfg.GPU.Name
		}
		spares := pool.Spares
		if spares <= 0 {
			spares = cc.Failures.Spares
		}
		p := &poolSim{
			name:        name,
			cfg:         cfg,
			spares:      spares,
			spareFree:   spares,
			prefills:    make([]prefillEngine, cfg.PrefillInstances),
			decodes:     make([]decodeEngine, cfg.DecodeInstances),
			decodeCap:   decodeCap,
			prefillTime: newPrefillTimer(cfg, opts),
			decodeTime:  newDecodeTimer(cfg, opts),
			afrPerGPU:   fp.AFR(cfg.GPU),
			flopsPerGPU: float64(cfg.GPU.FLOPS),
		}
		perGPURate := fp.AFR(cfg.GPU) / float64(failure.Year) * scale
		for i := range p.prefills {
			st := &p.prefills[i].instanceState
			st.up = true
			st.prio = poolIndexBase(pi) + i
			s.initFailure(st, perGPURate*float64(cfg.PrefillGPUs), globalInstance)
			globalInstance++
		}
		for j := range p.decodes {
			st := &p.decodes[j].instanceState
			st.up = true
			st.prio = poolIndexBase(pi) + cfg.PrefillInstances + j
			s.initFailure(st, perGPURate*float64(cfg.DecodeGPUs), globalInstance)
			globalInstance++
		}
		s.pools = append(s.pools, p)
	}
	return s, nil
}

// poolIndexBase spaces engine priorities so that pool 0's engines
// order before pool 1's within each band. Validation caps instances per
// pool at maxPoolInstances, so offsets never collide across pools or
// spill into the next band.
func poolIndexBase(pool int) int { return pool * maxPoolInstances }

func (s *clusterSim) initFailure(st *instanceState, rate float64, globalIdx int) {
	if !s.cc.Failures.Enabled || rate <= 0 {
		return
	}
	st.failRNG = mathx.NewRNG(mathx.DeriveSeed(s.cc.Failures.Seed, uint64(globalIdx)))
	st.rate = rate
}

// run executes the simulation over the request stream and assembles the
// metrics.
func (s *clusterSim) run(reqs []trace.Request) ClusterMetrics {
	// Identical sort to the pre-sim loop (including tie order).
	sorted := append([]trace.Request(nil), reqs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Arrival < sorted[j].Arrival })

	// Arrival chain: one pending arrival event at a time keeps the
	// calendar small on long traces.
	idx := 0
	var arrive func(now float64)
	arrive = func(now float64) {
		s.route(sorted[idx], now)
		idx++
		if idx < len(sorted) {
			s.eng.Schedule(float64(sorted[idx].Arrival), prioArrival, arrive)
		}
		s.requestDispatch(now)
	}
	if len(sorted) > 0 {
		s.eng.Schedule(float64(sorted[0].Arrival), prioArrival, arrive)
	}

	// Failure processes.
	if s.cc.Failures.Enabled {
		for _, p := range s.pools {
			for id := 0; id < len(p.prefills)+len(p.decodes); id++ {
				s.scheduleFailure(p, id, 0)
			}
		}
	}

	s.eng.Run(s.h)
	return s.assemble()
}

// route assigns an arriving request to a pool.
func (s *clusterSim) route(r trace.Request, now float64) {
	var p *poolSim
	switch s.cc.Router {
	case JoinShortestQueue:
		best := math.Inf(1)
		for _, cand := range s.pools {
			outstanding := len(cand.prefillQ) + len(cand.decodeQ)
			live := 0
			for i := range cand.prefills {
				outstanding += len(cand.prefills[i].batch)
				if cand.prefills[i].up {
					live++
				}
			}
			for j := range cand.decodes {
				outstanding += len(cand.decodes[j].active)
				if cand.decodes[j].up {
					live++
				}
			}
			if live == 0 {
				live = 1 // a fully-down pool still queues, at worst-case load
				outstanding += 1 << 20
			}
			load := float64(outstanding) / float64(live)
			if load < best {
				best = load
				p = cand
			}
		}
	default: // RoundRobin
		p = s.pools[s.rrNext%len(s.pools)]
		s.rrNext++
	}
	p.prefillQ = append(p.prefillQ, r)
	p.m.Arrived++
}

func (s *clusterSim) requestDispatch(now float64) {
	if s.dispatchPending {
		return
	}
	s.dispatchPending = true
	s.eng.Schedule(now, prioDispatch, s.dispatch)
}

// dispatch hands freed or newly queued work to idle engines across all
// pools — the same pass the pre-sim loop ran at the end of every event
// time.
func (s *clusterSim) dispatch(now float64) {
	s.dispatchPending = false
	for _, p := range s.pools {
		s.dispatchPrefill(p, now)
		for j := range p.decodes {
			e := &p.decodes[j]
			if e.up && e.stepEnd == 0 {
				s.startDecodeStep(p, j, now)
			}
		}
	}
}

func (s *clusterSim) dispatchPrefill(p *poolSim, now float64) {
	for i := range p.prefills {
		e := &p.prefills[i]
		if !e.up {
			continue
		}
		for e.freeAt <= now && len(p.prefillQ) > 0 {
			n := p.cfg.MaxPrefillBatch
			if n > len(p.prefillQ) {
				n = len(p.prefillQ)
			}
			// Shrink the batch until its KV footprint fits. The pool was
			// validated to fit the model at the nominal prompt length,
			// but an individual oversized prompt can still exceed
			// capacity alone (n reaches 0): drop it rather than let it
			// starve at the head of the queue forever.
			dt := math.Inf(1)
			for ; n >= 1; n-- {
				if dt = p.prefillTime(p.prefillQ[:n]); !math.IsInf(dt, 1) {
					break
				}
			}
			if n < 1 {
				p.prefillQ = p.prefillQ[1:]
				p.m.Dropped++
				continue
			}
			batch := p.prefillQ[:n]
			p.prefillQ = p.prefillQ[n:]
			e.batch = append([]trace.Request(nil), batch...)
			e.freeAt = now + dt
			e.busy += dt
			e.doneEv = s.eng.Schedule(e.freeAt, prioPrefill+e.prio, func(t float64) {
				s.completePrefill(p, i, t)
			})
		}
	}
}

func (s *clusterSim) completePrefill(p *poolSim, i int, now float64) {
	e := &p.prefills[i]
	e.doneEv = 0
	for _, r := range e.batch {
		ttft := now - float64(r.Arrival)
		p.ttfts = append(p.ttfts, ttft)
		if units.Seconds(ttft) <= pickSLO(p.cfg.Opts.TTFTLimit, 1.0) {
			p.ttftOK++
		}
		p.decodeQ = append(p.decodeQ, &activeReq{req: r, remaining: r.OutputTokens})
	}
	e.batch = nil
	s.requestDispatch(now)
}

func (s *clusterSim) startDecodeStep(p *poolSim, j int, now float64) {
	e := &p.decodes[j]
	// Admit from the queue up to capacity, then step if non-empty.
	for len(e.active) < p.decodeCap && len(p.decodeQ) > 0 {
		a := p.decodeQ[0]
		p.decodeQ = p.decodeQ[1:]
		if !a.admitted {
			a.admitted = true
			a.decodeAt = now
		}
		e.active = append(e.active, a)
	}
	if len(e.active) == 0 {
		e.stepEnd = 0
		return
	}
	dt := p.decodeTime(len(e.active))
	e.stepEnd = now + dt
	e.busy += dt
	e.doneEv = s.eng.Schedule(e.stepEnd, prioDecode+e.prio, func(t float64) {
		s.completeDecodeStep(p, j, t)
	})
}

func (s *clusterSim) completeDecodeStep(p *poolSim, j int, now float64) {
	e := &p.decodes[j]
	e.doneEv = 0
	var still []*activeReq
	for _, a := range e.active {
		a.remaining--
		p.m.TokensGenerated++
		if !a.emitted {
			a.emitted = true
			a.firstAt = now
		}
		if a.remaining > 0 {
			still = append(still, a)
			continue
		}
		p.m.Completed++
		p.goodTokens += a.req.OutputTokens
		// Time-between-tokens is defined over the gaps between
		// consecutive tokens: n tokens have n-1 intervals spanning first
		// token → last token. A single-token output has no inter-token
		// gap, so its one step duration stands in for the interval.
		tbt := now - a.decodeAt
		if a.req.OutputTokens > 1 {
			tbt = (now - a.firstAt) / float64(a.req.OutputTokens-1)
		}
		p.tbts = append(p.tbts, tbt)
		if units.Seconds(tbt) <= pickSLO(p.cfg.Opts.TBTLimit, 0.050) {
			p.tbtOK++
		}
		p.e2es = append(p.e2es, now-float64(a.req.Arrival))
	}
	e.active = still
	e.stepEnd = 0
	s.requestDispatch(now)
}

// --- failure machinery -------------------------------------------------

func (s *clusterSim) scheduleFailure(p *poolSim, id int, now float64) {
	st := p.instance(id)
	if st.failRNG == nil {
		return
	}
	at := now + st.failRNG.Exponential(st.rate)
	if math.IsInf(at, 1) {
		return
	}
	s.eng.Schedule(at, prioFailure+st.prio, func(t float64) {
		s.failInstance(p, id, t)
	})
}

// failInstance downs an instance: one of its GPUs died and rigid
// deployment takes the whole instance with it (the paper's software
// blast radius). In-flight work requeues or drops per policy, the
// failed unit enters repair, and a hot spare — if one is free — brings
// the instance back after the takeover delay.
func (s *clusterSim) failInstance(p *poolSim, id int, now float64) {
	st := p.instance(id)
	if !st.up {
		return // stale event; down instances carry no failure clock
	}
	st.up = false
	st.downAt = now
	p.m.FailureEvents++
	if st.doneEv != 0 {
		s.eng.Cancel(st.doneEv)
		st.doneEv = 0
	}

	drop := s.cc.Failures.Policy == DropOnFailure
	if id < len(p.prefills) {
		e := &p.prefills[id]
		if len(e.batch) > 0 {
			// The pass died before completing: un-count its unfinished
			// busy tail and put the prompts back at the head of the
			// queue (or abandon them).
			e.busy -= e.freeAt - now
			if drop {
				p.m.DroppedOnFailure += len(e.batch)
			} else {
				p.m.Requeued += len(e.batch)
				p.prefillQ = append(append([]trace.Request(nil), e.batch...), p.prefillQ...)
			}
			e.batch = nil
		}
		e.freeAt = now
	} else {
		e := &p.decodes[id-len(p.prefills)]
		if e.stepEnd > 0 {
			e.busy -= e.stepEnd - now
			e.stepEnd = 0
		}
		if len(e.active) > 0 {
			if drop {
				p.m.DroppedOnFailure += len(e.active)
			} else {
				p.m.Requeued += len(e.active)
				p.decodeQ = append(append([]*activeReq(nil), e.active...), p.decodeQ...)
			}
			e.active = nil
		}
	}

	// The dead unit goes to the repair shop and returns to the spare
	// shelf after MTTR.
	s.eng.Schedule(now+s.failMTTR, prioFailure+st.prio, func(t float64) {
		s.repairDone(p, t)
	})
	// A free spare takes over after the recovery interruption; otherwise
	// the instance queues for the next repaired unit.
	if p.spareFree > 0 {
		p.spareFree--
		s.scheduleRecovery(p, id, now)
	} else {
		p.waiting = append(p.waiting, id)
	}
	// Requeued work must reach surviving idle engines now, not at the
	// next unrelated event.
	s.requestDispatch(now)
}

func (s *clusterSim) repairDone(p *poolSim, now float64) {
	p.spareFree++
	if len(p.waiting) > 0 {
		id := p.waiting[0]
		p.waiting = p.waiting[1:]
		p.spareFree--
		s.scheduleRecovery(p, id, now)
	}
}

func (s *clusterSim) scheduleRecovery(p *poolSim, id int, now float64) {
	st := p.instance(id)
	s.eng.Schedule(now+s.failRecovery, prioFailure+st.prio, func(t float64) {
		s.recoverInstance(p, id, t)
	})
}

func (s *clusterSim) recoverInstance(p *poolSim, id int, now float64) {
	st := p.instance(id)
	st.up = true
	st.downSec += now - st.downAt
	if id < len(p.prefills) {
		p.prefills[id].freeAt = now
	}
	s.scheduleFailure(p, id, now)
	s.requestDispatch(now)
}

// --- metrics assembly --------------------------------------------------

func (s *clusterSim) assemble() ClusterMetrics {
	h := s.h
	var cm ClusterMetrics
	var (
		allTTFT, allTBT, allE2E []float64
		ttftOK, tbtOK           int
		pBusyGPU, dBusyGPU      float64
		pGPUs, dGPUs            int
		downFLOPSec             float64
		totalFLOPs              float64
		totalRate               float64
		blastLoss               float64
		goodTokens              int
	)
	for _, p := range s.pools {
		m := &p.m
		m.TTFT = mathx.Summarize(p.ttfts)
		m.TBT = mathx.Summarize(p.tbts)
		m.E2E = mathx.Summarize(p.e2es)
		m.TTFTAttainmentCompleted = ratio(p.ttftOK, len(p.ttfts))
		m.TTFTAttainment = ratio(p.ttftOK, m.Arrived-m.Dropped)
		m.TBTAttainment = ratio(p.tbtOK, len(p.tbts))

		var poolPBusy, poolDBusy float64
		for i := range p.prefills {
			poolPBusy += p.prefills[i].busy
		}
		for j := range p.decodes {
			poolDBusy += p.decodes[j].busy
		}
		if h > 0 {
			m.PrefillUtilization = poolPBusy / (h * float64(p.cfg.PrefillInstances))
			m.DecodeUtilization = poolDBusy / (h * float64(p.cfg.DecodeInstances))
			m.Goodput = float64(p.goodTokens) / h
		}

		// Availability: GPU-weighted uptime over the horizon, counting
		// instances still down at the end. blastRate/blastLoss accumulate
		// Σ P(instance i fails next)·(capacity share lost): within a pool
		// failure odds and capacity are both proportional to GPU count.
		poolGPUs := p.cfg.TotalGPUs()
		var poolDown float64
		var poolBlast float64
		for id := 0; id < len(p.prefills)+len(p.decodes); id++ {
			st := p.instance(id)
			down := st.downSec
			if !st.up {
				down += h - st.downAt
			}
			g := float64(p.instanceGPUs(id))
			poolDown += down * g
			poolBlast += g * g
		}
		m.Availability = 1
		if h > 0 && poolGPUs > 0 {
			m.Availability = 1 - poolDown/(h*float64(poolGPUs))
		}
		if poolGPUs > 0 {
			m.BlastRadius = poolBlast / float64(poolGPUs*poolGPUs)
		}

		cm.Pools = append(cm.Pools, PoolMetrics{Name: p.name, Metrics: *m})

		// Aggregate accumulators.
		cm.Total.Arrived += m.Arrived
		cm.Total.Completed += m.Completed
		cm.Total.Dropped += m.Dropped
		cm.Total.TokensGenerated += m.TokensGenerated
		cm.Total.FailureEvents += m.FailureEvents
		cm.Total.Requeued += m.Requeued
		cm.Total.DroppedOnFailure += m.DroppedOnFailure
		allTTFT = append(allTTFT, p.ttfts...)
		allTBT = append(allTBT, p.tbts...)
		allE2E = append(allE2E, p.e2es...)
		ttftOK += p.ttftOK
		tbtOK += p.tbtOK
		// Weight busy time by the GPUs behind it so the aggregate stays
		// GPU-weighted across heterogeneous pools (within one pool the
		// two weightings coincide).
		pBusyGPU += poolPBusy * float64(p.cfg.PrefillGPUs)
		dBusyGPU += poolDBusy * float64(p.cfg.DecodeGPUs)
		pGPUs += p.cfg.PrefillInstances * p.cfg.PrefillGPUs
		dGPUs += p.cfg.DecodeInstances * p.cfg.DecodeGPUs
		// Cross-pool weights: a pool's failure odds scale with its per-GPU
		// AFR and its capacity with its per-GPU compute — one Lite GPU is
		// neither as failure-prone nor as capable as one H100.
		downFLOPSec += poolDown * p.flopsPerGPU
		totalFLOPs += float64(poolGPUs) * p.flopsPerGPU
		for id := 0; id < len(p.prefills)+len(p.decodes); id++ {
			g := float64(p.instanceGPUs(id))
			rateW := g * p.afrPerGPU
			totalRate += rateW
			blastLoss += rateW * g * p.flopsPerGPU // ÷ totalFLOPs below
		}
		goodTokens += p.goodTokens
	}

	t := &cm.Total
	t.TTFT = mathx.Summarize(allTTFT)
	t.TBT = mathx.Summarize(allTBT)
	t.E2E = mathx.Summarize(allE2E)
	t.TTFTAttainmentCompleted = ratio(ttftOK, len(allTTFT))
	t.TTFTAttainment = ratio(ttftOK, t.Arrived-t.Dropped)
	t.TBTAttainment = ratio(tbtOK, len(allTBT))
	if h > 0 {
		t.PrefillUtilization = pBusyGPU / (h * float64(pGPUs))
		t.DecodeUtilization = dBusyGPU / (h * float64(dGPUs))
		t.Goodput = float64(goodTokens) / h
	}
	t.Availability = 1
	if h > 0 && totalFLOPs > 0 {
		t.Availability = 1 - downFLOPSec/(h*totalFLOPs)
	}
	// Expected capacity fraction lost per failure: which instance fails
	// is AFR-rate-weighted, what it removes is compute-weighted. For a
	// homogeneous cluster this reduces to Σg²/G², matching the per-pool
	// formula.
	if totalRate > 0 && totalFLOPs > 0 {
		t.BlastRadius = blastLoss / totalRate / totalFLOPs
	}
	return cm
}
