package serve

import (
	"fmt"
	"math"
	"sort"

	"litegpu/internal/failure"
	"litegpu/internal/kv"
	"litegpu/internal/mathx"
	"litegpu/internal/netsim"
	"litegpu/internal/obs"
	"litegpu/internal/sim"
	"litegpu/internal/trace"
	"litegpu/internal/units"
)

// Same-timestamp event ordering, reproducing the phased scan of the
// pre-sim serve loop: all arrivals, then prefill completions in engine
// order, then decode completions in engine order, then failure
// machinery, then exactly one dispatch pass. Within each band an
// instance's offset is poolIndexBase(pool)+instance, so pool 0's
// engines order before pool 1's; ClusterConfig validation caps pools
// at maxPoolInstances instances to keep offsets inside their band.
// Colocated schedulers use the prefill band for prefill-only steps and
// the decode band for steps that emit tokens.
const (
	prioArrival  = 0
	prioPrefill  = 1 << 20 // + global prefill engine index
	prioDecode   = 2 << 20 // + global decode engine index
	prioFailure  = 3 << 20 // + global instance index
	prioTransfer = 4 << 20 // + destination instance index: fabric deliveries
	prioClient   = 5 << 20 // + pool index base: client deadlines/retries; +1 for autoscale ticks
	prioDispatch = 1 << 30
	// prioProbe orders observability probe ticks after the dispatch pass
	// at their timestamp, so probes sample settled post-dispatch state.
	// Probe events are read-only and exist only with an observer
	// attached; the engine's insertion-seq tiebreak is monotonic, so the
	// extra events never reorder simulation events at other priorities.
	prioProbe = prioDispatch + 1
)

// activeReq is one request's live state as it moves through a
// scheduler. The static policy only uses the decode-phase fields;
// colocated policies also track chunked prefill progress.
type activeReq struct {
	req       trace.Request
	remaining int
	decodeAt  float64 // decode admission time (first admission; survives requeues)
	firstAt   float64 // first-token emission time
	admitted  bool
	emitted   bool

	// promptLeft is the prompt-token count not yet prefilled; colocated
	// schedulers decrement it as chunks (or full passes) complete, and
	// record the TTFT sample exactly once when it reaches zero. Chunk
	// progress is applied only at step completion, so a failure
	// mid-chunk loses the in-flight chunk but never double-counts or
	// skips tokens across requeues.
	promptLeft int
	ttftDone   bool

	// kvSeq is the request's sequence handle in its decode engine's
	// paged KV allocator; -1 when it holds no blocks (KV off, queued,
	// preempted, or its allocator was reset by an instance failure).
	kvSeq kv.SeqID
}

// instanceState is the failure-facing side of an engine: every serving
// instance — a phase-split prefill/decode engine or a colocated one —
// is a unit that can be down, waiting for a spare, or serving.
type instanceState struct {
	up      bool
	downAt  float64
	downSec float64 // accumulated instance downtime, seconds
	failRNG *mathx.RNG
	rate    float64 // instance failure rate per simulated second
	prio    int     // unique per-instance offset added to a priority band
	doneEv  sim.EventID

	// Autoscale state (all false/zero with Config.Autoscale off): a
	// parked instance draws no dispatch; a warming one is mid cold
	// start; a draining one finishes in-flight work then parks itself.
	// parkedAt/parkedSec integrate parked time for MeanLiveInstances.
	parked    bool
	warming   bool
	draining  bool
	parkedAt  float64
	parkedSec float64

	// slow is the instance's persistent step-time stretch factor drawn
	// from Config.Straggler; 0 means nominal (straggler modeling off).
	slow float64
}

// activeChunk is the allocation unit of the activeReq freelist: live
// request state is recycled through per-pool free lists, so at steady
// state the in-flight working set cycles through a fixed arena instead
// of allocating per request.
const activeChunk = 64

// ingressBytesPerToken is the wire size of one routed prompt token
// (an int32 token id): what a multi-pool cluster's router pushes over
// the fabric to hand an arrival to its pool. Tiny next to KV bytes,
// but it charges the path latency every request must pay.
const ingressBytesPerToken = 4

// Kinds of fabric transfer a pool can have in flight.
const (
	xferKV      int8 = iota // KV-cache handoff: prefill → decode instance
	xferIngress             // routed arrival: router → pool instance
	xferSwap                // preempted KV returning to decode: swap round-trip or recompute handoff (no TTFT stamp)
)

// xferRec is one in-flight fabric transfer's serving-side state,
// recycled through a per-pool index arena (the fabric's own flow state
// lives in netsim). src/dst are pool-local instance ids for KV
// handoffs (-1 for ingress, which is not tied to an instance).
type xferRec struct {
	kind     int8
	src, dst int32
	a        *activeReq    // KV payload (nil for ingress)
	req      trace.Request // ingress payload
	tid      netsim.TransferID
	start    float64
	bytes    float64
}

// poolSim is one serving pool's live state: its scheduler, its spare
// shelf, and its metric accumulators. The scheduling discipline itself
// lives behind the scheduler interface.
type poolSim struct {
	name   string
	idx    int // position in clusterSim.pools, for handler args
	cfg    Config
	spares int
	sched  scheduler

	// afrPerGPU and flopsPerGPU weight this pool's instances in
	// cluster-total reliability aggregates: failure odds scale with
	// per-GPU AFR, capacity with per-GPU compute. Within a pool both
	// are uniform, so per-pool metrics never see them.
	afrPerGPU   float64
	flopsPerGPU float64

	// Spare shelf and the FIFO of down instances waiting for one.
	spareFree int
	waiting   []int

	// freeReqs recycles activeReq state: completed (or dropped)
	// requests return here and are reused for later arrivals.
	freeReqs []*activeReq

	// Fabric-facing state, used only when the cluster runs a fabric:
	// epBase is the pool's first endpoint index (the cluster's router
	// is endpoint 0), nodeOf maps instances to scale-up nodes, and
	// kvPerToken is the model's full KV-cache bytes per prompt token
	// at the pool's precision. In-flight transfers recycle through the
	// xfers index arena; liveXfers lists the KV handoffs in flight,
	// scanned when an instance dies.
	epBase     int
	nodeOf     []int32
	kvPerToken float64
	ingressRR  int
	xfers      []xferRec
	freeXferIx []int32
	liveXfers  []int32

	// KV-memory accumulators (all zero with Config.KV disabled).
	// kvBlockTokens caches the pool's block granularity so fabric
	// transfer sizing can round payloads up to whole blocks; kvInUse /
	// kvBlockSec / kvLastT implement the time-weighted occupancy
	// integral across the pool's allocators.
	kvBlockTokens int
	kvInUse       int
	kvPeak        int
	kvBlockSec    float64
	kvLastT       float64
	kvHits        int
	kvLookups     int
	kvPreempt     int
	kvRecompute   int

	// Closed-loop client state (all empty with Config.Client timeouts
	// off). trackArena/freeTracks recycle clientTrack slots; tracks maps
	// a live attempt's request ID to its slot (invariant: present ⇔
	// open && deadline armed); cancelled maps a timed-out request's ID
	// to its tombstone slot until a scheduler choke point reclaims the
	// in-queue copy. retrySeq hands out fresh negative IDs to
	// resubmissions so they never collide with trace IDs. eng/prioBase
	// mirror the cluster's engine and the pool's priority offset so
	// pool-level settle paths can cancel deadline events.
	eng        *sim.Engine
	prioBase   int
	clientOn   bool
	classesOn  bool
	trackArena []clientTrack
	freeTracks []int32
	tracks     map[int]int32
	cancelled  map[int]int32
	retrySeq   int
	clientRNG  *mathx.RNG
	classes    []classAcc

	// Autoscale bounds: the scheduler's scalable instance-id range and
	// the always-on floor.
	scaleOn  bool
	scaleLo  int
	scaleHi  int
	scaleMin int

	// rec is the cluster's observer, mirrored per pool so hook sites
	// reach it without chasing the clusterSim; nil means observability
	// off, and every hook is guarded on that nil.
	rec *obs.Recorder

	m          Metrics
	goodTokens int
	// usefulTokens counts goodTokens whose request completed within its
	// class's client deadline (all of them when no deadline is set).
	usefulTokens int
	ttfts        []float64
	tbts         []float64
	e2es         []float64
	xferT        []float64
	xferB        []float64
	netSec       float64
	ttftOK       int
	tbtOK        int
}

// newXfer returns a fresh transfer-record index from the pool's arena.
// Indices, not pointers, cross the event boundary (they ride the
// ScheduleCall arg word), so arena growth never invalidates anything.
//
//litegpu:hotpath
func (p *poolSim) newXfer() int32 {
	if n := len(p.freeXferIx); n > 0 {
		idx := p.freeXferIx[n-1]
		p.freeXferIx = p.freeXferIx[:n-1]
		return idx
	}
	p.xfers = append(p.xfers, xferRec{})
	return int32(len(p.xfers) - 1)
}

// freeXfer recycles a transfer record, clearing it so the arena does
// not retain the activeReq.
//
//litegpu:hotpath
func (p *poolSim) freeXfer(idx int32) {
	p.xfers[idx] = xferRec{}
	p.freeXferIx = append(p.freeXferIx, idx)
}

// dropLive removes idx from the pool's live KV-handoff list (order
// preserving; a miss is a no-op, which is how ingress records — never
// listed — share the delivery path).
//
//litegpu:hotpath
func (p *poolSim) dropLive(idx int32) {
	l := p.liveXfers
	w := 0
	for _, v := range l {
		if v != idx {
			l[w] = v
			w++
		}
	}
	p.liveXfers = l[:w]
}

// newActive returns a zeroed activeReq for r from the pool's free list,
// topping the list up with a fresh arena chunk when it runs dry.
//
//litegpu:hotpath
func (p *poolSim) newActive(r trace.Request) *activeReq {
	if len(p.freeReqs) == 0 {
		chunk := make([]activeReq, activeChunk) //litegpu:alloc-ok arena refill: one chunk per activeChunk requests, amortized-zero per the pins
		for i := range chunk {
			p.freeReqs = append(p.freeReqs, &chunk[i])
		}
	}
	a := p.freeReqs[len(p.freeReqs)-1]
	p.freeReqs = p.freeReqs[:len(p.freeReqs)-1]
	*a = activeReq{req: r, remaining: r.OutputTokens, kvSeq: -1}
	return a
}

// freeActive returns a no-longer-referenced activeReq to the free list.
// Callers guarantee no queue, batch, or engine still points at it.
//
//litegpu:hotpath
func (p *poolSim) freeActive(a *activeReq) {
	p.freeReqs = append(p.freeReqs, a)
}

// kvTokens is the token count a sequence's KV must cover right now:
// the prompt plus every token decoded so far.
//
//litegpu:hotpath
func kvTokens(a *activeReq) int {
	return a.req.PromptTokens + (a.req.OutputTokens - a.remaining)
}

// kvAccount advances the pool's time-weighted block-occupancy integral
// to now and applies a blocks-in-use delta.
//
//litegpu:hotpath
func (p *poolSim) kvAccount(now float64, delta int) {
	p.kvBlockSec += float64(p.kvInUse) * (now - p.kvLastT)
	p.kvLastT = now
	p.kvInUse += delta
	if p.kvInUse > p.kvPeak {
		p.kvPeak = p.kvInUse
	}
}

// kvAdmit claims KV blocks for a's current footprint from al, consulting
// the prefix cache when a declares a shared prefix. It reports whether
// the sequence fits; on failure nothing is claimed and the caller leaves
// a at the head of its queue. Hit/lookup statistics are recorded only
// for admissions that succeed, so a blocked head-of-line request retried
// every dispatch does not inflate the ratio.
//
//litegpu:hotpath
func (p *poolSim) kvAdmit(al *kv.Allocator, a *activeReq, now float64) bool {
	if a.kvSeq >= 0 {
		return true
	}
	var key uint64
	ptoks := 0
	if a.req.PrefixTokens > 0 && a.req.PrefixID != 0 {
		key = uint64(a.req.PrefixID)
		ptoks = a.req.PrefixTokens
	}
	before := al.InUse()
	id, hits, lookups, ok := al.Alloc(kvTokens(a), key, ptoks)
	if !ok {
		return false
	}
	p.kvHits += hits
	p.kvLookups += lookups
	a.kvSeq = id
	if d := al.InUse() - before; d != 0 {
		p.kvAccount(now, d)
	}
	if p.rec != nil {
		p.rec.Request(obs.KVAlloc, now, int32(p.idx), -1, int64(a.req.ID), float64(p.kvInUse))
	}
	return true
}

// kvGrow extends a's sequence by one token, claiming a fresh block at
// block boundaries. It reports whether the token fits.
//
//litegpu:hotpath
func (p *poolSim) kvGrow(al *kv.Allocator, a *activeReq, now float64) bool {
	before := al.InUse()
	if !al.Grow(a.kvSeq) {
		return false
	}
	if d := al.InUse() - before; d != 0 {
		p.kvAccount(now, d)
		if p.rec != nil {
			p.rec.Request(obs.KVGrow, now, int32(p.idx), -1, int64(a.req.ID), float64(p.kvInUse))
		}
	}
	return true
}

// kvRelease returns a's blocks to al (shared prefix blocks merely drop
// a reference). A handle-less request is a no-op, so callers free
// unconditionally on completion, preemption, and failure paths.
//
//litegpu:hotpath
func (p *poolSim) kvRelease(al *kv.Allocator, a *activeReq, now float64) {
	if a.kvSeq < 0 {
		return
	}
	before := al.InUse()
	al.Free(a.kvSeq)
	a.kvSeq = -1
	if d := al.InUse() - before; d != 0 {
		p.kvAccount(now, d)
	}
	if p.rec != nil {
		p.rec.Request(obs.KVRelease, now, int32(p.idx), -1, int64(a.req.ID), float64(p.kvInUse))
	}
}

// kvXferBytes sizes a KV payload of the given token count on the wire.
// With paged KV enabled whole blocks cross the fabric, so the count
// rounds up to the block granularity; with KV off it is the exact
// per-token footprint (the historical PR-5 sizing).
//
//litegpu:hotpath
func (p *poolSim) kvXferBytes(tokens int) float64 {
	if p.kvBlockTokens > 0 {
		blocks := (tokens + p.kvBlockTokens - 1) / p.kvBlockTokens
		tokens = blocks * p.kvBlockTokens
	}
	return p.kvPerToken * float64(tokens)
}

// recordTTFT appends one time-to-first-token sample and its SLO checks
// (pool-wide, and per class against the class's own SLO when class
// accounting is on).
//
//litegpu:hotpath
func (p *poolSim) recordTTFT(ttft float64, class int) {
	p.ttfts = append(p.ttfts, ttft)
	if units.Seconds(ttft) <= pickSLO(p.cfg.Opts.TTFTLimit, 1.0) {
		p.ttftOK++
	}
	if p.classesOn && units.Seconds(ttft) <= p.classSLO(class) {
		p.classAt(class).ttftOK++
	}
}

// emitToken advances one active generation by a token at `now`,
// recording completion metrics when the request finishes. It reports
// whether the request is done (and should leave the batch).
//
//litegpu:hotpath
func (p *poolSim) emitToken(a *activeReq, now float64) bool {
	a.remaining--
	p.m.TokensGenerated++
	if !a.emitted {
		a.emitted = true
		a.firstAt = now
		if p.rec != nil {
			p.rec.Request(obs.FirstToken, now, int32(p.idx), -1, int64(a.req.ID), now-float64(a.req.Arrival))
		}
	}
	if a.remaining > 0 {
		return false
	}
	p.m.Completed++
	p.goodTokens += a.req.OutputTokens
	if d := p.behavior(a.req.Class).Timeout; d <= 0 || units.Seconds(now-float64(a.req.Arrival)) <= d {
		p.usefulTokens += a.req.OutputTokens
	}
	if p.classesOn {
		acc := p.classAt(a.req.Class)
		acc.completed++
		acc.goodTokens += a.req.OutputTokens
	}
	p.clientSettle(a.req.ID)
	// Time-between-tokens is defined over the gaps between
	// consecutive tokens: n tokens have n-1 intervals spanning first
	// token → last token. A single-token output has no inter-token
	// gap, so its one step duration stands in for the interval.
	tbt := now - a.decodeAt
	if a.req.OutputTokens > 1 {
		tbt = (now - a.firstAt) / float64(a.req.OutputTokens-1)
	}
	p.tbts = append(p.tbts, tbt)
	if units.Seconds(tbt) <= pickSLO(p.cfg.Opts.TBTLimit, 0.050) {
		p.tbtOK++
	}
	p.e2es = append(p.e2es, now-float64(a.req.Arrival))
	if p.rec != nil {
		p.rec.Request(obs.Complete, now, int32(p.idx), -1, int64(a.req.ID), now-float64(a.req.Arrival))
	}
	return true
}

// RequestSource yields a request stream in nondecreasing arrival order,
// one request at a time. trace.Stream implements it for synthetic
// workloads generated on demand; materialized []trace.Request slices
// are adapted internally. The simulator holds only the in-flight
// working set, so a million-request horizon needs O(in-flight) memory,
// not O(trace).
type RequestSource interface {
	Next() (trace.Request, bool)
}

// sliceSource adapts a sorted materialized trace to RequestSource.
type sliceSource struct {
	reqs []trace.Request
	i    int
}

func (s *sliceSource) Next() (trace.Request, bool) {
	if s.i >= len(s.reqs) {
		return trace.Request{}, false
	}
	r := s.reqs[s.i]
	s.i++
	return r, true
}

type clusterSim struct {
	eng   *sim.Engine
	cc    ClusterConfig
	pools []*poolSim
	h     float64

	rrNext          int
	dispatchPending bool

	// Arrival chain state: the one pending arrival pulled from src but
	// not yet fired. Handlers are bound once here so the hot path
	// schedules without allocating closures; per-event context rides in
	// the ScheduleCall arg word (pool index << 32 | instance id).
	src     RequestSource
	nextReq trace.Request

	arriveH   sim.Handler
	dispatchH sim.Handler
	failH     sim.Handler
	repairH   sim.Handler
	recoverH  sim.Handler
	xferH     sim.Handler
	deadlineH sim.Handler
	retryH    sim.Handler
	scaleH    sim.Handler
	warmH     sim.Handler
	probeH    sim.Handler

	// rec is the attached observer (nil = observability off).
	rec *obs.Recorder

	failMTTR     float64
	failRecovery float64

	// net/fab are the resolved cluster fabric; fab is nil when the
	// network is off, and every fabric-charging site gates on that.
	net NetworkConfig
	fab *netsim.Fabric

	// snapOnFail arms the planner's fork hook: the first failure event
	// to fire captures the whole simulation state into snap (see
	// snapshot.go) before any spare-shelf decision is made. Everything
	// before that moment is byte-identical at any spare count — the
	// spare shelf is only ever read inside failInstance — so the
	// availability leg can fork from the snapshot instead of replaying
	// the run from t=0.
	snapOnFail bool
	snap       *clusterSnap
}

// packArg encodes a (pool, instance) pair into a ScheduleCall arg word.
func packArg(pool, id int) uint64 { return uint64(pool)<<32 | uint64(uint32(id)) }

func unpackArg(arg uint64) (pool, id int) { return int(arg >> 32), int(uint32(arg)) }

func newClusterSim(cc ClusterConfig, horizon float64) (*clusterSim, error) {
	return newClusterSimAt(cc, horizon, 0, 0)
}

// newClusterSimAt builds a simulation of cc.Pools that behaves as if
// those pools sat at global pool index poolBase (and global instance
// index instBase) of a larger cluster: event priorities and
// per-instance failure seeds use the global indices, so a shard
// simulating pools [poolBase, poolBase+len(Pools)) evolves its pools
// byte-identically to the sequential whole-cluster run. The sequential
// path is the poolBase = instBase = 0 case.
func newClusterSimAt(cc ClusterConfig, horizon float64, poolBase, instBase int) (*clusterSim, error) {
	s := &clusterSim{
		eng: sim.New(cc.Failures.Seed),
		cc:  cc,
		h:   horizon,
	}
	s.arriveH = s.arrive
	s.dispatchH = s.dispatch
	s.failH = s.onFail
	s.repairH = s.onRepair
	s.recoverH = s.onRecover
	s.xferH = s.onXfer
	s.deadlineH = s.onDeadline
	s.retryH = s.onRetry
	s.scaleH = s.onScale
	s.warmH = s.onWarm
	s.probeH = s.onProbe
	s.rec = cc.Observer
	fp := cc.Failures.params()
	scale := cc.Failures.timeScale()
	s.failMTTR = float64(fp.MTTR)
	s.failRecovery = float64(fp.RecoveryTime)

	globalInstance := instBase
	for pi, pool := range cc.Pools {
		cfg := pool.Config
		name := pool.Name
		if name == "" {
			name = cfg.GPU.Name
		}
		spares := pool.Spares
		if spares <= 0 {
			spares = cc.Failures.Spares
		}
		p := &poolSim{
			name:        name,
			idx:         pi,
			cfg:         cfg,
			spares:      spares,
			spareFree:   spares,
			afrPerGPU:   fp.AFR(cfg.GPU),
			flopsPerGPU: float64(cfg.GPU.FLOPS),
		}
		if cfg.KV.Enabled() {
			p.kvBlockTokens = cfg.KV.BlockTokensOrDefault()
		}
		p.eng = s.eng
		p.prioBase = poolIndexBase(poolBase + pi)
		p.rec = s.rec
		if s.rec != nil {
			s.rec.SetPoolName(pi, name)
		}
		if cfg.Client.enabled() {
			p.clientOn = true
			p.tracks = make(map[int]int32)
			p.cancelled = make(map[int]int32)
			p.clientRNG = mathx.NewRNG(mathx.DeriveSeed(cfg.Client.Seed, uint64(poolBase+pi)))
		}
		p.classesOn = len(cfg.Client.Classes) > 0 || cfg.Admission.Policy != AdmitAll
		var err error
		if cfg.Scheduler.Colocated() {
			p.sched, err = newColocSched(s, p)
		} else {
			p.sched, err = newStaticSched(s, p)
		}
		if err != nil {
			return nil, err
		}
		perGPURate := fp.AFR(cfg.GPU) / float64(failure.Year) * scale
		for id := 0; id < p.sched.numInstances(); id++ {
			st := p.sched.state(id)
			st.up = true
			st.prio = poolIndexBase(poolBase+pi) + id
			if cfg.Straggler.Enabled() {
				// One persistent draw per global instance index, so shards
				// and the sequential run see identical slow sets.
				st.slow = cfg.Straggler.Jitter.Draw(
					mathx.NewRNG(mathx.DeriveSeed(cfg.Straggler.Seed, uint64(globalInstance))))
			}
			s.initFailure(st, perGPURate*float64(p.sched.gpus(id)), globalInstance)
			globalInstance++
		}
		if cfg.Autoscale.Enabled {
			lo, hi := p.sched.scalable()
			p.scaleOn = true
			p.scaleLo, p.scaleHi = lo, hi
			p.scaleMin = cfg.Autoscale.minInstances()
			if p.scaleMin > hi-lo {
				p.scaleMin = hi - lo
			}
			// Instances above the floor start parked; the control loop
			// unparks them under load.
			for id := lo + p.scaleMin; id < hi; id++ {
				st := p.sched.state(id)
				st.parked = true
				st.parkedAt = 0
			}
		}
		s.pools = append(s.pools, p)
	}
	if err := s.buildFabric(); err != nil {
		return nil, err
	}
	return s, nil
}

// buildFabric constructs the cluster's netsim fabric when a network
// config is enabled: one endpoint per instance plus endpoint 0 for the
// router, instances packed into scale-up nodes in global order, and
// path latency taken from the configured topology built at the
// cluster's full GPU count (the physical fabric scale) times the
// stress multiplier.
func (s *clusterSim) buildFabric() error {
	s.net = s.cc.resolvedNetwork()
	if !s.net.Enabled() {
		return nil
	}
	ports := []float64{0} // router endpoint, sized below
	nodeGPUs := s.net.nodeGPUs()
	nodeID, nodeUsed := 0, 0
	totalGPUs := 0
	var routerBW float64
	for _, p := range s.pools {
		p.epBase = len(ports)
		n := p.sched.numInstances()
		p.nodeOf = make([]int32, n)
		for id := 0; id < n; id++ {
			g := p.sched.gpus(id)
			if nodeUsed > 0 && nodeUsed+g > nodeGPUs {
				nodeID, nodeUsed = nodeID+1, 0
			}
			p.nodeOf[id] = int32(nodeID)
			nodeUsed += g
			if nodeUsed >= nodeGPUs {
				nodeID, nodeUsed = nodeID+1, 0
			}
			bw := s.net.instancePortBW(p.cfg.GPU, g)
			ports = append(ports, bw)
			routerBW += bw
		}
		p.kvPerToken = float64(p.cfg.Model.KVBytesPerToken(p.cfg.Opts.EffectivePrecision()))
		totalGPUs += p.sched.totalGPUs()
	}
	// The router injects token ids, not KV caches; give it the
	// aggregate attachment so it is never the modeled bottleneck.
	ports[0] = routerBW
	topo := s.net.Topology(totalGPUs)
	params := netsim.Params{
		Ports:       ports,
		PathLatency: float64(topo.PathLatency()) * s.net.latencyScale(),
		Circuit:     s.net.circuit(),
	}
	if params.Circuit {
		// Reconfiguration is a switching-device property, deliberately
		// NOT scaled by LatencyScale — the stress knob models path and
		// software-stack latency, which is exactly what circuit
		// switching's low-latency story is judged against.
		params.ReconfigTime = float64(topo.Switch.ReconfigTime)
	}
	fab, err := netsim.New(s.eng, params)
	if err != nil {
		return err
	}
	s.fab = fab
	return nil
}

// onXfer fires one fabric delivery: record the transfer sample, then
// hand the payload to its pool — a KV handoff joins the decode queue
// (this is the moment the request's first token can ship, so TTFT is
// stamped here), a routed arrival joins the pool's admission queue.
//
//litegpu:hotpath
func (s *clusterSim) onXfer(now float64, arg uint64) {
	pi, idx := unpackArg(arg)
	p := s.pools[pi]
	rec := &p.xfers[idx]
	dur := now - rec.start
	p.xferT = append(p.xferT, dur)
	p.xferB = append(p.xferB, rec.bytes)
	p.netSec += dur
	p.m.NetTransfers++
	if p.rec != nil {
		id := int64(rec.req.ID)
		if rec.a != nil {
			id = int64(rec.a.req.ID)
		}
		p.rec.Request(obs.XferDeliver, now, int32(p.idx), rec.dst, id, dur)
	}
	switch rec.kind {
	case xferKV:
		a := rec.a
		if p.clientOn && p.isCancelled(a.req.ID) {
			// The client timed out while the KV handoff was in flight
			// and the transfer beat the eager cancel scan (or the
			// tombstone was laid after dispatch): drop the delivery.
			p.settleCancelled(a.req.ID, a)
			break
		}
		p.recordTTFT(now-float64(a.req.Arrival), a.req.Class)
		p.sched.deliverKV(a, now)
	case xferSwap:
		// A preempted sequence's KV is back: no TTFT stamp (its first
		// token shipped before preemption), straight to the decode path.
		p.sched.swapReturn(rec.a, now)
	default:
		if p.clientOn && p.isCancelled(rec.req.ID) {
			// Routed arrival whose client gave up mid-ingress: the copy
			// rode the transfer by value, so the tombstone settles here.
			p.settleCancelled(rec.req.ID, nil)
			break
		}
		if p.rec != nil {
			p.rec.Request(obs.Enqueue, now, int32(p.idx), -1, int64(rec.req.ID), 0)
		}
		p.sched.enqueue(rec.req)
	}
	p.dropLive(int32(idx))
	p.freeXfer(int32(idx))
	s.requestDispatch(now)
}

// startIngress charges a routed arrival's trip from the router to its
// pool: prompt token ids over the fabric to the pool's next instance
// endpoint (round-robin — the target only shapes contention; delivery
// lands in the pool's shared queue).
//
//litegpu:hotpath
func (s *clusterSim) startIngress(p *poolSim, r trace.Request, now float64) {
	n := p.sched.numInstances()
	inst := p.ingressRR % n
	p.ingressRR++
	idx := p.newXfer()
	rec := &p.xfers[idx]
	*rec = xferRec{
		kind: xferIngress, src: -1, dst: -1,
		req: r, start: now,
		bytes: float64(r.PromptTokens) * ingressBytesPerToken,
	}
	rec.tid = s.fab.Start(0, p.epBase+inst, rec.bytes,
		prioTransfer+p.sched.state(inst).prio, s.xferH, packArg(p.idx, int(idx)))
	if p.rec != nil {
		p.rec.Request(obs.XferStart, now, int32(p.idx), -1, int64(r.ID), rec.bytes)
	}
}

// poolIndexBase spaces engine priorities so that pool 0's engines
// order before pool 1's within each band. Validation caps instances per
// pool at maxPoolInstances, so offsets never collide across pools or
// spill into the next band.
func poolIndexBase(pool int) int { return pool * maxPoolInstances }

func (s *clusterSim) initFailure(st *instanceState, rate float64, globalIdx int) {
	if !s.cc.Failures.Enabled || rate <= 0 {
		return
	}
	st.failRNG = mathx.NewRNG(mathx.DeriveSeed(s.cc.Failures.Seed, uint64(globalIdx)))
	st.rate = rate
}

// sortedByArrival reports whether the trace is already in nondecreasing
// arrival order — true for every stream trace.Generate produces, which
// lets run share the caller's slice instead of copying and re-sorting
// it per simulation.
func sortedByArrival(reqs []trace.Request) bool {
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Arrival < reqs[i-1].Arrival {
			return false
		}
	}
	return true
}

// run executes the simulation over a materialized request stream and
// assembles the metrics. The trace is shared, not copied: an already
// sorted slice (the common case — generators emit arrivals in time
// order) is used as-is across all pools and, in the planner, across
// every candidate simulation.
func (s *clusterSim) run(reqs []trace.Request) ClusterMetrics {
	sorted := reqs
	if !sortedByArrival(reqs) {
		// Identical sort to the pre-sim loop (including tie order).
		sorted = append([]trace.Request(nil), reqs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Arrival < sorted[j].Arrival })
	}
	// The trace length is known up front: size each pool's latency
	// sample buffers once so recording never reallocates mid-run.
	if len(s.pools) == 1 {
		p := s.pools[0]
		n := len(sorted)
		p.ttfts = make([]float64, 0, n)
		p.tbts = make([]float64, 0, n)
		p.e2es = make([]float64, 0, n)
	}
	return s.runFrom(&sliceSource{reqs: sorted})
}

// runFrom executes the simulation pulling arrivals from src on demand
// and assembles the metrics. Only the in-flight working set is held in
// memory.
func (s *clusterSim) runFrom(src RequestSource) ClusterMetrics {
	s.start(src)
	s.eng.Run(s.h)
	return s.assemble()
}

// start primes the calendar: the first arrival pulled from src and
// every instance's first failure. A nil src means this simulation
// receives no arrivals of its own — the sharded runner's JSQ
// controller injects arrivals from outside, and a shard only books its
// failure processes here.
func (s *clusterSim) start(src RequestSource) {
	s.src = src
	if src != nil {
		if r, ok := src.Next(); ok {
			s.scheduleArrival(r)
		}
	}

	// Failure processes.
	if s.cc.Failures.Enabled {
		for _, p := range s.pools {
			for id := 0; id < p.sched.numInstances(); id++ {
				s.scheduleFailure(p, id, 0)
			}
		}
	}

	// Autoscale control loops: one periodic tick per scaling pool.
	// Booked here rather than at construction so shards (which call
	// start too) run their own pools' loops.
	for _, p := range s.pools {
		if p.scaleOn {
			s.eng.ScheduleCall(p.cfg.Autoscale.interval(),
				prioClient+p.prioBase+1, s.scaleH, packArg(p.idx, 0))
		}
	}

	// Observability probe ticks: one cluster-wide periodic sampler,
	// read-only, firing after the dispatch pass at its timestamp.
	if s.rec != nil {
		if iv := s.rec.ProbeInterval(); iv > 0 && iv <= s.h {
			s.eng.ScheduleCall(iv, prioProbe, s.probeH, 0)
		}
	}
}

// onProbe samples every pool's instantaneous state plus the cumulative
// counters into the observer, then re-arms itself. It is read-only:
// no RNG draws, no simulation state mutated.
func (s *clusterSim) onProbe(now float64, _ uint64) {
	inFlight := 0
	if s.fab != nil {
		inFlight = s.fab.InFlight()
	}
	fired := s.eng.EventsFired()
	for _, p := range s.pools {
		live, parked := 0, 0
		for id := 0; id < p.sched.numInstances(); id++ {
			st := p.sched.state(id)
			switch {
			case st.parked:
				parked++
			case st.up:
				live++
			}
		}
		pBusy, dBusy := p.sched.busy()
		s.rec.Probe(obs.ProbeSample{
			T: now, Pool: int32(p.idx),
			Queue: p.sched.outstanding(), Live: live, Parked: parked,
			KVBlocks: p.kvInUse, NetInFlight: inFlight,
			PrefillBusy: pBusy, DecodeBusy: dBusy,
			Arrived: p.m.Arrived, Completed: p.m.Completed,
			Shed: p.m.Shed, Retries: p.m.ClientRetries,
			Abandoned: p.m.Abandoned, Timeouts: p.m.ClientTimeouts,
			Tokens: p.m.TokensGenerated, Events: fired,
		})
	}
	if next := now + s.rec.ProbeInterval(); next <= s.h {
		s.eng.ScheduleCall(next, prioProbe, s.probeH, 0)
	}
}

// scheduleArrival books the next pulled request's arrival event,
// rejecting a source that violates the RequestSource ordering contract
// with a diagnosable error instead of a bare engine panic.
//
//litegpu:hotpath
func (s *clusterSim) scheduleArrival(r trace.Request) {
	at := float64(r.Arrival)
	if at < s.eng.Now() || math.IsNaN(at) {
		panic(fmt.Sprintf(
			"serve: RequestSource yielded request %d arriving at %v after the clock reached %v; sources must yield nondecreasing, finite arrival times",
			r.ID, r.Arrival, s.eng.Now()))
	}
	s.nextReq = r
	s.eng.ScheduleCall(at, prioArrival, s.arriveH, 0)
}

// arrive fires one arrival: route it, pull the next request from the
// source, and keep exactly one pending arrival event in the calendar so
// long traces never materialize there.
//
//litegpu:hotpath
func (s *clusterSim) arrive(now float64, _ uint64) {
	s.route(s.nextReq, now)
	if r, ok := s.src.Next(); ok {
		s.scheduleArrival(r)
	}
	s.requestDispatch(now)
}

// jsqPick returns the join-shortest-queue pool index: least outstanding
// work per live (up, unparked) instance. Shared by the sequential
// router and the sharded runner's JSQ controller, which replicates the
// same decision over its global pool view.
//
//litegpu:hotpath
func jsqPick(pools []*poolSim) int {
	best := math.Inf(1)
	pick := 0
	for i, cand := range pools {
		outstanding := cand.sched.outstanding()
		live := 0
		for id := 0; id < cand.sched.numInstances(); id++ {
			st := cand.sched.state(id)
			if st.up && !st.parked {
				live++
			}
		}
		if live == 0 {
			live = 1 // a fully-down pool still queues, at worst-case load
			outstanding += 1 << 20
		}
		load := float64(outstanding) / float64(live)
		if load < best {
			best = load
			pick = i
		}
	}
	return pick
}

// route assigns an arriving request to a pool.
//
//litegpu:hotpath
func (s *clusterSim) route(r trace.Request, now float64) {
	var p *poolSim
	switch s.cc.Router {
	case JoinShortestQueue:
		p = s.pools[jsqPick(s.pools)]
	default: // RoundRobin
		p = s.pools[s.rrNext%len(s.pools)]
		s.rrNext++
	}
	s.acceptArrival(p, r, now)
}

// acceptArrival runs a routed request through the pool's frontend:
// arrival accounting, the admission gate, and the client loop, then
// queues it (directly, or over the fabric in multi-pool clusters). The
// sharded runner's JSQ controller calls it on the owning shard, so
// admission and client behavior are identical under sharding.
//
//litegpu:hotpath
func (s *clusterSim) acceptArrival(p *poolSim, r trace.Request, now float64) {
	p.m.Arrived++
	if p.classesOn {
		p.classAt(r.Class).arrived++
	}
	if p.rec != nil {
		p.rec.Request(obs.Arrival, now, int32(p.idx), -1, int64(r.ID), float64(r.PromptTokens))
	}
	if p.cfg.Admission.Policy != AdmitAll && p.shouldShed(r) {
		p.m.Shed++
		if p.classesOn {
			p.classAt(r.Class).shed++
		}
		if p.rec != nil {
			p.rec.Request(obs.Shed, now, int32(p.idx), -1, int64(r.ID), float64(r.Class))
		}
		// A shed closed-loop client behaves like a timed-out one: it
		// retries with backoff while it has budget, then gives up for
		// good. Open-loop classes (no timeout) just vanish, as before.
		if p.clientOn {
			b := p.behavior(r.Class)
			if b.Timeout > 0 && b.Retries > 0 {
				idx := p.newTrack()
				tr := &p.trackArena[idx]
				*tr = clientTrack{id: r.ID, class: int32(r.Class), open: true, req: r}
				s.scheduleRetry(p, int(idx), now, b)
				return
			}
			if b.Timeout > 0 {
				p.m.Abandoned++
				if p.classesOn {
					p.classAt(r.Class).abandoned++
				}
				if p.rec != nil {
					p.rec.Request(obs.Abandon, now, int32(p.idx), -1, int64(r.ID), 0)
				}
			}
		}
		return
	}
	if p.clientOn {
		s.openTrack(p, r, 0, now)
	}
	// With a fabric and more than one pool, the router's handoff to
	// the pool crosses the network: the prompt rides an ingress
	// transfer and joins the pool's queue on delivery. A single pool
	// is fed directly (its frontend is assumed adjacent).
	if s.fab != nil && len(s.pools) > 1 {
		s.startIngress(p, r, now)
		return
	}
	if p.rec != nil {
		p.rec.Request(obs.Enqueue, now, int32(p.idx), -1, int64(r.ID), 0)
	}
	p.sched.enqueue(r)
}

//litegpu:hotpath
func (s *clusterSim) requestDispatch(now float64) {
	if s.dispatchPending {
		return
	}
	s.dispatchPending = true
	s.eng.ScheduleCall(now, prioDispatch, s.dispatchH, 0)
}

// dispatch hands freed or newly queued work to idle engines across all
// pools — the same pass the pre-sim loop ran at the end of every event
// time.
//
//litegpu:hotpath
func (s *clusterSim) dispatch(now float64, _ uint64) {
	s.dispatchPending = false
	for _, p := range s.pools {
		p.sched.dispatch(now)
	}
}

// --- failure machinery -------------------------------------------------

func (s *clusterSim) scheduleFailure(p *poolSim, id int, now float64) {
	st := p.sched.state(id)
	if st.failRNG == nil {
		return
	}
	at := now + st.failRNG.Exponential(st.rate)
	if math.IsInf(at, 1) {
		return
	}
	s.eng.ScheduleCall(at, prioFailure+st.prio, s.failH, packArg(p.idx, id))
}

func (s *clusterSim) onFail(now float64, arg uint64) {
	pi, id := unpackArg(arg)
	s.failInstance(s.pools[pi], id, now)
}

func (s *clusterSim) onRepair(now float64, arg uint64) {
	pi, _ := unpackArg(arg)
	s.repairDone(s.pools[pi], now)
}

func (s *clusterSim) onRecover(now float64, arg uint64) {
	pi, id := unpackArg(arg)
	s.recoverInstance(s.pools[pi], id, now)
}

// failInstance downs an instance: one of its GPUs died and rigid
// deployment takes the whole instance with it (the paper's software
// blast radius). In-flight work requeues or drops per the policy, the
// failed unit enters repair, and a hot spare — if one is free — brings
// the instance back after the takeover delay.
//
//litegpu:hotpath
func (s *clusterSim) failInstance(p *poolSim, id int, now float64) {
	if s.snapOnFail && s.snap == nil {
		// First failure: freeze the whole simulation before any
		// spare-shelf state is consulted. The engine has already popped
		// this event, so the snapshot pairs the post-pop calendar with
		// the (pool, instance, time) needed to re-run this handler on
		// restore. See snapshot.go.
		s.takeSnapshot(p, id, now)
	}
	st := p.sched.state(id)
	if !st.up {
		return // stale event; down instances carry no failure clock
	}
	st.up = false
	st.downAt = now
	p.m.FailureEvents++
	if p.rec != nil {
		p.rec.Cluster(obs.InstanceDown, now, int32(p.idx), int32(id), float64(p.sched.gpus(id)))
	}
	if st.doneEv != 0 {
		s.eng.Cancel(st.doneEv)
		st.doneEv = 0
	}

	p.sched.fail(id, now, s.cc.Failures.Policy == DropOnFailure)

	// The dead unit goes to the repair shop and returns to the spare
	// shelf after MTTR.
	s.eng.ScheduleCall(now+s.failMTTR, prioFailure+st.prio, s.repairH, packArg(p.idx, id))
	// A free spare takes over after the recovery interruption; otherwise
	// the instance queues for the next repaired unit.
	if p.spareFree > 0 {
		p.spareFree--
		s.scheduleRecovery(p, id, now)
	} else {
		p.waiting = append(p.waiting, id)
	}
	// Requeued work must reach surviving idle engines now, not at the
	// next unrelated event.
	s.requestDispatch(now)
}

//litegpu:hotpath
func (s *clusterSim) repairDone(p *poolSim, now float64) {
	p.spareFree++
	if len(p.waiting) > 0 {
		id := p.waiting[0]
		p.waiting = p.waiting[1:]
		p.spareFree--
		s.scheduleRecovery(p, id, now)
	}
}

//litegpu:hotpath
func (s *clusterSim) scheduleRecovery(p *poolSim, id int, now float64) {
	st := p.sched.state(id)
	s.eng.ScheduleCall(now+s.failRecovery, prioFailure+st.prio, s.recoverH, packArg(p.idx, id))
}

//litegpu:hotpath
func (s *clusterSim) recoverInstance(p *poolSim, id int, now float64) {
	st := p.sched.state(id)
	st.up = true
	st.downSec += now - st.downAt
	if p.rec != nil {
		p.rec.Cluster(obs.InstanceUp, now, int32(p.idx), int32(id), now-st.downAt)
	}
	p.sched.recovered(id, now)
	s.scheduleFailure(p, id, now)
	s.requestDispatch(now)
}

// --- metrics assembly --------------------------------------------------

func (s *clusterSim) assemble() ClusterMetrics {
	return assemblePools(s.pools, s.h)
}

// assemblePools folds per-pool accumulators into ClusterMetrics. It is
// a free function over the pool list so the sharded runner can merge
// the pools of every shard — ordered by global pool index — through
// the exact accumulation sequence the sequential path uses; float
// summation order is part of the byte-identity contract.
func assemblePools(pools []*poolSim, h float64) ClusterMetrics {
	var cm ClusterMetrics
	var (
		allTTFT, allTBT, allE2E []float64
		allXferT, allXferB      []float64
		ttftOK, tbtOK           int
		pBusyGPU, dBusyGPU      float64
		pGPUs, dGPUs            int
		downFLOPSec             float64
		totalFLOPs              float64
		totalRate               float64
		blastLoss               float64
		goodTokens              int
		usefulTokens            int
		netSec, e2eSec          float64
		kvHits, kvLookups       int
		classTotals             []classAcc
	)
	if len(pools) > 1 {
		// Preallocate the cross-pool sample unions; the single-pool case
		// below aliases the pool's samples instead.
		var nt, nb, ne int
		for _, p := range pools {
			nt += len(p.ttfts)
			nb += len(p.tbts)
			ne += len(p.e2es)
		}
		allTTFT = make([]float64, 0, nt)
		allTBT = make([]float64, 0, nb)
		allE2E = make([]float64, 0, ne)
	}
	for _, p := range pools {
		m := &p.m
		m.TTFT = mathx.Summarize(p.ttfts)
		m.TBT = mathx.Summarize(p.tbts)
		m.E2E = mathx.Summarize(p.e2es)
		m.TTFTAttainmentCompleted = ratio(p.ttftOK, len(p.ttfts))
		m.TTFTAttainment = ratio(p.ttftOK, m.Arrived-m.Dropped)
		m.TBTAttainment = ratio(p.tbtOK, len(p.tbts))
		m.TransferBytes = mathx.Summarize(p.xferB)
		m.TransferTime = mathx.Summarize(p.xferT)
		var poolE2E float64
		for _, v := range p.e2es {
			poolE2E += v
		}
		if p.netSec > 0 && poolE2E > 0 {
			m.NetworkBoundFraction = p.netSec / poolE2E
		}
		// KV occupancy: close the time-weighted integral at the horizon
		// without mutating the accumulators — the planner's fork path
		// assembles the same pools twice.
		m.KVPreemptions = p.kvPreempt
		m.KVRecomputeTokens = p.kvRecompute
		m.KVPeakBlocks = p.kvPeak
		m.KVCacheHitRate = ratio(p.kvHits, p.kvLookups)
		if h > 0 {
			m.KVMeanBlocks = (p.kvBlockSec + float64(p.kvInUse)*(h-p.kvLastT)) / h
		}

		shape := p.sched.shape()
		poolPBusy, poolDBusy := p.sched.busy()
		if h > 0 {
			m.PrefillUtilization = poolPBusy / (h * float64(shape.prefillInstances))
			m.DecodeUtilization = poolDBusy / (h * float64(shape.decodeInstances))
			m.Goodput = float64(p.goodTokens) / h
			m.UsefulGoodput = float64(p.usefulTokens) / h
		}

		// Closed-loop / autoscale reporting. Utilization denominators
		// above deliberately stay provisioned-fleet based — parked
		// capacity is still paid for; MeanLiveInstances reports what was
		// actually serving. Classes is rebuilt from the raw accumulators
		// on every assemble (the planner's fork path assembles twice).
		if p.scaleOn && h > 0 {
			parked := 0.0
			for id := p.scaleLo; id < p.scaleHi; id++ {
				st := p.sched.state(id)
				parked += st.parkedSec
				if st.parked {
					parked += h - st.parkedAt
				}
			}
			m.MeanLiveInstances = float64(p.sched.numInstances()) - parked/h
		}
		if p.classesOn {
			m.Classes = buildClassMetrics(p, h)
		}

		// Availability: GPU-weighted uptime over the horizon, counting
		// instances still down at the end. blastRate/blastLoss accumulate
		// Σ P(instance i fails next)·(capacity share lost): within a pool
		// failure odds and capacity are both proportional to GPU count.
		poolGPUs := p.sched.totalGPUs()
		var poolDown float64
		var poolBlast float64
		for id := 0; id < p.sched.numInstances(); id++ {
			st := p.sched.state(id)
			down := st.downSec
			if !st.up {
				down += h - st.downAt
			}
			g := float64(p.sched.gpus(id))
			poolDown += down * g
			poolBlast += g * g
		}
		m.Availability = 1
		if h > 0 && poolGPUs > 0 {
			m.Availability = 1 - poolDown/(h*float64(poolGPUs))
		}
		if poolGPUs > 0 {
			m.BlastRadius = poolBlast / float64(poolGPUs*poolGPUs)
		}

		cm.Pools = append(cm.Pools, PoolMetrics{Name: p.name, Metrics: *m})

		// Aggregate accumulators.
		cm.Total.Arrived += m.Arrived
		cm.Total.Completed += m.Completed
		cm.Total.Dropped += m.Dropped
		cm.Total.TokensGenerated += m.TokensGenerated
		cm.Total.FailureEvents += m.FailureEvents
		cm.Total.Requeued += m.Requeued
		cm.Total.DroppedOnFailure += m.DroppedOnFailure
		cm.Total.NetTransfers += m.NetTransfers
		cm.Total.KVPreemptions += m.KVPreemptions
		cm.Total.KVRecomputeTokens += m.KVRecomputeTokens
		cm.Total.KVPeakBlocks += m.KVPeakBlocks
		cm.Total.KVMeanBlocks += m.KVMeanBlocks
		cm.Total.ClientTimeouts += m.ClientTimeouts
		cm.Total.ClientRetries += m.ClientRetries
		cm.Total.Abandoned += m.Abandoned
		cm.Total.Shed += m.Shed
		cm.Total.ScaleUps += m.ScaleUps
		cm.Total.ScaleDowns += m.ScaleDowns
		cm.Total.MeanLiveInstances += m.MeanLiveInstances
		for ci := range p.classes {
			for len(classTotals) <= ci {
				classTotals = append(classTotals, classAcc{})
			}
			src, dst := &p.classes[ci], &classTotals[ci]
			dst.arrived += src.arrived
			dst.completed += src.completed
			dst.shed += src.shed
			dst.timedOut += src.timedOut
			dst.retries += src.retries
			dst.abandoned += src.abandoned
			dst.ttftOK += src.ttftOK
			dst.goodTokens += src.goodTokens
		}
		kvHits += p.kvHits
		kvLookups += p.kvLookups
		netSec += p.netSec
		e2eSec += poolE2E
		if len(pools) == 1 {
			allTTFT, allTBT, allE2E = p.ttfts, p.tbts, p.e2es
		} else {
			allTTFT = append(allTTFT, p.ttfts...)
			allTBT = append(allTBT, p.tbts...)
			allE2E = append(allE2E, p.e2es...)
			allXferT = append(allXferT, p.xferT...)
			allXferB = append(allXferB, p.xferB...)
		}
		ttftOK += p.ttftOK
		tbtOK += p.tbtOK
		// Weight busy time by the GPUs behind it so the aggregate stays
		// GPU-weighted across heterogeneous pools (within one pool the
		// two weightings coincide).
		pBusyGPU += poolPBusy * float64(shape.prefillGPUs)
		dBusyGPU += poolDBusy * float64(shape.decodeGPUs)
		pGPUs += shape.prefillInstances * shape.prefillGPUs
		dGPUs += shape.decodeInstances * shape.decodeGPUs
		// Cross-pool weights: a pool's failure odds scale with its per-GPU
		// AFR and its capacity with its per-GPU compute — one Lite GPU is
		// neither as failure-prone nor as capable as one H100.
		downFLOPSec += poolDown * p.flopsPerGPU
		totalFLOPs += float64(poolGPUs) * p.flopsPerGPU
		for id := 0; id < p.sched.numInstances(); id++ {
			g := float64(p.sched.gpus(id))
			rateW := g * p.afrPerGPU
			totalRate += rateW
			blastLoss += rateW * g * p.flopsPerGPU // ÷ totalFLOPs below
		}
		goodTokens += p.goodTokens
		usefulTokens += p.usefulTokens
	}

	t := &cm.Total
	if len(pools) == 1 {
		// One pool: the union IS the pool's sample; reuse its summaries
		// instead of re-sorting the same data.
		m := &cm.Pools[0].Metrics
		t.TTFT, t.TBT, t.E2E = m.TTFT, m.TBT, m.E2E
		t.TransferBytes, t.TransferTime = m.TransferBytes, m.TransferTime
	} else {
		t.TTFT = mathx.Summarize(allTTFT)
		t.TBT = mathx.Summarize(allTBT)
		t.E2E = mathx.Summarize(allE2E)
		t.TransferBytes = mathx.Summarize(allXferB)
		t.TransferTime = mathx.Summarize(allXferT)
	}
	if netSec > 0 && e2eSec > 0 {
		t.NetworkBoundFraction = netSec / e2eSec
	}
	t.TTFTAttainmentCompleted = ratio(ttftOK, len(allTTFT))
	t.TTFTAttainment = ratio(ttftOK, t.Arrived-t.Dropped)
	t.TBTAttainment = ratio(tbtOK, len(allTBT))
	t.KVCacheHitRate = ratio(kvHits, kvLookups)
	if h > 0 {
		t.PrefillUtilization = pBusyGPU / (h * float64(pGPUs))
		t.DecodeUtilization = dBusyGPU / (h * float64(dGPUs))
		t.Goodput = float64(goodTokens) / h
		t.UsefulGoodput = float64(usefulTokens) / h
	}
	t.Availability = 1
	if h > 0 && totalFLOPs > 0 {
		t.Availability = 1 - downFLOPSec/(h*totalFLOPs)
	}
	// Expected capacity fraction lost per failure: which instance fails
	// is AFR-rate-weighted, what it removes is compute-weighted. For a
	// homogeneous cluster this reduces to Σg²/G², matching the per-pool
	// formula.
	if totalRate > 0 && totalFLOPs > 0 {
		t.BlastRadius = blastLoss / totalRate / totalFLOPs
	}
	// Cross-pool class totals: ratios recomputed from the merged raw
	// accumulators, never averaged across pools.
	if len(classTotals) > 0 {
		t.Classes = make([]ClassMetrics, len(classTotals))
		for i := range classTotals {
			acc := &classTotals[i]
			t.Classes[i] = ClassMetrics{
				Class:          i,
				Arrived:        acc.arrived,
				Completed:      acc.completed,
				Shed:           acc.shed,
				TimedOut:       acc.timedOut,
				Retries:        acc.retries,
				Abandoned:      acc.abandoned,
				TTFTAttainment: ratio(acc.ttftOK, acc.arrived),
			}
			if h > 0 {
				t.Classes[i].Goodput = float64(acc.goodTokens) / h
			}
		}
	}
	return cm
}
