package serve

import (
	"math"
	"reflect"
	"testing"

	"litegpu/internal/failure"
	"litegpu/internal/inference"
	"litegpu/internal/trace"
	"litegpu/internal/units"
)

// withScheduler returns smallConfig reshaped for the given policy; for
// the colocated policies this is the identical silicon (2×1 GPU)
// derived from the phase-split fields, so cross-policy comparisons are
// equal-hardware by construction.
func withScheduler(pol SchedulerPolicy) Config {
	cfg := smallConfig()
	cfg.Scheduler = pol
	return cfg
}

func TestSchedulerPolicyNamesRoundTrip(t *testing.T) {
	for _, pol := range SchedulerPolicies() {
		got, err := ParseSchedulerPolicy(pol.String())
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if got != pol {
			t.Errorf("round trip %v → %q → %v", pol, pol.String(), got)
		}
	}
	if _, err := ParseSchedulerPolicy("fifo"); err == nil {
		t.Error("unknown scheduler name accepted")
	}
	if StaticDisaggregated.Colocated() || !ContinuousBatching.Colocated() || !ChunkedPrefill.Colocated() {
		t.Error("Colocated misclassifies a policy")
	}
}

func TestColocatedShapeDerivation(t *testing.T) {
	cfg := smallConfig() // 1×1P + 1×1D = 2 GPUs
	cfg.Scheduler = ContinuousBatching
	if n, g := cfg.ColocatedShape(); n != 2 || g != 1 {
		t.Errorf("derived shape = %d×%d, want 2×1 (same silicon)", n, g)
	}
	if cfg.TotalGPUs() != 2 {
		t.Errorf("TotalGPUs = %d, want 2", cfg.TotalGPUs())
	}
	cfg.Instances, cfg.InstanceGPUs = 3, 4
	if n, g := cfg.ColocatedShape(); n != 3 || g != 4 {
		t.Errorf("explicit shape = %d×%d, want 3×4", n, g)
	}
	if cfg.TotalGPUs() != 12 {
		t.Errorf("explicit TotalGPUs = %d, want 12", cfg.TotalGPUs())
	}
}

func TestColocatedValidation(t *testing.T) {
	small := smallConfig()
	cfg := Config{
		GPU: small.GPU, Model: small.Model, Opts: small.Opts,
		Scheduler: ContinuousBatching, Instances: 1, InstanceGPUs: 1,
		MaxPrefillBatch: 4, MaxDecodeBatch: 64,
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("colocated config without phase-split fields rejected: %v", err)
	}
	bad := cfg
	bad.Instances, bad.InstanceGPUs = 0, 0
	if err := bad.Validate(); err == nil {
		t.Error("underived colocated shape accepted")
	}
	neg := cfg
	neg.PrefillChunk = -1
	neg.Scheduler = ChunkedPrefill
	if err := neg.Validate(); err == nil {
		t.Error("negative prefill chunk accepted")
	}
}

// Each policy must serve a single-request trace: the most degenerate
// schedule there is — one prompt, no batching, no contention.
func TestSingleRequestTraceAllPolicies(t *testing.T) {
	for _, pol := range SchedulerPolicies() {
		cfg := withScheduler(pol)
		m, err := Run(cfg, oneRequest(1500, 10), 600)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if m.Completed != 1 || m.Arrived != 1 {
			t.Errorf("%v: completed %d of %d, want 1 of 1", pol, m.Completed, m.Arrived)
		}
		if m.TokensGenerated != 10 {
			t.Errorf("%v: generated %d tokens, want 10", pol, m.TokensGenerated)
		}
		if m.TTFT.N != 1 || m.TBT.N != 1 || m.E2E.N != 1 {
			t.Errorf("%v: sample counts TTFT=%d TBT=%d E2E=%d, want 1 each", pol, m.TTFT.N, m.TBT.N, m.E2E.N)
		}
		if m.TTFT.Mean <= 0 || m.E2E.Mean <= m.TTFT.Mean {
			t.Errorf("%v: implausible latencies TTFT=%v E2E=%v", pol, m.TTFT.Mean, m.E2E.Mean)
		}
	}
}

// A prompt longer than the chunk size must be split into ⌈prompt/chunk⌉
// chunk passes: chunked TTFT for an uncontended request equals the sum
// of its chunk durations, strictly above the single full-pass TTFT.
func TestPromptLongerThanChunkSize(t *testing.T) {
	chunk := 256
	prompt := 1536 // exactly 6 chunks, every one full and 64-aligned
	cont := withScheduler(ContinuousBatching)
	chk := withScheduler(ChunkedPrefill)
	chk.PrefillChunk = chunk

	mCont, err := Run(cont, oneRequest(prompt, 5), 600)
	if err != nil {
		t.Fatal(err)
	}
	mChk, err := Run(chk, oneRequest(prompt, 5), 600)
	if err != nil {
		t.Fatal(err)
	}
	if mChk.Completed != 1 || mCont.Completed != 1 {
		t.Fatalf("completions: chunked %d, continuous %d, want 1 each", mChk.Completed, mCont.Completed)
	}

	opts := chk.Opts
	opts.PromptLen = chunk
	step, err := inference.Run(chk.GPU, chk.Model, inference.Prefill, 1, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(step.Latency) * float64(prompt/chunk)
	if rel := math.Abs(mChk.TTFT.Mean-want) / want; rel > 0.01 {
		t.Errorf("chunked TTFT %v, want %v (6 × %v chunk passes)", mChk.TTFT.Mean, want, step.Latency)
	}
	if mChk.TTFT.Mean <= mCont.TTFT.Mean {
		t.Errorf("chunked TTFT %v not above continuous %v — chunking is free only if it never ran",
			mChk.TTFT.Mean, mCont.TTFT.Mean)
	}
}

// A prompt shorter than the chunk size is one (truncated) chunk: the
// chunked scheduler must not pad it to the full chunk length.
func TestPromptShorterThanChunkSize(t *testing.T) {
	chk := withScheduler(ChunkedPrefill)
	chk.PrefillChunk = 2048
	prompt := 640
	m, err := Run(chk, oneRequest(prompt, 5), 600)
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed != 1 {
		t.Fatalf("completed = %d, want 1", m.Completed)
	}
	opts := chk.Opts
	opts.PromptLen = prompt
	pass, err := inference.Run(chk.GPU, chk.Model, inference.Prefill, 1, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(m.TTFT.Mean-float64(pass.Latency)) / float64(pass.Latency); rel > 0.01 {
		t.Errorf("sub-chunk TTFT %v, want one %v pass at the prompt's own length", m.TTFT.Mean, pass.Latency)
	}
}

// Batch-of-one decode: an uncontended generation under the colocated
// policies emits one token per consecutive step, so its inter-token
// intervals must match the analytical batch-1 decode latency — the
// colocated analogue of TestSingleRequestTBTMatchesAnalyticalModel.
func TestBatchOfOneDecodeColocated(t *testing.T) {
	for _, pol := range []SchedulerPolicy{ContinuousBatching, ChunkedPrefill} {
		cfg := withScheduler(pol)
		m, err := Run(cfg, oneRequest(1500, 50), 600)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		want, err := inference.Run(cfg.GPU, cfg.Model, inference.Decode, 1, 1, cfg.Opts)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(m.TBT.Mean-float64(want.Latency)) / float64(want.Latency); rel > 0.01 {
			t.Errorf("%v: batch-1 TBT %v vs analytical %v", pol, m.TBT.Mean, want.Latency)
		}
	}
}

// Colocated policies must drop a prompt that can never fit, exactly as
// the static policy does, and keep serving the queue behind it.
func TestOversizedPromptDroppedAllPolicies(t *testing.T) {
	reqs := []trace.Request{
		{ID: 0, Arrival: 0, PromptTokens: 5_000_000, OutputTokens: 5},
		{ID: 1, Arrival: 0.5, PromptTokens: 800, OutputTokens: 5},
	}
	for _, pol := range SchedulerPolicies() {
		m, err := Run(withScheduler(pol), reqs, 600)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if m.Dropped != 1 || m.Completed != 1 {
			t.Errorf("%v: dropped %d completed %d, want 1 and 1", pol, m.Dropped, m.Completed)
		}
	}
}

// burstyDecodeHeavy is a Markov-modulated (MMPP) conversation-style
// stream: long outputs relative to prompts, with 4× arrival bursts.
// Decode work dominates, which is exactly where a static phase split
// strands its prefill silicon.
func burstyDecodeHeavy(t *testing.T, rate float64, seed uint64, horizon units.Seconds) []trace.Request {
	t.Helper()
	gen := trace.ConversationWorkload(rate, seed)
	gen.BurstFactor = 4
	gen.BurstFraction = 0.25
	gen.BurstDwell = 40
	reqs, err := gen.Generate(horizon)
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

// ISSUE 3 acceptance: on a bursty decode-heavy trace at equal hardware
// (2 GPUs each), continuous batching out-serves the static phase split
// — the static decode engine saturates while its prefill engine idles,
// and the colocated pool turns that stranded capacity into goodput.
func TestContinuousBeatsStaticOnBurstyDecodeHeavyTrace(t *testing.T) {
	reqs := burstyDecodeHeavy(t, 8.0, 11, 300)
	// MaxDecodeBatch 8 keeps per-instance decode capacity below the
	// offered load, so the static pool's lone decode engine saturates
	// (its prefill engine idling at ~17%) while the colocated pool
	// decodes on both instances. No drain: run horizon == arrival
	// window, so a backlogged pool cannot quietly catch up after
	// arrivals stop.
	static := withScheduler(StaticDisaggregated)
	static.MaxDecodeBatch = 8
	cont := withScheduler(ContinuousBatching)
	cont.MaxDecodeBatch = 8
	mStatic, err := Run(static, reqs, 300)
	if err != nil {
		t.Fatal(err)
	}
	mCont, err := Run(cont, reqs, 300)
	if err != nil {
		t.Fatal(err)
	}
	if mCont.Goodput <= mStatic.Goodput {
		t.Errorf("continuous goodput %.1f not above static %.1f on a decode-heavy MMPP trace",
			mCont.Goodput, mStatic.Goodput)
	}
	if mCont.Completed <= mStatic.Completed {
		t.Errorf("continuous completed %d not above static %d", mCont.Completed, mStatic.Completed)
	}
}

// longPromptTrace stresses prefill stalls: coding-style prompts pushed
// to several-thousand-token medians with modest outputs, so full-pass
// prefills repeatedly interrupt ongoing decodes.
func longPromptTrace(t *testing.T, rate float64, seed uint64, horizon units.Seconds) []trace.Request {
	t.Helper()
	gen := trace.Generator{
		Rate:         rate,
		PromptMedian: 6000, PromptP99: 8000,
		OutputMedian: 150, OutputP99: 600,
		MaxTokens: 8192,
		Seed:      seed,
	}
	reqs, err := gen.Generate(horizon)
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

// ISSUE 3 acceptance: on a long-prompt trace, chunked prefill bounds
// the decode stall per fused step by the chunk size, so its p99
// time-between-tokens comes in under continuous batching's (whose
// stalls last a whole multi-thousand-token prefill pass).
func TestChunkedLowersTailTBTOnLongPromptTrace(t *testing.T) {
	reqs := longPromptTrace(t, 1.5, 7, 300)
	mCont, err := Run(withScheduler(ContinuousBatching), reqs, 400)
	if err != nil {
		t.Fatal(err)
	}
	chk := withScheduler(ChunkedPrefill)
	chk.PrefillChunk = 512
	mChk, err := Run(chk, reqs, 400)
	if err != nil {
		t.Fatal(err)
	}
	if mChk.TBT.P99 >= mCont.TBT.P99 {
		t.Errorf("chunked TBT p99 %.4f not below continuous %.4f on long prompts",
			mChk.TBT.P99, mCont.TBT.P99)
	}
	if mChk.Completed == 0 || mCont.Completed == 0 {
		t.Fatal("a policy served nothing; the comparison is vacuous")
	}
}

// Failure injection, requeue/drop, and hot spares must work under every
// policy (no-drain decode-heavy traffic, TimeScale 8e6, per the failure
// test regime that makes outages actually bite).
func TestFailureMachineryAcrossPolicies(t *testing.T) {
	reqs := failureTrace(t)
	for _, pol := range SchedulerPolicies() {
		cfg := withScheduler(pol)
		clean, err := Run(cfg, reqs, 300)
		if err != nil {
			t.Fatalf("%v clean: %v", pol, err)
		}

		cc := clusterOf(cfg)
		cc.Failures = acceleratedFailures(0)
		faulty, err := RunCluster(cc, reqs, 300)
		if err != nil {
			t.Fatalf("%v faulty: %v", pol, err)
		}
		m := faulty.Total
		if m.FailureEvents == 0 {
			t.Fatalf("%v: accelerated failure clock produced no failures", pol)
		}
		if m.Availability >= 1 || m.Availability <= 0 {
			t.Errorf("%v: Availability = %v, want in (0, 1)", pol, m.Availability)
		}
		if m.Completed >= clean.Completed {
			t.Errorf("%v: failures did not reduce completions: %d vs clean %d", pol, m.Completed, clean.Completed)
		}
		if m.Requeued == 0 {
			t.Errorf("%v: requeue policy never requeued despite failures", pol)
		}
		if m.DroppedOnFailure != 0 {
			t.Errorf("%v: requeue policy dropped %d requests", pol, m.DroppedOnFailure)
		}

		ccDrop := clusterOf(cfg)
		ccDrop.Failures = acceleratedFailures(0)
		ccDrop.Failures.Policy = DropOnFailure
		dropped, err := RunCluster(ccDrop, reqs, 300)
		if err != nil {
			t.Fatalf("%v drop: %v", pol, err)
		}
		if dropped.Total.DroppedOnFailure == 0 {
			t.Errorf("%v: drop policy never dropped despite failures", pol)
		}
		if dropped.Total.Requeued != 0 {
			t.Errorf("%v: drop policy requeued %d requests", pol, dropped.Total.Requeued)
		}

		ccSpares := clusterOf(cfg)
		ccSpares.Failures = acceleratedFailures(2)
		spared, err := RunCluster(ccSpares, reqs, 300)
		if err != nil {
			t.Fatalf("%v spares: %v", pol, err)
		}
		if spared.Total.Availability <= m.Availability {
			t.Errorf("%v: 2 spares availability %v not above 0 spares %v",
				pol, spared.Total.Availability, m.Availability)
		}
		if spared.Total.Completed <= m.Completed {
			t.Errorf("%v: 2 spares completed %d not above 0 spares %d",
				pol, spared.Total.Completed, m.Completed)
		}
	}
}

// A failure mid-chunk must not duplicate or lose prompt chunks. The
// test drives the event engine by hand: it stops the simulation inside
// a chunk pass, kills the instance, and checks the head request's
// prefill progress is exactly its completed chunks — then lets the
// spare take over and verifies the request still finishes with the
// right token counts, exactly one TTFT sample, and one requeue.
func TestFailureMidChunkNeitherDuplicatesNorLosesChunks(t *testing.T) {
	cfg := withScheduler(ChunkedPrefill)
	cfg.Instances, cfg.InstanceGPUs = 1, 1
	cfg.PrefillChunk = 512
	const prompt, output = 2048, 4 // 4 full chunks
	fp := failure.DefaultParams()
	fp.MTTR = 30
	fp.RecoveryTime = 1
	cc := ClusterConfig{
		Pools: []Pool{{Config: cfg}},
		// Enabled with a 1-unit spare shelf, but no failure processes:
		// TimeScale 0 keeps rates at their (negligible) real-time values
		// and the test injects the failure itself, deterministically.
		Failures: FailureConfig{Enabled: true, Params: fp, Spares: 1, Seed: 1},
	}
	s, err := newClusterSim(cc, 600)
	if err != nil {
		t.Fatal(err)
	}
	p := s.pools[0]
	sched := p.sched.(*colocSched)

	// Arrival at t=0, by hand (run() would execute to completion).
	p.sched.enqueue(trace.Request{ID: 0, Arrival: 0, PromptTokens: prompt, OutputTokens: output})
	p.m.Arrived++
	s.requestDispatch(0)

	// Step the engine until the second chunk pass is in flight.
	e := &sched.engines[0]
	for i := 0; i < 100; i++ {
		if e.stepChunk > 0 && e.pending.At(0).promptLeft == prompt-512 {
			break
		}
		if !s.eng.Step() {
			t.Fatal("engine drained before the second chunk pass started")
		}
	}
	if e.stepChunk == 0 {
		t.Fatal("never observed an in-flight chunk pass")
	}
	head := e.pending.At(0)
	if head.promptLeft != prompt-512 {
		t.Fatalf("premise: promptLeft = %d, want %d after one completed chunk", head.promptLeft, prompt-512)
	}

	// Kill the instance mid-chunk.
	s.failInstance(p, 0, s.eng.Now())
	if head.promptLeft != prompt-512 {
		t.Errorf("mid-chunk failure changed promptLeft to %d: the in-flight chunk must be lost, completed ones kept",
			head.promptLeft)
	}
	if p.m.Requeued != 1 {
		t.Errorf("Requeued = %d, want 1", p.m.Requeued)
	}

	// Let the spare take over and the request finish.
	s.eng.Run(600)
	m := s.assemble().Pools[0].Metrics
	if m.Completed != 1 {
		t.Fatalf("Completed = %d, want 1 after recovery", m.Completed)
	}
	if m.TokensGenerated != output {
		t.Errorf("TokensGenerated = %d, want %d (no duplicated decode steps)", m.TokensGenerated, output)
	}
	if m.TTFT.N != 1 {
		t.Errorf("TTFT samples = %d, want exactly 1 across the requeue", m.TTFT.N)
	}
	// Prefill progress resumed from chunk 2 of 4: total chunk passes run
	// is 1 (before failure) + the aborted one (lost) + 3 (after), so the
	// TTFT must land between 4 and 5 chunk durations plus the outage.
	opts := cfg.Opts
	opts.PromptLen = 512
	chunkStep, err := inference.Run(cfg.GPU, cfg.Model, inference.Prefill, 1, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	outage := float64(fp.RecoveryTime)
	lo := 4*float64(chunkStep.Latency) + outage
	hi := 5*float64(chunkStep.Latency) + outage + 1e-9
	if m.TTFT.Mean < lo || m.TTFT.Mean > hi {
		t.Errorf("TTFT %v outside [%v, %v]: chunks were duplicated or lost across the requeue",
			m.TTFT.Mean, lo, hi)
	}
}

// Every policy must be deterministic, including under failure
// injection: identical inputs, byte-identical ClusterMetrics. CI runs
// this package with -count=2, which would additionally flush out any
// dependence on process-global state.
func TestPoliciesDeterministic(t *testing.T) {
	reqs := codingTrace(t, 1.5, 3, 200)
	for _, pol := range SchedulerPolicies() {
		cc := clusterOf(withScheduler(pol))
		cc.Failures = acceleratedFailures(1)
		a, err := RunCluster(cc, reqs, 300)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		b, err := RunCluster(cc, reqs, 300)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%v: repeated runs diverge", pol)
		}
	}
}

// The planner's scheduler axis: asked for all three policies, it must
// return the cheapest per-Mtoken plan among them.
func TestPlanCapacityPicksCheapestScheduler(t *testing.T) {
	req := planRequest(20)
	req.Schedulers = SchedulerPolicies()
	best, err := PlanCapacity(req, SLO{})
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range SchedulerPolicies() {
		r := planRequest(20)
		r.Scheduler = pol
		plan, err := PlanCapacity(r, SLO{})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if plan.Config.Scheduler != pol {
			t.Errorf("single-policy plan came back with scheduler %v, want %v", plan.Config.Scheduler, pol)
		}
		if best.Cost.CostPerMTokens > plan.Cost.CostPerMTokens+1e-12 {
			t.Errorf("multi-policy plan ($%.6f/Mtok, %v) costlier than %v alone ($%.6f/Mtok)",
				best.Cost.CostPerMTokens, best.Config.Scheduler, pol, plan.Cost.CostPerMTokens)
		}
	}
}

// Colocated plans must size their single instance dimension minimally,
// mirroring TestPlanCapacityIsMinimal for the static policy.
func TestPlanCapacityColocatedIsMinimal(t *testing.T) {
	req := planRequest(250)
	req.Scheduler = ContinuousBatching
	slo := SLO{TTFTAttainment: 0.99, TBTAttainment: 0.99, MinCompletion: 0.95}
	plan, err := PlanCapacity(req, slo)
	if err != nil {
		t.Fatal(err)
	}
	n := plan.Config.Instances
	if n <= 1 {
		t.Fatalf("rate 250 should need more than one colocated instance; got %d", n)
	}
	reqs, err := req.Workload.Generate(req.Horizon)
	if err != nil {
		t.Fatal(err)
	}
	cfg := plan.Config
	cfg.Instances = n - 1
	m, err := Run(cfg, reqs, req.Horizon+req.Drain)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dropped == 0 &&
		m.TTFTAttainment >= slo.TTFTAttainment &&
		m.TBTAttainment >= slo.TBTAttainment &&
		float64(m.Completed) >= slo.MinCompletion*float64(m.Arrived) {
		t.Errorf("plan with %d instances is not minimal: %d also meets the SLO", n, n-1)
	}
}
