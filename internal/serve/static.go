package serve

import (
	"fmt"
	"math"

	"litegpu/internal/inference"
	"litegpu/internal/trace"
)

// staticSched is the StaticDisaggregated policy: the paper's
// Splitwise-style phase split, with dedicated prefill engines batching
// incoming prompts and dedicated decode engines running continuous
// batching over active generations. It is the policy the Scheduler
// interface was extracted from, and reproduces the pre-extraction
// engine byte-for-byte (pinned by the golden corpus in
// testdata/static_goldens.txt).
type staticSched struct {
	cs   *clusterSim
	pool *poolSim
	cfg  Config

	prefills []prefillEngine
	decodes  []decodeEngine
	prefillQ []trace.Request
	decodeQ  []*activeReq

	decodeCap   int
	prefillTime func([]trace.Request) float64
	decodeTime  func(int) float64
}

type prefillEngine struct {
	instanceState
	freeAt float64
	busy   float64
	batch  []trace.Request
}

type decodeEngine struct {
	instanceState
	active  []*activeReq
	stepEnd float64 // 0 when idle
	busy    float64
}

func newStaticSched(cs *clusterSim, pool *poolSim) (*staticSched, error) {
	cfg := pool.cfg
	opts := cfg.Opts
	maxKV := inference.MaxFeasibleBatch(cfg.GPU, cfg.Model, inference.Decode, cfg.DecodeGPUs, opts)
	if maxKV <= 0 {
		return nil, fmt.Errorf("serve: %s does not fit on %d×%s for decode",
			cfg.Model.Name, cfg.DecodeGPUs, cfg.GPU.Name)
	}
	decodeCap := cfg.MaxDecodeBatch
	if decodeCap > maxKV {
		decodeCap = maxKV
	}
	if inference.MaxFeasibleBatch(cfg.GPU, cfg.Model, inference.Prefill, cfg.PrefillGPUs, opts) < 1 {
		return nil, fmt.Errorf("serve: %s does not fit on %d×%s for prefill",
			cfg.Model.Name, cfg.PrefillGPUs, cfg.GPU.Name)
	}
	return &staticSched{
		cs:          cs,
		pool:        pool,
		cfg:         cfg,
		prefills:    make([]prefillEngine, cfg.PrefillInstances),
		decodes:     make([]decodeEngine, cfg.DecodeInstances),
		decodeCap:   decodeCap,
		prefillTime: newPrefillTimer(cfg, opts, cfg.PrefillGPUs),
		decodeTime:  newDecodeTimer(cfg, opts, cfg.DecodeGPUs),
	}, nil
}

func (sc *staticSched) numInstances() int { return len(sc.prefills) + len(sc.decodes) }

func (sc *staticSched) state(id int) *instanceState {
	if id < len(sc.prefills) {
		return &sc.prefills[id].instanceState
	}
	return &sc.decodes[id-len(sc.prefills)].instanceState
}

func (sc *staticSched) gpus(id int) int {
	if id < len(sc.prefills) {
		return sc.cfg.PrefillGPUs
	}
	return sc.cfg.DecodeGPUs
}

func (sc *staticSched) shape() phaseShape {
	return phaseShape{
		prefillInstances: sc.cfg.PrefillInstances, prefillGPUs: sc.cfg.PrefillGPUs,
		decodeInstances: sc.cfg.DecodeInstances, decodeGPUs: sc.cfg.DecodeGPUs,
	}
}

func (sc *staticSched) totalGPUs() int {
	return sc.cfg.PrefillInstances*sc.cfg.PrefillGPUs + sc.cfg.DecodeInstances*sc.cfg.DecodeGPUs
}

func (sc *staticSched) enqueue(r trace.Request) {
	sc.prefillQ = append(sc.prefillQ, r)
}

func (sc *staticSched) outstanding() int {
	outstanding := len(sc.prefillQ) + len(sc.decodeQ)
	for i := range sc.prefills {
		outstanding += len(sc.prefills[i].batch)
	}
	for j := range sc.decodes {
		outstanding += len(sc.decodes[j].active)
	}
	return outstanding
}

func (sc *staticSched) busy() (prefill, decode float64) {
	for i := range sc.prefills {
		prefill += sc.prefills[i].busy
	}
	for j := range sc.decodes {
		decode += sc.decodes[j].busy
	}
	return prefill, decode
}

func (sc *staticSched) dispatch(now float64) {
	sc.dispatchPrefill(now)
	for j := range sc.decodes {
		e := &sc.decodes[j]
		if e.up && e.stepEnd == 0 {
			sc.startDecodeStep(j, now)
		}
	}
}

func (sc *staticSched) dispatchPrefill(now float64) {
	for i := range sc.prefills {
		e := &sc.prefills[i]
		if !e.up {
			continue
		}
		for e.freeAt <= now && len(sc.prefillQ) > 0 {
			n := sc.cfg.MaxPrefillBatch
			if n > len(sc.prefillQ) {
				n = len(sc.prefillQ)
			}
			// Shrink the batch until its KV footprint fits. The pool was
			// validated to fit the model at the nominal prompt length,
			// but an individual oversized prompt can still exceed
			// capacity alone (n reaches 0): drop it rather than let it
			// starve at the head of the queue forever.
			dt := math.Inf(1)
			for ; n >= 1; n-- {
				if dt = sc.prefillTime(sc.prefillQ[:n]); !math.IsInf(dt, 1) {
					break
				}
			}
			if n < 1 {
				sc.prefillQ = sc.prefillQ[1:]
				sc.pool.m.Dropped++
				continue
			}
			batch := sc.prefillQ[:n]
			sc.prefillQ = sc.prefillQ[n:]
			e.batch = append([]trace.Request(nil), batch...)
			e.freeAt = now + dt
			e.busy += dt
			i := i
			e.doneEv = sc.cs.eng.Schedule(e.freeAt, prioPrefill+e.prio, func(t float64) {
				sc.completePrefill(i, t)
			})
		}
	}
}

func (sc *staticSched) completePrefill(i int, now float64) {
	e := &sc.prefills[i]
	e.doneEv = 0
	for _, r := range e.batch {
		sc.pool.recordTTFT(now - float64(r.Arrival))
		sc.decodeQ = append(sc.decodeQ, &activeReq{req: r, remaining: r.OutputTokens})
	}
	e.batch = nil
	sc.cs.requestDispatch(now)
}

func (sc *staticSched) startDecodeStep(j int, now float64) {
	e := &sc.decodes[j]
	// Admit from the queue up to capacity, then step if non-empty.
	for len(e.active) < sc.decodeCap && len(sc.decodeQ) > 0 {
		a := sc.decodeQ[0]
		sc.decodeQ = sc.decodeQ[1:]
		if !a.admitted {
			a.admitted = true
			a.decodeAt = now
		}
		e.active = append(e.active, a)
	}
	if len(e.active) == 0 {
		e.stepEnd = 0
		return
	}
	dt := sc.decodeTime(len(e.active))
	e.stepEnd = now + dt
	e.busy += dt
	e.doneEv = sc.cs.eng.Schedule(e.stepEnd, prioDecode+e.prio, func(t float64) {
		sc.completeDecodeStep(j, t)
	})
}

func (sc *staticSched) completeDecodeStep(j int, now float64) {
	e := &sc.decodes[j]
	e.doneEv = 0
	var still []*activeReq
	for _, a := range e.active {
		if !sc.pool.emitToken(a, now) {
			still = append(still, a)
		}
	}
	e.active = still
	e.stepEnd = 0
	sc.cs.requestDispatch(now)
}

// fail reclaims a dead instance's in-flight work: the unfinished pass's
// busy tail is un-counted and the prompts (or generations) go back to
// the head of their queue — or are abandoned under DropOnFailure.
func (sc *staticSched) fail(id int, now float64, drop bool) {
	p := sc.pool
	if id < len(sc.prefills) {
		e := &sc.prefills[id]
		if len(e.batch) > 0 {
			// The pass died before completing: un-count its unfinished
			// busy tail and put the prompts back at the head of the
			// queue (or abandon them).
			e.busy -= e.freeAt - now
			if drop {
				p.m.DroppedOnFailure += len(e.batch)
			} else {
				p.m.Requeued += len(e.batch)
				sc.prefillQ = append(append([]trace.Request(nil), e.batch...), sc.prefillQ...)
			}
			e.batch = nil
		}
		e.freeAt = now
	} else {
		e := &sc.decodes[id-len(sc.prefills)]
		if e.stepEnd > 0 {
			e.busy -= e.stepEnd - now
			e.stepEnd = 0
		}
		if len(e.active) > 0 {
			if drop {
				p.m.DroppedOnFailure += len(e.active)
			} else {
				p.m.Requeued += len(e.active)
				sc.decodeQ = append(append([]*activeReq(nil), e.active...), sc.decodeQ...)
			}
			e.active = nil
		}
	}
}

func (sc *staticSched) recovered(id int, now float64) {
	if id < len(sc.prefills) {
		sc.prefills[id].freeAt = now
	}
}
