package serve

import (
	"fmt"
	"math"

	"litegpu/internal/inference"
	"litegpu/internal/kv"
	"litegpu/internal/mathx"
	"litegpu/internal/obs"
	"litegpu/internal/sim"
	"litegpu/internal/trace"
)

// staticSched is the StaticDisaggregated policy: the paper's
// Splitwise-style phase split, with dedicated prefill engines batching
// incoming prompts and dedicated decode engines running continuous
// batching over active generations. It is the policy the Scheduler
// interface was extracted from, and reproduces the pre-extraction
// engine byte-for-byte (pinned by the golden corpus in
// testdata/static_goldens.txt).
//
// All per-iteration storage is reused: queues are ring buffers, each
// engine's batch buffer survives across passes, and completed request
// state recycles through the pool's free list — a warm scheduler runs
// without allocating.
type staticSched struct {
	cs   *clusterSim
	pool *poolSim
	cfg  Config

	prefills []prefillEngine
	decodes  []decodeEngine
	prefillQ deque[trace.Request]
	decodeQ  deque[*activeReq]
	decodeRR int // KV-handoff destination rotation

	// reprefillQ holds preempted sequences whose KV must be rebuilt by a
	// prefill pass (Recompute policy); `one` is the reusable batch-of-one
	// buffer those passes are timed with. Both stay empty with KV off.
	reprefillQ deque[*activeReq]
	one        [1]trace.Request

	prefillDoneH sim.Handler
	decodeDoneH  sim.Handler

	decodeCap   int
	prefillTime func([]trace.Request) float64
	decodeTime  func(int) float64
}

type prefillEngine struct {
	instanceState
	freeAt float64
	busy   float64
	batch  []trace.Request // reused across passes; empty when idle
	re     *activeReq      // in-flight recompute pass (KV rebuild), nil otherwise
}

type decodeEngine struct {
	instanceState
	active  []*activeReq // reused across steps
	stepEnd float64      // 0 when idle
	busy    float64
	// al is the instance's paged KV allocator; nil with Config.KV off.
	// Prefill engines hold none: the simulation models decode-side HBM,
	// where the cache lives for a sequence's whole generation (prefill
	// working memory is covered by MaxFeasibleBatch validation).
	al *kv.Allocator
}

func newStaticSched(cs *clusterSim, pool *poolSim) (*staticSched, error) {
	cfg := pool.cfg
	opts := cfg.Opts
	maxKV := inference.MaxFeasibleBatch(cfg.GPU, cfg.Model, inference.Decode, cfg.DecodeGPUs, opts)
	if maxKV <= 0 {
		return nil, fmt.Errorf("serve: %s does not fit on %d×%s for decode",
			cfg.Model.Name, cfg.DecodeGPUs, cfg.GPU.Name)
	}
	decodeCap := cfg.MaxDecodeBatch
	if decodeCap > maxKV {
		decodeCap = maxKV
	}
	if inference.MaxFeasibleBatch(cfg.GPU, cfg.Model, inference.Prefill, cfg.PrefillGPUs, opts) < 1 {
		return nil, fmt.Errorf("serve: %s does not fit on %d×%s for prefill",
			cfg.Model.Name, cfg.PrefillGPUs, cfg.GPU.Name)
	}
	sc := &staticSched{
		cs:          cs,
		pool:        pool,
		cfg:         cfg,
		prefills:    make([]prefillEngine, cfg.PrefillInstances),
		decodes:     make([]decodeEngine, cfg.DecodeInstances),
		decodeCap:   decodeCap,
		prefillTime: newPrefillTimer(cfg, opts, cfg.PrefillGPUs),
		decodeTime:  newDecodeTimer(cfg, opts, cfg.DecodeGPUs),
	}
	sc.prefillDoneH = sc.onPrefillDone
	sc.decodeDoneH = sc.onDecodeDone
	if cfg.KV.Enabled() {
		blocks, err := kvBlocksPerInstance(cfg, cfg.DecodeGPUs)
		if err != nil {
			return nil, err
		}
		bt := cfg.KV.BlockTokensOrDefault()
		for j := range sc.decodes {
			sc.decodes[j].al = kv.NewAllocator(blocks, bt, cfg.KV.PrefixCache)
		}
		// With paged KV the allocator is the memory gate: admission is
		// bounded by free blocks at actual sequence lengths, so the
		// whole-context MaxFeasibleBatch cap above no longer applies.
		sc.decodeCap = cfg.MaxDecodeBatch
	}
	return sc, nil
}

func (sc *staticSched) numInstances() int { return len(sc.prefills) + len(sc.decodes) }

func (sc *staticSched) state(id int) *instanceState {
	if id < len(sc.prefills) {
		return &sc.prefills[id].instanceState
	}
	return &sc.decodes[id-len(sc.prefills)].instanceState
}

func (sc *staticSched) gpus(id int) int {
	if id < len(sc.prefills) {
		return sc.cfg.PrefillGPUs
	}
	return sc.cfg.DecodeGPUs
}

func (sc *staticSched) shape() phaseShape {
	return phaseShape{
		prefillInstances: sc.cfg.PrefillInstances, prefillGPUs: sc.cfg.PrefillGPUs,
		decodeInstances: sc.cfg.DecodeInstances, decodeGPUs: sc.cfg.DecodeGPUs,
	}
}

func (sc *staticSched) totalGPUs() int {
	return sc.cfg.PrefillInstances*sc.cfg.PrefillGPUs + sc.cfg.DecodeInstances*sc.cfg.DecodeGPUs
}

//litegpu:hotpath
func (sc *staticSched) enqueue(r trace.Request) {
	sc.prefillQ.PushBack(r)
}

func (sc *staticSched) outstanding() int {
	outstanding := sc.prefillQ.Len() + sc.decodeQ.Len() + sc.reprefillQ.Len()
	for i := range sc.prefills {
		outstanding += len(sc.prefills[i].batch)
		if sc.prefills[i].re != nil {
			outstanding++
		}
	}
	for j := range sc.decodes {
		outstanding += len(sc.decodes[j].active)
	}
	return outstanding
}

// scalable exposes the decode pool to the autoscaler; prefill capacity
// is fixed — the static split sizes it for ingest, and parking it would
// starve TTFT rather than save meaningful decode capacity.
func (sc *staticSched) scalable() (lo, hi int) {
	return len(sc.prefills), len(sc.prefills) + len(sc.decodes)
}

func (sc *staticSched) idle(id int) bool {
	if id < len(sc.prefills) {
		e := &sc.prefills[id]
		return len(e.batch) == 0 && e.re == nil
	}
	e := &sc.decodes[id-len(sc.prefills)]
	return mathx.ExactEq(e.stepEnd, 0) && len(e.active) == 0
}

func (sc *staticSched) busy() (prefill, decode float64) {
	for i := range sc.prefills {
		prefill += sc.prefills[i].busy
	}
	for j := range sc.decodes {
		decode += sc.decodes[j].busy
	}
	return prefill, decode
}

//litegpu:hotpath
func (sc *staticSched) dispatch(now float64) {
	sc.dispatchPrefill(now)
	for j := range sc.decodes {
		e := &sc.decodes[j]
		if e.up && !e.parked && mathx.ExactEq(e.stepEnd, 0) {
			sc.startDecodeStep(j, now)
		}
	}
}

//litegpu:hotpath
func (sc *staticSched) dispatchPrefill(now float64) {
	for i := range sc.prefills {
		e := &sc.prefills[i]
		if !e.up {
			continue
		}
		// Recompute passes first: a preempted sequence blocks a decode
		// slot's worth of progress until its KV is rebuilt, so rebuilds
		// outrank fresh prompts. Each runs as a batch of one (the KV must
		// be recontiguous before decode resumes).
		for e.freeAt <= now && sc.reprefillQ.Len() > 0 {
			a := sc.reprefillQ.At(0)
			if sc.pool.clientOn && sc.pool.isCancelled(a.req.ID) {
				// The client timed out while the sequence waited for its
				// KV rebuild: reclaim it instead of re-running prefill.
				sc.reprefillQ.PopFront()
				sc.pool.settleCancelled(a.req.ID, a)
				continue
			}
			sc.one[0] = trace.Request{PromptTokens: kvTokens(a)}
			dt := sc.prefillTime(sc.one[:])
			if math.IsInf(dt, 1) {
				// The grown sequence no longer fits even a batch-of-one
				// pass: it can never resume.
				sc.reprefillQ.PopFront()
				sc.pool.m.Dropped++
				sc.pool.clientSettle(a.req.ID)
				sc.pool.freeActive(a)
				continue
			}
			sc.reprefillQ.PopFront()
			if e.slow > 0 {
				dt *= e.slow
			}
			e.re = a
			e.freeAt = now + dt
			e.busy += dt
			if sc.pool.rec != nil {
				sc.pool.rec.Request(obs.PrefillStart, now, int32(sc.pool.idx), int32(i), int64(a.req.ID), float64(kvTokens(a)))
			}
			e.doneEv = sc.cs.eng.ScheduleCall(e.freeAt, prioPrefill+e.prio, sc.prefillDoneH, uint64(i))
		}
		for e.freeAt <= now && sc.prefillQ.Len() > 0 {
			if sc.pool.clientOn {
				// Purge cancelled prompts before staging a batch: their
				// clients already gave up.
				for sc.prefillQ.Len() > 0 {
					r := sc.prefillQ.At(0)
					if !sc.pool.isCancelled(r.ID) {
						break
					}
					sc.prefillQ.PopFront()
					sc.pool.settleCancelled(r.ID, nil)
				}
				if sc.prefillQ.Len() == 0 {
					break
				}
			}
			n := sc.cfg.MaxPrefillBatch
			if n > sc.prefillQ.Len() {
				n = sc.prefillQ.Len()
			}
			// Stage the candidate batch in the engine's reusable buffer,
			// then shrink it until its KV footprint fits. The pool was
			// validated to fit the model at the nominal prompt length,
			// but an individual oversized prompt can still exceed
			// capacity alone (n reaches 0): drop it rather than let it
			// starve at the head of the queue forever.
			e.batch = sc.prefillQ.CopyPrefix(e.batch[:0], n)
			dt := math.Inf(1)
			for ; n >= 1; n-- {
				if dt = sc.prefillTime(e.batch[:n]); !math.IsInf(dt, 1) {
					break
				}
			}
			if n < 1 {
				r := sc.prefillQ.PopFront()
				sc.pool.m.Dropped++
				sc.pool.clientSettle(r.ID)
				if sc.pool.rec != nil {
					sc.pool.rec.Request(obs.Drop, now, int32(sc.pool.idx), int32(i), int64(r.ID), float64(r.PromptTokens))
				}
				e.batch = e.batch[:0]
				continue
			}
			sc.prefillQ.DiscardFront(n)
			e.batch = e.batch[:n]
			if e.slow > 0 {
				dt *= e.slow
			}
			e.freeAt = now + dt
			e.busy += dt
			if sc.pool.rec != nil {
				for _, r := range e.batch {
					sc.pool.rec.Request(obs.PrefillStart, now, int32(sc.pool.idx), int32(i), int64(r.ID), float64(n))
				}
			}
			e.doneEv = sc.cs.eng.ScheduleCall(e.freeAt, prioPrefill+e.prio, sc.prefillDoneH, uint64(i))
		}
	}
}

//litegpu:hotpath
func (sc *staticSched) onPrefillDone(now float64, arg uint64) {
	sc.completePrefill(int(arg), now)
}

//litegpu:hotpath
func (sc *staticSched) completePrefill(i int, now float64) {
	e := &sc.prefills[i]
	e.doneEv = 0
	if a := e.re; a != nil {
		e.re = nil
		sc.finishReprefill(i, a, now)
	}
	for _, r := range e.batch {
		sc.finishPrefillReq(i, r, now)
	}
	e.batch = e.batch[:0]
	sc.cs.requestDispatch(now)
}

// finishPrefillReq moves one prefilled request toward decode. Without
// a fabric (or when the chosen decode instance shares the prefill
// engine's scale-up node) the handoff is instantaneous, exactly the
// pre-netsim semantics: TTFT stamps here and the request joins the
// decode queue. Across nodes, the KV cache — the model's full
// KV-bytes-per-token times the prompt length — becomes a fabric
// transfer, and the request only becomes decodable (and TTFT only
// stamps) when the last byte lands.
//
//litegpu:hotpath
func (sc *staticSched) finishPrefillReq(i int, r trace.Request, now float64) {
	p := sc.pool
	if p.clientOn && p.isCancelled(r.ID) {
		// The client timed out while the prompt was mid-prefill: the
		// pass's compute is sunk, but no KV ships and no TTFT stamps.
		p.settleCancelled(r.ID, nil)
		return
	}
	if p.rec != nil {
		p.rec.Request(obs.PrefillEnd, now, int32(p.idx), int32(i), int64(r.ID), 0)
	}
	if sc.cs.fab == nil {
		p.recordTTFT(now-float64(r.Arrival), r.Class)
		sc.decodeQ.PushBack(p.newActive(r))
		return
	}
	dst := sc.pickDecodeDst()
	dstID := len(sc.prefills) + dst
	if p.nodeOf[i] == p.nodeOf[dstID] {
		p.recordTTFT(now-float64(r.Arrival), r.Class)
		sc.decodeQ.PushBack(p.newActive(r))
		return
	}
	idx := p.newXfer()
	rec := &p.xfers[idx]
	*rec = xferRec{
		kind: xferKV, src: int32(i), dst: int32(dstID),
		a: p.newActive(r), start: now,
		bytes: p.kvXferBytes(r.PromptTokens),
	}
	rec.tid = sc.cs.fab.Start(p.epBase+i, p.epBase+dstID, rec.bytes,
		prioTransfer+sc.decodes[dst].prio, sc.cs.xferH, packArg(p.idx, int(idx)))
	p.liveXfers = append(p.liveXfers, idx)
	if p.rec != nil {
		p.rec.Request(obs.XferStart, now, int32(p.idx), int32(i), int64(r.ID), rec.bytes)
	}
}

// pickDecodeDst rotates KV handoffs across decode instances,
// preferring live ones (a handoff aimed at a down instance would
// immediately retarget); with every decode instance down the plain
// rotation applies — the transfer proceeds, and its delivery lands in
// the shared decode queue for whichever instance recovers.
//
//litegpu:hotpath
func (sc *staticSched) pickDecodeDst() int {
	n := len(sc.decodes)
	// Prefer instances actually taking traffic; fall back to any live
	// one (a parked target still lands in the shared queue), then to the
	// plain rotation. With autoscale off the first loop is the
	// historical scan.
	for k := 0; k < n; k++ {
		j := (sc.decodeRR + k) % n
		e := &sc.decodes[j]
		if e.up && !e.parked && !e.draining {
			sc.decodeRR = j + 1
			return j
		}
	}
	for k := 0; k < n; k++ {
		j := (sc.decodeRR + k) % n
		if sc.decodes[j].up {
			sc.decodeRR = j + 1
			return j
		}
	}
	j := sc.decodeRR % n
	sc.decodeRR++
	return j
}

// deliverKV lands a fabric-delivered KV cache: the request joins the
// decode queue (TTFT was stamped by the delivery handler).
//
//litegpu:hotpath
func (sc *staticSched) deliverKV(a *activeReq, now float64) {
	sc.decodeQ.PushBack(a)
}

// finishReprefill hands a recomputed KV cache back to decode: same
// node-bypass logic as finishPrefillReq, but the sequence already served
// its first token, so no TTFT stamps and the cross-node leg rides an
// xferSwap whose delivery lands in swapReturn.
//
//litegpu:hotpath
func (sc *staticSched) finishReprefill(i int, a *activeReq, now float64) {
	p := sc.pool
	if p.clientOn && p.isCancelled(a.req.ID) {
		p.settleCancelled(a.req.ID, a)
		return
	}
	if p.rec != nil {
		p.rec.Request(obs.PrefillEnd, now, int32(p.idx), int32(i), int64(a.req.ID), 0)
	}
	if sc.cs.fab == nil {
		sc.decodeQ.PushFront(a)
		return
	}
	dst := sc.pickDecodeDst()
	dstID := len(sc.prefills) + dst
	if p.nodeOf[i] == p.nodeOf[dstID] {
		sc.decodeQ.PushFront(a)
		return
	}
	idx := p.newXfer()
	rec := &p.xfers[idx]
	*rec = xferRec{
		kind: xferSwap, src: int32(i), dst: int32(dstID),
		a: a, start: now,
		bytes: p.kvXferBytes(kvTokens(a)),
	}
	rec.tid = sc.cs.fab.Start(p.epBase+i, p.epBase+dstID, rec.bytes,
		prioTransfer+sc.decodes[dst].prio, sc.cs.xferH, packArg(p.idx, int(idx)))
	p.liveXfers = append(p.liveXfers, idx)
	if p.rec != nil {
		p.rec.Request(obs.XferStart, now, int32(p.idx), int32(i), int64(a.req.ID), rec.bytes)
	}
}

// swapReturn puts a preempted sequence back at the head of the decode
// queue once its KV is recoverable again (swap round-trip delivered, or
// recompute pass handed off). Head, not tail: it already consumed
// prefill capacity once and every queued request behind it is younger.
//
//litegpu:hotpath
func (sc *staticSched) swapReturn(a *activeReq, now float64) {
	sc.decodeQ.PushFront(a)
}

//litegpu:hotpath
func (sc *staticSched) startDecodeStep(j int, now float64) {
	e := &sc.decodes[j]
	p := sc.pool
	// Admit from the queue up to capacity, then step if non-empty. With
	// paged KV the head of the queue must also fit in free blocks;
	// admission is head-of-line (no skipping), so a blocked head waits
	// for completions or preemptions to free memory. A draining instance
	// admits nothing — it finishes its in-flight work and parks.
	for !e.draining && len(e.active) < sc.decodeCap && sc.decodeQ.Len() > 0 {
		a := sc.decodeQ.At(0)
		if p.clientOn && p.isCancelled(a.req.ID) {
			sc.decodeQ.PopFront()
			if e.al != nil {
				p.kvRelease(e.al, a, now)
			}
			p.settleCancelled(a.req.ID, a)
			continue
		}
		if e.al != nil && !p.kvAdmit(e.al, a, now) {
			break
		}
		sc.decodeQ.PopFront()
		if !a.admitted {
			a.admitted = true
			a.decodeAt = now
		}
		e.active = append(e.active, a)
	}
	if e.al != nil {
		sc.kvGrowActives(j, now)
	}
	if len(e.active) == 0 {
		if e.draining {
			p.parkInstance(&e.instanceState, now)
		}
		e.stepEnd = 0
		return
	}
	dt := sc.decodeTime(len(e.active))
	if e.slow > 0 {
		dt *= e.slow
	}
	e.stepEnd = now + dt
	e.busy += dt
	e.doneEv = sc.cs.eng.ScheduleCall(e.stepEnd, prioDecode+e.prio, sc.decodeDoneH, uint64(j))
}

// kvGrowActives claims the block growth for the token each active
// sequence emits this step. When the allocator runs dry the newest
// admissions are preempted first (they have the least sunk work), and a
// sole occupant that still cannot grow is dropped — with the whole
// allocator to itself there is nothing left to evict.
//
//litegpu:hotpath
func (sc *staticSched) kvGrowActives(j int, now float64) {
	e := &sc.decodes[j]
	p := sc.pool
	for i := 0; i < len(e.active); {
		a := e.active[i]
		if p.kvGrow(e.al, a, now) {
			i++
			continue
		}
		last := len(e.active) - 1
		if last > i {
			victim := e.active[last]
			e.active[last] = nil
			e.active = e.active[:last]
			sc.preempt(j, victim, now)
			continue // retry a's growth with the freed blocks
		}
		if i > 0 {
			// a itself is the newest remaining sequence: evict it.
			e.active[last] = nil
			e.active = e.active[:last]
			sc.preempt(j, a, now)
			return
		}
		// Sole occupant that cannot grow: it can never finish.
		if p.rec != nil {
			p.rec.Request(obs.Drop, now, int32(p.idx), int32(len(sc.prefills)+j), int64(a.req.ID), float64(a.req.PromptTokens))
		}
		p.kvRelease(e.al, a, now)
		p.m.Dropped++
		p.clientSettle(a.req.ID)
		p.freeActive(a)
		e.active[0] = nil
		e.active = e.active[:0]
		return
	}
}

// preempt evicts victim from decode engine j: its blocks are released
// and its KV either rides the fabric to remote memory and back (Swap)
// or is discarded and rebuilt by a prefill pass (Recompute).
//
//litegpu:hotpath
func (sc *staticSched) preempt(j int, victim *activeReq, now float64) {
	p := sc.pool
	e := &sc.decodes[j]
	p.kvPreempt++
	tokens := kvTokens(victim)
	if p.rec != nil {
		p.rec.Request(obs.KVPreempt, now, int32(p.idx), int32(len(sc.prefills)+j), int64(victim.req.ID), float64(tokens))
	}
	p.kvRelease(e.al, victim, now)
	if sc.cfg.KV.Policy == kv.Swap {
		sc.startSwap(j, victim, now, tokens)
		return
	}
	p.kvRecompute += tokens
	sc.reprefillQ.PushBack(victim)
}

// startSwap prices a preemption swap as one fabric transfer of twice
// the sequence's block payload — the swap-out to router-attached remote
// memory plus the eventual swap-in — delivered as an xferSwap so the
// sequence rejoins decode with no TTFT stamp.
//
//litegpu:hotpath
func (sc *staticSched) startSwap(j int, a *activeReq, now float64, tokens int) {
	p := sc.pool
	if sc.cs.fab == nil {
		// No fabric configured: the historical infinite interconnect —
		// the round-trip is free and the sequence requeues immediately.
		sc.swapReturn(a, now)
		return
	}
	dstID := len(sc.prefills) + j
	idx := p.newXfer()
	rec := &p.xfers[idx]
	*rec = xferRec{
		kind: xferSwap, src: int32(dstID), dst: int32(dstID),
		a: a, start: now,
		bytes: 2 * p.kvXferBytes(tokens),
	}
	rec.tid = sc.cs.fab.Start(p.epBase+dstID, 0, rec.bytes,
		prioTransfer+sc.decodes[j].prio, sc.cs.xferH, packArg(p.idx, int(idx)))
	p.liveXfers = append(p.liveXfers, idx)
	if p.rec != nil {
		p.rec.Request(obs.KVSwapOut, now, int32(p.idx), int32(dstID), int64(a.req.ID), rec.bytes)
	}
}

//litegpu:hotpath
func (sc *staticSched) onDecodeDone(now float64, arg uint64) {
	sc.completeDecodeStep(int(arg), now)
}

//litegpu:hotpath
func (sc *staticSched) completeDecodeStep(j int, now float64) {
	e := &sc.decodes[j]
	e.doneEv = 0
	// Filter survivors in place; completed requests recycle. A batch
	// member whose client timed out since the step began leaves without
	// emitting — its step share is sunk cost, like a real cancelled
	// stream's.
	w := 0
	for _, a := range e.active {
		if sc.pool.clientOn && sc.pool.isCancelled(a.req.ID) {
			if e.al != nil {
				sc.pool.kvRelease(e.al, a, now)
			}
			sc.pool.settleCancelled(a.req.ID, a)
			continue
		}
		if !sc.pool.emitToken(a, now) {
			e.active[w] = a
			w++
		} else {
			if e.al != nil {
				sc.pool.kvRelease(e.al, a, now)
			}
			sc.pool.freeActive(a)
		}
	}
	clearTail(e.active, w)
	e.active = e.active[:w]
	e.stepEnd = 0
	sc.cs.requestDispatch(now)
}

// fail reclaims a dead instance's in-flight work: the unfinished pass's
// busy tail is un-counted and the prompts (or generations) go back to
// the head of their queue — or are abandoned under DropOnFailure.
//
//litegpu:hotpath
func (sc *staticSched) fail(id int, now float64, drop bool) {
	p := sc.pool
	if id < len(sc.prefills) {
		e := &sc.prefills[id]
		if a := e.re; a != nil {
			// An in-flight recompute pass died with the engine: the
			// rebuilt KV is lost, so the sequence re-enters the rebuild
			// queue (or is abandoned).
			e.re = nil
			e.busy -= e.freeAt - now
			if p.rec != nil {
				k := obs.Requeue
				if drop {
					k = obs.Drop
				}
				p.rec.Request(k, now, int32(p.idx), int32(id), int64(a.req.ID), 0)
			}
			if drop {
				p.m.DroppedOnFailure++
				p.clientSettle(a.req.ID)
				p.freeActive(a)
			} else {
				p.m.Requeued++
				sc.reprefillQ.PushFront(a)
			}
		}
		if len(e.batch) > 0 {
			// The pass died before completing: un-count its unfinished
			// busy tail and put the prompts back at the head of the
			// queue (or abandon them).
			e.busy -= e.freeAt - now
			if p.rec != nil {
				k := obs.Requeue
				if drop {
					k = obs.Drop
				}
				for _, r := range e.batch {
					p.rec.Request(k, now, int32(p.idx), int32(id), int64(r.ID), 0)
				}
			}
			if drop {
				p.m.DroppedOnFailure += len(e.batch)
				for _, r := range e.batch {
					p.clientSettle(r.ID)
				}
			} else {
				p.m.Requeued += len(e.batch)
				for i := len(e.batch) - 1; i >= 0; i-- {
					sc.prefillQ.PushFront(e.batch[i])
				}
			}
			e.batch = e.batch[:0]
		}
		e.freeAt = now
	} else {
		e := &sc.decodes[id-len(sc.prefills)]
		if e.stepEnd > 0 {
			e.busy -= e.stepEnd - now
			e.stepEnd = 0
		}
		if e.al != nil {
			// The HBM died with the instance: every resident sequence —
			// and the shared prefix cache — is gone. Requeued sequences
			// re-admit from scratch on a surviving instance.
			for _, a := range e.active {
				a.kvSeq = -1
			}
			if used := e.al.InUse(); used != 0 {
				p.kvAccount(now, -used)
			}
			e.al.Reset()
		}
		if len(e.active) > 0 {
			if p.rec != nil {
				k := obs.Requeue
				if drop {
					k = obs.Drop
				}
				for _, a := range e.active {
					p.rec.Request(k, now, int32(p.idx), int32(id), int64(a.req.ID), 0)
				}
			}
			if drop {
				p.m.DroppedOnFailure += len(e.active)
				for _, a := range e.active {
					p.clientSettle(a.req.ID)
					p.freeActive(a)
				}
			} else {
				p.m.Requeued += len(e.active)
				for i := len(e.active) - 1; i >= 0; i-- {
					sc.decodeQ.PushFront(e.active[i])
				}
			}
			clearTail(e.active, 0)
			e.active = e.active[:0]
		}
	}
	if sc.cs.fab != nil {
		sc.failXfers(id, now, drop)
	}
}

// failXfers reclaims in-flight KV handoffs touching a dead instance.
// A transfer FROM a dead prefill engine lost its source KV: under the
// requeue policy the prompt re-runs prefill from the queue head, under
// drop it is abandoned. A transfer TO a dead decode engine retargets
// to a live instance and retransmits from byte zero (the duration
// sample keeps its original start, so the retry is visible as transfer
// tail latency) — or is abandoned under drop.
//
//litegpu:hotpath
func (sc *staticSched) failXfers(id int, now float64, drop bool) {
	p := sc.pool
	live := p.liveXfers
	w := 0
	for _, idx := range live {
		rec := &p.xfers[idx]
		if int(rec.src) != id && int(rec.dst) != id {
			live[w] = idx
			w++
			continue
		}
		sc.cs.fab.Cancel(rec.tid)
		if drop {
			p.m.DroppedOnFailure++
			p.clientSettle(rec.a.req.ID)
			p.freeActive(rec.a)
			p.freeXfer(idx)
			continue
		}
		if rec.kind == xferSwap {
			p.m.Requeued++
			if int(rec.src) < len(sc.prefills) {
				// A recompute handoff: the rebuilt KV died with its
				// prefill engine, so the sequence rebuilds again.
				sc.reprefillQ.PushFront(rec.a)
			} else {
				// A swap round-trip: the swapped-out copy survives in
				// remote memory; the sequence just needs a live instance
				// to swap back into.
				sc.decodeQ.PushFront(rec.a)
			}
			p.freeXfer(idx)
			continue
		}
		p.m.Requeued++
		if int(rec.src) == id {
			sc.prefillQ.PushFront(rec.a.req)
			p.freeActive(rec.a)
			p.freeXfer(idx)
			continue
		}
		dst := sc.pickDecodeDst()
		dstID := len(sc.prefills) + dst
		if p.nodeOf[rec.src] == p.nodeOf[dstID] {
			// The retarget landed inside the source's scale-up node:
			// the same bypass finishPrefillReq applies — deliver
			// immediately over the node interconnect instead of
			// retransmitting on the fabric.
			p.recordTTFT(now-float64(rec.a.req.Arrival), rec.a.req.Class)
			sc.decodeQ.PushBack(rec.a)
			p.freeXfer(idx)
			continue
		}
		rec.dst = int32(dstID)
		rec.tid = sc.cs.fab.Start(p.epBase+int(rec.src), p.epBase+dstID, rec.bytes,
			prioTransfer+sc.decodes[dst].prio, sc.cs.xferH, packArg(p.idx, int(idx)))
		live[w] = idx
		w++
	}
	p.liveXfers = live[:w]
}

//litegpu:hotpath
func (sc *staticSched) recovered(id int, now float64) {
	if id < len(sc.prefills) {
		sc.prefills[id].freeAt = now
	}
}

// clearTail nils pointers beyond w so truncated slices do not retain
// recycled or requeued requests.
//
//litegpu:hotpath
func clearTail(s []*activeReq, w int) {
	for i := w; i < len(s); i++ {
		s[i] = nil
	}
}
