package serve

import (
	"context"
	"fmt"
	"runtime"

	"litegpu/internal/failure"
	"litegpu/internal/hw"
	"litegpu/internal/inference"
	"litegpu/internal/kv"
	"litegpu/internal/model"
	"litegpu/internal/network"
	"litegpu/internal/obs"
	"litegpu/internal/sweep"
	"litegpu/internal/tco"
	"litegpu/internal/trace"
	"litegpu/internal/units"
)

// SLO is the attainment contract a capacity plan must meet. The latency
// limits themselves come from the inference Options (TTFTLimit,
// TBTLimit); the SLO sets what fraction of requests must meet them.
type SLO struct {
	// TTFTAttainment and TBTAttainment are the required fractions of
	// requests meeting the TTFT / TBT limits (default 0.99 each).
	TTFTAttainment float64
	TBTAttainment  float64
	// MinCompletion is the required fraction of arrived requests that
	// finish within the simulation (default 0.95) — it catches decode
	// underprovisioning that per-completed-request attainment alone
	// cannot see, because backlogged requests never produce a sample.
	MinCompletion float64
	// MinAvailability is the required steady-state availability of the
	// deployment when failure injection is enabled (default 0.999): the
	// probability that no more of the deployment's units are down than
	// it has hot spares. It is evaluated analytically
	// (failure.AnalyticAvailability), which is what makes the spare
	// search sound for paper-calibrated AFRs whose failures are far too
	// rare to observe inside a minutes-long simulation. Ignored when
	// failure injection is off.
	MinAvailability float64
}

func (s SLO) withDefaults() SLO {
	if s.TTFTAttainment <= 0 {
		s.TTFTAttainment = 0.99
	}
	if s.TBTAttainment <= 0 {
		s.TBTAttainment = 0.99
	}
	if s.MinCompletion <= 0 {
		s.MinCompletion = 0.95
	}
	if s.MinAvailability <= 0 {
		s.MinAvailability = 0.999
	}
	return s
}

// PlanRequest parameterizes the capacity search.
type PlanRequest struct {
	GPU   hw.GPU
	Model model.Transformer
	Opts  inference.Options

	// Workload generates the request stream the plan must serve; its
	// Rate and Seed fields are used as-is.
	Workload trace.Generator

	// Horizon is the arrival window in seconds (default 300). The
	// simulation runs a drain window past it so in-flight requests can
	// finish.
	Horizon units.Seconds
	// Drain extends the simulation past the arrival horizon (default 120).
	Drain units.Seconds

	// Scheduler is the serving discipline to size (default
	// StaticDisaggregated). Schedulers, when non-empty, overrides it
	// with a set of candidate policies: each is sized independently and
	// the cheapest feasible plan (by $/Mtoken) wins — so the planner
	// answers not just "how many instances" but "which scheduler".
	Scheduler  SchedulerPolicy
	Schedulers []SchedulerPolicy

	// PrefillChunk is the ChunkedPrefill chunk size in prompt tokens
	// (default 512); ignored by the other policies.
	PrefillChunk int

	// Network selects the fabric the sizing simulations run on AND the
	// fabric the plan is priced over. The zero value keeps the
	// historical behavior: an infinite in-loop fabric, priced as a
	// folded Clos over co-packaged optics and packet switches (the
	// default that used to be hard-coded here regardless of deployment
	// size). Fabrics, when non-empty, overrides it with a set of
	// candidate designs: the fabric joins scheduler and spares as a
	// search axis — every (scheduler, fabric) pair is sized
	// independently with that fabric in the event loop, priced through
	// the tco/network cost models at the resulting deployment scale,
	// checked for physical feasibility (cable reach at that scale),
	// and the cheapest feasible plan per Mtoken wins. See
	// DefaultFabricCandidates for a sensible axis.
	Network NetworkConfig
	Fabrics []NetworkConfig

	// KV selects the KV-cache memory model the sizing simulations run
	// under. The zero value keeps the historical behavior: decode
	// memory is infinite and admission never blocks on cache blocks.
	// KVPolicies, when non-empty, overrides it with a set of candidate
	// memory configs: the KV policy joins scheduler and fabric as a
	// search axis — every (scheduler, fabric, kv) triple is sized
	// independently and the cheapest feasible plan per Mtoken wins. See
	// kv.DefaultPolicyCandidates for a sensible axis.
	KV         kv.Config
	KVPolicies []kv.Config

	// Client attaches closed-loop client behavior (deadlines, retries
	// with backoff, abandonment) to every sizing simulation. The zero
	// value keeps the historical open-loop clients. Sizing against
	// impatient clients is more conservative than it looks: retries
	// re-prefill, so an underprovisioned candidate fails the completion
	// floor faster than an open-loop run would show.
	Client ClientConfig

	// Admission selects the overload gate the sizing simulations run
	// behind (zero = admit everything, the historical behavior).
	// Admissions, when non-empty, overrides it with a set of candidate
	// gates: admission joins scheduler, fabric, and kv as a search axis
	// — every (scheduler, fabric, kv, admission) tuple is sized
	// independently and the cheapest feasible plan per Mtoken wins.
	Admission  AdmissionConfig
	Admissions []AdmissionConfig

	// Autoscale attaches the elastic control loop to every sizing
	// simulation (zero = all instances always live). An autoscaled plan
	// sizes the provisioned fleet; MeanLiveInstances in the plan's
	// metrics reports how much of it the control loop actually kept
	// unparked.
	Autoscale AutoscaleConfig

	// Straggler attaches the persistent slow-instance model to every
	// sizing simulation (zero = uniform instances), so the plan holds
	// on a fleet with realistic performance spread.
	Straggler StragglerConfig

	// PrefillGPUs and DecodeGPUs set the tensor-parallel degree per
	// instance; zero means the smallest degree the model fits on.
	// Colocated policies run one instance kind at the larger of the two
	// degrees (their instances must fit both phases).
	PrefillGPUs int
	DecodeGPUs  int

	// MaxPrefillBatch and MaxDecodeBatch default to 4 and 64.
	MaxPrefillBatch int
	MaxDecodeBatch  int

	// MaxInstances caps the search per pool — per phase pool for the
	// static policy, over the colocated instance count otherwise
	// (default 64).
	MaxInstances int

	// Failures, when Enabled, makes the plan availability-aware: the
	// sizing simulations run with failure injection (so accelerated
	// failure clocks genuinely influence attainment), and after the
	// instance-count search the planner binary-searches the smallest
	// per-pool hot-spare counts meeting SLO.MinAvailability, pricing the
	// spares into the TCO readout. FailureConfig.Spares/Pool overrides
	// are ignored here — spares are what the search decides.
	Failures FailureConfig
	// MaxSpares caps the spare search (default 16).
	MaxSpares int

	// NoSnapshotReuse disables the planner's snapshot/fork reuse: with
	// failure injection enabled, the availability leg normally replays
	// only the post-first-failure suffix of the winning candidate's
	// sizing run at the chosen spare count (or skips the re-simulation
	// entirely when no failure fired), instead of re-running it from
	// t=0. The chosen plan and its metrics are byte-identical either
	// way — this switch exists for A/B verification and benchmarking.
	NoSnapshotReuse bool

	// Workers caps the planner's worker pool (0 = GOMAXPROCS, 1 =
	// sequential). Candidate policies are sized concurrently, and within
	// each policy the doubling phase probes up to Workers ladder points
	// speculatively per round. The chosen plan is byte-identical at any
	// worker count: speculation only changes how many candidates are
	// simulated, never which one is selected.
	Workers int

	// Trace, when non-nil, receives the planner's decision record: one
	// obs.PlanCandidate per (scheduler, fabric, kv, admission)
	// combination in enumeration order, carrying every sizing rung the
	// search walked (doubling-ladder probes plus refinement steps, in
	// the order the equivalent sequential search would have tried them),
	// the settled deployment, and why the candidate won or lost. The
	// trace is deterministic at any worker count: speculative ladder
	// points that the sequential search would never have reached are
	// evaluated but not recorded.
	Trace *obs.PlanTrace
}

// Plan is a feasible deployment returned by PlanCapacity.
type Plan struct {
	// Config is the winning deployment; Config.Scheduler names the
	// policy that won when several were in the running.
	Config  Config
	Metrics Metrics
	// TotalGPUs is the full accelerator count across the deployment,
	// including hot spares when the plan is availability-aware.
	TotalGPUs int
	// Spares is the hot-spare unit count the availability search added
	// (zero when failure injection is off). Spares are shared across
	// the deployment's instances — they are interchangeable units of
	// the same GPU type.
	Spares int
	// Availability is the analytic steady-state availability of the
	// spared deployment: the probability that no more units are down
	// than there are spares. 1 when failure injection is off.
	Availability float64
	// Fabric names the network topology the plan is priced over (and,
	// when the request put the fabric in the loop, simulated on) at the
	// deployment's scale — e.g. "clos-2t(24)". Config.Network carries
	// the design choice itself.
	Fabric string
	// Cost is the TCO breakdown of the deployment at the simulated
	// sustained throughput, over the plan's fabric; its CostPerMTokens
	// field is the $/Mtoken readout.
	Cost tco.Breakdown
}

// PlanCapacity answers the operator's sizing question: how many
// instances of the given GPU does it take to serve the workload at its
// arrival rate while meeting the SLO attainment targets — and, when
// PlanRequest.Schedulers lists several policies or PlanRequest.Fabrics
// lists several network designs, which scheduling discipline and which
// fabric do it cheapest?
//
// For the static policy it doubles both phase pools until the
// deployment is feasible, then binary-searches each pool down
// independently (prefill first, against a generous decode pool; then
// decode, against the chosen prefill pool) — attainment is monotone in
// each pool size, which makes the bisection sound. Colocated policies
// search their single instance-count dimension the same way. Every
// candidate plan is priced through the TCO model; with several
// candidate policies the cheapest feasible plan per simulated Mtoken
// wins.
func PlanCapacity(req PlanRequest, slo SLO) (Plan, error) {
	slo = slo.withDefaults()
	if req.Horizon <= 0 {
		req.Horizon = 300
	}
	if req.Drain <= 0 {
		req.Drain = 120
	}
	if req.MaxPrefillBatch <= 0 {
		req.MaxPrefillBatch = 4
	}
	if req.MaxDecodeBatch <= 0 {
		req.MaxDecodeBatch = 64
	}
	if req.MaxInstances <= 0 {
		req.MaxInstances = 64
	}
	if req.MaxSpares <= 0 {
		req.MaxSpares = 16
	}
	if req.PrefillGPUs <= 0 {
		g, err := inference.MinFeasibleTP(req.GPU, req.Model, inference.Prefill, req.Opts)
		if err != nil {
			return Plan{}, err
		}
		req.PrefillGPUs = g
	}
	if req.DecodeGPUs <= 0 {
		g, err := inference.MinFeasibleTP(req.GPU, req.Model, inference.Decode, req.Opts)
		if err != nil {
			return Plan{}, err
		}
		req.DecodeGPUs = g
	}

	reqs, err := req.Workload.Generate(req.Horizon)
	if err != nil {
		return Plan{}, err
	}
	if len(reqs) == 0 {
		return Plan{}, fmt.Errorf("serve: workload generated no requests over %v", req.Horizon)
	}
	simHorizon := req.Horizon + req.Drain

	// Candidates are (scheduler, fabric) pairs, sized concurrently over
	// the shared worker pool; an infeasible candidate is a per-candidate
	// outcome, not a search failure, so errors ride inside the result
	// instead of cancelling siblings. Selection stays sequential in
	// enumeration order (policies outer, fabrics inner) — the cheapest
	// feasible plan per Mtoken wins, first-listed on ties — so the
	// answer is byte-identical at any worker count.
	policies := req.Schedulers
	if len(policies) == 0 {
		policies = []SchedulerPolicy{req.Scheduler}
	}
	fabrics := req.Fabrics
	if len(fabrics) == 0 {
		fabrics = []NetworkConfig{req.Network}
	}
	kvcs := req.KVPolicies
	if len(kvcs) == 0 {
		kvcs = []kv.Config{req.KV}
	}
	adms := req.Admissions
	if len(adms) == 0 {
		adms = []AdmissionConfig{req.Admission}
	}
	type candidate struct {
		pol SchedulerPolicy
		nc  NetworkConfig
		kvc kv.Config
		adm AdmissionConfig
	}
	var cands []candidate
	for _, pol := range policies {
		for _, nc := range fabrics {
			for _, kvc := range kvcs {
				for _, adm := range adms {
					cands = append(cands, candidate{pol: pol, nc: nc, kvc: kvc, adm: adm})
				}
			}
		}
	}
	if req.Trace != nil {
		// Pre-size the trace so each candidate's sizing goroutine owns
		// its slot — concurrent planPolicy calls never share a record.
		req.Trace.Candidates = make([]obs.PlanCandidate, len(cands))
		for i, c := range cands {
			tc := &req.Trace.Candidates[i]
			tc.Scheduler = c.pol.String()
			if c.nc.Enabled() {
				tc.Fabric = c.nc.String()
			}
			if c.kvc.Enabled() {
				tc.KV = c.kvc.String()
			}
			if c.adm.Policy != AdmitAll {
				tc.Admission = fmt.Sprintf("%s(limit=%d)", c.adm.Policy, c.adm.QueueLimit)
			}
		}
	}
	// Split the worker budget between the two nesting levels so total
	// concurrency stays ~Workers: candWorkers candidates in flight,
	// each probing waveWorkers ladder points per doubling round.
	workers := planWorkers(req)
	candWorkers := min(workers, len(cands))
	waveWorkers := max(1, workers/candWorkers)
	type polOutcome struct {
		plan Plan
		err  error
	}
	outcomes, err := sweep.RunN(context.Background(), candWorkers, cands,
		func(_ context.Context, i int, c candidate) (polOutcome, error) {
			var tc *obs.PlanCandidate
			if req.Trace != nil {
				tc = &req.Trace.Candidates[i]
			}
			plan, perr := planPolicy(req, slo, c.pol, c.nc, c.kvc, c.adm, reqs, simHorizon, waveWorkers, tc)
			return polOutcome{plan: plan, err: perr}, nil
		})
	if err != nil {
		return Plan{}, err
	}
	var best Plan
	var bestOK bool
	var bestIdx int
	var firstErr error
	for i, o := range outcomes {
		if o.err != nil {
			if firstErr == nil {
				firstErr = o.err
			}
			continue
		}
		if !bestOK || o.plan.Cost.CostPerMTokens < best.Cost.CostPerMTokens {
			best = o.plan
			bestOK = true
			bestIdx = i
		}
	}
	if req.Trace != nil {
		for i := range outcomes {
			o := &outcomes[i]
			tc := &req.Trace.Candidates[i]
			if o.err != nil {
				tc.Feasible = false
				tc.Reason = o.err.Error()
				continue
			}
			tc.Feasible = true
			p := o.plan
			if p.Config.Scheduler.Colocated() {
				tc.PrefillInstances = p.Config.Instances
			} else {
				tc.PrefillInstances = p.Config.PrefillInstances
				tc.DecodeInstances = p.Config.DecodeInstances
			}
			tc.Spares = p.Spares
			tc.TotalGPUs = p.TotalGPUs
			if req.Failures.Enabled {
				tc.Availability = p.Availability
			}
			tc.CostPerMTok = float64(p.Cost.CostPerMTokens)
			if bestOK && i == bestIdx {
				tc.Winner = true
				tc.Reason = fmt.Sprintf("won: cheapest feasible plan at $%.2f/Mtok", p.Cost.CostPerMTokens)
			} else if bestOK {
				tc.Reason = fmt.Sprintf("feasible but $%.2f/Mtok loses to winner's $%.2f/Mtok",
					p.Cost.CostPerMTokens, best.Cost.CostPerMTokens)
			}
		}
	}
	if !bestOK {
		return Plan{}, firstErr
	}
	return best, nil
}

// planWorkers resolves the planner's worker-pool size.
func planWorkers(req PlanRequest) int {
	if req.Workers > 0 {
		return req.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// planPolicy sizes one (scheduling policy, fabric, kv policy,
// admission gate) candidate's cheapest feasible deployment, probing up
// to waveWorkers doubling-ladder points concurrently. The fabric rides
// inside every sizing simulation (nc zero = the historical infinite
// fabric) and prices the final plan; the kv config rides inside every
// sizing simulation too (kvc zero = the historical infinite-memory
// decode), as do the request's closed-loop client, autoscaler, and
// straggler settings and the candidate's admission gate. When tc is
// non-nil the search appends one obs.PlanRung per sizing decision it
// makes — only the rungs the equivalent sequential search would have
// walked, so the record is identical at any worker count.
func planPolicy(req PlanRequest, slo SLO, pol SchedulerPolicy, nc NetworkConfig, kvc kv.Config, adm AdmissionConfig, reqs []trace.Request, simHorizon units.Seconds, waveWorkers int, tc *obs.PlanCandidate) (Plan, error) {
	baseCfg := Config{
		GPU: req.GPU, Model: req.Model, Opts: req.Opts,
		Scheduler:    pol,
		PrefillChunk: req.PrefillChunk,
		PrefillGPUs:  req.PrefillGPUs, DecodeGPUs: req.DecodeGPUs,
		MaxPrefillBatch: req.MaxPrefillBatch, MaxDecodeBatch: req.MaxDecodeBatch,
		Network:   nc,
		KV:        kvc,
		Client:    req.Client,
		Admission: adm,
		Autoscale: req.Autoscale,
		Straggler: req.Straggler,
	}
	// Colocated policies derive InstanceGPUs = max(PrefillGPUs,
	// DecodeGPUs) from baseCfg (an instance must fit both phases).

	// evalPoint runs one candidate deployment — a full discrete-event
	// simulation of the whole request stream — and grades it against the
	// SLO. It is pure (no shared state), so the doubling phase can probe
	// several points concurrently.
	type attemptResult struct {
		m  Metrics
		ok bool
		// fork is the sizing run's snapshot/fork handle, kept when
		// failure injection is on and reuse is enabled: if this point
		// wins the search, the availability leg replays its post-failure
		// suffix at the chosen spare count instead of re-simulating from
		// t=0 (see snapshot.go).
		fork *failureFork
	}
	forkable := req.Failures.Enabled && !req.NoSnapshotReuse
	evalPoint := func(p, d int) (attemptResult, error) {
		cfg := baseCfg
		if pol.Colocated() {
			cfg.Instances = p
		} else {
			cfg.PrefillInstances, cfg.DecodeInstances = p, d
		}
		var m Metrics
		var fork *failureFork
		var err error
		if forkable {
			f := req.Failures
			f.Spares = 0
			m, fork, err = runForkable(cfg, f, reqs, simHorizon)
		} else {
			m, err = planSim(cfg, req, 0, reqs, simHorizon)
		}
		if err != nil {
			return attemptResult{}, err
		}
		ok := m.Dropped == 0 &&
			m.TTFTAttainment >= slo.TTFTAttainment &&
			m.TBTAttainment >= slo.TBTAttainment &&
			m.Arrived > 0 &&
			float64(m.Completed) >= slo.MinCompletion*float64(m.Arrived)
		return attemptResult{m: m, ok: ok, fork: fork}, nil
	}

	// rung records one sizing decision in the candidate's trace.
	rung := func(p, d int, r attemptResult, refine bool) {
		if tc == nil {
			return
		}
		tc.Rungs = append(tc.Rungs, obs.PlanRung{
			Prefill: p, Decode: d, Refine: refine,
			TTFTAttainment: r.m.TTFTAttainment,
			TBTAttainment:  r.m.TBTAttainment,
			Completed:      r.m.Completed,
			Arrived:        r.m.Arrived,
			Feasible:       r.ok,
		})
	}

	// attempt memoizes evalPoint on the pool sizes: the growth phase,
	// the bisections, and the final joint check can revisit a point.
	// Every attempt call is a refinement decision — memoized or not —
	// so each records a rung; attempt only runs on the sequential
	// search spine, never inside speculative goroutines.
	tried := make(map[[2]int]attemptResult)
	attempt := func(p, d int) (Metrics, bool, error) {
		if r, seen := tried[[2]int{p, d}]; seen {
			rung(p, d, r, true)
			return r.m, r.ok, nil
		}
		r, err := evalPoint(p, d)
		if err != nil {
			return Metrics{}, false, err
		}
		tried[[2]int{p, d}] = r
		rung(p, d, r, true)
		return r.m, r.ok, nil
	}

	// Grow until feasible, probing the doubling ladder speculatively:
	// each round evaluates up to waveWorkers upcoming ladder points
	// concurrently, then scans them in ladder order — so the point
	// chosen (the first feasible one) is exactly what the sequential
	// doubling loop would have picked, at any worker count. The
	// colocated policies fix d at 1 and only grow their single
	// instance-count dimension.
	var ladder [][2]int
	for v := 1; ; {
		dd := 1
		if !pol.Colocated() {
			dd = v
		}
		ladder = append(ladder, [2]int{v, dd})
		if v >= req.MaxInstances {
			break
		}
		v = min(v*2, req.MaxInstances)
	}
	grown := -1
	for lo := 0; lo < len(ladder) && grown < 0; lo += waveWorkers {
		hi := min(lo+waveWorkers, len(ladder))
		wave := ladder[lo:hi]
		type waveOut struct {
			r   attemptResult
			err error
		}
		outs, err := sweep.RunN(context.Background(), waveWorkers, wave,
			func(_ context.Context, _ int, pt [2]int) (waveOut, error) {
				r, perr := evalPoint(pt[0], pt[1])
				return waveOut{r: r, err: perr}, nil
			})
		if err != nil {
			return Plan{}, err
		}
		// Scan in ladder order: an error only surfaces if no smaller
		// point was feasible — the same point the sequential loop would
		// have tripped on; errors past the first feasible point belong
		// to speculative work the sequential loop never ran, and are
		// discarded. Successful speculative points land in the memo for
		// the bisections below.
		for i, o := range outs {
			if o.err != nil {
				if grown < 0 {
					return Plan{}, o.err
				}
				continue
			}
			tried[wave[i]] = o.r
			if grown < 0 {
				// Still climbing: this is a point the sequential doubling
				// loop would have evaluated, so it earns a trace rung.
				rung(wave[i][0], wave[i][1], o.r, false)
			}
			if o.r.ok && grown < 0 {
				grown = lo + i
			}
		}
	}
	if grown < 0 {
		return Plan{}, fmt.Errorf(
			"serve: no deployment within %d instances per pool meets the SLO for %s on %s at %.2f req/s (%s scheduler)",
			req.MaxInstances, req.Model.Name, req.GPU.Name, req.Workload.Rate, pol)
	}
	p, d := ladder[grown][0], ladder[grown][1]

	// Shrink each dimension down to its minimum (for static: prefill
	// against the feasible decode pool, then decode against the minimal
	// prefill pool).
	pMin, err := bisectMin(1, p, func(x int) (bool, error) {
		_, ok, err := attempt(x, d)
		return ok, err
	})
	if err != nil {
		return Plan{}, err
	}
	dMin := d
	if !pol.Colocated() {
		dMin, err = bisectMin(1, d, func(x int) (bool, error) {
			_, ok, err := attempt(pMin, x)
			return ok, err
		})
		if err != nil {
			return Plan{}, err
		}
	}
	m, ok, err := attempt(pMin, dMin)
	if err != nil {
		return Plan{}, err
	}
	// The two one-dimensional searches interact weakly; if the joint
	// minimum misses the SLO, step the pools back up until it holds.
	for !ok {
		if pMin < p {
			pMin++
		} else if dMin < d {
			dMin++
		} else {
			break
		}
		m, ok, err = attempt(pMin, dMin)
		if err != nil {
			return Plan{}, err
		}
	}
	if !ok {
		return Plan{}, fmt.Errorf("serve: %s capacity search failed to converge for %s on %s",
			pol, req.Model.Name, req.GPU.Name)
	}

	cfg := baseCfg
	if pol.Colocated() {
		cfg.Instances = pMin
	} else {
		cfg.PrefillInstances, cfg.DecodeInstances = pMin, dMin
	}
	plan := Plan{
		Config:       cfg,
		Metrics:      m,
		TotalGPUs:    cfg.TotalGPUs(),
		Availability: 1,
	}

	// Availability-aware leg: the spare count joins the search. Spares
	// are extra units of the same GPU type kept hot next to the
	// deployment, so availability is monotone in the spare count and a
	// bisection over the analytic k-out-of-n availability is sound.
	if req.Failures.Enabled {
		spec := failure.Spec{GPU: req.GPU, InstanceGPUs: plan.TotalGPUs}
		fp := scaledParams(req.Failures)
		availAt := func(spares int) float64 {
			spec.Spares = spares
			return failure.AnalyticAvailability(spec, fp)
		}
		if availAt(req.MaxSpares) < slo.MinAvailability {
			return Plan{}, fmt.Errorf(
				"serve: %d spares cannot reach availability %.6f for %d×%s (best %.6f)",
				req.MaxSpares, slo.MinAvailability, plan.TotalGPUs, req.GPU.Name, availAt(req.MaxSpares))
		}
		spares, err := bisectMin(0, req.MaxSpares, func(x int) (bool, error) {
			return availAt(x) >= slo.MinAvailability, nil
		})
		if err != nil {
			return Plan{}, err
		}
		plan.Spares = spares
		plan.Availability = availAt(spares)
		plan.TotalGPUs += spares
		// Re-simulate the final deployment with its spare shelf so the
		// reported metrics include the takeover dynamics. With reuse
		// enabled the winning sizing run already simulated everything up
		// to its first failure, so only the suffix replays (and a run
		// that saw no failure is reused outright) — byte-identical to
		// the full re-simulation either way.
		if fk := tried[[2]int{pMin, dMin}].fork; fk != nil {
			plan.Metrics = fk.runWithSpares(spares)
		} else {
			plan.Metrics, err = planSim(plan.Config, req, spares, reqs, simHorizon)
			if err != nil {
				return Plan{}, err
			}
		}
	}

	// Price the plan over its own fabric, built at the deployment's
	// actual scale — the fix for the historical hard-coded
	// Clos(CoPackagedOptics, PacketSwitch) that priced every plan the
	// same way regardless of size or request. A fabric that cannot
	// physically cable the deployment (copper reach at cluster scale)
	// disqualifies the candidate.
	fabric := nc.TCOTopology(plan.TotalGPUs)
	if nc.Enabled() && !fabric.Feasible() {
		return Plan{}, fmt.Errorf(
			"serve: fabric %s (%s) cannot cable %d×%s — %s reach %.0f m < required %.0f m",
			nc, fabric.Name, plan.TotalGPUs, req.GPU.Name,
			fabric.Link.Name, fabric.Link.Reach, network.RequiredReach(plan.TotalGPUs))
	}
	plan.Fabric = fabric.Name
	costs := tco.DefaultCosts()
	throughput := float64(plan.Metrics.TokensGenerated) / float64(simHorizon)
	plan.Cost = costs.TCO(tco.ClusterSpec{
		GPU:        req.GPU,
		GPUs:       plan.TotalGPUs,
		Fabric:     fabric,
		Throughput: throughput,
	})
	return plan, nil
}

// planSim simulates one candidate deployment, with failure injection
// when the request enables it. Sizing runs use zero spares (the spare
// count is chosen after the instance search), keeping the attainment
// estimate conservative.
func planSim(cfg Config, req PlanRequest, spares int, reqs []trace.Request, horizon units.Seconds) (Metrics, error) {
	f := req.Failures
	f.Spares = spares
	return RunWithFailures(cfg, f, reqs, horizon)
}

// scaledParams applies the failure config's TimeScale to the analytic
// calibration, so an accelerated stress plan sizes spares for the same
// accelerated world its simulations ran in.
func scaledParams(f FailureConfig) failure.Params {
	p := f.params()
	ts := f.timeScale()
	p.RefAFR *= ts
	p.BaseAFR *= ts
	return p
}

// bisectMin returns the smallest x in [lo, hi] with ok(x) true, assuming
// ok is monotone non-decreasing and ok(hi) is true.
func bisectMin(lo, hi int, ok func(int) (bool, error)) (int, error) {
	for lo < hi {
		mid := lo + (hi-lo)/2
		good, err := ok(mid)
		if err != nil {
			return 0, err
		}
		if good {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}
