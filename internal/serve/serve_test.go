package serve

import (
	"math"
	"reflect"
	"testing"

	"litegpu/internal/hw"
	"litegpu/internal/inference"
	"litegpu/internal/model"
	"litegpu/internal/trace"
	"litegpu/internal/units"
)

// smallConfig returns a fast-to-simulate deployment: Llama3-8B on single
// H100s for both pools.
func smallConfig() Config {
	return Config{
		GPU:              hw.H100(),
		Model:            model.Llama3_8B(),
		Opts:             inference.DefaultOptions(),
		PrefillInstances: 1,
		PrefillGPUs:      1,
		DecodeInstances:  1,
		DecodeGPUs:       1,
		MaxPrefillBatch:  4,
		MaxDecodeBatch:   64,
	}
}

func oneRequest(prompt, output int) []trace.Request {
	return []trace.Request{{ID: 0, Arrival: 0, PromptTokens: prompt, OutputTokens: output}}
}

func TestValidate(t *testing.T) {
	good := smallConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.GPU = hw.GPU{} },
		func(c *Config) { c.Model = model.Transformer{} },
		func(c *Config) { c.PrefillInstances = 0 },
		func(c *Config) { c.DecodeInstances = 0 },
		func(c *Config) { c.PrefillGPUs = 0 },
		func(c *Config) { c.DecodeGPUs = 0 },
		func(c *Config) { c.MaxPrefillBatch = 0 },
		func(c *Config) { c.MaxDecodeBatch = 0 },
	}
	for i, mutate := range bad {
		c := smallConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestRunRejectsOversizedModel(t *testing.T) {
	c := smallConfig()
	c.Model = model.Llama3_405B() // cannot fit 1×H100
	if _, err := Run(c, oneRequest(100, 10), 10); err == nil {
		t.Error("oversized model accepted")
	}
}

func TestSingleRequestTTFTMatchesAnalyticalModel(t *testing.T) {
	// One idle engine, one request: simulated TTFT must equal the
	// analytical prefill latency at that prompt length (bucketed to 64).
	cfg := smallConfig()
	prompt := 1536 // exact multiple of the 64-token bucket
	mets, err := Run(cfg, oneRequest(prompt, 5), 600)
	if err != nil {
		t.Fatal(err)
	}
	if mets.Completed != 1 {
		t.Fatalf("completed = %d, want 1", mets.Completed)
	}
	opts := cfg.Opts
	opts.PromptLen = prompt
	want, err := inference.Run(cfg.GPU, cfg.Model, inference.Prefill, 1, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(mets.TTFT.Mean-float64(want.Latency)) / float64(want.Latency); rel > 0.01 {
		t.Errorf("simulated TTFT %v vs analytical %v", mets.TTFT.Mean, want.Latency)
	}
}

func TestSingleRequestTBTMatchesAnalyticalModel(t *testing.T) {
	cfg := smallConfig()
	mets, err := Run(cfg, oneRequest(1500, 50), 600)
	if err != nil {
		t.Fatal(err)
	}
	// An uncontended request emits one token per consecutive step, so
	// its 49 inter-token intervals each span exactly one analytical
	// decode-step latency.
	want, err := inference.Run(cfg.GPU, cfg.Model, inference.Decode, 1, 1, cfg.Opts)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(mets.TBT.Mean-float64(want.Latency)) / float64(want.Latency); rel > 0.01 {
		t.Errorf("simulated TBT %v vs analytical %v", mets.TBT.Mean, want.Latency)
	}
}

func TestSingleTokenOutputTBTGuard(t *testing.T) {
	// One output token has zero inter-token intervals; the TBT sample
	// must fall back to the lone step duration, not divide by zero.
	cfg := smallConfig()
	mets, err := Run(cfg, oneRequest(1500, 1), 600)
	if err != nil {
		t.Fatal(err)
	}
	if mets.Completed != 1 {
		t.Fatalf("completed = %d, want 1", mets.Completed)
	}
	step, err := inference.Run(cfg.GPU, cfg.Model, inference.Decode, 1, 1, cfg.Opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(mets.TBT.Mean, 0) || math.IsNaN(mets.TBT.Mean) {
		t.Fatalf("TBT mean = %v for single-token output", mets.TBT.Mean)
	}
	if rel := math.Abs(mets.TBT.Mean-float64(step.Latency)) / float64(step.Latency); rel > 0.01 {
		t.Errorf("single-token TBT %v vs step latency %v", mets.TBT.Mean, step.Latency)
	}
}

func TestOversizedPromptIsDroppedNotStarved(t *testing.T) {
	// A prompt whose KV cache alone exceeds GPU capacity can never fit a
	// prefill pass: it must be counted in Dropped, and requests queued
	// behind it must still be served.
	cfg := smallConfig()
	reqs := []trace.Request{
		{ID: 0, Arrival: 0, PromptTokens: 5_000_000, OutputTokens: 5},
		{ID: 1, Arrival: 0.5, PromptTokens: 800, OutputTokens: 5},
	}
	mets, err := Run(cfg, reqs, 600)
	if err != nil {
		t.Fatal(err)
	}
	if mets.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", mets.Dropped)
	}
	if mets.Completed != 1 {
		t.Errorf("Completed = %d, want 1 (the feasible request behind the oversized one)", mets.Completed)
	}
	if mets.Arrived != 2 {
		t.Errorf("Arrived = %d, want 2", mets.Arrived)
	}
}

func TestThroughputUnderLoad(t *testing.T) {
	// A steady stream at moderate rate: everything completes, SLOs hold.
	cfg := smallConfig()
	gen := trace.CodingWorkload(0.5, 42)
	reqs, err := gen.Generate(300)
	if err != nil {
		t.Fatal(err)
	}
	mets, err := Run(cfg, reqs, 600)
	if err != nil {
		t.Fatal(err)
	}
	if mets.Arrived == 0 {
		t.Fatal("no arrivals")
	}
	if mets.Completed < mets.Arrived*8/10 {
		t.Errorf("completed %d of %d; expected ≥80%%", mets.Completed, mets.Arrived)
	}
	if mets.TTFTAttainment < 0.95 {
		t.Errorf("TTFT attainment = %v at low load, want ≥0.95", mets.TTFTAttainment)
	}
	if mets.TokensGenerated == 0 {
		t.Error("no tokens generated")
	}
}

func TestUtilizationBounds(t *testing.T) {
	cfg := smallConfig()
	gen := trace.CodingWorkload(1.0, 7)
	reqs, err := gen.Generate(120)
	if err != nil {
		t.Fatal(err)
	}
	mets, err := Run(cfg, reqs, 240)
	if err != nil {
		t.Fatal(err)
	}
	for name, u := range map[string]float64{
		"prefill": mets.PrefillUtilization,
		"decode":  mets.DecodeUtilization,
	} {
		if u < 0 || u > 1.0001 {
			t.Errorf("%s utilization = %v out of [0,1]", name, u)
		}
	}
}

func TestOverloadDegradesTTFT(t *testing.T) {
	cfg := smallConfig()
	lowGen := trace.CodingWorkload(0.2, 5)
	low, err := lowGen.Generate(200)
	if err != nil {
		t.Fatal(err)
	}
	highGen := trace.CodingWorkload(8.0, 5)
	high, err := highGen.Generate(200)
	if err != nil {
		t.Fatal(err)
	}
	mLow, err := Run(cfg, low, 400)
	if err != nil {
		t.Fatal(err)
	}
	mHigh, err := Run(cfg, high, 400)
	if err != nil {
		t.Fatal(err)
	}
	if mHigh.TTFT.P90 <= mLow.TTFT.P90 {
		t.Errorf("overload TTFT p90 (%v) should exceed light-load (%v)",
			mHigh.TTFT.P90, mLow.TTFT.P90)
	}
}

func TestMoreDecodeInstancesHelpTBTQueueing(t *testing.T) {
	gen := trace.CodingWorkload(4.0, 13)
	reqs, err := gen.Generate(200)
	if err != nil {
		t.Fatal(err)
	}
	one := smallConfig()
	one.MaxDecodeBatch = 8 // force queueing pressure
	two := one
	two.DecodeInstances = 3
	mOne, err := Run(one, reqs, 400)
	if err != nil {
		t.Fatal(err)
	}
	mTwo, err := Run(two, reqs, 400)
	if err != nil {
		t.Fatal(err)
	}
	if mTwo.Completed < mOne.Completed {
		t.Errorf("more decode instances completed fewer requests: %d vs %d",
			mTwo.Completed, mOne.Completed)
	}
}

func TestLitePoolMatchesH100Pool(t *testing.T) {
	// The paper's substitution: one H100 decode instance vs four Lite
	// GPUs serving the same model — throughput should be comparable
	// (equal aggregate capability, modest collective overhead).
	gen := trace.CodingWorkload(1.0, 21)
	reqs, err := gen.Generate(200)
	if err != nil {
		t.Fatal(err)
	}
	h := smallConfig()
	l := h
	l.GPU = hw.Lite()
	l.PrefillGPUs = 4
	l.DecodeGPUs = 4
	mh, err := Run(h, reqs, 400)
	if err != nil {
		t.Fatal(err)
	}
	ml, err := Run(l, reqs, 400)
	if err != nil {
		t.Fatal(err)
	}
	if mh.Completed == 0 {
		t.Fatal("H100 run completed nothing")
	}
	ratio := float64(ml.Completed) / float64(mh.Completed)
	if ratio < 0.80 || ratio > 1.25 {
		t.Errorf("Lite/H100 completion ratio = %v, want ≈1", ratio)
	}
}

func TestNoRequests(t *testing.T) {
	mets, err := Run(smallConfig(), nil, 60)
	if err != nil {
		t.Fatal(err)
	}
	if mets.Arrived != 0 || mets.Completed != 0 {
		t.Errorf("empty run produced %+v", mets)
	}
}

func TestHorizonBeforeFirstArrival(t *testing.T) {
	// Every request arrives after the horizon: the simulation must end
	// immediately with empty metrics rather than spin or count phantom
	// arrivals.
	reqs := []trace.Request{
		{ID: 0, Arrival: 100, PromptTokens: 500, OutputTokens: 5},
		{ID: 1, Arrival: 200, PromptTokens: 500, OutputTokens: 5},
	}
	mets, err := Run(smallConfig(), reqs, 50)
	if err != nil {
		t.Fatal(err)
	}
	if mets.Arrived != 0 || mets.Completed != 0 || mets.Dropped != 0 || mets.TokensGenerated != 0 {
		t.Errorf("pre-arrival horizon produced activity: %+v", mets)
	}
	if mets.PrefillUtilization != 0 || mets.DecodeUtilization != 0 {
		t.Errorf("idle run reports utilization: %+v", mets)
	}
}

func TestDecodeCapClampedByKVCapacity(t *testing.T) {
	// Llama3-70B on one H100 leaves ~10 GB for KV, far below what a
	// 100k-request decode batch would need. A config with an absurd
	// MaxDecodeBatch must behave identically to one capped at the KV
	// limit, proving the clamp is what actually bounds occupancy.
	base := Config{
		GPU:              hw.H100(),
		Model:            model.Llama3_70B(),
		Opts:             inference.DefaultOptions(),
		PrefillInstances: 1,
		PrefillGPUs:      1,
		DecodeInstances:  1,
		DecodeGPUs:       1,
		MaxPrefillBatch:  4,
		MaxDecodeBatch:   100000,
	}
	maxKV := inference.MaxFeasibleBatch(base.GPU, base.Model, inference.Decode, base.DecodeGPUs, base.Opts)
	if maxKV <= 0 || maxKV >= base.MaxDecodeBatch {
		t.Fatalf("test premise broken: maxKV = %d", maxKV)
	}
	clamped := base
	clamped.MaxDecodeBatch = maxKV

	gen := trace.CodingWorkload(2.0, 11)
	reqs, err := gen.Generate(120)
	if err != nil {
		t.Fatal(err)
	}
	mAbsurd, err := Run(base, reqs, 240)
	if err != nil {
		t.Fatal(err)
	}
	mClamped, err := Run(clamped, reqs, 240)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mAbsurd, mClamped) {
		t.Errorf("KV clamp not effective: absurd cap %+v vs clamped %+v", mAbsurd, mClamped)
	}
	if mAbsurd.Completed == 0 {
		t.Error("clamped run served nothing")
	}
}

func TestHorizonCutsOffLateArrivals(t *testing.T) {
	reqs := []trace.Request{
		{ID: 0, Arrival: 1, PromptTokens: 100, OutputTokens: 5},
		{ID: 1, Arrival: units.Seconds(1e6), PromptTokens: 100, OutputTokens: 5},
	}
	mets, err := Run(smallConfig(), reqs, 60)
	if err != nil {
		t.Fatal(err)
	}
	if mets.Arrived != 1 {
		t.Errorf("arrived = %d, want 1 (second request beyond horizon)", mets.Arrived)
	}
}
