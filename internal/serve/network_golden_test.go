package serve

import (
	"testing"

	"litegpu/internal/failure"
)

// networkGoldenFile extends the byte-identity corpus to
// network-in-the-loop runs. Unlike the static and scheduler corpora
// (captured at pre-refactor commits), this one pins the fabric
// simulator from its first commit: the pre-PR-8 Metrics field set —
// transfer summaries included — in %x, so any future rework of netsim
// or the handoff wiring must reproduce these runs bit-for-bit or
// knowingly regenerate.
const networkGoldenFile = "testdata/network_goldens.txt"

func networkGoldenScenarios() []goldenScenario {
	lite := l70Config()
	lite.PrefillInstances = 2

	packet := lite
	packet.Network = pluggablePacket()

	circuit := lite
	circuit.Network = cpoCircuit()

	stressed := lite
	stressed.Network = pluggablePacket()
	stressed.Network.LatencyScale = 1e4

	// Heterogeneous cluster behind join-shortest-queue: the 2-GPU H100
	// pool stays intra-node (ingress transfers only), the Lite pool
	// pays KV handoffs too, and both contend on the same fabric.
	hetero := clusterOf(smallConfig(), l70Config())
	hetero.Router = JoinShortestQueue
	hetero.Network = pluggablePacket()

	// The failure regime that actually bites (no drain, decode-heavy,
	// accelerated failure clock) with the fabric in the loop: dead
	// instances mid-handoff exercise the retarget/retransmit path.
	failCluster := clusterOf(packet)
	p := failure.DefaultParams()
	p.MTTR = 300
	p.RecoveryTime = 5
	failCluster.Failures = FailureConfig{
		Enabled:   true,
		Params:    p,
		Spares:    1,
		TimeScale: 8e6,
		Seed:      99,
	}

	return []goldenScenario{
		{name: "lite70-clos-pluggable-packet", cluster: clusterOf(packet), rate: 1.2, seed: 42, arrive: 300, horizon: 420},
		{name: "lite70-flatcircuit-cpo", cluster: clusterOf(circuit), rate: 1.2, seed: 42, arrive: 300, horizon: 420},
		{name: "lite70-latency-x1e4", cluster: clusterOf(stressed), rate: 1.2, seed: 42, arrive: 300, horizon: 420},
		{name: "hetero-jsq-fabric", cluster: hetero, rate: 2.0, seed: 17, arrive: 300, horizon: 500},
		{name: "lite70-fabric-fail-nodrain", cluster: failCluster, rate: 1.2, seed: 11, conv: true, arrive: 300, horizon: 300},
	}
}

// TestNetworkGoldens pins the fabric-enabled simulator byte-for-byte.
// Regenerate (only when knowingly changing network semantics) with:
//
//	LITEGPU_UPDATE_GOLDENS=1 go test ./internal/serve -run Golden
func TestNetworkGoldens(t *testing.T) {
	compareGoldens(t, networkGoldenFile, goldenReport(t, networkGoldenScenarios(), viewPreKV))
}
