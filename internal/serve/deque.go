package serve

// deque is a growable ring buffer used for the scheduler queues. Unlike
// the `q = q[1:]` idiom it replaces, popping from the front never
// abandons backing storage, so a warm queue cycles requests through the
// same allocation for the whole simulation — the hot path allocates only
// when a queue reaches a new high-water mark.
//
// The zero value is an empty, ready-to-use deque.
type deque[T any] struct {
	buf  []T // len(buf) is always a power of two (or zero)
	head int
	n    int
}

func (d *deque[T]) Len() int { return d.n }

// At returns the i-th element from the front (0 ≤ i < Len).
//
//litegpu:hotpath
func (d *deque[T]) At(i int) T {
	return d.buf[(d.head+i)&(len(d.buf)-1)]
}

// PushBack appends v at the tail.
//
//litegpu:hotpath
func (d *deque[T]) PushBack(v T) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.n)&(len(d.buf)-1)] = v
	d.n++
}

// PushFront inserts v before the current front.
//
//litegpu:hotpath
func (d *deque[T]) PushFront(v T) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.head = (d.head - 1) & (len(d.buf) - 1)
	d.buf[d.head] = v
	d.n++
}

// PopFront removes and returns the front element. The vacated slot is
// zeroed so popped pointers are not retained by the buffer.
//
//litegpu:hotpath
func (d *deque[T]) PopFront() T {
	v := d.buf[d.head]
	var zero T
	d.buf[d.head] = zero
	d.head = (d.head + 1) & (len(d.buf) - 1)
	d.n--
	return v
}

// CopyPrefix appends the first n elements (front first) to dst and
// returns it, without removing them.
//
//litegpu:hotpath
func (d *deque[T]) CopyPrefix(dst []T, n int) []T {
	for i := 0; i < n; i++ {
		dst = append(dst, d.At(i))
	}
	return dst
}

// DiscardFront removes the first n elements, zeroing their slots.
//
//litegpu:hotpath
func (d *deque[T]) DiscardFront(n int) {
	var zero T
	for i := 0; i < n; i++ {
		d.buf[d.head] = zero
		d.head = (d.head + 1) & (len(d.buf) - 1)
	}
	d.n -= n
}

// grow doubles the buffer (starting at 16), re-linearizing the ring so
// head masks stay valid.
func (d *deque[T]) grow() {
	size := len(d.buf) * 2
	if size == 0 {
		size = 16
	}
	buf := make([]T, size)
	for i := 0; i < d.n; i++ {
		buf[i] = d.At(i)
	}
	d.buf = buf
	d.head = 0
}
