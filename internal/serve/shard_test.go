package serve

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"litegpu/internal/hw"
)

// hexCluster renders a ClusterMetrics in full-precision hex-float form,
// one line per pool plus the aggregate — the same byte-identity framing
// the golden corpus uses, so "equal strings" means "equal bits".
func hexCluster(cm ClusterMetrics) string {
	var b strings.Builder
	for _, pm := range cm.Pools {
		fmt.Fprintf(&b, "pool %s: %x\n", pm.Name, pm.Metrics)
	}
	fmt.Fprintf(&b, "total: %x\n", cm.Total)
	return b.String()
}

// shardScenarios covers both routers, heterogeneous pools, pool counts
// that do and do not divide evenly across shards, and failure injection
// (which exercises the global instance-index seed offsets).
func shardScenarios() []struct {
	name string
	cc   ClusterConfig
	rate float64
	seed uint64
} {
	small := smallConfig()
	lite4 := small
	lite4.GPU = hw.Lite()
	lite4.PrefillGPUs = 4
	lite4.DecodeGPUs = 4

	jsq := clusterOf(small, lite4)
	jsq.Router = JoinShortestQueue

	quad := clusterOf(small, lite4, small, lite4)

	trio := clusterOf(small, lite4, small)
	trio.Failures = acceleratedFailures(1)

	trioJSQ := trio
	trioJSQ.Router = JoinShortestQueue

	return []struct {
		name string
		cc   ClusterConfig
		rate float64
		seed uint64
	}{
		{name: "rr-hetero", cc: clusterOf(small, lite4), rate: 2.0, seed: 17},
		{name: "jsq-hetero", cc: jsq, rate: 2.0, seed: 17},
		{name: "rr-quad", cc: quad, rate: 3.0, seed: 23},
		{name: "rr-failures", cc: trio, rate: 2.0, seed: 31},
		{name: "jsq-failures", cc: trioJSQ, rate: 2.0, seed: 31},
	}
}

// TestShardCountInvariance is the sharding contract: RunCluster must
// produce byte-identical ClusterMetrics at every shard count, routers
// and failure injection included. Shard counts above the pool count
// clamp, so 4 and 8 also cover the clamping path.
func TestShardCountInvariance(t *testing.T) {
	for _, sc := range shardScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			reqs := codingTrace(t, sc.rate, sc.seed, 300)
			base, err := RunCluster(sc.cc, reqs, 500)
			if err != nil {
				t.Fatal(err)
			}
			want := hexCluster(base)
			for _, shards := range []int{1, 2, 4, 8} {
				cc := sc.cc
				cc.Shards = shards
				cm, err := RunCluster(cc, reqs, 500)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				if got := hexCluster(cm); got != want {
					t.Errorf("shards=%d diverges from sequential:\ngot:\n%s\nwant:\n%s", shards, got, want)
				}
			}
		})
	}
}

// TestShardedClusterUnsortedInput pins that the parallel path applies
// the same arrival sort (including tie handling) as the sequential one.
func TestShardedClusterUnsortedInput(t *testing.T) {
	small := smallConfig()
	cc := clusterOf(small, small, small)
	reqs := codingTrace(t, 2.0, 41, 200)
	// Reverse the trace so both paths must sort it.
	for i, j := 0, len(reqs)-1; i < j; i, j = i+1, j-1 {
		reqs[i], reqs[j] = reqs[j], reqs[i]
	}
	base, err := RunCluster(cc, reqs, 400)
	if err != nil {
		t.Fatal(err)
	}
	cc.Shards = 3
	cm, err := RunCluster(cc, reqs, 400)
	if err != nil {
		t.Fatal(err)
	}
	if hexCluster(cm) != hexCluster(base) {
		t.Error("sharded run over unsorted input diverges from sequential")
	}
}

// TestSnapshotForkMatchesFullRun is the snapshot contract: forking a
// failure run at its first failure and resuming with k spares must be
// byte-identical to simulating the whole run with k spares from t=0,
// and the same fork must be replayable any number of times.
func TestSnapshotForkMatchesFullRun(t *testing.T) {
	cfg := smallConfig()
	reqs := codingTrace(t, 1.5, 3, 200)
	f := acceleratedFailures(0)
	m0, fork, err := runForkable(cfg, f, reqs, 400)
	if err != nil {
		t.Fatal(err)
	}
	if fork.sim.snap == nil {
		t.Fatal("accelerated failures fired no failure; fork test is vacuous")
	}
	for spares := 0; spares <= 3; spares++ {
		fs := f
		fs.Spares = spares
		want, err := RunWithFailures(cfg, fs, reqs, 400)
		if err != nil {
			t.Fatal(err)
		}
		got := fork.runWithSpares(spares)
		if fmt.Sprintf("%x", got) != fmt.Sprintf("%x", want) {
			t.Errorf("spares=%d: fork resume diverges from full run\ngot:  %x\nwant: %x", spares, got, want)
		}
		if spares == 0 && fmt.Sprintf("%x", got) != fmt.Sprintf("%x", m0) {
			t.Errorf("spares=0 resume diverges from the fork's own spare-free run")
		}
	}
	// The snapshot is immutable: replaying an already-used spare count
	// after other resumes must reproduce the same bytes.
	a := fork.runWithSpares(1)
	b := fork.runWithSpares(1)
	if fmt.Sprintf("%x", a) != fmt.Sprintf("%x", b) {
		t.Error("repeated resume from the same fork diverges")
	}
}

// TestForkWithoutFailureReturnsBaseMetrics pins the full-skip path: when
// no failure fires inside the horizon there is no snapshot, and every
// spare count returns the spare-free metrics unchanged (spares are only
// observable through failInstance).
func TestForkWithoutFailureReturnsBaseMetrics(t *testing.T) {
	cfg := smallConfig()
	reqs := codingTrace(t, 1.0, 7, 100)
	f := FailureConfig{Enabled: true, Seed: 5} // paper AFRs: no failure in 200 s
	m0, fork, err := runForkable(cfg, f, reqs, 200)
	if err != nil {
		t.Fatal(err)
	}
	if fork.sim.snap != nil {
		t.Fatal("paper-AFR short window unexpectedly saw a failure")
	}
	if got := fork.runWithSpares(2); fmt.Sprintf("%x", got) != fmt.Sprintf("%x", m0) {
		t.Errorf("failure-free fork resume altered metrics: %x vs %x", got, m0)
	}
}

// TestPlanSnapshotReuseInvariance is the planner contract: snapshot
// reuse is a pure wall-clock optimization, so the chosen plan — config,
// spares, cost, and full hex-float metrics — must be byte-identical
// with reuse on and off.
func TestPlanSnapshotReuseInvariance(t *testing.T) {
	req := planRequest(20)
	req.Failures = FailureConfig{Enabled: true, Seed: 5}
	slo := SLO{MinAvailability: 0.99999}
	on, err := PlanCapacity(req, slo)
	if err != nil {
		t.Fatal(err)
	}
	req.NoSnapshotReuse = true
	off, err := PlanCapacity(req, slo)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(on.Config, off.Config) || on.Spares != off.Spares || on.TotalGPUs != off.TotalGPUs {
		t.Errorf("snapshot reuse changed the chosen deployment: %+v vs %+v", on.Config, off.Config)
	}
	if fmt.Sprintf("%x", on.Metrics) != fmt.Sprintf("%x", off.Metrics) {
		t.Errorf("snapshot reuse changed plan metrics:\non:  %x\noff: %x", on.Metrics, off.Metrics)
	}
	if on.Cost != off.Cost || on.Availability != off.Availability {
		t.Error("snapshot reuse changed cost or availability readouts")
	}
}
