package serve

import (
	"testing"

	"litegpu/internal/kv"
)

// kvGoldenFile extends the byte-identity corpus to memory-enabled runs.
// Like network_goldens.txt it pins the KV memory model from its first
// commit: the FULL Metrics struct — KV fields included — in %x, so any
// future rework of the allocator, the admission gate, preemption, or
// prefix caching must reproduce these runs bit-for-bit or knowingly
// regenerate.
const kvGoldenFile = "testdata/kv_goldens.txt"

// kvGoldenScenarios covers what the earlier corpora cannot: block
// accounting under ample memory (every scheduler), genuine scarcity
// with preemptions under both recovery policies, prefix caching on the
// shared-prefix agent workload, swap priced over an in-loop fabric,
// and the accelerated failure regime with allocator state dying and
// resetting mid-run.
func kvGoldenScenarios() []goldenScenario {
	recompute := kv.Config{Policy: kv.Recompute}
	scarce := kv.Config{Policy: kv.Recompute, Blocks: 600}
	scarcePrefix := kv.Config{Policy: kv.Recompute, PrefixCache: true, Blocks: 600}
	swapScarce := kv.Config{Policy: kv.Swap, Blocks: 800}

	small := smallConfig()
	small.KV = recompute

	cont := smallConfig()
	cont.Scheduler = ContinuousBatching
	cont.KV = scarce

	chunk := smallConfig()
	chunk.Scheduler = ChunkedPrefill
	chunk.PrefillChunk = 256
	chunk.KV = scarce

	pressed := smallConfig()
	pressed.KV = scarce

	agent := smallConfig()
	agent.KV = scarcePrefix

	// Swap preemptions round-tripping a real fabric: the l70 shape puts
	// every instance on its own scale-up node, so swap traffic contends
	// with KV handoffs on the same links.
	swapFab := l70Config()
	swapFab.Network = pluggablePacket()
	swapFab.KV = swapScarce

	// The failure regime that actually bites (no drain, decode-heavy,
	// accelerated clock) with scarce memory: dead instances drop their
	// allocator state, requeued sequences re-admit from zero.
	failCluster := clusterOf(pressed)
	failCluster.Failures = acceleratedFailures(0)

	return []goldenScenario{
		{name: "kv-small-ample", cluster: clusterOf(small), rate: 1.0, seed: 7, arrive: 200, horizon: 400},
		{name: "kv-static-scarce-conv", cluster: clusterOf(pressed), rate: 8.0, seed: 3, conv: true, arrive: 120, horizon: 240},
		{name: "kv-continuous-scarce-conv", cluster: clusterOf(cont), rate: 8.0, seed: 3, conv: true, arrive: 120, horizon: 240},
		{name: "kv-chunked256-scarce-conv", cluster: clusterOf(chunk), rate: 8.0, seed: 3, conv: true, arrive: 120, horizon: 240},
		{name: "kv-prefix-agent-nodrain", cluster: clusterOf(agent), rate: 8.0, seed: 42, agent: true, arrive: 150, horizon: 150},
		{name: "kv-swap-fabric-conv", cluster: clusterOf(swapFab), rate: 4.0, seed: 11, conv: true, arrive: 120, horizon: 240},
		{name: "kv-scarce-fail-nodrain", cluster: failCluster, rate: 8.0, seed: 11, conv: true, arrive: 150, horizon: 150},
	}
}

// TestKVGoldens pins the memory-enabled simulator byte-for-byte.
// Regenerate (only when knowingly changing memory semantics) with:
//
//	LITEGPU_UPDATE_GOLDENS=1 go test ./internal/serve -run Golden
func TestKVGoldens(t *testing.T) {
	compareGoldens(t, kvGoldenFile, goldenReport(t, kvGoldenScenarios(), viewPreOverload))
}
