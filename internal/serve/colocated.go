package serve

import (
	"fmt"
	"math"

	"litegpu/internal/inference"
	"litegpu/internal/kv"
	"litegpu/internal/mathx"
	"litegpu/internal/obs"
	"litegpu/internal/sim"
	"litegpu/internal/trace"
)

// defaultPrefillChunk is the Sarathi-style chunk size (prompt tokens)
// when Config.PrefillChunk is zero: large enough to keep chunk passes
// compute-efficient, small enough to bound the decode stall each chunk
// adds to a fused step.
const defaultPrefillChunk = 512

// colocEngine is one colocated instance: a single TP group that runs
// both phases, iterating over a batch of decoding requests while
// admitting and prefilling new ones.
type colocEngine struct {
	instanceState
	// active holds generations being decoded; pending holds admitted
	// requests whose prompts are not fully prefilled yet. Both reuse
	// their storage across iterations.
	active  []*activeReq
	pending deque[*activeReq]

	// One in-flight step: its end time, its prefill/decode second
	// split (for busy accounting and failure un-counting), how many
	// pending entries its prefill part completes, and — for chunked
	// steps — how many head-of-line prompt tokens it processes.
	stepEnd     float64 // 0 when idle
	stepPfx     float64
	stepDec     float64
	stepPrefill int
	stepChunk   int

	pBusy float64
	dBusy float64

	// al is the instance's paged KV allocator; nil with Config.KV off.
	// Admitted-but-pending requests hold a full prompt reservation — a
	// colocated instance prefills into the same HBM its decode cache
	// lives in.
	al *kv.Allocator
}

// colocSched implements the two colocated policies. With chunked=false
// it is ContinuousBatching: every iteration either prefills a batch of
// pending prompts in full (stalling ongoing decodes for the pass) or
// decodes one token for every active generation; finished requests free
// slots that are refilled from the queue at the next iteration. With
// chunked=true it is ChunkedPrefill: each iteration fuses one
// PrefillChunk-token slice of the head-of-line pending prompt with one
// decode step of the running batch, so the decode stall per token is
// bounded by the chunk size rather than the prompt length.
type colocSched struct {
	cs   *clusterSim
	pool *poolSim
	cfg  Config

	chunked   bool
	chunk     int
	instances int
	perGPUs   int

	engines []colocEngine
	q       deque[*activeReq]
	cap     int // max active+pending per instance (KV-limited)

	stepDoneH sim.Handler

	// Scratch buffers for timer queries, reused across iterations.
	one        [1]trace.Request
	reqScratch []trace.Request

	prefillTime func([]trace.Request) float64
	decodeTime  func(int) float64
	chunkTime   func(tokens int) float64
}

func newColocSched(cs *clusterSim, pool *poolSim) (*colocSched, error) {
	cfg := pool.cfg
	opts := cfg.Opts
	n, g := cfg.colocShape()
	maxKV := inference.MaxFeasibleBatch(cfg.GPU, cfg.Model, inference.Decode, g, opts)
	if maxKV <= 0 {
		return nil, fmt.Errorf("serve: %s does not fit on %d×%s for decode (%s scheduler)",
			cfg.Model.Name, g, cfg.GPU.Name, cfg.Scheduler)
	}
	if inference.MaxFeasibleBatch(cfg.GPU, cfg.Model, inference.Prefill, g, opts) < 1 {
		return nil, fmt.Errorf("serve: %s does not fit on %d×%s for prefill (%s scheduler)",
			cfg.Model.Name, g, cfg.GPU.Name, cfg.Scheduler)
	}
	batchCap := cfg.MaxDecodeBatch
	if batchCap > maxKV {
		batchCap = maxKV
	}
	chunk := cfg.PrefillChunk
	if chunk <= 0 {
		chunk = defaultPrefillChunk
	}
	c := &colocSched{
		cs:          cs,
		pool:        pool,
		cfg:         cfg,
		chunked:     cfg.Scheduler == ChunkedPrefill,
		chunk:       chunk,
		instances:   n,
		perGPUs:     g,
		engines:     make([]colocEngine, n),
		cap:         batchCap,
		prefillTime: newPrefillTimer(cfg, opts, g),
		decodeTime:  newDecodeTimer(cfg, opts, g),
		chunkTime:   newChunkTimer(cfg, opts, g),
	}
	c.stepDoneH = c.onStepDone
	if cfg.KV.Enabled() {
		blocks, err := kvBlocksPerInstance(cfg, g)
		if err != nil {
			return nil, err
		}
		bt := cfg.KV.BlockTokensOrDefault()
		for j := range c.engines {
			c.engines[j].al = kv.NewAllocator(blocks, bt, cfg.KV.PrefixCache)
		}
		// With paged KV the allocator is the memory gate: the
		// whole-context MaxFeasibleBatch cap above no longer applies.
		c.cap = cfg.MaxDecodeBatch
	}
	return c, nil
}

func (c *colocSched) numInstances() int           { return len(c.engines) }
func (c *colocSched) state(id int) *instanceState { return &c.engines[id].instanceState }
func (c *colocSched) gpus(int) int                { return c.perGPUs }
func (c *colocSched) totalGPUs() int              { return c.instances * c.perGPUs }

// shape maps both metric phases onto the full instance set: a colocated
// pool's PrefillUtilization and DecodeUtilization are each the share of
// all-instance time spent in that phase (they sum to at most 1).
func (c *colocSched) shape() phaseShape {
	return phaseShape{
		prefillInstances: c.instances, prefillGPUs: c.perGPUs,
		decodeInstances: c.instances, decodeGPUs: c.perGPUs,
	}
}

//litegpu:hotpath
func (c *colocSched) enqueue(r trace.Request) {
	a := c.pool.newActive(r)
	a.promptLeft = r.PromptTokens
	c.q.PushBack(a)
}

func (c *colocSched) outstanding() int {
	outstanding := c.q.Len()
	for i := range c.engines {
		outstanding += len(c.engines[i].active) + c.engines[i].pending.Len()
	}
	return outstanding
}

// scalable exposes every colocated instance to the autoscaler.
func (c *colocSched) scalable() (lo, hi int) { return 0, len(c.engines) }

func (c *colocSched) idle(id int) bool {
	e := &c.engines[id]
	return mathx.ExactEq(e.stepEnd, 0) && len(e.active) == 0 && e.pending.Len() == 0
}

func (c *colocSched) busy() (prefill, decode float64) {
	for i := range c.engines {
		prefill += c.engines[i].pBusy
	}
	for i := range c.engines {
		decode += c.engines[i].dBusy
	}
	return prefill, decode
}

//litegpu:hotpath
func (c *colocSched) dispatch(now float64) {
	for j := range c.engines {
		e := &c.engines[j]
		if e.up && !e.parked && mathx.ExactEq(e.stepEnd, 0) {
			c.startStep(j, now)
		}
	}
}

// admit refills the engine's batch slots from the queue — the
// continuous-batching move: every iteration boundary, capacity freed by
// finished requests is handed to waiting ones. Prompts whose KV
// footprint can never fit even alone are dropped here, mirroring the
// static policy's oversized-prompt drop.
//
//litegpu:hotpath
func (c *colocSched) admit(e *colocEngine, now float64) {
	for len(e.active)+e.pending.Len() < c.cap && c.q.Len() > 0 {
		a := c.q.At(0)
		if c.pool.clientOn && c.pool.isCancelled(a.req.ID) {
			// The client gave up while the request queued: reclaim it
			// before it occupies a batch slot.
			c.q.PopFront()
			c.pool.settleCancelled(a.req.ID, a)
			continue
		}
		if a.promptLeft > 0 {
			c.one[0] = a.req
			if e.al != nil && a.promptLeft != a.req.PromptTokens {
				// A recompute victim rebuilds its whole context, prompt
				// plus generated tokens; time the pass at that length.
				c.one[0].PromptTokens = a.promptLeft
			}
			if math.IsInf(c.prefillTime(c.one[:]), 1) {
				c.q.PopFront()
				if c.pool.rec != nil {
					c.pool.rec.Request(obs.Drop, now, int32(c.pool.idx), -1, int64(a.req.ID), float64(a.req.PromptTokens))
				}
				c.pool.m.Dropped++
				c.pool.clientSettle(a.req.ID)
				c.pool.freeActive(a)
				continue
			}
		}
		if e.al != nil && !c.pool.kvAdmit(e.al, a, now) {
			break // head-of-line waits for blocks to free
		}
		c.q.PopFront()
		if a.promptLeft > 0 {
			e.pending.PushBack(a)
			continue
		}
		// A requeued request that already finished prefill rejoins the
		// decode batch directly.
		if !a.admitted {
			a.admitted = true
			a.decodeAt = now
		}
		e.active = append(e.active, a)
	}
}

// startStep begins one iteration on an idle engine. Continuous
// batching alternates full prefill passes (prioritized, vLLM-style)
// with whole-batch decode steps; chunked prefill fuses one prompt chunk
// with the decode step so both phases progress together.
//
//litegpu:hotpath
func (c *colocSched) startStep(j int, now float64) {
	e := &c.engines[j]
	if c.pool.clientOn {
		// Purge cancelled pending heads first: they hold full prompt KV
		// reservations that admission is waiting on.
		for e.pending.Len() > 0 {
			a := e.pending.At(0)
			if !c.pool.isCancelled(a.req.ID) {
				break
			}
			e.pending.PopFront()
			if e.al != nil {
				c.pool.kvRelease(e.al, a, now)
			}
			c.pool.settleCancelled(a.req.ID, a)
		}
	}
	if !e.draining {
		c.admit(e, now)
	}
	if e.al != nil && len(e.active) > 0 && (c.chunked || e.pending.Len() == 0) {
		// This step will decode: claim every survivor's token growth
		// before timing it (growth can shrink the batch by preemption).
		c.kvGrowActives(j, now)
	}
	var pDt, dDt float64
	nPrefill, chunkTokens := 0, 0
	if c.chunked {
		if e.pending.Len() > 0 {
			head := e.pending.At(0)
			chunkTokens = c.chunk
			if chunkTokens > head.promptLeft {
				chunkTokens = head.promptLeft
			}
			pDt = c.chunkTime(chunkTokens)
			nPrefill = 1
		}
		if len(e.active) > 0 {
			dDt = c.decodeTime(len(e.active))
		}
	} else if e.pending.Len() > 0 {
		n := c.cfg.MaxPrefillBatch
		if n > e.pending.Len() {
			n = e.pending.Len()
		}
		// Stage the pass in the reusable request scratch, then shrink it
		// until its combined KV footprint fits, as the static prefill
		// engines do; admit() already dropped prompts that cannot fit
		// alone, so n ≥ 1 always succeeds.
		c.reqScratch = c.reqScratch[:0]
		for i := 0; i < n; i++ {
			r := e.pending.At(i).req
			if e.al != nil && e.pending.At(i).promptLeft != r.PromptTokens {
				// Recompute victims re-prefill their whole context.
				r.PromptTokens = e.pending.At(i).promptLeft
			}
			c.reqScratch = append(c.reqScratch, r)
		}
		pDt = math.Inf(1)
		for ; n >= 1; n-- {
			if pDt = c.prefillTime(c.reqScratch[:n]); !math.IsInf(pDt, 1) {
				break
			}
		}
		nPrefill = n
	} else if len(e.active) > 0 {
		dDt = c.decodeTime(len(e.active))
	}
	if e.slow > 0 {
		// A straggling instance stretches both phases; scaling each
		// share keeps the busy-split consistent for failure un-counting.
		pDt *= e.slow
		dDt *= e.slow
	}
	dt := pDt + dDt
	if dt <= 0 || math.IsInf(dt, 1) {
		if e.draining && len(e.active) == 0 && e.pending.Len() == 0 {
			c.pool.parkInstance(&e.instanceState, now)
		}
		e.stepEnd = 0
		return
	}
	e.stepEnd = now + dt
	e.stepPfx, e.stepDec = pDt, dDt
	e.stepPrefill, e.stepChunk = nPrefill, chunkTokens
	e.pBusy += pDt
	e.dBusy += dDt
	if c.pool.rec != nil && nPrefill > 0 {
		if c.chunked {
			head := e.pending.At(0)
			c.pool.rec.Request(obs.PrefillStart, now, int32(c.pool.idx), int32(j), int64(head.req.ID), float64(chunkTokens))
		} else {
			for i := 0; i < nPrefill; i++ {
				c.pool.rec.Request(obs.PrefillStart, now, int32(c.pool.idx), int32(j), int64(e.pending.At(i).req.ID), float64(nPrefill))
			}
		}
	}
	// Steps that emit tokens complete in the decode priority band;
	// pure prefill passes complete in the prefill band, matching the
	// static policy's same-timestamp phase order.
	prio := prioDecode + e.prio
	if mathx.ExactEq(dDt, 0) {
		prio = prioPrefill + e.prio
	}
	e.doneEv = c.cs.eng.ScheduleCall(e.stepEnd, prio, c.stepDoneH, uint64(j))
}

// kvGrowActives claims the block growth for the token each active
// sequence emits this step. When the allocator runs dry, eviction
// prefers the cheapest memory first: pending reservations (nothing
// decoded yet — they just release and requeue, uncounted), then the
// newest active sequences (least sunk decode work). A sole occupant
// that still cannot grow is dropped — nothing is left to evict.
//
//litegpu:hotpath
func (c *colocSched) kvGrowActives(j int, now float64) {
	e := &c.engines[j]
	p := c.pool
	for i := 0; i < len(e.active); {
		a := e.active[i]
		if p.kvGrow(e.al, a, now) {
			i++
			continue
		}
		if e.pending.Len() > 0 {
			v := e.pending.PopFront()
			p.kvRelease(e.al, v, now)
			c.q.PushFront(v)
			continue
		}
		last := len(e.active) - 1
		if last > i {
			victim := e.active[last]
			e.active[last] = nil
			e.active = e.active[:last]
			c.preempt(j, victim, now)
			continue // retry a's growth with the freed blocks
		}
		if i > 0 {
			// a itself is the newest remaining sequence: evict it.
			e.active[last] = nil
			e.active = e.active[:last]
			c.preempt(j, a, now)
			return
		}
		// Sole occupant that cannot grow: it can never finish.
		if p.rec != nil {
			p.rec.Request(obs.Drop, now, int32(p.idx), int32(j), int64(a.req.ID), float64(a.req.PromptTokens))
		}
		p.kvRelease(e.al, a, now)
		p.m.Dropped++
		p.clientSettle(a.req.ID)
		p.freeActive(a)
		e.active[0] = nil
		e.active = e.active[:0]
		return
	}
}

// preempt evicts victim from engine j mid-generation: its blocks are
// released and its KV either rides the fabric out and back (Swap) or is
// discarded and rebuilt by a prefill pass over its whole context
// (Recompute — promptLeft is reset to prompt plus generated tokens, so
// re-admission routes it through the pending prefill path).
//
//litegpu:hotpath
func (c *colocSched) preempt(j int, victim *activeReq, now float64) {
	p := c.pool
	e := &c.engines[j]
	p.kvPreempt++
	tokens := kvTokens(victim)
	if p.rec != nil {
		p.rec.Request(obs.KVPreempt, now, int32(p.idx), int32(j), int64(victim.req.ID), float64(tokens))
	}
	p.kvRelease(e.al, victim, now)
	if c.cfg.KV.Policy == kv.Swap {
		c.startSwap(j, victim, now, tokens)
		return
	}
	p.kvRecompute += tokens
	victim.promptLeft = tokens
	c.q.PushFront(victim)
}

// startSwap prices a preemption swap as one fabric transfer of twice
// the sequence's block payload — swap-out to router-attached remote
// memory plus the eventual swap-in — delivered as an xferSwap.
//
//litegpu:hotpath
func (c *colocSched) startSwap(j int, a *activeReq, now float64, tokens int) {
	p := c.pool
	if c.cs.fab == nil {
		// No fabric configured: the round-trip is free.
		c.swapReturn(a, now)
		return
	}
	idx := p.newXfer()
	rec := &p.xfers[idx]
	*rec = xferRec{
		kind: xferSwap, src: int32(j), dst: int32(j),
		a: a, start: now,
		bytes: 2 * p.kvXferBytes(tokens),
	}
	rec.tid = c.cs.fab.Start(p.epBase+j, 0, rec.bytes,
		prioTransfer+c.engines[j].prio, c.cs.xferH, packArg(p.idx, int(idx)))
	p.liveXfers = append(p.liveXfers, idx)
	if p.rec != nil {
		p.rec.Request(obs.KVSwapOut, now, int32(p.idx), int32(j), int64(a.req.ID), rec.bytes)
	}
}

// swapReturn puts a preempted sequence back at the head of the queue
// once its KV is recoverable (its promptLeft is zero, so admission
// routes it straight back into a decode batch).
//
//litegpu:hotpath
func (c *colocSched) swapReturn(a *activeReq, now float64) {
	c.q.PushFront(a)
}

//litegpu:hotpath
func (c *colocSched) onStepDone(now float64, arg uint64) {
	c.completeStep(int(arg), now)
}

//litegpu:hotpath
func (c *colocSched) completeStep(j int, now float64) {
	e := &c.engines[j]
	e.doneEv = 0
	if e.stepDec > 0 {
		w := 0
		for _, a := range e.active {
			if c.pool.clientOn && c.pool.isCancelled(a.req.ID) {
				// The client timed out mid-step: the batch member leaves
				// without emitting; its step share is sunk cost.
				if e.al != nil {
					c.pool.kvRelease(e.al, a, now)
				}
				c.pool.settleCancelled(a.req.ID, a)
				continue
			}
			if !c.pool.emitToken(a, now) {
				e.active[w] = a
				w++
			} else {
				if e.al != nil {
					c.pool.kvRelease(e.al, a, now)
				}
				c.pool.freeActive(a)
			}
		}
		clearTail(e.active, w)
		e.active = e.active[:w]
	}
	if e.stepPrefill > 0 {
		if c.chunked {
			head := e.pending.At(0)
			head.promptLeft -= e.stepChunk
			if head.promptLeft <= 0 {
				head.promptLeft = 0
				e.pending.PopFront()
				if c.pool.clientOn && c.pool.isCancelled(head.req.ID) {
					if e.al != nil {
						c.pool.kvRelease(e.al, head, now)
					}
					c.pool.settleCancelled(head.req.ID, head)
				} else {
					if c.pool.rec != nil {
						c.pool.rec.Request(obs.PrefillEnd, now, int32(c.pool.idx), int32(j), int64(head.req.ID), 0)
					}
					c.finishPrefill(head, now)
					e.active = append(e.active, head)
				}
			} else if c.pool.rec != nil {
				c.pool.rec.Request(obs.Chunk, now, int32(c.pool.idx), int32(j), int64(head.req.ID), float64(head.promptLeft))
			}
		} else {
			for k := 0; k < e.stepPrefill; k++ {
				a := e.pending.PopFront()
				a.promptLeft = 0
				if c.pool.clientOn && c.pool.isCancelled(a.req.ID) {
					if e.al != nil {
						c.pool.kvRelease(e.al, a, now)
					}
					c.pool.settleCancelled(a.req.ID, a)
					continue
				}
				if c.pool.rec != nil {
					c.pool.rec.Request(obs.PrefillEnd, now, int32(c.pool.idx), int32(j), int64(a.req.ID), 0)
				}
				c.finishPrefill(a, now)
				e.active = append(e.active, a)
			}
		}
	}
	e.stepEnd, e.stepPfx, e.stepDec = 0, 0, 0
	e.stepPrefill, e.stepChunk = 0, 0
	c.cs.requestDispatch(now)
}

// finishPrefill records the TTFT sample (exactly once per request, no
// matter how many requeues preceded it) and stamps decode admission.
//
//litegpu:hotpath
func (c *colocSched) finishPrefill(a *activeReq, now float64) {
	if !a.ttftDone {
		a.ttftDone = true
		c.pool.recordTTFT(now-float64(a.req.Arrival), a.req.Class)
	}
	if !a.admitted {
		a.admitted = true
		a.decodeAt = now
	}
}

// fail reclaims a dead instance's in-flight work. The aborted step's
// busy tail is un-counted proportionally from both phases; chunk
// progress is only ever applied at step completion, so the in-flight
// chunk is simply lost — requeued prompts resume from their last
// completed chunk with no token duplicated or skipped.
//
//litegpu:hotpath
func (c *colocSched) fail(id int, now float64, drop bool) {
	e := &c.engines[id]
	if e.stepEnd > 0 {
		if total := e.stepPfx + e.stepDec; total > 0 {
			frac := (e.stepEnd - now) / total
			e.pBusy -= e.stepPfx * frac
			e.dBusy -= e.stepDec * frac
		}
		e.stepEnd, e.stepPfx, e.stepDec = 0, 0, 0
		e.stepPrefill, e.stepChunk = 0, 0
	}
	if e.al != nil {
		// The HBM died with the instance: every resident sequence, every
		// pending reservation, and the shared prefix cache are gone.
		// Requeued requests re-admit from scratch on a live instance.
		for _, a := range e.active {
			a.kvSeq = -1
		}
		for i := 0; i < e.pending.Len(); i++ {
			e.pending.At(i).kvSeq = -1
		}
		if used := e.al.InUse(); used != 0 {
			c.pool.kvAccount(now, -used)
		}
		e.al.Reset()
	}
	n := e.pending.Len() + len(e.active)
	if n > 0 {
		if c.pool.rec != nil {
			k := obs.Requeue
			if drop {
				k = obs.Drop
			}
			for i := 0; i < e.pending.Len(); i++ {
				c.pool.rec.Request(k, now, int32(c.pool.idx), int32(id), int64(e.pending.At(i).req.ID), 0)
			}
			for _, a := range e.active {
				c.pool.rec.Request(k, now, int32(c.pool.idx), int32(id), int64(a.req.ID), 0)
			}
		}
		if drop {
			c.pool.m.DroppedOnFailure += n
			for e.pending.Len() > 0 {
				a := e.pending.PopFront()
				c.pool.clientSettle(a.req.ID)
				c.pool.freeActive(a)
			}
			for _, a := range e.active {
				c.pool.clientSettle(a.req.ID)
				c.pool.freeActive(a)
			}
		} else {
			c.pool.m.Requeued += n
			// Requeue ahead of the waiting queue, preserving [pending...,
			// active..., old queue...] order: push active first, then
			// pending, each back-to-front.
			for i := len(e.active) - 1; i >= 0; i-- {
				c.q.PushFront(e.active[i])
			}
			for i := e.pending.Len() - 1; i >= 0; i-- {
				c.q.PushFront(e.pending.At(i))
			}
			e.pending.DiscardFront(e.pending.Len())
		}
		clearTail(e.active, 0)
		e.active = e.active[:0]
	}
	if e.al != nil && c.cs.fab != nil {
		c.failSwaps(id, now, drop)
	}
}

// failSwaps reclaims in-flight swap transfers touching a dead instance.
// The swapped-out copy lives in remote memory and survives the failure;
// under the requeue policy the sequence just needs a live instance to
// swap back into, under drop it is abandoned.
//
//litegpu:hotpath
func (c *colocSched) failSwaps(id int, now float64, drop bool) {
	p := c.pool
	live := p.liveXfers
	w := 0
	for _, idx := range live {
		rec := &p.xfers[idx]
		if int(rec.src) != id && int(rec.dst) != id {
			live[w] = idx
			w++
			continue
		}
		c.cs.fab.Cancel(rec.tid)
		if drop {
			p.m.DroppedOnFailure++
			p.clientSettle(rec.a.req.ID)
			p.freeActive(rec.a)
		} else {
			p.m.Requeued++
			c.q.PushFront(rec.a)
		}
		p.freeXfer(idx)
	}
	p.liveXfers = live[:w]
}

func (c *colocSched) recovered(int, float64) {
	// Nothing instance-local to restore: an idle engine (stepEnd 0)
	// picks up work at the dispatch pass that follows recovery.
}

// deliverKV is unreachable: colocated instances run both phases, so no
// KV cache ever crosses the fabric between them.
func (c *colocSched) deliverKV(*activeReq, float64) {
	panic("serve: KV handoff delivered to a colocated scheduler")
}

// newChunkTimer returns a memoized chunk-prefill duration function:
// the analytical prefill cost of one batch-1 pass over `tokens` prompt
// tokens, quantized to 64-token buckets for cache efficiency.
func newChunkTimer(cfg Config, opts inference.Options, gpus int) func(int) float64 {
	cache := make(map[int]float64)
	return func(tokens int) float64 {
		if tokens <= 0 {
			return 0
		}
		bucket := (tokens + 63) / 64
		if v, ok := cache[bucket]; ok {
			return v
		}
		o := opts
		o.PromptLen = bucket * 64
		est, err := inference.Run(cfg.GPU, cfg.Model, inference.Prefill, gpus, 1, o)
		v := math.Inf(1)
		if err == nil {
			v = float64(est.Latency)
		}
		cache[bucket] = v
		return v
	}
}
