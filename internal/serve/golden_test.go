package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"litegpu/internal/hw"
	"litegpu/internal/inference"
	"litegpu/internal/mathx"
	"litegpu/internal/model"
	"litegpu/internal/trace"
	"litegpu/internal/units"
)

// goldenFile pins the static scheduler to the exact Metrics the
// pre-scheduler-interface engine produced. The file was captured at the
// commit before the Scheduler extraction (PR 3) with
// LITEGPU_UPDATE_GOLDENS=1; every float is rendered with %x (hex float,
// full precision), so a match is byte-identity, not approximate
// equality — the repo's determinism contract for simulator refactors.
const goldenFile = "testdata/static_goldens.txt"

// goldenScenario is one (deployment, trace) pair of the golden corpus.
// The scenarios cover both workload shapes, single- and multi-instance
// pools, both GPU types, a decode-heavy no-drain regime, and a
// heterogeneous two-pool cluster behind each router.
type goldenScenario struct {
	name    string
	cluster ClusterConfig
	rate    float64
	seed    uint64
	conv    bool // conversation workload instead of coding
	agent   bool // shared-prefix agent workload (overrides conv)
	arrive  units.Seconds
	horizon units.Seconds
}

func goldenScenarios() []goldenScenario {
	small := Config{
		GPU:              hw.H100(),
		Model:            model.Llama3_8B(),
		Opts:             inference.DefaultOptions(),
		PrefillInstances: 1,
		PrefillGPUs:      1,
		DecodeInstances:  1,
		DecodeGPUs:       1,
		MaxPrefillBatch:  4,
		MaxDecodeBatch:   64,
	}
	h70 := Config{
		GPU:              hw.H100(),
		Model:            model.Llama3_70B(),
		Opts:             inference.DefaultOptions(),
		PrefillInstances: 2,
		PrefillGPUs:      2,
		DecodeInstances:  1,
		DecodeGPUs:       2,
		MaxPrefillBatch:  4,
		MaxDecodeBatch:   64,
	}
	l70 := h70
	l70.GPU = hw.Lite()
	l70.PrefillGPUs = 8
	l70.DecodeGPUs = 8
	wide := small
	wide.PrefillInstances = 2
	wide.DecodeInstances = 3
	wide.MaxDecodeBatch = 8
	lite4 := small
	lite4.GPU = hw.Lite()
	lite4.PrefillGPUs = 4
	lite4.DecodeGPUs = 4

	jsq := clusterOf(small, lite4)
	jsq.Router = JoinShortestQueue
	return []goldenScenario{
		{name: "small-coding", cluster: clusterOf(small), rate: 1.0, seed: 7, arrive: 200, horizon: 400},
		{name: "h100-70b-coding", cluster: clusterOf(h70), rate: 1.2, seed: 42, arrive: 300, horizon: 420},
		{name: "lite-70b-coding", cluster: clusterOf(l70), rate: 1.2, seed: 42, arrive: 300, horizon: 420},
		{name: "small-conv-nodrain", cluster: clusterOf(small), rate: 4.0, seed: 11, conv: true, arrive: 300, horizon: 300},
		{name: "wide-coding", cluster: clusterOf(wide), rate: 4.0, seed: 13, arrive: 200, horizon: 400},
		{name: "hetero-rr", cluster: clusterOf(small, lite4), rate: 2.0, seed: 17, arrive: 300, horizon: 500},
		{name: "hetero-jsq", cluster: jsq, rate: 2.0, seed: 17, arrive: 300, horizon: 500},
	}
}

// legacySummary is the exact pre-PR-10 mathx.Summary field set, in
// order. Every golden corpus below predates the P999 quantile, and %x
// renders every Summary field — so the frozen views embed this struct,
// verbatim, and new corpora pin the full Summary.
type legacySummary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
	P50    float64
	P90    float64
	P99    float64
}

func legacySum(s mathx.Summary) legacySummary {
	return legacySummary{
		N: s.N, Mean: s.Mean, Stddev: s.Stddev,
		Min: s.Min, Max: s.Max,
		P50: s.P50, P90: s.P90, P99: s.P99,
	}
}

// legacyMetrics is the exact pre-PR-5 Metrics field set, in order.
// The static and scheduler golden corpora were captured before Metrics
// gained the network-transfer fields, and %x renders every field — so
// the corpora pin this view, verbatim, and a separate corpus
// (network_goldens.txt) pins the full struct for fabric-enabled runs.
// With Config.Network zeroed the new fields are all zero, so this view
// loses nothing the legacy corpus could have checked.
type legacyMetrics struct {
	Arrived                 int
	Completed               int
	Dropped                 int
	TTFT                    legacySummary
	TBT                     legacySummary
	E2E                     legacySummary
	TTFTAttainment          float64
	TTFTAttainmentCompleted float64
	TBTAttainment           float64
	PrefillUtilization      float64
	DecodeUtilization       float64
	TokensGenerated         int
	FailureEvents           int
	Requeued                int
	DroppedOnFailure        int
	Availability            float64
	Goodput                 float64
	BlastRadius             float64
}

func legacyView(m Metrics) legacyMetrics {
	return legacyMetrics{
		Arrived: m.Arrived, Completed: m.Completed, Dropped: m.Dropped,
		TTFT: legacySum(m.TTFT), TBT: legacySum(m.TBT), E2E: legacySum(m.E2E),
		TTFTAttainment:          m.TTFTAttainment,
		TTFTAttainmentCompleted: m.TTFTAttainmentCompleted,
		TBTAttainment:           m.TBTAttainment,
		PrefillUtilization:      m.PrefillUtilization,
		DecodeUtilization:       m.DecodeUtilization,
		TokensGenerated:         m.TokensGenerated,
		FailureEvents:           m.FailureEvents,
		Requeued:                m.Requeued,
		DroppedOnFailure:        m.DroppedOnFailure,
		Availability:            m.Availability,
		Goodput:                 m.Goodput,
		BlastRadius:             m.BlastRadius,
	}
}

// preKVMetrics is the exact pre-PR-8 Metrics field set, in order:
// the legacy fields plus the PR-5 network-transfer fields. The network
// golden corpus was captured before Metrics gained the KV-memory
// fields, so it pins this view verbatim; a separate corpus
// (kv_goldens.txt) pins the full struct for memory-enabled runs. With
// Config.KV zeroed the KV fields are all zero, so this view loses
// nothing the network corpus could have checked.
type preKVMetrics struct {
	Arrived                 int
	Completed               int
	Dropped                 int
	TTFT                    legacySummary
	TBT                     legacySummary
	E2E                     legacySummary
	TTFTAttainment          float64
	TTFTAttainmentCompleted float64
	TBTAttainment           float64
	PrefillUtilization      float64
	DecodeUtilization       float64
	TokensGenerated         int
	FailureEvents           int
	Requeued                int
	DroppedOnFailure        int
	Availability            float64
	Goodput                 float64
	BlastRadius             float64
	NetTransfers            int
	TransferBytes           legacySummary
	TransferTime            legacySummary
	NetworkBoundFraction    float64
}

func preKVView(m Metrics) preKVMetrics {
	return preKVMetrics{
		Arrived: m.Arrived, Completed: m.Completed, Dropped: m.Dropped,
		TTFT: legacySum(m.TTFT), TBT: legacySum(m.TBT), E2E: legacySum(m.E2E),
		TTFTAttainment:          m.TTFTAttainment,
		TTFTAttainmentCompleted: m.TTFTAttainmentCompleted,
		TBTAttainment:           m.TBTAttainment,
		PrefillUtilization:      m.PrefillUtilization,
		DecodeUtilization:       m.DecodeUtilization,
		TokensGenerated:         m.TokensGenerated,
		FailureEvents:           m.FailureEvents,
		Requeued:                m.Requeued,
		DroppedOnFailure:        m.DroppedOnFailure,
		Availability:            m.Availability,
		Goodput:                 m.Goodput,
		BlastRadius:             m.BlastRadius,
		NetTransfers:            m.NetTransfers,
		TransferBytes:           legacySum(m.TransferBytes),
		TransferTime:            legacySum(m.TransferTime),
		NetworkBoundFraction:    m.NetworkBoundFraction,
	}
}

// preOverloadMetrics is the exact pre-PR-9 Metrics field set, in
// order: the preKV fields plus the PR-8 KV-memory fields. The KV golden
// corpus was captured before Metrics gained the closed-loop overload
// fields, so it pins this view verbatim; a separate corpus
// (overload_goldens.txt) pins the full struct for client-loop-enabled
// runs. With Config.Client, Admission, Autoscale, and Straggler zeroed
// the overload fields are all zero, so this view loses nothing the KV
// corpus could have checked.
type preOverloadMetrics struct {
	Arrived                 int
	Completed               int
	Dropped                 int
	TTFT                    legacySummary
	TBT                     legacySummary
	E2E                     legacySummary
	TTFTAttainment          float64
	TTFTAttainmentCompleted float64
	TBTAttainment           float64
	PrefillUtilization      float64
	DecodeUtilization       float64
	TokensGenerated         int
	FailureEvents           int
	Requeued                int
	DroppedOnFailure        int
	Availability            float64
	Goodput                 float64
	BlastRadius             float64
	NetTransfers            int
	TransferBytes           legacySummary
	TransferTime            legacySummary
	NetworkBoundFraction    float64
	KVPreemptions           int
	KVCacheHitRate          float64
	KVPeakBlocks            int
	KVMeanBlocks            float64
	KVRecomputeTokens       int
}

func preOverloadView(m Metrics) preOverloadMetrics {
	return preOverloadMetrics{
		Arrived: m.Arrived, Completed: m.Completed, Dropped: m.Dropped,
		TTFT: legacySum(m.TTFT), TBT: legacySum(m.TBT), E2E: legacySum(m.E2E),
		TTFTAttainment:          m.TTFTAttainment,
		TTFTAttainmentCompleted: m.TTFTAttainmentCompleted,
		TBTAttainment:           m.TBTAttainment,
		PrefillUtilization:      m.PrefillUtilization,
		DecodeUtilization:       m.DecodeUtilization,
		TokensGenerated:         m.TokensGenerated,
		FailureEvents:           m.FailureEvents,
		Requeued:                m.Requeued,
		DroppedOnFailure:        m.DroppedOnFailure,
		Availability:            m.Availability,
		Goodput:                 m.Goodput,
		BlastRadius:             m.BlastRadius,
		NetTransfers:            m.NetTransfers,
		TransferBytes:           legacySum(m.TransferBytes),
		TransferTime:            legacySum(m.TransferTime),
		NetworkBoundFraction:    m.NetworkBoundFraction,
		KVPreemptions:           m.KVPreemptions,
		KVCacheHitRate:          m.KVCacheHitRate,
		KVPeakBlocks:            m.KVPeakBlocks,
		KVMeanBlocks:            m.KVMeanBlocks,
		KVRecomputeTokens:       m.KVRecomputeTokens,
	}
}

// preObsMetrics is the exact pre-PR-10 Metrics field set, in order:
// the preOverload fields plus the PR-9 closed-loop overload fields,
// with every Summary rendered through the pre-P999 legacySummary. The
// overload golden corpus was captured before mathx.Summary gained
// P999, so it pins this view verbatim; P999 is itself pinned by the
// deterministic-export corpus the observability tests add.
type preObsMetrics struct {
	Arrived                 int
	Completed               int
	Dropped                 int
	TTFT                    legacySummary
	TBT                     legacySummary
	E2E                     legacySummary
	TTFTAttainment          float64
	TTFTAttainmentCompleted float64
	TBTAttainment           float64
	PrefillUtilization      float64
	DecodeUtilization       float64
	TokensGenerated         int
	FailureEvents           int
	Requeued                int
	DroppedOnFailure        int
	Availability            float64
	Goodput                 float64
	BlastRadius             float64
	NetTransfers            int
	TransferBytes           legacySummary
	TransferTime            legacySummary
	NetworkBoundFraction    float64
	KVPreemptions           int
	KVCacheHitRate          float64
	KVPeakBlocks            int
	KVMeanBlocks            float64
	KVRecomputeTokens       int
	ClientTimeouts          int
	ClientRetries           int
	Abandoned               int
	Shed                    int
	ScaleUps                int
	ScaleDowns              int
	MeanLiveInstances       float64
	UsefulGoodput           float64
	Classes                 []ClassMetrics
}

func preObsView(m Metrics) preObsMetrics {
	return preObsMetrics{
		Arrived: m.Arrived, Completed: m.Completed, Dropped: m.Dropped,
		TTFT: legacySum(m.TTFT), TBT: legacySum(m.TBT), E2E: legacySum(m.E2E),
		TTFTAttainment:          m.TTFTAttainment,
		TTFTAttainmentCompleted: m.TTFTAttainmentCompleted,
		TBTAttainment:           m.TBTAttainment,
		PrefillUtilization:      m.PrefillUtilization,
		DecodeUtilization:       m.DecodeUtilization,
		TokensGenerated:         m.TokensGenerated,
		FailureEvents:           m.FailureEvents,
		Requeued:                m.Requeued,
		DroppedOnFailure:        m.DroppedOnFailure,
		Availability:            m.Availability,
		Goodput:                 m.Goodput,
		BlastRadius:             m.BlastRadius,
		NetTransfers:            m.NetTransfers,
		TransferBytes:           legacySum(m.TransferBytes),
		TransferTime:            legacySum(m.TransferTime),
		NetworkBoundFraction:    m.NetworkBoundFraction,
		KVPreemptions:           m.KVPreemptions,
		KVCacheHitRate:          m.KVCacheHitRate,
		KVPeakBlocks:            m.KVPeakBlocks,
		KVMeanBlocks:            m.KVMeanBlocks,
		KVRecomputeTokens:       m.KVRecomputeTokens,
		ClientTimeouts:          m.ClientTimeouts,
		ClientRetries:           m.ClientRetries,
		Abandoned:               m.Abandoned,
		Shed:                    m.Shed,
		ScaleUps:                m.ScaleUps,
		ScaleDowns:              m.ScaleDowns,
		MeanLiveInstances:       m.MeanLiveInstances,
		UsefulGoodput:           m.UsefulGoodput,
		Classes:                 m.Classes,
	}
}

// goldenView selects which slice of Metrics a corpus pins: each corpus
// renders exactly the field set that existed when it was captured, so
// later PRs can append Metrics fields without invalidating it.
type goldenView int

const (
	viewLegacy      goldenView = iota // pre-PR-5 fields (static, scheduler corpora)
	viewPreKV                         // pre-PR-8 fields (network corpus)
	viewPreOverload                   // pre-PR-9 fields (kv corpus)
	viewPreObs                        // pre-PR-10 fields (overload corpus)
	viewFull                          // entire Metrics struct (future corpora)
)

// goldenReport renders every scenario's ClusterMetrics in hex-float
// form: one block per scenario, one line per pool plus the aggregate,
// fields selected by the view.
func goldenReport(t *testing.T, scenarios []goldenScenario, view goldenView) string {
	t.Helper()
	var b strings.Builder
	render := func(m Metrics) string {
		switch view {
		case viewLegacy:
			return fmt.Sprintf("%x", legacyView(m))
		case viewPreKV:
			return fmt.Sprintf("%x", preKVView(m))
		case viewPreOverload:
			return fmt.Sprintf("%x", preOverloadView(m))
		case viewPreObs:
			return fmt.Sprintf("%x", preObsView(m))
		}
		return fmt.Sprintf("%x", m)
	}
	for _, sc := range scenarios {
		gen := trace.CodingWorkload(sc.rate, sc.seed)
		if sc.conv {
			gen = trace.ConversationWorkload(sc.rate, sc.seed)
		}
		if sc.agent {
			gen = trace.AgentWorkload(sc.rate, sc.seed)
		}
		reqs, err := gen.Generate(sc.arrive)
		if err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		cm, err := RunCluster(sc.cluster, reqs, sc.horizon)
		if err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		fmt.Fprintf(&b, "== %s\n", sc.name)
		for _, pm := range cm.Pools {
			fmt.Fprintf(&b, "pool %s: %s\n", pm.Name, render(pm.Metrics))
		}
		fmt.Fprintf(&b, "total: %s\n", render(cm.Total))
	}
	return b.String()
}

// TestStaticSchedulerMatchesPreRefactorGoldens proves the extracted
// StaticDisaggregated policy is byte-identical to the engine it was
// extracted from: the golden file predates the Scheduler interface, and
// %x leaves no room for float drift. Regenerate (only when knowingly
// changing simulator semantics) with:
//
//	LITEGPU_UPDATE_GOLDENS=1 go test ./internal/serve -run Golden
func TestStaticSchedulerMatchesPreRefactorGoldens(t *testing.T) {
	compareGoldens(t, goldenFile, goldenReport(t, goldenScenarios(), viewLegacy))
}

// compareGoldens checks (or, under LITEGPU_UPDATE_GOLDENS, rewrites) one
// golden corpus file against the freshly rendered report.
func compareGoldens(t *testing.T, file, got string) {
	t.Helper()
	if os.Getenv("LITEGPU_UPDATE_GOLDENS") != "" {
		if err := os.MkdirAll(filepath.Dir(file), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(file, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d bytes)", file, len(got))
		return
	}
	want, err := os.ReadFile(file)
	if err != nil {
		t.Fatalf("missing golden corpus (run with LITEGPU_UPDATE_GOLDENS=1 to capture): %v", err)
	}
	if got != string(want) {
		gotLines := strings.Split(got, "\n")
		wantLines := strings.Split(string(want), "\n")
		for i := range gotLines {
			if i >= len(wantLines) || gotLines[i] != wantLines[i] {
				t.Fatalf("simulator diverged from %s at line %d:\n got: %s\nwant: %s",
					file, i+1, gotLines[i], wantLines[min(i, len(wantLines)-1)])
			}
		}
		t.Fatalf("simulator diverged from %s (length %d vs %d)", file, len(got), len(want))
	}
}
