package serve

import (
	"fmt"
	"math"
	"strings"

	"litegpu/internal/hw"
	"litegpu/internal/network"
)

// FabricKind selects the switched-fabric topology a deployment's
// instances are cabled into. The zero value is FabricOff: the
// infinite, instantaneous fabric every simulation ran on before the
// network entered the event loop.
type FabricKind int

const (
	// FabricOff disables the in-loop fabric: KV handoffs and routing
	// are instantaneous, exactly the pre-netsim semantics.
	FabricOff FabricKind = iota
	// FabricClos is a folded-Clos (fat-tree) fabric whose tier count
	// grows with scale (network.Clos).
	FabricClos
	// FabricLeafSpine is a non-blocking two-tier fabric (network.LeafSpine).
	FabricLeafSpine
	// FabricFlatCircuit is a single-tier optical-circuit fabric in the
	// style of Sirius (network.FlatCircuit): every path one hop at any
	// scale.
	FabricFlatCircuit
)

// String returns the kind's CLI name.
func (k FabricKind) String() string {
	switch k {
	case FabricClos:
		return "clos"
	case FabricLeafSpine:
		return "leaf-spine"
	case FabricFlatCircuit:
		return "flat-circuit"
	default:
		return "off"
	}
}

// LinkKind selects the physical link technology (internal/network's
// LinkTech presets). The zero value defaults to co-packaged optics,
// the paper's anticipated technology.
type LinkKind int

const (
	// LinkDefault is co-packaged optics.
	LinkDefault LinkKind = iota
	// LinkCopper is NVLink-class electrical signaling: cheap, fast,
	// about a rack of reach — and attached per instance, not per GPU.
	LinkCopper
	// LinkPluggable is today's pluggable optics: long reach, one NIC
	// port per instance.
	LinkPluggable
	// LinkCPO is co-packaged optics: fabric ports on every GPU package,
	// which is what lets a Lite-GPU swarm inject at full aggregate
	// bandwidth.
	LinkCPO
)

// String returns the link's CLI name.
func (k LinkKind) String() string {
	switch k {
	case LinkCopper:
		return "copper"
	case LinkPluggable:
		return "pluggable"
	default:
		return "cpo"
	}
}

// SwitchKind selects the switching discipline. The zero value defaults
// to packet switching, except under FabricFlatCircuit, whose point is
// the circuit discipline.
type SwitchKind int

const (
	// SwitchDefault is packet switching (circuit under FabricFlatCircuit).
	SwitchDefault SwitchKind = iota
	// SwitchPacket is an electrical packet switch: concurrent transfers
	// share ports max-min fairly, each hop pays the packet-switch
	// latency.
	SwitchPacket
	// SwitchCircuit is an optical circuit switch: transfers hold
	// exclusive circuits at full port bandwidth, FIFO-serialized, with
	// a reconfiguration delay per circuit but far lower path latency.
	SwitchCircuit
)

// NetworkConfig puts the fabric inside the serving event loop. The
// zero value preserves the historical semantics exactly: an infinite,
// instantaneous network (KV-cache handoff between the static policy's
// phase pools is free, routing is free), which is what keeps every
// pre-network golden byte-identical.
//
// With a fabric selected, transfers between instances in *different*
// scale-up nodes are simulated on internal/netsim: a KV handoff
// occupies real port bandwidth, contends with concurrent handoffs,
// and pays switch path latency — while transfers inside one node keep
// riding the node's internal interconnect for free, which is exactly
// the asymmetry the paper's Section 3 is about (a big-GPU deployment
// fits its phase pools in one NVLink domain; its equal-silicon
// Lite-GPU replacement outgrows the node and pushes the same bytes
// onto the datacenter fabric).
type NetworkConfig struct {
	// Fabric selects the topology; FabricOff (the zero value) disables
	// the in-loop network entirely.
	Fabric FabricKind
	// Link selects the physical link technology (default co-packaged
	// optics). Copper and pluggable optics attach one fabric port per
	// instance (a server NIC); CPO attaches ports on every GPU.
	Link LinkKind
	// Switch selects the switching discipline (default packet; circuit
	// under FabricFlatCircuit).
	Switch SwitchKind
	// NodeGPUs is the scale-up domain size in GPU packages (default 8,
	// an NVLink-class node). Instances are packed into nodes in
	// instance order; transfers within a node bypass the fabric.
	NodeGPUs int
	// LatencyScale multiplies the fabric's switch path latency (≤ 0 or
	// 1 = physical values). It is the network counterpart of
	// FailureConfig.TimeScale: switch traversals are sub-microsecond
	// while serving latencies are tens of milliseconds, so sensitivity
	// studies scale the latency axis to model congested switches, deep
	// software stacks, or simply to make the latency term visible at
	// serving timescales. Circuit reconfiguration time is a
	// switching-device property and is not scaled.
	LatencyScale float64
}

// Enabled reports whether the in-loop fabric is on.
func (n NetworkConfig) Enabled() bool { return n.Fabric != FabricOff }

// Validate reports the first configuration problem, or nil.
func (n NetworkConfig) Validate() error {
	if n.Fabric < FabricOff || n.Fabric > FabricFlatCircuit {
		return fmt.Errorf("serve: unknown fabric kind %d", int(n.Fabric))
	}
	if n.Link < LinkDefault || n.Link > LinkCPO {
		return fmt.Errorf("serve: unknown link kind %d", int(n.Link))
	}
	if n.Switch < SwitchDefault || n.Switch > SwitchCircuit {
		return fmt.Errorf("serve: unknown switch kind %d", int(n.Switch))
	}
	if n.NodeGPUs < 0 {
		return fmt.Errorf("serve: negative NodeGPUs %d", n.NodeGPUs)
	}
	if n.LatencyScale < 0 || math.IsNaN(n.LatencyScale) || math.IsInf(n.LatencyScale, 0) {
		return fmt.Errorf("serve: bad LatencyScale %v", n.LatencyScale)
	}
	if n.Enabled() && n.Link == LinkCopper && n.circuit() {
		return fmt.Errorf("serve: an optical circuit switch cannot terminate copper links")
	}
	return nil
}

// String renders the config as its CLI spec: "off" or
// "fabric:link:switch".
func (n NetworkConfig) String() string {
	if !n.Enabled() {
		return "off"
	}
	return fmt.Sprintf("%s:%s:%s", n.Fabric, n.Link, n.switchName())
}

func (n NetworkConfig) switchName() string {
	if n.circuit() {
		return "circuit"
	}
	return "packet"
}

// ParseNetworkConfig parses a CLI fabric spec: "off", or
// "fabric[:link[:switch]]" with fabric ∈ {clos, leaf-spine,
// flat-circuit}, link ∈ {copper, pluggable, cpo} (default cpo), and
// switch ∈ {packet, circuit} (default packet; circuit for
// flat-circuit).
func ParseNetworkConfig(spec string) (NetworkConfig, error) {
	var n NetworkConfig
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" || spec == "none" {
		return n, nil
	}
	parts := strings.Split(spec, ":")
	if len(parts) > 3 {
		return n, fmt.Errorf("serve: fabric spec %q has more than fabric:link:switch", spec)
	}
	switch parts[0] {
	case "clos":
		n.Fabric = FabricClos
	case "leaf-spine", "leafspine":
		n.Fabric = FabricLeafSpine
	case "flat-circuit", "flatcircuit":
		n.Fabric = FabricFlatCircuit
	default:
		return n, fmt.Errorf("serve: unknown fabric %q (want off, clos, leaf-spine, or flat-circuit)", parts[0])
	}
	if len(parts) > 1 {
		switch parts[1] {
		case "copper":
			n.Link = LinkCopper
		case "pluggable":
			n.Link = LinkPluggable
		case "cpo":
			n.Link = LinkCPO
		default:
			return n, fmt.Errorf("serve: unknown link %q (want copper, pluggable, or cpo)", parts[1])
		}
	}
	if len(parts) > 2 {
		switch parts[2] {
		case "packet":
			n.Switch = SwitchPacket
		case "circuit":
			n.Switch = SwitchCircuit
		default:
			return n, fmt.Errorf("serve: unknown switch %q (want packet or circuit)", parts[2])
		}
	}
	return n, nil
}

// ParseNetworkConfigWithLink is ParseNetworkConfig with a default link
// technology: when spec names a fabric without an explicit link part
// (no ":"), link is spliced in — the shared normalization behind the
// CLIs' -fabric/-link flag pair. An empty link leaves the spec as-is.
func ParseNetworkConfigWithLink(spec, link string) (NetworkConfig, error) {
	spec = strings.TrimSpace(spec)
	if link != "" && spec != "" && spec != "off" && spec != "none" && !strings.Contains(spec, ":") {
		spec += ":" + link
	}
	return ParseNetworkConfig(spec)
}

// DefaultFabricCandidates returns the fabric designs the capacity
// planner crosses when asked to search the fabric axis: the cheap
// rack-scale option, today's datacenter default, the planner's
// historical hard-coded choice, and the paper's favored design.
func DefaultFabricCandidates() []NetworkConfig {
	return []NetworkConfig{
		{Fabric: FabricClos, Link: LinkCopper, Switch: SwitchPacket},
		{Fabric: FabricClos, Link: LinkPluggable, Switch: SwitchPacket},
		{Fabric: FabricClos, Link: LinkCPO, Switch: SwitchPacket},
		{Fabric: FabricFlatCircuit, Link: LinkCPO, Switch: SwitchCircuit},
	}
}

func (n NetworkConfig) link() network.LinkTech {
	switch n.Link {
	case LinkCopper:
		return network.Copper()
	case LinkPluggable:
		return network.PluggableOptics()
	default:
		return network.CoPackagedOptics()
	}
}

func (n NetworkConfig) swtch() network.Switch {
	if n.circuit() {
		return network.CircuitSwitch()
	}
	return network.PacketSwitch()
}

// circuit resolves the switching discipline: explicit choice wins,
// then FabricFlatCircuit defaults to circuit switching.
func (n NetworkConfig) circuit() bool {
	switch n.Switch {
	case SwitchCircuit:
		return true
	case SwitchPacket:
		return false
	}
	return n.Fabric == FabricFlatCircuit
}

func (n NetworkConfig) nodeGPUs() int {
	if n.NodeGPUs > 0 {
		return n.NodeGPUs
	}
	return 8
}

func (n NetworkConfig) latencyScale() float64 {
	if n.LatencyScale > 0 {
		return n.LatencyScale
	}
	return 1
}

// Topology builds the selected fabric design at the given endpoint
// count — used both to derive the in-loop latency parameters and to
// price the fabric through the TCO model. Panics on FabricOff; callers
// gate on Enabled.
func (n NetworkConfig) Topology(endpoints int) network.Topology {
	link, sw := n.link(), n.swtch()
	switch n.Fabric {
	case FabricClos:
		return network.Clos(endpoints, link, sw)
	case FabricLeafSpine:
		return network.LeafSpine(endpoints, link, sw)
	case FabricFlatCircuit:
		return network.FlatCircuit(endpoints, link, sw)
	}
	panic("serve: Topology on a disabled NetworkConfig")
}

// TCOTopology resolves the fabric a deployment of `gpus` accelerators
// is priced over: the configured design when one is set, otherwise the
// planner's historical default — a folded Clos over co-packaged optics
// and packet switches.
func (n NetworkConfig) TCOTopology(gpus int) network.Topology {
	if n.Enabled() {
		return n.Topology(gpus)
	}
	return network.Clos(gpus, network.CoPackagedOptics(), network.PacketSwitch())
}

// instancePortBW returns one instance's fabric attachment bandwidth in
// bytes/s. Co-packaged optics puts fabric ports on every GPU package,
// so an instance injects at GPU-count × min(per-GPU NetBW, port);
// copper and pluggable optics attach through one server NIC, capping
// the whole instance at a single port (never above the GPUs' aggregate
// off-package bandwidth).
func (n NetworkConfig) instancePortBW(gpu hw.GPU, gpus int) float64 {
	link := n.link()
	if n.Link == LinkCopper || n.Link == LinkPluggable {
		return math.Min(float64(gpus)*float64(gpu.NetBW), float64(link.PortBW))
	}
	return float64(gpus) * math.Min(float64(gpu.NetBW), float64(link.PortBW))
}
