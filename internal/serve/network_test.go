package serve

import (
	"fmt"
	"math"
	"testing"

	"litegpu/internal/hw"
	"litegpu/internal/inference"
	"litegpu/internal/model"
	"litegpu/internal/trace"
	"litegpu/internal/units"
)

// h70Config is the equal-silicon big side of the fabric studies: one
// prefill and one decode instance of 2×H100 each serving Llama3-70B —
// 4 packages, comfortably inside one scale-up node.
func h70Config() Config {
	return Config{
		GPU:              hw.H100(),
		Model:            model.Llama3_70B(),
		Opts:             inference.DefaultOptions(),
		PrefillInstances: 1,
		PrefillGPUs:      2,
		DecodeInstances:  1,
		DecodeGPUs:       2,
		MaxPrefillBatch:  4,
		MaxDecodeBatch:   64,
	}
}

// l70Config is the Lite replacement at identical silicon: the same 4
// H100s' worth of area as 16 quarter-size Lite-GPUs, which no longer
// fit one 8-package node — each TP-8 instance fills its own node, so
// every KV handoff crosses the fabric.
func l70Config() Config {
	cfg := h70Config()
	cfg.GPU = hw.Lite()
	cfg.PrefillGPUs = 8
	cfg.DecodeGPUs = 8
	return cfg
}

func pluggablePacket() NetworkConfig {
	return NetworkConfig{Fabric: FabricClos, Link: LinkPluggable, Switch: SwitchPacket}
}

func cpoCircuit() NetworkConfig {
	return NetworkConfig{Fabric: FabricFlatCircuit, Link: LinkCPO, Switch: SwitchCircuit}
}

func mustRun(t *testing.T, cfg Config, reqs []trace.Request, horizon units.Seconds) Metrics {
	t.Helper()
	m, err := Run(cfg, reqs, horizon)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestParseNetworkConfig covers the CLI spec grammar round-trip.
func TestParseNetworkConfig(t *testing.T) {
	cases := map[string]NetworkConfig{
		"off":                      {},
		"":                         {},
		"clos":                     {Fabric: FabricClos},
		"clos:pluggable":           {Fabric: FabricClos, Link: LinkPluggable},
		"flat-circuit:cpo:circuit": {Fabric: FabricFlatCircuit, Link: LinkCPO, Switch: SwitchCircuit},
		"leaf-spine:copper:packet": {Fabric: FabricLeafSpine, Link: LinkCopper, Switch: SwitchPacket},
	}
	for spec, want := range cases {
		got, err := ParseNetworkConfig(spec)
		if err != nil || got != want {
			t.Errorf("ParseNetworkConfig(%q) = %+v, %v; want %+v", spec, got, err, want)
		}
	}
	for _, bad := range []string{"mesh", "clos:fiber", "clos:cpo:quantum", "clos:cpo:packet:extra"} {
		if _, err := ParseNetworkConfig(bad); err == nil {
			t.Errorf("ParseNetworkConfig(%q) did not fail", bad)
		}
	}
}

// TestNetworkOffEquivalence is the explicit network-off guard: with
// Config.Network zeroed, and equally with a fabric enabled but every
// instance inside one scale-up node (so no transfer ever crosses the
// fabric), every legacy metric is byte-identical to the historical
// simulator, and the transfer metrics are zero.
func TestNetworkOffEquivalence(t *testing.T) {
	gen := trace.CodingWorkload(1.5, 21)
	reqs, err := gen.Generate(150)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range SchedulerPolicies() {
		t.Run(pol.String(), func(t *testing.T) {
			cfg := smallConfig()
			cfg.Scheduler = pol
			base := mustRun(t, cfg, reqs, 300)

			// Fabric enabled, but the 2-GPU deployment shares one node:
			// the event stream must not change at all.
			onNet := cfg
			onNet.Network = pluggablePacket()
			withFab := mustRun(t, onNet, reqs, 300)

			if got, want := fmt.Sprintf("%x", withFab), fmt.Sprintf("%x", base); got != want {
				t.Fatalf("intra-node fabric diverged from network-off:\n got %s\nwant %s", got, want)
			}
			if base.NetTransfers != 0 || base.TransferTime.N != 0 || base.NetworkBoundFraction != 0 {
				t.Fatalf("network-off run reported transfers: %+v", base)
			}
		})
	}
}

// TestKVHandoffCharged pins the KV handoff arithmetic on a single
// request: the transfer carries the model's full KV bytes for the
// prompt, takes serialization + path latency on the configured link,
// and TTFT includes exactly that.
func TestKVHandoffCharged(t *testing.T) {
	cfg := l70Config()
	reqs := oneRequest(1000, 8)

	off := mustRun(t, cfg, reqs, 600)

	cfg.Network = pluggablePacket()
	on := mustRun(t, cfg, reqs, 600)

	if on.NetTransfers != 1 || on.TransferTime.N != 1 {
		t.Fatalf("NetTransfers = %d (TransferTime.N %d), want 1", on.NetTransfers, on.TransferTime.N)
	}
	wantBytes := float64(model.Llama3_70B().KVBytesPerToken(model.FP8())) * 1000
	if on.TransferBytes.Mean != wantBytes {
		t.Fatalf("TransferBytes = %v, want %v", on.TransferBytes.Mean, wantBytes)
	}
	// Pluggable optics attach one 100 GB/s NIC per instance; the Clos
	// fabric at 16 endpoints is one tier, so one 600 ns hop.
	wantDur := wantBytes/100e9 + 600e-9
	if math.Abs(on.TransferTime.Mean-wantDur) > 1e-9 {
		t.Fatalf("TransferTime = %v, want %v", on.TransferTime.Mean, wantDur)
	}
	dTTFT := on.TTFT.Mean - off.TTFT.Mean
	if math.Abs(dTTFT-wantDur) > 1e-9 {
		t.Fatalf("TTFT grew by %v, want the transfer duration %v", dTTFT, wantDur)
	}
	if on.Completed != 1 || on.NetworkBoundFraction <= 0 {
		t.Fatalf("completed %d, network-bound fraction %v", on.Completed, on.NetworkBoundFraction)
	}
}

// TestIngressCharged: in a multi-pool cluster every routed arrival
// pays an ingress transfer from the router to its pool, on top of any
// KV handoffs.
func TestIngressCharged(t *testing.T) {
	gen := trace.CodingWorkload(1.0, 5)
	reqs, err := gen.Generate(60)
	if err != nil {
		t.Fatal(err)
	}
	cc := clusterOf(smallConfig(), smallConfig())
	cc.Network = pluggablePacket()
	cm, err := RunCluster(cc, reqs, 200)
	if err != nil {
		t.Fatal(err)
	}
	// Both 2-GPU pools are intra-node (no KV transfers), so the
	// transfer count is exactly the routed arrivals.
	if cm.Total.NetTransfers != cm.Total.Arrived || cm.Total.Arrived != len(reqs) {
		t.Fatalf("NetTransfers = %d, Arrived = %d, trace %d",
			cm.Total.NetTransfers, cm.Total.Arrived, len(reqs))
	}
	if cm.Total.Completed == 0 {
		t.Fatal("nothing completed through the ingress path")
	}
}

// failAt injects a deterministic instance failure at a chosen time —
// the white-box hook the transfer-failure edge cases need, since
// stochastic injection cannot guarantee a mid-transfer hit.
func failAt(cs *clusterSim, pool, id int, at float64) {
	cs.eng.Schedule(at, prioFailure, func(now float64) {
		cs.failInstance(cs.pools[pool], id, now)
	})
}

// TestTransferDstFailure covers the "transfer in flight when the
// destination instance fails" edge case under both in-flight policies:
// requeue retargets the handoff to a live decode instance and
// retransmits (the request still completes, with the retry visible in
// transfer time), drop abandons it.
func TestTransferDstFailure(t *testing.T) {
	base := l70Config()
	base.DecodeInstances = 2 // a live retarget destination exists
	// Stretch the path latency so the handoff is in flight for ~6000 s:
	// the failure at t=3000 is guaranteed mid-transfer.
	net := pluggablePacket()
	net.LatencyScale = 1e10 // 600 ns hop → 6000 s
	base.Network = net
	reqs := oneRequest(1500, 4)

	run := func(policy FailurePolicy) Metrics {
		cc := clusterOf(base)
		cc.Failures.Policy = policy
		cs, err := newClusterSim(cc, 20000)
		if err != nil {
			t.Fatal(err)
		}
		// Pool-local instance 1 = first decode engine, the rotation's
		// first pick.
		failAt(cs, 0, 1, 3000)
		return cs.run(reqs).Pools[0].Metrics
	}

	req := run(RequeueOnFailure)
	if req.Requeued != 1 {
		t.Fatalf("requeue: Requeued = %d, want 1", req.Requeued)
	}
	if req.Completed != 1 {
		t.Fatalf("requeue: Completed = %d, want 1 (retargeted handoff must deliver)", req.Completed)
	}
	// The sample spans original start (just after prefill, t ≈ 0.07)
	// to retried delivery (t = 3000 + 6000 + serialization): far above
	// the 6000 s a clean single flight would measure.
	if req.TransferTime.Max < 8900 {
		t.Fatalf("requeue: transfer time %v must include the retry (restart at t=3000 + 6000 s latency)",
			req.TransferTime.Max)
	}

	drop := run(DropOnFailure)
	if drop.DroppedOnFailure != 1 || drop.Completed != 0 {
		t.Fatalf("drop: DroppedOnFailure = %d, Completed = %d, want 1, 0",
			drop.DroppedOnFailure, drop.Completed)
	}
	if drop.NetTransfers != 0 {
		t.Fatalf("drop: cancelled transfer still delivered (NetTransfers %d)", drop.NetTransfers)
	}
}

// TestTransferDstFailureRetargetSameNode: a retargeted handoff whose
// new destination shares the source's scale-up node gets the same
// intra-node bypass finishPrefillReq applies — delivered immediately
// over the node interconnect, not retransmitted on the fabric.
func TestTransferDstFailureRetargetSameNode(t *testing.T) {
	// TP-4 Lite instances: prefill + decode 0 fill node 0, decode 1
	// sits alone on node 1.
	base := l70Config()
	base.PrefillGPUs, base.DecodeGPUs = 4, 4
	base.DecodeInstances = 2
	net := pluggablePacket()
	net.LatencyScale = 1e10 // cross-node transfers take ~6000 s
	base.Network = net
	reqs := oneRequest(1500, 4)

	cs, err := newClusterSim(clusterOf(base), 20000)
	if err != nil {
		t.Fatal(err)
	}
	// Down decode 0 before prefill completes, so the handoff targets
	// the cross-node decode 1; bring decode 0 back, then kill decode 1
	// mid-transfer — the retarget lands back on decode 0, same node as
	// the source.
	failAt(cs, 0, 1, 0.001)
	cs.eng.Schedule(100, prioFailure, func(now float64) { cs.recoverInstance(cs.pools[0], 1, now) })
	failAt(cs, 0, 2, 3000)
	m := cs.run(reqs).Pools[0].Metrics
	if m.Requeued != 1 {
		t.Fatalf("Requeued = %d, want 1", m.Requeued)
	}
	if m.Completed != 1 {
		t.Fatalf("Completed = %d, want 1 (same-node retarget must deliver)", m.Completed)
	}
	if m.NetTransfers != 0 {
		t.Fatalf("NetTransfers = %d; the retargeted handoff must bypass the fabric inside the node", m.NetTransfers)
	}
	// Delivery happened at the failure instant, not 6000 s later.
	if m.TTFT.Max >= 6000 {
		t.Fatalf("TTFT %v: same-node retarget paid the fabric anyway", m.TTFT.Max)
	}
}

// TestTransferSrcFailure: when the *source* prefill instance dies
// mid-handoff its KV is gone — requeue sends the prompt back through
// prefill, drop abandons it.
func TestTransferSrcFailure(t *testing.T) {
	base := l70Config()
	net := pluggablePacket()
	net.LatencyScale = 1e10
	base.Network = net
	reqs := oneRequest(1500, 4)

	cc := clusterOf(base)
	cs, err := newClusterSim(cc, 20000)
	if err != nil {
		t.Fatal(err)
	}
	failAt(cs, 0, 0, 3000) // the only prefill engine
	m := cs.run(reqs).Pools[0].Metrics
	if m.Requeued != 1 {
		t.Fatalf("Requeued = %d, want 1 (prompt back to prefill queue)", m.Requeued)
	}
	if m.NetTransfers != 0 {
		t.Fatalf("the dead source's transfer delivered anyway (NetTransfers %d)", m.NetTransfers)
	}
}

// TestNetworkDeterminism: identical inputs, byte-identical metrics,
// fabric enabled — the contract the CI -count=2 job relies on.
func TestNetworkDeterminism(t *testing.T) {
	gen := trace.CodingWorkload(2.0, 33)
	reqs, err := gen.Generate(120)
	if err != nil {
		t.Fatal(err)
	}
	cfg := l70Config()
	cfg.PrefillInstances = 2
	cfg.Network = pluggablePacket()
	a := mustRun(t, cfg, reqs, 300)
	b := mustRun(t, cfg, reqs, 300)
	if fmt.Sprintf("%x", a) != fmt.Sprintf("%x", b) {
		t.Fatal("two identical fabric-enabled runs diverged")
	}
}

// TestFabricSensitivityLiteVsBig is the acceptance test for the
// paper's fabric-pressure claim, in simulation: on an equal-silicon
// H100-vs-Lite disaggregated pair serving the identical trace, the
// Lite deployment's TTFT degrades as fabric path latency and
// contention grow — because its instances outgrow the scale-up node
// and push every KV handoff onto the fabric, while the big-GPU
// deployment's phase pools share a node and degrade not at all — and
// a circuit-switched CPO fabric recovers most of that gap.
func TestFabricSensitivityLiteVsBig(t *testing.T) {
	gen := trace.CodingWorkload(1.2, 42)
	reqs, err := gen.Generate(120)
	if err != nil {
		t.Fatal(err)
	}
	meanTTFT := func(cfg Config, net NetworkConfig, scale float64) float64 {
		net.LatencyScale = scale
		cfg.Network = net
		return mustRun(t, cfg, reqs, 300).TTFT.Mean
	}
	h100, lite := h70Config(), l70Config()
	h100Off := mustRun(t, h100, reqs, 300).TTFT.Mean
	liteOff := mustRun(t, lite, reqs, 300).TTFT.Mean

	scales := []float64{1, 1e3, 1e4}
	var dLite []float64
	for _, s := range scales {
		dBig := meanTTFT(h100, pluggablePacket(), s) - h100Off
		if dBig != 0 {
			t.Fatalf("scale %g: the intra-node H100 deployment degraded by %v; it must not touch the fabric at all", s, dBig)
		}
		dLite = append(dLite, meanTTFT(lite, pluggablePacket(), s)-liteOff)
	}
	// The Lite deployment pays the fabric, and pays more as the
	// latency axis grows.
	if dLite[0] < 1e-3 {
		t.Fatalf("Lite degradation %v at physical latency; a 246 MB KV handoff over a 100 GB/s NIC must cost ≥ 1 ms", dLite[0])
	}
	for i := 1; i < len(dLite); i++ {
		if dLite[i] <= dLite[i-1] {
			t.Fatalf("Lite TTFT degradation not increasing in path latency: %v", dLite)
		}
	}
	// Contention axis: a burstier trace puts concurrent handoffs on
	// the same NIC, so the per-request fabric cost grows with load.
	busy, err := trace.CodingWorkload(3.6, 42).Generate(120)
	if err != nil {
		t.Fatal(err)
	}
	runTTFT := func(cfg Config, net NetworkConfig, rs []trace.Request) float64 {
		cfg.Network = net
		return mustRun(t, cfg, rs, 300).TTFT.Mean
	}
	liteBusyOff := runTTFT(lite, NetworkConfig{}, busy)
	dBusy := runTTFT(lite, pluggablePacket(), busy) - liteBusyOff
	if dBusy <= dLite[0] {
		t.Fatalf("Lite fabric cost at 3× load (%v) not above the light-load cost (%v); contention must bite", dBusy, dLite[0])
	}
	// The paper's remedy: co-packaged optics (per-GPU ports, 2× port
	// bandwidth) on a flat circuit-switched fabric recovers most of
	// the gap at the stressed latency point.
	dCircuit := meanTTFT(lite, cpoCircuit(), 1e4) - liteOff
	if dCircuit > 0.5*dLite[2] {
		t.Fatalf("circuit-switched CPO recovers too little: degradation %v vs packet-pluggable %v", dCircuit, dLite[2])
	}
}

// TestPlanCapacityFabricAxis is the planner's acceptance test: with
// the fabric as a search axis, different deployment scales select
// different fabrics at different $/Mtok. The economics under
// DefaultCosts: a flat circuit-switched CPO fabric has the cheapest
// small-cluster capex ($250/port + $5000/switch), but the $80 copper
// port undercuts it once enough endpoints amortize the packet switch
// box — and copper drops out entirely once the cluster outgrows its
// 3 m reach.
func TestPlanCapacityFabricAxis(t *testing.T) {
	plan := func(rate float64) Plan {
		p, err := PlanCapacity(PlanRequest{
			GPU: hw.Lite(), Model: model.Llama3_70B(), Opts: inference.DefaultOptions(),
			Workload: trace.CodingWorkload(rate, 7),
			Horizon:  120, Drain: 60,
			Fabrics: DefaultFabricCandidates(),
		}, SLO{})
		if err != nil {
			t.Fatalf("rate %v: %v", rate, err)
		}
		return p
	}
	small := plan(1.5) // 8 GPUs
	large := plan(20)  // 20 GPUs
	if small.TotalGPUs >= large.TotalGPUs {
		t.Fatalf("premise: scales did not separate (%d vs %d GPUs)", small.TotalGPUs, large.TotalGPUs)
	}
	if small.Config.Network == large.Config.Network {
		t.Fatalf("both scales chose fabric %s; the axis must discriminate by scale", small.Config.Network)
	}
	if small.Config.Network != cpoCircuit() {
		t.Errorf("small scale chose %s, want flat-circuit:cpo:circuit", small.Config.Network)
	}
	if want := (NetworkConfig{Fabric: FabricClos, Link: LinkCopper, Switch: SwitchPacket}); large.Config.Network != want {
		t.Errorf("large scale chose %s, want clos:copper:packet", large.Config.Network)
	}
	if small.Fabric == "" || large.Fabric == "" || small.Fabric == large.Fabric {
		t.Errorf("plans must name their priced topologies, got %q and %q", small.Fabric, large.Fabric)
	}
	if small.Cost.CostPerMTokens == large.Cost.CostPerMTokens {
		t.Error("the two scales report identical $/Mtok")
	}
}

// TestPlanDefaultFabricUnchanged: with no fabric axis and no network,
// the planner prices the historical default (folded Clos over CPO and
// packet switches) — now as an explicit PlanRequest default rather
// than a hard-coded constant.
func TestPlanDefaultFabricUnchanged(t *testing.T) {
	p, err := PlanCapacity(PlanRequest{
		GPU: hw.H100(), Model: model.Llama3_8B(), Opts: inference.DefaultOptions(),
		Workload: trace.CodingWorkload(20, 7),
		Horizon:  60, Drain: 30,
	}, SLO{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Config.Network.Enabled() {
		t.Errorf("default plan enabled an in-loop fabric: %s", p.Config.Network)
	}
	want := (NetworkConfig{}).TCOTopology(p.TotalGPUs)
	if p.Fabric != want.Name {
		t.Errorf("default plan priced fabric %q, want %q", p.Fabric, want.Name)
	}
	if p.Cost.FabricCapex != want.Cost() {
		t.Errorf("fabric capex %v, want %v", p.Cost.FabricCapex, want.Cost())
	}
}

// TestCopperReachInfeasible: the physical constraint that retires
// copper at scale — a 96-package cluster needs more reach than 3 m of
// copper offers, so a copper-fabric candidate is rejected rather than
// priced.
func TestCopperReachInfeasible(t *testing.T) {
	copper := NetworkConfig{Fabric: FabricClos, Link: LinkCopper}
	if topo := copper.TCOTopology(64); !topo.Feasible() {
		t.Errorf("copper at 64 endpoints (2 racks) should be cableable")
	}
	if topo := copper.TCOTopology(96); topo.Feasible() {
		t.Errorf("copper at 96 endpoints (3 racks, 3.6 m) must not be cableable")
	}
	if err := (NetworkConfig{Fabric: FabricClos, Link: LinkCopper, Switch: SwitchCircuit}).Validate(); err == nil {
		t.Error("copper into an optical circuit switch must not validate")
	}
}

// TestNetworkAllocationsDoNotScaleWithRequests extends the PR-4
// allocation pin to the fabric path: with transfers in the loop, a 4×
// trace must still cost only config-bounded extra allocations.
func TestNetworkAllocationsDoNotScaleWithRequests(t *testing.T) {
	cfg := l70Config()
	cfg.Network = pluggablePacket()
	gen := trace.CodingWorkload(1.0, 7)
	short, err := gen.Generate(100)
	if err != nil {
		t.Fatal(err)
	}
	long, err := gen.Generate(400)
	if err != nil {
		t.Fatal(err)
	}
	aShort := allocsForTrace(t, cfg, short, 200)
	aLong := allocsForTrace(t, cfg, long, 500)
	extraReqs := len(long) - len(short)
	extra := aLong - aShort
	if extra > 160 || extra > 0.5*float64(extraReqs) {
		t.Errorf("simulating %d extra requests with the fabric cost %.0f extra allocations (short %.0f, long %.0f)",
			extraReqs, extra, aShort, aLong)
	}
}
