// Package serve is a discrete-event simulator of LLM serving on GPU
// clusters, with Splitwise-style phase splitting: dedicated prefill
// engines batch incoming prompts, dedicated decode engines run continuous
// batching over active generations (the deployment style the paper's case
// study assumes when it evaluates the two phases on separate clusters).
//
// The simulator consumes the same analytical stage model the Figure 3
// study uses (internal/inference), so it cross-validates the roofline
// numbers under queueing, mixed request lengths, and bursty arrivals —
// and exposes the latency SLO attainment the closed-form search cannot
// see.
package serve

import (
	"fmt"
	"math"
	"sort"

	"litegpu/internal/hw"
	"litegpu/internal/inference"
	"litegpu/internal/mathx"
	"litegpu/internal/model"
	"litegpu/internal/trace"
	"litegpu/internal/units"
)

// Config describes the serving deployment.
type Config struct {
	GPU   hw.GPU
	Model model.Transformer
	Opts  inference.Options

	// PrefillInstances×PrefillGPUs and DecodeInstances×DecodeGPUs size
	// the two pools (GPUs per instance is the tensor-parallel degree).
	PrefillInstances int
	PrefillGPUs      int
	DecodeInstances  int
	DecodeGPUs       int

	// MaxPrefillBatch caps how many prompts one prefill pass fuses.
	MaxPrefillBatch int
	// MaxDecodeBatch caps continuous-batching occupancy (further capped
	// by KV-cache capacity).
	MaxDecodeBatch int
}

// Validate reports the first configuration problem, or nil.
func (c Config) Validate() error {
	if err := c.GPU.Validate(); err != nil {
		return err
	}
	if err := c.Model.Validate(); err != nil {
		return err
	}
	switch {
	case c.PrefillInstances <= 0 || c.DecodeInstances <= 0:
		return fmt.Errorf("serve: need at least one instance per pool")
	case c.PrefillGPUs <= 0 || c.DecodeGPUs <= 0:
		return fmt.Errorf("serve: need at least one GPU per instance")
	case c.MaxPrefillBatch <= 0 || c.MaxDecodeBatch <= 0:
		return fmt.Errorf("serve: batch caps must be positive")
	}
	return nil
}

// Metrics summarizes a simulated serving run.
type Metrics struct {
	Arrived   int
	Completed int
	// Dropped counts requests rejected because their prompt's KV
	// footprint can never fit a prefill pass even in a batch of one —
	// without this they would starve in the prefill queue forever,
	// silently depressing utilization and inflating nothing.
	Dropped int
	// TTFT is time-to-first-token (arrival → prefill completion) over
	// completed-prefill requests, seconds.
	TTFT mathx.Summary
	// TBT is the mean time-between-tokens per completed request, seconds.
	TBT mathx.Summary
	// E2E is arrival → last token, seconds.
	E2E mathx.Summary
	// TTFTAttainment and TBTAttainment are the fractions of requests
	// meeting the paper's SLOs.
	TTFTAttainment float64
	TBTAttainment  float64
	// PrefillUtilization and DecodeUtilization are busy-time fractions.
	PrefillUtilization float64
	DecodeUtilization  float64
	// TokensGenerated counts decoded tokens.
	TokensGenerated int
}

type activeReq struct {
	req       trace.Request
	remaining int
	decodeAt  float64 // decode admission time
	firstAt   float64 // first-token emission time
}

type prefillEngine struct {
	freeAt float64
	busy   float64
	batch  []trace.Request
}

type decodeEngine struct {
	active  []*activeReq
	stepEnd float64 // 0 when idle
	busy    float64
}

// Run simulates serving the request stream until the horizon. Requests
// still in flight at the horizon are not counted as completed.
func Run(cfg Config, reqs []trace.Request, horizon units.Seconds) (Metrics, error) {
	if err := cfg.Validate(); err != nil {
		return Metrics{}, err
	}
	opts := cfg.Opts
	// Cap decode occupancy by KV capacity.
	maxKV := inference.MaxFeasibleBatch(cfg.GPU, cfg.Model, inference.Decode, cfg.DecodeGPUs, opts)
	if maxKV <= 0 {
		return Metrics{}, fmt.Errorf("serve: %s does not fit on %d×%s for decode",
			cfg.Model.Name, cfg.DecodeGPUs, cfg.GPU.Name)
	}
	decodeCap := cfg.MaxDecodeBatch
	if decodeCap > maxKV {
		decodeCap = maxKV
	}
	if inference.MaxFeasibleBatch(cfg.GPU, cfg.Model, inference.Prefill, cfg.PrefillGPUs, opts) < 1 {
		return Metrics{}, fmt.Errorf("serve: %s does not fit on %d×%s for prefill",
			cfg.Model.Name, cfg.PrefillGPUs, cfg.GPU.Name)
	}

	sorted := append([]trace.Request(nil), reqs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Arrival < sorted[j].Arrival })

	prefills := make([]prefillEngine, cfg.PrefillInstances)
	decodes := make([]decodeEngine, cfg.DecodeInstances)
	var prefillQ, decodeQ []trace.Request
	decodeAdmit := make(map[int]float64) // request ID → decode admission time

	var (
		m          Metrics
		ttfts      []float64
		tbts       []float64
		e2es       []float64
		ttftOK     int
		tbtOK      int
		arrivalIdx int
	)
	h := float64(horizon)

	prefillTime := newPrefillTimer(cfg, opts)
	decodeTime := newDecodeTimer(cfg, opts)

	dispatchPrefill := func(now float64) {
		for i := range prefills {
			e := &prefills[i]
			for e.freeAt <= now && len(prefillQ) > 0 {
				n := cfg.MaxPrefillBatch
				if n > len(prefillQ) {
					n = len(prefillQ)
				}
				// Shrink the batch until its KV footprint fits. Run
				// validated the model fits at the nominal prompt length,
				// but an individual oversized prompt can still exceed
				// capacity alone (n reaches 0): drop it rather than let
				// it starve at the head of the queue forever.
				dt := math.Inf(1)
				for ; n >= 1; n-- {
					if dt = prefillTime(prefillQ[:n]); !math.IsInf(dt, 1) {
						break
					}
				}
				if n < 1 {
					prefillQ = prefillQ[1:]
					m.Dropped++
					continue
				}
				batch := prefillQ[:n]
				prefillQ = prefillQ[n:]
				e.batch = append([]trace.Request(nil), batch...)
				e.freeAt = now + dt
				e.busy += dt
			}
		}
	}
	startDecodeStep := func(now float64, e *decodeEngine) {
		// Admit from the queue up to capacity, then step if non-empty.
		for len(e.active) < decodeCap && len(decodeQ) > 0 {
			r := decodeQ[0]
			decodeQ = decodeQ[1:]
			decodeAdmit[r.ID] = now
			e.active = append(e.active, &activeReq{req: r, remaining: r.OutputTokens, decodeAt: now})
		}
		if len(e.active) == 0 {
			e.stepEnd = 0
			return
		}
		dt := decodeTime(len(e.active))
		e.stepEnd = now + dt
		e.busy += dt
	}

	for {
		// Next event: arrival, prefill completion, or decode step end.
		next := math.Inf(1)
		if arrivalIdx < len(sorted) {
			next = float64(sorted[arrivalIdx].Arrival)
		}
		for i := range prefills {
			if len(prefills[i].batch) > 0 && prefills[i].freeAt < next {
				next = prefills[i].freeAt
			}
		}
		for i := range decodes {
			if decodes[i].stepEnd > 0 && decodes[i].stepEnd < next {
				next = decodes[i].stepEnd
			}
		}
		if math.IsInf(next, 1) || next > h {
			break
		}
		now := next

		// Arrivals at `now`.
		for arrivalIdx < len(sorted) && float64(sorted[arrivalIdx].Arrival) <= now {
			prefillQ = append(prefillQ, sorted[arrivalIdx])
			m.Arrived++
			arrivalIdx++
		}

		// Prefill completions.
		for i := range prefills {
			e := &prefills[i]
			if len(e.batch) == 0 || e.freeAt > now {
				continue
			}
			for _, r := range e.batch {
				ttft := now - float64(r.Arrival)
				ttfts = append(ttfts, ttft)
				if units.Seconds(ttft) <= pickSLO(opts.TTFTLimit, 1.0) {
					ttftOK++
				}
				decodeQ = append(decodeQ, r)
			}
			e.batch = nil
		}

		// Decode step completions.
		for i := range decodes {
			e := &decodes[i]
			if e.stepEnd == 0 || e.stepEnd > now {
				continue
			}
			var still []*activeReq
			for _, a := range e.active {
				a.remaining--
				m.TokensGenerated++
				if a.remaining == a.req.OutputTokens-1 {
					a.firstAt = now
				}
				if a.remaining > 0 {
					still = append(still, a)
					continue
				}
				m.Completed++
				// Time-between-tokens is defined over the gaps between
				// consecutive tokens: n tokens have n-1 intervals
				// spanning first token → last token. A single-token
				// output has no inter-token gap, so its one step
				// duration stands in for the interval.
				tbt := now - a.decodeAt
				if a.req.OutputTokens > 1 {
					tbt = (now - a.firstAt) / float64(a.req.OutputTokens-1)
				}
				tbts = append(tbts, tbt)
				if units.Seconds(tbt) <= pickSLO(opts.TBTLimit, 0.050) {
					tbtOK++
				}
				e2es = append(e2es, now-float64(a.req.Arrival))
			}
			e.active = still
			e.stepEnd = 0
		}

		// Dispatch work freed or newly queued.
		dispatchPrefill(now)
		for i := range decodes {
			if decodes[i].stepEnd == 0 {
				startDecodeStep(now, &decodes[i])
			}
		}
	}

	m.TTFT = mathx.Summarize(ttfts)
	m.TBT = mathx.Summarize(tbts)
	m.E2E = mathx.Summarize(e2es)
	if len(ttfts) > 0 {
		m.TTFTAttainment = float64(ttftOK) / float64(len(ttfts))
	}
	if len(tbts) > 0 {
		m.TBTAttainment = float64(tbtOK) / float64(len(tbts))
	}
	var pBusy, dBusy float64
	for i := range prefills {
		pBusy += prefills[i].busy
	}
	for i := range decodes {
		dBusy += decodes[i].busy
	}
	if h > 0 {
		m.PrefillUtilization = pBusy / (h * float64(cfg.PrefillInstances))
		m.DecodeUtilization = dBusy / (h * float64(cfg.DecodeInstances))
	}
	return m, nil
}

func pickSLO(v units.Seconds, def units.Seconds) units.Seconds {
	if v > 0 {
		return v
	}
	return def
}

// newPrefillTimer returns a memoized batch-prefill duration function.
// Durations come from the analytical model at the batch's mean prompt
// length (stage costs are near-linear in total tokens), quantized to
// 64-token buckets for cache efficiency.
func newPrefillTimer(cfg Config, opts inference.Options) func([]trace.Request) float64 {
	type key struct{ b, lenBucket int }
	cache := make(map[key]float64)
	return func(batch []trace.Request) float64 {
		if len(batch) == 0 {
			return 0
		}
		var total int
		for _, r := range batch {
			total += r.PromptTokens
		}
		mean := total / len(batch)
		if mean < 1 {
			mean = 1
		}
		k := key{len(batch), (mean + 63) / 64}
		if v, ok := cache[k]; ok {
			return v
		}
		o := opts
		o.PromptLen = k.lenBucket * 64
		est, err := inference.Run(cfg.GPU, cfg.Model, inference.Prefill, cfg.PrefillGPUs, len(batch), o)
		v := math.Inf(1)
		if err == nil {
			v = float64(est.Latency)
		}
		cache[k] = v
		return v
	}
}

// newDecodeTimer returns a memoized decode-step duration function keyed
// by batch size, evaluated at the configured decode context length.
func newDecodeTimer(cfg Config, opts inference.Options) func(int) float64 {
	cache := make(map[int]float64)
	return func(b int) float64 {
		if b <= 0 {
			return 0
		}
		if v, ok := cache[b]; ok {
			return v
		}
		est, err := inference.Run(cfg.GPU, cfg.Model, inference.Decode, cfg.DecodeGPUs, b, opts)
		v := math.Inf(1)
		if err == nil {
			v = float64(est.Latency)
		}
		cache[b] = v
		return v
	}
}
