// Package serve is a discrete-event simulator of LLM serving on GPU
// clusters, built on the shared internal/sim event engine, with a
// pluggable scheduling discipline per pool (see SchedulerPolicy):
//
//   - StaticDisaggregated: Splitwise-style phase splitting — dedicated
//     prefill engines batch incoming prompts, dedicated decode engines
//     run continuous batching over active generations (the deployment
//     style the paper's case study assumes when it evaluates the two
//     phases on separate clusters).
//   - ContinuousBatching: colocated prefill+decode instances in the
//     vLLM/Orca style — finished requests free batch slots that are
//     refilled from the queue every iteration.
//   - ChunkedPrefill: continuous batching with Sarathi-style chunking —
//     long prompts are split into fixed-size chunks fused with decode
//     steps, bounding time-between-token stalls.
//
// The simulator consumes the same analytical stage model the Figure 3
// study uses (internal/inference), so it cross-validates the roofline
// numbers under queueing, mixed request lengths, and bursty arrivals —
// and exposes the latency SLO attainment the closed-form search cannot
// see.
//
// Cluster-level scenarios compose with every scheduler: GPU failures
// that kill an instance mid-run (driven by internal/failure rates, with
// hot spares and repair delays — see FailureConfig), heterogeneous
// instance pools serving one trace behind a pluggable router
// (RunCluster), and the capacity planner (PlanCapacity), which sizes
// the cheapest deployment — across scheduling policies, when asked —
// that meets the SLO attainment targets.
package serve

import (
	"fmt"
	"math"

	"litegpu/internal/hw"
	"litegpu/internal/inference"
	"litegpu/internal/kv"
	"litegpu/internal/mathx"
	"litegpu/internal/model"
	"litegpu/internal/trace"
	"litegpu/internal/units"
)

// Config describes one serving pool: a homogeneous deployment of a
// single GPU type running one scheduling policy.
type Config struct {
	GPU   hw.GPU
	Model model.Transformer
	Opts  inference.Options

	// Scheduler selects the pool's serving discipline. The zero value
	// is StaticDisaggregated, the paper's phase-split deployment.
	Scheduler SchedulerPolicy

	// PrefillInstances×PrefillGPUs and DecodeInstances×DecodeGPUs size
	// the two pools of the static phase-split policy (GPUs per instance
	// is the tensor-parallel degree). The colocated policies derive
	// their shape from these fields unless Instances/InstanceGPUs are
	// set explicitly.
	PrefillInstances int
	PrefillGPUs      int
	DecodeInstances  int
	DecodeGPUs       int

	// Instances and InstanceGPUs size a colocated deployment
	// (ContinuousBatching or ChunkedPrefill): Instances TP groups of
	// InstanceGPUs each, every one serving both phases. When zero they
	// derive from the phase-split fields — InstanceGPUs =
	// max(PrefillGPUs, DecodeGPUs), since a colocated instance must fit
	// both phases, and Instances = TotalGPUs/InstanceGPUs (floor) —
	// i.e. the same silicon reshaped into colocated engines, which is
	// what makes equal-hardware policy comparisons one-field changes.
	// Ignored by StaticDisaggregated.
	Instances    int
	InstanceGPUs int

	// PrefillChunk is the chunk size in prompt tokens for the
	// ChunkedPrefill scheduler (default 512). Ignored by the others.
	PrefillChunk int

	// MaxPrefillBatch caps how many prompts one prefill pass fuses.
	MaxPrefillBatch int
	// MaxDecodeBatch caps continuous-batching occupancy (further capped
	// by KV-cache capacity). For colocated schedulers it bounds the
	// whole per-instance batch: decoding plus admitted-but-unprefilled
	// requests.
	MaxDecodeBatch int

	// Network puts the interconnect fabric inside the event loop. The
	// zero value is the historical infinite fabric: KV-cache handoff
	// between the static policy's phase pools is instantaneous and
	// routing is free. With a fabric selected, inter-node handoffs are
	// simulated on internal/netsim — they occupy port bandwidth,
	// contend with each other, and pay switch path latency — and the
	// Metrics gain transfer statistics. In a multi-pool cluster the
	// fabric is cluster-wide; see ClusterConfig.Network.
	Network NetworkConfig

	// KV puts KV-cache memory inside the event loop. The zero value is
	// the historical infinite-memory behavior: admission is bounded by
	// the batch caps alone and no blocks are tracked. With a policy
	// selected, every decode-capable instance owns a paged block
	// allocator sized from its HBM net of model weights (internal/kv);
	// admission is gated by free blocks, decode growth claims a block
	// per BlockTokens generated tokens, exhaustion preempts (recompute
	// re-runs prefill; swap rides the fabric), and prefix caching
	// shares ref-counted blocks across requests that declare a common
	// prefix. The Metrics gain KV statistics.
	KV kv.Config

	// Client closes the serving loop (PR 9): per-request deadlines,
	// retries with capped exponential backoff plus seeded jitter, and
	// abandonment, per tenant class. The zero value is the historical
	// open loop — no request ever times out.
	Client ClientConfig

	// Admission is the pool's load-shedding gate. The zero value admits
	// every arrival, however deep the backlog.
	Admission AdmissionConfig

	// Autoscale runs an elastic control loop over the pool's instances:
	// parked capacity unparks under load after a cold-start warm-up and
	// drains back when load falls. The zero value keeps the provisioned
	// fleet always on.
	Autoscale AutoscaleConfig

	// Straggler plants persistently slow instances: each draws one
	// step-time stretch factor from the jitter distribution at
	// construction. The zero value leaves every instance nominal.
	Straggler StragglerConfig
}

// colocShape returns the colocated deployment size: the explicit
// Instances/InstanceGPUs when set, otherwise the phase-split silicon
// reshaped — per-instance degree max(PrefillGPUs, DecodeGPUs), because
// a colocated instance must fit both phases, and instance count
// TotalGPUs/degree rounded down.
func (c Config) colocShape() (instances, gpus int) {
	gpus = c.InstanceGPUs
	if gpus <= 0 {
		gpus = max(c.PrefillGPUs, c.DecodeGPUs)
	}
	instances = c.Instances
	if instances <= 0 && gpus > 0 {
		instances = (c.PrefillInstances*c.PrefillGPUs + c.DecodeInstances*c.DecodeGPUs) / gpus
	}
	return instances, gpus
}

// ColocatedShape returns the instance count and per-instance GPU
// degree a colocated scheduler runs this configuration at — the
// explicit Instances/InstanceGPUs fields, or their derivation from the
// phase-split fields. Meaningful only when Scheduler.Colocated().
func (c Config) ColocatedShape() (instances, gpus int) { return c.colocShape() }

// instanceCount returns how many failable instances the pool runs under
// its scheduler — the quantity the per-pool priority-band cap bounds.
func (c Config) instanceCount() int {
	if c.Scheduler.Colocated() {
		n, _ := c.colocShape()
		return n
	}
	return c.PrefillInstances + c.DecodeInstances
}

// Validate reports the first configuration problem, or nil.
func (c Config) Validate() error {
	if err := c.GPU.Validate(); err != nil {
		return err
	}
	if err := c.Model.Validate(); err != nil {
		return err
	}
	if c.MaxPrefillBatch <= 0 || c.MaxDecodeBatch <= 0 {
		return fmt.Errorf("serve: batch caps must be positive")
	}
	if err := c.Network.Validate(); err != nil {
		return err
	}
	if err := c.KV.Validate(); err != nil {
		return err
	}
	if err := c.Client.Validate(); err != nil {
		return err
	}
	if err := c.Admission.Validate(); err != nil {
		return err
	}
	if err := c.Autoscale.Validate(); err != nil {
		return err
	}
	if err := c.Straggler.Validate(); err != nil {
		return err
	}
	if c.Scheduler.Colocated() {
		n, g := c.colocShape()
		switch {
		case g <= 0:
			return fmt.Errorf("serve: %s scheduler needs at least one GPU per instance", c.Scheduler)
		case n <= 0:
			return fmt.Errorf("serve: %s scheduler needs at least one instance", c.Scheduler)
		case c.PrefillChunk < 0:
			return fmt.Errorf("serve: negative prefill chunk %d", c.PrefillChunk)
		}
		return nil
	}
	switch {
	case c.PrefillInstances <= 0 || c.DecodeInstances <= 0:
		return fmt.Errorf("serve: need at least one instance per pool")
	case c.PrefillGPUs <= 0 || c.DecodeGPUs <= 0:
		return fmt.Errorf("serve: need at least one GPU per instance")
	}
	return nil
}

// TotalGPUs returns the accelerator count behind the configuration:
// both phase pools for the static policy, the colocated instance set
// otherwise.
func (c Config) TotalGPUs() int {
	if c.Scheduler.Colocated() {
		n, g := c.colocShape()
		return n * g
	}
	return c.PrefillInstances*c.PrefillGPUs + c.DecodeInstances*c.DecodeGPUs
}

// Metrics summarizes a simulated serving run.
type Metrics struct {
	Arrived   int
	Completed int
	// Dropped counts requests rejected because their prompt's KV
	// footprint can never fit a prefill pass even in a batch of one —
	// without this they would starve in the prefill queue forever,
	// silently depressing utilization and inflating nothing.
	Dropped int
	// TTFT is time-to-first-token (arrival → prefill completion) over
	// completed-prefill requests, seconds.
	TTFT mathx.Summary
	// TBT is the mean time-between-tokens per completed request, seconds.
	TBT mathx.Summary
	// E2E is arrival → last token, seconds.
	E2E mathx.Summary
	// TTFTAttainment is the fraction of requests meeting the TTFT limit
	// over every request that arrived and was not dropped as oversized —
	// a request still stuck in the prefill queue at the horizon, or
	// killed by an instance failure before its first token, counts as a
	// miss. (The pre-PR-2 ratio divided by completed prefills only,
	// which flattered a saturated system whose backlog never produced a
	// sample; that legacy ratio survives as TTFTAttainmentCompleted.)
	TTFTAttainment float64
	// TTFTAttainmentCompleted is the legacy attainment over requests
	// that completed prefill within the horizon. Kept for studies that
	// want conditional latency quality rather than end-to-end goodput.
	TTFTAttainmentCompleted float64
	// TBTAttainment is the fraction of completed requests meeting the
	// TBT limit.
	TBTAttainment float64
	// PrefillUtilization and DecodeUtilization are busy-time fractions.
	// Under a colocated scheduler both are measured over the full
	// instance set (each instance splits its time between the phases),
	// so they sum to at most 1.
	PrefillUtilization float64
	DecodeUtilization  float64
	// TokensGenerated counts decoded tokens, including tokens of
	// requests that never complete within the horizon.
	TokensGenerated int

	// The remaining fields are failure-aware serving metrics (PR 2).
	// With failure injection off they hold their ideal values
	// (Availability 1, zero events).

	// FailureEvents counts instance-killing GPU failures.
	FailureEvents int
	// Requeued counts in-flight requests returned to their pool's queue
	// after their instance died (RequeueOnFailure policy); one request
	// can requeue more than once.
	Requeued int
	// DroppedOnFailure counts in-flight requests abandoned when their
	// instance died (DropOnFailure policy). Not included in Dropped.
	DroppedOnFailure int
	// Availability is the time-averaged fraction of nominal GPU
	// capacity in service over the horizon — the serving-level
	// counterpart of failure.Result.Availability.
	Availability float64
	// Goodput is output tokens of completed requests per simulated
	// second: throughput that survived queueing, drops, and failures.
	Goodput float64
	// BlastRadius is the expected fraction of the deployment's GPU
	// capacity one instance failure removes (GPU-weighted over
	// instances) — the quantity the paper argues Lite-GPUs shrink. It
	// is structural, so it is reported even when no failure fired.
	BlastRadius float64

	// The remaining fields are network-in-the-loop metrics (PR 5).
	// With Config.Network zeroed they hold their zero values, and the
	// golden corpora pin the legacy fields byte-for-byte.

	// NetTransfers counts delivered fabric transfers: inter-node
	// KV-cache handoffs plus, in multi-pool clusters, routed-arrival
	// ingress transfers. Intra-node handoffs ride the scale-up
	// interconnect and are not counted.
	NetTransfers int
	// TransferBytes summarizes per-transfer payload sizes (bytes).
	TransferBytes mathx.Summary
	// TransferTime summarizes per-transfer in-fabric seconds: circuit
	// queueing, serialization under contention, and path latency. A
	// handoff that retransmits after its destination instance fails
	// keeps its original start, so retries show up as tail latency.
	TransferTime mathx.Summary
	// NetworkBoundFraction is total in-fabric seconds over total
	// end-to-end seconds of completed requests — the share of the
	// pool's delivered latency that the fabric contributed. It is an
	// aggregate ratio over the whole run, not a per-request mean.
	NetworkBoundFraction float64

	// The remaining fields are KV-memory metrics (PR 8). With Config.KV
	// zeroed they hold their zero values, and the golden corpora pin
	// the earlier field sets byte-for-byte.

	// KVPreemptions counts sequences evicted from a decode batch because
	// their instance ran out of KV blocks mid-generation.
	KVPreemptions int
	// KVCacheHitRate is prefix-cache block hits over prefix-cache block
	// lookups at admission — an aggregate ratio over the run, zero when
	// prefix caching is off or no request declared a shared prefix.
	KVCacheHitRate float64
	// KVPeakBlocks is the high-water mark of blocks in use. For a pool
	// it sums per-instance peaks (instances peak at different times, so
	// this is an upper bound on the pool-wide instantaneous peak).
	KVPeakBlocks int
	// KVMeanBlocks is the time-averaged number of blocks in use over the
	// horizon, summed across instances.
	KVMeanBlocks float64
	// KVRecomputeTokens counts tokens re-prefetched through prefill
	// because a preempted sequence's KV was discarded (Recompute
	// policy). Pure overhead: these passes occupy prefill capacity but
	// stamp no TTFT and generate no output.
	KVRecomputeTokens int

	// The remaining fields are closed-loop overload metrics (PR 9). With
	// Config.Client, Admission, Autoscale, and Straggler zeroed they hold
	// their zero values, and the golden corpora pin the earlier field
	// sets byte-for-byte.

	// ClientTimeouts counts client deadline expiries; one request can
	// time out on several attempts.
	ClientTimeouts int
	// ClientRetries counts resubmissions after a timeout or a shed.
	ClientRetries int
	// Abandoned counts requests whose client gave up for good after
	// exhausting its retries. Not included in Dropped.
	Abandoned int
	// Shed counts arrivals (and retries) rejected by admission control.
	// Shed requests are counted in Arrived but can never complete.
	Shed int
	// ScaleUps and ScaleDowns count autoscaler actions (per instance,
	// not per control tick).
	ScaleUps   int
	ScaleDowns int
	// MeanLiveInstances is the time-averaged unparked instance count
	// under autoscaling; zero when the autoscaler is off. Utilization
	// fields stay normalized by the provisioned fleet — parked silicon
	// is still paid for.
	MeanLiveInstances float64
	// UsefulGoodput is Goodput restricted to completions a client would
	// have waited for: output tokens of requests finishing within their
	// class's Client timeout, per second. Equal to Goodput when no
	// timeout is configured, and (by construction) when deadlines are
	// enforced; under ClientConfig.ObserveOnly it is the open-loop
	// baseline's deadline-qualified goodput.
	UsefulGoodput float64
	// Classes breaks the run down per tenant class, reported when
	// Client.Classes or admission control is configured; nil otherwise.
	Classes []ClassMetrics
}

// Run simulates serving the request stream until the horizon, with no
// failure injection. Requests still in flight at the horizon are not
// counted as completed. It is the single-pool special case of
// RunCluster; with the default StaticDisaggregated scheduler it
// reproduces the pre-scheduler-interface event loop byte-for-byte.
func Run(cfg Config, reqs []trace.Request, horizon units.Seconds) (Metrics, error) {
	return RunWithFailures(cfg, FailureConfig{}, reqs, horizon)
}

// RunWithFailures simulates a single pool under the given failure
// config (the zero value disables injection, making it Run). The
// planner and the facade studies share it so single-pool semantics live
// in one place.
func RunWithFailures(cfg Config, f FailureConfig, reqs []trace.Request, horizon units.Seconds) (Metrics, error) {
	cm, err := RunCluster(ClusterConfig{
		Pools:    []Pool{{Name: cfg.GPU.Name, Config: cfg}},
		Failures: f,
	}, reqs, horizon)
	if err != nil {
		return Metrics{}, err
	}
	return cm.Pools[0].Metrics, nil
}

// RunFrom is Run over a lazy request source (see RunClusterFrom):
// arrivals stream in on demand and only the in-flight working set is
// held, making horizon×rate products with millions of requests
// practical in constant memory.
func RunFrom(cfg Config, src RequestSource, horizon units.Seconds) (Metrics, error) {
	return RunWithFailuresFrom(cfg, FailureConfig{}, src, horizon)
}

// RunWithFailuresFrom is RunWithFailures over a lazy request source.
func RunWithFailuresFrom(cfg Config, f FailureConfig, src RequestSource, horizon units.Seconds) (Metrics, error) {
	cm, err := RunClusterFrom(ClusterConfig{
		Pools:    []Pool{{Name: cfg.GPU.Name, Config: cfg}},
		Failures: f,
	}, src, horizon)
	if err != nil {
		return Metrics{}, err
	}
	return cm.Pools[0].Metrics, nil
}

func pickSLO(v units.Seconds, def units.Seconds) units.Seconds {
	if v > 0 {
		return v
	}
	return def
}

// kvBlocksPerInstance sizes one decode-capable instance's paged KV
// allocator at tensor-parallel degree gpus: HBM capacity net of the
// instance's weight shard, divided by the per-block KV footprint. An
// explicit Config.KV.Blocks overrides the derivation (tests and studies
// use it to force memory pressure independent of the hardware).
func kvBlocksPerInstance(cfg Config, gpus int) (int, error) {
	if cfg.KV.Blocks > 0 {
		return cfg.KV.Blocks, nil
	}
	opts := cfg.Opts
	shard := model.Shard{
		TP: gpus, Batch: 1, SeqIn: 1, KVLen: 1,
		Prec:    opts.EffectivePrecision(),
		IdealKV: !opts.KVReplication,
	}
	if err := shard.Validate(cfg.Model); err != nil {
		return 0, err
	}
	free := float64(cfg.GPU.Capacity) - float64(cfg.Model.ShardWeightBytes(shard))
	perBlock := float64(cfg.KV.BlockTokensOrDefault()) * float64(cfg.Model.ShardKVBytesPerToken(shard))
	blocks := 0
	if free > 0 && perBlock > 0 {
		blocks = int(free / perBlock)
	}
	if blocks <= 0 {
		return 0, fmt.Errorf("serve: no KV blocks fit on a %d-GPU %s instance after %s weights",
			gpus, cfg.GPU.Name, cfg.Model.Name)
	}
	return blocks, nil
}

// newPrefillTimer returns a memoized batch-prefill duration function at
// the given tensor-parallel degree. Durations come from the analytical
// model at the batch's mean prompt length (stage costs are near-linear
// in total tokens), quantized to 64-token buckets for cache efficiency.
func newPrefillTimer(cfg Config, opts inference.Options, gpus int) func([]trace.Request) float64 {
	type key struct{ b, lenBucket int }
	cache := make(map[key]float64)
	return func(batch []trace.Request) float64 {
		if len(batch) == 0 {
			return 0
		}
		var total int
		for _, r := range batch {
			total += r.PromptTokens
		}
		mean := total / len(batch)
		if mean < 1 {
			mean = 1
		}
		k := key{len(batch), (mean + 63) / 64}
		if v, ok := cache[k]; ok {
			return v
		}
		o := opts
		o.PromptLen = k.lenBucket * 64
		est, err := inference.Run(cfg.GPU, cfg.Model, inference.Prefill, gpus, len(batch), o)
		v := math.Inf(1)
		if err == nil {
			v = float64(est.Latency)
		}
		cache[k] = v
		return v
	}
}

// newDecodeTimer returns a memoized decode-step duration function keyed
// by batch size, evaluated at the configured decode context length and
// the given tensor-parallel degree.
func newDecodeTimer(cfg Config, opts inference.Options, gpus int) func(int) float64 {
	cache := make(map[int]float64)
	return func(b int) float64 {
		if b <= 0 {
			return 0
		}
		if v, ok := cache[b]; ok {
			return v
		}
		est, err := inference.Run(cfg.GPU, cfg.Model, inference.Decode, gpus, b, opts)
		v := math.Inf(1)
		if err == nil {
			v = float64(est.Latency)
		}
		cache[b] = v
		return v
	}
}
