package serve

import (
	"fmt"

	"litegpu/internal/kv"
	"litegpu/internal/netsim"
	"litegpu/internal/sim"
	"litegpu/internal/trace"
	"litegpu/internal/units"
)

// Snapshot/fork: freeze a running cluster simulation at its first
// failure event and replay the suffix under a different hot-spare
// count. The one invariant that makes this sound is that the spare
// shelf (poolSim.spareFree / waiting) is only ever consulted inside
// failInstance — runs that differ only in their spare count evolve
// byte-identically up to the instant the first failure fires. So the
// planner's availability leg forks the warmed-up prefix instead of
// replaying every candidate from t=0; when no failure ever fires
// within the horizon, the spare count is unobservable and the suffix
// replay is skipped entirely.
//
// Restore is strictly in-place: the same clusterSim, schedulers, and
// engine objects are rewound, which is what keeps the Handler method
// values inside the restored calendar — and every *activeReq woven
// through queues, batches, and in-flight transfers — pointing at live
// state. Pointer identity is preserved (activeReqs and failRNG streams
// are never reallocated across a restore); only their values rewind.

// savedReq pairs a live activeReq pointer with its value at snapshot
// time; restore writes the value back through the same pointer.
type savedReq struct {
	a   *activeReq
	val activeReq
}

// instSnap freezes one instanceState. The value copy carries the
// failRNG pointer through unchanged (it is the live stream's only
// pointer, never reallocated); the stream's position is saved
// separately and rewound with SetState.
type instSnap struct {
	st  instanceState
	rng uint64
}

func snapInstance(st *instanceState) instSnap {
	s := instSnap{st: *st}
	if st.failRNG != nil {
		s.rng = st.failRNG.State()
	}
	return s
}

func (s *instSnap) restore(st *instanceState) {
	rng := st.failRNG
	*st = s.st
	st.failRNG = rng
	if rng != nil {
		rng.SetState(s.rng)
	}
}

// staticSnap freezes a staticSched.
type staticSnap struct {
	prefills   []prefillEngSnap
	decodes    []decodeEngSnap
	prefillQ   []trace.Request
	decodeQ    []*activeReq
	reprefillQ []*activeReq
	decodeRR   int
}

type prefillEngSnap struct {
	inst   instSnap
	freeAt float64
	busy   float64
	batch  []trace.Request
	re     *activeReq
}

type decodeEngSnap struct {
	inst    instSnap
	active  []*activeReq
	stepEnd float64
	busy    float64
	al      *kv.Snap
}

func (sc *staticSched) snapshot(reqs []savedReq) (any, []savedReq) {
	sn := &staticSnap{
		prefills:   make([]prefillEngSnap, len(sc.prefills)),
		decodes:    make([]decodeEngSnap, len(sc.decodes)),
		prefillQ:   sc.prefillQ.save(nil),
		decodeQ:    sc.decodeQ.save(nil),
		reprefillQ: sc.reprefillQ.save(nil),
		decodeRR:   sc.decodeRR,
	}
	for i := range sc.prefills {
		e := &sc.prefills[i]
		sn.prefills[i] = prefillEngSnap{
			inst:   snapInstance(&e.instanceState),
			freeAt: e.freeAt,
			busy:   e.busy,
			batch:  append([]trace.Request(nil), e.batch...),
			re:     e.re,
		}
		if e.re != nil {
			reqs = append(reqs, savedReq{a: e.re, val: *e.re})
		}
	}
	for j := range sc.decodes {
		e := &sc.decodes[j]
		sn.decodes[j] = decodeEngSnap{
			inst:    snapInstance(&e.instanceState),
			active:  append([]*activeReq(nil), e.active...),
			stepEnd: e.stepEnd,
			busy:    e.busy,
		}
		if e.al != nil {
			sn.decodes[j].al = e.al.Snapshot()
		}
		reqs = saveReqs(reqs, e.active)
	}
	reqs = saveReqs(reqs, sn.decodeQ)
	reqs = saveReqs(reqs, sn.reprefillQ)
	return sn, reqs
}

func (sc *staticSched) restore(snap any) {
	sn := snap.(*staticSnap)
	for i := range sc.prefills {
		e := &sc.prefills[i]
		s := &sn.prefills[i]
		s.inst.restore(&e.instanceState)
		e.freeAt, e.busy = s.freeAt, s.busy
		e.batch = append(e.batch[:0], s.batch...)
		e.re = s.re
	}
	for j := range sc.decodes {
		e := &sc.decodes[j]
		s := &sn.decodes[j]
		s.inst.restore(&e.instanceState)
		clearTail(e.active, 0)
		e.active = append(e.active[:0], s.active...)
		e.stepEnd, e.busy = s.stepEnd, s.busy
		if e.al != nil {
			e.al.Restore(s.al)
		}
	}
	sc.prefillQ.load(sn.prefillQ)
	sc.decodeQ.load(sn.decodeQ)
	sc.reprefillQ.load(sn.reprefillQ)
	sc.decodeRR = sn.decodeRR
}

// colocSnap freezes a colocSched. The timer memo caches and the
// per-call scratch buffers are deliberately excluded: caches are pure
// functions of their inputs and scratch holds no state across events.
type colocSnap struct {
	engines []colocEngSnap
	q       []*activeReq
}

type colocEngSnap struct {
	inst        instSnap
	active      []*activeReq
	pending     []*activeReq
	stepEnd     float64
	stepPfx     float64
	stepDec     float64
	stepPrefill int
	stepChunk   int
	pBusy       float64
	dBusy       float64
	al          *kv.Snap
}

func (c *colocSched) snapshot(reqs []savedReq) (any, []savedReq) {
	sn := &colocSnap{
		engines: make([]colocEngSnap, len(c.engines)),
		q:       c.q.save(nil),
	}
	for i := range c.engines {
		e := &c.engines[i]
		sn.engines[i] = colocEngSnap{
			inst:        snapInstance(&e.instanceState),
			active:      append([]*activeReq(nil), e.active...),
			pending:     e.pending.save(nil),
			stepEnd:     e.stepEnd,
			stepPfx:     e.stepPfx,
			stepDec:     e.stepDec,
			stepPrefill: e.stepPrefill,
			stepChunk:   e.stepChunk,
			pBusy:       e.pBusy,
			dBusy:       e.dBusy,
		}
		if e.al != nil {
			sn.engines[i].al = e.al.Snapshot()
		}
		reqs = saveReqs(reqs, sn.engines[i].active)
		reqs = saveReqs(reqs, sn.engines[i].pending)
	}
	reqs = saveReqs(reqs, sn.q)
	return sn, reqs
}

func (c *colocSched) restore(snap any) {
	sn := snap.(*colocSnap)
	for i := range c.engines {
		e := &c.engines[i]
		s := &sn.engines[i]
		s.inst.restore(&e.instanceState)
		clearTail(e.active, 0)
		e.active = append(e.active[:0], s.active...)
		e.pending.load(s.pending)
		e.stepEnd, e.stepPfx, e.stepDec = s.stepEnd, s.stepPfx, s.stepDec
		e.stepPrefill, e.stepChunk = s.stepPrefill, s.stepChunk
		e.pBusy, e.dBusy = s.pBusy, s.dBusy
		if e.al != nil {
			e.al.Restore(s.al)
		}
	}
	c.q.load(sn.q)
}

// saveReqs appends (pointer, value) pairs for every activeReq in list.
// Live requests are owned by exactly one queue, batch, or transfer at
// any instant, so walking the owners never records a pointer twice.
func saveReqs(dst []savedReq, list []*activeReq) []savedReq {
	for _, a := range list {
		dst = append(dst, savedReq{a: a, val: *a})
	}
	return dst
}

// save appends the deque's contents, front first, to dst.
func (d *deque[T]) save(dst []T) []T {
	return d.CopyPrefix(dst, d.n)
}

// load resets the deque to exactly the given contents, zeroing vacated
// slots so the buffer retains no stale pointers.
func (d *deque[T]) load(src []T) {
	var zero T
	for i := range d.buf {
		d.buf[i] = zero
	}
	if len(d.buf) < len(src) {
		size := 16
		for size < len(src) {
			size *= 2
		}
		d.buf = make([]T, size)
	}
	copy(d.buf, src)
	d.head = 0
	d.n = len(src)
}

// poolSnap freezes one poolSim's mutable state.
type poolSnap struct {
	sched any

	spareFree  int
	waiting    []int
	freeReqs   []*activeReq
	ingressRR  int
	xfers      []xferRec
	freeXferIx []int32
	liveXfers  []int32

	m            Metrics
	goodTokens   int
	usefulTokens int
	ttfts        []float64
	tbts         []float64
	e2es         []float64
	xferT        []float64
	xferB        []float64
	netSec       float64
	ttftOK       int
	tbtOK        int

	kvInUse     int
	kvPeak      int
	kvBlockSec  float64
	kvLastT     float64
	kvHits      int
	kvLookups   int
	kvPreempt   int
	kvRecompute int

	trackArena []clientTrack
	freeTracks []int32
	retrySeq   int
	clientRNG  uint64
	classes    []classAcc

	reqs []savedReq
}

// clusterSnap freezes the whole simulation at the moment the first
// failure event fired: the engine calendar (post-pop — the failure
// event itself is re-run by hand on restore), the fabric, the arrival
// chain, and every pool. It is immutable after capture.
type clusterSnap struct {
	eng *sim.Snapshot
	fab *netsim.Snapshot

	rrNext          int
	dispatchPending bool
	nextReq         trace.Request
	srcIdx          int

	pools []poolSnap

	failPool int
	failID   int
	failNow  float64
}

// takeSnapshot captures the simulation into s.snap. It runs at the top
// of failInstance, before any spare-shelf state is consulted.
func (s *clusterSim) takeSnapshot(p *poolSim, id int, now float64) {
	ss, ok := s.src.(*sliceSource)
	if !ok {
		panic("serve: snapshot armed on a non-materialized request source; forkable runs drive run(), not runFrom()")
	}
	sn := &clusterSnap{
		eng:             s.eng.Snapshot(),
		rrNext:          s.rrNext,
		dispatchPending: s.dispatchPending,
		nextReq:         s.nextReq,
		srcIdx:          ss.i,
		pools:           make([]poolSnap, len(s.pools)),
		failPool:        p.idx,
		failID:          id,
		failNow:         now,
	}
	if s.fab != nil {
		sn.fab = s.fab.Snapshot()
	}
	for i, pl := range s.pools {
		ps := &sn.pools[i]
		var reqs []savedReq
		ps.sched, reqs = pl.sched.snapshot(nil)
		// In-flight KV handoffs own their payload requests; ingress
		// records carry values, not pointers.
		for _, idx := range pl.liveXfers {
			if a := pl.xfers[idx].a; a != nil {
				reqs = append(reqs, savedReq{a: a, val: *a})
			}
		}
		ps.reqs = reqs
		ps.spareFree = pl.spareFree
		ps.waiting = append([]int(nil), pl.waiting...)
		ps.freeReqs = append([]*activeReq(nil), pl.freeReqs...)
		ps.ingressRR = pl.ingressRR
		ps.xfers = append([]xferRec(nil), pl.xfers...)
		ps.freeXferIx = append([]int32(nil), pl.freeXferIx...)
		ps.liveXfers = append([]int32(nil), pl.liveXfers...)
		ps.m = pl.m
		ps.goodTokens = pl.goodTokens
		ps.usefulTokens = pl.usefulTokens
		ps.ttfts = append([]float64(nil), pl.ttfts...)
		ps.tbts = append([]float64(nil), pl.tbts...)
		ps.e2es = append([]float64(nil), pl.e2es...)
		ps.xferT = append([]float64(nil), pl.xferT...)
		ps.xferB = append([]float64(nil), pl.xferB...)
		ps.netSec = pl.netSec
		ps.ttftOK = pl.ttftOK
		ps.tbtOK = pl.tbtOK
		ps.kvInUse = pl.kvInUse
		ps.kvPeak = pl.kvPeak
		ps.kvBlockSec = pl.kvBlockSec
		ps.kvLastT = pl.kvLastT
		ps.kvHits = pl.kvHits
		ps.kvLookups = pl.kvLookups
		ps.kvPreempt = pl.kvPreempt
		ps.kvRecompute = pl.kvRecompute
		ps.trackArena = append([]clientTrack(nil), pl.trackArena...)
		ps.freeTracks = append([]int32(nil), pl.freeTracks...)
		ps.retrySeq = pl.retrySeq
		if pl.clientRNG != nil {
			ps.clientRNG = pl.clientRNG.State()
		}
		ps.classes = append([]classAcc(nil), pl.classes...)
	}
	s.snap = sn
}

// restoreSnapshot rewinds the simulation to s.snap, in place. The
// snapshot is untouched and can be restored again.
func (s *clusterSim) restoreSnapshot() {
	sn := s.snap
	s.eng.Restore(sn.eng)
	if s.fab != nil {
		s.fab.Restore(sn.fab)
	}
	s.rrNext = sn.rrNext
	s.dispatchPending = sn.dispatchPending
	s.nextReq = sn.nextReq
	s.src.(*sliceSource).i = sn.srcIdx
	for i, pl := range s.pools {
		ps := &sn.pools[i]
		pl.sched.restore(ps.sched)
		for _, sr := range ps.reqs {
			*sr.a = sr.val
		}
		pl.spareFree = ps.spareFree
		pl.waiting = append(pl.waiting[:0], ps.waiting...)
		pl.freeReqs = append(pl.freeReqs[:0], ps.freeReqs...)
		pl.ingressRR = ps.ingressRR
		pl.xfers = append(pl.xfers[:0], ps.xfers...)
		pl.freeXferIx = append(pl.freeXferIx[:0], ps.freeXferIx...)
		pl.liveXfers = append(pl.liveXfers[:0], ps.liveXfers...)
		pl.m = ps.m
		pl.goodTokens = ps.goodTokens
		pl.usefulTokens = ps.usefulTokens
		pl.ttfts = append(pl.ttfts[:0], ps.ttfts...)
		pl.tbts = append(pl.tbts[:0], ps.tbts...)
		pl.e2es = append(pl.e2es[:0], ps.e2es...)
		pl.xferT = append(pl.xferT[:0], ps.xferT...)
		pl.xferB = append(pl.xferB[:0], ps.xferB...)
		pl.netSec = ps.netSec
		pl.ttftOK = ps.ttftOK
		pl.tbtOK = ps.tbtOK
		pl.kvInUse = ps.kvInUse
		pl.kvPeak = ps.kvPeak
		pl.kvBlockSec = ps.kvBlockSec
		pl.kvLastT = ps.kvLastT
		pl.kvHits = ps.kvHits
		pl.kvLookups = ps.kvLookups
		pl.kvPreempt = ps.kvPreempt
		pl.kvRecompute = ps.kvRecompute
		pl.trackArena = append(pl.trackArena[:0], ps.trackArena...)
		pl.freeTracks = append(pl.freeTracks[:0], ps.freeTracks...)
		pl.retrySeq = ps.retrySeq
		if pl.clientRNG != nil {
			pl.clientRNG.SetState(ps.clientRNG)
		}
		pl.classes = append(pl.classes[:0], ps.classes...)
		if pl.clientOn {
			// The id→slot maps are rebuilt from the restored arena
			// rather than saved: a live attempt is an open slot with an
			// armed deadline, a cancellation tombstone is an open slot
			// flagged cancelled with its deadline already consumed.
			pl.tracks = make(map[int]int32, len(pl.trackArena))
			pl.cancelled = make(map[int]int32)
			for ti := range pl.trackArena {
				tr := &pl.trackArena[ti]
				if !tr.open {
					continue
				}
				if tr.cancelled && tr.deadline == 0 {
					pl.cancelled[tr.id] = int32(ti)
				} else if tr.deadline != 0 {
					pl.tracks[tr.id] = int32(ti)
				}
			}
		}
	}
}

// failureFork is a finished, forkable single-pool failure run: the
// capture run's metrics plus — when a failure fired — the snapshot to
// replay the post-failure suffix from under a different spare count.
type failureFork struct {
	sim *clusterSim
	m   Metrics
}

// runForkable is RunWithFailures with the fork hook armed: it returns
// the zero-spare run's metrics plus a fork that can replay the run's
// post-first-failure suffix at any spare count.
func runForkable(cfg Config, f FailureConfig, reqs []trace.Request, horizon units.Seconds) (Metrics, *failureFork, error) {
	cc := ClusterConfig{
		Pools:    []Pool{{Name: cfg.GPU.Name, Config: cfg}},
		Failures: f,
	}
	if err := cc.Validate(); err != nil {
		return Metrics{}, nil, err
	}
	s, err := newClusterSim(cc, float64(horizon))
	if err != nil {
		return Metrics{}, nil, err
	}
	s.snapOnFail = true
	cm := s.run(reqs)
	m := cm.Pools[0].Metrics
	return m, &failureFork{sim: s, m: m}, nil
}

// runWithSpares replays the fork's post-first-failure suffix with the
// given hot-spare count, byte-identical to a full run at that count.
// When no failure fired within the horizon the spare shelf was never
// consulted, so the capture metrics are returned without simulating
// anything.
func (fk *failureFork) runWithSpares(spares int) Metrics {
	s := fk.sim
	if s.snap == nil {
		return fk.m
	}
	if spares < 0 {
		panic(fmt.Sprintf("serve: fork with negative spare count %d", spares))
	}
	s.restoreSnapshot()
	// A full run with this spare count reaches the first failure with
	// every spare still on the shelf — the shelf is first consulted by
	// the very handler re-run below.
	for _, p := range s.pools {
		p.spares = spares
		p.spareFree = spares
	}
	sn := s.snap
	s.failInstance(s.pools[sn.failPool], sn.failID, sn.failNow)
	s.eng.Run(s.h)
	return s.assemble().Pools[0].Metrics
}
