package serve

import (
	"fmt"
	"strings"
	"testing"

	"litegpu/internal/kv"
	"litegpu/internal/straggler"
	"litegpu/internal/trace"
	"litegpu/internal/units"
)

// overloadGoldenFile extends the byte-identity corpus to closed-loop
// runs. Like kv_goldens.txt it pins the overload machinery from its
// first commit: the full PR-9-era Metrics field set — client-loop,
// admission, autoscale, and per-class fields included — in %x (see
// preObsMetrics; the corpus predates Summary.P999), so any future
// rework of deadlines, retry backoff, shedding, or the autoscaler must
// reproduce these runs bit-for-bit or knowingly regenerate.
const overloadGoldenFile = "testdata/overload_goldens.txt"

// overloadScenario is one (deployment, materialized trace) pair: unlike
// goldenScenario it carries its requests directly, because several
// scenarios use multi-tenant traces that trace.Generator cannot
// express.
type overloadScenario struct {
	name    string
	cluster ClusterConfig
	reqs    []trace.Request
	horizon units.Seconds
}

// twoTenantTrace is the corpus's shared multi-tenant overload trace: a
// paid tier (priority 1) and a heavier free tier (priority 0), with a
// mid-run flash crowd tripling arrivals — the regime admission control
// exists for.
func twoTenantTrace(t *testing.T, paidRate, freeRate float64, horizon units.Seconds) []trace.Request {
	t.Helper()
	mg := trace.MultiGenerator{
		Classes: []trace.TenantClass{
			{Name: "paid", Gen: trace.ConversationWorkload(paidRate, 0), Priority: 1},
			{Name: "free", Gen: trace.ConversationWorkload(freeRate, 0), Priority: 0},
		},
		Envelope: trace.Envelope{
			Flash: []trace.FlashCrowd{{At: 60, Duration: 60, Factor: 3}},
		},
		Seed: 9,
	}
	reqs, err := mg.Generate(horizon)
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func overloadScenarios(t *testing.T) []overloadScenario {
	t.Helper()

	// Closed-loop clients on a single-tenant overload: deadlines fire,
	// retries back off with jitter, some clients abandon.
	closed := smallConfig()
	closed.Client = ClientConfig{
		Default: ClientBehavior{Timeout: 20, Retries: 2, BackoffBase: 2, Jitter: 0.5},
		Seed:    7,
	}

	tenants := twoTenantTrace(t, 10.0, 30.0, 150)

	// Static two-tier gate: the free tier sheds at the queue limit, the
	// paid tier always admits.
	shedPrio := smallConfig()
	shedPrio.Client = ClientConfig{
		Default: ClientBehavior{Timeout: 30, Retries: 1, BackoffBase: 2},
		Classes: []ClientBehavior{
			{Timeout: 30, Retries: 2, BackoffBase: 1, Jitter: 0.25, TTFTSLO: 2},
			{Timeout: 15, Retries: 1, BackoffBase: 4},
		},
		Seed: 7,
	}
	shedPrio.Admission = AdmissionConfig{Policy: AdmitPriority, QueueLimit: 24, MinPriority: 1}

	// Adaptive gate on the same trace: per-priority queue-depth
	// thresholds shed the lowest tier first.
	shedAdpt := shedPrio
	shedAdpt.Admission = AdmissionConfig{Policy: AdmitAdaptive, QueueLimit: 24, Levels: 2}

	// Elastic decode fleet riding the flash crowd: instances beyond the
	// floor start parked, warm up under load, drain back after the spike.
	scale := smallConfig()
	scale.DecodeInstances = 4
	scale.MaxDecodeBatch = 16
	scale.Autoscale = AutoscaleConfig{
		Enabled: true, Interval: 5, HighWater: 6, LowWater: 1, MinInstances: 1, WarmUp: 10,
	}

	// Persistent stragglers: every instance draws a step-time factor at
	// construction; the slow decode engine drags TBT.
	slow := smallConfig()
	slow.DecodeInstances = 2
	slow.Straggler = StragglerConfig{
		Jitter: straggler.Jitter{CV: 0.5, Tail: straggler.LogNormal},
		Seed:   3,
	}

	// Everything at once, plus KV scarcity and accelerated failures:
	// the chaos regime the control loops must stay deterministic in.
	chaos := smallConfig()
	chaos.DecodeInstances = 3
	chaos.Client = shedPrio.Client
	chaos.Admission = AdmissionConfig{Policy: AdmitAdaptive, QueueLimit: 24, Levels: 2}
	chaos.Autoscale = AutoscaleConfig{
		Enabled: true, Interval: 5, HighWater: 6, LowWater: 1, MinInstances: 1, WarmUp: 10,
	}
	chaos.Straggler = slow.Straggler
	chaos.KV = kv.Config{Policy: kv.Recompute, Blocks: 600}
	chaosCluster := clusterOf(chaos)
	chaosCluster.Failures = acceleratedFailures(0)

	single := func(cfg Config) ClusterConfig { return clusterOf(cfg) }
	gen := func(g trace.Generator, span units.Seconds) []trace.Request {
		reqs, err := g.Generate(span)
		if err != nil {
			t.Fatal(err)
		}
		return reqs
	}

	return []overloadScenario{
		{name: "ol-closed-loop-conv", cluster: single(closed), reqs: gen(trace.ConversationWorkload(90, 7), 120), horizon: 240},
		{name: "ol-shed-priority", cluster: single(shedPrio), reqs: tenants, horizon: 240},
		{name: "ol-shed-adaptive", cluster: single(shedAdpt), reqs: tenants, horizon: 240},
		{name: "ol-autoscale-flash", cluster: single(scale), reqs: gen(trace.CodingWorkload(24, 13), 120), horizon: 300},
		{name: "ol-straggler", cluster: single(slow), reqs: gen(trace.CodingWorkload(2, 11), 150), horizon: 240},
		{name: "ol-chaos", cluster: chaosCluster, reqs: tenants, horizon: 240},
	}
}

// TestOverloadGoldens pins the closed-loop simulator byte-for-byte.
// Regenerate (only when knowingly changing overload semantics) with:
//
//	LITEGPU_UPDATE_GOLDENS=1 go test ./internal/serve -run Golden
func TestOverloadGoldens(t *testing.T) {
	var b strings.Builder
	for _, sc := range overloadScenarios(t) {
		cm, err := RunCluster(sc.cluster, sc.reqs, sc.horizon)
		if err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		fmt.Fprintf(&b, "== %s\n", sc.name)
		for _, pm := range cm.Pools {
			fmt.Fprintf(&b, "pool %s: %x\n", pm.Name, preObsView(pm.Metrics))
		}
		fmt.Fprintf(&b, "total: %x\n", preObsView(cm.Total))
	}
	compareGoldens(t, overloadGoldenFile, b.String())
}
