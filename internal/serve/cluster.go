package serve

import (
	"fmt"

	"litegpu/internal/failure"
	"litegpu/internal/obs"
	"litegpu/internal/trace"
	"litegpu/internal/units"
)

// FailurePolicy selects what happens to requests in flight on an
// instance when one of its GPUs fails.
type FailurePolicy int

const (
	// RequeueOnFailure returns in-flight work to the head of its pool's
	// queue: prompts re-run prefill, generations resume from their last
	// emitted token on the next instance with capacity. Latency clocks
	// keep running across the outage, so TTFT/TBT degrade honestly.
	RequeueOnFailure FailurePolicy = iota
	// DropOnFailure abandons in-flight work (counted in
	// Metrics.DroppedOnFailure) — the behavior of a serving stack with
	// no request-level recovery.
	DropOnFailure
)

// FailureConfig drives failure injection for a cluster simulation. The
// zero value disables injection entirely.
type FailureConfig struct {
	// Enabled turns failure injection on.
	Enabled bool
	// Params calibrates per-GPU failure rates (area-scaled AFR), repair
	// time, and spare-takeover time. The zero value means
	// failure.DefaultParams().
	Params failure.Params
	// Spares is the default hot-spare count per pool; Pool.Spares
	// overrides it for individual pools. A spare is one idle unit of the
	// pool's GPU type: when a failure downs an instance, a free spare
	// restores it after Params.RecoveryTime, and the failed unit
	// returns to the shelf after Params.MTTR.
	Spares int
	// Policy selects requeue-vs-drop for in-flight requests.
	Policy FailurePolicy
	// TimeScale accelerates the failure process: per-GPU failure rates
	// are multiplied by it, so a minutes-long serving window can exhibit
	// the reliability dynamics of months of operation — simulation's
	// analogue of accelerated life testing. Repair and takeover times
	// stay in real time. Zero or one means no acceleration.
	TimeScale float64
	// Seed drives the failure processes. Every instance derives its own
	// stream via mathx.DeriveSeed(Seed, instance index), so runs stay
	// byte-identical under the parallel sweep.
	Seed uint64
}

func (f FailureConfig) params() failure.Params {
	if f.Params == (failure.Params{}) {
		return failure.DefaultParams()
	}
	return f.Params
}

func (f FailureConfig) timeScale() float64 {
	if f.TimeScale <= 0 {
		return 1
	}
	return f.TimeScale
}

// RouterPolicy selects how the cluster assigns arriving requests to
// pools.
type RouterPolicy int

const (
	// RoundRobin cycles arrivals across pools in order, blind to load —
	// the baseline any smarter router must beat.
	RoundRobin RouterPolicy = iota
	// JoinShortestQueue routes each arrival to the pool with the least
	// outstanding work per live instance — queued and in-pass prompts
	// plus queued and actively decoding generations, divided by the
	// pool's up instances; ties go to the lowest-indexed pool. The
	// per-instance normalization is what makes a 4×-wider Lite pool
	// attract its fair share of a shared trace, and the live-instance
	// denominator is what steers traffic away from pools with failed
	// capacity.
	JoinShortestQueue
)

// Pool is one homogeneous deployment inside a heterogeneous cluster.
type Pool struct {
	// Name labels the pool in ClusterMetrics (defaults to the GPU name).
	Name   string
	Config Config
	// Spares overrides FailureConfig.Spares for this pool when > 0.
	Spares int
}

// ClusterConfig describes a cluster-level simulation: one or more
// serving pools fed by a router, with optional failure injection and
// an optional in-loop fabric.
type ClusterConfig struct {
	Pools    []Pool
	Router   RouterPolicy
	Failures FailureConfig

	// Network is the cluster-wide fabric. The fabric is a property of
	// the whole simulated cluster — every pool's instances are
	// endpoints of the same switched network, so KV handoffs in one
	// pool contend with another pool's, and (with several pools)
	// routed arrivals pay an ingress transfer from the router to their
	// pool. When zero, the first pool with an enabled Config.Network
	// supplies the cluster fabric (which is how the single-pool Run
	// entry points promote their Config.Network); pools must not
	// disagree.
	Network NetworkConfig

	// Observer, when non-nil, receives the run's telemetry: sampled
	// per-request span timelines, instance-level events, and (when its
	// probe interval is set) fixed-interval time-series samples. The
	// observer is strictly read-only — attaching one never changes
	// simulation results; the golden corpora pass byte-identical with an
	// observer live. Attaching an observer forces the sequential
	// execution path (which is byte-identical to the sharded one), so a
	// single Recorder sees the whole cluster.
	Observer *obs.Recorder

	// Shards asks RunCluster to simulate pools in parallel across up to
	// Shards workers (bounded by the pool count), using conservative
	// time-window synchronization at router decisions. The result is
	// byte-identical to the sequential simulation at every shard count —
	// sharding is purely a wall-clock optimization, never a modeling
	// choice. 0 or 1 means sequential. Sharding is ignored (sequential
	// fallback) when the cluster has a single pool, when an in-loop
	// fabric couples the pools through shared links, and by
	// RunClusterFrom, whose lazy-source contract is inherently serial.
	Shards int
}

// resolvedNetwork returns the fabric the cluster simulates on: the
// cluster-level setting when enabled, otherwise the first pool's
// enabled Config.Network, otherwise off.
func (cc ClusterConfig) resolvedNetwork() NetworkConfig {
	if cc.Network.Enabled() {
		return cc.Network
	}
	for _, p := range cc.Pools {
		if p.Config.Network.Enabled() {
			return p.Config.Network
		}
	}
	return NetworkConfig{}
}

// maxPoolInstances bounds instances per pool: it is the priority-band
// spacing that keeps same-timestamp event ordering well-defined across
// pools (see the priority constants in engine.go), and it is far above
// any deployment the capacity planner emits.
const maxPoolInstances = 4096

// maxPools keeps every pool's priority offsets inside one 2^20 event
// band (maxPools × maxPoolInstances = 1<<20).
const maxPools = (1 << 20) / maxPoolInstances

// Validate reports the first configuration problem, or nil.
func (cc ClusterConfig) Validate() error {
	if len(cc.Pools) == 0 {
		return fmt.Errorf("serve: cluster needs at least one pool")
	}
	if len(cc.Pools) > maxPools {
		return fmt.Errorf("serve: %d pools, above the %d limit", len(cc.Pools), maxPools)
	}
	if err := cc.Network.Validate(); err != nil {
		return err
	}
	net := cc.resolvedNetwork()
	for i, p := range cc.Pools {
		if err := p.Config.Validate(); err != nil {
			return fmt.Errorf("serve: pool %d (%s): %w", i, p.Name, err)
		}
		if n := p.Config.instanceCount(); n > maxPoolInstances {
			return fmt.Errorf("serve: pool %d (%s) has %d instances, above the %d per-pool limit",
				i, p.Name, n, maxPoolInstances)
		}
		if pn := p.Config.Network; pn.Enabled() && pn != net {
			return fmt.Errorf("serve: pool %d (%s) wants fabric %s but the cluster runs %s; the fabric is cluster-wide",
				i, p.Name, pn, net)
		}
	}
	return nil
}

// PoolMetrics is one pool's outcome within a cluster run.
type PoolMetrics struct {
	Name    string
	Metrics Metrics
}

// ClusterMetrics is the outcome of a cluster simulation: per-pool
// metrics in pool order, plus the aggregate across pools. Aggregate
// latency summaries are computed over the union of per-pool samples;
// utilization is weighted by the GPUs behind each busy-second, and the
// cross-pool Availability/BlastRadius aggregates weight capacity by
// per-GPU compute and failure odds by per-GPU AFR, so a Lite GPU
// counts as neither as capable nor as failure-prone as an H100.
type ClusterMetrics struct {
	Total Metrics
	Pools []PoolMetrics
}

// RunCluster simulates the cluster serving the request stream until the
// horizon on the shared internal/sim event engine. Requests are routed
// to pools on arrival, every pool runs its own phase-split engines, and
// (when enabled) GPU failures down instances mid-run, with hot spares
// restoring capacity after a takeover delay.
//
// Determinism: identical inputs produce byte-identical ClusterMetrics.
// All randomness flows through per-instance streams derived from
// FailureConfig.Seed; request order ties resolve by pool and engine
// index.
func RunCluster(cc ClusterConfig, reqs []trace.Request, horizon units.Seconds) (ClusterMetrics, error) {
	if err := cc.Validate(); err != nil {
		return ClusterMetrics{}, err
	}
	if cc.shardable() {
		return runShardedCluster(cc, reqs, float64(horizon))
	}
	sim, err := newClusterSim(cc, float64(horizon))
	if err != nil {
		return ClusterMetrics{}, err
	}
	return sim.run(reqs), nil
}

// shardable reports whether this configuration takes the sharded
// execution path: parallelism was requested, there is more than one
// pool to spread, no fabric couples the pools through shared links
// (fabric contention is global state every event can touch, so fabric
// runs stay sequential), and no observer is attached (a Recorder is a
// single-writer cluster-wide view).
func (cc ClusterConfig) shardable() bool {
	return cc.Shards > 1 && len(cc.Pools) > 1 && !cc.resolvedNetwork().Enabled() && cc.Observer == nil
}

// RunClusterFrom is RunCluster over a lazy request source: arrivals are
// pulled from src on demand (in nondecreasing arrival order), so the
// simulation holds only the in-flight working set — a million-request
// horizon runs in O(in-flight) memory instead of materializing the
// trace. For the same request sequence it produces byte-identical
// ClusterMetrics to RunCluster.
func RunClusterFrom(cc ClusterConfig, src RequestSource, horizon units.Seconds) (ClusterMetrics, error) {
	if err := cc.Validate(); err != nil {
		return ClusterMetrics{}, err
	}
	sim, err := newClusterSim(cc, float64(horizon))
	if err != nil {
		return ClusterMetrics{}, err
	}
	return sim.runFrom(src), nil
}

func ratio(num, den int) float64 {
	if den <= 0 {
		return 0
	}
	return float64(num) / float64(den)
}
