package serve

import (
	"fmt"
	"math"

	"litegpu/internal/obs"
	"litegpu/internal/sim"
	"litegpu/internal/straggler"
	"litegpu/internal/trace"
	"litegpu/internal/units"
)

// Closed-loop overload robustness (PR 9): real serving systems are not
// open loops. Clients give up, retry with backoff, and abandon;
// frontends shed load by tenant priority; fleets autoscale. This file
// holds the configuration surface and the event handlers for those
// control loops. Every config's zero value turns its feature off and
// leaves the simulation byte-identical to the open-loop engine (pinned
// by the golden corpora).

// ClientBehavior describes how one tenant class's clients behave while
// waiting for a response. The zero value is the open-loop client:
// infinite patience, no retries.
type ClientBehavior struct {
	// Timeout is how long a client waits for its full response before
	// cancelling the attempt. Zero disables the closed loop for the
	// class: requests are never timed out, retried, or abandoned.
	Timeout units.Seconds
	// Retries is how many times a timed-out client resubmits before
	// abandoning (each retry is a fresh request: full re-prefill).
	Retries int
	// BackoffBase seeds capped exponential backoff between retries:
	// attempt k waits min(BackoffCap, BackoffBase·2^k). Default 1s.
	BackoffBase units.Seconds
	// BackoffCap bounds the backoff. Default 30s.
	BackoffCap units.Seconds
	// Jitter in [0, 1) spreads retries: the backoff is multiplied by
	// 1 + Jitter·U with U uniform in [0, 1) from the pool's seeded
	// client stream — the standard thundering-herd mitigation.
	Jitter float64
	// TTFTSLO is the class's own time-to-first-token target for
	// per-class attainment; zero falls back to the pool-wide SLO
	// (Options.TTFTLimit, default 1s).
	TTFTSLO units.Seconds
}

func (b ClientBehavior) backoffBase() float64 {
	if b.BackoffBase > 0 {
		return float64(b.BackoffBase)
	}
	return 1
}

func (b ClientBehavior) backoffCap() float64 {
	if b.BackoffCap > 0 {
		return float64(b.BackoffCap)
	}
	return 30
}

func (b ClientBehavior) validate(who string) error {
	switch {
	case b.Timeout < 0 || math.IsNaN(float64(b.Timeout)) || math.IsInf(float64(b.Timeout), 0):
		return fmt.Errorf("serve: %s client timeout %v must be finite and ≥ 0", who, b.Timeout)
	case b.Retries < 0:
		return fmt.Errorf("serve: %s negative retry count %d", who, b.Retries)
	case b.BackoffBase < 0 || b.BackoffCap < 0:
		return fmt.Errorf("serve: %s negative backoff", who)
	case b.Jitter < 0 || b.Jitter >= 1 || math.IsNaN(b.Jitter):
		return fmt.Errorf("serve: %s jitter %v outside [0, 1)", who, b.Jitter)
	case b.TTFTSLO < 0:
		return fmt.Errorf("serve: %s negative TTFT SLO %v", who, b.TTFTSLO)
	}
	return nil
}

// ClientConfig closes the serving loop: per-request deadlines, retries
// with capped exponential backoff plus seeded jitter, and abandonment.
// The zero value is the historical open loop.
type ClientConfig struct {
	// Default applies to every request whose class has no entry in
	// Classes (including all of a single-tenant trace).
	Default ClientBehavior
	// Classes, when non-empty, maps trace.Request.Class to behavior by
	// index (a zero-value entry means that class is open-loop). It also
	// switches on per-class Metrics.Classes accounting.
	Classes []ClientBehavior
	// Seed drives the retry-jitter stream; each pool derives its own
	// substream via mathx.DeriveSeed(Seed, global pool index).
	Seed uint64
	// ObserveOnly measures client deadlines without enforcing them:
	// requests are never timed out, retried, or abandoned, but
	// Metrics.UsefulGoodput still counts only completions a client with
	// these timeouts would have waited for. This is the open-loop
	// baseline a closed-loop run is compared against — same patience,
	// no feedback.
	ObserveOnly bool
}

// enabled reports whether any class can time out — the condition under
// which pools allocate client-tracking state.
func (c ClientConfig) enabled() bool {
	if c.ObserveOnly {
		return false
	}
	if c.Default.Timeout > 0 {
		return true
	}
	for _, b := range c.Classes {
		if b.Timeout > 0 {
			return true
		}
	}
	return false
}

// Validate reports the first configuration problem, or nil.
func (c ClientConfig) Validate() error {
	if err := c.Default.validate("default"); err != nil {
		return err
	}
	for i, b := range c.Classes {
		if err := b.validate(fmt.Sprintf("class %d", i)); err != nil {
			return err
		}
	}
	return nil
}

// AdmissionPolicy selects how a pool sheds load under overload.
type AdmissionPolicy int

const (
	// AdmitAll is the zero value: every arrival is queued, however deep
	// the backlog — the historical open-admission behavior.
	AdmitAll AdmissionPolicy = iota
	// AdmitPriority sheds arrivals below MinPriority whenever the
	// pool's outstanding work is at or above QueueLimit: a static
	// two-tier gate (free tier sheds, paid tier always admits).
	AdmitPriority
	// AdmitAdaptive scales each priority level's queue-depth threshold
	// with its rank: priority p admits while outstanding work is below
	// QueueLimit·(1+p)/Levels, so pressure sheds the lowest tiers first
	// and the highest tier keeps the full limit.
	AdmitAdaptive
)

// String returns the policy's CLI name.
func (a AdmissionPolicy) String() string {
	switch a {
	case AdmitPriority:
		return "priority"
	case AdmitAdaptive:
		return "adaptive"
	default:
		return "none"
	}
}

// ParseAdmissionPolicy maps a CLI name (none | priority | adaptive) to
// its policy.
func ParseAdmissionPolicy(name string) (AdmissionPolicy, error) {
	switch name {
	case "none", "all":
		return AdmitAll, nil
	case "priority", "static":
		return AdmitPriority, nil
	case "adaptive", "queue-depth":
		return AdmitAdaptive, nil
	}
	return 0, fmt.Errorf("serve: unknown admission policy %q (want none, priority, or adaptive)", name)
}

// AdmissionPolicies returns the admission policies in definition order —
// the axis the sweep facade crosses.
func AdmissionPolicies() []AdmissionPolicy {
	return []AdmissionPolicy{AdmitAll, AdmitPriority, AdmitAdaptive}
}

// AdmissionConfig is a pool's load-shedding gate, applied to every
// arrival (and every retry) before it is queued. Shed requests count in
// Metrics.Shed (and per-class), never in Completed. The zero value
// admits everything.
type AdmissionConfig struct {
	// Policy selects the gate.
	Policy AdmissionPolicy
	// QueueLimit is the outstanding-work threshold (queued plus
	// in-flight requests) the gates key on. Required when Policy is not
	// AdmitAll.
	QueueLimit int
	// MinPriority is AdmitPriority's cutoff: arrivals with
	// trace.Request.Priority below it shed once the limit is hit.
	MinPriority int
	// Levels is AdmitAdaptive's priority-band count (priorities at or
	// above Levels-1 share the top band). Default 4.
	Levels int
}

func (a AdmissionConfig) levels() int {
	if a.Levels > 0 {
		return a.Levels
	}
	return 4
}

// Validate reports the first configuration problem, or nil.
func (a AdmissionConfig) Validate() error {
	switch {
	case a.Policy < AdmitAll || a.Policy > AdmitAdaptive:
		return fmt.Errorf("serve: unknown admission policy %d", a.Policy)
	case a.Policy != AdmitAll && a.QueueLimit <= 0:
		return fmt.Errorf("serve: admission policy %s needs a positive QueueLimit", a.Policy)
	case a.MinPriority < 0 || a.Levels < 0:
		return fmt.Errorf("serve: negative admission threshold")
	}
	return nil
}

// AutoscaleConfig is a pool's elastic control loop. Scaling works
// within the provisioned fleet: instances beyond MinInstances start
// parked (drawing no traffic), the control loop unparks them under load
// — after a cold-start warm-up — and drains them back when load falls.
// For the static policy only decode engines scale (prefill capacity
// stays fixed); colocated policies scale every instance. Utilization
// denominators stay provisioned-fleet based; Metrics.MeanLiveInstances
// reports the time-averaged unparked count. The zero value keeps the
// whole fleet always on.
type AutoscaleConfig struct {
	// Enabled turns the control loop on.
	Enabled bool
	// Interval is the control-loop period. Default 5s.
	Interval units.Seconds
	// HighWater scales up when outstanding work per live instance
	// exceeds it. Default 8.
	HighWater float64
	// LowWater scales down when outstanding work per live instance
	// falls below it (and more than MinInstances are live). Default 1.
	LowWater float64
	// MinInstances is the floor of always-on instances. Default 1.
	MinInstances int
	// Step bounds instances scaled per control tick. Default 1.
	Step int
	// WarmUp is the cold-start delay before an unparked instance takes
	// traffic (weights load, cache warm-up). An instance that dies
	// mid-warm-up stays parked. Default 30s.
	WarmUp units.Seconds
}

func (a AutoscaleConfig) interval() float64 {
	if a.Interval > 0 {
		return float64(a.Interval)
	}
	return 5
}

func (a AutoscaleConfig) highWater() float64 {
	if a.HighWater > 0 {
		return a.HighWater
	}
	return 8
}

func (a AutoscaleConfig) lowWater() float64 {
	if a.LowWater > 0 {
		return a.LowWater
	}
	return 1
}

func (a AutoscaleConfig) minInstances() int {
	if a.MinInstances > 0 {
		return a.MinInstances
	}
	return 1
}

func (a AutoscaleConfig) step() int {
	if a.Step > 0 {
		return a.Step
	}
	return 1
}

func (a AutoscaleConfig) warmUp() float64 {
	if a.WarmUp > 0 {
		return float64(a.WarmUp)
	}
	return 30
}

// Validate reports the first configuration problem, or nil.
func (a AutoscaleConfig) Validate() error {
	switch {
	case a.Interval < 0 || a.HighWater < 0 || a.LowWater < 0 ||
		a.MinInstances < 0 || a.Step < 0 || a.WarmUp < 0:
		return fmt.Errorf("serve: negative autoscale parameter")
	case a.Enabled && a.lowWater() >= a.highWater():
		return fmt.Errorf("serve: autoscale LowWater %v must be below HighWater %v",
			a.lowWater(), a.highWater())
	}
	return nil
}

// StragglerConfig plants persistently slow instances in a pool — the
// paper's straggling-GPU concern at serving granularity. Each instance
// draws one step-time factor from the jitter distribution at
// construction (seeded per global instance index, so runs and shards
// agree) and every pass it runs is stretched by it. The zero value
// (CV 0) leaves all instances nominal.
type StragglerConfig struct {
	// Jitter is the slowdown dispersion (see straggler.Jitter): each
	// instance's factor is one draw of 1+X, floored at 0.5.
	Jitter straggler.Jitter
	// Seed derives per-instance draws via mathx.DeriveSeed.
	Seed uint64
}

// Enabled reports whether any slowdown is configured.
func (s StragglerConfig) Enabled() bool { return s.Jitter.CV > 0 }

// Validate reports the first configuration problem, or nil.
func (s StragglerConfig) Validate() error {
	if s.Jitter.CV < 0 || math.IsNaN(s.Jitter.CV) || math.IsInf(s.Jitter.CV, 0) {
		return fmt.Errorf("serve: straggler CV %v must be finite and ≥ 0", s.Jitter.CV)
	}
	if s.Jitter.Tail < straggler.Gaussian || s.Jitter.Tail > straggler.LogNormal {
		return fmt.Errorf("serve: unknown straggler tail %d", s.Jitter.Tail)
	}
	return nil
}

// ClassMetrics is one tenant class's slice of a pool's outcome,
// reported when ClientConfig.Classes or admission control is in use.
type ClassMetrics struct {
	// Class is the trace.Request.Class index.
	Class int
	// Arrived counts first submissions (retries are not re-counted).
	Arrived int
	// Completed counts finished generations, including ones that
	// succeeded on a retry attempt.
	Completed int
	// Shed counts admission-control rejections (retries included).
	Shed int
	// TimedOut counts client deadline expiries (each attempt counts).
	TimedOut int
	// Retries counts resubmissions after a timeout or a shed.
	Retries int
	// Abandoned counts requests whose client gave up for good.
	Abandoned int
	// TTFTAttainment is first-token SLO hits (against the class's
	// TTFTSLO) over Arrived: shed and abandoned requests count as
	// misses, so the ratio reflects end-to-end tenant experience. A
	// request that times out after its first token and then succeeds on
	// a retry can contribute two hits, so saturated closed-loop runs
	// read this alongside TimedOut.
	TTFTAttainment float64
	// Goodput is completed output tokens per simulated second.
	Goodput float64
}

// classAcc is a pool's per-class accumulator (index = class).
type classAcc struct {
	arrived    int
	completed  int
	shed       int
	timedOut   int
	retries    int
	abandoned  int
	ttftOK     int
	goodTokens int
}

// clientTrack is one tracked request attempt's client-side state. Live
// attempts hold an armed deadline event; cancelled attempts whose copy
// is still woven through a queue persist as tombstones until a
// scheduler choke point reclaims the copy.
type clientTrack struct {
	id        int
	class     int32
	attempts  int32
	open      bool
	cancelled bool
	deadline  sim.EventID
	req       trace.Request // original payload, for resubmission
}

// newTrack returns a fresh track index from the pool's arena.
//
//litegpu:hotpath
func (p *poolSim) newTrack() int32 {
	if n := len(p.freeTracks); n > 0 {
		idx := p.freeTracks[n-1]
		p.freeTracks = p.freeTracks[:n-1]
		return idx
	}
	p.trackArena = append(p.trackArena, clientTrack{})
	return int32(len(p.trackArena) - 1)
}

// freeTrack recycles a track slot.
//
//litegpu:hotpath
func (p *poolSim) freeTrack(idx int32) {
	p.trackArena[idx] = clientTrack{}
	p.freeTracks = append(p.freeTracks, idx)
}

// behavior returns the client behavior governing a class.
//
//litegpu:hotpath
func (p *poolSim) behavior(class int) ClientBehavior {
	if cls := p.cfg.Client.Classes; class >= 0 && class < len(cls) {
		return cls[class]
	}
	return p.cfg.Client.Default
}

// classAt returns the class's accumulator, growing the slice on first
// sight of a class index.
//
//litegpu:hotpath
func (p *poolSim) classAt(class int) *classAcc {
	if class < 0 {
		class = 0
	}
	for len(p.classes) <= class {
		p.classes = append(p.classes, classAcc{})
	}
	return &p.classes[class]
}

// classSLO returns the TTFT target for per-class attainment.
//
//litegpu:hotpath
func (p *poolSim) classSLO(class int) units.Seconds {
	if cls := p.cfg.Client.Classes; class >= 0 && class < len(cls) && cls[class].TTFTSLO > 0 {
		return cls[class].TTFTSLO
	}
	return pickSLO(p.cfg.Opts.TTFTLimit, 1.0)
}

// isCancelled reports whether request id carries a cancellation
// tombstone awaiting reclamation.
//
//litegpu:hotpath
func (p *poolSim) isCancelled(id int) bool {
	if len(p.cancelled) == 0 {
		return false
	}
	_, ok := p.cancelled[id]
	return ok
}

// settleCancelled consumes request id's cancellation tombstone after
// its live copy was reclaimed; a is that copy (nil when the copy was a
// queued value, not an activeReq).
//
//litegpu:hotpath
func (p *poolSim) settleCancelled(id int, a *activeReq) {
	if idx, ok := p.cancelled[id]; ok {
		delete(p.cancelled, id)
		p.freeTrack(idx)
	}
	if a != nil {
		p.freeActive(a)
	}
}

// clientSettle closes the client's interest in request id at a terminal
// event — completion, oversized drop, or failure-policy drop: the live
// track's deadline is cancelled and the track freed. An untracked id
// (client loop off for its class, or already abandoned) is a no-op.
//
//litegpu:hotpath
func (p *poolSim) clientSettle(id int) {
	if !p.clientOn {
		return
	}
	idx, ok := p.tracks[id]
	if !ok {
		// A terminal event for a cancelled copy (failure-policy drop of
		// a timed-out request): consume its tombstone, if any.
		if tidx, tomb := p.cancelled[id]; tomb {
			delete(p.cancelled, id)
			p.freeTrack(tidx)
		}
		return
	}
	tr := &p.trackArena[idx]
	if tr.deadline != 0 {
		p.eng.Cancel(tr.deadline)
		tr.deadline = 0
	}
	delete(p.tracks, id)
	p.freeTrack(idx)
}

// shouldShed applies the pool's admission gate to one arrival.
//
//litegpu:hotpath
func (p *poolSim) shouldShed(r trace.Request) bool {
	a := p.cfg.Admission
	out := p.sched.outstanding()
	switch a.Policy {
	case AdmitPriority:
		return out >= a.QueueLimit && r.Priority < a.MinPriority
	case AdmitAdaptive:
		levels := a.levels()
		pr := r.Priority
		if pr >= levels {
			pr = levels - 1
		}
		if pr < 0 {
			pr = 0
		}
		return out >= a.QueueLimit*(1+pr)/levels
	}
	return false
}

// openTrack arms the client loop for one attempt: a deadline event at
// arrival+timeout in the client priority band. Classes without a
// timeout stay untracked (open loop).
//
//litegpu:hotpath
func (s *clusterSim) openTrack(p *poolSim, r trace.Request, attempts int32, now float64) {
	b := p.behavior(r.Class)
	if b.Timeout <= 0 {
		return
	}
	idx := p.newTrack()
	tr := &p.trackArena[idx]
	*tr = clientTrack{id: r.ID, class: int32(r.Class), attempts: attempts, open: true, req: r}
	at := float64(r.Arrival) + float64(b.Timeout)
	if at < now {
		at = now
	}
	tr.deadline = s.eng.ScheduleCall(at, prioClient+p.prioBase, s.deadlineH, packArg(p.idx, int(idx)))
	p.tracks[r.ID] = idx
}

// onDeadline fires one client timeout: the attempt is cancelled (its
// in-flight fabric transfer eagerly, everything else lazily via a
// tombstone consumed at the scheduler's next touch), then the client
// either schedules a backoff retry or abandons.
//
//litegpu:hotpath
func (s *clusterSim) onDeadline(now float64, arg uint64) {
	pi, idx := unpackArg(arg)
	p := s.pools[pi]
	tr := &p.trackArena[idx]
	tr.deadline = 0
	delete(p.tracks, tr.id)
	p.m.ClientTimeouts++
	if p.classesOn {
		p.classAt(int(tr.class)).timedOut++
	}
	if p.rec != nil {
		p.rec.Request(obs.Timeout, now, int32(p.idx), -1, int64(tr.id), float64(tr.attempts))
	}
	if !s.cancelClientXfer(p, tr.id) {
		// The copy is woven through a queue, batch, or ingress
		// transfer: leave a tombstone for the choke points.
		tidx := p.newTrack()
		p.trackArena[tidx] = clientTrack{id: tr.id, open: true, cancelled: true}
		p.cancelled[tr.id] = tidx
		tr = &p.trackArena[idx] // newTrack may have grown the arena
	}
	b := p.behavior(int(tr.class))
	if int(tr.attempts) < b.Retries {
		s.scheduleRetry(p, idx, now, b)
	} else {
		p.m.Abandoned++
		if p.classesOn {
			p.classAt(int(tr.class)).abandoned++
		}
		if p.rec != nil {
			p.rec.Request(obs.Abandon, now, int32(p.idx), -1, int64(tr.id), float64(tr.attempts))
		}
		p.freeTrack(int32(idx))
	}
	// Cancelled copies at queue heads must be purged even on an
	// otherwise-idle pool, or tombstones outlive the backlog.
	s.requestDispatch(now)
}

// cancelClientXfer eagerly cancels request id's in-flight KV or swap
// transfer, reclaiming its payload; ingress transfers carry value
// payloads and reclaim lazily at delivery. Reports whether a copy was
// reclaimed.
//
//litegpu:hotpath
func (s *clusterSim) cancelClientXfer(p *poolSim, id int) bool {
	if s.fab == nil {
		return false
	}
	live := p.liveXfers
	for k, idx := range live {
		rec := &p.xfers[idx]
		if rec.a == nil || rec.a.req.ID != id {
			continue
		}
		s.fab.Cancel(rec.tid)
		p.freeActive(rec.a)
		p.freeXfer(idx)
		copy(live[k:], live[k+1:])
		p.liveXfers = live[:len(live)-1]
		return true
	}
	return false
}

// scheduleRetry books a resubmission after capped exponential backoff
// with seeded jitter. The track slot is kept for the pending retry.
//
//litegpu:hotpath
func (s *clusterSim) scheduleRetry(p *poolSim, idx int, now float64, b ClientBehavior) {
	tr := &p.trackArena[idx]
	p.m.ClientRetries++
	if p.classesOn {
		p.classAt(int(tr.class)).retries++
	}
	backoff := b.backoffBase()
	limit := b.backoffCap()
	for a := int32(0); a < tr.attempts && backoff < limit; a++ {
		backoff *= 2
	}
	if backoff > limit {
		backoff = limit
	}
	if b.Jitter > 0 {
		backoff *= 1 + b.Jitter*p.clientRNG.Float64()
	}
	if p.rec != nil {
		p.rec.Request(obs.Backoff, now, int32(p.idx), -1, int64(tr.id), backoff)
	}
	s.eng.ScheduleCall(now+backoff, prioClient+p.prioBase, s.retryH, packArg(p.idx, idx))
}

// onRetry resubmits a timed-out (or shed) attempt as a fresh request:
// new pool-unique negative ID, arrival now, full re-prefill. Retries
// face admission control like any arrival but never re-count in
// Arrived, and they re-enter the pool that owns the track (never
// re-routed — which is also what keeps the sharded runner pool-local).
//
//litegpu:hotpath
func (s *clusterSim) onRetry(now float64, arg uint64) {
	pi, idx := unpackArg(arg)
	p := s.pools[pi]
	tr := &p.trackArena[idx]
	r := tr.req
	oldID := tr.id
	p.retrySeq--
	r.ID = p.retrySeq
	r.Arrival = units.Seconds(now)
	tr.id = r.ID
	tr.req = r
	tr.attempts++
	if p.rec != nil {
		// Retries extend the original submission's sampled timeline
		// rather than re-entering the reservoir.
		p.rec.Adopt(int64(oldID), int64(r.ID))
		p.rec.Request(obs.Retry, now, int32(p.idx), -1, int64(r.ID), float64(tr.attempts))
	}
	if p.cfg.Admission.Policy != AdmitAll && p.shouldShed(r) {
		p.m.Shed++
		if p.classesOn {
			p.classAt(int(tr.class)).shed++
		}
		if p.rec != nil {
			p.rec.Request(obs.Shed, now, int32(p.idx), -1, int64(r.ID), float64(tr.class))
		}
		b := p.behavior(int(tr.class))
		if int(tr.attempts) < b.Retries {
			s.scheduleRetry(p, idx, now, b)
			return
		}
		p.m.Abandoned++
		if p.classesOn {
			p.classAt(int(tr.class)).abandoned++
		}
		if p.rec != nil {
			p.rec.Request(obs.Abandon, now, int32(p.idx), -1, int64(r.ID), float64(tr.attempts))
		}
		p.freeTrack(int32(idx))
		return
	}
	b := p.behavior(int(tr.class))
	tr.deadline = s.eng.ScheduleCall(now+float64(b.Timeout), prioClient+p.prioBase,
		s.deadlineH, packArg(p.idx, idx))
	p.tracks[r.ID] = int32(idx)
	if s.fab != nil && len(s.pools) > 1 {
		s.startIngress(p, r, now)
	} else {
		if p.rec != nil {
			p.rec.Request(obs.Enqueue, now, int32(p.idx), -1, int64(r.ID), 0)
		}
		p.sched.enqueue(r)
	}
	s.requestDispatch(now)
}

// --- autoscaler ---------------------------------------------------------

// parkInstance takes an instance out of service (autoscale scale-down
// completion): it draws no dispatch and counts no live capacity until
// a warm-up unparks it.
//
//litegpu:hotpath
func (p *poolSim) parkInstance(st *instanceState, now float64) {
	st.draining = false
	st.parked = true
	st.parkedAt = now
}

// onScale runs one control tick for a pool: compare outstanding work
// per live scalable instance against the watermarks, unpark (with
// cold-start warm-up) or drain accordingly, and rebook the tick.
//
//litegpu:hotpath
func (s *clusterSim) onScale(now float64, arg uint64) {
	pi, _ := unpackArg(arg)
	p := s.pools[pi]
	a := p.cfg.Autoscale
	live := 0
	for id := p.scaleLo; id < p.scaleHi; id++ {
		st := p.sched.state(id)
		if !st.parked && !st.draining {
			live++
		}
	}
	denom := live
	if denom < 1 {
		denom = 1
	}
	load := float64(p.sched.outstanding()) / float64(denom)
	if load > a.highWater() {
		for n := a.step(); n > 0; n-- {
			if !s.scaleUpOne(p, now) {
				break
			}
			p.m.ScaleUps++
			if p.rec != nil {
				p.rec.Cluster(obs.ScaleUp, now, int32(p.idx), -1, load)
			}
		}
	} else if load < a.lowWater() && live > p.scaleMin {
		for n := a.step(); n > 0 && live > p.scaleMin; n-- {
			if !s.scaleDownOne(p, now) {
				break
			}
			p.m.ScaleDowns++
			live--
			if p.rec != nil {
				p.rec.Cluster(obs.ScaleDown, now, int32(p.idx), -1, load)
			}
		}
	}
	s.eng.ScheduleCall(now+a.interval(), prioClient+p.prioBase+1, s.scaleH, arg)
	s.requestDispatch(now)
}

// scaleUpOne adds capacity: a draining instance is reclaimed first (it
// is still warm), otherwise the lowest-index parked instance starts its
// cold-start warm-up. Reports whether anything was found.
//
//litegpu:hotpath
func (s *clusterSim) scaleUpOne(p *poolSim, now float64) bool {
	for id := p.scaleLo; id < p.scaleHi; id++ {
		st := p.sched.state(id)
		if st.draining {
			st.draining = false
			return true
		}
	}
	for id := p.scaleLo; id < p.scaleHi; id++ {
		st := p.sched.state(id)
		if st.parked && !st.warming {
			st.warming = true
			s.eng.ScheduleCall(now+p.cfg.Autoscale.warmUp(), prioClient+p.prioBase+1,
				s.warmH, packArg(p.idx, id))
			return true
		}
	}
	return false
}

// scaleDownOne removes capacity: the highest-index live instance parks
// immediately when idle, or drains (admitting nothing, finishing its
// in-flight work, then parking itself). Reports whether a target was
// found.
//
//litegpu:hotpath
func (s *clusterSim) scaleDownOne(p *poolSim, now float64) bool {
	for id := p.scaleHi - 1; id >= p.scaleLo; id-- {
		st := p.sched.state(id)
		if st.parked || st.draining {
			continue
		}
		if p.sched.idle(id) {
			p.parkInstance(st, now)
		} else {
			st.draining = true
		}
		return true
	}
	return false
}

// onWarm completes one cold start: the instance unparks and takes
// traffic — unless it died mid-warm-up, in which case it stays parked
// (a later tick may warm another).
//
//litegpu:hotpath
func (s *clusterSim) onWarm(now float64, arg uint64) {
	pi, id := unpackArg(arg)
	p := s.pools[pi]
	st := p.sched.state(id)
	st.warming = false
	if !st.up || !st.parked {
		return
	}
	st.parked = false
	st.parkedSec += now - st.parkedAt
	s.requestDispatch(now)
}

// buildClassMetrics folds a pool's per-class accumulators into the
// reported slice; nil when no class ever arrived.
func buildClassMetrics(p *poolSim, h float64) []ClassMetrics {
	if len(p.classes) == 0 {
		return nil
	}
	out := make([]ClassMetrics, len(p.classes))
	for i := range p.classes {
		acc := &p.classes[i]
		out[i] = ClassMetrics{
			Class:          i,
			Arrived:        acc.arrived,
			Completed:      acc.completed,
			Shed:           acc.shed,
			TimedOut:       acc.timedOut,
			Retries:        acc.retries,
			Abandoned:      acc.abandoned,
			TTFTAttainment: ratio(acc.ttftOK, acc.arrived),
		}
		if h > 0 {
			out[i].Goodput = float64(acc.goodTokens) / h
		}
	}
	return out
}
