package serve

import (
	"testing"

	"litegpu/internal/failure"
	"litegpu/internal/hw"
	"litegpu/internal/inference"
	"litegpu/internal/model"
)

// schedulerGoldenFile extends the byte-identity corpus to the colocated
// policies (ContinuousBatching, ChunkedPrefill) and to failure
// injection under all three schedulers. Like static_goldens.txt it was
// captured with LITEGPU_UPDATE_GOLDENS=1 at the commit BEFORE the
// allocation-free hot-path rework (PR 4), so the whole optimization is
// provably byte-identical under every scheduling discipline — including
// mid-run instance failures, requeues, and drops.
const schedulerGoldenFile = "testdata/scheduler_goldens.txt"

// schedulerGoldenScenarios covers what static_goldens.txt cannot: the
// two colocated policies on both GPU types and workload shapes, chunked
// prefill at a non-default chunk size, and the no-drain + decode-heavy +
// TimeScale 8e6 failure regime (the only parameterization in which
// failures demonstrably bite mid-window) under each policy, with both
// the requeue and drop in-flight policies and a spared variant.
func schedulerGoldenScenarios() []goldenScenario {
	smallAt := func(pol SchedulerPolicy) Config {
		cfg := Config{
			GPU:              hw.H100(),
			Model:            model.Llama3_8B(),
			Opts:             inference.DefaultOptions(),
			PrefillInstances: 1,
			PrefillGPUs:      1,
			DecodeInstances:  1,
			DecodeGPUs:       1,
			MaxPrefillBatch:  4,
			MaxDecodeBatch:   64,
		}
		cfg.Scheduler = pol
		return cfg
	}
	cont := smallAt(ContinuousBatching) // derives 2×1-GPU colocated
	chunk := smallAt(ChunkedPrefill)
	chunk.PrefillChunk = 256
	l70c := Config{
		GPU:              hw.Lite(),
		Model:            model.Llama3_70B(),
		Opts:             inference.DefaultOptions(),
		Scheduler:        ContinuousBatching,
		PrefillInstances: 2,
		PrefillGPUs:      8,
		DecodeInstances:  1,
		DecodeGPUs:       8,
		MaxPrefillBatch:  4,
		MaxDecodeBatch:   64,
	}
	l70k := l70c
	l70k.Scheduler = ChunkedPrefill // default 512-token chunks, long prompts

	// The accelerated failure regime: no drain window (arrive ==
	// horizon), decode-heavy conversation traffic, failure clock ×8e6
	// with a 300 s repair — an instance that dies mid-window stays dead
	// unless a spare takes over.
	fail := func(cfg Config, spares int, policy FailurePolicy) ClusterConfig {
		p := failure.DefaultParams()
		p.MTTR = 300
		p.RecoveryTime = 5
		cc := clusterOf(cfg)
		cc.Failures = FailureConfig{
			Enabled:   true,
			Params:    p,
			Spares:    spares,
			Policy:    policy,
			TimeScale: 8e6,
			Seed:      99,
		}
		return cc
	}
	return []goldenScenario{
		{name: "continuous-small-coding", cluster: clusterOf(cont), rate: 1.0, seed: 7, arrive: 200, horizon: 400},
		{name: "chunked256-small-coding", cluster: clusterOf(chunk), rate: 1.0, seed: 7, arrive: 200, horizon: 400},
		{name: "continuous-lite-70b", cluster: clusterOf(l70c), rate: 1.2, seed: 42, arrive: 300, horizon: 420},
		{name: "chunked-lite-70b", cluster: clusterOf(l70k), rate: 1.2, seed: 42, arrive: 300, horizon: 420},
		{name: "continuous-small-conv-nodrain", cluster: clusterOf(cont), rate: 4.0, seed: 11, conv: true, arrive: 300, horizon: 300},
		{name: "static-fail-requeue", cluster: fail(smallAt(StaticDisaggregated), 0, RequeueOnFailure), rate: 4.0, seed: 11, conv: true, arrive: 300, horizon: 300},
		{name: "static-fail-drop", cluster: fail(smallAt(StaticDisaggregated), 0, DropOnFailure), rate: 4.0, seed: 11, conv: true, arrive: 300, horizon: 300},
		{name: "continuous-fail-requeue", cluster: fail(cont, 0, RequeueOnFailure), rate: 4.0, seed: 11, conv: true, arrive: 300, horizon: 300},
		{name: "continuous-fail-spared", cluster: fail(cont, 1, RequeueOnFailure), rate: 4.0, seed: 11, conv: true, arrive: 300, horizon: 300},
		{name: "chunked-fail-requeue", cluster: fail(chunk, 0, RequeueOnFailure), rate: 4.0, seed: 11, conv: true, arrive: 300, horizon: 300},
		{name: "chunked-fail-drop", cluster: fail(chunk, 1, DropOnFailure), rate: 4.0, seed: 11, conv: true, arrive: 300, horizon: 300},
	}
}

// TestSchedulerGoldens pins all three scheduling policies — including
// under failure injection — to the exact Metrics the pre-optimization
// simulator produced. Together with the static corpus it is the
// byte-identity contract for the allocation-free hot path: %x rendering
// leaves no room for float drift, summation reordering, or event-order
// changes. Regenerate (only when knowingly changing simulator
// semantics) with:
//
//	LITEGPU_UPDATE_GOLDENS=1 go test ./internal/serve -run Golden
func TestSchedulerGoldens(t *testing.T) {
	compareGoldens(t, schedulerGoldenFile, goldenReport(t, schedulerGoldenScenarios(), viewLegacy))
}
