package serve

import (
	"fmt"

	"litegpu/internal/trace"
)

// SchedulerPolicy selects the serving discipline a pool runs — how its
// GPUs are organized into instances and how requests move through the
// prefill and decode phases. The policies differ most on Lite-GPU
// clusters, where per-GPU capacity is smaller and the software's ability
// to keep every die busy decides whether the hardware story holds up.
type SchedulerPolicy int

const (
	// StaticDisaggregated is the paper's Splitwise-style phase split:
	// dedicated prefill instances batch incoming prompts, dedicated
	// decode instances run continuous batching over active generations,
	// and requests cross a queue between the two pools. The zero value,
	// and byte-identical to the engine that predated the Scheduler
	// interface.
	StaticDisaggregated SchedulerPolicy = iota
	// ContinuousBatching colocates both phases on every instance
	// (vLLM/Orca style): finished generations free batch slots that are
	// refilled from the queue every iteration, and pending prompts are
	// prefilled in full passes that stall ongoing decodes — high goodput,
	// but long prompts produce time-between-token spikes.
	ContinuousBatching
	// ChunkedPrefill is ContinuousBatching with Sarathi-style chunking:
	// long prompts are split into PrefillChunk-token chunks, each fused
	// with one decode step of the running batch, so decode stalls are
	// bounded by the chunk size instead of the prompt length.
	ChunkedPrefill
)

// String returns the policy's CLI name.
func (s SchedulerPolicy) String() string {
	switch s {
	case ContinuousBatching:
		return "continuous"
	case ChunkedPrefill:
		return "chunked"
	default:
		return "static"
	}
}

// ParseSchedulerPolicy maps a CLI name (static | continuous | chunked)
// to its policy.
func ParseSchedulerPolicy(name string) (SchedulerPolicy, error) {
	switch name {
	case "static", "disaggregated":
		return StaticDisaggregated, nil
	case "continuous", "continuous-batching":
		return ContinuousBatching, nil
	case "chunked", "chunked-prefill":
		return ChunkedPrefill, nil
	}
	return 0, fmt.Errorf("serve: unknown scheduler %q (want static, continuous, or chunked)", name)
}

// SchedulerPolicies returns all three policies in definition order —
// the axis the sweep and the planner cross.
func SchedulerPolicies() []SchedulerPolicy {
	return []SchedulerPolicy{StaticDisaggregated, ContinuousBatching, ChunkedPrefill}
}

// Colocated reports whether the policy runs both phases on every
// instance (ContinuousBatching and ChunkedPrefill) rather than on
// dedicated phase pools.
func (s SchedulerPolicy) Colocated() bool {
	return s == ContinuousBatching || s == ChunkedPrefill
}

// phaseShape is how a scheduler's instances map onto the two metric
// phases: the utilization denominators and the per-instance GPU degrees
// used to weight busy-time across heterogeneous pools. For a colocated
// scheduler both phases span the same instances.
type phaseShape struct {
	prefillInstances, prefillGPUs int
	decodeInstances, decodeGPUs   int
}

// scheduler is one pool's serving discipline on the shared event
// engine. The cluster simulation owns arrivals, failure processes, the
// spare shelf, and metric assembly; the scheduler owns the instances,
// the queues, and the decision of what work runs when. Implementations
// must be deterministic: same inputs, byte-identical Metrics.
type scheduler interface {
	// numInstances returns the count of failable units; instance ids are
	// 0..numInstances()-1 in a stable order.
	numInstances() int
	// state returns instance id's failure-facing state.
	state(id int) *instanceState
	// gpus returns the GPU count behind instance id.
	gpus(id int) int
	// shape returns the phase mapping for utilization accounting.
	shape() phaseShape
	// totalGPUs returns the pool's accelerator count (excluding spares).
	totalGPUs() int
	// enqueue accepts a routed arrival.
	enqueue(r trace.Request)
	// deliverKV accepts a request whose KV-cache handoff just crossed
	// the fabric: it joins the decode path. Only schedulers that move
	// KV between phase pools (the static policy) ever receive one;
	// colocated schedulers panic, because a handoff to them is a
	// simulator bug.
	deliverKV(a *activeReq, now float64)
	// dispatch hands queued work to idle instances; called exactly once
	// per event timestamp, after all completions at that time.
	dispatch(now float64)
	// swapReturn accepts a preempted sequence whose KV just finished its
	// swap round-trip or recompute handoff: it rejoins the decode path
	// at the head of the queue, holding no blocks and stamping no TTFT
	// (its first token was already served before preemption). Only
	// reachable with Config.KV enabled.
	swapReturn(a *activeReq, now float64)
	// fail reclaims instance id's in-flight work when it dies:
	// un-counting the unfinished busy tail and requeueing (or, when drop
	// is set, abandoning) the work. Generic down-marking, completion-
	// event cancellation, and spare logistics happen in the cluster.
	fail(id int, now float64, drop bool)
	// recovered restores instance-local state after id comes back up.
	recovered(id int, now float64)
	// outstanding returns queued plus in-flight request count — the
	// router's load figure.
	outstanding() int
	// scalable returns the [lo, hi) instance-id range the autoscaler may
	// park and unpark: every instance for colocated policies, decode
	// engines only for the static split (prefill capacity stays fixed).
	scalable() (lo, hi int)
	// idle reports whether instance id holds no in-flight work — the
	// condition for parking it immediately instead of draining.
	idle(id int) bool
	// busy returns accumulated (prefill, decode) busy-seconds, summed in
	// stable instance order so metric assembly stays byte-deterministic.
	busy() (prefill, decode float64)
	// snapshot deep-copies the scheduler's mutable state, appending the
	// (pointer, value) pair of every live activeReq it owns to reqs; the
	// returned value is opaque to the caller and only meaningful to this
	// scheduler's restore. See snapshot.go.
	snapshot(reqs []savedReq) (snap any, out []savedReq)
	// restore rewinds the scheduler, in place, to a snapshot it produced
	// earlier. activeReq and failRNG pointer identity is preserved;
	// restore never adopts the snapshot's backing storage.
	restore(snap any)
}
