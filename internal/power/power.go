// Package power models GPU package power and cooling: DVFS (dynamic
// voltage-frequency scaling), leakage, air- vs liquid-cooling limits,
// overclocking headroom, and cluster-level power under partial load.
//
// It substantiates three of the paper's arguments: (1) smaller packages
// dissipate less total heat and can stay on air cooling with headroom to
// overclock (the Lite+FLOPS configurations); (2) a group of Lite-GPUs can
// be power-managed at finer granularity than one big GPU — idle members
// can be gated entirely rather than down-clocking every SM; and (3) the
// energy-per-area of a Lite rack drops even as device count rises.
package power

import (
	"math"

	"litegpu/internal/hw"
	"litegpu/internal/units"
)

// Model holds the DVFS and leakage parameters shared by the studies.
type Model struct {
	// DynamicFraction is the share of TDP that is activity-dependent
	// (the rest is leakage and always-on infrastructure).
	DynamicFraction float64
	// MinClock is the lowest DVFS point as a fraction of base clock.
	MinClock float64
	// GatedWatts is the residual draw of a fully power-gated package.
	GatedWatts units.Watts
	// VoltageSlope relates clock to voltage: V(f)/V0 = 1 + VoltageSlope·(f−1).
	// Dynamic power scales as f·V², leakage roughly as V.
	VoltageSlope float64
}

// Default returns parameters representative of recent datacenter GPUs:
// ~70% dynamic share, 40% minimum DVFS point, 10 W gated residual, and a
// voltage curve where ±10% clock moves voltage ±~7%.
func Default() Model {
	return Model{
		DynamicFraction: 0.70,
		MinClock:        0.40,
		GatedWatts:      10,
		VoltageSlope:    0.7,
	}
}

// voltage returns V(f)/V0, clamped at the retention floor.
func (m Model) voltage(clock float64) float64 {
	v := 1 + m.VoltageSlope*(clock-1)
	if v < 0.6 {
		v = 0.6
	}
	return v
}

// Package returns the power of one GPU package running at the given
// relative clock (1 = base) and utilization (fraction of issue slots
// active). Clock is clamped to [MinClock, ∞); utilization to [0, 1].
func (m Model) Package(g hw.GPU, clock, util float64) units.Watts {
	clock = math.Max(clock, m.MinClock)
	util = math.Min(math.Max(util, 0), 1)
	v := m.voltage(clock)
	dyn := float64(g.TDP) * m.DynamicFraction * util * clock * v * v
	static := float64(g.TDP) * (1 - m.DynamicFraction) * v
	return units.Watts(dyn + static)
}

// Gated returns the residual power of a power-gated package.
func (m Model) Gated() units.Watts { return m.GatedWatts }

// Cooling identifies a cooling technology.
type Cooling int

// The cooling classes the paper discusses.
const (
	// Air is conventional forced-air heatsink cooling.
	Air Cooling = iota
	// Liquid is direct-to-chip liquid cooling, required by the densest
	// packages (the paper notes liquid racks dominate B200 clusters).
	Liquid
)

// String implements fmt.Stringer.
func (c Cooling) String() string {
	if c == Air {
		return "air"
	}
	return "liquid"
}

// CoolingLimits bounds what a cooling class can extract from one package.
type CoolingLimits struct {
	// MaxPackage is the total heat a heatsink of practical size removes.
	MaxPackage units.Watts
	// MaxDensity is the heat flux limit in W/mm² at the die.
	MaxDensity float64
}

// Limits returns the practical envelope of each cooling class. The
// binding constraint for large packages is total heat through a
// practically-sized heatsink (MaxPackage); the die-level flux limit is
// looser because small dies spread laterally into the lid.
func Limits(c Cooling) CoolingLimits {
	if c == Air {
		return CoolingLimits{MaxPackage: 350, MaxDensity: 1.3}
	}
	return CoolingLimits{MaxPackage: 1500, MaxDensity: 2.5}
}

// Required returns the least-capable cooling class that can hold the GPU
// at TDP, and whether even liquid suffices.
func Required(g hw.GPU) (Cooling, bool) {
	for _, c := range []Cooling{Air, Liquid} {
		lim := Limits(c)
		if g.TDP <= lim.MaxPackage && g.PowerDensity() <= lim.MaxDensity {
			return c, true
		}
	}
	return Liquid, false
}

// OverclockHeadroom returns the maximum sustained clock factor (≥ 1 when
// any headroom exists) the cooling class allows at full utilization,
// found by inverting the DVFS power curve against the cooling envelope.
func (m Model) OverclockHeadroom(g hw.GPU, c Cooling) float64 {
	lim := Limits(c)
	budget := math.Min(float64(lim.MaxPackage), lim.MaxDensity*float64(g.DieArea)*float64(maxInt(g.DiesPerPackage, 1)))
	lo, hi := m.MinClock, 3.0
	if float64(m.Package(g, hi, 1)) < budget {
		return hi
	}
	for i := 0; i < 64; i++ {
		mid := (lo + hi) / 2
		if float64(m.Package(g, mid, 1)) <= budget {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// PartialLoad compares the paper's finer-granularity power-management
// example: serving a load that needs only the given fraction of one big
// GPU's compute, using (a) the big GPU down-clocked as far as the load
// allows versus (b) `split` Lite-GPUs where the unneeded members are
// power-gated and the rest run just fast enough.
type PartialLoad struct {
	BigWatts   units.Watts
	LiteWatts  units.Watts
	LiteActive int
	// Saving is 1 − Lite/Big.
	Saving float64
}

// AtLoad evaluates the comparison at the given load fraction (0–1].
// The big GPU down-clocks as far as the DVFS floor allows and idles the
// slack (all SMs stay powered — the paper's granularity complaint). The
// Lite group chooses the number of active members and their uniform
// clock that minimizes power, gating the rest entirely — "down-clocking
// only a portion of SMs in a larger GPU", realized across packages.
func (m Model) AtLoad(big hw.GPU, split int, load float64) PartialLoad {
	load = math.Min(math.Max(load, 0), 1)
	lite := big.Scale(1 / float64(split))

	var r PartialLoad
	r.BigWatts = m.deviceAtLoad(big, load)

	// Lite group: best active count k; the active members share the load
	// evenly, each carrying load·split/k of its own capacity.
	best := float64(split) * float64(m.Gated())
	bestK := 0
	for k := 1; k <= split; k++ {
		share := load * float64(split) / float64(k)
		if share > 1 {
			continue // k members cannot carry the load
		}
		w := float64(k)*float64(m.deviceAtLoad(lite, share)) +
			float64(split-k)*float64(m.Gated())
		if bestK == 0 || w < best {
			best, bestK = w, k
		}
	}
	if load == 0 {
		bestK, best = 0, float64(split)*float64(m.Gated())
	}
	r.LiteActive = bestK
	r.LiteWatts = units.Watts(best)
	if r.BigWatts > 0 {
		r.Saving = 1 - float64(r.LiteWatts)/float64(r.BigWatts)
	}
	return r
}

// deviceAtLoad returns the power of one device carrying the given
// fraction of its own capacity: clocked at max(load, MinClock) and
// utilized load/clock.
func (m Model) deviceAtLoad(g hw.GPU, load float64) units.Watts {
	if load <= 0 {
		return m.Package(g, m.MinClock, 0)
	}
	clock := math.Max(load, m.MinClock)
	return m.Package(g, clock, load/clock)
}

// EnergyPerArea compares rack-level heat: watts per mm² of rack-silicon
// for n packages of the given GPU. The paper: "the number of devices per
// area is increased, however, the energy per unit area is decreased" —
// at package level the Lite group dissipates the same total but each
// package is separately and easily coolable.
func EnergyPerArea(g hw.GPU, n int) float64 {
	area := float64(g.DieArea) * float64(maxInt(g.DiesPerPackage, 1)) * float64(n)
	if area == 0 {
		return 0
	}
	return float64(g.TDP) * float64(n) / area
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
