package power

import (
	"math"
	"testing"
	"testing/quick"

	"litegpu/internal/hw"
)

func TestPackageAtBase(t *testing.T) {
	m := Default()
	// Full utilization at base clock = TDP.
	p := m.Package(hw.H100(), 1, 1)
	if math.Abs(float64(p)-700) > 1e-9 {
		t.Errorf("H100 at base/full = %v, want 700 W", p)
	}
}

func TestPackageIdleStatic(t *testing.T) {
	m := Default()
	// Zero utilization leaves only leakage at the operating voltage.
	p := m.Package(hw.H100(), 1, 0)
	want := 700 * (1 - m.DynamicFraction)
	if math.Abs(float64(p)-want) > 1e-9 {
		t.Errorf("idle power = %v, want %v", p, want)
	}
}

func TestPackageClampsInputs(t *testing.T) {
	m := Default()
	// Clock below MinClock clamps; utilization above 1 clamps.
	low := m.Package(hw.H100(), 0.01, 1)
	atMin := m.Package(hw.H100(), m.MinClock, 1)
	if low != atMin {
		t.Errorf("clock clamp failed: %v vs %v", low, atMin)
	}
	over := m.Package(hw.H100(), 1, 5)
	full := m.Package(hw.H100(), 1, 1)
	if over != full {
		t.Errorf("util clamp failed: %v vs %v", over, full)
	}
}

func TestDownClockingSavesPower(t *testing.T) {
	m := Default()
	full := m.Package(hw.H100(), 1, 1)
	half := m.Package(hw.H100(), 0.5, 1)
	if half >= full {
		t.Errorf("down-clock did not save power: %v vs %v", half, full)
	}
	// Cubic-ish: half clock should save well over the linear 50%.
	if float64(half) > 0.55*float64(full) {
		t.Errorf("half clock = %v, expected superlinear saving vs %v", half, full)
	}
}

func TestCoolingRequired(t *testing.T) {
	// H100 at 700 W exceeds the air envelope.
	c, ok := Required(hw.H100())
	if !ok || c != Liquid {
		t.Errorf("H100 cooling = %v ok=%v, want liquid", c, ok)
	}
	// Lite at 175 W is air-coolable — a core paper claim.
	c, ok = Required(hw.Lite())
	if !ok || c != Air {
		t.Errorf("Lite cooling = %v ok=%v, want air", c, ok)
	}
}

func TestCoolingStrings(t *testing.T) {
	if Air.String() != "air" || Liquid.String() != "liquid" {
		t.Error("cooling strings wrong")
	}
}

func TestOverclockHeadroomLiteVsH100(t *testing.T) {
	m := Default()
	// Lite on air has real overclock headroom — enough to cover the
	// Table 1 Lite+FLOPS configuration (550/500 = 1.10×).
	liteHead := m.OverclockHeadroom(hw.Lite(), Air)
	if liteHead < 1.10 {
		t.Errorf("Lite air overclock headroom = %.3f, want ≥1.10", liteHead)
	}
	// H100 on air cannot even hold base clock (it throttles).
	h100Head := m.OverclockHeadroom(hw.H100(), Air)
	if h100Head >= 1.0 {
		t.Errorf("H100 air headroom = %.3f, expected <1 (throttling)", h100Head)
	}
	// Liquid buys the H100 headroom back.
	if m.OverclockHeadroom(hw.H100(), Liquid) <= h100Head {
		t.Error("liquid should raise H100 headroom")
	}
}

func TestAtLoadFinerGranularityWins(t *testing.T) {
	m := Default()
	// At 25% load, one Lite-GPU runs at full tilt while three are gated;
	// the H100 must keep all SMs powered. The paper's example.
	r := m.AtLoad(hw.H100(), 4, 0.25)
	if r.LiteActive < 1 || r.LiteActive > 3 {
		t.Errorf("active Lite-GPUs = %d, want 1–3", r.LiteActive)
	}
	if r.LiteWatts >= r.BigWatts {
		t.Errorf("Lite group (%v) should beat big GPU (%v) at 25%% load",
			r.LiteWatts, r.BigWatts)
	}
	if r.Saving < 0.15 {
		t.Errorf("saving = %.1f%%, want ≥15%%", r.Saving*100)
	}
	// The saving grows as load shrinks (more members gated).
	low := m.AtLoad(hw.H100(), 4, 0.10)
	if low.Saving <= r.Saving {
		t.Errorf("saving at 10%% load (%.1f%%) should exceed 25%% load (%.1f%%)",
			low.Saving*100, r.Saving*100)
	}
}

func TestAtLoadFullLoadParity(t *testing.T) {
	m := Default()
	// At 100% load both run everything at base clock; the Lite group
	// pays no penalty (same silicon, same voltage).
	r := m.AtLoad(hw.H100(), 4, 1.0)
	if r.LiteActive != 4 {
		t.Errorf("active = %d, want 4", r.LiteActive)
	}
	rel := math.Abs(float64(r.LiteWatts)-float64(r.BigWatts)) / float64(r.BigWatts)
	if rel > 0.01 {
		t.Errorf("full-load parity violated: lite %v vs big %v", r.LiteWatts, r.BigWatts)
	}
}

func TestAtLoadZero(t *testing.T) {
	m := Default()
	r := m.AtLoad(hw.H100(), 4, 0)
	if r.LiteActive != 0 {
		t.Errorf("active at zero load = %d", r.LiteActive)
	}
	// All gated: 4 × GatedWatts.
	if math.Abs(float64(r.LiteWatts)-4*float64(m.GatedWatts)) > 1e-9 {
		t.Errorf("gated group = %v, want %v", r.LiteWatts, 4*float64(m.GatedWatts))
	}
	if r.LiteWatts >= r.BigWatts {
		t.Error("gated group should beat idling big GPU")
	}
}

func TestEnergyPerArea(t *testing.T) {
	// Same silicon, same density: per-area power is identical; the win
	// is per-package heat.
	h := EnergyPerArea(hw.H100(), 8)
	l := EnergyPerArea(hw.Lite(), 32)
	if math.Abs(h-l) > 1e-9 {
		t.Errorf("energy/area: H100 %v vs Lite %v, want equal", h, l)
	}
	if EnergyPerArea(hw.GPU{}, 4) != 0 {
		t.Error("zero-area GPU should yield 0")
	}
}

func TestGated(t *testing.T) {
	m := Default()
	if m.Gated() != m.GatedWatts {
		t.Error("Gated() mismatch")
	}
}

// Property: package power is monotone in both clock and utilization.
func TestPackageMonotoneProperty(t *testing.T) {
	m := Default()
	g := hw.H100()
	f := func(rc1, rc2, ru1, ru2 uint8) bool {
		c1 := float64(rc1)/255*1.5 + 0.4
		c2 := float64(rc2)/255*1.5 + 0.4
		u1 := float64(ru1) / 255
		u2 := float64(ru2) / 255
		if c1 > c2 {
			c1, c2 = c2, c1
		}
		if u1 > u2 {
			u1, u2 = u2, u1
		}
		return m.Package(g, c1, u1) <= m.Package(g, c2, u2)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the Lite group never burns more than the big GPU plus gating
// residuals at any load.
func TestAtLoadNeverMuchWorseProperty(t *testing.T) {
	m := Default()
	f := func(raw uint8) bool {
		load := float64(raw) / 255
		r := m.AtLoad(hw.H100(), 4, load)
		slack := 4 * float64(m.GatedWatts)
		return float64(r.LiteWatts) <= float64(r.BigWatts)+slack+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: overclock headroom grows with cooling capability.
func TestHeadroomOrderingProperty(t *testing.T) {
	m := Default()
	for _, g := range []hw.GPU{hw.H100(), hw.Lite(), hw.LiteMemBW()} {
		if m.OverclockHeadroom(g, Air) > m.OverclockHeadroom(g, Liquid) {
			t.Errorf("%s: air headroom exceeds liquid", g.Name)
		}
	}
}
