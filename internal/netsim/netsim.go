// Package netsim is a deterministic, flow-level discrete-event model of
// a switched GPU fabric, built on the shared internal/sim calendar. It
// answers the question the analytical internal/network package cannot:
// what a transfer actually costs *under contention* — when several
// KV-cache handoffs share the same ports at the same time, when a
// circuit switch serializes them, when path latency stacks onto
// serialization.
//
// The model is the classic flow abstraction used by flow-level network
// simulators: a Transfer occupies its source endpoint's egress port and
// its destination endpoint's ingress port from start to delivery.
// Under a packet-switched discipline, concurrent transfers share port
// bandwidth max-min fairly, and every start or finish triggers a
// progress settlement and rate recomputation. Under a circuit-switched
// discipline (Sirius/OCS style), a transfer needs an exclusive circuit
// over both ports: transfers queue FIFO, run one-at-a-time per port at
// full bandwidth, and pay a reconfiguration delay per circuit. Both
// disciplines add the topology's path latency to delivery.
//
// Determinism and allocation discipline follow the repo contract:
// transfers live in a recyclable slab addressed by (slot, generation)
// ids, the active and pending sets are index slices scanned in start
// order (no maps), scratch buffers for the max-min waterfill are reused
// across recomputations, and delivery events ride the caller-supplied
// priority band — so a warm fabric starts, reshapes, and completes
// transfers without touching the Go heap, and identical inputs produce
// byte-identical schedules.
package netsim

import (
	"fmt"
	"math"

	"litegpu/internal/mathx"
	"litegpu/internal/sim"
)

// TransferID names an in-flight transfer for cancellation. Like
// sim.EventID it packs the slab slot with its generation, so a stale id
// (the transfer delivered or was cancelled) fails the generation check.
// The zero TransferID is never issued.
type TransferID uint64

// Params configures a Fabric.
type Params struct {
	// Ports is the per-endpoint port bandwidth in bytes/s, one entry
	// per endpoint; entry i caps both endpoint i's egress and its
	// ingress. Every entry must be positive.
	Ports []float64
	// PathLatency is the switch-traversal latency added to every
	// transfer's delivery (seconds) — the last byte arrives this long
	// after it is serialized.
	PathLatency float64
	// Circuit selects the circuit-switched discipline: exclusive
	// per-port circuits, FIFO queueing, full port bandwidth, and
	// ReconfigTime of setup per transfer. False = packet switching with
	// max-min fair sharing.
	Circuit bool
	// ReconfigTime is the circuit-establishment delay (Circuit only).
	ReconfigTime float64
}

// Validate reports the first configuration problem, or nil.
func (p Params) Validate() error {
	if len(p.Ports) == 0 {
		return fmt.Errorf("netsim: fabric needs at least one endpoint")
	}
	for i, bw := range p.Ports {
		if !(bw > 0) {
			return fmt.Errorf("netsim: endpoint %d port bandwidth %v must be positive", i, bw)
		}
	}
	if p.PathLatency < 0 || p.ReconfigTime < 0 {
		return fmt.Errorf("netsim: negative latency")
	}
	return nil
}

// flow states. A slot is reusable exactly when free.
const (
	flowFree int8 = iota
	flowPending
	flowActive
)

// flow is one slab slot: a transfer's live state.
type flow struct {
	src, dst int32
	state    int8
	gen      uint32

	bytes     float64 // original payload size, for stats
	remaining float64 // bytes not yet serialized
	overhead  float64 // latency (+ reconfig) left after the last byte
	rate      float64 // current serialization rate, bytes/s
	lastAt    float64 // time of the last settlement
	startAt   float64 // Start() time, for duration stats

	h    sim.Handler
	arg  uint64
	prio int32
	ev   sim.EventID
}

// Fabric is a simulated switched fabric attached to a sim.Engine. Not
// safe for concurrent use (the engine is single-threaded by design).
type Fabric struct {
	eng *sim.Engine
	p   Params

	flows []flow
	free  []int32

	// active holds running transfers in start order (packet mode: the
	// fair-share set; circuit mode: the circuits up). pending is the
	// circuit-mode FIFO.
	active  []int32
	pending []int32

	// Per-endpoint circuit occupancy (circuit mode).
	egBusy, inBusy []bool

	// Waterfill scratch, reused across recomputations.
	egCap, inCap []float64
	egCnt, inCnt []int
	prevRates    []float64

	deliverH sim.Handler

	// Delivered counts completed transfers; BytesDelivered sums their
	// payload bytes.
	Delivered      int
	BytesDelivered float64
}

// New returns a fabric on the engine. Params must validate.
func New(eng *sim.Engine, p Params) (*Fabric, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.Ports)
	f := &Fabric{
		eng:    eng,
		p:      p,
		egBusy: make([]bool, n),
		inBusy: make([]bool, n),
		egCap:  make([]float64, n),
		inCap:  make([]float64, n),
		egCnt:  make([]int, n),
		inCnt:  make([]int, n),
	}
	f.deliverH = f.onDeliver
	return f, nil
}

// Endpoints returns the fabric's endpoint count.
func (f *Fabric) Endpoints() int { return len(f.p.Ports) }

// InFlight returns the number of transfers started but not delivered.
func (f *Fabric) InFlight() int { return len(f.active) + len(f.pending) }

// Start launches a transfer of `bytes` from endpoint src to endpoint
// dst at the current engine time. When the transfer is delivered (all
// bytes serialized plus path latency), h(now, arg) fires in the given
// event-priority band. A zero-byte transfer is legal: it delivers after
// the latency overhead alone (same-timestamp when that is zero), still
// through the calendar so ordering stays deterministic.
//
//litegpu:hotpath
func (f *Fabric) Start(src, dst int, bytes float64, prio int, h sim.Handler, arg uint64) TransferID {
	if src < 0 || src >= len(f.p.Ports) || dst < 0 || dst >= len(f.p.Ports) {
		panic(fmt.Sprintf("netsim: endpoint out of range: %d -> %d of %d", src, dst, len(f.p.Ports)))
	}
	if bytes < 0 || math.IsNaN(bytes) || math.IsInf(bytes, 0) {
		panic(fmt.Sprintf("netsim: bad transfer size %v", bytes))
	}
	now := f.eng.Now()
	var slot int32
	if n := len(f.free); n > 0 {
		slot = f.free[n-1]
		f.free = f.free[:n-1]
	} else {
		f.flows = append(f.flows, flow{gen: 1})
		slot = int32(len(f.flows) - 1)
	}
	fl := &f.flows[slot]
	gen := fl.gen
	*fl = flow{
		src: int32(src), dst: int32(dst), gen: gen,
		bytes:     bytes,
		remaining: bytes,
		overhead:  f.p.PathLatency,
		lastAt:    now, startAt: now,
		h: h, arg: arg, prio: int32(prio),
	}
	id := TransferID(uint64(gen)<<32 | uint64(uint32(slot)))
	if f.p.Circuit {
		fl.state = flowPending
		fl.overhead += f.p.ReconfigTime
		f.pending = append(f.pending, slot)
		f.drainPending(now)
	} else {
		fl.state = flowActive
		f.active = append(f.active, slot)
		f.reshare(now)
	}
	return id
}

// Cancel aborts a pending or in-flight transfer; its delivery handler
// never fires. It reports false when the id is stale (the transfer
// already delivered or was already cancelled) — a legal no-op, matching
// sim.Cancel semantics.
//
//litegpu:hotpath
func (f *Fabric) Cancel(id TransferID) bool {
	slot := uint32(id)
	gen := uint32(id >> 32)
	if uint64(slot) >= uint64(len(f.flows)) {
		return false
	}
	fl := &f.flows[slot]
	if fl.gen != gen || fl.state == flowFree {
		return false
	}
	now := f.eng.Now()
	switch fl.state {
	case flowPending:
		f.removeFrom(&f.pending, int32(slot))
		f.release(int32(slot))
	case flowActive:
		f.eng.Cancel(fl.ev)
		f.removeFrom(&f.active, int32(slot))
		if f.p.Circuit {
			f.egBusy[fl.src] = false
			f.inBusy[fl.dst] = false
			f.release(int32(slot))
			f.drainPending(now)
		} else {
			f.release(int32(slot))
			f.reshare(now)
		}
	}
	return true
}

// release recycles a slot, bumping the generation so stale TransferIDs
// miss.
//
//litegpu:hotpath
func (f *Fabric) release(slot int32) {
	fl := &f.flows[slot]
	fl.state = flowFree
	fl.gen++
	fl.h = nil
	f.free = append(f.free, slot)
}

// removeFrom deletes slot from an order-preserving id slice.
//
//litegpu:hotpath
func (f *Fabric) removeFrom(s *[]int32, slot int32) {
	ids := *s
	w := 0
	for _, id := range ids {
		if id != slot {
			ids[w] = id
			w++
		}
	}
	*s = ids[:w]
}

// onDeliver fires a transfer's delivery: free its ports, recycle its
// slot, account stats, hand the fabric to waiting work, and only then
// run the user handler — so the handler observes a consistent fabric.
//
//litegpu:hotpath
func (f *Fabric) onDeliver(now float64, arg uint64) {
	slot := int32(arg)
	fl := &f.flows[slot]
	h, userArg := fl.h, fl.arg
	f.Delivered++
	f.BytesDelivered += fl.bytes
	f.removeFrom(&f.active, slot)
	if f.p.Circuit {
		f.egBusy[fl.src] = false
		f.inBusy[fl.dst] = false
		f.release(slot)
		f.drainPending(now)
	} else {
		f.release(slot)
		f.reshare(now)
	}
	h(now, userArg)
}

// Snapshot is a frozen copy of a Fabric's transfer state, taken by
// Fabric.Snapshot and replayed by Fabric.Restore. Like sim.Snapshot it
// is only meaningful for in-place restore (same Fabric, same Engine,
// same handler receivers), and it must be restored together with the
// engine snapshot captured at the same instant — flow progress and the
// delivery events booked for it describe one moment in simulated time.
type Snapshot struct {
	flows          []flow
	free           []int32
	active         []int32
	pending        []int32
	egBusy, inBusy []bool
	delivered      int
	bytesDelivered float64
}

// Snapshot returns a deep copy of the fabric's current transfer state.
// Waterfill scratch buffers are excluded: they carry no state between
// recomputations.
func (f *Fabric) Snapshot() *Snapshot {
	return &Snapshot{
		flows:          append([]flow(nil), f.flows...),
		free:           append([]int32(nil), f.free...),
		active:         append([]int32(nil), f.active...),
		pending:        append([]int32(nil), f.pending...),
		egBusy:         append([]bool(nil), f.egBusy...),
		inBusy:         append([]bool(nil), f.inBusy...),
		delivered:      f.Delivered,
		bytesDelivered: f.BytesDelivered,
	}
}

// Restore rewinds the fabric to a snapshot taken from it earlier. The
// snapshot is untouched and may be restored again.
func (f *Fabric) Restore(s *Snapshot) {
	f.flows = append(f.flows[:0], s.flows...)
	f.free = append(f.free[:0], s.free...)
	f.active = append(f.active[:0], s.active...)
	f.pending = append(f.pending[:0], s.pending...)
	copy(f.egBusy, s.egBusy)
	copy(f.inBusy, s.inBusy)
	f.Delivered = s.delivered
	f.BytesDelivered = s.bytesDelivered
}

// schedule (re)books a flow's delivery event at its projected delivery
// time: remaining serialization at the current rate, then the overhead
// tail.
//
//litegpu:hotpath
func (f *Fabric) schedule(slot int32) {
	fl := &f.flows[slot]
	if fl.ev != 0 {
		f.eng.Cancel(fl.ev)
	}
	at := fl.lastAt + fl.overhead
	if fl.remaining > 0 {
		at += fl.remaining / fl.rate
	}
	fl.ev = f.eng.ScheduleCall(at, int(fl.prio), f.deliverH, uint64(uint32(slot)))
}

// settle advances a flow's progress to now at its current rate: bytes
// serialize first, then the overhead tail burns in real time.
//
//litegpu:hotpath
func (f *Fabric) settle(slot int32, now float64) {
	fl := &f.flows[slot]
	dt := now - fl.lastAt
	fl.lastAt = now
	if dt <= 0 {
		return
	}
	if fl.remaining > 0 && fl.rate > 0 {
		tBytes := fl.remaining / fl.rate
		if dt < tBytes {
			fl.remaining -= fl.rate * dt
			return
		}
		fl.remaining = 0
		dt -= tBytes
	}
	fl.overhead -= dt
	if fl.overhead < 0 {
		fl.overhead = 0
	}
}

// drainPending starts every queued circuit whose source egress and
// destination ingress are both free, scanning in FIFO order (blocked
// entries are skipped, not head-of-line blocking the rest — skipping
// is what makes the atomically-grab-both-ports discipline
// deadlock-free).
//
//litegpu:hotpath
func (f *Fabric) drainPending(now float64) {
	ids := f.pending
	w := 0
	for _, slot := range ids {
		fl := &f.flows[slot]
		if f.egBusy[fl.src] || f.inBusy[fl.dst] {
			ids[w] = slot
			w++
			continue
		}
		f.egBusy[fl.src] = true
		f.inBusy[fl.dst] = true
		fl.state = flowActive
		fl.lastAt = now
		fl.rate = math.Min(f.p.Ports[fl.src], f.p.Ports[fl.dst])
		f.active = append(f.active, slot)
		f.schedule(slot)
	}
	f.pending = ids[:w]
}

// reshare settles every active flow to now, recomputes max-min fair
// rates over the endpoint ports, and reschedules deliveries whose rate
// changed (packet discipline only).
//
// The waterfill is the textbook algorithm: repeatedly find the most
// contended port (smallest capacity/flows ratio; ties break egress
// before ingress, then lowest endpoint index, so the outcome is
// deterministic), freeze its flows at that fair share, charge the share
// to each frozen flow's other port, and repeat until every flow has a
// rate.
//
//litegpu:hotpath
func (f *Fabric) reshare(now float64) {
	if len(f.active) == 0 {
		return
	}
	for _, slot := range f.active {
		f.settle(slot, now)
	}
	for i := range f.p.Ports {
		f.egCap[i] = f.p.Ports[i]
		f.inCap[i] = f.p.Ports[i]
		f.egCnt[i] = 0
		f.inCnt[i] = 0
	}
	for _, slot := range f.active {
		fl := &f.flows[slot]
		f.egCnt[fl.src]++
		f.inCnt[fl.dst]++
	}
	unassigned := len(f.active)
	// rate < 0 marks a flow not yet frozen this round; prev rates are
	// kept so unchanged flows skip the cancel-and-reschedule churn.
	prev := f.prevRates[:0]
	for _, slot := range f.active {
		prev = append(prev, f.flows[slot].rate) //litegpu:alloc-ok prev aliases the reused f.prevRates scratch; growth is amortized-zero
		f.flows[slot].rate = -1
	}
	f.prevRates = prev
	for unassigned > 0 {
		// Find the bottleneck port.
		bestShare := math.Inf(1)
		bestIdx, bestIn := -1, false
		for i := range f.p.Ports {
			if f.egCnt[i] > 0 {
				if share := f.egCap[i] / float64(f.egCnt[i]); share < bestShare {
					bestShare, bestIdx, bestIn = share, i, false
				}
			}
		}
		for i := range f.p.Ports {
			if f.inCnt[i] > 0 {
				if share := f.inCap[i] / float64(f.inCnt[i]); share < bestShare {
					bestShare, bestIdx, bestIn = share, i, true
				}
			}
		}
		if bestIdx < 0 {
			break // defensive: no contended port left
		}
		for _, slot := range f.active {
			fl := &f.flows[slot]
			if fl.rate >= 0 {
				continue
			}
			if (!bestIn && int(fl.src) == bestIdx) || (bestIn && int(fl.dst) == bestIdx) {
				fl.rate = bestShare
				unassigned--
				f.egCnt[fl.src]--
				f.egCap[fl.src] -= bestShare
				f.inCnt[fl.dst]--
				f.inCap[fl.dst] -= bestShare
			}
		}
	}
	for i, slot := range f.active {
		fl := &f.flows[slot]
		// A settled flow's delivery time depends only on (lastAt,
		// remaining, rate); with the rate unchanged the booked event is
		// still exact, so only rate changes (and fresh flows, ev == 0)
		// reschedule.
		if fl.ev != 0 && mathx.ExactEq(fl.rate, prev[i]) {
			continue
		}
		f.schedule(slot)
	}
}
