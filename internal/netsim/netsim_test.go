package netsim

import (
	"math"
	"testing"

	"litegpu/internal/sim"
)

// recorder collects deliveries as (time, arg) pairs via a bound
// handler, so tests can assert exact completion schedules.
type recorder struct {
	at   []float64
	args []uint64
}

func (r *recorder) handle(now float64, arg uint64) {
	r.at = append(r.at, now)
	r.args = append(r.args, arg)
}

func newFabric(t *testing.T, eng *sim.Engine, p Params) *Fabric {
	t.Helper()
	f, err := New(eng, p)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func almost(a, b float64) bool { return math.Abs(a-b) <= 1e-9*math.Max(1, math.Abs(b)) }

func TestValidate(t *testing.T) {
	eng := sim.New(1)
	if _, err := New(eng, Params{}); err == nil {
		t.Error("empty fabric must not validate")
	}
	if _, err := New(eng, Params{Ports: []float64{100, 0}}); err == nil {
		t.Error("zero port bandwidth must not validate")
	}
	if _, err := New(eng, Params{Ports: []float64{100}, PathLatency: -1}); err == nil {
		t.Error("negative latency must not validate")
	}
}

// TestSingleTransfer pins the base case: bytes/rate serialization plus
// the path-latency tail.
func TestSingleTransfer(t *testing.T) {
	eng := sim.New(1)
	f := newFabric(t, eng, Params{Ports: []float64{100, 100}, PathLatency: 0.5})
	var r recorder
	f.Start(0, 1, 1000, 0, r.handle, 7)
	eng.Run(math.Inf(1))
	if len(r.at) != 1 || !almost(r.at[0], 10.5) || r.args[0] != 7 {
		t.Fatalf("delivery = %v args %v, want [10.5] [7]", r.at, r.args)
	}
	if f.Delivered != 1 || f.BytesDelivered != 1000 {
		t.Fatalf("stats = %d/%v", f.Delivered, f.BytesDelivered)
	}
}

// TestZeroByteTransfer: a zero-byte transfer is legal and delivers
// after the latency overhead alone — and with zero latency it still
// goes through the calendar (delivering at the same timestamp), so
// same-time ordering stays deterministic.
func TestZeroByteTransfer(t *testing.T) {
	for _, lat := range []float64{0, 0.25} {
		eng := sim.New(1)
		f := newFabric(t, eng, Params{Ports: []float64{100, 100}, PathLatency: lat})
		var r recorder
		f.Start(0, 1, 0, 0, r.handle, 1)
		if len(r.at) != 0 {
			t.Fatalf("lat=%v: delivery fired synchronously inside Start", lat)
		}
		eng.Run(math.Inf(1))
		if len(r.at) != 1 || !almost(r.at[0], lat) {
			t.Fatalf("lat=%v: delivery = %v, want [%v]", lat, r.at, lat)
		}
	}
}

// TestPacketFairShare pins the two-flow case on one shared egress port:
// both flows run at half rate while they overlap, and the survivor
// speeds back up when the first delivers.
func TestPacketFairShare(t *testing.T) {
	eng := sim.New(1)
	f := newFabric(t, eng, Params{Ports: []float64{100, 100, 100}})
	var r recorder
	// Both flows leave endpoint 0: its egress is the bottleneck.
	f.Start(0, 1, 1000, 0, r.handle, 1)
	f.Start(0, 2, 1000, 0, r.handle, 2)
	eng.Run(math.Inf(1))
	// Shared at 50 B/s until the first finishes; they are symmetric, so
	// both serialize at 50 for 1000/50 = 20 s... but the instant one
	// finishes the other would speed up — being tied, they deliver
	// together at t = 20.
	if len(r.at) != 2 || !almost(r.at[0], 20) || !almost(r.at[1], 20) {
		t.Fatalf("deliveries = %v, want [20 20]", r.at)
	}
	if r.args[0] != 1 || r.args[1] != 2 {
		t.Fatalf("tied deliveries must fire in start order, got args %v", r.args)
	}
}

// TestPacketSpeedup: a short flow sharing a port with a long one
// finishes, and the long one reshapes to full rate from that moment.
func TestPacketSpeedup(t *testing.T) {
	eng := sim.New(1)
	f := newFabric(t, eng, Params{Ports: []float64{100, 100, 100}})
	var r recorder
	f.Start(0, 1, 2000, 0, r.handle, 1) // long
	f.Start(0, 2, 500, 0, r.handle, 2)  // short
	eng.Run(math.Inf(1))
	// Shared at 50 B/s: short delivers at 10 (500/50). Long has 1500
	// left, now at 100 B/s: 10 + 15 = 25.
	if len(r.at) != 2 || r.args[0] != 2 || !almost(r.at[0], 10) {
		t.Fatalf("short: deliveries %v args %v, want short at 10 first", r.at, r.args)
	}
	if !almost(r.at[1], 25) {
		t.Fatalf("long delivered at %v, want 25 (reshaped to full rate)", r.at[1])
	}
}

// TestMaxMinWaterfill pins a three-flow asymmetric case against the
// hand-computed max-min allocation.
func TestMaxMinWaterfill(t *testing.T) {
	eng := sim.New(1)
	f := newFabric(t, eng, Params{Ports: []float64{100, 100, 50}})
	var r recorder
	// A: 0→2, B: 1→2 (ingress 2 is the bottleneck: 25 each),
	// C: 0→1 (gets the leftovers: min(100-25, 100-25) = 75).
	f.Start(0, 2, 250, 0, r.handle, 'A')
	f.Start(1, 2, 250, 0, r.handle, 'B')
	f.Start(0, 1, 300, 0, r.handle, 'C')
	eng.Run(math.Inf(1))
	if len(r.at) != 3 {
		t.Fatalf("deliveries = %d", len(r.at))
	}
	// C at 75 B/s: 300/75 = 4 s. A and B at 25 B/s deliver at 10 s.
	byArg := map[uint64]float64{}
	for i, a := range r.args {
		byArg[a] = r.at[i]
	}
	if !almost(byArg['C'], 4) {
		t.Errorf("C delivered at %v, want 4", byArg['C'])
	}
	// After C delivers at t=4, A has 250-100=150 left. Freeing egress 0
	// does not help A or B (ingress 2 still splits 25/25), so they
	// still deliver at 10.
	if !almost(byArg['A'], 10) || !almost(byArg['B'], 10) {
		t.Errorf("A/B delivered at %v/%v, want 10/10", byArg['A'], byArg['B'])
	}
}

// TestCircuitSerialization pins the circuit discipline on a single
// endpoint pair: FIFO order, full port bandwidth, reconfiguration and
// path latency per circuit — the "single-link serialization order"
// edge case.
func TestCircuitSerialization(t *testing.T) {
	eng := sim.New(1)
	f := newFabric(t, eng, Params{
		Ports: []float64{100, 100}, Circuit: true,
		ReconfigTime: 1, PathLatency: 0.5,
	})
	var r recorder
	f.Start(0, 1, 1000, 0, r.handle, 1)
	f.Start(0, 1, 1000, 0, r.handle, 2)
	f.Start(0, 1, 0, 0, r.handle, 3) // zero-byte circuit still pays setup
	eng.Run(math.Inf(1))
	want := []float64{11.5, 23, 24.5}
	if len(r.at) != 3 {
		t.Fatalf("deliveries = %v", r.at)
	}
	for i := range want {
		if !almost(r.at[i], want[i]) || r.args[i] != uint64(i+1) {
			t.Fatalf("delivery %d = (%v, %d), want (%v, %d)", i, r.at[i], r.args[i], want[i], i+1)
		}
	}
}

// TestCircuitHeadOfLineSkip: a queued circuit blocked on a busy port
// does not block an independent circuit behind it in the FIFO.
func TestCircuitHeadOfLineSkip(t *testing.T) {
	eng := sim.New(1)
	f := newFabric(t, eng, Params{Ports: []float64{100, 100, 100, 100}, Circuit: true})
	var r recorder
	f.Start(0, 1, 1000, 0, r.handle, 1) // holds 0→1 for 10 s
	f.Start(0, 2, 1000, 0, r.handle, 2) // blocked: egress 0 busy
	f.Start(2, 3, 1000, 0, r.handle, 3) // independent: starts at once
	eng.Run(math.Inf(1))
	byArg := map[uint64]float64{}
	for i, a := range r.args {
		byArg[a] = r.at[i]
	}
	if !almost(byArg[3], 10) {
		t.Errorf("independent circuit delivered at %v, want 10 (must not queue behind blocked head)", byArg[3])
	}
	if !almost(byArg[1], 10) || !almost(byArg[2], 20) {
		t.Errorf("serialized pair delivered at %v/%v, want 10/20", byArg[1], byArg[2])
	}
}

// TestCancel covers cancelling pending and active transfers in both
// disciplines, stale-id no-ops, and that cancelled handlers never fire.
func TestCancel(t *testing.T) {
	t.Run("packet", func(t *testing.T) {
		eng := sim.New(1)
		f := newFabric(t, eng, Params{Ports: []float64{100, 100, 100}})
		var r recorder
		id := f.Start(0, 1, 1000, 0, r.handle, 1)
		f.Start(0, 2, 1000, 0, r.handle, 2)
		if !f.Cancel(id) {
			t.Fatal("cancel of live transfer failed")
		}
		if f.Cancel(id) {
			t.Fatal("stale cancel reported true")
		}
		eng.Run(math.Inf(1))
		// The survivor had 10 s of shared rate ahead; with the first
		// cancelled at t=0 it runs at full rate the whole way.
		if len(r.at) != 1 || r.args[0] != 2 || !almost(r.at[0], 10) {
			t.Fatalf("deliveries %v args %v, want survivor alone at 10", r.at, r.args)
		}
	})
	t.Run("circuit-pending", func(t *testing.T) {
		eng := sim.New(1)
		f := newFabric(t, eng, Params{Ports: []float64{100, 100}, Circuit: true})
		var r recorder
		f.Start(0, 1, 1000, 0, r.handle, 1)
		id := f.Start(0, 1, 1000, 0, r.handle, 2) // queued
		if !f.Cancel(id) {
			t.Fatal("cancel of pending transfer failed")
		}
		eng.Run(math.Inf(1))
		if len(r.at) != 1 || r.args[0] != 1 {
			t.Fatalf("deliveries %v, want only the first", r.args)
		}
		if f.InFlight() != 0 {
			t.Fatalf("in-flight = %d after drain", f.InFlight())
		}
	})
}

// TestMidFlightReshare: cancelling one of two sharing flows mid-flight
// settles the survivor's partial progress before speeding it up.
func TestMidFlightReshare(t *testing.T) {
	eng := sim.New(1)
	f := newFabric(t, eng, Params{Ports: []float64{100, 100, 100}})
	var r recorder
	id := f.Start(0, 1, 1000, 0, r.handle, 1)
	f.Start(0, 2, 1000, 0, r.handle, 2)
	// At t=4 (both at 50 B/s, 200 B in), cancel the first: survivor has
	// 800 left at 100 B/s → delivers at 4 + 8 = 12.
	eng.Schedule(4, -1, func(now float64) { f.Cancel(id) })
	eng.Run(math.Inf(1))
	if len(r.at) != 1 || !almost(r.at[0], 12) {
		t.Fatalf("survivor delivered at %v, want 12", r.at)
	}
}

// TestDeterminism runs an irregular workload twice and requires
// identical delivery schedules — the -count=2 contract.
func TestDeterminism(t *testing.T) {
	run := func() ([]float64, []uint64) {
		eng := sim.New(9)
		f := newFabric(t, eng, Params{Ports: []float64{100, 70, 130, 100}, PathLatency: 1e-3})
		var r recorder
		arg := uint64(0)
		for i := 0; i < 40; i++ {
			i := i
			eng.Schedule(float64(i)*0.7, 0, func(now float64) {
				arg++
				f.Start(i%4, (i+1+i%3)%4, float64(500+i*37), 0, r.handle, arg)
			})
		}
		eng.Run(math.Inf(1))
		return r.at, r.args
	}
	at1, args1 := run()
	at2, args2 := run()
	if len(at1) != 40 || len(at1) != len(at2) {
		t.Fatalf("delivery counts: %d vs %d", len(at1), len(at2))
	}
	for i := range at1 {
		if at1[i] != at2[i] || args1[i] != args2[i] {
			t.Fatalf("runs diverged at delivery %d: (%v,%d) vs (%v,%d)",
				i, at1[i], args1[i], at2[i], args2[i])
		}
	}
}

// TestSteadyStateAllocations pins the hot path: once the slab, the
// id slices, and the calendar are warm, starting and delivering
// transfers does not allocate.
func TestSteadyStateAllocations(t *testing.T) {
	for _, circuit := range []bool{false, true} {
		name := "packet"
		if circuit {
			name = "circuit"
		}
		t.Run(name, func(t *testing.T) {
			eng := sim.New(1)
			f := newFabric(t, eng, Params{
				Ports: []float64{100, 100, 100, 100}, Circuit: circuit, PathLatency: 1e-4,
			})
			sink := 0
			h := func(now float64, arg uint64) { sink++ }
			// Warm every pool: overlapping transfers from all endpoints.
			warm := func() {
				for i := 0; i < 16; i++ {
					f.Start(i%4, (i+1)%4, float64(100+i), 0, h, uint64(i))
				}
				eng.Run(math.Inf(1))
			}
			warm()
			allocs := testing.AllocsPerRun(10, warm)
			if allocs > 0 {
				t.Errorf("%s steady state allocates %.1f per wave, want 0", name, allocs)
			}
		})
	}
}

// TestSnapshotRestoreReplay pins the fabric half of the simulation
// fork: a snapshot taken with flows mid-flight (and contending, so
// shares are non-trivial) must replay the exact delivery schedule when
// the paired engine snapshot is restored — repeatedly, because the
// snapshot is immutable.
func TestSnapshotRestoreReplay(t *testing.T) {
	eng := sim.New(7)
	f := newFabric(t, eng, Params{Ports: []float64{100, 100, 100}, PathLatency: 1e-6})
	var rec recorder
	// Two flows share egress port 2; a third joins after the snapshot.
	f.Start(0, 2, 1e6, 0, rec.handle, 1)
	f.Start(1, 2, 2e6, 0, rec.handle, 2)
	eng.RunBefore(5e3) // advance partway: both flows still in flight
	if len(rec.at) != 0 {
		t.Fatalf("flows finished before the snapshot; test is vacuous")
	}

	esnap := eng.Snapshot()
	fsnap := f.Snapshot()
	f.Start(0, 1, 5e5, 0, rec.handle, 3)
	eng.Run(math.Inf(1))
	wantAt := append([]float64(nil), rec.at...)
	wantArgs := append([]uint64(nil), rec.args...)

	for i := 0; i < 2; i++ {
		eng.Restore(esnap)
		f.Restore(fsnap)
		rec.at, rec.args = nil, nil
		f.Start(0, 1, 5e5, 0, rec.handle, 3)
		eng.Run(math.Inf(1))
		if len(rec.at) != len(wantAt) {
			t.Fatalf("replay %d delivered %d flows, want %d", i, len(rec.at), len(wantAt))
		}
		for j := range wantAt {
			if rec.at[j] != wantAt[j] || rec.args[j] != wantArgs[j] {
				t.Fatalf("replay %d delivery %d = (%v, %d), want (%v, %d)",
					i, j, rec.at[j], rec.args[j], wantAt[j], wantArgs[j])
			}
		}
	}
}
