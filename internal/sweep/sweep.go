// Package sweep runs embarrassingly-parallel design-space explorations
// over a goroutine worker pool while keeping results byte-for-byte
// reproducible: results come back in input order regardless of worker
// count or scheduling, and anything stochastic derives its seed from the
// point's index (via mathx.DeriveSeed), never from which worker ran it.
//
// It is the concurrency substrate under the Figure 3 studies, the
// serving-study grid, litegpu.Sweep, and the capacity planner.
package sweep

import (
	"context"
	"runtime"
	"sync"
)

// Run evaluates fn over every point using a worker pool sized by
// GOMAXPROCS. See RunN.
func Run[P, R any](ctx context.Context, points []P, fn func(ctx context.Context, idx int, p P) (R, error)) ([]R, error) {
	return RunN(ctx, 0, points, fn)
}

// RunN evaluates fn(ctx, i, points[i]) for every point over a pool of
// `workers` goroutines (workers <= 0 means GOMAXPROCS) and returns the
// results in input order.
//
// Error handling is deterministic: if any evaluations fail, RunN returns
// the error of the lowest-indexed failing point — the same error a
// sequential loop would hit first — alongside a nil result slice.
// Remaining points are cancelled via the derived context once any
// failure is observed, so fn implementations that honor ctx stop early;
// a point already claimed by a worker always runs to completion.
func RunN[P, R any](ctx context.Context, workers int, points []P, fn func(ctx context.Context, idx int, p P) (R, error)) ([]R, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return []R{}, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(points) {
		workers = len(points)
	}

	results := make([]R, len(points))
	errs := make([]error, len(points))
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		next int
	)
	// claim hands out point indices strictly in order, so the set of
	// unclaimed points is always a suffix — the invariant behind the
	// deterministic lowest-index error below.
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= len(points) {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i, ok := claim()
				if !ok {
					return
				}
				r, err := fn(ctx, i, points[i])
				if err != nil {
					errs[i] = err
					cancel()
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()

	// Every claimed point ran to completion, and claims are in index
	// order; so the lowest-indexed recorded error is exactly the first
	// error a sequential loop over points would have returned.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	mu.Lock()
	done := next >= len(points)
	mu.Unlock()
	if !done {
		// Workers stopped early without any point failing: the parent
		// context was cancelled.
		return nil, context.Cause(ctx)
	}
	return results, nil
}
