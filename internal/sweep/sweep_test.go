package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunOrdersResults(t *testing.T) {
	points := make([]int, 100)
	for i := range points {
		points[i] = i
	}
	got, err := Run(context.Background(), points, func(_ context.Context, idx int, p int) (int, error) {
		return p * p, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(points) {
		t.Fatalf("len = %d, want %d", len(got), len(points))
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestRunMatchesSequential(t *testing.T) {
	points := make([]int, 37)
	for i := range points {
		points[i] = 3 * i
	}
	fn := func(_ context.Context, idx int, p int) (string, error) {
		return fmt.Sprintf("%d:%d", idx, p), nil
	}
	seq, err := RunN(context.Background(), 1, points, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16, 100} {
		par, err := RunN(context.Background(), workers, points, fn)
		if err != nil {
			t.Fatal(err)
		}
		for i := range seq {
			if seq[i] != par[i] {
				t.Fatalf("workers=%d: result %d = %q, sequential %q", workers, i, par[i], seq[i])
			}
		}
	}
}

func TestRunFirstErrorWins(t *testing.T) {
	// Points 3 and 7 fail; the lowest-indexed failure must be reported
	// regardless of worker interleaving.
	points := make([]int, 20)
	errAt := func(i int) error { return fmt.Errorf("point %d failed", i) }
	for trial := 0; trial < 20; trial++ {
		_, err := RunN(context.Background(), 8, points, func(_ context.Context, idx int, _ int) (int, error) {
			if idx == 3 || idx == 7 {
				return 0, errAt(idx)
			}
			return idx, nil
		})
		if err == nil {
			t.Fatal("expected an error")
		}
		if got := err.Error(); got != "point 3 failed" {
			t.Fatalf("trial %d: err = %q, want the lowest-indexed failure", trial, got)
		}
	}
}

func TestRunErrorCancelsRemaining(t *testing.T) {
	var ran atomic.Int64
	points := make([]int, 1000)
	_, err := RunN(context.Background(), 2, points, func(ctx context.Context, idx int, _ int) (int, error) {
		ran.Add(1)
		if idx == 0 {
			return 0, errors.New("boom")
		}
		return idx, nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if n := ran.Load(); n == 1000 {
		t.Error("cancellation did not stop remaining points")
	}
}

func TestRunEmptyAndNilContext(t *testing.T) {
	got, err := RunN(nil, 4, nil, func(_ context.Context, _ int, _ struct{}) (int, error) {
		t.Fatal("fn called for empty points")
		return 0, nil
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("empty run: %v, %v", got, err)
	}
}

func TestRunParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	points := make([]int, 500)
	started := make(chan struct{}, 1)
	_, err := RunN(ctx, 2, points, func(_ context.Context, idx int, _ int) (int, error) {
		select {
		case started <- struct{}{}:
			cancel()
		default:
		}
		time.Sleep(time.Millisecond)
		return idx, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, []int{1, 2, 3}, func(_ context.Context, _ int, p int) (int, error) {
		t.Fatal("fn ran under a cancelled context")
		return p, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
