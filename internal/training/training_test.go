package training

import (
	"math"
	"testing"

	"litegpu/internal/hw"
	"litegpu/internal/model"
)

func h100Cfg() Config {
	return Config{
		GPU:         hw.H100(),
		Model:       model.Llama3_405B(),
		TP:          8,
		DP:          2048, // 16 384 GPUs — the paper's Llama 3.1 405B scale
		MicroBatch:  1,
		SeqLen:      4096,
		Alpha:       1e-6,
		GradOverlap: 0.9,
		TPOverlap:   0.5,
	}
}

func liteCfg() Config {
	c := h100Cfg()
	c.GPU = hw.Lite()
	c.TP = 32 // 65 536 GPUs
	return c
}

func TestValidate(t *testing.T) {
	if err := h100Cfg().Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.GPU = hw.GPU{} },
		func(c *Config) { c.Model = model.Transformer{} },
		func(c *Config) { c.TP = 0 },
		func(c *Config) { c.DP = 0 },
		func(c *Config) { c.MicroBatch = 0 },
		func(c *Config) { c.SeqLen = 0 },
		func(c *Config) { c.GradOverlap = 1.5 },
		func(c *Config) { c.TPOverlap = -0.1 },
	}
	for i, mutate := range bad {
		c := h100Cfg()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestStepSanity(t *testing.T) {
	e, err := Step(h100Cfg())
	if err != nil {
		t.Fatal(err)
	}
	if e.StepTime <= 0 {
		t.Fatal("non-positive step time")
	}
	if e.StepTime != e.ComputeTime+e.TPTime+e.GradTime {
		t.Error("step time != sum of parts")
	}
	// MFU in the plausible band for large-scale FP8 training.
	if e.MFU < 0.25 || e.MFU > 0.95 {
		t.Errorf("MFU = %v, want 25–95%%", e.MFU)
	}
	if e.String() == "" {
		t.Error("empty estimate string")
	}
}

func TestStepRejectsIllegalTP(t *testing.T) {
	c := h100Cfg()
	c.TP = 5
	if _, err := Step(c); err == nil {
		t.Error("TP=5 accepted for 128 heads")
	}
	var zero Config
	if _, err := Step(zero); err == nil {
		t.Error("zero config accepted")
	}
}

func TestBackwardCostsTwiceForward(t *testing.T) {
	// With TP=1 and DP=1 there are no collectives: the step is pure
	// compute, and fwd+bwd = 3× forward FLOPs ⇒ step ≈ 3× a
	// forward-dominated prefill at the same shape.
	c := Config{
		GPU: hw.H100(), Model: model.Llama3_8B(),
		TP: 1, DP: 1, MicroBatch: 1, SeqLen: 2048,
	}
	e, err := Step(c)
	if err != nil {
		t.Fatal(err)
	}
	if e.TPTime != 0 || e.GradTime != 0 {
		t.Error("collective time without parallelism")
	}
	// Ideal matmul time: 3× the classic 2·(non-embedding params) per
	// token, at peak FLOPS.
	ideal := 3 * float64(model.Llama3_8B().FLOPsPerToken()) * 2048 / 2e15
	ratio := float64(e.StepTime) / ideal
	if ratio < 1.0 || ratio > 1.5 {
		t.Errorf("step/ideal ratio = %v, want 1–1.5 (memory + attention overheads)", ratio)
	}
}

func TestLiteTrainingNearParity(t *testing.T) {
	// The extension's headline: replacing 16k H100s with 64k Lite-GPUs
	// costs some collective time but stays within ~25% per-SM throughput.
	h, err := Step(h100Cfg())
	if err != nil {
		t.Fatal(err)
	}
	l, err := Step(liteCfg())
	if err != nil {
		t.Fatal(err)
	}
	ratio := l.PerSM / h.PerSM
	if ratio >= 1.0 {
		t.Errorf("Lite training per-SM ratio = %v; collectives should cost something", ratio)
	}
	if ratio < 0.70 {
		t.Errorf("Lite training per-SM ratio = %v; degradation implausibly large", ratio)
	}
}

func TestGradOverlapMatters(t *testing.T) {
	exposed := h100Cfg()
	exposed.GradOverlap = 0
	hidden := h100Cfg()
	hidden.GradOverlap = 1
	a, err := Step(exposed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Step(hidden)
	if err != nil {
		t.Fatal(err)
	}
	if a.StepTime <= b.StepTime {
		t.Error("exposing the gradient all-reduce should cost step time")
	}
	if b.GradTime != 0 {
		t.Error("fully hidden gradient all-reduce should cost nothing")
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := h100Cfg()
	c.Prec = model.Precision{}
	c.GradBytes = 0
	e, err := Step(c)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(float64(e.StepTime)) || e.StepTime <= 0 {
		t.Errorf("defaults not applied: %v", e.StepTime)
	}
}

func TestThroughputScalesWithDP(t *testing.T) {
	small := h100Cfg()
	small.DP = 256
	big := h100Cfg()
	big.DP = 512
	a, err := Step(small)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Step(big)
	if err != nil {
		t.Fatal(err)
	}
	// Doubling DP nearly doubles throughput (the gradient all-reduce
	// grows only in its (n−1)/n factor).
	if r := b.TokensPerSec / a.TokensPerSec; r < 1.8 || r > 2.05 {
		t.Errorf("DP doubling throughput ratio = %v, want ≈2", r)
	}
}
