// Package training extends the paper's inference case study to the
// training scale it gestures at ("AI clusters come at different scales
// for training and inference, with training clusters being
// orders-of-magnitude larger, e.g., 16,000 vs 8 GPUs for Llama 3.1
// 405B"): a roofline model of one data-parallel × tensor-parallel
// training step, with the gradient all-reduce partially overlapped with
// the backward pass.
//
// The question it answers: when every H100 in a 16k-GPU training
// cluster becomes four Lite-GPUs (64k GPUs), how much step time do the
// extra tensor-parallel collectives and the wider data-parallel
// all-reduce cost, and what does MFU look like?
package training

import (
	"fmt"

	"litegpu/internal/collective"
	"litegpu/internal/hw"
	"litegpu/internal/model"
	"litegpu/internal/roofline"
	"litegpu/internal/units"
)

// Config describes a training deployment.
type Config struct {
	GPU   hw.GPU
	Model model.Transformer

	// TP is the tensor-parallel degree (GPUs per model replica shard
	// group); DP is the data-parallel replica count. Total GPUs = TP·DP.
	TP, DP int

	// MicroBatch is sequences per replica per step; SeqLen is tokens per
	// sequence.
	MicroBatch int
	SeqLen     int

	// Prec sets element sizes; gradients travel at GradBytes per
	// parameter (2 for BF16/FP16 gradients, the common choice even with
	// FP8 weights).
	Prec      model.Precision
	GradBytes int

	// Alpha is the per-step collective latency.
	Alpha units.Seconds

	// GradOverlap is the fraction of the data-parallel gradient
	// all-reduce hidden under the backward pass (bucketed overlap;
	// 0 = fully exposed, 1 = fully hidden).
	GradOverlap float64

	// TPOverlap is the fraction of tensor-parallel collective time
	// hidden under compute (sequence-parallel overlap and async
	// collectives in modern stacks hide roughly half; the studies use
	// 0.5). Zero means fully exposed.
	TPOverlap float64
}

// Validate reports the first configuration problem, or nil.
func (c Config) Validate() error {
	if err := c.GPU.Validate(); err != nil {
		return err
	}
	if err := c.Model.Validate(); err != nil {
		return err
	}
	switch {
	case c.TP <= 0 || c.DP <= 0:
		return fmt.Errorf("training: TP and DP must be positive")
	case c.MicroBatch <= 0 || c.SeqLen <= 0:
		return fmt.Errorf("training: batch and sequence length must be positive")
	case c.GradOverlap < 0 || c.GradOverlap > 1:
		return fmt.Errorf("training: GradOverlap must be in [0,1]")
	case c.TPOverlap < 0 || c.TPOverlap > 1:
		return fmt.Errorf("training: TPOverlap must be in [0,1]")
	}
	return nil
}

// Estimate is the modeled cost of one training step.
type Estimate struct {
	Config Config

	// StepTime is the end-to-end time of one optimizer step.
	StepTime units.Seconds
	// ComputeTime is the forward+backward engine time.
	ComputeTime units.Seconds
	// TPTime is the tensor-parallel collective time inside the step.
	TPTime units.Seconds
	// GradTime is the exposed (non-overlapped) data-parallel gradient
	// all-reduce time.
	GradTime units.Seconds

	// TokensPerSec is global training throughput.
	TokensPerSec float64
	// PerSM is TokensPerSec per SM — the paper's efficiency metric
	// carried over to training.
	PerSM float64
	// MFU is model FLOPs utilization: ideal FLOPs (6·params·tokens)
	// over achieved FLOPs.
	MFU float64
}

// Step models one training step. The backward pass costs twice the
// forward pass (standard two-matmul gradient accounting), and each
// layer's two tensor-parallel all-reduces run in both directions.
func Step(c Config) (Estimate, error) {
	if c.GradBytes == 0 {
		c.GradBytes = 2
	}
	if c.Prec == (model.Precision{}) {
		c.Prec = model.FP8()
	}
	if err := c.Validate(); err != nil {
		return Estimate{}, err
	}
	shard := model.Shard{
		TP: c.TP, Batch: c.MicroBatch,
		SeqIn: c.SeqLen, KVLen: c.SeqLen,
		Causal: true, Prec: c.Prec, IdealKV: true,
	}
	if err := shard.Validate(c.Model); err != nil {
		return Estimate{}, err
	}
	stages, err := c.Model.LayerStages(shard)
	if err != nil {
		return Estimate{}, err
	}
	device := roofline.Device{Compute: c.GPU.FLOPS, MemBW: c.GPU.MemBW, NetBW: c.GPU.NetBW}
	link := collective.Link{Bandwidth: c.GPU.NetBW, Latency: c.Alpha}

	var compute, tpTime units.Seconds
	layers := float64(c.Model.Layers)
	for _, st := range stages {
		// Forward engine time (overlapped compute/memory).
		fwd := roofline.Run(roofline.Stage{FLOPs: st.FLOPs, MemBytes: st.MemBytes}, device)
		// Backward: 2× the matmul work and roughly 2× the traffic.
		bwd := roofline.Run(roofline.Stage{FLOPs: 2 * st.FLOPs, MemBytes: 2 * st.MemBytes}, device)
		compute += units.Seconds(layers * float64(fwd.Total+bwd.Total))
		if st.AllReduce > 0 && c.TP > 1 {
			_, t := collective.Best(collective.AllReduce, c.TP, st.AllReduce, link)
			// Two directions (forward activations, backward grads),
			// partially hidden under compute.
			tpTime += units.Seconds(layers * 2 * float64(t) * (1 - c.TPOverlap))
		}
	}
	head := c.Model.LMHead(shard)
	hr := roofline.Run(roofline.Stage{FLOPs: 3 * head.FLOPs, MemBytes: 2 * head.MemBytes}, device)
	compute += hr.Total

	// Data-parallel gradient all-reduce over per-GPU shard gradients.
	var gradExposed units.Seconds
	if c.DP > 1 {
		shardParams := float64(c.Model.ShardWeightBytes(shard)) / float64(c.Prec.Weight)
		payload := units.Bytes(shardParams * float64(c.GradBytes))
		_, t := collective.Best(collective.AllReduce, c.DP, payload, link)
		gradExposed = units.Seconds(float64(t) * (1 - c.GradOverlap))
	}

	e := Estimate{
		Config:      c,
		ComputeTime: compute,
		TPTime:      tpTime,
		GradTime:    gradExposed,
		StepTime:    compute + tpTime + gradExposed,
	}
	tokens := float64(c.DP) * float64(c.MicroBatch) * float64(c.SeqLen)
	e.TokensPerSec = tokens * units.PerSecond(e.StepTime)
	totalSMs := float64(c.TP*c.DP) * float64(c.GPU.SMs)
	if totalSMs > 0 {
		e.PerSM = e.TokensPerSec / totalSMs
	}
	ideal := 6 * c.Model.Params() * tokens
	achieved := float64(c.GPU.FLOPS) * float64(c.TP*c.DP) * float64(e.StepTime)
	if achieved > 0 {
		e.MFU = ideal / achieved
	}
	return e, nil
}

// String renders the estimate.
func (e Estimate) String() string {
	return fmt.Sprintf("%s %s TP=%d DP=%d: step %v (compute %v, TP %v, grad %v), %.0f tok/s, MFU %.1f%%",
		e.Config.GPU.Name, e.Config.Model.Name, e.Config.TP, e.Config.DP,
		e.StepTime, e.ComputeTime, e.TPTime, e.GradTime, e.TokensPerSec, e.MFU*100)
}
