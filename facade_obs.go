package litegpu

import "litegpu/internal/obs"

// Observability, re-exported from internal/obs.
//
// An Observer attaches to a cluster simulation through
// ServeClusterConfig.Observer and records the run's telemetry without
// perturbing it: sampled per-request span timelines (exportable as
// Chrome trace_event JSON, loadable in Perfetto), fixed-interval
// time-series probes (exportable as CSV or JSON), and instance-level
// failure/autoscale events. Attaching an observer never changes
// simulation results — the golden corpora pass byte-identical with one
// live — and a nil Observer costs nothing on the hot path.
type (
	// Observer records one run's telemetry; build one with NewObserver
	// and attach it via ServeClusterConfig.Observer. Not safe for
	// concurrent use: attaching an observer forces the (byte-identical)
	// sequential cluster path.
	Observer = obs.Recorder
	// ObserverOptions configures an Observer: reservoir seed and size,
	// probe interval, and an optional completion heartbeat callback.
	ObserverOptions = obs.Options
	// ObserverEvent is one recorded timeline entry.
	ObserverEvent = obs.Event
	// ObserverKind enumerates the recorded event kinds.
	ObserverKind = obs.Kind
	// ObserverProbeSample is one fixed-interval time-series sample.
	ObserverProbeSample = obs.ProbeSample
	// PlanTrace is the capacity planner's decision record: attach one
	// via CapacityRequest.Trace to capture every candidate the search
	// considered, its sizing ladder, and why it won or lost. Render
	// writes the human-readable explanation; WriteJSON the machine-
	// readable one.
	PlanTrace = obs.PlanTrace
	// PlanCandidate is one (scheduler, fabric, kv, admission)
	// combination's decision record inside a PlanTrace.
	PlanCandidate = obs.PlanCandidate
	// PlanRung is one sizing step of a candidate's search ladder.
	PlanRung = obs.PlanRung
)

// NewObserver builds an Observer. The zero ObserverOptions value is
// valid: default reservoir size, probes off, no heartbeat.
func NewObserver(o ObserverOptions) *Observer { return obs.New(o) }
