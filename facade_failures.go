package litegpu

import (
	"fmt"

	"litegpu/internal/inference"
	"litegpu/internal/serve"
)

// Cluster-aware serving, re-exported from internal/serve.
type (
	// ServeClusterConfig describes a multi-pool serving simulation with
	// routing and failure injection. Setting Shards > 1 runs the pools
	// on a parallel worker pool with byte-identical results (see
	// serve.ClusterConfig.Shards).
	ServeClusterConfig = serve.ClusterConfig
	// ServePool is one homogeneous deployment inside a cluster.
	ServePool = serve.Pool
	// ServeClusterMetrics is a cluster run's outcome (per-pool + total).
	ServeClusterMetrics = serve.ClusterMetrics
	// ServeFailureConfig drives failure injection (rates from
	// internal/failure, hot spares, requeue/drop policy, optional
	// accelerated failure clock).
	ServeFailureConfig = serve.FailureConfig
	// ServeRouterPolicy selects the arrival router.
	ServeRouterPolicy = serve.RouterPolicy
)

// Router and in-flight policy choices.
const (
	RoundRobin        = serve.RoundRobin
	JoinShortestQueue = serve.JoinShortestQueue
	RequeueOnFailure  = serve.RequeueOnFailure
	DropOnFailure     = serve.DropOnFailure
)

// ServeCluster simulates one or more serving pools — possibly of
// different GPU types — serving a single request stream behind a router,
// with optional GPU failure injection and hot spares. It is the
// cluster-aware superset of Serve.
func ServeCluster(cc ServeClusterConfig, reqs []Request, horizon Seconds) (ServeClusterMetrics, error) {
	return serve.RunCluster(cc, reqs, horizon)
}

// ServeClusterFrom is ServeCluster over a lazy request source
// (typically a Workload.Stream): the trace is never materialized, so
// memory stays proportional to the in-flight working set regardless of
// how many requests the horizon spans.
func ServeClusterFrom(cc ServeClusterConfig, src RequestSource, horizon Seconds) (ServeClusterMetrics, error) {
	return serve.RunClusterFrom(cc, src, horizon)
}

// FailureServingSpec parameterizes ServeWithFailures. Zero-value fields
// take the defaults noted on each.
type FailureServingSpec struct {
	// BigGPU is the incumbent package (default H100).
	BigGPU GPU
	// Split is how many Lite-GPUs replace one big GPU (default 4).
	Split int
	// Model defaults to Llama3-8B, which fits a single quarter-H100 —
	// the regime where the blast-radius contrast is sharpest, because
	// the Lite deployment can shard into Split× more instances.
	Model Transformer
	// Rate is the arrival rate in req/s (default 4) and Horizon the
	// arrival window (default 300 s; the simulation runs with no drain
	// so capacity loss cannot quietly catch up).
	Rate    float64
	Horizon Seconds

	// RefAFR overrides the reference-package annualized failure rate
	// (default failure.DefaultParams().RefAFR = 5%; the paper discusses
	// production fleets up to ~9%).
	RefAFR float64
	// Spares is the hot-spare budget in big-GPU silicon units (default
	// 1): the big deployment keeps Spares hot spare packages, the Lite
	// deployment keeps Spares×Split — identical spare silicon (and so
	// roughly identical spare cost), which is the paper's equal-cost
	// sparing comparison: small units make each spare proportionally
	// cheaper, so the same budget buys Split× more coverage.
	Spares int
	// TimeScale accelerates the failure clock (default 1 = real time;
	// at paper-calibrated AFRs a minutes-long window essentially never
	// sees a failure, so stress studies pass ~1e6).
	TimeScale float64
	// Seed drives both the workload and the failure processes.
	Seed uint64
}

func (s FailureServingSpec) withDefaults() FailureServingSpec {
	if s.BigGPU == (GPU{}) {
		s.BigGPU = H100()
	}
	if s.Split < 2 {
		s.Split = 4
	}
	if s.Model.Name == "" {
		m, _ := ModelByName("Llama3-8B")
		s.Model = m
	}
	if s.Rate <= 0 {
		s.Rate = 4
	}
	if s.Horizon <= 0 {
		s.Horizon = 300
	}
	if s.Spares <= 0 {
		s.Spares = 1
	}
	return s
}

// FailureServingSide is one deployment's outcome in the comparison.
type FailureServingSide struct {
	Config  ServeConfig
	Metrics ServeMetrics
}

// FailureServingResult is the paper's serving-level fault-tolerance
// comparison: the Metrics carry BlastRadius (capacity fraction one
// failure removes), Availability, Goodput, and failure-event counts for
// both deployments over the identical trace.
type FailureServingResult struct {
	Big  FailureServingSide
	Lite FailureServingSide
}

// ServeWithFailures reproduces the paper's blast-radius argument at the
// serving level: a big-GPU deployment and its Lite-GPU replacement —
// equal total silicon, serving the identical request stream — run with
// GPU failure injection. Because each Lite instance needs only a
// fraction of the silicon, the Lite deployment shards into Split× more
// instances, so one failure removes a Split× smaller slice of capacity
// (Metrics.BlastRadius), and each hot spare is a Split×-cheaper unit.
//
// The two deployments are sized for equal aggregate throughput: the big
// side runs one prefill and one decode instance at the smallest tensor-
// parallel degree that fits the model; the Lite side spends the same
// silicon on Split× more instances.
func ServeWithFailures(spec FailureServingSpec) (FailureServingResult, error) {
	spec = spec.withDefaults()
	opts := DefaultOptions()

	lite := spec.BigGPU.Scale(1 / float64(spec.Split)).
		WithName(fmt.Sprintf("Lite(%s/%d)", spec.BigGPU.Name, spec.Split))

	bigCfg, err := phaseSplitConfig(spec.BigGPU, spec.Model, opts, 1, 1)
	if err != nil {
		return FailureServingResult{}, fmt.Errorf("litegpu: big deployment: %w", err)
	}
	// Equal silicon: every big-GPU unit becomes Split Lite units, spread
	// over as many instances as the Lite TP degree allows.
	liteCfg, err := phaseSplitConfig(lite, spec.Model, opts,
		spec.Split*bigCfg.PrefillGPUs, spec.Split*bigCfg.DecodeGPUs)
	if err != nil {
		return FailureServingResult{}, fmt.Errorf("litegpu: lite deployment: %w", err)
	}

	gen := CodingWorkload(spec.Rate, spec.Seed)
	reqs, err := gen.Generate(spec.Horizon)
	if err != nil {
		return FailureServingResult{}, err
	}

	fp := DefaultFailureParams(spec.RefAFR)
	run := func(cfg ServeConfig, spares int) (ServeMetrics, error) {
		return serve.RunWithFailures(cfg, ServeFailureConfig{
			Enabled:   true,
			Params:    fp,
			Spares:    spares,
			TimeScale: spec.TimeScale,
			Seed:      spec.Seed,
		}, reqs, spec.Horizon)
	}
	var res FailureServingResult
	res.Big.Config = bigCfg
	if res.Big.Metrics, err = run(bigCfg, spec.Spares); err != nil {
		return FailureServingResult{}, err
	}
	res.Lite.Config = liteCfg
	if res.Lite.Metrics, err = run(liteCfg, spec.Spares*spec.Split); err != nil {
		return FailureServingResult{}, err
	}
	return res, nil
}

// phaseSplitConfig builds a phase-split deployment at the smallest
// tensor-parallel degree the model fits, sharding the given per-phase
// GPU budget into as many instances as the degree allows. A budget of
// (1, 1) means "one instance per phase" — the big-GPU baseline — while
// a Lite replacement passes the big deployment's silicon re-expressed
// in Lite units.
func phaseSplitConfig(gpu GPU, m Transformer, opts Options, prefillBudget, decodeBudget int) (ServeConfig, error) {
	pTP, err := inference.MinFeasibleTP(gpu, m, Prefill, opts)
	if err != nil {
		return ServeConfig{}, err
	}
	dTP, err := inference.MinFeasibleTP(gpu, m, Decode, opts)
	if err != nil {
		return ServeConfig{}, err
	}
	return ServeConfig{
		GPU: gpu, Model: m, Opts: opts,
		PrefillInstances: max(1, prefillBudget/pTP), PrefillGPUs: pTP,
		DecodeInstances: max(1, decodeBudget/dTP), DecodeGPUs: dTP,
		MaxPrefillBatch: 4, MaxDecodeBatch: 64,
	}, nil
}
