module litegpu

go 1.22
