package litegpu

import (
	"litegpu/internal/experiments"
	"litegpu/internal/failure"
	"litegpu/internal/power"
)

// YieldRow is one die-size point of the yield/cost study.
type YieldRow = experiments.YieldRow

// YieldStudy sweeps die-size fractions of the H100 die and returns the
// yield/cost trajectory (Section 2 of the paper; the 0.25 row carries the
// ~1.8× yield and ~50% silicon-cost claims).
func YieldStudy() []YieldRow { return experiments.YieldStudy() }

// ShorelineRow is one split-factor point of the shoreline study.
type ShorelineRow = experiments.ShorelineRow

// ShorelineStudy sweeps split factors at constant total silicon and
// returns perimeter and bandwidth-to-compute gains.
func ShorelineStudy() []ShorelineRow { return experiments.ShorelineStudy() }

// Availability holds the reliability verdict for one deployment.
type Availability struct {
	// Analytic is the closed-form k-out-of-n availability.
	Analytic float64
	// Simulated is the Monte Carlo estimate.
	Simulated float64
	// FailuresPerMission is the mean unit-failure count per mission.
	FailuresPerMission float64
	// BlastRadius is the compute fraction one failure removes.
	BlastRadius float64
}

// SimulateAvailability evaluates a model instance of instanceGPUs units
// of the given GPU with the given hot-spare count, over a mission of the
// given number of years, using `trials` Monte Carlo runs at the seed.
func SimulateAvailability(gpu GPU, instanceGPUs, spares int, years float64, trials int, seed uint64) Availability {
	p := failure.DefaultParams()
	spec := failure.Spec{GPU: gpu, InstanceGPUs: instanceGPUs, Spares: spares}
	res := failure.Simulate(spec, p, Seconds(years)*failure.Year, trials, seed)
	return Availability{
		Analytic:           failure.AnalyticAvailability(spec, p),
		Simulated:          res.Availability,
		FailuresPerMission: float64(res.Failures) / float64(trials),
		BlastRadius:        spec.HardwareBlastRadius(),
	}
}

// PowerComparison is the partial-load power verdict.
type PowerComparison = power.PartialLoad

// PowerAtLoad compares one parent GPU against its split-way Lite
// replacement at the given serving load fraction (Section 3's
// finer-granularity power management argument).
func PowerAtLoad(parent GPU, split int, load float64) PowerComparison {
	return power.Default().AtLoad(parent, split, load)
}

// GPUAnnualFailureRate returns the modeled annualized failure rate of
// one package of the given GPU.
func GPUAnnualFailureRate(gpu GPU) float64 {
	return failure.DefaultParams().AFR(gpu)
}
