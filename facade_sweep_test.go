package litegpu

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"litegpu/internal/units"
)

// smallSweepSpec keeps sweep tests fast: two GPU types, the smallest
// model, one workload family, two rates, a short horizon.
func smallSweepSpec() SweepSpec {
	m, _ := ModelByName("Llama3-8B")
	return SweepSpec{
		GPUs:      []GPU{H100(), Lite()},
		Models:    []Transformer{m},
		Workloads: []SweepWorkload{{Name: "coding", Make: CodingWorkload}},
		Rates:     []float64{0.5, 2.0},
		Horizon:   60,
		Drain:     60,
		Seed:      42,
	}
}

func TestSweepGridShapeAndOrder(t *testing.T) {
	cells, err := Sweep(context.Background(), smallSweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 2 GPUs × 1 model × 1 workload × 2 rates = 4", len(cells))
	}
	want := []struct {
		gpu  string
		rate float64
	}{
		{"H100", 0.5}, {"H100", 2.0}, {"Lite", 0.5}, {"Lite", 2.0},
	}
	for i, c := range cells {
		if c.GPU != want[i].gpu || c.Rate != want[i].rate {
			t.Errorf("cell %d = (%s, %.1f), want (%s, %.1f)", i, c.GPU, c.Rate, want[i].gpu, want[i].rate)
		}
		if c.Err != "" {
			t.Errorf("cell %d unexpectedly infeasible: %s", i, c.Err)
		}
		if c.Metrics.Arrived == 0 || c.Metrics.Completed == 0 {
			t.Errorf("cell %d served nothing", i)
		}
		if c.Config.PrefillGPUs < 1 || c.Config.DecodeGPUs < 1 {
			t.Errorf("cell %d not auto-sized: %+v", i, c.Config)
		}
	}
}

// TestSweepDeterministicAcrossWorkers is the reproducibility contract:
// the sweep grid must be byte-identical at GOMAXPROCS=1 and at full
// parallelism, because per-cell seeds derive from the cell index rather
// than from scheduling order.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	spec := smallSweepSpec()

	spec.Workers = 1
	seq, err := Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	spec.Workers = 0 // GOMAXPROCS-sized pool
	par, err := Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("sweep at full parallelism diverges from sequential sweep")
	}

	// Also pin the runtime itself to one proc, the literal GOMAXPROCS=1
	// configuration.
	old := runtime.GOMAXPROCS(1)
	single, err := Sweep(context.Background(), SweepSpec{
		GPUs: spec.GPUs, Models: spec.Models, Workloads: spec.Workloads,
		Rates: spec.Rates, Horizon: spec.Horizon, Drain: spec.Drain, Seed: spec.Seed,
	})
	runtime.GOMAXPROCS(old)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, single) {
		t.Error("sweep under GOMAXPROCS=1 diverges from worker-pinned sequential sweep")
	}
}

func TestSweepInfeasibleCellReported(t *testing.T) {
	tiny := Lite()
	tiny.Capacity = units.Bytes(2 * units.GB)
	tiny.MaxGPUs = 1 // Llama3-8B weights cannot fit 2 GB with no TP to shard across
	tiny.Name = "Lite-tiny"
	spec := smallSweepSpec()
	spec.GPUs = []GPU{tiny}
	spec.Rates = []float64{0.5}
	cells, err := Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("cells = %d, want 1", len(cells))
	}
	if cells[0].Err == "" {
		t.Error("infeasible cell carries no error")
	}
	if cells[0].Metrics.Arrived != 0 {
		t.Error("infeasible cell carries metrics")
	}
}

func TestSweepHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Sweep(ctx, smallSweepSpec()); err == nil {
		t.Error("cancelled sweep returned no error")
	}
}

func TestPlanCapacityFacade(t *testing.T) {
	m, _ := ModelByName("Llama3-8B")
	plan, err := PlanCapacity(H100(), m, CodingWorkload(0, 7), 4.0, CapacitySLO{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Metrics.TTFTAttainment < 0.99 || plan.Metrics.TBTAttainment < 0.99 {
		t.Errorf("plan misses SLO: %+v", plan.Metrics)
	}
	if plan.TotalGPUs < 2 {
		t.Errorf("TotalGPUs = %d, want at least one GPU per pool", plan.TotalGPUs)
	}
	if plan.Cost.CostPerMTokens <= 0 {
		t.Error("no $/Mtok readout")
	}
}

// TestSweepFailureAxis crosses the small grid with an accelerated
// failure mode and checks the axis is plumbed end to end: cell order
// gains the innermost failure coordinate, clean cells stay pristine,
// injected cells observe failures, and the grid remains byte-identical
// across worker counts.
func TestSweepFailureAxis(t *testing.T) {
	spec := smallSweepSpec()
	spec.Rates = []float64{2.0}
	spec.FailureModes = []SweepFailureMode{
		{Name: "none"},
		{Name: "stress", Failures: ServeFailureConfig{Enabled: true, Spares: 1, TimeScale: 8e6}},
	}
	cells, err := Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 2 GPUs × 1 model × 1 workload × 1 rate × 2 modes = 4", len(cells))
	}
	sawFailure := false
	for i, c := range cells {
		wantMode := spec.FailureModes[i%2].Name
		if c.Failure != wantMode {
			t.Errorf("cell %d failure mode %q, want %q (failure axis must be innermost)", i, c.Failure, wantMode)
		}
		switch c.Failure {
		case "none":
			if c.Metrics.FailureEvents != 0 || c.Metrics.Availability != 1 {
				t.Errorf("clean cell %d reports failure activity: %+v", i, c.Metrics)
			}
		default:
			if c.Metrics.FailureEvents > 0 {
				sawFailure = true
			}
			if c.Metrics.Availability >= 1 && c.Metrics.FailureEvents > 0 {
				t.Errorf("cell %d saw %d failures but availability %v", i, c.Metrics.FailureEvents, c.Metrics.Availability)
			}
		}
		// Clean and stressed cells at one grid point share the trace.
		if i%2 == 1 && cells[i-1].Metrics.Arrived != c.Metrics.Arrived {
			t.Errorf("cell %d arrivals %d differ from clean twin %d", i, c.Metrics.Arrived, cells[i-1].Metrics.Arrived)
		}
	}
	if !sawFailure {
		t.Error("no stressed cell observed a failure; the accelerated clock is miscalibrated")
	}

	spec.Workers = 1
	seq, err := Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cells, seq) {
		t.Error("failure-axis sweep diverges between parallel and sequential runs")
	}
}

// TestSweepSchedulerAxis pins the scheduling-policy dimension: cells
// cross schedulers inside each rate, every policy faces the identical
// trace (same Arrived counts), and colocated cells carry the derived
// colocated shape.
func TestSweepSchedulerAxis(t *testing.T) {
	spec := smallSweepSpec()
	spec.GPUs = []GPU{H100()}
	spec.Rates = []float64{1.0}
	spec.Schedulers = SchedulerPolicies()
	cells, err := Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("cells = %d, want 1 GPU × 1 model × 1 workload × 1 rate × 3 schedulers", len(cells))
	}
	for i, pol := range SchedulerPolicies() {
		c := cells[i]
		if c.Scheduler != pol.String() {
			t.Errorf("cell %d scheduler = %q, want %q", i, c.Scheduler, pol)
		}
		if c.Err != "" {
			t.Fatalf("cell %d infeasible: %s", i, c.Err)
		}
		if c.Metrics.Arrived != cells[0].Metrics.Arrived {
			t.Errorf("cell %d saw %d arrivals, want the identical trace (%d) across schedulers",
				i, c.Metrics.Arrived, cells[0].Metrics.Arrived)
		}
		if c.Metrics.Completed == 0 {
			t.Errorf("cell %d (%s) served nothing", i, c.Scheduler)
		}
		if pol.Colocated() {
			if n, g := c.Config.ColocatedShape(); n < 1 || g < 1 {
				t.Errorf("cell %d colocated shape %d×%d not derived", i, n, g)
			}
		}
	}
}

// TestSweepFabricAxis pins the network dimension: cells cross fabrics
// innermost, every fabric faces the identical trace, the off cell
// reports no transfers, and a deployment whose instances span
// scale-up nodes pays visibly on the fabric cells.
func TestSweepFabricAxis(t *testing.T) {
	m, ok := ModelByName("Llama3-70B")
	if !ok {
		t.Fatal("model preset missing")
	}
	spec := SweepSpec{
		GPUs:             []GPU{Lite()},
		Models:           []Transformer{m},
		Workloads:        []SweepWorkload{{Name: "coding", Make: CodingWorkload}},
		Rates:            []float64{1.2},
		PrefillInstances: 2, // TP-4 Lite instances: 12 GPUs, two nodes
		Horizon:          60,
		Drain:            30,
		Seed:             42,
		Fabrics: []ServeNetworkConfig{
			{},
			{Fabric: FabricClos, Link: LinkPluggable},
		},
	}
	cells, err := Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d, want the 2-entry fabric axis", len(cells))
	}
	off, fab := cells[0], cells[1]
	if off.Fabric != "off" || fab.Fabric != "clos:pluggable:packet" {
		t.Fatalf("fabric labels = %q, %q", off.Fabric, fab.Fabric)
	}
	if off.Err != "" || fab.Err != "" {
		t.Fatalf("infeasible cells: %q / %q", off.Err, fab.Err)
	}
	if off.Metrics.Arrived != fab.Metrics.Arrived {
		t.Errorf("fabric cells saw different traces: %d vs %d arrivals",
			off.Metrics.Arrived, fab.Metrics.Arrived)
	}
	if off.Metrics.NetTransfers != 0 {
		t.Errorf("off cell reported %d transfers", off.Metrics.NetTransfers)
	}
	if fab.Metrics.NetTransfers == 0 {
		t.Error("fabric cell moved no bytes; the 2-prefill deployment must span nodes")
	}
	if fab.Metrics.TTFT.Mean <= off.Metrics.TTFT.Mean {
		t.Errorf("fabric TTFT %v not above infinite-fabric TTFT %v",
			fab.Metrics.TTFT.Mean, off.Metrics.TTFT.Mean)
	}
}
