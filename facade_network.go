package litegpu

import "litegpu/internal/serve"

// Network-in-the-loop serving, re-exported from internal/serve. See
// docs/networking.md for the model and when it matters.
type (
	// ServeNetworkConfig selects the fabric a serving simulation runs
	// on: topology kind, link technology, switching discipline, the
	// scale-up node size, and a latency stress multiplier. The zero
	// value is the historical infinite fabric. Set it on
	// ServeConfig.Network (single pool) or ServeClusterConfig.Network
	// (cluster-wide).
	ServeNetworkConfig = serve.NetworkConfig
	// FabricKind is the topology choice (off, Clos, leaf-spine, flat
	// circuit).
	FabricKind = serve.FabricKind
	// LinkKind is the physical link technology (copper, pluggable
	// optics, co-packaged optics).
	LinkKind = serve.LinkKind
	// SwitchKind is the switching discipline (packet or circuit).
	SwitchKind = serve.SwitchKind
)

// Fabric topology kinds.
const (
	FabricOff         = serve.FabricOff
	FabricClos        = serve.FabricClos
	FabricLeafSpine   = serve.FabricLeafSpine
	FabricFlatCircuit = serve.FabricFlatCircuit
)

// Link technologies. Copper and pluggable optics attach one fabric
// port per instance; co-packaged optics puts ports on every GPU.
const (
	LinkCopper    = serve.LinkCopper
	LinkPluggable = serve.LinkPluggable
	LinkCPO       = serve.LinkCPO
)

// Switching disciplines.
const (
	SwitchPacket  = serve.SwitchPacket
	SwitchCircuit = serve.SwitchCircuit
)

// ParseNetworkConfig parses a CLI fabric spec — "off" or
// "fabric[:link[:switch]]", e.g. "clos:pluggable" or
// "flat-circuit:cpo:circuit".
func ParseNetworkConfig(spec string) (ServeNetworkConfig, error) {
	return serve.ParseNetworkConfig(spec)
}

// ParseNetworkConfigWithLink is ParseNetworkConfig with a default link
// technology spliced into specs that omit one — the normalization the
// CLIs' -fabric/-link flag pair shares.
func ParseNetworkConfigWithLink(spec, link string) (ServeNetworkConfig, error) {
	return serve.ParseNetworkConfigWithLink(spec, link)
}

// DefaultFabricCandidates returns the fabric designs the capacity
// planner searches when asked for a fabric axis: copper Clos,
// pluggable-optics Clos, CPO Clos, and a circuit-switched CPO flat
// fabric.
func DefaultFabricCandidates() []ServeNetworkConfig {
	return serve.DefaultFabricCandidates()
}
