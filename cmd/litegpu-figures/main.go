// Command litegpu-figures regenerates the paper's tables and figures and
// the quantitative claims embedded in its prose.
//
// Usage:
//
//	litegpu-figures [flags] <artifact>...
//
// Artifacts: table1, fig1, fig2, fig3a, fig3b, yield, shoreline,
// network, power, blast, granularity, tco, straggler, memory, training,
// serving, servinggrid, all.
//
// Flags:
//
//	-seed N        RNG seed for the stochastic studies (default 42)
//	-alpha DUR     per-step collective latency (default 1µs)
//	-endpoints N   cluster scale for the network study (default 512)
//	-kvrepl        use Megatron-style KV replication instead of the
//	               paper's ideal KV sharding (ablation)
//	-ring          force ring collectives (ablation)
//	-nooverlap     serialize compute/memory/network per stage (ablation)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"litegpu/internal/experiments"
	"litegpu/internal/inference"
	"litegpu/internal/units"
)

func main() {
	seed := flag.Uint64("seed", 42, "RNG seed for stochastic studies")
	alpha := flag.Duration("alpha", time.Microsecond, "per-step collective latency")
	endpoints := flag.Int("endpoints", 512, "cluster scale for the network study")
	kvRepl := flag.Bool("kvrepl", false, "model Megatron-style KV-head replication (ablation)")
	ring := flag.Bool("ring", false, "force ring collectives (ablation)")
	noOverlap := flag.Bool("nooverlap", false, "serialize engines per stage (ablation)")
	flag.Parse()

	opts := inference.DefaultOptions()
	opts.Alpha = units.Seconds(alpha.Seconds())
	opts.KVReplication = *kvRepl
	opts.RingOnly = *ring
	opts.NoOverlap = *noOverlap

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"all"}
	}
	w := os.Stdout
	for _, artifact := range args {
		if err := run(artifact, opts, *seed, *endpoints); err != nil {
			fmt.Fprintf(os.Stderr, "litegpu-figures: %v\n", err)
			os.Exit(1)
		}
	}
	_ = w
}

func run(artifact string, opts inference.Options, seed uint64, endpoints int) error {
	w := os.Stdout
	switch artifact {
	case "table1":
		experiments.RenderTable1(w)
	case "fig1":
		experiments.RenderFigure1(w)
	case "fig2":
		experiments.RenderFigure2(w)
	case "fig3a":
		rows, err := experiments.Figure3a(opts)
		if err != nil {
			return err
		}
		experiments.RenderFigure3(w, "Figure 3a: prompt prefill (normalized tokens/s/SM)", rows)
	case "fig3b":
		rows, err := experiments.Figure3b(opts)
		if err != nil {
			return err
		}
		experiments.RenderFigure3(w, "Figure 3b: decode (normalized tokens/s/SM)", rows)
	case "yield":
		experiments.RenderYieldStudy(w)
	case "shoreline":
		experiments.RenderShorelineStudy(w)
	case "network":
		experiments.RenderNetworkStudy(w, endpoints)
	case "power":
		experiments.RenderPowerStudy(w)
	case "blast":
		experiments.RenderBlastRadiusStudy(w, seed)
	case "granularity":
		experiments.RenderGranularity(w, seed)
	case "serving":
		return experiments.RenderServingStudy(w, seed)
	case "servinggrid":
		return experiments.RenderServingGrid(w, seed)
	case "tco":
		experiments.RenderTCOStudy(w)
	case "straggler":
		experiments.RenderStragglerStudy(w, seed)
	case "memory":
		experiments.RenderMemoryStudy(w)
	case "training":
		return experiments.RenderTrainingStudy(w)
	case "all":
		for _, a := range []string{
			"table1", "fig1", "fig2", "fig3a", "fig3b", "yield",
			"shoreline", "network", "power", "blast", "granularity",
			"tco", "straggler", "memory", "training", "serving",
			"servinggrid",
		} {
			if err := run(a, opts, seed, endpoints); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown artifact %q", artifact)
	}
	return nil
}
