// Command litegpu-lint statically enforces the simulator's determinism
// and zero-alloc invariants (see docs/correctness.md).
//
// Standalone, over package patterns:
//
//	go run ./cmd/litegpu-lint ./...
//
// Findings print one per line as file:line:col: message (analyzer); the
// exit status is 0 when clean, 1 with findings, 2 on internal errors.
//
// It also speaks the vet tool protocol, so the same binary plugs into
// the build system's incremental, per-package vet driver:
//
//	go build -o /tmp/litegpu-lint ./cmd/litegpu-lint
//	go vet -vettool=/tmp/litegpu-lint ./...
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"strings"

	"litegpu/internal/lint"
	"litegpu/internal/lint/analysis"
	"litegpu/internal/lint/driver"
)

func main() {
	args := os.Args[1:]

	// The go vet protocol: `-V=full` identifies the tool by content
	// hash, `-flags` describes supported flags, and a single *.cfg
	// argument runs one analysis unit.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			printVersion()
			return
		case args[0] == "-flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(driver.RunVetCfg(args[0], lint.All(), os.Stderr))
		}
	}

	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := driver.Load("", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "litegpu-lint: %v\n", err)
		os.Exit(2)
	}
	exit := 0
	for _, pkg := range pkgs {
		diags, err := analysis.RunPackage(pkg, lint.All())
		if err != nil {
			fmt.Fprintf(os.Stderr, "litegpu-lint: %v\n", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Println(driver.Format(pkg.Fset, d))
			exit = 1
		}
	}
	os.Exit(exit)
}

// printVersion implements -V=full: the go command tracks vet tools by a
// content hash of the executable so results can be cached and
// invalidated when the tool changes.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "litegpu-lint: %v\n", err)
		os.Exit(2)
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintf(os.Stderr, "litegpu-lint: %v\n", err)
		os.Exit(2)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintf(os.Stderr, "litegpu-lint: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
}
